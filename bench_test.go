package anycastddos

// The reproduction harness: one benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark runs the corresponding analysis
// against a shared small-scale simulation (built once) and reports the
// headline quantity through b.ReportMetric, so `go test -bench=.` doubles
// as the experiment index.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/defense"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/topo"
)

var (
	benchOnce sync.Once
	benchEval *core.Evaluator
	benchData *atlas.Dataset
	benchErr  error
)

// benchWorld builds the shared simulation used by the per-figure benches
// and the root-package integration tests.
func benchWorld(b testing.TB) (*core.Evaluator, *atlas.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		// Full-size topology (the catchment structure the shapes depend
		// on), reduced VP population (probing cost).
		cfg := core.DefaultConfig(1)
		cfg.VPs = 800
		var ev *core.Evaluator
		ev, benchErr = core.NewEvaluator(cfg)
		if benchErr != nil {
			return
		}
		if benchErr = ev.Run(); benchErr != nil {
			return
		}
		benchEval = ev
		benchData, benchErr = ev.Measure()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEval, benchData
}

// benchAnalyzer returns an Analyzer over the shared benchWorld run, built
// outside any timed region.
func benchAnalyzer(b testing.TB) *analysis.Analyzer {
	ev, d := benchWorld(b)
	return analysis.New(ev, d)
}

// BenchmarkTable2 regenerates Table 2: reported vs observed sites per
// letter.
func BenchmarkTable2(b *testing.B) {
	an := benchAnalyzer(b)
	var rows []analysis.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = an.Table2()
	}
	b.StopTimer()
	observed := 0
	for _, r := range rows {
		observed += r.SitesObserved
	}
	b.ReportMetric(float64(observed), "sites-observed")
}

// BenchmarkTable3 regenerates Table 3's event-size estimation for both
// events.
func BenchmarkTable3(b *testing.B) {
	an := benchAnalyzer(b)
	var res *analysis.Table3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		for evIdx := 0; evIdx < 2; evIdx++ {
			res, err = an.Table3(evIdx)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(res.Bounds.UpperQueryMqs, "upper-Mq/s")
	b.ReportMetric(res.Bounds.UpperRespGbs, "upper-resp-Gb/s")
}

// BenchmarkFigure2 sweeps the §2.2 policy model across the five cases.
func BenchmarkFigure2(b *testing.B) {
	hTotal := 0
	for i := 0; i < b.N; i++ {
		for _, a := range []float64{30, 80, 300, 700, 1500} {
			sc := core.PaperScenario(100, a, a)
			_, h, err := sc.Best()
			if err != nil {
				b.Fatal(err)
			}
			hTotal += h
		}
	}
	b.ReportMetric(float64(hTotal)/float64(b.N), "sum-best-H")
}

// BenchmarkFigure3 regenerates the per-letter reachability series.
func BenchmarkFigure3(b *testing.B) {
	an := benchAnalyzer(b)
	var minB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := an.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		minB, _, _ = s['B'].Min()
	}
	b.ReportMetric(minB, "B-min-VPs")
}

// BenchmarkFigure4 regenerates the per-letter median RTT series.
func BenchmarkFigure4(b *testing.B) {
	an := benchAnalyzer(b)
	var kMax float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := an.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		kMax, _, _ = s['K'].Max()
	}
	b.ReportMetric(kMax, "K-peak-RTT-ms")
}

// BenchmarkFigure5 regenerates the per-site swing table for E and K.
func BenchmarkFigure5(b *testing.B) {
	an := benchAnalyzer(b)
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lb := range []byte{'E', 'K'} {
			rows, err := an.Figure5(lb)
			if err != nil {
				b.Fatal(err)
			}
			n = len(rows)
		}
	}
	b.ReportMetric(float64(n), "K-sites")
}

// BenchmarkFigure6 regenerates the per-site catchment series for E and K.
func BenchmarkFigure6(b *testing.B) {
	an := benchAnalyzer(b)
	critical := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		critical = 0
		for _, lb := range []byte{'E', 'K'} {
			minis, err := an.Figure6(lb)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range minis {
				critical += len(m.CriticalBins)
			}
		}
	}
	b.ReportMetric(float64(critical), "critical-bins")
}

// BenchmarkFigure7 regenerates the stressed-K-site RTT series.
func BenchmarkFigure7(b *testing.B) {
	an := benchAnalyzer(b)
	var amsPeak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := an.Figure7('K', []string{"AMS", "NRT", "LHR", "FRA"})
		if err != nil {
			b.Fatal(err)
		}
		amsPeak, _, _ = series["K-AMS"].Max()
	}
	b.ReportMetric(amsPeak, "K-AMS-peak-RTT-ms")
}

// BenchmarkFigure8 regenerates site-flip counting across all letters.
func BenchmarkFigure8(b *testing.B) {
	an := benchAnalyzer(b)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flips, err := an.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, s := range flips {
			for _, v := range s.Values {
				total += v
			}
		}
	}
	b.ReportMetric(total, "total-flips")
}

// BenchmarkFigure9 regenerates the BGPmon route-change series.
func BenchmarkFigure9(b *testing.B) {
	an := benchAnalyzer(b)
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := an.Figure9()
		total = 0
		for _, s := range series {
			for _, v := range s.Values {
				total += v
			}
		}
	}
	b.ReportMetric(total, "route-changes")
}

// BenchmarkFigure10 regenerates the K-LHR/K-FRA flip-flow analysis.
func BenchmarkFigure10(b *testing.B) {
	an := benchAnalyzer(b)
	movers := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flows, err := an.Figure10('K', []string{"LHR", "FRA"}, 0)
		if err != nil {
			b.Fatal(err)
		}
		movers = 0
		for _, f := range flows {
			movers += f.Movers
		}
	}
	b.ReportMetric(float64(movers), "movers")
}

// BenchmarkFigure11 regenerates the 300-VP raster.
func BenchmarkFigure11(b *testing.B) {
	an := benchAnalyzer(b)
	rows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := an.Figure11('K', "LHR", "FRA", "AMS", 300)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(r)
	}
	b.ReportMetric(float64(rows), "raster-vps")
}

// BenchmarkFigure12 regenerates per-server reachability (K-FRA, K-NRT).
func BenchmarkFigure12(b *testing.B) {
	an := benchAnalyzer(b)
	servers := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servers = 0
		for _, code := range []string{"FRA", "NRT"} {
			series, err := an.FigureServers('K', code)
			if err != nil {
				b.Fatal(err)
			}
			servers += len(series)
		}
	}
	b.ReportMetric(float64(servers), "servers")
}

// BenchmarkFigure13 regenerates per-server RTT medians (same pipeline,
// reported separately to mirror the paper's figure split).
func BenchmarkFigure13(b *testing.B) {
	an := benchAnalyzer(b)
	var peak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := an.FigureServers('K', "NRT")
		if err != nil {
			b.Fatal(err)
		}
		peak = 0
		for _, s := range series {
			if m, _, err := s.RTT.Max(); err == nil && m > peak {
				peak = m
			}
		}
	}
	b.ReportMetric(peak, "NRT-peak-server-RTT-ms")
}

// BenchmarkFigure14 regenerates the D-Root collateral-damage scan.
func BenchmarkFigure14(b *testing.B) {
	an := benchAnalyzer(b)
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sites, err := an.Figure14('D', 0.10)
		if err != nil {
			b.Fatal(err)
		}
		hits = len(sites)
	}
	b.ReportMetric(float64(hits), "affected-D-sites")
}

// BenchmarkFigure15 regenerates the .nl collateral series.
func BenchmarkFigure15(b *testing.B) {
	an := benchAnalyzer(b)
	var min float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := an.Figure15()
		min = 1
		for _, s := range series {
			if m, _, err := s.Min(); err == nil && m < min {
				min = m
			}
		}
	}
	b.ReportMetric(min, "nl-min-service")
}

// BenchmarkSiteCorrelation regenerates the §3.2.1 R² analysis.
func BenchmarkSiteCorrelation(b *testing.B) {
	an := benchAnalyzer(b)
	var r2 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := an.SiteCorrelation()
		if err != nil {
			b.Fatal(err)
		}
		r2 = res.Fit.R2
	}
	b.ReportMetric(r2, "R2")
}

// BenchmarkLetterFlips regenerates the §3.2.2 L-Root failover analysis.
func BenchmarkLetterFlips(b *testing.B) {
	an := benchAnalyzer(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := an.LetterFlips('L')
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Event2Ratio
	}
	b.ReportMetric(ratio, "L-event2-ratio")
}

// --- Ablation benches for design choices called out in DESIGN.md ---

// BenchmarkAblationRouting measures a full 13-letter catchment
// recomputation on the default-size topology: the cost paid on every
// withdrawal event.
func BenchmarkAblationRouting(b *testing.B) {
	g, err := topo.Generate(topo.DefaultConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := make([]bgpsim.Origin, 30)
	for i := range origins {
		origins[i] = bgpsim.Origin{Site: i, Host: stubs[(i*53)%len(stubs)]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgpsim.Compute(g, origins, nil)
	}
}

// BenchmarkAblationQueueModel measures the per-minute site evaluation that
// dominates the simulation inner loop.
func BenchmarkAblationQueueModel(b *testing.B) {
	cfg := netsim.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Evaluate(350_000, netsim.Load{LegitQPS: 3000, AttackQPS: float64(i % 5_000_000)}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFullRun measures an end-to-end small simulation +
// measurement campaign — the cost of one reproduction at test scale.
func BenchmarkAblationFullRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(int64(i + 1))
		cfg.Topology = &topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: int64(i + 1)}
		cfg.VPs = 150
		ev, err := core.NewEvaluator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := ev.Run(); err != nil {
			b.Fatal(err)
		}
		if _, err := ev.Measure(); err != nil {
			b.Fatal(err)
		}
	}
}

// flapSequence builds the deterministic announcement-vector churn of a
// flap-heavy attack window: one to three uplinks toggle per step, with a
// periodic revert to the all-active vector (the shape a withdraw/cooldown
// cycle produces, and the cache-hit shape in the engine).
func flapSequence(nOrigins, steps int) [][]bool {
	seq := make([][]bool, steps)
	act := make([]bool, nOrigins)
	for i := range act {
		act[i] = true
	}
	for s := 0; s < steps; s++ {
		if s%17 == 16 {
			for i := range act {
				act[i] = true
			}
		} else {
			for k := 0; k <= s%3; k++ {
				i := (s*7 + k*13) % nOrigins
				act[i] = !act[i]
			}
		}
		seq[s] = append([]bool(nil), act...)
	}
	return seq
}

// BenchmarkComputeFullVsIncremental is the headline routing bench: the same
// flap-heavy Nov 30 announcement churn through (a) the reference
// from-scratch Compute, (b) the warm-started incremental Computer, and
// (c) the Computer behind the engine's announcement-vector memoization.
// All three produce byte-identical tables (proved by the equivalence
// tests); the ratio of their ns/op and allocs/op is the result tracked in
// BENCH_4.json.
func BenchmarkComputeFullVsIncremental(b *testing.B) {
	g, err := topo.Generate(topo.DefaultConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	stubs := g.StubASNs()
	var origins []bgpsim.Origin
	for s := 0; s < 20; s++ {
		for u := 0; u <= s%3; u++ {
			origins = append(origins, bgpsim.Origin{
				Site: s, Host: stubs[(s*101+u*37)%len(stubs)], Local: s%5 == 4,
			})
		}
	}
	seq := flapSequence(len(origins), 64)

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bgpsim.Compute(g, origins, seq[i%len(seq)])
		}
	})
	b.Run("incremental", func(b *testing.B) {
		c := bgpsim.NewComputer(g)
		c.Compute(origins, seq[0]) // warm the scratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Compute(origins, seq[i%len(seq)])
		}
	})
	b.Run("cached", func(b *testing.B) {
		// The engine's memoization on top of the Computer: a flap cycle
		// returning to a seen vector is a map hit, nothing is recomputed.
		c := bgpsim.NewComputer(g)
		cache := make(map[string]*bgpsim.Table)
		key := make([]byte, 0, (len(origins)+7)/8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			act := seq[i%len(seq)]
			key = key[:0]
			var bits byte
			for j, a := range act {
				if a {
					bits |= 1 << (uint(j) & 7)
				}
				if j&7 == 7 {
					key = append(key, bits)
					bits = 0
				}
			}
			if len(act)&7 != 0 {
				key = append(key, bits)
			}
			if _, ok := cache[string(key)]; !ok {
				cache[string(key)] = c.Compute(origins, act)
			}
		}
	})
}

// BenchmarkProbeOutcome measures the per-probe hot path against the shared
// completed simulation: dense letter/epoch/city lookups and the scalar
// server view should keep it allocation-free.
func BenchmarkProbeOutcome(b *testing.B) {
	ev, _ := benchWorld(b)
	letters := ev.Deployment.SortedLetters()
	vps := ev.Population.VPs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp := &vps[i%len(vps)]
		lb := letters[i%len(letters)]
		_ = ev.ProbeOutcome(vp, lb, (i*37)%ev.Cfg.Minutes)
	}
}

// --- Parallel-engine benches: the same work at each worker count ---
//
// The engine guarantees byte-identical output for every worker count, so
// these benches isolate pure speedup: letters shard across workers during
// Run, vantage points during Measure. Expect near-linear Measure scaling
// and Run scaling bounded by the 13-way letter parallelism (minus the
// sequential per-minute barrier) on multi-core hosts; on a single core all
// counts degenerate to the sequential cost plus scheduling noise.

// BenchmarkParallelSmallWorkers runs simulation + measurement at test scale
// across worker counts — quick enough for routine regression tracking.
func BenchmarkParallelSmallWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := core.DefaultConfig(1)
				cfg.Topology = &topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: 1}
				cfg.VPs = 150
				ev, err := core.NewEvaluator(cfg, core.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := ev.Run(); err != nil {
					b.Fatal(err)
				}
				if _, err := ev.Measure(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNov30EventWorkers is the headline scaling bench: the full first
// event day on the default-size topology with the paper's ~9000 active
// vantage points. Evaluators are single-use, so construction is excluded
// from the timed region.
//
//	go test -bench=Nov30EventWorkers -benchtime=1x
func BenchmarkNov30EventWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := core.DefaultConfig(1)
				cfg.Minutes = 24 * 60 // Nov 30: event 1 and its aftermath
				cfg.VPs = 9000
				ev, err := core.NewEvaluator(cfg, core.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := ev.Run(); err != nil {
					b.Fatal(err)
				}
				if _, err := ev.Measure(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUniqueIPs measures the analytic unique-source estimator
// against event-scale query counts.
func BenchmarkAblationUniqueIPs(b *testing.B) {
	mix := attack.DefaultSourceMix
	var v float64
	for i := 0; i < b.N; i++ {
		v = mix.ExpectedUniqueIPs(float64(i) * 1e6)
	}
	_ = v
}

// BenchmarkDNSMON regenerates the availability dashboard.
func BenchmarkDNSMON(b *testing.B) {
	an := benchAnalyzer(b)
	var bMin float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := an.DNSMON()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Letter == 'B' {
				bMin = r.WorstBinPct
			}
		}
	}
	b.ReportMetric(bMin, "B-worst-bin-pct")
}

// BenchmarkEventDetection regenerates the blind change-point detection of
// the two event windows.
func BenchmarkEventDetection(b *testing.B) {
	ev, d := benchWorld(b)
	an := analysis.New(ev, d)
	var matched int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		windows, err := an.DetectEvents(0.25, 3)
		if err != nil {
			b.Fatal(err)
		}
		matched, _, _ = analysis.MatchesKnownEvents(windows, ev.Schedule())
	}
	b.ReportMetric(float64(matched), "events-matched")
}

// BenchmarkUserImpact regenerates the end-user extension experiment: a
// resolver population with caching and cross-letter failover riding out the
// event (§2.3's "no end-user visible errors" claim).
func BenchmarkUserImpact(b *testing.B) {
	an := benchAnalyzer(b)
	cfg := analysis.DefaultUserImpactConfig(1)
	cfg.Resolvers = 40
	cfg.QueriesPerBin = 4
	var worstFail float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := an.UserImpact(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worstFail, _, _ = res.FailFrac.Max()
	}
	b.ReportMetric(worstFail, "worst-fail-frac")
}

// BenchmarkAblationDefensePolicies compares the three defense controllers
// (§5 future work) on the standard case-3 scenario.
func BenchmarkAblationDefensePolicies(b *testing.B) {
	build := func() (*defense.Scenario, error) {
		g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 500, Seed: 17})
		if err != nil {
			return nil, err
		}
		stubs := g.StubASNs()
		origins := []bgpsim.Origin{
			{Site: 0, Host: stubs[10]},
			{Site: 1, Host: stubs[200]},
			{Site: 2, Host: stubs[400]},
		}
		table := bgpsim.Compute(g, origins, nil)
		legit := map[topo.ASN]float64{}
		for _, asn := range stubs {
			legit[asn] = 15
		}
		attackSrc := map[topo.ASN]float64{}
		var inSmall []topo.ASN
		for _, asn := range stubs {
			if s := table.SiteOf(asn); s == 0 || s == 1 {
				inSmall = append(inSmall, asn)
			}
		}
		for _, asn := range inSmall {
			attackSrc[asn] = 600_000 / float64(len(inSmall))
		}
		return &defense.Scenario{
			Graph: g, Origins: origins, Capacity: []float64{100_000, 100_000, 1_000_000},
			LegitPerAS: legit, AttackPerAS: attackSrc,
			Minutes: 120, EventStart: 20, EventEnd: 100,
			Netsim: netsim.DefaultConfig(),
		}, nil
	}
	var adaptiveFrac float64
	for i := 0; i < b.N; i++ {
		for _, mk := range []func() defense.Controller{
			func() defense.Controller { return defense.StaticAbsorb{} },
			func() defense.Controller { return &defense.ThresholdWithdraw{Trigger: 2, Hold: 3, Cooldown: 30} },
			func() defense.Controller { return &defense.Adaptive{Interval: 5, MinGain: 0.02} },
		} {
			sc, err := build()
			if err != nil {
				b.Fatal(err)
			}
			out, err := defense.Evaluate(sc, mk())
			if err != nil {
				b.Fatal(err)
			}
			if out.Controller == "adaptive-feedback" {
				adaptiveFrac = out.ServedLegitFrac
			}
		}
	}
	b.ReportMetric(adaptiveFrac, "adaptive-served-frac")
}
