module github.com/rootevent/anycastddos

go 1.22
