# Reproduction harness entry points. `make verify` is the gate every change
# must pass: format + vet + build + repolint + full tests, then the race
# detector over every package.

GO ?= go

.PHONY: verify fmt vet build lint test race soak bench bench-workers reproduce

verify: fmt vet build lint test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Repository-specific static analysis: determinism, error-hygiene,
# panic-policy, and API-hygiene invariants (see README "Determinism
# invariants and repolint"). Zero external deps; rules live in
# internal/lintcheck.
lint:
	$(GO) run ./cmd/repolint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection soak: 8 random heavy fault plans through the full engine
# under the race detector; the first two seeds also replay sequentially to
# prove worker-count independence under faults.
soak:
	$(GO) run -race ./cmd/chaossoak -seeds 8

bench:
	$(GO) test -bench=. -benchmem ./...

# Parallel-engine scaling benches (byte-identical output per worker count).
bench-workers:
	$(GO) test -bench='ParallelSmallWorkers|Nov30EventWorkers' -benchtime=1x -run '^$$' .

reproduce:
	$(GO) run ./cmd/rootevent -out out -save out/dataset.bin
