# Reproduction harness entry points. `make verify` is the gate every change
# must pass: format + vet + build + repolint + full tests, then the race
# detector over every package.

GO ?= go

.PHONY: verify fmt vet build lint lint-baseline test race soak soak-resume soak-failover campaign-smoke campaign-resume bench bench-server bench-gate bench-workers reproduce

# Keep bench going even if tee's upstream pipeline status matters on some
# shells: the JSON step only runs when the bench run itself succeeded.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

verify: fmt vet build lint test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Repository-specific static analysis: determinism (per-site and
# call-graph-transitive), error-hygiene, panic-policy, API-hygiene,
# durability, and concurrency invariants (see README "Determinism
# invariants and repolint"). Zero external deps; rules live in
# internal/lintcheck. Findings are diffed against the committed baseline:
# a new finding fails, and so does a baseline entry that no longer fires
# (regenerate with `make lint-baseline` alongside the fix). The full
# findings JSON lands in lint/findings.json for the CI artifact.
lint:
	$(GO) run ./cmd/repolint -baseline lint/baseline.json -out lint/findings.json ./...

# Regenerate the findings baseline after deliberately fixing (or accepting)
# a finding. The file is canonical JSON: rerunning without code changes is
# byte-identical.
lint-baseline:
	$(GO) run ./cmd/repolint -baseline lint/baseline.json -write-baseline ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection soak: 8 random heavy fault plans through the full engine
# under the race detector; the first two seeds also replay sequentially to
# prove worker-count independence under faults.
soak:
	$(GO) run -race ./cmd/chaossoak -seeds 8

# Kill/resume soak: SIGKILL a checkpointing child rootevent at three seeded
# epochs, resume each time from the snapshots it left behind, and require
# the final dataset hash to equal an uninterrupted run's (see README
# "Crash recovery"). Quick mode used by CI; crank -kills/-minutes to soak.
soak-resume:
	$(GO) run ./cmd/chaossoak -mode killresume -kills 3 -seed 7 -minutes 720

# Live failover soak: run the site manager as a child over real sockets,
# flood one site until both health signals corroborate, and require the
# full loop — withdraw, catchment shift (verified by a real CHAOS probe),
# SIGKILL + journal resume with the damping penalty intact, re-announce —
# to close (see README "Live failover").
soak-failover:
	$(GO) run ./cmd/chaossoak -mode sitefailover -seed 7

# Campaign degraded-mode smoke: sweep a tiny scenario grid containing one
# scripted-panic and one scripted-stall scenario and require both to be
# quarantined with the right failure class while the clean scenarios
# complete (see README "Campaign runner").
campaign-smoke:
	$(GO) run ./cmd/chaossoak -mode campaignsmoke

# Campaign kill/resume soak: SIGKILL the campaign runner at seeded points
# of ledger progress, resume each time, and require the final campaign.json
# to be byte-identical to an uninterrupted sweep's.
campaign-resume:
	$(GO) run ./cmd/chaossoak -mode campaignresume -kills 3 -seed 7

# Tracked benchmark baseline: the per-figure benches plus the routing
# (ComputeFullVsIncremental) and probe (ProbeOutcome) hot-path benches,
# converted into BENCH_6.json (see README "Performance"). The Nov30 scaling
# bench stays in bench-workers — it is far too heavy for a routine run.
# BENCHTIME=1x is the quick CI variant.
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) \
		-skip 'Nov30EventWorkers|ServerEcho|FloodPath|CheckShardedParallel' \
		-timeout 60m ./... | tee bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out BENCH_6.json
	$(MAKE) bench-gate

# Server packet-path benches (see README "Serving performance"): the
# in-memory legacy-vs-fast FloodPath pair, the over-socket ServerEcho
# worker sweep, and the sharded RRL check, converted into BENCH_9.json.
bench-server:
	$(GO) test -run '^$$' -bench 'ServerEcho|FloodPath|CheckShardedParallel|CheckHotPrefix|CheckSpoofedFlood' \
		-benchmem -benchtime=$(BENCHTIME) -timeout 30m \
		./internal/dnsserver/ ./internal/rrl/ | tee bench-server.out
	$(GO) run ./cmd/benchjson -in bench-server.out -out BENCH_9.json
	$(MAKE) bench-gate

# Allocation gate against the pre-columnar baseline: b_per_op/allocs_per_op
# must not regress past tolerance anywhere, and Figure4 must hold the >= 5x
# reduction the columnar store bought (see README "Performance"). Timing is
# deliberately not gated — CI runners share cores; allocation counts don't.
# The second diff gates the server packet path (BENCH_9.json): the batched
# fast path must hold >= 5x over the legacy reference path measured in the
# same run, stay allocation-free, and stay under 1000 ns/op (>= 1 Mq/s per
# core); the rrl benches shared by both files get the tolerance diff.
bench-gate:
	$(GO) run ./cmd/benchjson -diff \
		-min-improve 'Figure4:b_per_op:5,Figure4:allocs_per_op:5' \
		BENCH_4.json BENCH_6.json
	$(GO) run ./cmd/benchjson -diff \
		-min-ratio 'FloodPath/legacy:FloodPath/fast:ns_per_op:5' \
		-max 'FloodPath/fast:allocs_per_op:0,FloodPath/fast:ns_per_op:1000' \
		BENCH_6.json BENCH_9.json

# Parallel-engine scaling benches (byte-identical output per worker count).
bench-workers:
	$(GO) test -bench='ParallelSmallWorkers|Nov30EventWorkers' -benchtime=1x -run '^$$' .

reproduce:
	$(GO) run ./cmd/rootevent -out out -save out/dataset.bin
