# Reproduction harness entry points. `make verify` is the gate every change
# must pass: vet + build + full tests, then the race detector over the
# concurrent packages (the parallel engine, measurement sharding, and the
# live-socket server).

GO ?= go

.PHONY: verify vet build test race bench bench-workers reproduce

verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/atlas/ ./internal/dnsserver/

bench:
	$(GO) test -bench=. -benchmem ./...

# Parallel-engine scaling benches (byte-identical output per worker count).
bench-workers:
	$(GO) test -bench='ParallelSmallWorkers|Nov30EventWorkers' -benchtime=1x -run '^$$' .

reproduce:
	$(GO) run ./cmd/rootevent -out out -save out/dataset.bin
