# Reproduction harness entry points. `make verify` is the gate every change
# must pass: format + vet + build + full tests, then the race detector over
# the concurrent packages (the parallel engine, measurement sharding, and
# the live-socket server).

GO ?= go

.PHONY: verify fmt vet build test race soak bench bench-workers reproduce

verify: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/atlas/ ./internal/dnsserver/

# Fault-injection soak: 8 random heavy fault plans through the full engine
# under the race detector; the first two seeds also replay sequentially to
# prove worker-count independence under faults.
soak:
	$(GO) run -race ./cmd/chaossoak -seeds 8

bench:
	$(GO) test -bench=. -benchmem ./...

# Parallel-engine scaling benches (byte-identical output per worker count).
bench-workers:
	$(GO) test -bench='ParallelSmallWorkers|Nov30EventWorkers' -benchtime=1x -run '^$$' .

reproduce:
	$(GO) run ./cmd/rootevent -out out -save out/dataset.bin
