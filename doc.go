// Package anycastddos reproduces "Anycast vs. DDoS: Evaluating the
// November 2015 Root DNS Event" (IMC 2016) as a Go library.
//
// The implementation lives under internal/: an AS-level topology and BGP
// anycast routing simulator (topo, bgpsim), the 13-letter Root DNS
// deployment model (anycast), the event traffic and queueing models
// (attack, netsim, rrl), the measurement ecosystem (atlas, rssac, bgpmon,
// chaos, dnswire, dnsserver), and the orchestration plus per-figure
// analyses (core, analysis, report).
//
// The benchmarks in this package form the reproduction harness: one
// benchmark per table and figure of the paper's evaluation. Run them with
//
//	go test -bench=. -benchmem
//
// and regenerate the full artifact set with
//
//	go run ./cmd/rootevent -out out
//
// # Performance & parallelism
//
// The evaluator is parallel by default and deterministic regardless: for a
// given seed, every worker count produces byte-identical datasets, RSSAC
// reports, and route series. During core.Evaluator.Run the 13 letters
// shard across a worker pool, with a per-minute barrier replaying the
// cross-letter shared-fabric contributions in letter order; during Measure
// the vantage-point population shards into contiguous ranges writing
// disjoint dataset segments. Control the pool with
// core.WithWorkers(n) (0 = GOMAXPROCS) or `-workers` on cmd/rootevent,
// cancel with core.WithContext plus RunContext/MeasureContext, and observe
// progress with core.WithProgress. BenchmarkParallelSmallWorkers and
// BenchmarkNov30EventWorkers chart the scaling.
//
// # Crash recovery
//
// Long replays are kill-safe. core.WithCheckpoint(dir, everyN) snapshots
// engine state at epoch boundaries into versioned, content-hashed files
// written atomically (internal/checkpoint + internal/atomicio), and
// core.ResumeRun restores the newest good snapshot — falling back to the
// previous generation on a torn write, or to a fresh run on an empty
// directory — with output byte-identical to an uninterrupted run at any
// worker count, under any fault plan. core.Supervise adds a watchdog that
// turns stalled workers and recovered panics into bounded restarts from
// the last checkpoint and emits a structured RecoveryReport; rootevent
// exposes it as -checkpoint/-resume/-supervise, and `make soak-resume`
// proves the guarantee through real SIGKILLs (chaossoak -mode killresume).
//
// # Determinism invariants
//
// Reproducibility is enforced mechanically, not by convention: cmd/repolint
// (rule engine in internal/lintcheck, stdlib-only) fails the build on
// wall-clock reads in the simulation plane, global or unseeded math/rand
// use, map-iteration order escaping into results, fmt.Errorf that drops an
// error without %w, panics in internal/ packages, context or mutex
// misuse, and non-atomic output writes in the command harnesses. It runs
// inside `make verify` and again as TestRepolintSelfClean
// in the ordinary test suite.
package anycastddos
