// Package anycastddos reproduces "Anycast vs. DDoS: Evaluating the
// November 2015 Root DNS Event" (IMC 2016) as a Go library.
//
// The implementation lives under internal/: an AS-level topology and BGP
// anycast routing simulator (topo, bgpsim), the 13-letter Root DNS
// deployment model (anycast), the event traffic and queueing models
// (attack, netsim, rrl), the measurement ecosystem (atlas, rssac, bgpmon,
// chaos, dnswire, dnsserver), and the orchestration plus per-figure
// analyses (core, analysis, report).
//
// The benchmarks in this package form the reproduction harness: one
// benchmark per table and figure of the paper's evaluation. Run them with
//
//	go test -bench=. -benchmem
//
// and regenerate the full artifact set with
//
//	go run ./cmd/rootevent -out out
package anycastddos
