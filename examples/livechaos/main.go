// Livechaos exercises the real-socket half of the library: it starts UDP
// DNS servers for two anycast sites of "K-Root" on loopback, floods one of
// them to trip response-rate limiting, and then runs CHAOS catchment
// mapping with the prober — all over genuine DNS packets produced and
// parsed by internal/dnswire.
//
//	go run ./examples/livechaos
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/rootevent/anycastddos/internal/dnsserver"
	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/rrl"
)

func main() {
	log.SetFlags(0)

	rrlCfg := rrl.DefaultConfig()
	rrlCfg.ResponsesPerSecond = 20
	rrlCfg.SlipRatio = 2

	ams, err := dnsserver.Start(dnsserver.Config{Letter: 'K', Site: "AMS", Server: 1, RRL: &rrlCfg})
	if err != nil {
		log.Fatal(err)
	}
	defer ams.Close()
	lhr, err := dnsserver.Start(dnsserver.Config{Letter: 'K', Site: "LHR", Server: 2, RRL: &rrlCfg})
	if err != nil {
		log.Fatal(err)
	}
	defer lhr.Close()
	log.Printf("sites up: %s at %s, %s at %s", ams.Identity(), ams.Addr(), lhr.Identity(), lhr.Addr())

	// 1. CHAOS catchment mapping, exactly like an Atlas VP.
	prober := dnsserver.NewProber(1)
	prober.Timeout = time.Second
	sites, err := prober.MapCatchment([]*net.UDPAddr{ams.Addr(), lhr.Addr()}, 'K')
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCatchment map from hostname.bind parsing: %v\n", sites)

	// 2. A root priming query over real packets.
	conn, err := net.DialUDP("udp", nil, ams.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(42, ".", dnswire.TypeNS, dnswire.ClassINET)
	pkt, err := q.Pack()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := conn.Write(pkt); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := dnswire.Decode(buf[:n])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Priming response: %d NS records in %d wire bytes\n", len(resp.Answers), n)

	// 3. Flood K-LHR with a fixed-name query storm from one source and
	// watch RRL suppress the responses (the §2.3 defense).
	flood, err := net.DialUDP("udp", nil, lhr.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer flood.Close()
	attackQ := dnswire.NewQuery(7, "www.336901.com", dnswire.TypeA, dnswire.ClassINET)
	attackPkt, err := attackQ.Pack()
	if err != nil {
		log.Fatal(err)
	}
	const floodN = 2000
	for i := 0; i < floodN; i++ {
		if _, err := flood.Write(attackPkt); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond) // let the read loop drain
	received, answered, _, droppedRRL := lhr.Stats()
	fmt.Printf("\nFlooded %s with %d fixed-name queries from one source:\n", lhr.Identity(), floodN)
	fmt.Printf("  received %d, answered %d, RRL-suppressed %d (%.0f%%)\n",
		received, answered, droppedRRL, float64(droppedRRL)/float64(received)*100)
	fmt.Println("\nRRL lets the first burst through, then drops duplicates — the")
	fmt.Println("mechanism Verisign credited with shedding ~60% of event responses.")
}
