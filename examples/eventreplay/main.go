// Eventreplay runs the full Nov 30 / Dec 1 2015 reproduction at reduced
// scale and walks through K-Root's experience the way §3.4.2 of the paper
// does: per-site catchments, the K-LHR/K-FRA flips toward K-AMS, and the
// bufferbloat signature at the absorbing sites.
//
//	go run ./examples/eventreplay
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/report"
	"github.com/rootevent/anycastddos/internal/topo"
)

func main() {
	log.SetFlags(0)

	cfg := core.DefaultConfig(5)
	cfg.Topology = &topo.Config{Tier1s: 6, Tier2s: 60, Stubs: 900, Seed: 5}
	cfg.VPs = 800
	ev, err := core.NewEvaluator(cfg,
		core.WithWorkers(0), // all cores; output identical to a sequential run
		core.WithProgress(func(p core.Progress) {
			if p.Stage == core.StageRun && p.Done%720 == 0 {
				log.Printf("  simulated %d/%d minutes", p.Done, p.Total)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	log.Println("simulating the two event days (reduced scale)...")
	if err := ev.Run(); err != nil {
		log.Fatal(err)
	}
	d, err := ev.Measure()
	if err != nil {
		log.Fatal(err)
	}
	an := analysis.New(ev, d)

	fmt.Println("\n=== K-Root site catchments over the two days (Figure 6b style) ===")
	minis, err := an.Figure6('K')
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, m := range minis {
		if m.MedianVPs < analysis.StableVPThreshold {
			continue
		}
		if err := report.WriteFigure6(os.Stdout, 'K', []analysis.Figure6Site{m}, 72); err != nil {
			log.Fatal(err)
		}
		shown++
		if shown >= 8 {
			break
		}
	}

	fmt.Println("\n=== Where K-LHR / K-FRA clients went during event 1 (Figure 10) ===")
	flows, err := an.Figure10('K', []string{"LHR", "FRA"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteFlipFlows(os.Stdout, flows); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== RTT at the absorbing sites (Figure 7) ===")
	rtts, err := an.Figure7('K', []string{"AMS", "NRT"})
	if err != nil {
		log.Fatal(err)
	}
	for name, s := range rtts {
		max, _, _ := s.Max()
		fmt.Printf("  %-6s %s  baseline ~%.0f ms, peak %.0f ms\n",
			name, report.Sparkline(s, 72), s.Median(), max)
	}

	ev1 := attack.Events()[0]
	fmt.Printf("\nEvent windows: [%d,%d) and [%d,%d) minutes from 2015-11-30T00:00Z.\n",
		ev1.StartMinute, ev1.EndMinute, attack.Event2Start, attack.Event2End)
	fmt.Println("Compare with the paper: K-AMS stays up but slows to 1-2 s; K-LHR's")
	fmt.Println("catchment drains toward K-AMS and returns after the event.")
}
