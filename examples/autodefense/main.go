// Autodefense evaluates the paper's proposed future work (§2.2, §5):
// automated anycast defense policies. It builds a routed deployment, runs
// the same attack under three controllers — always-absorb, threshold
// withdraw, and an adaptive feedback policy — and compares how much
// legitimate traffic each serves.
//
//	go run ./examples/autodefense
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/defense"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/report"
	"github.com/rootevent/anycastddos/internal/topo"
)

func scenario(attackQPS float64) (*defense.Scenario, error) {
	g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 500, Seed: 17})
	if err != nil {
		return nil, err
	}
	stubs := g.StubASNs()
	origins := []bgpsim.Origin{
		{Site: 0, Host: stubs[10]},
		{Site: 1, Host: stubs[200]},
		{Site: 2, Host: stubs[400]},
	}
	capacity := []float64{100_000, 100_000, 1_000_000}
	table := bgpsim.Compute(g, origins, nil)

	legit := map[topo.ASN]float64{}
	rng := rand.New(rand.NewSource(9))
	for _, asn := range stubs {
		legit[asn] = 10 + rng.Float64()*20
	}
	attackSrc := map[topo.ASN]float64{}
	var inSmall []topo.ASN
	for _, asn := range stubs {
		if s := table.SiteOf(asn); s == 0 || s == 1 {
			inSmall = append(inSmall, asn)
		}
	}
	per := attackQPS / float64(len(inSmall))
	for _, asn := range inSmall {
		attackSrc[asn] = per
	}
	return &defense.Scenario{
		Graph: g, Origins: origins, Capacity: capacity,
		LegitPerAS: legit, AttackPerAS: attackSrc,
		Minutes: 160, EventStart: 20, EventEnd: 140,
		Netsim: netsim.DefaultConfig(),
	}, nil
}

func main() {
	log.SetFlags(0)
	fmt.Println("Automated anycast defense (the paper's §5 future work).")
	fmt.Println("Deployment: two 100 kq/s sites + one 1 Mq/s site; attack lands in")
	fmt.Println("the small sites' catchments. Score: legitimate traffic served.")
	fmt.Println()

	for _, attackQPS := range []float64{600_000, 8_000_000} {
		fmt.Printf("Attack %.1f Mq/s:\n", attackQPS/1e6)
		rows := [][]string{}
		controllers := []defense.Controller{
			defense.StaticAbsorb{},
			&defense.ThresholdWithdraw{Trigger: 2, Hold: 3, Cooldown: 30},
			&defense.Adaptive{Interval: 5, MinGain: 0.02},
		}
		for _, ctrl := range controllers {
			sc, err := scenario(attackQPS)
			if err != nil {
				log.Fatal(err)
			}
			out, err := defense.Evaluate(sc, ctrl)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, []string{
				out.Controller,
				fmt.Sprintf("%.1f%%", out.ServedLegitFrac*100),
				fmt.Sprintf("%.1f%%", out.WorstMinuteFrac*100),
				fmt.Sprintf("%d", out.RouteChanges),
			})
		}
		if err := report.WriteTable(os.Stdout,
			[]string{"controller", "legit served", "worst minute", "route changes"}, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("For moderate attacks, shifting catchments onto the big site wins")
	fmt.Println("('less can be more', §2.2 cases 2-4). For overwhelming attacks no")
	fmt.Println("move helps, and the adaptive controller learns to stay put — the")
	fmt.Println("degraded-absorber default — without being told the attack size.")
}
