// Quickstart: build a three-site anycast deployment on a synthetic
// Internet, attack it, and see the two defense policies — withdraw and
// degraded absorber — produce different service outcomes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/topo"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic Internet: tier-1 clique, regional transit, stubs.
	g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	stubs := g.StubASNs()

	// 2. An anycast service with three sites, announced from three hosts.
	origins := []bgpsim.Origin{
		{Site: 0, Host: stubs[10]},
		{Site: 1, Host: stubs[150]},
		{Site: 2, Host: stubs[300]},
	}
	capacities := []float64{500_000, 150_000, 150_000}
	table := bgpsim.Compute(g, origins, nil)
	sizes := table.CatchmentSizes(3)
	fmt.Println("Catchments under normal routing:")
	for site, n := range sizes {
		fmt.Printf("  site %d: %4d ASes (capacity %.0f q/s)\n", site, n, capacities[site])
	}

	// 3. A botnet floods the service; load lands per catchment.
	botnet := attack.NewBotnet(g, 25, 3)
	perAS := botnet.RatePerAS(1_200_000)
	load := make([]netsim.Load, 3)
	for asn, qps := range perAS {
		if site := table.SiteOf(asn); site >= 0 {
			load[site].AttackQPS += qps
		}
	}

	fmt.Println("\nUnder attack (1.2 Mq/s total), absorbing in place:")
	for site := range load {
		st, err := netsim.Evaluate(capacities[site], load[site], netsim.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  site %d: offered %8.0f q/s, loss %5.1f%%, +%4.0f ms queueing\n",
			site, st.OfferedQPS, st.LossFrac*100, st.ExtraDelayMs)
	}

	// 4. Withdraw the most overloaded small site and watch the waterbed:
	// its catchment (attack included) shifts to the surviving sites.
	worst := 1
	if load[2].AttackQPS > load[1].AttackQPS {
		worst = 2
	}
	active := []bool{true, true, true}
	active[worst] = false
	shifted := bgpsim.Compute(g, origins, active)
	moved := len(bgpsim.Diff(table, shifted))
	fmt.Printf("\nWithdrawing site %d moves %d ASes to other sites:\n", worst, moved)
	newLoad := make([]netsim.Load, 3)
	for asn, qps := range perAS {
		if site := shifted.SiteOf(asn); site >= 0 {
			newLoad[site].AttackQPS += qps
		}
	}
	for site := range newLoad {
		if site == worst {
			fmt.Printf("  site %d: withdrawn\n", site)
			continue
		}
		st, err := netsim.Evaluate(capacities[site], newLoad[site], netsim.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  site %d: offered %8.0f q/s, loss %5.1f%%, +%4.0f ms queueing\n",
			site, st.OfferedQPS, st.LossFrac*100, st.ExtraDelayMs)
	}
	fmt.Println("\nWhether that trade is worth it is exactly the §2.2 policy question —")
	fmt.Println("see examples/policycompare for the full five-case analysis.")
}
