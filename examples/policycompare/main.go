// Policycompare sweeps the paper's §2.2 thought experiment (Figure 2's
// deployment) and prints, for each attack strength, which of the five
// cases applies and how much better the optimal withdrawal strategy does
// than absorbing in place.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"github.com/rootevent/anycastddos/internal/core"
)

func main() {
	log.SetFlags(0)
	const s = 100.0 // small-site capacity; S3 = 10x

	fmt.Println("Anycast vs DDoS, §2.2: s1 = s2 = 100, S3 = 1000, four clients.")
	fmt.Println("H = happy (served) clients as attack strength A0 = A1 grows.")
	fmt.Println()
	fmt.Printf("%8s  %4s  %9s  %9s  %s\n", "A0=A1", "case", "H(absorb)", "H(best)", "note")

	lastCase := 0
	for a := 10.0; a <= 2000; a += 10 {
		c := core.ClassifyPaperCase(s, a, a)
		if c.Number == lastCase {
			continue // print one line per regime transition
		}
		lastCase = c.Number
		sc := core.PaperScenario(s, a, a)
		hAbsorb, err := sc.Happiness(sc.DefaultAssignment())
		if err != nil {
			log.Fatal(err)
		}
		_, hBest, err := sc.Best()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f  %4d  %9d  %9d  %s\n", a, c.Number, hAbsorb, hBest, c.Rationale)
	}

	fmt.Println()
	fmt.Println("Takeaways (matching the paper):")
	fmt.Println("  - For small attacks, withdrawing can serve MORE users (cases 2-3:")
	fmt.Println("    'less can be more').")
	fmt.Println("  - For attacks beyond every site's capacity, a degraded absorber is")
	fmt.Println("    optimal: it sacrifices its own catchment to protect the rest (case 5).")
	fmt.Println("  - The best choice depends on attack size and placement, which real")
	fmt.Println("    operators cannot observe mid-attack — absorption is the safe default.")
}
