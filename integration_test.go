package anycastddos

// End-to-end integration tests: one full (small-scale) reproduction run
// through topology, routing, traffic, measurement, and every analysis —
// asserting the paper's headline shapes in a single place. These share the
// benchWorld simulation with the benchmark harness.

import (
	"bytes"
	"testing"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/topo"
)

func TestEndToEndHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	ev, d := benchWorld(t)

	t.Run("Table2", func(t *testing.T) {
		rows := analysis.New(ev, d).Table2()
		if len(rows) != 13 {
			t.Fatalf("letters = %d", len(rows))
		}
		for _, r := range rows {
			if r.SitesObserved == 0 {
				t.Errorf("%c: no sites observed", r.Letter)
			}
		}
	})

	t.Run("Table3Bounds", func(t *testing.T) {
		res, err := analysis.New(ev, d).Table3(0)
		if err != nil {
			t.Fatal(err)
		}
		b := res.Bounds
		if !(b.LowerQueryMqs <= b.ScaledQueryMqs && b.ScaledQueryMqs <= b.UpperQueryMqs*1.001) {
			t.Errorf("bounds out of order: %v / %v / %v", b.LowerQueryMqs, b.ScaledQueryMqs, b.UpperQueryMqs)
		}
		if b.UpperQueryMqs < 5 {
			t.Errorf("upper bound %v Mq/s implausibly small for a 5 Mq/s x 10-letter flood", b.UpperQueryMqs)
		}
	})

	t.Run("WhoSuffers", func(t *testing.T) {
		// The unicast and two-site letters retain the smallest fraction
		// of their VPs; the unattacked letters the largest.
		retained := map[byte]float64{}
		for _, lb := range ev.Deployment.SortedLetters() {
			if lb == 'A' {
				continue
			}
			s, err := d.SuccessSeries(lb)
			if err != nil {
				t.Fatal(err)
			}
			min, _, _ := s.Min()
			retained[lb] = min / s.Median()
		}
		for _, few := range []byte{'B', 'H'} {
			for _, many := range []byte{'D', 'L', 'M', 'J'} {
				if retained[few] >= retained[many] {
					t.Errorf("%c (few sites) retained %v >= %c %v", few, retained[few], many, retained[many])
				}
			}
		}
	})

	t.Run("AbsorberRTT", func(t *testing.T) {
		series, err := analysis.New(ev, d).Figure7('K', []string{"AMS"})
		if err != nil {
			t.Fatal(err)
		}
		ams := series["K-AMS"]
		peak, _, _ := ams.Max()
		if peak < 500 || peak > 2500 {
			t.Errorf("K-AMS peak RTT %v ms, want the paper's 1-2 s band", peak)
		}
	})

	t.Run("FlipsToAMS", func(t *testing.T) {
		// Aggregate K-LHR and K-FRA movers across both events; K-AMS
		// must be the top destination (Figure 10's 70-80% at full
		// scale; at test scale we assert dominance, not the exact
		// fraction).
		dest := map[string]float64{}
		total := 0
		for evIdx := 0; evIdx < 2; evIdx++ {
			flows, err := analysis.New(ev, d).Figure10('K', []string{"LHR", "FRA"}, evIdx)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range flows {
				for site, frac := range f.Dest {
					dest[site] += frac * float64(f.Movers)
				}
				total += f.Movers
			}
		}
		if total < 30 {
			t.Skipf("only %d movers at this scale", total)
		}
		top, topN := "", 0.0
		for site, n := range dest {
			if n > topN {
				top, topN = site, n
			}
		}
		if top != "K-AMS" {
			t.Errorf("top mover destination = %s (%.0f of %d); want K-AMS", top, topN, total)
		}
	})

	t.Run("EventDetection", func(t *testing.T) {
		windows, err := analysis.New(ev, d).DetectEvents(0.25, 3)
		if err != nil {
			t.Fatal(err)
		}
		matched, _, missed := analysis.MatchesKnownEvents(windows, ev.Schedule())
		if matched != 2 || missed != 0 {
			t.Errorf("detector: matched %d missed %d (%+v)", matched, missed, windows)
		}
	})

	t.Run("DatasetRoundTrip", func(t *testing.T) {
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := atlas.LoadDataset(&buf)
		if err != nil {
			t.Fatal(err)
		}
		s1, _ := d.SuccessSeries('K')
		s2, _ := got.SuccessSeries('K')
		for i := range s1.Values {
			if s1.Values[i] != s2.Values[i] {
				t.Fatalf("round-tripped dataset differs at bin %d", i)
			}
		}
	})

	t.Run("EndUsersShielded", func(t *testing.T) {
		cfg := analysis.DefaultUserImpactConfig(2)
		cfg.Resolvers = 40
		cfg.QueriesPerBin = 4
		res, err := analysis.New(ev, d).UserImpact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		worst, _, _ := res.FailFrac.Max()
		if worst > 0.08 {
			t.Errorf("worst end-user failure fraction %v; caching+failover should shield users", worst)
		}
	})

	t.Run("CollateralNL", func(t *testing.T) {
		for _, s := range analysis.New(ev, d).Figure15() {
			min, _, _ := s.Min()
			if min > 0.5 {
				t.Errorf(".nl %s never collapsed (min %v)", s.Name, min)
			}
		}
	})

	t.Run("EventWindowsExact", func(t *testing.T) {
		evs := attack.Events()
		if evs[0].StartMinute != 410 || evs[0].EndMinute != 570 ||
			evs[1].StartMinute != 1750 || evs[1].EndMinute != 1810 {
			t.Error("event windows drifted from the paper's schedule")
		}
	})
}

func TestDeterministicReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipeline runs")
	}
	// Two evaluators with the same seed must agree bit-for-bit on the
	// measurement outcome; a different seed must not.
	build := func(seed int64) *atlas.Dataset {
		t.Helper()
		cfg := coreSmallConfig(seed)
		ev, err := newEvaluator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Run(); err != nil {
			t.Fatal(err)
		}
		d, err := ev.Measure()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := build(42)
	d2 := build(42)
	d3 := build(43)
	var b1, b2, b3 bytes.Buffer
	if err := d1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := d2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if err := d3.Save(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same seed produced different datasets")
	}
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Error("different seeds produced identical datasets")
	}
}

// coreSmallConfig builds a fast full-pipeline configuration.
func coreSmallConfig(seed int64) core.Config {
	cfg := core.DefaultConfig(seed)
	cfg.Topology = &topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: seed}
	cfg.VPs = 150
	cfg.BotnetOrigins = 25
	return cfg
}

// newEvaluator wraps core.NewEvaluator for the tests above.
func newEvaluator(cfg core.Config) (*core.Evaluator, error) {
	return core.NewEvaluator(cfg)
}

// TestFaultSoakShort is a two-seed slice of the chaossoak harness: random
// fault plans must never panic the engine, and the faulted run must still
// produce a measurable dataset end to end.
func TestFaultSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline runs under fault injection")
	}
	for seed := int64(1); seed <= 2; seed++ {
		plan := faults.RandomPlan(seed, faults.LightProfile())
		cfg := coreSmallConfig(seed)
		cfg.Minutes = 720
		ev, err := core.NewEvaluator(cfg, core.WithWorkers(4), core.WithFaults(plan))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ev.Run(); err != nil {
			t.Fatalf("seed %d: faulted run failed: %v", seed, err)
		}
		d, err := ev.Measure()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("seed %d: empty dataset", seed)
		}
	}
}
