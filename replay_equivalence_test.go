package anycastddos

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/atlas/atlastest"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/stats"
)

// TestReplayEquivalence9k is the full-pipeline version of the atlas-level
// columnar/row equivalence proof: at the paper's 9000-VP population, the
// columnar Measure must produce byte-identical ATLDS001 output at 1 and 4
// workers, both must match a sequential replay through the seed's row store
// (internal/atlas/atlastest), and every derived series, figure, and table
// must agree bit-for-bit across worker counts — with and without an injected
// fault plan.
func TestReplayEquivalence9k(t *testing.T) {
	if testing.Short() {
		t.Skip("four full 9k-VP pipeline runs")
	}
	for _, faulted := range []bool{false, true} {
		name := "clean"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			const seed = 11
			build := func(workers int) (*core.Evaluator, *atlas.Dataset) {
				t.Helper()
				cfg := coreSmallConfig(seed)
				cfg.VPs = 9000
				// Long enough to cover the first scheduled attack event;
				// the full two-day window would quadruple the runtime
				// without exercising any extra store machinery.
				cfg.Minutes = 600
				opts := []core.Option{core.WithWorkers(workers)}
				if faulted {
					opts = append(opts, core.WithFaults(faults.RandomPlan(seed, faults.LightProfile())))
				}
				ev, err := core.NewEvaluator(cfg, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if err := ev.Run(); err != nil {
					t.Fatal(err)
				}
				d, err := ev.Measure()
				if err != nil {
					t.Fatal(err)
				}
				return ev, d
			}
			ev1, d1 := build(1)
			ev4, d4 := build(4)

			// The row replay walks the same probe schedule sequentially
			// against the seed's array-of-structs store, using the single
			// worker evaluator as the probe world.
			scfg := atlas.DefaultScheduleConfig()
			scfg.Minutes = ev1.Cfg.Minutes
			scfg.RawLetters = ev1.Cfg.RawLetters
			ref := atlastest.RunCampaign(ev1.Population, ev1, scfg)

			var b1, b4, bref bytes.Buffer
			if err := d1.Save(&b1); err != nil {
				t.Fatal(err)
			}
			if err := d4.Save(&b4); err != nil {
				t.Fatal(err)
			}
			if err := ref.Save(&bref); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b4.Bytes()) {
				t.Fatalf("Save bytes differ between 1 and 4 workers (%d vs %d bytes)", b1.Len(), b4.Len())
			}
			if !bytes.Equal(b1.Bytes(), bref.Bytes()) {
				t.Fatalf("columnar Save differs from row-store replay (%d vs %d bytes)", b1.Len(), bref.Len())
			}

			for _, l := range scfg.Letters {
				ss, err := d1.SuccessSeries(l)
				if err != nil {
					t.Fatal(err)
				}
				atlastest.SameSeries(t, fmt.Sprintf("success %c", l), ss, ref.SuccessSeries(l))
				ms, err := d1.MedianRTTSeries(l)
				if err != nil {
					t.Fatal(err)
				}
				atlastest.SameSeries(t, fmt.Sprintf("median %c", l), ms, ref.MedianRTTSeries(l))
			}

			// Figures and tables must come out identical from both worker
			// counts. Map-of-series figures are compared bin-by-bin with
			// Float64bits; value-shaped results are compared through %#v,
			// whose shortest round-trippable float rendering makes the
			// string compare a byte-identity check.
			a1 := analysis.New(ev1, d1)
			a4 := analysis.New(ev4, d4)
			seriesChecks := []struct {
				label  string
				render func(a *analysis.Analyzer) (map[byte]*stats.Series, error)
			}{
				{"Figure3", func(a *analysis.Analyzer) (map[byte]*stats.Series, error) { return a.Figure3() }},
				{"Figure4", func(a *analysis.Analyzer) (map[byte]*stats.Series, error) { return a.Figure4() }},
				{"Figure8", func(a *analysis.Analyzer) (map[byte]*stats.Series, error) { return a.Figure8() }},
			}
			for _, c := range seriesChecks {
				m1, err := c.render(a1)
				if err != nil {
					t.Fatalf("%s (1 worker): %v", c.label, err)
				}
				m4, err := c.render(a4)
				if err != nil {
					t.Fatalf("%s (4 workers): %v", c.label, err)
				}
				if len(m1) != len(m4) {
					t.Fatalf("%s: letter count differs: %d vs %d", c.label, len(m1), len(m4))
				}
				for l, s1 := range m1 {
					s4, ok := m4[l]
					if !ok {
						t.Fatalf("%s: letter %c missing from 4-worker result", c.label, l)
					}
					atlastest.SameSeries(t, fmt.Sprintf("%s %c", c.label, l), s4, s1)
				}
			}
			f61, err := a1.Figure6('K')
			if err != nil {
				t.Fatal(err)
			}
			f64, err := a4.Figure6('K')
			if err != nil {
				t.Fatal(err)
			}
			if len(f61) != len(f64) {
				t.Fatalf("Figure6K: site count differs: %d vs %d", len(f61), len(f64))
			}
			for i := range f61 {
				s1, s4 := f61[i], f64[i]
				if s1.Site != s4.Site || s1.SiteIndex != s4.SiteIndex ||
					s1.MedianVPs != s4.MedianVPs ||
					fmt.Sprintf("%v", s1.CriticalBins) != fmt.Sprintf("%v", s4.CriticalBins) {
					t.Fatalf("Figure6K site %d differs: %+v vs %+v", i, s1, s4)
				}
				atlastest.SameSeries(t, fmt.Sprintf("Figure6K norm %s", s1.Site), s4.Norm, s1.Norm)
			}

			valueChecks := []struct {
				label  string
				render func(a *analysis.Analyzer) (any, error)
			}{
				{"Table2", func(a *analysis.Analyzer) (any, error) { return a.Table2(), nil }},
				{"DNSMON", func(a *analysis.Analyzer) (any, error) { return a.DNSMON() }},
			}
			for _, c := range valueChecks {
				v1, err := c.render(a1)
				if err != nil {
					t.Fatalf("%s (1 worker): %v", c.label, err)
				}
				v4, err := c.render(a4)
				if err != nil {
					t.Fatalf("%s (4 workers): %v", c.label, err)
				}
				s1, s4 := fmt.Sprintf("%#v", v1), fmt.Sprintf("%#v", v4)
				if s1 != s4 {
					t.Errorf("%s differs between 1 and 4 workers", c.label)
				}
			}
		})
	}
}
