// Command policysim explores the paper's §2.2 anycast-vs-DDoS policy model:
// for a configurable deployment it sweeps attack strength and reports the
// happiness (served clients) of absorbing in place versus the optimal
// combination of withdrawals.
//
// Usage:
//
//	policysim [-s capacity] [-big multiplier] [-steps N] [-max attack]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/report"
)

func main() {
	log.SetFlags(0)
	small := flag.Float64("s", 100, "capacity of the two small sites (q/s)")
	big := flag.Float64("big", 10, "large-site capacity as a multiple of -s")
	steps := flag.Int("steps", 20, "number of attack strengths to sweep")
	max := flag.Float64("max", 20, "largest attack as a multiple of -s (A0 = A1)")
	flag.Parse()

	if *small <= 0 || *big <= 0 || *steps < 1 || *max <= 0 {
		log.Fatal("policysim: all parameters must be positive")
	}

	fmt.Printf("Deployment: s1 = s2 = %.0f, S3 = %.0f; clients c0,c1@s1 c2@s2 c3@S3\n\n", *small, *small**big)
	rows := make([][]string, 0, *steps)
	for i := 1; i <= *steps; i++ {
		a := *small * *max * float64(i) / float64(*steps)
		sc := &core.Scenario{
			Capacity: []float64{*small, *small, *small * *big},
			Groups: []core.Group{
				{Name: "ISP0(c0,A0)", Clients: 1, AttackQPS: a, Prefs: []int{0, 1, 2}},
				{Name: "ISP1(c1,A1)", Clients: 1, AttackQPS: a, Prefs: []int{0, 1, 2}},
				{Name: "c2", Clients: 1, Prefs: []int{1, 2}},
				{Name: "c3", Clients: 1, Prefs: []int{2}},
			},
		}
		hAbsorb, err := sc.Happiness(sc.DefaultAssignment())
		if err != nil {
			log.Fatal(err)
		}
		assign, hBest, err := sc.Best()
		if err != nil {
			log.Fatal(err)
		}
		c := core.ClassifyPaperCase(*small, a, a)
		move := ""
		for gi, pos := range assign {
			if pos != 0 {
				move += fmt.Sprintf(" %s->s%d", sc.Groups[gi].Name, sc.Groups[gi].Prefs[pos]+1)
			}
		}
		if move == "" {
			move = " (stay)"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", a),
			fmt.Sprintf("%d", c.Number),
			fmt.Sprintf("%d", hAbsorb),
			fmt.Sprintf("%d", hBest),
			move,
		})
	}
	if err := report.WriteTable(os.Stdout,
		[]string{"A0=A1", "case", "H(absorb)", "H(optimal)", "optimal moves"}, rows); err != nil {
		log.Fatal(err)
	}
}
