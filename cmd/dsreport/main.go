// Command dsreport re-analyzes an archived measurement dataset (written by
// `rootevent -save`) without re-running the simulation — the workflow the
// paper's published datasets support for other researchers.
//
// Usage:
//
//	dsreport -data out/dataset.bin [-letter K]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/report"
	"github.com/rootevent/anycastddos/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsreport: ")
	dataPath := flag.String("data", "out/dataset.bin", "archived dataset file")
	letter := flag.String("letter", "", "optional letter for per-site detail")
	width := flag.Int("width", 96, "sparkline width")
	flag.Parse()

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	d, err := atlas.LoadDataset(f)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Dataset: %d VPs (%d excluded), letters %s, %d bins of %d min (raw: %d bins of %d min for ",
		d.NumVPs, d.NumExcluded(), string(d.Letters), d.Bins, d.BinMinutes, d.RawBins, d.RawBinMinutes)
	rawAny := false
	for _, l := range d.Letters {
		if d.HasRaw(l) {
			fmt.Printf("%c", l)
			rawAny = true
		}
	}
	if !rawAny {
		fmt.Print("none")
	}
	fmt.Println(")")

	reasons := map[string]int{}
	for vp, excluded := range d.Excluded {
		if excluded {
			reasons[d.ExcludedReason[vp]]++
		}
	}
	for reason, n := range reasons {
		fmt.Printf("  excluded %d VPs: %s\n", n, reason)
	}
	fmt.Println()

	success := map[byte]*stats.Series{}
	rtt := map[byte]*stats.Series{}
	for _, l := range d.Letters {
		s, err := d.SuccessSeries(l)
		if err != nil {
			log.Fatal(err)
		}
		success[l] = s
		r, err := d.MedianRTTSeries(l)
		if err != nil {
			log.Fatal(err)
		}
		rtt[l] = r
	}
	if err := report.WriteLetterSeries(os.Stdout, "VPs with successful queries per bin", success, *width); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := report.WriteLetterSeries(os.Stdout, "Median RTT (ms) of successful queries", rtt, *width); err != nil {
		log.Fatal(err)
	}

	if *letter != "" {
		lb := (*letter)[0]
		if !d.HasLetter(lb) {
			log.Fatalf("letter %c not in dataset", lb)
		}
		fmt.Printf("\nPer-site catchments for %c (sites with any VPs):\n", lb)
		for site := 0; site < 256; site++ {
			s, err := d.SiteSeries(lb, site)
			if err != nil {
				log.Fatal(err)
			}
			if med := s.Median(); med > 0 {
				fmt.Printf("  site %3d (median %4.0f)  %s\n", site, med, report.Sparkline(s, *width))
			} else if max, _, _ := s.Max(); max == 0 && site > 0 {
				// Heuristic stop: past the deployment's site list,
				// series are all-zero.
				foundLater := false
				for probe := site + 1; probe < site+4; probe++ {
					ps, err := d.SiteSeries(lb, probe)
					if err == nil {
						if m, _, _ := ps.Max(); m > 0 {
							foundLater = true
						}
					}
				}
				if !foundLater {
					break
				}
			}
		}
	}
}
