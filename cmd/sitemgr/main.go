// Command sitemgr runs the self-healing anycast site manager for one
// letter: N real UDP/TCP DNS servers on loopback, health-assessed every
// tick (active CHAOS probes + server counter deltas), announce/withdraw
// driven through the simulated BGP fabric with flap damping and a
// minimum-announced floor, and every decision journaled crash-safely so a
// killed manager resumes with its damping history.
//
// The observable surface for soaks and dashboards is the -state file
// (atomic JSON: per-site state, penalties, catchments, and sampled
// ASN-to-site routings) and the -journal ledger (readable live with
// sitemgr.ReadJournal).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/rrl"
	"github.com/rootevent/anycastddos/internal/sitemgr"
	"github.com/rootevent/anycastddos/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sitemgr: ")
	os.Exit(run())
}

func run() int {
	letter := flag.String("letter", "K", "root letter to serve")
	sitesFlag := flag.String("sites", "AMS,LHR,NRT", "comma-separated IATA site names")
	minAnnounced := flag.Int("min-announced", 1, "never let announced sites drop below this floor")
	seed := flag.Int64("seed", 7, "seed for topology, probes, and server coins")
	journal := flag.String("journal", "", "decision journal path (crash-safe resume); empty disables")
	state := flag.String("state", "", "atomic state.json path rewritten every tick; empty disables")
	interval := flag.Duration("interval", 250*time.Millisecond, "assessment tick period")
	ticks := flag.Int("ticks", 0, "stop after this many ticks (0 = run until interrupted)")
	samples := flag.Int("samples", 8, "number of sampled ASNs published in the state file")
	faultProfile := flag.String("faultprofile", "", "inject control-plane faults: healthmon (or light, heavy, monitor)")
	faultSeed := flag.Int64("faultseed", 1, "seed for the injected fault plan")
	rps := flag.Int("rrl-rps", 0, "per-server RRL responses/second (0 disables RRL)")
	fast := flag.Bool("fast", false, "aggressive FSM tuning and short probe timeouts (soaks and demos)")
	flag.Parse()

	var sites []string
	for _, s := range strings.Split(*sitesFlag, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sites = append(sites, s)
		}
	}
	if *letter == "" || len(sites) == 0 {
		log.Print("need -letter and at least one -sites entry")
		return core.ExitUsage
	}

	cfg := sitemgr.ManagerConfig{
		Letter:       (*letter)[0],
		Sites:        sites,
		MinAnnounced: *minAnnounced,
		Seed:         *seed,
		JournalPath:  *journal,
		StatePath:    *state,
		Interval:     *interval,
		SampleASNs:   spreadASNs(*samples),
	}
	if *rps > 0 {
		cfg.RRL = &rrl.Config{ResponsesPerSecond: float64(*rps), Burst: float64(*rps), SlipRatio: 0, PrefixBits: 32}
	}
	if *fast {
		cfg.FSM = sitemgr.Config{
			StressTicks: 1, FailTicks: 2, RecoverTicks: 2, DrainTicks: 2,
			ReprobeTicks: 2, ProbationTicks: 2, PenaltyHalfLife: 4,
		}
		cfg.ProbeTimeout = 150 * time.Millisecond
		cfg.ProbeRetries = -1 // single attempt per tick
	}
	if *faultProfile != "" {
		profile, err := faults.ProfileByName(*faultProfile)
		if err != nil {
			log.Print(err)
			return core.ExitUsage
		}
		shape := faults.Shape{Minutes: 1 << 20, Sites: map[byte]int{cfg.Letter: len(sites)}}
		compiled, err := faults.Compile(faults.RandomPlan(*faultSeed, profile), shape)
		if err != nil {
			log.Print(err)
			return core.ExitUsage
		}
		cfg.Faults = compiled
		log.Printf("injecting %s", compiled.Plan())
	}

	m, err := sitemgr.New(cfg)
	if err != nil {
		log.Print(err)
		return core.ExitCode(err)
	}
	defer func() {
		if cerr := m.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
	}()

	for i, s := range sites {
		log.Printf("site %d %s at %s", i, s, m.SiteAddr(i))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *ticks > 0 {
		for i := 0; i < *ticks; i++ {
			if err := m.TickOnce(ctx); err != nil {
				log.Print(err)
				return core.ExitCode(err)
			}
			if err := sleepCtx(ctx, *interval); err != nil {
				return core.ExitCanceled
			}
		}
		report(m)
		return core.ExitOK
	}

	err = m.Run(ctx)
	report(m)
	if errors.Is(err, context.Canceled) {
		// An interrupt is the normal way to stop an open-ended run.
		return core.ExitOK
	}
	if err != nil {
		log.Print(err)
		return core.ExitCode(err)
	}
	return core.ExitOK
}

// report logs the final per-site positions.
func report(m *sitemgr.Manager) {
	st := m.Status()
	log.Printf("tick %d: %d/%d announced (fabric v%d)", st.Tick, st.Announced, len(st.Sites), st.Version)
	for _, s := range st.Sites {
		log.Printf("  site %d %s: %s penalty %.0f catchment %d restarts %d",
			s.Index, s.Name, s.State, s.Penalty, s.Catchment, s.Restarts)
	}
}

// spreadASNs picks n spread-out sample ASNs for the state file.
func spreadASNs(n int) []topo.ASN {
	out := make([]topo.ASN, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, topo.ASN(10+7*i))
	}
	return out
}

// sleepCtx sleeps d or returns early when ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
