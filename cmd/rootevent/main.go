// Command rootevent runs the full Nov 30 / Dec 1 2015 reproduction and
// regenerates every table and figure of the paper's evaluation.
//
// Usage:
//
//	rootevent [-seed N] [-vps N] [-small] [-workers N] [-out DIR] [-only EXPR]
//	          [-faults random:SEED[:PROFILE]] [-minutes N]
//	          [-checkpoint DIR [-checkpoint-every N] [-resume | -supervise]]
//	          [-hashfile PATH]
//
// Results are written under -out (default ./out): one .txt rendering and,
// where applicable, one .csv series file per experiment. -only restricts
// output to a comma-separated list like "table2,fig3,fig11". All output
// files are written atomically (temp + fsync + rename), so a killed run
// never leaves torn results behind.
//
// With -checkpoint the engine snapshots its state every -checkpoint-every
// minutes; -resume restarts from the newest good snapshot (or from scratch
// when none is usable), and -supervise additionally runs the whole
// simulation under a watchdog that restarts from the last checkpoint after
// stalls and recovered panics, writing out/recovery.json. Either way the
// final output is byte-identical to an uninterrupted run.
//
// Exit status (the core.Exit* contract, stable for parent supervisors such
// as the campaign runner): 0 clean success, 1 generic failure, 2 panic,
// 3 restart-budget exhaustion under -supervise, 4 context cancellation.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/report"
	"github.com/rootevent/anycastddos/internal/rssac"
	"github.com/rootevent/anycastddos/internal/stats"
	"github.com/rootevent/anycastddos/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rootevent: ")

	seed := flag.Int64("seed", 1, "simulation seed (runs are bit-reproducible per seed)")
	vps := flag.Int("vps", 4000, "Atlas vantage-point population size")
	small := flag.Bool("small", false, "small topology and population for a quick run")
	workers := flag.Int("workers", 0, "parallel workers for simulation and measurement (0 = all cores; output is identical for any value)")
	outDir := flag.String("out", "out", "output directory")
	only := flag.String("only", "", "comma-separated experiment list (e.g. table2,fig3); empty = all")
	saveData := flag.String("save", "", "also archive the cleaned measurement dataset to this file")
	scheduleName := flag.String("schedule", "nov2015", "attack scenario: nov2015 (the paper) or june2016 (the follow-up event)")
	faultsSpec := flag.String("faults", "", "inject a seeded fault plan on top of the attack: random:SEED[:PROFILE] (profiles: light, heavy, monitor)")
	verbose := flag.Bool("progress", false, "log simulation/measurement progress")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file before exiting")
	minutesFlag := flag.Int("minutes", 0, "override the simulated minutes (0 = schedule default)")
	ckptDir := flag.String("checkpoint", "", "snapshot engine state into this directory for crash recovery")
	ckptEvery := flag.Int("checkpoint-every", 10, "minutes between checkpoints (with -checkpoint)")
	resume := flag.Bool("resume", false, "resume from the newest good snapshot in -checkpoint (falls back to a fresh run)")
	supervise := flag.Bool("supervise", false, "run under the crash supervisor: watchdog plus bounded restarts from -checkpoint")
	hashFile := flag.String("hashfile", "", "write the hex SHA-256 of the cleaned dataset to this file")
	flag.Parse()

	if *cpuProfile != "" {
		// The profile streams for the lifetime of the run; a temp+rename
		// write cannot express that, and a torn profile is harmless.
		f, err := os.Create(*cpuProfile) //repolint:allow atomicwrite
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeHeapProfile(*memProfile)

	cfg := core.DefaultConfig(*seed)
	cfg.VPs = *vps
	if *small {
		cfg.Topology = &topo.Config{Tier1s: 6, Tier2s: 60, Stubs: 800, Seed: *seed}
		cfg.VPs = 600
	}
	if *minutesFlag > 0 {
		cfg.Minutes = *minutesFlag
	}
	opts := []core.Option{core.WithWorkers(*workers)}
	switch *scheduleName {
	case "nov2015":
		// the default
	case "june2016":
		opts = append(opts, core.WithSchedule(attack.June2016Schedule()))
	default:
		log.Fatalf("unknown -schedule %q (nov2015 or june2016)", *scheduleName)
	}
	if *faultsSpec != "" {
		plan, err := parseFaultsSpec(*faultsSpec)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("fault injection: %s", plan)
		opts = append(opts, core.WithFaults(plan))
	}
	if *verbose {
		opts = append(opts, core.WithProgress(func(p core.Progress) {
			// Report at ~10% steps; progress arrives once per minute (run)
			// or per vantage point (measure), so modulo keeps it quiet.
			step := p.Total / 10
			if step == 0 {
				step = 1
			}
			if p.Done%step == 0 || p.Done == p.Total {
				log.Printf("  %s %d/%d", p.Stage, p.Done, p.Total)
			}
		}))
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	selected := func(key string) bool { return len(want) == 0 || want[key] }

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	if (*resume || *supervise) && *ckptDir == "" {
		log.Fatal("-resume and -supervise require -checkpoint DIR")
	}
	if *ckptDir != "" && !*supervise {
		// The supervisor appends its own checkpoint option per attempt.
		opts = append(opts, core.WithCheckpoint(*ckptDir, *ckptEvery))
	}

	start := time.Now()
	log.Printf("building evaluator (seed %d, %d VPs)...", *seed, cfg.VPs)
	var ev *core.Evaluator
	var err error
	switch {
	case *supervise:
		log.Printf("simulating the two event days (supervised)...")
		var rep *core.RecoveryReport
		ev, rep, err = core.Supervise(context.Background(), cfg, core.SupervisorConfig{
			Dir:    *ckptDir,
			EveryN: *ckptEvery,
			Seed:   *seed,
			Logf:   log.Printf,
		}, opts...)
		if werr := writeRecoveryReport(filepath.Join(*outDir, "recovery.json"), rep); werr != nil {
			log.Printf("recovery report: %v", werr)
		} else {
			log.Printf("wrote %s", filepath.Join(*outDir, "recovery.json"))
		}
		if err != nil {
			// Distinct documented exit codes (see core.ExitCode): 2 panic,
			// 3 restart budget exhausted, 4 canceled, 1 anything else — so a
			// parent supervisor can classify the failure without log parsing.
			code := core.ExitCode(err)
			log.Printf("supervised run failed (exit %d): %v", code, err)
			os.Exit(code)
		}
	case *resume:
		log.Printf("simulating the two event days (resuming from %s)...", *ckptDir)
		if ev, err = core.ResumeRun(*ckptDir, cfg, opts...); err != nil {
			log.Fatal(err)
		}
	default:
		if ev, err = core.NewEvaluator(cfg, opts...); err != nil {
			log.Fatal(err)
		}
		log.Printf("simulating the two event days...")
		if err := ev.Run(); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("running the Atlas measurement campaign...")
	d, err := ev.Measure()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("simulation + measurement done in %v (%d VPs kept, %d excluded)",
		time.Since(start).Round(time.Millisecond), d.NumVPs-d.NumExcluded(), d.NumExcluded())

	if *hashFile != "" {
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			log.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		if err := atomicio.WriteFileBytes(*hashFile, []byte(hex.EncodeToString(sum[:])+"\n")); err != nil {
			log.Fatal(err)
		}
		log.Printf("dataset hash %x -> %s", sum[:4], *hashFile)
	}

	if *saveData != "" {
		if err := atomicio.WriteFile(*saveData, d.Save); err != nil {
			log.Fatal(err)
		}
		log.Printf("archived dataset to %s", *saveData)
	}

	an := analysis.New(ev, d)

	run := func(key, desc string, fn func(w io.Writer) error) {
		if !selected(key) {
			return
		}
		path := filepath.Join(*outDir, key+".txt")
		err := atomicio.WriteFile(path, func(w io.Writer) error {
			fmt.Fprintf(w, "# %s\n# seed=%d vps=%d\n\n", desc, *seed, cfg.VPs)
			return fn(w)
		})
		if err != nil {
			log.Fatalf("%s: %v", key, err)
		}
		log.Printf("wrote %s (%s)", path, desc)
	}
	writeCSV := func(key string, series ...*stats.Series) {
		if !selected(key) || len(series) == 0 {
			return
		}
		path := filepath.Join(*outDir, key+".csv")
		err := atomicio.WriteFile(path, func(w io.Writer) error {
			return report.WriteSeriesCSV(w, series...)
		})
		if err != nil {
			log.Fatalf("%s: %v", key, err)
		}
	}

	letterSeriesCSV := func(m map[byte]*stats.Series) []*stats.Series {
		var out []*stats.Series
		for _, lb := range ev.Deployment.SortedLetters() {
			if s, ok := m[lb]; ok {
				out = append(out, s)
			}
		}
		return out
	}

	run("table2", "Table 2: letters, reported vs observed sites", func(w io.Writer) error {
		return report.WriteTable2(w, an.Table2())
	})
	run("table3", "Table 3: RSSAC-002 event-size estimation", func(w io.Writer) error {
		for evIdx := range ev.Schedule().Events {
			res, err := an.Table3(evIdx)
			if err != nil {
				return err
			}
			if err := report.WriteTable3(w, res); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	})
	run("fig2", "Figure 2 / §2.2: policy thought experiment", func(w io.Writer) error {
		return writePolicyCases(w)
	})

	fig3, err := an.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	run("fig3", "Figure 3: VPs with successful queries per letter", func(w io.Writer) error {
		return report.WriteLetterSeries(w, "VPs with successful queries (10-min bins)", fig3, 96)
	})
	writeCSV("fig3", letterSeriesCSV(fig3)...)

	fig4, err := an.Figure4()
	if err != nil {
		log.Fatal(err)
	}
	run("fig4", "Figure 4: median RTT per letter", func(w io.Writer) error {
		return report.WriteLetterSeries(w, "Median RTT of successful queries (ms)", fig4, 96)
	})
	writeCSV("fig4", letterSeriesCSV(fig4)...)

	for _, lb := range []byte{'E', 'K'} {
		key5 := fmt.Sprintf("fig5%c", lb+32)
		run(key5, fmt.Sprintf("Figure 5: %c-Root site swings", lb), func(w io.Writer) error {
			rows, err := an.Figure5(lb)
			if err != nil {
				return err
			}
			return report.WriteFigure5(w, lb, rows)
		})
		key6 := fmt.Sprintf("fig6%c", lb+32)
		run(key6, fmt.Sprintf("Figure 6: %c-Root per-site catchments", lb), func(w io.Writer) error {
			minis, err := an.Figure6(lb)
			if err != nil {
				return err
			}
			return report.WriteFigure6(w, lb, minis, 96)
		})
	}

	run("fig7", "Figure 7: RTT at stressed K-Root sites", func(w io.Writer) error {
		series, err := an.Figure7('K', []string{"AMS", "NRT", "LHR", "FRA"})
		if err != nil {
			return err
		}
		byLetter := map[byte]*stats.Series{}
		names := []string{"AMS", "NRT", "LHR", "FRA"}
		var csv []*stats.Series
		for i, n := range names {
			s := series["K-"+n]
			byLetter['1'+byte(i)] = s
			csv = append(csv, s)
			fmt.Fprintf(w, "  %d = K-%s\n", i+1, n)
		}
		writeCSV("fig7", csv...)
		return report.WriteLetterSeries(w, "Median RTT (ms) at selected K sites", byLetter, 96)
	})

	fig8, err := an.Figure8()
	if err != nil {
		log.Fatal(err)
	}
	run("fig8", "Figure 8: site flips per letter", func(w io.Writer) error {
		return report.WriteLetterSeries(w, "Site flips per 10-min bin", fig8, 96)
	})
	writeCSV("fig8", letterSeriesCSV(fig8)...)

	fig9 := an.Figure9()
	run("fig9", "Figure 9: BGP route changes per letter", func(w io.Writer) error {
		return report.WriteLetterSeries(w, "Route changes at 152 collector peers", fig9, 96)
	})
	writeCSV("fig9", letterSeriesCSV(fig9)...)

	run("fig10", "Figure 10: flip flows from K-LHR/K-FRA", func(w io.Writer) error {
		for evIdx := range ev.Schedule().Events {
			flows, err := an.Figure10('K', []string{"LHR", "FRA"}, evIdx)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "Event %d:\n", evIdx+1)
			if err := report.WriteFlipFlows(w, flows); err != nil {
				return err
			}
		}
		return nil
	})
	run("fig11", "Figure 11: VP raster for K-LHR/K-FRA homes", func(w io.Writer) error {
		rows, err := an.Figure11('K', "LHR", "FRA", "AMS", 300)
		if err != nil {
			return err
		}
		for evIdx := range ev.Schedule().Events {
			groups, err := an.ClassifyRaster(rows, evIdx)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "event %d behaviour groups (§3.4.2): ", evIdx+1)
			for g := analysis.RasterGroup(0); g < 4; g++ {
				fmt.Fprintf(w, "%s=%d ", g, groups[g])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
		return report.WriteRaster(w, rows, 180)
	})
	run("fig12-13", "Figures 12/13: per-server reachability and RTT (K-FRA, K-NRT)", func(w io.Writer) error {
		for _, code := range []string{"FRA", "NRT"} {
			series, err := an.FigureServers('K', code)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "K-%s:\n", code)
			if err := report.WriteServerSeries(w, series, 96); err != nil {
				return err
			}
		}
		return nil
	})
	run("fig14", "Figure 14: collateral damage at D-Root sites", func(w io.Writer) error {
		sites, err := an.Figure14('D', 0.10)
		if err != nil {
			return err
		}
		if len(sites) == 0 {
			fmt.Fprintln(w, "no D-Root site crossed the 10% dip threshold at this scale")
			return nil
		}
		var csv []*stats.Series
		for _, s := range sites {
			fmt.Fprintf(w, "  %-8s median %4.0f VPs, worst in-event dip %4.1f%%  %s\n",
				s.Site, s.MedianVPs, s.DipFrac*100, report.Sparkline(s.Series, 96))
			csv = append(csv, s.Series)
		}
		writeCSV("fig14", csv...)
		return nil
	})
	run("fig15", "Figure 15: .nl collateral damage", func(w io.Writer) error {
		series := an.Figure15()
		writeCSV("fig15", series...)
		for i, s := range series {
			min, _, _ := s.Min()
			fmt.Fprintf(w, "  .nl anycast %d (near %s)  %s  min=%.2f\n",
				i+1, ev.NLSites[i], report.Sparkline(s, 96), min)
		}
		return nil
	})
	run("correlation", "§3.2.1: sites vs worst reachability (paper: R²=0.87)", func(w io.Writer) error {
		res, err := an.SiteCorrelation()
		if err != nil {
			return err
		}
		return report.WriteCorrelation(w, res)
	})
	run("letterflips", "§3.2.2: failover load at L-Root", func(w io.Writer) error {
		res, err := an.LetterFlips('L')
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "L-Root normal %.0f q/s, peak event %.0f q/s (%.2fx), event-2 mean %.2fx (paper: 1.66x)\n",
			res.NormalQPS, res.PeakEventQPS, res.IncreaseRatio, res.Event2Ratio)
		return err
	})
	run("ablation", "full-event policy ablation: mix vs all-absorb vs all-withdraw", func(w io.Writer) error {
		abCfg := cfg
		abCfg.VPs = 50 // no measurement pass needed
		rows, err := analysis.PolicyAblation(abCfg)
		if err != nil {
			return err
		}
		out := make([][]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, []string{
				r.Policy,
				fmt.Sprintf("%.1f%%", r.ServedLegitFrac*100),
				fmt.Sprintf("%.1f%%", r.WorstMinuteFrac*100),
				fmt.Sprintf("%d", r.RouteChangeCount),
			})
		}
		if err := report.WriteTable(w, []string{"policy", "legit served (events)", "worst minute", "BGP updates"}, out); err != nil {
			return err
		}
		fmt.Fprintln(w, "\nFor a flood beyond aggregate capacity, absorbing protects more users")
		fmt.Fprintln(w, "than withdrawing — the paper's §2.2 case-5 conclusion at full scale.")
		return nil
	})
	run("dnsmon", "DNSMON-style availability dashboard", func(w io.Writer) error {
		rows, err := an.DNSMON()
		if err != nil {
			return err
		}
		out := make([][]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, []string{
				string(r.Letter),
				fmt.Sprintf("%.1f%%", r.OverallOKPct),
				fmt.Sprintf("%.1f%%", r.EventOKPct),
				fmt.Sprintf("%.1f%%", r.WorstBinPct),
				fmt.Sprintf("%.0f", r.MedianRTTms),
				fmt.Sprintf("%.0f", r.EventRTTp90ms),
			})
		}
		return report.WriteTable(w, []string{"letter", "overall ok", "event ok", "worst bin", "median RTT ms", "event p90 RTT ms"}, out)
	})
	run("detect", "blind event detection from the measurement data", func(w io.Writer) error {
		windows, err := an.DetectEvents(0.25, 3)
		if err != nil {
			return err
		}
		for _, win := range windows {
			fmt.Fprintf(w, "detected stress window minutes [%d, %d): letters %s\n",
				win.StartMinute, win.EndMinute, string(win.Letters))
		}
		matched, spurious, missed := analysis.MatchesKnownEvents(windows, ev.Schedule())
		fmt.Fprintf(w, "vs ground truth: %d/%d events matched, %d spurious, %d missed\n",
			matched, len(ev.Schedule().Events), spurious, missed)
		for _, e := range ev.Schedule().Events {
			fmt.Fprintf(w, "(true window: [%d,%d))\n", e.StartMinute, e.EndMinute)
		}
		return nil
	})
	run("rssac002", "RSSAC-002 daily reports for the reporting letters (A,H,J,K,L)", func(w io.Writer) error {
		dir := filepath.Join(*outDir, "rssac")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, l := range ev.Deployment.Letters {
			if !l.ReportsRSSAC {
				continue
			}
			for _, rep := range ev.RSSACReports(l.Letter) {
				name := fmt.Sprintf("%c-%s.yaml", l.Letter+32, rep.DayString())
				err := atomicio.WriteFile(filepath.Join(dir, name), func(w io.Writer) error {
					return rssac.WriteReport(w, rep)
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote rssac/%s (%.3g queries)\n", name, rep.Queries)
			}
		}
		return nil
	})
	run("userimpact", "extension (§2.3/§5): end-user impact through caching resolvers", func(w io.Writer) error {
		res, err := an.UserImpact(analysis.DefaultUserImpactConfig(*seed))
		if err != nil {
			return err
		}
		writeCSV("userimpact", res.FailFrac, res.MeanLatencyMs, res.FlipFrac, res.RootQueryFrac)
		maxFail, _, _ := res.FailFrac.Max()
		maxLat, _, _ := res.MeanLatencyMs.Max()
		maxFlip, _, _ := res.FlipFrac.Max()
		fmt.Fprintf(w, "%d user queries via %d resolvers; cache hit rate %.1f%%\n",
			res.TotalQueries, analysis.DefaultUserImpactConfig(*seed).Resolvers, res.CacheHitFrac*100)
		fmt.Fprintf(w, "  failures   %s  worst bin %.3f%%\n", report.Sparkline(res.FailFrac, 96), maxFail*100)
		fmt.Fprintf(w, "  latency ms %s  worst bin %.0f\n", report.Sparkline(res.MeanLatencyMs, 96), maxLat)
		fmt.Fprintf(w, "  flips      %s  worst bin %.1f%%\n", report.Sparkline(res.FlipFrac, 96), maxFlip*100)
		fmt.Fprintln(w, "Matches §2.3: despite per-letter losses up to ~95%, caching and")
		fmt.Fprintln(w, "cross-letter retries keep end-user failures near zero.")
		return nil
	})

	_ = atlas.AtlasTimeoutMs // keep import pinned for doc reference
	log.Printf("all selected experiments done in %v", time.Since(start).Round(time.Millisecond))
}

// writeHeapProfile records a post-GC heap profile to path (no-op when
// empty). It runs as a deferred cleanup, so failures log without Fatal —
// the run's results are already on disk.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := atomicio.WriteFile(path, pprof.WriteHeapProfile); err != nil {
		log.Printf("memprofile: %v", err)
		return
	}
	log.Printf("wrote heap profile to %s", path)
}

// writeRecoveryReport renders the supervisor's report as indented JSON,
// written atomically so a crash while reporting a crash stays readable.
func writeRecoveryReport(path string, rep *core.RecoveryReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal recovery report: %w", err)
	}
	return atomicio.WriteFileBytes(path, append(data, '\n'))
}

// parseFaultsSpec parses the -faults flag value "random:SEED[:PROFILE]"
// into a deterministic fault plan.
func parseFaultsSpec(spec string) (*faults.Plan, error) {
	parts := strings.Split(spec, ":")
	if parts[0] != "random" || len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("bad -faults %q: want random:SEED[:PROFILE]", spec)
	}
	seed, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad -faults seed %q: %w", parts[1], err)
	}
	pr := faults.LightProfile()
	if len(parts) == 3 {
		if pr, err = faults.ProfileByName(parts[2]); err != nil {
			return nil, err
		}
	}
	return faults.RandomPlan(seed, pr), nil
}

// writePolicyCases renders the §2.2 five-case sweep.
func writePolicyCases(w io.Writer) error {
	const s = 100.0
	fmt.Fprintln(w, "Deployment: s1 = s2 = 100, S3 = 1000; four clients; A0 = A1 sweep")
	rows := [][]string{}
	for _, a := range []float64{20, 40, 80, 120, 300, 600, 700, 900, 1200, 1500, 3000} {
		c := core.ClassifyPaperCase(s, a, a)
		sc := core.PaperScenario(s, a, a)
		hAbsorb, err := sc.Happiness(sc.DefaultAssignment())
		if err != nil {
			return err
		}
		_, hBest, err := sc.Best()
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", a),
			fmt.Sprintf("%d", c.Number),
			fmt.Sprintf("%d", hAbsorb),
			fmt.Sprintf("%d", hBest),
			c.Rationale,
		})
	}
	return report.WriteTable(w, []string{"A0=A1", "case", "H(absorb)", "H(best)", "rationale"}, rows)
}
