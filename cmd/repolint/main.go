// Command repolint runs the repository's static-analysis suite
// (internal/lintcheck) over one or more package patterns and reports any
// violation of the determinism, error-hygiene, panic-policy, API-hygiene,
// durability, or concurrency invariants — including the transitive
// determinism analysis, which prints the full call chain from an engine
// entry point to a forbidden time/randomness source.
//
// Usage:
//
//	go run ./cmd/repolint [flags] [patterns...]
//
//	-json            emit diagnostics as a JSON array instead of text
//	-rules           list every rule with its one-line doc and exit
//	-allows          list every //repolint:allow suppression and exit
//	-baseline FILE   diff findings against a committed baseline: findings
//	                 not in the baseline fail, and so do baseline entries
//	                 that no longer fire (the stale guard)
//	-write-baseline  regenerate the -baseline file from current findings
//	-out FILE        also write the full findings JSON to FILE (atomically)
//
// Patterns default to ./... and are resolved against the enclosing module
// root, so the tool behaves the same from any subdirectory. Exit status
// follows the core.Exit* contract: core.ExitOK when clean (or after
// -rules/-allows/-write-baseline), core.ExitFailure when diagnostics were
// reported, core.ExitUsage on load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/lintcheck"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of file:line:col text")
	rules := flag.Bool("rules", false, "list every rule with its one-line doc and exit")
	allows := flag.Bool("allows", false, "list every //repolint:allow suppression and exit")
	baselinePath := flag.String("baseline", "", "diff findings against this baseline file (fresh and stale both fail)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the -baseline file from current findings and exit")
	outPath := flag.String("out", "", "also write the full findings JSON to this file (atomically)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [flags] [patterns...]\n\nRules:\n")
		printRules(flag.CommandLine.Output())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		printRules(os.Stdout)
		os.Exit(core.ExitOK)
	}
	if *writeBaseline && *baselinePath == "" {
		fatal(fmt.Errorf("-write-baseline requires -baseline FILE"))
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lintcheck.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lintcheck.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}

	if *allows {
		for _, s := range lintcheck.Allows(pkgs) {
			line := fmt.Sprintf("%s:%d: %s", s.File, s.Line, strings.Join(s.Rules, ","))
			if s.Justification != "" {
				line += " -- " + s.Justification
			}
			fmt.Println(line)
		}
		os.Exit(core.ExitOK)
	}

	diags := lintcheck.Run(pkgs, lintcheck.DefaultConfig())

	if *outPath != "" {
		writeFindings(root, *outPath, diags)
	}
	if *writeBaseline {
		data, err := lintcheck.MarshalBaseline(diags)
		if err != nil {
			fatal(err)
		}
		abs := absAgainst(root, *baselinePath)
		if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
			fatal(err)
		}
		if err := atomicio.WriteFileBytes(abs, data); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "repolint: baseline %s written with %d finding(s)\n", *baselinePath, len(diags))
		os.Exit(core.ExitOK)
	}

	fresh, stale := diags, []lintcheck.Diagnostic(nil)
	if *baselinePath != "" {
		baseline, err := lintcheck.LoadBaselineFile(absAgainst(root, *baselinePath))
		if err != nil {
			fatal(err)
		}
		fresh, stale = lintcheck.DiffBaseline(diags, baseline)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []lintcheck.Diagnostic{}
		}
		if err := enc.Encode(fresh); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range fresh {
			fmt.Println(d)
		}
	}
	for _, d := range stale {
		fmt.Fprintf(os.Stderr, "repolint: stale baseline entry (finding no longer fires; run `make lint-baseline`): %s\n", d)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "repolint: %d violation(s), %d stale baseline entr(ies)\n", len(fresh), len(stale))
		}
		os.Exit(core.ExitFailure)
	}
}

func printRules(w interface{ Write([]byte) (int, error) }) {
	for _, r := range lintcheck.RuleDocs() {
		fmt.Fprintf(w, "  %-16s %s\n", r.Name, r.Doc)
	}
}

// writeFindings writes the complete findings array — before any baseline
// subtraction — as indented JSON, atomically, creating parent directories.
func writeFindings(root, path string, diags []lintcheck.Diagnostic) {
	if diags == nil {
		diags = []lintcheck.Diagnostic{}
	}
	data, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		fatal(err)
	}
	abs := absAgainst(root, path)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		fatal(err)
	}
	if err := atomicio.WriteFileBytes(abs, append(data, '\n')); err != nil {
		fatal(err)
	}
}

// absAgainst resolves a possibly-relative flag path against the module root,
// so `make lint` behaves identically from any subdirectory.
func absAgainst(root, path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(root, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(core.ExitUsage)
}
