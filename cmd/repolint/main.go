// Command repolint runs the repository's static-analysis suite
// (internal/lintcheck) over one or more package patterns and reports any
// violation of the determinism, error-hygiene, panic-policy, or API-hygiene
// invariants.
//
// Usage:
//
//	go run ./cmd/repolint [-json] [patterns...]
//
// Patterns default to ./... and are resolved against the enclosing module
// root, so the tool behaves the same from any subdirectory. Exit status is 0
// when the tree is clean, 1 when diagnostics were reported, and 2 on load or
// usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/rootevent/anycastddos/internal/lintcheck"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of file:line:col text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repolint [-json] [patterns...]\n\nRules:\n")
		for _, a := range lintcheck.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lintcheck.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lintcheck.Load(root, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags := lintcheck.Run(pkgs, lintcheck.DefaultConfig())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lintcheck.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "repolint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repolint:", err)
	os.Exit(2)
}
