// Command campaign sweeps a declarative grid of attack/defense/fault
// scenarios, each in an isolated child process, and aggregates the
// outcomes into one machine-readable report.
//
// Usage:
//
//	campaign -spec FILE -dir DIR [-resume] [-parallel N] [-timeout D]
//	         [-stall-timeout D] [-retries N] [-seed N] [-progress]
//	campaign diff OLD.json NEW.json
//
// The diff subcommand compares two campaign.json reports — grid
// membership, per-scenario terminal status/failure class, embedded
// outcome bytes, and the aggregate metrics — and exits 0 when they are
// equivalent, 1 when they differ (the `git diff --exit-code` convention,
// so a regression sweep can gate on it).
//
// The spec (see internal/campaign) declares per-axis value lists —
// schedules, intensities, duration scales, target sets, defense policies,
// fault plans, seeds — that are crossed into a deterministic scenario
// grid. Each scenario runs in its own child process (this binary
// re-invoked with -exec-scenario) under a hard deadline, heartbeat-based
// stall detection, and bounded seeded-backoff retries; progress is
// recorded in a crash-safe ledger under -dir, so after a crash or SIGKILL
//
//	campaign -spec FILE -dir DIR -resume
//
// skips completed scenarios, re-queues in-flight ones, and produces a
// campaign.json byte-identical to an uninterrupted run. Scenarios that
// keep failing are quarantined with a failure class (panic, timeout,
// stall, exit:N, ...) instead of aborting the sweep: the campaign exits 0
// with a degraded report as long as the grid reached a terminal state.
//
// Exit status follows the core.Exit* contract; the scenario children use
// it too, which is how the parent classifies their failures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/campaign"
	"github.com/rootevent/anycastddos/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaign: ")
	os.Exit(run())
}

func run() int {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		return diffMain(os.Args[2:])
	}

	specPath := flag.String("spec", "", "campaign spec JSON (required)")
	dir := flag.String("dir", "", "campaign directory: ledger, per-scenario state, report (required)")
	resume := flag.Bool("resume", false, "resume the campaign recorded in -dir's ledger")
	parallel := flag.Int("parallel", 2, "scenarios run concurrently")
	timeout := flag.Duration("timeout", 10*time.Minute, "hard per-scenario-attempt deadline")
	stallTimeout := flag.Duration("stall-timeout", 30*time.Second, "kill an attempt silent for this long")
	retries := flag.Int("retries", 3, "attempts before a scenario is quarantined")
	seed := flag.Int64("seed", 1, "retry-backoff jitter seed")
	progress := flag.Bool("progress", false, "log per-scenario lifecycle events")
	execScenario := flag.String("exec-scenario", "", "internal: run one scenario from this file (child mode)")
	flag.Parse()

	if *execScenario != "" {
		return childMain(*execScenario)
	}
	if *specPath == "" || *dir == "" {
		log.Print("need -spec FILE and -dir DIR")
		flag.Usage()
		return core.ExitUsage
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	spec, err := campaign.ParseSpec(data)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	self, err := os.Executable()
	if err != nil {
		log.Printf("resolve own binary for scenario children: %v", err)
		return core.ExitFailure
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rc := campaign.RunnerConfig{
		Dir:          *dir,
		Bin:          self,
		BaseArgs:     []string{"-exec-scenario"},
		Parallel:     *parallel,
		Timeout:      *timeout,
		StallTimeout: *stallTimeout,
		MaxAttempts:  *retries,
		Seed:         *seed,
		Resume:       *resume,
	}
	if *progress {
		rc.Logf = log.Printf
	}
	rep, err := campaign.Run(ctx, spec, rc)
	if err != nil {
		code := core.ExitCode(err)
		log.Printf("campaign failed (exit %d): %v", code, err)
		return code
	}
	reportPath := filepath.Join(*dir, campaign.ReportFileName)
	if err := campaign.WriteReport(reportPath, rep); err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	log.Printf("%s: %d scenarios — %d completed, %d quarantined, %d pending -> %s",
		rep.Name, rep.GridSize, rep.Completed, rep.Quarantined, rep.Pending, reportPath)
	for _, sr := range rep.Scenarios {
		if sr.Status == campaign.StatusQuarantined {
			log.Printf("  quarantined %s (%s)", sr.ID, sr.FailureClass)
		}
	}
	return core.ExitOK
}

// diffMain is the diff subcommand: compare two campaign.json reports and
// exit 0 on equivalence, 1 on difference.
func diffMain(args []string) int {
	if len(args) != 2 {
		log.Print("usage: campaign diff OLD.json NEW.json")
		return core.ExitUsage
	}
	oldRep, err := campaign.ReadReport(args[0])
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	newRep, err := campaign.ReadReport(args[1])
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	d := campaign.DiffReports(oldRep, newRep)
	fmt.Print(d.Render())
	if d.Empty() {
		return core.ExitOK
	}
	return core.ExitFailure
}

// childMain is scenario-child mode: run one grid point and leave its
// outcome next to the scenario file. Stdout lines double as liveness
// heartbeats for the parent's stall detector, and the exit status follows
// the core.Exit* contract so the parent can classify failures.
func childMain(scenPath string) int {
	log.SetPrefix("scenario: ")
	data, err := os.ReadFile(scenPath)
	if err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	var sc campaign.Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		log.Printf("parse scenario: %v", err)
		return core.ExitFailure
	}
	cfg, opts, err := sc.EngineConfig()
	if err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	// First heartbeat before any work: topology construction can take a
	// while in silence, and silence is what the parent kills for.
	fmt.Printf("%s starting (%d VPs, %d minutes)\n", sc.ID, sc.VPs, sc.Minutes)
	opts = append(opts, core.WithProgress(func(p core.Progress) {
		if sc.Chaos != nil && p.Stage == core.StageRun && p.Done >= sc.Chaos.Minute {
			applyChaos(sc.Chaos)
		}
		// One line per simulated minute / measured VP: the parent treats any
		// output as a heartbeat.
		fmt.Printf("%s %s %d/%d\n", sc.ID, p.Stage, p.Done, p.Total)
	}))

	ev, err := core.NewEvaluator(cfg, opts...)
	if err != nil {
		log.Print(err)
		return core.ExitCode(err)
	}
	if err := ev.Run(); err != nil {
		log.Print(err)
		return core.ExitCode(err)
	}
	d, err := ev.Measure()
	if err != nil {
		log.Print(err)
		return core.ExitCode(err)
	}
	out, err := analysis.New(ev, d).Outcome(analysis.DefaultOutcomeConfig(sc.Seed))
	if err != nil {
		log.Print(err)
		return core.ExitCode(err)
	}
	body, err := json.Marshal(out)
	if err != nil {
		log.Printf("encode outcome: %v", err)
		return core.ExitFailure
	}
	if err := atomicio.WriteFileBytes(filepath.Join(filepath.Dir(scenPath), campaign.OutcomeFileName), body); err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	fmt.Printf("%s done\n", sc.ID)
	return core.ExitOK
}

// applyChaos fires a scripted failure — the campaign-smoke hook proving
// the runner quarantines misbehaving scenarios instead of dying with them.
func applyChaos(c *campaign.ChaosSpec) {
	switch c.Kind {
	case "panic":
		panic(fmt.Sprintf("scripted chaos panic at minute %d", c.Minute))
	case "stall":
		// Sleep, not select{}: with every other goroutine parked on channels
		// the runtime's deadlock detector would crash the process (exit 2)
		// and the parent would see a panic instead of a stall.
		for {
			time.Sleep(time.Hour) //repolint:allow wallclock -- scripted stall, test-only chaos path
		}
	case "exit":
		os.Exit(c.Code)
	}
}
