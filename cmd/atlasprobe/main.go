// Command atlasprobe is the live-socket demonstration of the measurement
// methodology: it starts real UDP DNS servers playing the servers of a
// letter's anycast sites, probes them with CHAOS hostname.bind queries the
// way a RIPE Atlas VP does, and prints the catchment map recovered purely
// from reply parsing — including what happens when a site degrades.
//
// Usage:
//
//	atlasprobe [-letter K] [-probes N] [-loss P]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/dnsserver"
	"github.com/rootevent/anycastddos/internal/report"
	"github.com/rootevent/anycastddos/internal/rrl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atlasprobe: ")
	os.Exit(run())
}

func run() int {
	letterFlag := flag.String("letter", "K", "root letter to emulate")
	probes := flag.Int("probes", 40, "probes per site")
	loss := flag.Float64("loss", 0.6, "loss probability at the stressed site")
	flag.Parse()

	letter := byte((*letterFlag)[0])
	sites := []struct {
		code    string
		servers int
		loss    float64
		delay   time.Duration
	}{
		{"AMS", 3, 0, 0},
		{"LHR", 2, *loss, 150 * time.Millisecond}, // the degraded absorber
		{"FRA", 2, 0, 0},
	}

	var addrs []*net.UDPAddr
	rrlCfg := rrl.DefaultConfig()
	rrlCfg.ResponsesPerSecond = 1000 // measurement probes must not trip RRL here
	for _, site := range sites {
		for srv := 1; srv <= site.servers; srv++ {
			s, err := dnsserver.Start(dnsserver.Config{
				Letter: letter, Site: site.code, Server: srv,
				LossProb: site.loss, Delay: site.delay,
				RRL:  &rrlCfg,
				Seed: int64(srv),
			})
			if err != nil {
				log.Print(err)
				return core.ExitFailure
			}
			defer s.Close()
			addrs = append(addrs, s.Addr())
			log.Printf("started %s on %s", s.Identity(), s.Addr())
		}
	}

	prober := dnsserver.NewProber(1)
	prober.Timeout = 500 * time.Millisecond

	counts := map[string]int{}
	rtts := map[string][]float64{}
	timeouts := 0
	for i := 0; i < *probes; i++ {
		for _, a := range addrs {
			res, err := prober.Probe(a, letter)
			if err != nil {
				timeouts++
				continue
			}
			if res.Matched {
				name := res.Identity.SiteName()
				counts[name]++
				rtts[name] = append(rtts[name], float64(res.RTT.Milliseconds()))
			}
		}
	}

	fmt.Printf("\nCatchment map from CHAOS parsing (%d probes/server, %d timeouts):\n\n", *probes, timeouts)
	rows := [][]string{}
	for _, site := range sites {
		name := fmt.Sprintf("%c-%s", letter, site.code)
		var mean float64
		for _, r := range rtts[name] {
			mean += r
		}
		if n := len(rtts[name]); n > 0 {
			mean /= float64(n)
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", counts[name]),
			fmt.Sprintf("%.0f ms", mean),
			fmt.Sprintf("%.0f%%", site.loss*100),
		})
	}
	if err := report.WriteTable(os.Stdout, []string{"site", "replies", "mean RTT", "injected loss"}, rows); err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	fmt.Println("\nThe degraded absorber answers fewer probes at higher RTT — the")
	fmt.Println("signature the paper reads off K-AMS and K-NRT (Figures 6 and 7).")
	return core.ExitOK
}
