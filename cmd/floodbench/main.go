// Command floodbench measures this repository's DNS server under a
// fixed-name query flood — the §2.3 event workload — on the loopback
// interface. It reports how many queries the server absorbed, how RRL
// reshaped the response stream, and what a legitimate client experienced
// concurrently (via TCP fallback when its UDP answers are suppressed).
//
// The generator is a pool of workers, each owning its own source UDP
// socket and a reused batch of request buffers flushed through
// sendmmsg-style batched writes (internal/udpbatch), so a single core can
// source well over 1 Mq/s. Pacing, when requested with -rate, is amortized:
// the clock is consulted once per batch, never per packet.
//
// The generator only ever targets servers it starts itself on 127.0.0.1;
// it is a capacity benchmark for this codebase, not a traffic tool.
//
// Usage:
//
//	floodbench [-duration 2s] [-workers 4] [-batch 32] [-rate 0]
//	           [-server-workers 0] [-inproc] [-rrl] [-seed 1]
//
// With -inproc the generator bypasses the kernel and injects packets
// straight into the server's userspace packet path (Server.NewInjector):
// the number to read then is the path's per-core capacity, free of the
// loopback stack's per-datagram cost that bounds the socket mode.
//
// Exit status follows the core.Exit* contract: core.ExitOK on a complete
// run, core.ExitUsage when flags or startup preconditions are rejected,
// core.ExitFailure when the run itself fails.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/dnsserver"
	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/report"
	"github.com/rootevent/anycastddos/internal/rrl"
	"github.com/rootevent/anycastddos/internal/udpbatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("floodbench: ")
	os.Exit(run())
}

// run carries the whole benchmark so deferred cleanups (profiles, server
// shutdown, sockets) execute on every path — log.Fatal would skip them.
func run() int {
	duration := flag.Duration("duration", 2*time.Second, "flood duration")
	workers := flag.Int("workers", 4, "generator workers, each with its own source socket")
	batch := flag.Int("batch", 32, "datagrams per batched send")
	rate := flag.Float64("rate", 0, "aggregate target rate in q/s (0 = unpaced, flood at capacity)")
	serverWorkers := flag.Int("server-workers", 0, "server reader workers (0 = 1)")
	inproc := flag.Bool("inproc", false, "inject packets in process, bypassing the kernel (userspace path capacity)")
	useRRL := flag.Bool("rrl", true, "enable response-rate limiting on the server")
	seed := flag.Int64("seed", 1, "prober RNG seed, so bench runs are reproducible")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file before exiting")
	flag.Parse()
	if *workers < 1 || *batch < 1 || *rate < 0 || *duration <= 0 {
		log.Print("usage: -workers and -batch must be >= 1, -rate >= 0, -duration > 0")
		return core.ExitUsage
	}

	if *cpuProfile != "" {
		// The profile streams for the lifetime of the run; a temp+rename
		// write cannot express that, and a torn profile is harmless.
		f, err := os.Create(*cpuProfile) //repolint:allow atomicwrite
		if err != nil {
			log.Print(err)
			return core.ExitUsage
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Print(err)
			return core.ExitUsage
		}
		defer pprof.StopCPUProfile()
	}
	defer writeHeapProfile(*memProfile)

	cfg := dnsserver.Config{Letter: 'K', Site: "LHR", Server: 1, Workers: *serverWorkers}
	if *useRRL {
		r := rrl.DefaultConfig()
		cfg.RRL = &r
	}
	s, err := dnsserver.Start(cfg)
	if err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	defer s.Close()
	if err := s.StartTCP(); err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	if !s.Addr().IP.IsLoopback() {
		log.Print("refusing to run against a non-loopback address")
		return core.ExitUsage
	}
	// The flood: the fixed attack name of the event, replayed by every
	// generator worker as fast as pacing allows. Each worker owns an
	// unconnected source socket (a distinct heavy-hitter source) and a
	// batched sender over it.
	attackPkt, err := dnswire.NewQuery(7, "www.336901.com", dnswire.TypeA, dnswire.ClassINET).Pack()
	if err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	var sent atomic.Uint64
	stop := make(chan struct{})
	var genWG sync.WaitGroup
	perWorkerRate := *rate / float64(*workers)
	if *inproc {
		log.Printf("server %s in process (rrl=%v, injection workers=%d)", s.Identity(), *useRRL, *workers)
		for w := 0; w < *workers; w++ {
			in := s.NewInjector()
			src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(w + 1)}), 5353)
			genWG.Add(1)
			go inject(&genWG, stop, in, src, attackPkt, *batch, perWorkerRate, &sent)
		}
	} else {
		dst := s.Addr().AddrPort()
		senders := make([]*udpbatch.Conn, *workers)
		for w := range senders {
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				log.Print(err)
				return core.ExitFailure
			}
			defer conn.Close()
			if senders[w], err = udpbatch.New(conn, *batch); err != nil {
				log.Print(err)
				return core.ExitFailure
			}
		}
		log.Printf("server %s on %s (rrl=%v, server workers=%d, batched sends=%v)",
			s.Identity(), s.Addr(), *useRRL, max(*serverWorkers, 1), senders[0].Batched())
		for _, bc := range senders {
			genWG.Add(1)
			go generate(&genWG, stop, bc, dst, attackPkt, *batch, perWorkerRate, &sent)
		}
	}

	// A legitimate client probing once per 50 ms throughout the flood.
	prober := dnsserver.NewProber(*seed)
	prober.Timeout = 200 * time.Millisecond
	prober.FallbackTCP = true
	var clientOK, clientTCP, clientFail int
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		deadline := time.Now().Add(*duration)
		for time.Now().Before(deadline) {
			res, err := prober.Probe(s.Addr(), 'K')
			if err != nil {
				// UDP lost in the flooded socket queue: retry over TCP,
				// whose backlog is separate from the UDP buffer.
				res, err = prober.ProbeTCP(s.Addr(), 'K')
			}
			switch {
			case err != nil:
				clientFail++
			case res.ViaTCP:
				clientTCP++
				clientOK++
			default:
				clientOK++
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	time.Sleep(*duration)
	close(stop)
	genWG.Wait()
	<-clientDone
	time.Sleep(100 * time.Millisecond) // drain

	received, answered, droppedLoss, droppedRRL := s.Stats()
	secs := duration.Seconds()
	genRate := float64(sent.Load()) / secs
	rows := [][]string{
		{"flood packets sent", fmt.Sprintf("%d", sent.Load()),
			fmt.Sprintf("%.0f q/s (%.2f Mq/s over %d workers)", genRate, genRate/1e6, *workers)},
		{"server received", fmt.Sprintf("%d", received), fmt.Sprintf("%.0f q/s", float64(received)/secs)},
		{"server answered", fmt.Sprintf("%d", answered), fmt.Sprintf("%.1f%% of received", pct(answered, received))},
		{"suppressed by RRL", fmt.Sprintf("%d", droppedRRL), fmt.Sprintf("%.1f%% of received", pct(droppedRRL, received))},
		{"dropped (impairment)", fmt.Sprintf("%d", droppedLoss), ""},
		{"kernel/ingress drops", fmt.Sprintf("%d", max(int64(sent.Load())-int64(received), 0)), "socket-buffer overflow = the queue model's loss"},
	}
	if err := report.WriteTable(os.Stdout, []string{"counter", "value", "note"}, rows); err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	fmt.Printf("\nlegitimate client: %d served (%d via TCP fallback), %d failed\n",
		clientOK, clientTCP, clientFail)
	if *useRRL {
		fmt.Println("\nWith RRL the flood's duplicate responses are suppressed, while the")
		fmt.Println("legitimate client survives via truncate-then-TCP — the §2.3 defense.")
	} else {
		fmt.Println("\nWithout RRL every accepted flood query is amplified into a response;")
		fmt.Println("re-run with -rrl to see the suppression that blunted the 2015 events.")
	}
	return core.ExitOK
}

// inject is the in-process twin of generate: one Injector lane hammering
// the server's userspace packet path. The sent counter and (when rate > 0)
// the pacing clock are consulted once per batch-sized block, matching the
// socket workers' amortization.
func inject(wg *sync.WaitGroup, stop <-chan struct{}, in *dnsserver.Injector,
	src netip.AddrPort, pkt []byte, batch int, rate float64, sent *atomic.Uint64) {
	defer wg.Done()
	start := time.Now()
	var n uint64
	for {
		select {
		case <-stop:
			return
		default:
		}
		for i := 0; i < batch; i++ {
			in.Inject(pkt, src)
		}
		n += uint64(batch)
		sent.Add(uint64(batch))
		if rate > 0 {
			ahead := time.Duration(float64(n)/rate*float64(time.Second)) - time.Since(start)
			if ahead > time.Millisecond {
				time.Sleep(ahead)
			}
		}
	}
}

// generate is one flood worker: a dedicated source socket and a reused batch of
// identical attack packets, flushed with batched writes until stop closes.
// When rate > 0 the worker paces itself against its own start time, checking
// the clock once per batch: if the packets sent so far ran ahead of the
// target rate, it sleeps off the surplus before the next flush.
func generate(wg *sync.WaitGroup, stop <-chan struct{}, bc *udpbatch.Conn,
	dst netip.AddrPort, pkt []byte, batch int, rate float64, sent *atomic.Uint64) {
	defer wg.Done()
	ms := make([]udpbatch.Message, batch)
	for i := range ms {
		ms[i].Buf = pkt // shared: WriteBatch never mutates Buf
		ms[i].N = len(pkt)
		ms[i].Addr = dst
	}
	start := time.Now()
	var n uint64
	for {
		select {
		case <-stop:
			return
		default:
		}
		w, err := bc.WriteBatch(ms)
		if w > 0 {
			n += uint64(w)
			sent.Add(uint64(w))
		}
		if err != nil {
			return // socket closed under us; the run is over
		}
		if rate > 0 {
			ahead := time.Duration(float64(n)/rate*float64(time.Second)) - time.Since(start)
			if ahead > time.Millisecond {
				time.Sleep(ahead)
			}
		}
	}
}

// writeHeapProfile records a post-GC heap profile to path (no-op when
// empty). It runs as a deferred cleanup, so failures log without Fatal —
// the benchmark's results are already printed.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := atomicio.WriteFile(path, pprof.WriteHeapProfile); err != nil {
		log.Printf("memprofile: %v", err)
	}
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}
