// Command floodbench measures this repository's DNS server under a
// fixed-name query flood — the §2.3 event workload — on the loopback
// interface. It reports how many queries the server absorbed, how RRL
// reshaped the response stream, and what a legitimate client experienced
// concurrently (via TCP fallback when its UDP answers are suppressed).
//
// The generator only ever targets servers it starts itself on 127.0.0.1;
// it is a capacity benchmark for this codebase, not a traffic tool.
//
// Usage:
//
//	floodbench [-duration 2s] [-sources 50] [-workers N] [-rrl] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/dnsserver"
	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/report"
	"github.com/rootevent/anycastddos/internal/rrl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("floodbench: ")
	duration := flag.Duration("duration", 2*time.Second, "flood duration")
	sources := flag.Int("sources", 50, "distinct spoofed-source sockets (heavy hitters)")
	workers := flag.Int("workers", 0, "total sender goroutines spread over the source sockets (0 = one per socket)")
	useRRL := flag.Bool("rrl", true, "enable response-rate limiting on the server")
	seed := flag.Int64("seed", 1, "prober RNG seed, so bench runs are reproducible")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file before exiting")
	flag.Parse()

	if *cpuProfile != "" {
		// The profile streams for the lifetime of the run; a temp+rename
		// write cannot express that, and a torn profile is harmless.
		f, err := os.Create(*cpuProfile) //repolint:allow atomicwrite
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeHeapProfile(*memProfile)

	cfg := dnsserver.Config{Letter: 'K', Site: "LHR", Server: 1}
	if *useRRL {
		r := rrl.DefaultConfig()
		cfg.RRL = &r
	}
	s, err := dnsserver.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := s.StartTCP(); err != nil {
		log.Fatal(err)
	}
	if !s.Addr().IP.IsLoopback() {
		log.Fatal("refusing to run against a non-loopback address")
	}
	log.Printf("server %s on %s (rrl=%v)", s.Identity(), s.Addr(), *useRRL)

	// The flood: each "source" is one socket replaying the fixed attack
	// name as fast as it can, mimicking the top-200 heavy hitters.
	attackQ := dnswire.NewQuery(7, "www.336901.com", dnswire.TypeA, dnswire.ClassINET)
	attackPkt, err := attackQ.Pack()
	if err != nil {
		log.Fatal(err)
	}
	var sent atomic.Uint64
	stop := make(chan struct{})
	conns := make([]*net.UDPConn, *sources)
	for i := range conns {
		conn, err := net.DialUDP("udp", nil, s.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		conns[i] = conn
	}
	// Sender goroutines round-robin over the source sockets; concurrent
	// writes to one UDPConn are safe, so any worker count works.
	senders := *workers
	if senders <= 0 || len(conns) == 0 {
		senders = len(conns)
	}
	for w := 0; w < senders; w++ {
		go func(c *net.UDPConn) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Write(attackPkt); err != nil {
					return
				}
				sent.Add(1)
			}
		}(conns[w%len(conns)])
	}

	// A legitimate client probing once per 50 ms throughout the flood.
	prober := dnsserver.NewProber(*seed)
	prober.Timeout = 200 * time.Millisecond
	prober.FallbackTCP = true
	var clientOK, clientTCP, clientFail int
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		deadline := time.Now().Add(*duration)
		for time.Now().Before(deadline) {
			res, err := prober.Probe(s.Addr(), 'K')
			if err != nil {
				// UDP lost in the flooded socket queue: retry over TCP,
				// whose backlog is separate from the UDP buffer.
				res, err = prober.ProbeTCP(s.Addr(), 'K')
			}
			switch {
			case err != nil:
				clientFail++
			case res.ViaTCP:
				clientTCP++
				clientOK++
			default:
				clientOK++
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	time.Sleep(*duration)
	close(stop)
	<-clientDone
	time.Sleep(100 * time.Millisecond) // drain

	received, answered, droppedLoss, droppedRRL := s.Stats()
	secs := duration.Seconds()
	rows := [][]string{
		{"flood packets sent", fmt.Sprintf("%d", sent.Load()), fmt.Sprintf("%.0f q/s", float64(sent.Load())/secs)},
		{"server received", fmt.Sprintf("%d", received), fmt.Sprintf("%.0f q/s", float64(received)/secs)},
		{"server answered", fmt.Sprintf("%d", answered), fmt.Sprintf("%.1f%% of received", pct(answered, received))},
		{"suppressed by RRL", fmt.Sprintf("%d", droppedRRL), fmt.Sprintf("%.1f%% of received", pct(droppedRRL, received))},
		{"dropped (impairment)", fmt.Sprintf("%d", droppedLoss), ""},
		{"kernel/ingress drops", fmt.Sprintf("%d", int64(sent.Load())-int64(received)), "socket-buffer overflow = the queue model's loss"},
	}
	if err := report.WriteTable(os.Stdout, []string{"counter", "value", "note"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlegitimate client: %d served (%d via TCP fallback), %d failed\n",
		clientOK, clientTCP, clientFail)
	if *useRRL {
		fmt.Println("\nWith RRL the flood's duplicate responses are suppressed, while the")
		fmt.Println("legitimate client survives via truncate-then-TCP — the §2.3 defense.")
	} else {
		fmt.Println("\nWithout RRL every accepted flood query is amplified into a response;")
		fmt.Println("re-run with -rrl to see the suppression that blunted the 2015 events.")
	}
}

// writeHeapProfile records a post-GC heap profile to path (no-op when
// empty). It runs as a deferred cleanup, so failures log without Fatal —
// the benchmark's results are already printed.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := atomicio.WriteFile(path, pprof.WriteHeapProfile); err != nil {
		log.Printf("memprofile: %v", err)
	}
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}
