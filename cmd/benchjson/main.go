// Command benchjson converts `go test -bench` output into the repository's
// tracked benchmark baseline (BENCH_4.json): one entry per benchmark with
// ns/op, B/op, allocs/op and any custom ReportMetric values, plus a summary
// block with the headline ratios future PRs are judged against.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem ./... | benchjson -out BENCH_6.json
//	benchjson -in bench.out -out BENCH_6.json
//
// The output contains no timestamps or host-specific paths, so regenerating
// it on the same machine yields a minimal diff: only measured values change.
//
// Diff mode compares two baselines and gates CI on allocation regressions:
//
//	benchjson -diff BENCH_4.json BENCH_6.json
//	benchjson -diff -tolerance 'b_per_op=0.15,allocs_per_op=0.15' \
//	    -min-improve 'Figure4:b_per_op:5,Figure4:allocs_per_op:5' old.json new.json
//
// Gated metrics (default b_per_op and allocs_per_op — allocation counts are
// deterministic, wall time on shared runners is not) fail the diff when the
// new value regresses past its tolerance fraction; -min-improve additionally
// demands a named benchmark improved by at least the given factor.
//
// Two further gates read only the NEW baseline, for benchmarks with no
// counterpart in the old file (a fresh slow-vs-fast pair measured in the
// same run):
//
//	-min-ratio 'FloodPath/legacy:FloodPath/fast:ns_per_op:5'  slow/fast >= factor
//	-max 'FloodPath/fast:allocs_per_op:0'                     absolute cap
//
// Exit status follows the core.Exit* contract: core.ExitOK when every gate
// passed, core.ExitFailure when a gate failed or an output could not be
// written, core.ExitUsage for bad flags or unreadable/malformed inputs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"

	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/core"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the serialized baseline file.
type Output struct {
	Schema     string             `json:"schema"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Summary    map[string]float64 `json:"summary,omitempty"`
}

// benchLine matches "BenchmarkName-8   200   1234 ns/op   56 B/op ..." with
// the measurement fields left for pair-wise parsing.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	os.Exit(run())
}

// run carries the whole conversion or diff, returning the process exit
// code: usage problems are distinguished from gate failures so CI scripts
// can tell a broken invocation from a real regression.
func run() int {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON baseline file (default: stdout)")
	diff := flag.Bool("diff", false, "compare two baseline files: benchjson -diff old.json new.json")
	tolerance := flag.String("tolerance", "b_per_op=0.15,allocs_per_op=0.15",
		"diff mode: allowed fractional regression per gated metric")
	minImprove := flag.String("min-improve", "",
		"diff mode: required improvements, bench:metric:factor[,...]")
	minRatio := flag.String("min-ratio", "",
		"diff mode: same-run ratios required in the new file, slow:fast:metric:factor[,...]")
	maxVals := flag.String("max", "",
		"diff mode: absolute caps on the new file, bench:metric:value[,...]")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Print("diff mode needs exactly two baseline files: benchjson -diff old.json new.json")
			return core.ExitUsage
		}
		return runDiff(flag.Arg(0), flag.Arg(1), *tolerance, *minImprove, *minRatio, *maxVals)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Print(err)
			return core.ExitUsage
		}
		defer f.Close()
		r = f
	}
	res, err := parse(r)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	if len(res.Benchmarks) == 0 {
		log.Print("no benchmark lines found in input")
		return core.ExitUsage
	}
	res.Summary = summarize(res.Benchmarks)

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return core.ExitOK
	}
	if err := atomicio.WriteFileBytes(*out, data); err != nil {
		log.Print(err)
		return core.ExitFailure
	}
	log.Printf("wrote %d benchmarks to %s", len(res.Benchmarks), *out)
	return core.ExitOK
}

// runDiff loads two baselines, prints the comparison, and returns the exit
// code: core.ExitFailure when any tolerance, min-improve, min-ratio, or max
// requirement fails.
func runDiff(oldPath, newPath, tolerance, minImprove, minRatio, maxVals string) int {
	tol, err := parseTolerances(tolerance)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	reqs, err := parseMinImprove(minImprove)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	ratios, err := parseMinRatio(minRatio)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	maxes, err := parseMax(maxVals)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	load := func(path string) (*Output, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var o Output
		if err := json.Unmarshal(data, &o); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &o, nil
	}
	oldOut, err := load(oldPath)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	newOut, err := load(newPath)
	if err != nil {
		log.Print(err)
		return core.ExitUsage
	}
	res := diffBaselines(oldOut, newOut, tol, reqs)
	gate := gateNewFile(newOut, ratios, maxes)
	res.Lines = append(res.Lines, gate.Lines...)
	res.Failures = append(res.Failures, gate.Failures...)
	for _, line := range res.Lines {
		fmt.Println(line)
	}
	if len(res.Failures) > 0 {
		for _, f := range res.Failures {
			fmt.Fprintln(os.Stderr, "FAIL: "+f)
		}
		return core.ExitFailure
	}
	fmt.Printf("benchjson diff: %d benchmarks compared, gate passed\n", len(res.Lines))
	return core.ExitOK
}

// parse scans bench output, keeping goos/goarch headers and result lines.
func parse(r io.Reader) (*Output, error) {
	res := &Output{Schema: "rootevent-bench-v1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			res.Goos = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			res.Goarch = v
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		runs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad run count in %q: %w", line, err)
		}
		b := Benchmark{Name: strings.TrimPrefix(m[1], "Benchmark"), Runs: runs}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd measurement fields in %q", line)
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
			}
			val := v
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = &val
			case "allocs/op":
				b.AllocsPerOp = &val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		res.Benchmarks = append(res.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// summarize derives the headline ratios tracked across PRs. The "before"
// numbers are the reference full-sweep sub-bench, measured in the same run
// as the incremental path, so the ratio is apples-to-apples.
func summarize(benchmarks []Benchmark) map[string]float64 {
	byName := make(map[string]Benchmark, len(benchmarks))
	for _, b := range benchmarks {
		byName[b.Name] = b
	}
	s := make(map[string]float64)
	full, okF := byName["ComputeFullVsIncremental/full"]
	incr, okI := byName["ComputeFullVsIncremental/incremental"]
	if okF && okI && incr.NsPerOp > 0 {
		s["compute_speedup_full_vs_incremental"] = round2(full.NsPerOp / incr.NsPerOp)
		if full.AllocsPerOp != nil && incr.AllocsPerOp != nil && *incr.AllocsPerOp > 0 {
			s["compute_allocs_reduction"] = round2(*full.AllocsPerOp / *incr.AllocsPerOp)
		}
	}
	if cached, ok := byName["ComputeFullVsIncremental/cached"]; ok && okF && cached.NsPerOp > 0 {
		s["compute_speedup_full_vs_cached"] = round2(full.NsPerOp / cached.NsPerOp)
	}
	if legacy, okL := byName["FloodPath/legacy"]; okL {
		if fast, okFast := byName["FloodPath/fast"]; okFast && fast.NsPerOp > 0 {
			s["server_speedup_legacy_vs_fast"] = round2(legacy.NsPerOp / fast.NsPerOp)
			// 1 Mq/s per core corresponds to 1000 ns/op on the packet path.
			s["server_fast_mqps_per_core"] = round2(1000 / fast.NsPerOp)
		}
	}
	if probe, ok := byName["ProbeOutcome"]; ok {
		s["probe_outcome_ns_per_op"] = probe.NsPerOp
		if probe.AllocsPerOp != nil {
			s["probe_outcome_allocs_per_op"] = *probe.AllocsPerOp
		}
	}
	if len(s) == 0 {
		return nil
	}
	return s
}

// round2 keeps ratio noise out of the committed file.
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
