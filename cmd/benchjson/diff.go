package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// metricReading extracts one gated metric from a benchmark entry; ok is
// false when the benchmark did not report it.
func metricReading(b Benchmark, metric string) (float64, bool) {
	switch metric {
	case "ns_per_op":
		return b.NsPerOp, b.NsPerOp > 0
	case "b_per_op":
		if b.BytesPerOp == nil {
			return 0, false
		}
		return *b.BytesPerOp, true
	case "allocs_per_op":
		if b.AllocsPerOp == nil {
			return 0, false
		}
		return *b.AllocsPerOp, true
	default:
		v, ok := b.Metrics[metric]
		return v, ok
	}
}

// improveReq demands that new is at least Factor times better (smaller) than
// old for one benchmark metric: old/new >= Factor.
type improveReq struct {
	Bench  string
	Metric string
	Factor float64
}

// parseTolerances parses "b_per_op=0.15,allocs_per_op=0.15" into a map of
// allowed fractional regressions per metric.
func parseTolerances(s string) (map[string]float64, error) {
	tol := make(map[string]float64)
	if s == "" {
		return tol, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad tolerance %q (want metric=frac)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad tolerance fraction %q", v)
		}
		tol[k] = f
	}
	return tol, nil
}

// parseMinImprove parses "Figure4:b_per_op:5,Figure4:allocs_per_op:5".
func parseMinImprove(s string) ([]improveReq, error) {
	if s == "" {
		return nil, nil
	}
	var reqs []improveReq
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad min-improve %q (want bench:metric:factor)", part)
		}
		f, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad min-improve factor %q", fields[2])
		}
		reqs = append(reqs, improveReq{Bench: fields[0], Metric: fields[1], Factor: f})
	}
	return reqs, nil
}

// diffResult separates what a human wants to read (Lines) from what CI
// gates on (Failures).
type diffResult struct {
	Lines    []string
	Failures []string
}

// diffBaselines compares two parsed baselines benchmark-by-benchmark. A
// gated metric fails when new exceeds old by more than its tolerance
// fraction; a min-improve requirement fails when old/new falls short of the
// demanded factor. Benchmarks present in only one file are reported but
// never fail the gate, so adding or retiring a benchmark does not require
// regenerating the old baseline in the same commit.
func diffBaselines(oldOut, newOut *Output, tol map[string]float64, reqs []improveReq) diffResult {
	var res diffResult
	oldBy := make(map[string]Benchmark, len(oldOut.Benchmarks))
	for _, b := range oldOut.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]Benchmark, len(newOut.Benchmarks))
	for _, b := range newOut.Benchmarks {
		newBy[b.Name] = b
	}

	gated := make([]string, 0, len(tol))
	for m := range tol {
		gated = append(gated, m)
	}
	sort.Strings(gated)

	for _, nb := range newOut.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s new benchmark (no baseline)", nb.Name))
			continue
		}
		for _, metric := range gated {
			ov, okO := metricReading(ob, metric)
			nv, okN := metricReading(nb, metric)
			if !okO || !okN {
				continue
			}
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f -> %14.0f (%+.1f%%)",
				nb.Name, metric, ov, nv, pctChange(ov, nv)))
			if nv > ov*(1+tol[metric]) {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s %s regressed: %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
					nb.Name, metric, ov, nv, pctChange(ov, nv), tol[metric]*100))
			}
		}
	}
	for _, ob := range oldOut.Benchmarks {
		if _, ok := newBy[ob.Name]; !ok {
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s removed (was in baseline)", ob.Name))
		}
	}

	for _, req := range reqs {
		nb, okB := newBy[req.Bench]
		ob, okO := oldBy[req.Bench]
		if !okB || !okO {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"min-improve %s:%s: benchmark missing from %s", req.Bench, req.Metric,
				map[bool]string{true: "new baseline", false: "old baseline"}[okO]))
			continue
		}
		ov, okOV := metricReading(ob, req.Metric)
		nv, okNV := metricReading(nb, req.Metric)
		if !okOV || !okNV {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"min-improve %s:%s: metric not reported", req.Bench, req.Metric))
			continue
		}
		factor := ov / nv
		if nv == 0 {
			// A drop to zero is an unbounded improvement.
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f -> 0 (min-improve %gx: ok)",
				req.Bench, req.Metric, ov, req.Factor))
			continue
		}
		if factor < req.Factor {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"min-improve %s:%s: %.0f -> %.0f is %.2fx, need >= %gx",
				req.Bench, req.Metric, ov, nv, factor, req.Factor))
			continue
		}
		res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f -> %14.0f (min-improve %gx: %.1fx ok)",
			req.Bench, req.Metric, ov, nv, req.Factor, factor))
	}
	return res
}

// pctChange is the signed percent change from old to new.
func pctChange(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}
