package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// metricReading extracts one gated metric from a benchmark entry; ok is
// false when the benchmark did not report it.
func metricReading(b Benchmark, metric string) (float64, bool) {
	switch metric {
	case "ns_per_op":
		return b.NsPerOp, b.NsPerOp > 0
	case "b_per_op":
		if b.BytesPerOp == nil {
			return 0, false
		}
		return *b.BytesPerOp, true
	case "allocs_per_op":
		if b.AllocsPerOp == nil {
			return 0, false
		}
		return *b.AllocsPerOp, true
	default:
		v, ok := b.Metrics[metric]
		return v, ok
	}
}

// improveReq demands that new is at least Factor times better (smaller) than
// old for one benchmark metric: old/new >= Factor.
type improveReq struct {
	Bench  string
	Metric string
	Factor float64
}

// parseTolerances parses "b_per_op=0.15,allocs_per_op=0.15" into a map of
// allowed fractional regressions per metric.
func parseTolerances(s string) (map[string]float64, error) {
	tol := make(map[string]float64)
	if s == "" {
		return tol, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad tolerance %q (want metric=frac)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("bad tolerance fraction %q", v)
		}
		tol[k] = f
	}
	return tol, nil
}

// parseMinImprove parses "Figure4:b_per_op:5,Figure4:allocs_per_op:5".
func parseMinImprove(s string) ([]improveReq, error) {
	if s == "" {
		return nil, nil
	}
	var reqs []improveReq
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad min-improve %q (want bench:metric:factor)", part)
		}
		f, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad min-improve factor %q", fields[2])
		}
		reqs = append(reqs, improveReq{Bench: fields[0], Metric: fields[1], Factor: f})
	}
	return reqs, nil
}

// ratioReq demands that, within one baseline file, the slow benchmark's
// metric is at least Factor times the fast benchmark's: slow/fast >= Factor.
// This gates same-run speedups (legacy path vs fast path) without needing
// either bench to exist in an older baseline.
type ratioReq struct {
	Slow, Fast, Metric string
	Factor             float64
}

// parseMinRatio parses "FloodPath/legacy:FloodPath/fast:ns_per_op:5,...".
func parseMinRatio(s string) ([]ratioReq, error) {
	if s == "" {
		return nil, nil
	}
	var reqs []ratioReq
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("bad min-ratio %q (want slow:fast:metric:factor)", part)
		}
		f, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad min-ratio factor %q", fields[3])
		}
		reqs = append(reqs, ratioReq{Slow: fields[0], Fast: fields[1], Metric: fields[2], Factor: f})
	}
	return reqs, nil
}

// maxReq caps a metric's absolute value in the new baseline: bench:metric
// must read at most Value. The canonical use is allocs_per_op at 0.
type maxReq struct {
	Bench, Metric string
	Value         float64
}

// parseMax parses "FloodPath/fast:allocs_per_op:0,...".
func parseMax(s string) ([]maxReq, error) {
	if s == "" {
		return nil, nil
	}
	var reqs []maxReq
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad max %q (want bench:metric:value)", part)
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad max value %q", fields[2])
		}
		reqs = append(reqs, maxReq{Bench: fields[0], Metric: fields[1], Value: v})
	}
	return reqs, nil
}

// diffResult separates what a human wants to read (Lines) from what CI
// gates on (Failures).
type diffResult struct {
	Lines    []string
	Failures []string
}

// gateNewFile evaluates the requirements that read only the new baseline:
// min-ratio (same-run slow/fast factors) and max (absolute caps). A missing
// benchmark or metric is a hard failure — the gate must not silently pass
// because a bench was renamed away.
func gateNewFile(newOut *Output, ratios []ratioReq, maxes []maxReq) diffResult {
	var res diffResult
	byName := make(map[string]Benchmark, len(newOut.Benchmarks))
	for _, b := range newOut.Benchmarks {
		byName[b.Name] = b
	}
	reading := func(gate, bench, metric string) (float64, bool) {
		b, ok := byName[bench]
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: benchmark %s missing from baseline", gate, bench))
			return 0, false
		}
		v, ok := metricReading(b, metric)
		if !ok {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %s does not report %s", gate, bench, metric))
			return 0, false
		}
		return v, true
	}
	for _, req := range ratios {
		gate := fmt.Sprintf("min-ratio %s:%s:%s", req.Slow, req.Fast, req.Metric)
		sv, okS := reading(gate, req.Slow, req.Metric)
		fv, okF := reading(gate, req.Fast, req.Metric)
		if !okS || !okF {
			continue
		}
		if fv == 0 {
			// The fast path hitting zero is an unbounded ratio.
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f vs 0 (min-ratio %gx: ok)",
				req.Slow+"/"+req.Fast, req.Metric, sv, req.Factor))
			continue
		}
		ratio := sv / fv
		if ratio < req.Factor {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"%s: %.0f vs %.0f is %.2fx, need >= %gx", gate, sv, fv, ratio, req.Factor))
			continue
		}
		res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f vs %14.0f (min-ratio %gx: %.1fx ok)",
			req.Slow+" / "+req.Fast, req.Metric, sv, fv, req.Factor, ratio))
	}
	for _, req := range maxes {
		gate := fmt.Sprintf("max %s:%s", req.Bench, req.Metric)
		v, ok := reading(gate, req.Bench, req.Metric)
		if !ok {
			continue
		}
		if v > req.Value {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %.2f exceeds cap %g", gate, v, req.Value))
			continue
		}
		res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.2f (max %g: ok)", req.Bench, req.Metric, v, req.Value))
	}
	return res
}

// diffBaselines compares two parsed baselines benchmark-by-benchmark. A
// gated metric fails when new exceeds old by more than its tolerance
// fraction; a min-improve requirement fails when old/new falls short of the
// demanded factor. Benchmarks present in only one file are reported but
// never fail the gate, so adding or retiring a benchmark does not require
// regenerating the old baseline in the same commit.
func diffBaselines(oldOut, newOut *Output, tol map[string]float64, reqs []improveReq) diffResult {
	var res diffResult
	oldBy := make(map[string]Benchmark, len(oldOut.Benchmarks))
	for _, b := range oldOut.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]Benchmark, len(newOut.Benchmarks))
	for _, b := range newOut.Benchmarks {
		newBy[b.Name] = b
	}

	gated := make([]string, 0, len(tol))
	for m := range tol {
		gated = append(gated, m)
	}
	sort.Strings(gated)

	for _, nb := range newOut.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s new benchmark (no baseline)", nb.Name))
			continue
		}
		for _, metric := range gated {
			ov, okO := metricReading(ob, metric)
			nv, okN := metricReading(nb, metric)
			if !okO || !okN {
				continue
			}
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f -> %14.0f (%+.1f%%)",
				nb.Name, metric, ov, nv, pctChange(ov, nv)))
			if nv > ov*(1+tol[metric]) {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s %s regressed: %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
					nb.Name, metric, ov, nv, pctChange(ov, nv), tol[metric]*100))
			}
		}
	}
	for _, ob := range oldOut.Benchmarks {
		if _, ok := newBy[ob.Name]; !ok {
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s removed (was in baseline)", ob.Name))
		}
	}

	for _, req := range reqs {
		nb, okB := newBy[req.Bench]
		ob, okO := oldBy[req.Bench]
		if !okB || !okO {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"min-improve %s:%s: benchmark missing from %s", req.Bench, req.Metric,
				map[bool]string{true: "new baseline", false: "old baseline"}[okO]))
			continue
		}
		ov, okOV := metricReading(ob, req.Metric)
		nv, okNV := metricReading(nb, req.Metric)
		if !okOV || !okNV {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"min-improve %s:%s: metric not reported", req.Bench, req.Metric))
			continue
		}
		factor := ov / nv
		if nv == 0 {
			// A drop to zero is an unbounded improvement.
			res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f -> 0 (min-improve %gx: ok)",
				req.Bench, req.Metric, ov, req.Factor))
			continue
		}
		if factor < req.Factor {
			res.Failures = append(res.Failures, fmt.Sprintf(
				"min-improve %s:%s: %.0f -> %.0f is %.2fx, need >= %gx",
				req.Bench, req.Metric, ov, nv, factor, req.Factor))
			continue
		}
		res.Lines = append(res.Lines, fmt.Sprintf("%-28s %-13s %14.0f -> %14.0f (min-improve %gx: %.1fx ok)",
			req.Bench, req.Metric, ov, nv, req.Factor, factor))
	}
	return res
}

// pctChange is the signed percent change from old to new.
func pctChange(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}
