package main

import (
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func baseline(benches ...Benchmark) *Output {
	return &Output{Schema: "rootevent-bench-v1", Benchmarks: benches}
}

func TestParseTolerances(t *testing.T) {
	tol, err := parseTolerances("b_per_op=0.15,allocs_per_op=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if tol["b_per_op"] != 0.15 || tol["allocs_per_op"] != 0.2 {
		t.Fatalf("parsed %v", tol)
	}
	if _, err := parseTolerances("nonsense"); err == nil {
		t.Error("missing '=' should fail")
	}
	if _, err := parseTolerances("x=-1"); err == nil {
		t.Error("negative tolerance should fail")
	}
}

func TestParseMinImprove(t *testing.T) {
	reqs, err := parseMinImprove("Figure4:b_per_op:5,Figure4:allocs_per_op:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || reqs[0] != (improveReq{"Figure4", "b_per_op", 5}) {
		t.Fatalf("parsed %v", reqs)
	}
	if _, err := parseMinImprove("a:b"); err == nil {
		t.Error("two fields should fail")
	}
	if _, err := parseMinImprove("a:b:0"); err == nil {
		t.Error("zero factor should fail")
	}
}

func TestDiffWithinTolerancePasses(t *testing.T) {
	oldOut := baseline(Benchmark{Name: "X", NsPerOp: 100, BytesPerOp: f64(1000), AllocsPerOp: f64(10)})
	newOut := baseline(Benchmark{Name: "X", NsPerOp: 500, BytesPerOp: f64(1100), AllocsPerOp: f64(11)})
	tol := map[string]float64{"b_per_op": 0.15, "allocs_per_op": 0.15}
	res := diffBaselines(oldOut, newOut, tol, nil)
	if len(res.Failures) != 0 {
		t.Fatalf("10%% growth within 15%% tolerance failed: %v", res.Failures)
	}
	// ns_per_op is not gated by default: the 5x slowdown above must not fail.
}

func TestDiffRegressionFails(t *testing.T) {
	oldOut := baseline(Benchmark{Name: "X", NsPerOp: 100, BytesPerOp: f64(1000), AllocsPerOp: f64(10)})
	newOut := baseline(Benchmark{Name: "X", NsPerOp: 100, BytesPerOp: f64(1200), AllocsPerOp: f64(10)})
	tol := map[string]float64{"b_per_op": 0.15, "allocs_per_op": 0.15}
	res := diffBaselines(oldOut, newOut, tol, nil)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "b_per_op regressed") {
		t.Fatalf("20%% b_per_op growth should fail the gate: %v", res.Failures)
	}
}

func TestDiffMinImprove(t *testing.T) {
	oldOut := baseline(Benchmark{Name: "Figure4", NsPerOp: 100, BytesPerOp: f64(70_000_000), AllocsPerOp: f64(40_000)})
	good := baseline(Benchmark{Name: "Figure4", NsPerOp: 100, BytesPerOp: f64(1_000_000), AllocsPerOp: f64(100)})
	bad := baseline(Benchmark{Name: "Figure4", NsPerOp: 100, BytesPerOp: f64(30_000_000), AllocsPerOp: f64(100)})
	reqs := []improveReq{{"Figure4", "b_per_op", 5}, {"Figure4", "allocs_per_op", 5}}

	if res := diffBaselines(oldOut, good, nil, reqs); len(res.Failures) != 0 {
		t.Fatalf("70x/400x improvements should satisfy 5x: %v", res.Failures)
	}
	res := diffBaselines(oldOut, bad, nil, reqs)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "min-improve Figure4:b_per_op") {
		t.Fatalf("2.3x improvement should miss the 5x floor: %v", res.Failures)
	}
	// A benchmark missing from the new baseline is a hard failure: the gate
	// must not silently pass because the bench was renamed away.
	res = diffBaselines(oldOut, baseline(Benchmark{Name: "Other", NsPerOp: 1}), nil, reqs[:1])
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "missing") {
		t.Fatalf("missing benchmark should fail min-improve: %v", res.Failures)
	}
}

func TestDiffAddedAndRemovedAreReportedNotFailed(t *testing.T) {
	oldOut := baseline(Benchmark{Name: "Gone", NsPerOp: 1, BytesPerOp: f64(1)})
	newOut := baseline(Benchmark{Name: "Fresh", NsPerOp: 1, BytesPerOp: f64(1)})
	res := diffBaselines(oldOut, newOut, map[string]float64{"b_per_op": 0.15}, nil)
	if len(res.Failures) != 0 {
		t.Fatalf("added/removed benchmarks must not fail the gate: %v", res.Failures)
	}
	joined := strings.Join(res.Lines, "\n")
	if !strings.Contains(joined, "Fresh") || !strings.Contains(joined, "Gone") {
		t.Fatalf("added/removed benchmarks should be reported:\n%s", joined)
	}
}

func TestDiffZeroNewValueIsUnboundedImprovement(t *testing.T) {
	oldOut := baseline(Benchmark{Name: "X", NsPerOp: 100, AllocsPerOp: f64(50)})
	newOut := baseline(Benchmark{Name: "X", NsPerOp: 100, AllocsPerOp: f64(0)})
	reqs := []improveReq{{"X", "allocs_per_op", 5}}
	if res := diffBaselines(oldOut, newOut, nil, reqs); len(res.Failures) != 0 {
		t.Fatalf("50 -> 0 allocs should satisfy any factor: %v", res.Failures)
	}
}

func TestParseMinRatio(t *testing.T) {
	reqs, err := parseMinRatio("FloodPath/legacy:FloodPath/fast:ns_per_op:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0] != (ratioReq{"FloodPath/legacy", "FloodPath/fast", "ns_per_op", 5}) {
		t.Fatalf("parsed %v", reqs)
	}
	if _, err := parseMinRatio("a:b:c"); err == nil {
		t.Error("three fields should fail")
	}
	if _, err := parseMinRatio("a:b:c:0"); err == nil {
		t.Error("zero factor should fail")
	}
}

func TestParseMax(t *testing.T) {
	reqs, err := parseMax("FloodPath/fast:allocs_per_op:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0] != (maxReq{"FloodPath/fast", "allocs_per_op", 0}) {
		t.Fatalf("parsed %v", reqs)
	}
	if _, err := parseMax("a:b"); err == nil {
		t.Error("two fields should fail")
	}
	if _, err := parseMax("a:b:-1"); err == nil {
		t.Error("negative cap should fail")
	}
}

func TestGateMinRatio(t *testing.T) {
	newOut := baseline(
		Benchmark{Name: "FloodPath/legacy", NsPerOp: 1200},
		Benchmark{Name: "FloodPath/fast", NsPerOp: 100},
	)
	if res := gateNewFile(newOut, []ratioReq{{"FloodPath/legacy", "FloodPath/fast", "ns_per_op", 5}}, nil); len(res.Failures) != 0 {
		t.Fatalf("12x ratio should satisfy 5x: %v", res.Failures)
	}
	res := gateNewFile(newOut, []ratioReq{{"FloodPath/legacy", "FloodPath/fast", "ns_per_op", 20}}, nil)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "min-ratio") {
		t.Fatalf("12x ratio should miss the 20x floor: %v", res.Failures)
	}
	// A renamed-away benchmark must fail loudly, not pass silently.
	res = gateNewFile(newOut, []ratioReq{{"FloodPath/legacy", "Gone", "ns_per_op", 5}}, nil)
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "missing") {
		t.Fatalf("missing fast bench should fail: %v", res.Failures)
	}
}

func TestGateMax(t *testing.T) {
	newOut := baseline(Benchmark{Name: "FloodPath/fast", NsPerOp: 100, AllocsPerOp: f64(0)})
	if res := gateNewFile(newOut, nil, []maxReq{{"FloodPath/fast", "allocs_per_op", 0}}); len(res.Failures) != 0 {
		t.Fatalf("0 allocs within cap 0 failed: %v", res.Failures)
	}
	leaky := baseline(Benchmark{Name: "FloodPath/fast", NsPerOp: 100, AllocsPerOp: f64(2)})
	res := gateNewFile(leaky, nil, []maxReq{{"FloodPath/fast", "allocs_per_op", 0}})
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "exceeds cap") {
		t.Fatalf("2 allocs over cap 0 should fail: %v", res.Failures)
	}
	res = gateNewFile(leaky, nil, []maxReq{{"FloodPath/fast", "qps", 1}})
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "does not report") {
		t.Fatalf("unreported metric should fail: %v", res.Failures)
	}
}
