package main

// The sitefailover mode: an end-to-end proof of the self-healing site
// manager over real sockets and real process death. It runs cmd/sitemgr as
// a child, floods one site with real UDP until both health signals fail,
// watches the manager withdraw it (state.json + journal), verifies the
// catchment shift by re-probing a sampled AS's reassigned site address
// with a real CHAOS query, SIGKILLs the manager while the site is out,
// proves the journal resume restores the withdrawn state and damping
// penalty, then lifts the flood and watches the site return to rotation.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/rootevent/anycastddos/internal/dnsserver"
	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/sitemgr"
)

// siteFailover is the mode entry point.
func siteFailover(ctx context.Context, seed int64) error {
	work, err := os.MkdirTemp("", "chaossoak-sitefailover-*")
	if err != nil {
		return fmt.Errorf("workdir: %w", err)
	}
	defer os.RemoveAll(work)

	bin := filepath.Join(work, "sitemgr-bin")
	log.Printf("building sitemgr...")
	if out, err := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/sitemgr").CombinedOutput(); err != nil {
		return fmt.Errorf("build sitemgr (run from the repo root): %w\n%s", err, out)
	}

	statePath := filepath.Join(work, "state.json")
	journalPath := filepath.Join(work, "journal.bin")
	args := []string{
		"-letter", "K", "-sites", "AMS,LHR,NRT",
		"-seed", strconv.FormatInt(seed, 10),
		"-interval", "100ms", "-fast",
		"-rrl-rps", "20", "-samples", "16",
		"-state", statePath, "-journal", journalPath,
	}

	// Phase 1: start the manager, wait for a fully healthy deployment.
	child, childDone, err := startManager(ctx, bin, args)
	if err != nil {
		return err
	}
	killed := false
	defer func() {
		if !killed {
			child.Process.Kill()
			<-childDone
		}
	}()
	st, err := waitState(ctx, statePath, 30*time.Second, func(st *sitemgr.StateFile) bool {
		return st.Announced == len(st.Sites) && allStates(st, "healthy")
	})
	if err != nil {
		return fmt.Errorf("deployment never settled healthy: %w", err)
	}
	log.Printf("tick %d: all %d sites healthy and announced", st.Tick, len(st.Sites))

	victim := st.Sites[0]
	witness, ok := sampleServedBy(st, victim.Index)
	if !ok {
		return fmt.Errorf("no sampled AS routed to site %d; raise -samples", victim.Index)
	}
	if err := probeIdentity(ctx, witness.Addr, victim.Name); err != nil {
		return fmt.Errorf("pre-flood witness probe: %w", err)
	}
	log.Printf("witness AS %d served by site %d (%s) at %s", witness.ASN, victim.Index, victim.Name, witness.Addr)

	// Phase 2: flood the victim until both health signals fail and the
	// manager withdraws it.
	stopFlood, err := floodAddr(victim.Addr)
	if err != nil {
		return fmt.Errorf("start flood: %w", err)
	}
	floodStopped := false
	defer func() {
		if !floodStopped {
			stopFlood()
		}
	}()
	st, err = waitState(ctx, statePath, 60*time.Second, func(st *sitemgr.StateFile) bool {
		return !st.Sites[victim.Index].Announced
	})
	if err != nil {
		return fmt.Errorf("flooded site never withdrawn: %w", err)
	}
	log.Printf("tick %d: site %d withdrawn under flood (state %s, penalty %.0f)",
		st.Tick, victim.Index, st.Sites[victim.Index].State, st.Sites[victim.Index].Penalty)
	if err := requireJournal(journalPath, sitemgr.RecTransition, "withdraw"); err != nil {
		return err
	}

	// Phase 3: the witness AS must now be served by a survivor — confirm
	// with a real CHAOS probe against its reassigned address.
	shifted, ok := sampleByASN(st, witness.ASN)
	if !ok || shifted.Site == victim.Index {
		return fmt.Errorf("witness AS %d still routed to the withdrawn site: %+v", witness.ASN, shifted)
	}
	if shifted.Site >= 0 {
		newSite := st.Sites[shifted.Site]
		if err := probeIdentity(ctx, shifted.Addr, newSite.Name); err != nil {
			return fmt.Errorf("post-withdraw witness probe: %w", err)
		}
		log.Printf("catchment shifted: witness AS %d now served by site %d (%s)", witness.ASN, shifted.Site, newSite.Name)
	}

	// Phase 4: SIGKILL the manager while the site is out, then resume on
	// the same journal. The resumed manager must come back withdrawn with
	// a damping penalty — not fresh — while the flood still rages.
	killed = true
	if err := child.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL manager: %w", err)
	}
	<-childDone
	if err := os.Remove(statePath); err != nil {
		return fmt.Errorf("clear stale state file: %w", err)
	}
	log.Printf("manager SIGKILLed; resuming on the journal...")
	child, childDone, err = startManager(ctx, bin, args)
	if err != nil {
		return err
	}
	killed = false
	st, err = waitState(ctx, statePath, 30*time.Second, func(st *sitemgr.StateFile) bool {
		return st.Tick >= 1
	})
	if err != nil {
		return fmt.Errorf("resumed manager published no state: %w", err)
	}
	resumed := st.Sites[victim.Index]
	if resumed.Announced || resumed.State == "healthy" {
		return fmt.Errorf("journal resume lost the withdrawal: %+v", resumed)
	}
	if resumed.Penalty <= 0 {
		return fmt.Errorf("journal resume lost the damping penalty: %+v", resumed)
	}
	log.Printf("resume ok: site %d still %s, penalty %.0f", victim.Index, resumed.State, resumed.Penalty)

	// Phase 5: lift the flood; the site re-proves health and returns.
	stopFlood()
	floodStopped = true
	st, err = waitState(ctx, statePath, 60*time.Second, func(st *sitemgr.StateFile) bool {
		s := st.Sites[victim.Index]
		return s.Announced && s.State == "healthy"
	})
	if err != nil {
		return fmt.Errorf("site never returned to rotation: %w", err)
	}
	if err := probeIdentity(ctx, st.Sites[victim.Index].Addr, victim.Name); err != nil {
		return fmt.Errorf("post-recovery probe: %w", err)
	}
	if err := requireJournal(journalPath, sitemgr.RecTransition, "announce"); err != nil {
		return err
	}
	log.Printf("tick %d: site %d re-announced and healthy; failover loop closed", st.Tick, victim.Index)

	// Shut the manager down cleanly (SIGTERM exits 0).
	if err := child.Process.Signal(os.Interrupt); err != nil {
		return fmt.Errorf("interrupt manager: %w", err)
	}
	killed = true // the deferred hard-kill is no longer needed
	if werr := <-childDone; werr != nil {
		return fmt.Errorf("manager exit after interrupt: %w", werr)
	}
	return nil
}

// startManager launches one sitemgr child and returns its wait channel.
func startManager(ctx context.Context, bin string, args []string) (*exec.Cmd, chan error, error) {
	cmd := exec.CommandContext(ctx, bin, args...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("start sitemgr: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	return cmd, done, nil
}

// waitState polls the manager's atomic state file until pred holds.
func waitState(ctx context.Context, path string, timeout time.Duration, pred func(*sitemgr.StateFile) bool) (*sitemgr.StateFile, error) {
	deadline := time.Now().Add(timeout)
	var last *sitemgr.StateFile
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, err := os.ReadFile(path)
		if err == nil {
			var st sitemgr.StateFile
			// The write is atomic (rename), so a parse failure is a bug,
			// not a torn read.
			if err := json.Unmarshal(data, &st); err != nil {
				return nil, fmt.Errorf("parse %s: %w", path, err)
			}
			last = &st
			if pred(&st) {
				return &st, nil
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
	if last != nil {
		return nil, fmt.Errorf("timeout after %v; last state: tick %d, sites %s", timeout, last.Tick, summarize(last))
	}
	return nil, fmt.Errorf("timeout after %v; no state file at %s", timeout, path)
}

func summarize(st *sitemgr.StateFile) string {
	var parts []string
	for _, s := range st.Sites {
		parts = append(parts, fmt.Sprintf("%d:%s/ann=%v", s.Index, s.State, s.Announced))
	}
	return strings.Join(parts, " ")
}

func allStates(st *sitemgr.StateFile, want string) bool {
	for _, s := range st.Sites {
		if s.State != want {
			return false
		}
	}
	return true
}

// sampleServedBy finds a sampled AS currently routed to the given site.
func sampleServedBy(st *sitemgr.StateFile, site int) (sitemgr.SampleRoute, bool) {
	for _, s := range st.Samples {
		if s.Site == site {
			return s, true
		}
	}
	return sitemgr.SampleRoute{}, false
}

// sampleByASN finds the sample entry for one AS.
func sampleByASN(st *sitemgr.StateFile, asn int32) (sitemgr.SampleRoute, bool) {
	for _, s := range st.Samples {
		if s.ASN == asn {
			return s, true
		}
	}
	return sitemgr.SampleRoute{}, false
}

// probeIdentity sends a real CHAOS probe to addr and checks the site name
// in the returned identity.
func probeIdentity(ctx context.Context, addr, wantSite string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	p := dnsserver.NewProber(1)
	p.Timeout = 2 * time.Second
	p.Retries = 2
	res, err := p.ProbeContext(ctx, udpAddr, 'K')
	if err != nil {
		return fmt.Errorf("probe %s: %w", addr, err)
	}
	if !res.Matched || res.Identity.Site != wantSite {
		return fmt.Errorf("probe %s: identity %q, want site %s", addr, res.RawTXT, wantSite)
	}
	return nil
}

// requireJournal reads the live journal and checks a record with the given
// type and action exists.
func requireJournal(path, recType, action string) error {
	recs, err := sitemgr.ReadJournal(path)
	if err != nil {
		return fmt.Errorf("read journal: %w", err)
	}
	for _, r := range recs {
		if r.Type == recType && r.Action == action {
			return nil
		}
	}
	return fmt.Errorf("journal has no %s/%s record (%d records)", recType, action, len(recs))
}

// floodAddr sends CHAOS queries to addr as fast as a goroutine can.
func floodAddr(addr string) (stop func(), err error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	q := dnswire.NewQuery(99, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	pkt, err := q.Pack()
	if err != nil {
		return nil, errors.Join(err, conn.Close())
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			conn.Write(pkt)
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		conn.Close()
	}, nil
}
