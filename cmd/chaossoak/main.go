// Command chaossoak soaks the evaluation engine under adversarial
// conditions. It has two modes:
//
//	-mode soak (default): for each seed it draws a deterministic fault
//	plan, runs a small but full-pipeline simulation with the faults
//	injected, and checks that the engine finishes cleanly — no panics
//	(worker panics surface as wrapped errors naming the letter and
//	minute) and a measurable dataset at the end. The first few seeds are
//	additionally replayed sequentially to prove the faulted run is
//	worker-count independent.
//
//	-mode killresume: builds the rootevent binary, records the golden
//	dataset hash of an uninterrupted run, then repeatedly SIGKILLs a
//	checkpointing child at seeded random epochs and resumes it from the
//	snapshots the kill left behind. The final resumed run's hash must
//	equal the golden hash — the crash-recovery guarantee, end to end
//	through real process death. Run it from the repository root.
//
// Usage:
//
//	chaossoak [-mode soak|killresume] [-seeds N] [-profile light|heavy|monitor]
//	          [-workers N] [-minutes N] [-equiv N] [-kills N] [-seed N]
//
// The first failed verification exits non-zero immediately.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rootevent/anycastddos/internal/checkpoint"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaossoak: ")
	mode := flag.String("mode", "soak", "soak (fault-plan survival) or killresume (SIGKILL + checkpoint resume)")
	seeds := flag.Int("seeds", 8, "soak: number of fault-plan seeds")
	profileName := flag.String("profile", "heavy", "soak: fault profile: light, heavy, or monitor")
	workers := flag.Int("workers", 4, "engine worker goroutines")
	minutes := flag.Int("minutes", 1440, "simulated minutes per run")
	equiv := flag.Int("equiv", 2, "soak: seeds to replay sequentially for worker-equivalence")
	kills := flag.Int("kills", 3, "killresume: SIGKILL cycles before the final resume")
	seed := flag.Int64("seed", 7, "killresume: seed for the run and the kill schedule")
	flag.Parse()

	// Interrupts cancel the in-flight engine run or child process instead
	// of leaving it orphaned.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "soak":
		if err := soak(ctx, *seeds, *profileName, *workers, *minutes, *equiv); err != nil {
			log.Fatal(err)
		}
	case "killresume":
		if err := killResume(ctx, *seed, *kills, *minutes, *workers); err != nil {
			log.Fatal(err)
		}
		log.Printf("killresume ok: %d kill cycles, resumed hash matches golden (seed %d)", *kills, *seed)
	default:
		log.Fatalf("unknown -mode %q (soak or killresume)", *mode)
	}
}

// soak runs the fault-plan survival matrix, failing fast on the first
// seed that panics, errors, or breaks worker-count equivalence.
func soak(ctx context.Context, seeds int, profileName string, workers, minutes, equiv int) error {
	profile, err := faults.ProfileByName(profileName)
	if err != nil {
		return err
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("soak canceled at seed %d: %w", seed, err)
		}
		plan := faults.RandomPlan(seed, profile)
		start := time.Now()
		hash, err := soakRun(ctx, plan, seed, minutes, workers)
		if err != nil {
			return fmt.Errorf("seed %d (%v): %w", seed, time.Since(start).Round(time.Millisecond), err)
		}
		status := fmt.Sprintf("seed %d ok   (%v, %d fault events, hash %x)",
			seed, time.Since(start).Round(time.Millisecond), len(plan.Events), hash[:4])
		if seed <= int64(equiv) && workers != 1 {
			seqHash, err := soakRun(ctx, plan, seed, minutes, 1)
			if err != nil {
				return fmt.Errorf("seed %d sequential replay: %w", seed, err)
			}
			if seqHash != hash {
				return fmt.Errorf("seed %d: workers=%d hash %x != workers=1 hash %x",
					seed, workers, hash[:4], seqHash[:4])
			}
			status += " equiv-ok"
		}
		log.Print(status)
	}
	log.Printf("all %d seeds survived (%s profile, %d workers)", seeds, profileName, workers)
	return nil
}

// soakRun executes one faulted simulation and returns the dataset hash.
func soakRun(ctx context.Context, plan *faults.Plan, seed int64, minutes, workers int) ([32]byte, error) {
	var zero [32]byte
	cfg := core.DefaultConfig(seed)
	cfg.Topology = &topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: seed}
	cfg.VPs = 150
	cfg.BotnetOrigins = 25
	cfg.Minutes = minutes
	ev, err := core.NewEvaluator(cfg, core.WithWorkers(workers), core.WithFaults(plan), core.WithContext(ctx))
	if err != nil {
		return zero, err
	}
	if err := ev.Run(); err != nil {
		return zero, err
	}
	d, err := ev.Measure()
	if err != nil {
		return zero, err
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		return zero, err
	}
	return sha256.Sum256(buf.Bytes()), nil
}

// killResume proves crash recovery through real process death: golden
// uninterrupted child, then `kills` SIGKILL-at-a-seeded-epoch cycles
// resuming from checkpoints, then a final resume to completion whose
// dataset hash must equal the golden one.
func killResume(ctx context.Context, seed int64, kills, minutes, workers int) error {
	if minutes < 40 {
		return fmt.Errorf("killresume needs -minutes >= 40 to fit kill points, got %d", minutes)
	}
	work, err := os.MkdirTemp("", "chaossoak-killresume-*")
	if err != nil {
		return fmt.Errorf("workdir: %w", err)
	}
	defer os.RemoveAll(work)

	bin := filepath.Join(work, "rootevent")
	log.Printf("building rootevent...")
	if out, err := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/rootevent").CombinedOutput(); err != nil {
		return fmt.Errorf("build rootevent (run from the repo root): %w\n%s", err, out)
	}

	common := []string{
		"-small",
		"-seed", strconv.FormatInt(seed, 10),
		"-minutes", strconv.Itoa(minutes),
		"-workers", strconv.Itoa(workers),
		"-only", "none",
	}
	goldenHash := filepath.Join(work, "golden.hash")
	log.Printf("golden uninterrupted run (seed %d, %d minutes)...", seed, minutes)
	if err := runChild(ctx, bin, append(common,
		"-out", filepath.Join(work, "out-golden"), "-hashfile", goldenHash)); err != nil {
		return fmt.Errorf("golden run: %w", err)
	}

	ckptDir := filepath.Join(work, "ckpt")
	for k, target := range killTargets(seed, kills, minutes) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("killresume canceled before cycle %d: %w", k, err)
		}
		args := append(common,
			"-out", filepath.Join(work, fmt.Sprintf("out-kill%d", k)),
			"-checkpoint", ckptDir, "-resume")
		completed, err := killCycle(ctx, bin, args, ckptDir, target)
		if err != nil {
			return fmt.Errorf("kill cycle %d: %w", k, err)
		}
		if completed {
			log.Printf("cycle %d: child completed before the minute-%d kill point", k, target)
			continue
		}
		m, err := checkpoint.LatestMinute(ckptDir)
		if err != nil {
			return fmt.Errorf("kill cycle %d left no readable checkpoint: %w", k, err)
		}
		log.Printf("cycle %d: SIGKILLed child past minute %d (newest snapshot: minute %d)", k, target, m)
	}

	resumedHash := filepath.Join(work, "resumed.hash")
	log.Printf("final resume to completion...")
	if err := runChild(ctx, bin, append(common,
		"-out", filepath.Join(work, "out-final"),
		"-checkpoint", ckptDir, "-resume", "-hashfile", resumedHash)); err != nil {
		return fmt.Errorf("final resume: %w", err)
	}

	golden, err := os.ReadFile(goldenHash)
	if err != nil {
		return fmt.Errorf("read golden hash: %w", err)
	}
	resumed, err := os.ReadFile(resumedHash)
	if err != nil {
		return fmt.Errorf("read resumed hash: %w", err)
	}
	if !bytes.Equal(golden, resumed) {
		return fmt.Errorf("resumed dataset hash %s != golden %s",
			strings.TrimSpace(string(resumed)), strings.TrimSpace(string(golden)))
	}
	return nil
}

// runChild runs one rootevent invocation to completion, folding its
// combined output into the wrapped error on failure.
func runChild(ctx context.Context, bin string, args []string) error {
	cmd := exec.CommandContext(ctx, bin, args...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("%s %s: %w\n%s", filepath.Base(bin), strings.Join(args, " "), err, out.Bytes())
	}
	return nil
}

// killTargets draws an increasing seeded schedule of kill minutes, each a
// checkpoint-stride multiple, so every cycle advances past new snapshots.
func killTargets(seed int64, kills, minutes int) []int {
	const stride = 10
	rng := rand.New(rand.NewSource(seed))
	span := minutes - 2*stride // keep clear of the end so kills interrupt
	targets := make([]int, kills)
	lo := stride
	for k := range targets {
		hi := span - (kills-1-k)*stride
		t := lo
		if hi > lo {
			t = lo + rng.Intn((hi-lo)/stride+1)*stride
		}
		targets[k] = t
		lo = t + stride
	}
	return targets
}

// killCycle starts one checkpointing child and SIGKILLs it once its
// newest durable snapshot reaches the target minute. completed reports
// that the child finished the whole run before the kill fired.
func killCycle(ctx context.Context, bin string, args []string, ckptDir string, target int) (completed bool, err error) {
	cmd := exec.CommandContext(ctx, bin, args...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		return false, fmt.Errorf("start child: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			<-done // CommandContext already killed the child
			return false, fmt.Errorf("canceled waiting for minute %d: %w", target, ctx.Err())
		case werr := <-done:
			if werr != nil {
				return false, fmt.Errorf("child died before the kill at minute %d: %w\n%s", target, werr, out.Bytes())
			}
			return true, nil
		case <-ticker.C:
			m, lerr := checkpoint.LatestMinute(ckptDir)
			if lerr != nil || m < target {
				continue // no snapshot yet, or not far enough
			}
			kerr := cmd.Process.Kill()
			werr := <-done
			if kerr != nil && !errors.Is(kerr, os.ErrProcessDone) {
				return false, fmt.Errorf("SIGKILL child: %w", kerr)
			}
			// werr is the expected "signal: killed" — or nil when the child
			// won the race and completed first.
			return werr == nil, nil
		}
	}
}
