// Command chaossoak soaks the evaluation engine under adversarial
// conditions. It has two modes:
//
//	-mode soak (default): for each seed it draws a deterministic fault
//	plan, runs a small but full-pipeline simulation with the faults
//	injected, and checks that the engine finishes cleanly — no panics
//	(worker panics surface as wrapped errors naming the letter and
//	minute) and a measurable dataset at the end. The first few seeds are
//	additionally replayed sequentially to prove the faulted run is
//	worker-count independent.
//
//	-mode killresume: builds the rootevent binary, records the golden
//	dataset hash of an uninterrupted run, then repeatedly SIGKILLs a
//	checkpointing child at seeded random epochs and resumes it from the
//	snapshots the kill left behind. The final resumed run's hash must
//	equal the golden hash — the crash-recovery guarantee, end to end
//	through real process death. Run it from the repository root.
//
//	-mode campaignresume: the same guarantee one level up, for the
//	campaign runner. It records the golden campaign.json of an
//	uninterrupted grid sweep, then repeatedly SIGKILLs the runner at
//	seeded points of ledger progress and resumes it; the final resumed
//	campaign.json must be byte-identical to the golden one. Run it from
//	the repository root.
//
//	-mode campaignsmoke: runs a tiny campaign grid containing one
//	scripted-panic and one scripted-stall scenario and verifies both end
//	up quarantined with the right failure class while the clean
//	scenarios complete — the degraded-mode guarantee behind
//	`make campaign-smoke`. Run it from the repository root.
//
//	-mode sitefailover: builds the sitemgr binary, runs it as a child
//	serving three real loopback sites, floods one with real UDP until
//	the manager withdraws it, verifies the catchment shift with a real
//	CHAOS probe, SIGKILLs the manager and proves the journal resume
//	keeps the site withdrawn with its damping penalty, then lifts the
//	flood and watches the site heal back into rotation. The guarantee
//	behind `make soak-failover`. Run it from the repository root.
//
// Usage:
//
//	chaossoak [-mode soak|killresume|campaignresume|campaignsmoke|sitefailover]
//	          [-seeds N] [-profile light|heavy|monitor]
//	          [-workers N] [-minutes N] [-equiv N] [-kills N] [-seed N]
//
// The first failed verification exits non-zero immediately.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"encoding/json"

	"github.com/rootevent/anycastddos/internal/campaign"
	"github.com/rootevent/anycastddos/internal/checkpoint"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaossoak: ")
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "soak", "soak (fault-plan survival) or killresume (SIGKILL + checkpoint resume)")
	seeds := flag.Int("seeds", 8, "soak: number of fault-plan seeds")
	profileName := flag.String("profile", "heavy", "soak: fault profile: light, heavy, or monitor")
	workers := flag.Int("workers", 4, "engine worker goroutines")
	minutes := flag.Int("minutes", 1440, "simulated minutes per run")
	equiv := flag.Int("equiv", 2, "soak: seeds to replay sequentially for worker-equivalence")
	kills := flag.Int("kills", 3, "killresume: SIGKILL cycles before the final resume")
	seed := flag.Int64("seed", 7, "killresume: seed for the run and the kill schedule")
	flag.Parse()

	// Interrupts cancel the in-flight engine run or child process instead
	// of leaving it orphaned.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "soak":
		if err := soak(ctx, *seeds, *profileName, *workers, *minutes, *equiv); err != nil {
			log.Print(err)
			return core.ExitCode(err)
		}
	case "killresume":
		if err := killResume(ctx, *seed, *kills, *minutes, *workers); err != nil {
			log.Print(err)
			return core.ExitCode(err)
		}
		log.Printf("killresume ok: %d kill cycles, resumed hash matches golden (seed %d)", *kills, *seed)
	case "campaignresume":
		if err := campaignResume(ctx, *seed, *kills); err != nil {
			log.Print(err)
			return core.ExitCode(err)
		}
		log.Printf("campaignresume ok: %d kill cycles, resumed campaign.json matches golden byte for byte (seed %d)", *kills, *seed)
	case "campaignsmoke":
		if err := campaignSmoke(ctx); err != nil {
			log.Print(err)
			return core.ExitCode(err)
		}
		log.Printf("campaignsmoke ok: panic and stall scenarios quarantined, clean scenarios completed")
	case "sitefailover":
		if err := siteFailover(ctx, *seed); err != nil {
			log.Print(err)
			return core.ExitCode(err)
		}
		log.Printf("sitefailover ok: withdraw, catchment shift, SIGKILL resume, and re-announce all verified (seed %d)", *seed)
	default:
		log.Printf("unknown -mode %q (soak, killresume, campaignresume, campaignsmoke, or sitefailover)", *mode)
		return core.ExitUsage
	}
	return core.ExitOK
}

// soak runs the fault-plan survival matrix, failing fast on the first
// seed that panics, errors, or breaks worker-count equivalence.
func soak(ctx context.Context, seeds int, profileName string, workers, minutes, equiv int) error {
	profile, err := faults.ProfileByName(profileName)
	if err != nil {
		return err
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("soak canceled at seed %d: %w", seed, err)
		}
		plan := faults.RandomPlan(seed, profile)
		start := time.Now()
		hash, err := soakRun(ctx, plan, seed, minutes, workers)
		if err != nil {
			return fmt.Errorf("seed %d (%v): %w", seed, time.Since(start).Round(time.Millisecond), err)
		}
		status := fmt.Sprintf("seed %d ok   (%v, %d fault events, hash %x)",
			seed, time.Since(start).Round(time.Millisecond), len(plan.Events), hash[:4])
		if seed <= int64(equiv) && workers != 1 {
			seqHash, err := soakRun(ctx, plan, seed, minutes, 1)
			if err != nil {
				return fmt.Errorf("seed %d sequential replay: %w", seed, err)
			}
			if seqHash != hash {
				return fmt.Errorf("seed %d: workers=%d hash %x != workers=1 hash %x",
					seed, workers, hash[:4], seqHash[:4])
			}
			status += " equiv-ok"
		}
		log.Print(status)
	}
	log.Printf("all %d seeds survived (%s profile, %d workers)", seeds, profileName, workers)
	return nil
}

// soakRun executes one faulted simulation and returns the dataset hash.
func soakRun(ctx context.Context, plan *faults.Plan, seed int64, minutes, workers int) ([32]byte, error) {
	var zero [32]byte
	cfg := core.DefaultConfig(seed)
	cfg.Topology = &topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: seed}
	cfg.VPs = 150
	cfg.BotnetOrigins = 25
	cfg.Minutes = minutes
	ev, err := core.NewEvaluator(cfg, core.WithWorkers(workers), core.WithFaults(plan), core.WithContext(ctx))
	if err != nil {
		return zero, err
	}
	if err := ev.Run(); err != nil {
		return zero, err
	}
	d, err := ev.Measure()
	if err != nil {
		return zero, err
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		return zero, err
	}
	return sha256.Sum256(buf.Bytes()), nil
}

// killResume proves crash recovery through real process death: golden
// uninterrupted child, then `kills` SIGKILL-at-a-seeded-epoch cycles
// resuming from checkpoints, then a final resume to completion whose
// dataset hash must equal the golden one.
func killResume(ctx context.Context, seed int64, kills, minutes, workers int) error {
	if minutes < 40 {
		return fmt.Errorf("killresume needs -minutes >= 40 to fit kill points, got %d", minutes)
	}
	work, err := os.MkdirTemp("", "chaossoak-killresume-*")
	if err != nil {
		return fmt.Errorf("workdir: %w", err)
	}
	defer os.RemoveAll(work)

	bin := filepath.Join(work, "rootevent")
	log.Printf("building rootevent...")
	if out, err := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/rootevent").CombinedOutput(); err != nil {
		return fmt.Errorf("build rootevent (run from the repo root): %w\n%s", err, out)
	}

	common := []string{
		"-small",
		"-seed", strconv.FormatInt(seed, 10),
		"-minutes", strconv.Itoa(minutes),
		"-workers", strconv.Itoa(workers),
		"-only", "none",
	}
	goldenHash := filepath.Join(work, "golden.hash")
	log.Printf("golden uninterrupted run (seed %d, %d minutes)...", seed, minutes)
	if err := runChild(ctx, bin, append(common,
		"-out", filepath.Join(work, "out-golden"), "-hashfile", goldenHash)); err != nil {
		return fmt.Errorf("golden run: %w", err)
	}

	ckptDir := filepath.Join(work, "ckpt")
	for k, target := range killTargets(seed, kills, minutes) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("killresume canceled before cycle %d: %w", k, err)
		}
		args := append(common,
			"-out", filepath.Join(work, fmt.Sprintf("out-kill%d", k)),
			"-checkpoint", ckptDir, "-resume")
		completed, err := killCycle(ctx, bin, args, ckptDir, target)
		if err != nil {
			return fmt.Errorf("kill cycle %d: %w", k, err)
		}
		if completed {
			log.Printf("cycle %d: child completed before the minute-%d kill point", k, target)
			continue
		}
		m, err := checkpoint.LatestMinute(ckptDir)
		if err != nil {
			return fmt.Errorf("kill cycle %d left no readable checkpoint: %w", k, err)
		}
		log.Printf("cycle %d: SIGKILLed child past minute %d (newest snapshot: minute %d)", k, target, m)
	}

	resumedHash := filepath.Join(work, "resumed.hash")
	log.Printf("final resume to completion...")
	if err := runChild(ctx, bin, append(common,
		"-out", filepath.Join(work, "out-final"),
		"-checkpoint", ckptDir, "-resume", "-hashfile", resumedHash)); err != nil {
		return fmt.Errorf("final resume: %w", err)
	}

	golden, err := os.ReadFile(goldenHash)
	if err != nil {
		return fmt.Errorf("read golden hash: %w", err)
	}
	resumed, err := os.ReadFile(resumedHash)
	if err != nil {
		return fmt.Errorf("read resumed hash: %w", err)
	}
	if !bytes.Equal(golden, resumed) {
		return fmt.Errorf("resumed dataset hash %s != golden %s",
			strings.TrimSpace(string(resumed)), strings.TrimSpace(string(golden)))
	}
	return nil
}

// runChild runs one rootevent invocation to completion, folding its
// combined output into the wrapped error on failure.
func runChild(ctx context.Context, bin string, args []string) error {
	cmd := exec.CommandContext(ctx, bin, args...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("%s %s: %w\n%s", filepath.Base(bin), strings.Join(args, " "), err, out.Bytes())
	}
	return nil
}

// killTargets draws an increasing seeded schedule of kill minutes, each a
// checkpoint-stride multiple, so every cycle advances past new snapshots.
func killTargets(seed int64, kills, minutes int) []int {
	const stride = 10
	rng := rand.New(rand.NewSource(seed))
	span := minutes - 2*stride // keep clear of the end so kills interrupt
	targets := make([]int, kills)
	lo := stride
	for k := range targets {
		hi := span - (kills-1-k)*stride
		t := lo
		if hi > lo {
			t = lo + rng.Intn((hi-lo)/stride+1)*stride
		}
		targets[k] = t
		lo = t + stride
	}
	return targets
}

// campaignGridSpec is the tiny 4-scenario grid both campaign modes sweep:
// small enough to finish in seconds, big enough for partial progress
// between kills. campaignsmoke adds scripted chaos on top of it.
func campaignGridSpec(chaos bool) string {
	spec := `{
  "name": "chaossoak",
  "vps": 80,
  "minutes": 120,
  "topology": {"tier1s": 4, "tier2s": 24, "stubs": 160},
  "axes": {"defenses": ["absorb"], "seeds": [1, 2, 3, 4]}`
	if chaos {
		spec += `,
  "chaos": [
    {"scenario": 2, "kind": "panic", "minute": 20},
    {"scenario": 3, "kind": "stall", "minute": 20}
  ]`
	}
	return spec + "\n}\n"
}

// buildCampaignBin builds the campaign binary into work and writes the
// spec next to it, returning both paths.
func buildCampaignBin(ctx context.Context, work string, chaos bool) (bin, specPath string, err error) {
	bin = filepath.Join(work, "campaign-bin")
	log.Printf("building campaign...")
	if out, err := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/campaign").CombinedOutput(); err != nil {
		return "", "", fmt.Errorf("build campaign (run from the repo root): %w\n%s", err, out)
	}
	specPath = filepath.Join(work, "spec.json")
	if err := os.WriteFile(specPath, []byte(campaignGridSpec(chaos)), 0o644); err != nil { //repolint:allow atomicwrite -- throwaway harness input in a temp dir
		return "", "", fmt.Errorf("write spec: %w", err)
	}
	return bin, specPath, nil
}

// campaignArgs are the runner flags shared by every campaign invocation
// in these modes.
func campaignArgs(specPath, dir string) []string {
	return []string{
		"-spec", specPath, "-dir", dir,
		"-parallel", "2",
		"-timeout", "2m", "-stall-timeout", "10s",
		"-retries", "2",
		"-progress",
	}
}

// campaignResume proves the campaign runner's crash recovery through real
// process death: a golden uninterrupted sweep, then SIGKILL cycles at
// seeded ledger-progress points with resumes in between, and a final
// resumed report that must equal the golden one byte for byte.
func campaignResume(ctx context.Context, seed int64, kills int) error {
	work, err := os.MkdirTemp("", "chaossoak-campaignresume-*")
	if err != nil {
		return fmt.Errorf("workdir: %w", err)
	}
	defer os.RemoveAll(work)
	bin, specPath, err := buildCampaignBin(ctx, work, false)
	if err != nil {
		return err
	}

	goldenDir := filepath.Join(work, "golden")
	log.Printf("golden uninterrupted campaign...")
	if err := runChild(ctx, bin, campaignArgs(specPath, goldenDir)); err != nil {
		return fmt.Errorf("golden campaign: %w", err)
	}
	golden, err := os.ReadFile(filepath.Join(goldenDir, campaign.ReportFileName))
	if err != nil {
		return fmt.Errorf("read golden report: %w", err)
	}

	killedDir := filepath.Join(work, "killed")
	ledgerPath := filepath.Join(killedDir, campaign.LedgerFileName)
	for k, target := range campaignKillTargets(seed, kills, 4) {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("canceled before kill cycle %d: %w", k, err)
		}
		args := campaignArgs(specPath, killedDir)
		if k > 0 {
			args = append(args, "-resume")
		}
		completed, err := campaignKillCycle(ctx, bin, args, ledgerPath, target)
		if err != nil {
			return fmt.Errorf("kill cycle %d: %w", k, err)
		}
		if completed {
			log.Printf("cycle %d: campaign completed before reaching %d terminal records", k, target)
			continue
		}
		log.Printf("cycle %d: SIGKILLed runner at >= %d terminal ledger records", k, target)
	}

	log.Printf("final resume to completion...")
	if err := runChild(ctx, bin, append(campaignArgs(specPath, killedDir), "-resume")); err != nil {
		return fmt.Errorf("final resume: %w", err)
	}
	resumed, err := os.ReadFile(filepath.Join(killedDir, campaign.ReportFileName))
	if err != nil {
		return fmt.Errorf("read resumed report: %w", err)
	}
	if !bytes.Equal(golden, resumed) {
		return fmt.Errorf("resumed campaign.json differs from golden:\n--- golden ---\n%s\n--- resumed ---\n%s", golden, resumed)
	}
	return nil
}

// campaignKillTargets draws a strictly increasing seeded schedule of
// terminal-record counts (done + quarantine records accumulated in the
// ledger) at which to SIGKILL the runner. Counts stay below the grid size
// so every kill interrupts genuinely unfinished work.
func campaignKillTargets(seed int64, kills, gridSize int) []int {
	rng := rand.New(rand.NewSource(seed))
	targets := make([]int, 0, kills)
	t := 0
	for k := 0; k < kills; k++ {
		headroom := (gridSize - 1 - t) - (kills - 1 - k)
		step := 1
		if headroom > 1 {
			step = 1 + rng.Intn(headroom)
		}
		t += step
		if t > gridSize-1 {
			t = gridSize - 1
		}
		targets = append(targets, t)
	}
	return targets
}

// campaignKillCycle starts one campaign runner and SIGKILLs it once the
// ledger shows target terminal records. completed reports the runner
// finished the whole grid before the kill fired.
func campaignKillCycle(ctx context.Context, bin string, args []string, ledgerPath string, target int) (completed bool, err error) {
	cmd := exec.CommandContext(ctx, bin, args...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		return false, fmt.Errorf("start runner: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			<-done // CommandContext already killed the runner
			return false, fmt.Errorf("canceled waiting for %d terminal records: %w", target, ctx.Err())
		case werr := <-done:
			if werr != nil {
				return false, fmt.Errorf("runner died before the kill at %d terminal records: %w\n%s", target, werr, out.Bytes())
			}
			return true, nil
		case <-ticker.C:
			// The read-only recovery path tolerates the live runner's
			// concurrent appends: a half-written tail just ends the prefix.
			recs, rerr := campaign.ReadRecords(ledgerPath)
			if rerr != nil {
				continue
			}
			terminal := 0
			for _, r := range recs {
				if r.Type == campaign.RecDone || r.Type == campaign.RecQuarantine {
					terminal++
				}
			}
			if terminal < target {
				continue
			}
			kerr := cmd.Process.Kill()
			werr := <-done
			if kerr != nil && !errors.Is(kerr, os.ErrProcessDone) {
				return false, fmt.Errorf("SIGKILL runner: %w", kerr)
			}
			// werr is the expected "signal: killed" — or nil when the runner
			// won the race and completed first.
			return werr == nil, nil
		}
	}
}

// campaignSmoke sweeps the chaos grid — one scripted panic, one scripted
// stall, two clean scenarios — and verifies the runner degrades instead of
// dying: exit 0, both chaotic scenarios quarantined with the right class,
// both clean ones completed with outcomes.
func campaignSmoke(ctx context.Context) error {
	work, err := os.MkdirTemp("", "chaossoak-campaignsmoke-*")
	if err != nil {
		return fmt.Errorf("workdir: %w", err)
	}
	defer os.RemoveAll(work)
	bin, specPath, err := buildCampaignBin(ctx, work, true)
	if err != nil {
		return err
	}
	dir := filepath.Join(work, "campaign")
	log.Printf("sweeping the chaos grid (scripted panic + stall)...")
	args := append(campaignArgs(specPath, dir), "-stall-timeout", "5s")
	if err := runChild(ctx, bin, args); err != nil {
		return fmt.Errorf("chaos campaign should exit 0 with a degraded report: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, campaign.ReportFileName))
	if err != nil {
		return fmt.Errorf("read report: %w", err)
	}
	var rep campaign.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parse report: %w", err)
	}
	if rep.GridSize != 4 || rep.Completed != 2 || rep.Quarantined != 2 || rep.Pending != 0 {
		return fmt.Errorf("report counts: grid=%d completed=%d quarantined=%d pending=%d, want 4/2/2/0",
			rep.GridSize, rep.Completed, rep.Quarantined, rep.Pending)
	}
	wantClass := map[int]string{2: "panic", 3: "stall"}
	for _, sr := range rep.Scenarios {
		want, chaotic := wantClass[sr.Index]
		if chaotic {
			if sr.Status != campaign.StatusQuarantined || sr.FailureClass != want {
				return fmt.Errorf("scenario %d: status=%s class=%q, want quarantined/%s", sr.Index, sr.Status, sr.FailureClass, want)
			}
			log.Printf("scenario %d quarantined as %q — as scripted", sr.Index, sr.FailureClass)
		} else if sr.Status != campaign.StatusCompleted || len(sr.Outcome) == 0 {
			return fmt.Errorf("clean scenario %d: status=%s outcome=%d bytes", sr.Index, sr.Status, len(sr.Outcome))
		}
	}
	if rep.Aggregate == nil {
		return fmt.Errorf("degraded report lost its aggregate over the completed scenarios")
	}
	return nil
}

// killCycle starts one checkpointing child and SIGKILLs it once its
// newest durable snapshot reaches the target minute. completed reports
// that the child finished the whole run before the kill fired.
func killCycle(ctx context.Context, bin string, args []string, ckptDir string, target int) (completed bool, err error) {
	cmd := exec.CommandContext(ctx, bin, args...)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		return false, fmt.Errorf("start child: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			<-done // CommandContext already killed the child
			return false, fmt.Errorf("canceled waiting for minute %d: %w", target, ctx.Err())
		case werr := <-done:
			if werr != nil {
				return false, fmt.Errorf("child died before the kill at minute %d: %w\n%s", target, werr, out.Bytes())
			}
			return true, nil
		case <-ticker.C:
			m, lerr := checkpoint.LatestMinute(ckptDir)
			if lerr != nil || m < target {
				continue // no snapshot yet, or not far enough
			}
			kerr := cmd.Process.Kill()
			werr := <-done
			if kerr != nil && !errors.Is(kerr, os.ErrProcessDone) {
				return false, fmt.Errorf("SIGKILL child: %w", kerr)
			}
			// werr is the expected "signal: killed" — or nil when the child
			// won the race and completed first.
			return werr == nil, nil
		}
	}
}
