// Command chaossoak soaks the evaluation engine under randomized fault
// plans: for each seed it draws a deterministic plan, runs a small but
// full-pipeline simulation with the faults injected, and checks that the
// engine finishes cleanly — no panics (worker panics surface as wrapped
// errors naming the letter and minute) and a measurable dataset at the end.
// The first few seeds are additionally replayed sequentially to prove the
// faulted run is worker-count independent.
//
// Usage:
//
//	chaossoak [-seeds N] [-profile light|heavy|monitor] [-workers N]
//	          [-minutes N] [-equiv N]
//
// Exit status is non-zero when any seed fails.
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaossoak: ")
	seeds := flag.Int("seeds", 8, "number of fault-plan seeds to soak")
	profileName := flag.String("profile", "heavy", "fault profile: light, heavy, or monitor")
	workers := flag.Int("workers", 4, "engine worker goroutines")
	minutes := flag.Int("minutes", 1440, "simulated minutes per run")
	equiv := flag.Int("equiv", 2, "seeds to replay sequentially for worker-equivalence")
	flag.Parse()

	profile, err := faults.ProfileByName(*profileName)
	if err != nil {
		log.Fatal(err)
	}

	failures := 0
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		plan := faults.RandomPlan(seed, profile)
		start := time.Now()
		hash, err := soakRun(plan, seed, *minutes, *workers)
		if err != nil {
			failures++
			log.Printf("seed %d FAIL (%v): %v", seed, time.Since(start).Round(time.Millisecond), err)
			continue
		}
		status := fmt.Sprintf("seed %d ok   (%v, %d fault events, hash %x)",
			seed, time.Since(start).Round(time.Millisecond), len(plan.Events), hash[:4])
		if seed <= int64(*equiv) && *workers != 1 {
			seqHash, err := soakRun(plan, seed, *minutes, 1)
			switch {
			case err != nil:
				failures++
				log.Printf("seed %d FAIL: sequential replay: %v", seed, err)
				continue
			case seqHash != hash:
				failures++
				log.Printf("seed %d FAIL: workers=%d hash %x != workers=1 hash %x",
					seed, *workers, hash[:4], seqHash[:4])
				continue
			default:
				status += " equiv-ok"
			}
		}
		log.Print(status)
	}
	if failures > 0 {
		log.Printf("%d/%d seeds failed", failures, *seeds)
		os.Exit(1)
	}
	log.Printf("all %d seeds survived (%s profile, %d workers)", *seeds, *profileName, *workers)
}

// soakRun executes one faulted simulation and returns the dataset hash.
func soakRun(plan *faults.Plan, seed int64, minutes, workers int) ([32]byte, error) {
	var zero [32]byte
	cfg := core.DefaultConfig(seed)
	cfg.Topology = &topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: seed}
	cfg.VPs = 150
	cfg.BotnetOrigins = 25
	cfg.Minutes = minutes
	ev, err := core.NewEvaluator(cfg, core.WithWorkers(workers), core.WithFaults(plan))
	if err != nil {
		return zero, err
	}
	if err := ev.Run(); err != nil {
		return zero, err
	}
	d, err := ev.Measure()
	if err != nil {
		return zero, err
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		return zero, err
	}
	return sha256.Sum256(buf.Bytes()), nil
}
