package ledger

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

var testFormat = Format{Magic: "TESTLGR0", Version: 1}

func writeTestLedger(t *testing.T, payloads [][]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.bin")
	l, got, err := Open(path, testFormat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh ledger returned %d payloads", len(got))
	}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func testPayloads() [][]byte {
	return [][]byte{
		[]byte(`{"a":1}`),
		[]byte(`{"b":"two"}`),
		[]byte(`{"c":[3,4,5]}`),
	}
}

func TestRoundTrip(t *testing.T) {
	want := testPayloads()
	path := writeTestLedger(t, want)
	_, got, err := openAndClose(t, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("payload %d: got %q want %q", i, got[i], want[i])
		}
	}
	ro, err := Read(path, testFormat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro) != len(want) {
		t.Fatalf("Read recovered %d payloads, want %d", len(ro), len(want))
	}
}

func openAndClose(t *testing.T, path string, validate Validate) (*Ledger, [][]byte, error) {
	t.Helper()
	l, got, err := Open(path, testFormat, validate)
	if err != nil {
		return nil, nil, err
	}
	if cerr := l.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	return l, got, nil
}

func TestTornTailTruncated(t *testing.T) {
	want := testPayloads()
	path := writeTestLedger(t, want)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncated prefix recovers to a clean prefix of the payloads.
	for cut := 1; cut <= 40 && cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, got, err := openAndClose(t, path, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) >= len(want) {
			t.Fatalf("cut %d: torn tail not discarded (%d payloads)", cut, len(got))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut %d: payload %d diverges", cut, i)
			}
		}
	}
	// After recovery the file is appendable again at the truncation point.
	if err := os.WriteFile(path, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, err := Open(path, testFormat, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("recovered %d payloads, want %d", len(got), len(want)-1)
	}
	if err := l.Append([]byte(`{"d":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = openAndClose(t, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || !bytes.Equal(got[len(got)-1], []byte(`{"d":true}`)) {
		t.Fatalf("append after truncation recovery failed: %q", got)
	}
}

func TestCorruptionEndsPrefix(t *testing.T) {
	want := testPayloads()
	path := writeTestLedger(t, want)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x01
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, err := openAndClose(t, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(want) {
		t.Fatalf("mid-file corruption not detected (%d payloads)", len(got))
	}
}

func TestValidateEndsPrefix(t *testing.T) {
	path := writeTestLedger(t, [][]byte{[]byte("good"), []byte("BAD"), []byte("good2")})
	notBad := func(p []byte) bool { return !bytes.Equal(p, []byte("BAD")) }
	_, got, err := openAndClose(t, path, notBad)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], []byte("good")) {
		t.Fatalf("validator should end the prefix at the first rejected payload: %q", got)
	}
	// The rejected record (and everything after) was truncated away: a
	// second open without the validator sees only the surviving prefix.
	_, got, err = openAndClose(t, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("validator rejection should truncate: %q", got)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "notaledger.bin")
	if err := os.WriteFile(bad, []byte("definitely not a ledger"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(bad, testFormat, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	future := filepath.Join(dir, "future.bin")
	if err := os.WriteFile(future, append([]byte(testFormat.Magic), 99), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(future, testFormat, nil); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

func TestEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, err := Open(empty, testFormat, nil)
	if err != nil {
		t.Fatalf("empty file should recover as fresh: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file yielded %d payloads", len(got))
	}
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = Read(filepath.Join(dir, "nope.bin"), testFormat, nil)
	if err != nil || got != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", got, err)
	}
}

func TestAppendRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.bin")
	l, _, err := Open(path, testFormat, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}
