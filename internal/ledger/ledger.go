// Package ledger implements the repository's crash-safe append-only record
// framing, shared by the campaign runner's scenario ledger and the site
// manager's decision journal.
//
// A ledger file opens with a caller-chosen magic string and a one-byte
// format version, followed by records. Every record is a little-endian
// length prefix, the payload bytes, and the payload's SHA-256; every append
// is a single contiguous write followed by an fsync. A SIGKILL of the
// writer can therefore at worst tear the final record, which recovery
// detects and truncates away — and nothing after a corrupt record is
// trusted, since a damaged length prefix poisons all later offsets.
//
// The payload encoding is the caller's business (the campaign ledger and
// the sitemgr journal both use canonical JSON); an optional validator lets
// the owner end the readable prefix at the first payload that fails its own
// decode, keeping recovery semantics identical to the pre-extraction
// campaign ledger.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// maxRecordBytes caps one record's payload so a corrupted length prefix
// cannot drive a huge allocation.
const maxRecordBytes = 16 << 20

// ErrVersion marks a ledger written by an incompatible format version.
var ErrVersion = errors.New("ledger: unsupported format version")

// Format identifies one ledger file type: its opening magic string and the
// record-format version byte that follows it.
type Format struct {
	Magic   string
	Version byte
}

// Validate is an optional payload check applied during recovery: returning
// false ends the readable prefix at (and truncates away) that record, the
// same way a checksum failure would.
type Validate func(payload []byte) bool

// Ledger is an open, append-positioned record log. Append is safe for
// concurrent use.
type Ledger struct {
	mu sync.Mutex
	f  *os.File
}

// Open opens (creating if absent) the ledger at path, recovers the
// readable record prefix, truncates any torn or corrupt tail, and returns
// the ledger positioned for appends plus the recovered payloads. A torn
// final record — the expected debris of a SIGKILLed writer — is silently
// discarded; so is anything after a corrupted record.
func Open(path string, format Format, validate Validate) (*Ledger, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ledger: open: %w", err)
	}
	// The file is open for writing, so even on these abort paths the Close
	// error rides along with the primary failure instead of being dropped.
	fail := func(e error) (*Ledger, [][]byte, error) {
		return nil, nil, errors.Join(e, f.Close())
	}
	payloads, good, err := recoverPrefix(f, format, validate)
	if err != nil {
		return fail(err)
	}
	if err := f.Truncate(good); err != nil {
		return fail(fmt.Errorf("ledger: truncate torn tail: %w", err))
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return fail(fmt.Errorf("ledger: seek: %w", err))
	}
	l := &Ledger{f: f}
	if good == 0 {
		if err := l.writeHeader(format); err != nil {
			return fail(err)
		}
	}
	return l, payloads, nil
}

// Read recovers the readable payloads of the ledger at path without
// opening it for writing (and without truncating the tail) — the
// observation path for reading a live writer's log. A missing file reads
// as an empty ledger, and a half-written tail just ends the prefix.
func Read(path string, format Format, validate Validate) ([][]byte, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ledger: read: %w", err)
	}
	defer f.Close()
	payloads, _, err := recoverPrefix(f, format, validate)
	return payloads, err
}

// recoverPrefix parses records from the start of f, returning their payloads
// along with the byte offset after the last fully-valid record (the
// truncation point). Only a wrong magic or an incompatible version is an
// error: torn and corrupt data simply ends the readable prefix.
func recoverPrefix(f *os.File, format Format, validate Validate) ([][]byte, int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("ledger: read: %w", err)
	}
	headerLen := len(format.Magic) + 1
	if len(data) < headerLen {
		// Empty or torn header: treat the whole file as absent.
		return nil, 0, nil
	}
	if string(data[:len(format.Magic)]) != format.Magic {
		return nil, 0, fmt.Errorf("ledger: %s is not a %s ledger (bad magic)", f.Name(), format.Magic)
	}
	if v := data[len(format.Magic)]; v != format.Version {
		return nil, 0, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, v, format.Version)
	}
	var payloads [][]byte
	off := headerLen
	good := int64(off)
	for {
		payload, next, ok := parseRecord(data, off)
		if !ok || (validate != nil && !validate(payload)) {
			break
		}
		payloads = append(payloads, payload)
		off = next
		good = int64(off)
	}
	return payloads, good, nil
}

// parseRecord reads one record's payload at off; ok is false at a clean
// end of file, a torn tail, or any corruption.
func parseRecord(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+4 > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n <= 0 || n > maxRecordBytes || off+4+n+sha256.Size > len(data) {
		return nil, 0, false
	}
	payload = data[off+4 : off+4+n]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[off+4+n:off+4+n+sha256.Size]) {
		return nil, 0, false
	}
	return payload, off + 4 + n + sha256.Size, true
}

// writeHeader emits the magic and version, durably.
func (l *Ledger) writeHeader(format Format) error {
	hdr := append([]byte(format.Magic), format.Version)
	if _, err := l.f.Write(hdr); err != nil {
		return fmt.Errorf("ledger: write header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: sync: %w", err)
	}
	return nil
}

// Append writes and fsyncs one payload. The write is a single contiguous
// buffer, so a crash mid-append tears at most this record — exactly what
// recovery truncates away.
func (l *Ledger) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("ledger: empty record payload")
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("ledger: record of %d bytes exceeds the %d cap", len(payload), maxRecordBytes)
	}
	buf := make([]byte, 0, 4+len(payload)+sha256.Size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: sync: %w", err)
	}
	return nil
}

// Close releases the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
