package lintcheck

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one testdata package relative to the module root.
func loadFixture(t *testing.T, pattern string) []*LoadedPackage {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := Load(root, pattern)
	if err != nil {
		t.Fatalf("Load(%q): %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%q): no packages", pattern)
	}
	return pkgs
}

// key is the (rule, file, line) identity of a diagnostic.
type key struct {
	rule string
	file string
	line int
}

func diagKeys(diags []Diagnostic) []key {
	keys := make([]key, len(diags))
	for i, d := range diags {
		keys[i] = key{d.Rule, d.File, d.Line}
	}
	return keys
}

// TestFixtureDiagnostics asserts, per fixture package, the exact rule, file,
// and line of every diagnostic the suite emits — in output order.
func TestFixtureDiagnostics(t *testing.T) {
	const base = "internal/lintcheck/testdata/"
	tests := []struct {
		name    string
		pattern string
		want    []key
	}{
		{
			name:    "determinism",
			pattern: "./" + base + "determinism",
			want: []key{
				{"wallclock", base + "determinism/bad.go", 15},
				{"globalrand", base + "determinism/bad.go", 20},
				{"unseededrand", base + "determinism/bad.go", 25},
				{"maprange", base + "determinism/bad.go", 31},
			},
		},
		{
			name:    "errhygiene",
			pattern: "./" + base + "errhygiene",
			want: []key{
				{"sentinel", base + "errhygiene/bad.go", 13},
				{"errwrap", base + "errhygiene/bad.go", 20},
			},
		},
		{
			name:    "panics",
			pattern: "./" + base + "panics",
			want: []key{
				{"panic", base + "panics/bad.go", 14},
			},
		},
		{
			name:    "apihygiene",
			pattern: "./" + base + "apihygiene",
			want: []key{
				{"ctxfirst", base + "apihygiene/bad.go", 12},
				{"mutexcopy", base + "apihygiene/bad.go", 24},
				{"mutexcopy", base + "apihygiene/bad.go", 36},
			},
		},
		{
			name:    "deprecatedatlas",
			pattern: "./" + base + "deprecatedatlas",
			want: []key{
				{"deprecatedatlas", base + "deprecatedatlas/bad.go", 11},
				{"deprecatedatlas", base + "deprecatedatlas/bad.go", 14},
				{"deprecatedatlas", base + "deprecatedatlas/bad.go", 17},
			},
		},
		{
			name:    "allow comments suppress",
			pattern: "./" + base + "allowed",
			want:    nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			diags := Run(loadFixture(t, tt.pattern), DefaultConfig())
			got := diagKeys(diags)
			if len(got) != len(tt.want) {
				t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(tt.want), diags)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("diagnostic %d: got %+v, want %+v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

// TestMapIterFixture checks the mapiter rule against its fixture with a
// Config that bans map iteration there (the fixture directory stands in for
// internal/bgpsim, which DefaultConfig covers — see TestDefaultConfigScopes).
func TestMapIterFixture(t *testing.T) {
	const dir = "internal/lintcheck/testdata/mapiter"
	cfg := DefaultConfig()
	cfg.MapIterBan = append(cfg.MapIterBan, dir)
	diags := Run(loadFixture(t, "./"+dir), cfg)
	want := []key{{"mapiter", dir + "/bad.go", 13}}
	got := diagKeys(diags)
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(want), diags)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Without the ban the fixture is clean: the rule is scoped, not global.
	if diags := Run(loadFixture(t, "./"+dir), DefaultConfig()); len(diags) != 0 {
		t.Errorf("unbanned fixture still produced diagnostics: %v", diags)
	}
}

// TestAtomicWriteFixture checks the atomicwrite rule against its fixture
// with a Config that bans bare writes there (the fixture directory stands
// in for cmd/, which DefaultConfig covers — see TestDefaultConfigScopes).
func TestAtomicWriteFixture(t *testing.T) {
	const dir = "internal/lintcheck/testdata/atomicwrite"
	cfg := DefaultConfig()
	cfg.AtomicWriteBan = append(cfg.AtomicWriteBan, dir)
	diags := Run(loadFixture(t, "./"+dir), cfg)
	want := []key{
		{"atomicwrite", dir + "/bad.go", 14},
		{"atomicwrite", dir + "/bad.go", 23},
	}
	got := diagKeys(diags)
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(want), diags)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "atomicio") {
			t.Errorf("diagnostic %v does not point at the atomicio helper", d)
		}
	}
	// Outside the banned prefixes the fixture is clean: the rule is scoped.
	if diags := Run(loadFixture(t, "./"+dir), DefaultConfig()); len(diags) != 0 {
		t.Errorf("unbanned fixture still produced diagnostics: %v", diags)
	}
}

// TestRepolintSelfClean runs the full suite over the whole repository and
// diffs against the committed findings baseline. Every future PR inherits
// this test, so a change that reintroduces a wall-clock read, an unseeded
// RNG, or a stray panic fails the build here — and so does fixing a
// baselined finding without regenerating lint/baseline.json (the stale
// guard keeps the baseline honest in both directions).
func TestRepolintSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load ./... returned only %d packages; loader is dropping targets", len(pkgs))
	}
	diags := Run(pkgs, DefaultConfig())
	baseline, err := LoadBaselineFile(filepath.Join(root, "lint", "baseline.json"))
	if err != nil {
		t.Fatalf("loading baseline: %v", err)
	}
	fresh, stale := DiffBaseline(diags, baseline)
	for _, d := range fresh {
		t.Errorf("repolint violation not in baseline: %s", d)
	}
	for _, d := range stale {
		t.Errorf("stale baseline entry (finding no longer fires; run `make lint-baseline`): %s", d)
	}
}

// TestDiagnosticString pins the conventional file:line:col rendering that
// editors and CI logs parse.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "wallclock", File: "internal/x/y.go", Line: 7, Col: 3, Message: "no"}
	if got, want := d.String(), "internal/x/y.go:7:3: wallclock: no"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestDiagnosticJSON pins the -json field names.
func TestDiagnosticJSON(t *testing.T) {
	b, err := json.Marshal(Diagnostic{Rule: "panic", File: "a.go", Line: 1, Col: 2, Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"rule":"panic"`, `"file":"a.go"`, `"line":1`, `"col":2`, `"message":"m"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("JSON %s missing %s", b, field)
		}
	}
}

// TestAllowParsing covers the comment-parsing corners: multiple rules on one
// marker, comma separation, the "all" wildcard, justification text after --,
// and markers that must NOT match.
func TestAllowParsing(t *testing.T) {
	p := &LoadedPackage{}
	p.allow = map[string]map[int]map[string]bool{
		"f.go": {
			10: {"wallclock": true, "panic": true},
			20: {"all": true},
		},
	}
	tests := []struct {
		line int
		rule string
		want bool
	}{
		{10, "wallclock", true},
		{10, "panic", true},
		{10, "errwrap", false},
		{11, "wallclock", true}, // line above
		{12, "wallclock", false},
		{20, "anything", true}, // wildcard
		{21, "anything", true},
	}
	for _, tt := range tests {
		if got := p.allowed("f.go", tt.line, tt.rule); got != tt.want {
			t.Errorf("allowed(line=%d, %q) = %v, want %v", tt.line, tt.rule, got, tt.want)
		}
	}
}

// TestDefaultConfigScopes pins the repository policy: the live-socket server
// and harnesses may read the wall clock; only internal/stats may panic.
func TestDefaultConfigScopes(t *testing.T) {
	cfg := DefaultConfig()
	for _, pre := range []string{"internal/dnsserver", "cmd/", "examples/"} {
		if !exempt(pre+"/x.go", cfg.WallClockAllow) {
			t.Errorf("WallClockAllow should cover %s", pre)
		}
	}
	if exempt("internal/core/engine.go", cfg.WallClockAllow) {
		t.Error("WallClockAllow must not cover internal/core")
	}
	if !exempt("internal/stats/stats.go", cfg.PanicAllow) {
		t.Error("PanicAllow should cover internal/stats")
	}
	if exempt("internal/geo/geo.go", cfg.PanicAllow) {
		t.Error("PanicAllow must not cover internal/geo")
	}
	if !exempt("internal/bgpsim/computer.go", cfg.MapIterBan) {
		t.Error("MapIterBan should cover internal/bgpsim (the pooled route scratch)")
	}
	if exempt("internal/core/evaluator.go", cfg.MapIterBan) {
		t.Error("MapIterBan must not cover internal/core")
	}
	if !exempt("cmd/rootevent/main.go", cfg.AtomicWriteBan) {
		t.Error("AtomicWriteBan should cover cmd/ (harness output must survive SIGKILL)")
	}
	if exempt("internal/checkpoint/io.go", cfg.AtomicWriteBan) {
		t.Error("AtomicWriteBan must not cover internal/ (atomicio itself lives there)")
	}
	if !exempt("internal/atlas/dataset.go", cfg.DeprecatedAtlasAllow) {
		t.Error("DeprecatedAtlasAllow should cover internal/atlas (the accessors live there)")
	}
	if exempt("internal/analysis/figures.go", cfg.DeprecatedAtlasAllow) {
		t.Error("DeprecatedAtlasAllow must not cover internal/analysis (scans must use cursors)")
	}
}
