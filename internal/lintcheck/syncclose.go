package lintcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// SyncCloseAnalyzer enforces durability hygiene in the crash-safety packages
// (Config.SyncCloseBan): a Close or Sync whose error result is discarded —
// as a bare statement, a defer, or a go statement — on a writable *os.File
// or on a durability type the module defines. Close is where a buffered
// write failure finally surfaces; dropping it silently breaks the
// fsync-before-rename guarantee the kill/resume soak depends on. Files
// obtained from os.Open in the same function are read-only and exempt.
func SyncCloseAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "syncclose",
		Doc:  "no discarded Close/Sync error on writable files or module durability types in the crash-safety packages",
		Run:  runSyncClose,
	}
}

func runSyncClose(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if !exempt(pass.RelFile(file.Pos()), pass.Cfg.SyncCloseBan) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			readOnly := openedReadOnly(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.DeferStmt:
					call = n.Call
				case *ast.GoStmt:
					call = n.Call
				default:
					return true
				}
				if call == nil || len(call.Args) != 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || (fn.Name() != "Close" && fn.Name() != "Sync") {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil || sig.Results().Len() != 1 ||
					!isErrorType(sig.Results().At(0).Type()) {
					return true
				}
				recv := deref(sig.Recv().Type())
				named, ok := recv.(*types.Named)
				if !ok || named.Obj().Pkg() == nil {
					return true
				}
				pkgPath := named.Obj().Pkg().Path()
				switch {
				case pkgPath == "os" && named.Obj().Name() == "File":
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := identObj(info, id); obj != nil && readOnly[obj] {
							return true
						}
					}
				case strings.Contains(strings.SplitN(pkgPath, "/", 2)[0], "."):
					// A module-defined (or other non-stdlib) durability type.
				default:
					return true
				}
				pass.Reportf("syncclose", call.Pos(),
					"discarded %s error on %s.%s: a buffered write failure surfaces here and nowhere else; join it into the returned error or justify with //repolint:allow syncclose",
					fn.Name(), named.Obj().Name(), fn.Name())
				return true
			})
		}
	}
}

// openedReadOnly collects the objects in fn assigned directly from os.Open —
// read-only handles whose Close error carries no durability information.
func openedReadOnly(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok || !isPkgFunc(calleeFunc(info, call), "os", "Open") {
			return true
		}
		if len(asg.Lhs) > 0 {
			if id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident); ok {
				if obj := identObj(info, id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
