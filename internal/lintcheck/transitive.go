package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TransitiveDeterminismAnalyzer makes the determinism rules (wallclock,
// globalrand, unseededrand) transitive: every function declared under
// Config.TransitiveRoots — the engine/simulation entry points — is walked
// through the approximate call graph, and any chain reaching a forbidden
// source is diagnosed at the root's first call into the chain, printing the
// full path (devirtualized hops rendered "iface.M => impl.M"). A source
// that calls the forbidden function directly is the per-site rule's job and
// is not re-reported here; a source inside a WallClockAllow prefix or under
// an allow comment does not taint its callers.
func TransitiveDeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:       "transitive",
		Doc:        "engine/simulation entry points must not reach time.Now, global math/rand, or unseeded rand.New through any call chain",
		RunProgram: runTransitive,
	}
}

// taint is one forbidden source inside a function body.
type taint struct {
	rule string    // wallclock | globalrand | unseededrand
	what string    // human name of the forbidden call, e.g. "time.Now"
	pos  token.Pos // position of the forbidden call
}

func runTransitive(prog *Program) {
	g := prog.Graph
	taints := collectTaints(prog)
	if len(taints) == 0 {
		return
	}
	for _, root := range g.Funcs {
		rel := root.Pkg.relFile(root.Decl.Pos())
		if !exempt(rel, prog.Cfg.TransitiveRoots) {
			continue
		}
		reportRoot(prog, taints, root)
	}
}

// collectTaints scans every function body for direct forbidden calls,
// skipping sites that are exempt by prefix or suppressed by an allow
// comment — a justified site does not poison its callers. The result is
// keyed by FuncKey, matching the call graph.
func collectTaints(prog *Program) map[string][]taint {
	taints := make(map[string][]taint)
	for _, node := range prog.Graph.Funcs {
		info := node.Pkg.Info
		rel := node.Pkg.relFile(node.Decl.Pos())
		clockExempt := exempt(rel, prog.Cfg.WallClockAllow)
		add := func(rule, what string, pos token.Pos) {
			line := node.Pkg.Fset.Position(pos).Line
			if node.Pkg.allowed(node.Pkg.relFile(pos), line, rule) {
				return
			}
			key := FuncKey(node.Fn)
			taints[key] = append(taints[key], taint{rule: rule, what: what, pos: pos})
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch {
			case !clockExempt && isPkgFunc(fn, "time", "Now"):
				add("wallclock", "time.Now", call.Pos())
			case !clockExempt && isPkgFunc(fn, "math/rand", "New") && !isDirectNewSource(info, call):
				add("unseededrand", "rand.New with a source hidden from the call site", call.Pos())
			case fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" && !globalRandExceptions[fn.Name()]:
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					add("globalrand", "rand."+fn.Name(), call.Pos())
				}
			}
			return true
		})
	}
	return taints
}

// reportRoot BFS-walks the graph from root and reports, once per rule, the
// shortest chain to a tainted function. The root's own direct taints are
// skipped: the per-site determinism rules already diagnose them.
func reportRoot(prog *Program, taints map[string][]taint, root *CallNode) {
	rootKey := FuncKey(root.Fn)
	prev := make(map[string]hop)
	visited := map[string]bool{rootKey: true}
	queue := []string{rootKey}
	reported := make(map[string]bool)
	for len(queue) > 0 && len(reported) < 3 {
		cur := queue[0]
		queue = queue[1:]
		if cur != rootKey {
			for _, t := range taints[cur] {
				if reported[t.rule] {
					continue
				}
				reported[t.rule] = true
				chain, firstPos := chainTo(prev, root, rootKey, cur)
				pos := prog.Pkgs[0].Fset.Position(t.pos)
				prog.Reportf(t.rule, firstPos,
					"%s can reach %s: %s (%s at %s:%d); the simulation plane must thread time and seeds through the caller",
					funcDisplay(root.Fn, root.Pkg), t.what, chain, t.what,
					prog.Pkgs[0].relFile(t.pos), pos.Line)
			}
		}
		node := prog.Graph.Nodes[cur]
		if node == nil {
			continue
		}
		for _, e := range node.Edges {
			key := FuncKey(e.Callee)
			if visited[key] {
				continue
			}
			visited[key] = true
			prev[key] = hop{from: cur, edge: e}
			queue = append(queue, key)
		}
	}
}

// chainTo reconstructs the BFS path root → … → dst as a printable chain and
// returns it with the position of the root's first call into the chain.
func chainTo(prev map[string]hop, root *CallNode, rootKey, dst string) (string, token.Pos) {
	var hops []hop
	for cur := dst; cur != rootKey; {
		h := prev[cur]
		hops = append(hops, h)
		cur = h.from
	}
	// hops is dst-first; render root-first.
	var b strings.Builder
	b.WriteString(funcDisplay(root.Fn, root.Pkg))
	for i := len(hops) - 1; i >= 0; i-- {
		e := hops[i].edge
		b.WriteString(" -> ")
		if e.Via != nil {
			b.WriteString(funcDisplay(e.Via, root.Pkg))
			b.WriteString(" => ")
		}
		b.WriteString(funcDisplay(e.Callee, root.Pkg))
	}
	return b.String(), hops[len(hops)-1].edge.Pos
}

// hop is the BFS predecessor record shared by reportRoot and chainTo: the
// caller's FuncKey and the edge taken from it.
type hop struct {
	from string
	edge CallEdge
}

// funcDisplay renders a function name for chain messages: methods as
// Type.Name, and functions from other packages as pkg.Name.
func funcDisplay(fn *types.Func, from *LoadedPackage) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	} else if fn.Pkg() != nil && (from == nil || from.Types == nil || fn.Pkg() != from.Types) {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
