package lintcheck

import "go/ast"

// AtomicWriteAnalyzer enforces crash-safe output in the command-line
// harnesses: whole-file writes must go through internal/atomicio
// (temp + fsync + rename) so a run killed mid-write — exactly what the
// kill/resume soak does on purpose — never leaves a torn result file.
// The rule is scoped by Config.AtomicWriteBan; genuinely streaming
// writers (a CPU profile that is open for the whole run) carry a
// `//repolint:allow atomicwrite` comment with a justification.
func AtomicWriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomicwrite",
		Doc:  "forbid bare os.Create and os.WriteFile in command-line harnesses; whole-file writes must use internal/atomicio",
		Run:  runAtomicWrite,
	}
}

func runAtomicWrite(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if !exempt(pass.RelFile(file.Pos()), pass.Cfg.AtomicWriteBan) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			switch {
			case isPkgFunc(fn, "os", "Create"):
				pass.Reportf("atomicwrite", call.Pos(),
					"os.Create leaves a torn file if the run dies mid-write; use atomicio.WriteFile (temp+fsync+rename)")
			case isPkgFunc(fn, "os", "WriteFile"):
				pass.Reportf("atomicwrite", call.Pos(),
					"os.WriteFile leaves a torn file if the run dies mid-write; use atomicio.WriteFileBytes (temp+fsync+rename)")
			}
			return true
		})
	}
}
