package lintcheck

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer enforces the simulation plane's reproducibility
// invariants: no wall clock, no global RNG, visibly seeded RNG construction,
// and no map-iteration order escaping into returned slices.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid time.Now, global math/rand, unseeded rand.New, unsorted map-range results, and any map-range in pooled-scratch packages",
		Run:  runDeterminism,
	}
}

// globalRandExceptions are math/rand package-level functions that do not
// touch the global source.
var globalRandExceptions = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // draws from the *rand.Rand it is given
}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		rel := pass.RelFile(file.Pos())
		clockExempt := exempt(rel, pass.Cfg.WallClockAllow)
		mapIterBanned := exempt(rel, pass.Cfg.MapIterBan)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if mapIterBanned {
					if tv, ok := info.Types[n.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							pass.Reportf("mapiter", n.Pos(),
								"map iteration is banned in this package: pooled scratch filled in map order poisons every later consumer; index by dense key instead")
						}
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil {
					return true
				}
				if !clockExempt && isPkgFunc(fn, "time", "Now") {
					pass.Reportf("wallclock", n.Pos(),
						"time.Now is forbidden in the simulation plane; model time as minute bins or thread it through the caller")
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" && !globalRandExceptions[fn.Name()] {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
						pass.Reportf("globalrand", n.Pos(),
							"rand.%s draws from the shared global source; use an explicitly seeded *rand.Rand", fn.Name())
					}
				}
				if !clockExempt && isPkgFunc(fn, "math/rand", "New") {
					if !isDirectNewSource(info, n) {
						pass.Reportf("unseededrand", n.Pos(),
							"rand.New's source must be a direct rand.NewSource(seed) call so the seed is visible here")
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRangeOrder(pass, n)
				}
				return true
			}
			return true
		})
	}
}

// isDirectNewSource reports whether call's first argument is itself a call to
// rand.NewSource.
func isDirectNewSource(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(calleeFunc(info, inner), "math/rand", "NewSource")
}

// checkMapRangeOrder flags functions that range over a map, append into a
// local slice inside the loop, return that slice, and never sort it. The
// slice then carries map-iteration order — freshly randomized on every run —
// straight into results.
func checkMapRangeOrder(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Objects appended to inside a map-range body, with the offending range
	// statement for the report position.
	type capture struct{ rng *ast.RangeStmt }
	appended := make(map[types.Object]capture)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(b ast.Node) bool {
			asg, ok := b.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				return true
			} else if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			lhs, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := identObj(info, lhs)
			if obj == nil {
				return true
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
				return true
			}
			if _, seen := appended[obj]; !seen {
				appended[obj] = capture{rng: rng}
			}
			return true
		})
		return true
	})
	if len(appended) == 0 {
		return
	}

	// A sort.* call mentioning the object anywhere in the function clears it.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sort" {
			return true
		}
		for obj := range appended {
			for _, arg := range call.Args {
				if mentionsObj(info, arg, obj) {
					delete(appended, obj)
					break
				}
			}
		}
		return true
	})

	// Report only slices that escape through a return statement.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for obj, cap := range appended {
			for _, res := range ret.Results {
				if mentionsObj(info, res, obj) {
					pass.Reportf("maprange", cap.rng.Pos(),
						"%s accumulates map-iteration order and is returned without a sort.* call", obj.Name())
					delete(appended, obj)
					break
				}
			}
		}
		return true
	})
}
