package lintcheck

import (
	"go/ast"
	"go/types"
)

// DeprecatedAtlasAnalyzer forbids new calls to the deprecated per-cell row
// accessors on atlas.Dataset (At, RawAt, EachVP) outside internal/atlas.
// The accessors survive one release for old callers, but every new scan must
// go through the columnar cursors (Rows / RawRows), which walk contiguous
// column slices without per-cell bounds checks or per-row allocation.
func DeprecatedAtlasAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "deprecatedatlas",
		Doc:  "no new uses of the deprecated atlas.Dataset row accessors",
		Run:  runDeprecatedAtlas,
	}
}

// atlasPkgPath is the import path of the measurement store the rule guards.
const atlasPkgPath = "github.com/rootevent/anycastddos/internal/atlas"

// deprecatedDatasetMethods maps each deprecated accessor to its cursor
// replacement, named in the diagnostic.
var deprecatedDatasetMethods = map[string]string{
	"At":     "Rows",
	"RawAt":  "RawRows",
	"EachVP": "Rows",
}

func runDeprecatedAtlas(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		if exempt(cleanRelPath(pass.RelFile(file.Pos())), pass.Cfg.DeprecatedAtlasAllow) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil {
				return true
			}
			cursor, ok := deprecatedDatasetMethods[fn.Name()]
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj == nil || obj.Pkg() == nil ||
				obj.Pkg().Path() != atlasPkgPath || obj.Name() != "Dataset" {
				return true
			}
			pass.Reportf("deprecatedatlas", call.Pos(),
				"atlas.Dataset.%s is deprecated; scan through the %s cursor instead", fn.Name(), cursor)
			return true
		})
	}
}
