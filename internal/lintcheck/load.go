package lintcheck

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one parsed and type-checked package ready for analysis.
type LoadedPackage struct {
	Path string // import path
	Dir  string // absolute directory
	Root string // module root the rel-path diagnostics are anchored to

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allow maps module-relative file path -> line -> rule names permitted
	// by //repolint:allow comments on that line.
	allow map[string]map[int]map[string]bool
	// allowSites lists the same comments in source order, with their
	// justifications, for the `repolint -allows` audit.
	allowSites []AllowSite
}

// AllowSite is one //repolint:allow comment: where it is, which rules it
// suppresses, and the justification given after "--".
type AllowSite struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Rules         []string `json:"rules"`
	Justification string   `json:"justification,omitempty"`
}

func (p *LoadedPackage) relFile(pos token.Pos) string {
	abs := p.Fset.Position(pos).Filename
	rel, err := filepath.Rel(p.Root, abs)
	if err != nil {
		return abs
	}
	return cleanRelPath(filepath.ToSlash(rel))
}

// allowed reports whether rule is suppressed at file:line by an allow comment
// on that line or the line directly above.
func (p *LoadedPackage) allowed(relFile string, line int, rule string) bool {
	lines := p.allow[relFile]
	if lines == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		if rules := lines[l]; rules != nil && (rules[rule] || rules["all"]) {
			return true
		}
	}
	return false
}

const allowPrefix = "//repolint:allow"

// collectAllows indexes every //repolint:allow comment in the package.
// Rule names follow the marker, separated by spaces or commas; everything
// after a "--" is free-form justification. Example:
//
//	//repolint:allow panic -- table is compile-time constant
func (p *LoadedPackage) collectAllows() {
	p.allow = make(map[string]map[int]map[string]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //repolint:allowother
				}
				var justification string
				if i := strings.Index(rest, "--"); i >= 0 {
					justification = strings.TrimSpace(rest[i+len("--"):])
					rest = rest[:i]
				}
				rel := p.relFile(c.Pos())
				line := p.Fset.Position(c.Pos()).Line
				rules := strings.FieldsFunc(rest, func(r rune) bool {
					return r == ' ' || r == '\t' || r == ','
				})
				if len(rules) > 0 {
					p.allowSites = append(p.allowSites, AllowSite{
						File: rel, Line: line, Rules: rules,
						Justification: justification,
					})
				}
				for _, rule := range rules {
					lines := p.allow[rel]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						p.allow[rel] = lines
					}
					byRule := lines[line]
					if byRule == nil {
						byRule = make(map[string]bool)
						lines[line] = byRule
					}
					byRule[rule] = true
				}
			}
		}
	}
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lintcheck: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Load resolves patterns (e.g. "./...", "./internal/core") against the
// module rooted at root, parses every matched package, and type-checks it
// using export data produced by the go toolchain. Test files are not loaded:
// the invariants guard the shipped simulation plane, and testdata fixture
// packages are reached by naming their directories explicitly.
func Load(root string, patterns ...string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lintcheck: go list: %w\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintcheck: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lintcheck: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lintcheck: no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*LoadedPackage
	for _, t := range targets {
		lp := &LoadedPackage{Path: t.ImportPath, Dir: t.Dir, Root: root, Fset: fset}
		for _, name := range t.GoFiles {
			file, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lintcheck: parsing %s: %w", name, err)
			}
			lp.Files = append(lp.Files, file)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, lp.Files, info)
		if err != nil {
			return nil, fmt.Errorf("lintcheck: type-checking %s: %w", t.ImportPath, err)
		}
		lp.Types = pkg
		lp.Info = info
		lp.collectAllows()
		out = append(out, lp)
	}
	return out, nil
}

// Allows returns every //repolint:allow comment across pkgs, sorted by file
// then line — the `repolint -allows` suppression audit.
func Allows(pkgs []*LoadedPackage) []AllowSite {
	var out []AllowSite
	for _, pkg := range pkgs {
		out = append(out, pkg.allowSites...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
