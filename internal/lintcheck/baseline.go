package lintcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The findings baseline: pre-existing diagnostics committed to
// lint/baseline.json so they can be burned down incrementally while any NEW
// finding fails the build. Matching is exact — rule, file, line, column, and
// message — as a multiset, so two identical findings need two entries. The
// file is canonical JSON (sorted in the suite's diagnostic order, two-space
// indent, trailing newline): regenerating without any code change is
// byte-identical, which is what lets CI diff it.

// sortDiagnostics orders diags by file, line, column, then rule — the
// suite's canonical output order.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Message < diags[j].Message
	})
}

// MarshalBaseline renders diags as the canonical baseline file contents.
func MarshalBaseline(diags []Diagnostic) ([]byte, error) {
	sorted := make([]Diagnostic, len(diags))
	copy(sorted, diags)
	sortDiagnostics(sorted)
	if sorted == nil {
		sorted = []Diagnostic{}
	}
	out, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// LoadBaselineFile reads and parses a baseline written by MarshalBaseline.
// A missing file is an empty baseline, not an error, so a fresh checkout
// lints before the first `make lint-baseline`.
func LoadBaselineFile(path string) ([]Diagnostic, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("lintcheck: parsing baseline %s: %w", path, err)
	}
	return diags, nil
}

// DiffBaseline splits diags against the baseline multiset: fresh findings
// (not covered by a baseline entry — these fail the build) and stale entries
// (baseline entries whose finding no longer fires — these fail it too, so
// the baseline only shrinks through deliberate regeneration). Both results
// come back in canonical order.
func DiffBaseline(diags, baseline []Diagnostic) (fresh, stale []Diagnostic) {
	counts := make(map[Diagnostic]int, len(baseline))
	for _, d := range baseline {
		counts[d]++
	}
	for _, d := range diags {
		if counts[d] > 0 {
			counts[d]--
			continue
		}
		fresh = append(fresh, d)
	}
	// Walk the baseline slice, not the counts map, so the leftovers come out
	// in a deterministic order (and repolint stays clean under its own
	// maprange rule).
	for _, d := range baseline {
		if counts[d] > 0 {
			counts[d]--
			stale = append(stale, d)
		}
	}
	sortDiagnostics(fresh)
	sortDiagnostics(stale)
	return fresh, stale
}
