// This file holds the shared analysis machinery: diagnostics, configuration,
// the per-package and whole-program pass types, the rule registry, and the
// type-query helpers every analyzer uses. The suite's documentation lives in
// doc.go.
package lintcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by module-relative file path.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config scopes the rules. Paths are slash-separated prefixes relative to the
// module root; a file under any listed prefix is exempt from that rule set.
type Config struct {
	// WallClockAllow exempts packages from the wallclock and unseededrand
	// rules: live-socket code genuinely needs deadlines, and cmd/ harnesses
	// may time their own runs.
	WallClockAllow []string
	// PanicAllow exempts packages from the panic rule. The rule itself only
	// looks inside internal/.
	PanicAllow []string
	// MapIterBan lists packages where ranging over a map is forbidden
	// entirely (the mapiter rule): pooled scratch state makes the weaker
	// escape analysis of maprange insufficient there.
	MapIterBan []string
	// AtomicWriteBan lists prefixes where bare os.Create / os.WriteFile is
	// forbidden (the atomicwrite rule): harness output must survive the
	// kill/resume soak's SIGKILLs without tearing.
	AtomicWriteBan []string
	// DeprecatedAtlasAllow exempts prefixes from the deprecatedatlas rule.
	// internal/atlas itself keeps the old accessors alive (and exercises
	// them against the cursors in its equivalence tests).
	DeprecatedAtlasAllow []string
	// TransitiveRoots lists the engine/simulation entry-point prefixes. The
	// transitive determinism analyzer walks the call graph from every
	// function declared under these prefixes and diagnoses any chain that
	// reaches a forbidden time/randomness source, printing the chain.
	TransitiveRoots []string
	// SyncCloseBan lists the crash-safety prefixes where a discarded
	// Close/Sync error on a writable file (or on a durability type the
	// packages define) is forbidden (the syncclose rule).
	SyncCloseBan []string
	// ExitContract lists prefixes (the cmd/ harnesses) that must exit
	// through the documented core.Exit* contract (the exitcode rule): no
	// bare numeric os.Exit statuses, no log.Fatal.
	ExitContract []string
}

// DefaultConfig is the repository policy: wall clock is allowed in the
// live-socket dnsserver package, command-line harnesses, and examples;
// panics are allowed only for internal/stats shape assertions.
func DefaultConfig() Config {
	return Config{
		// internal/sitemgr drives live sockets too: its health loop runs on
		// real tickers and socket deadlines, while its state machine stays
		// tick-driven and clock-free (proved by the deterministic FSM tests).
		WallClockAllow: []string{"internal/dnsserver", "internal/sitemgr", "cmd/", "examples/"},
		PanicAllow:     []string{"internal/stats"},
		// bgpsim holds the route Computer's reusable scratch buffers; a
		// map-range there could write iteration order into pooled state
		// that outlives the function the maprange rule analyzes.
		MapIterBan: []string{"internal/bgpsim"},
		// The command harnesses are what the kill/resume soak SIGKILLs;
		// their output files must be atomic or a crash tears out/.
		AtomicWriteBan: []string{"cmd/"},
		// The deprecated row accessors live (and are tested) in the atlas
		// package; everywhere else new code must use the cursors.
		DeprecatedAtlasAllow: []string{"internal/atlas"},
		// The packages whose functions anchor every reproduction claim:
		// the parallel engine, the routing and queue models, the
		// measurement store, and the campaign grid expansion. Anything
		// they can reach — however many frames down — is simulation
		// plane.
		TransitiveRoots: []string{
			"internal/core", "internal/bgpsim", "internal/netsim",
			"internal/atlas", "internal/campaign",
		},
		// The crash-safety packages: the atomic writer, the shared ledger
		// framing, the campaign runner, the checkpoint store, and the site
		// manager's decision journal. A swallowed Close/Sync error there is
		// a durability claim silently broken.
		SyncCloseBan: []string{
			"internal/atomicio", "internal/ledger", "internal/campaign",
			"internal/checkpoint", "internal/sitemgr",
		},
		// Harness exit statuses are parsed by the campaign supervisor and
		// CI scripts; they are part of the core.Exit* contract.
		ExitContract: []string{"cmd/"},
	}
}

// Analyzer is one named pass. Run analyzes one package at a time;
// RunProgram, when set, runs once over the whole loaded program with the
// shared call graph (the transitive analyses). An analyzer sets one or the
// other.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*Program)
}

// Pass carries one package through one analyzer and collects reports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *LoadedPackage
	Cfg      Config

	diags []Diagnostic
}

// RelFile returns the module-relative slash path of the file containing pos.
func (p *Pass) RelFile(pos token.Pos) string {
	return p.Pkg.relFile(pos)
}

// Reportf records a diagnostic for rule at pos unless an allow comment
// suppresses it.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	rel := p.Pkg.relFile(pos)
	if p.Pkg.allowed(rel, position.Line, rule) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Rule:    rule,
		File:    rel,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Program carries the whole loaded package set through one whole-program
// analyzer, with the shared approximate call graph.
type Program struct {
	Pkgs  []*LoadedPackage
	Cfg   Config
	Graph *CallGraph

	// byFile maps each module-relative file path to its owning package, so
	// program-level reports honor that file's //repolint:allow comments.
	byFile map[string]*LoadedPackage
	diags  []Diagnostic
}

// NewProgram assembles the whole-program analysis state, building the call
// graph over every loaded package.
func NewProgram(pkgs []*LoadedPackage, cfg Config) *Program {
	prog := &Program{
		Pkgs:   pkgs,
		Cfg:    cfg,
		Graph:  BuildCallGraph(pkgs),
		byFile: make(map[string]*LoadedPackage),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			prog.byFile[pkg.relFile(f.Pos())] = pkg
		}
	}
	return prog
}

// Reportf records a program-level diagnostic for rule at pos unless an allow
// comment in the owning file suppresses it.
func (p *Program) Reportf(rule string, pos token.Pos, format string, args ...any) {
	if len(p.Pkgs) == 0 {
		return
	}
	// All packages share one FileSet and module root (see Load), so any
	// package resolves the position.
	anchor := p.Pkgs[0]
	position := anchor.Fset.Position(pos)
	rel := anchor.relFile(pos)
	if pkg := p.byFile[rel]; pkg != nil && pkg.allowed(rel, position.Line, rule) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Rule:    rule,
		File:    rel,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// exempt reports whether rel (a module-relative slash path) falls under any
// of the given path prefixes.
func exempt(rel string, prefixes []string) bool {
	for _, pre := range prefixes {
		if strings.HasPrefix(rel, pre) {
			return true
		}
	}
	return false
}

// Analyzers returns the full repository rule suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		TransitiveDeterminismAnalyzer(),
		ErrHygieneAnalyzer(),
		PanicPolicyAnalyzer(),
		APIHygieneAnalyzer(),
		AtomicWriteAnalyzer(),
		DeprecatedAtlasAnalyzer(),
		SyncCloseAnalyzer(),
		GoroLeakAnalyzer(),
		ExitCodeAnalyzer(),
		HotAllocAnalyzer(),
	}
}

// RuleDoc is one diagnosable rule name with its one-line description and the
// analyzer that owns it — the `repolint -rules` listing.
type RuleDoc struct {
	Name     string `json:"name"`
	Doc      string `json:"doc"`
	Analyzer string `json:"analyzer"`
}

// RuleDocs returns every rule the suite can emit, sorted by name. The README
// "Determinism invariants" table is kept in sync against this listing.
func RuleDocs() []RuleDoc {
	docs := []RuleDoc{
		{"wallclock", "no time.Now in the simulation plane; also enforced transitively from the engine entry points", "determinism"},
		{"globalrand", "no package-level math/rand draws from the shared global source; also enforced transitively", "determinism"},
		{"unseededrand", "rand.New's source must be a direct rand.NewSource(seed) call; also enforced transitively", "determinism"},
		{"maprange", "no returning a slice appended in map-iteration order without a sort.* call", "determinism"},
		{"mapiter", "no map iteration at all in pooled-scratch packages (internal/bgpsim)", "determinism"},
		{"errwrap", "fmt.Errorf with an error-typed argument must use %w", "errhygiene"},
		{"sentinel", "package-level sentinel errors must be errors.New, not fmt.Errorf", "errhygiene"},
		{"panic", "no panic() in internal/ outside the allowlist", "panicpolicy"},
		{"ctxfirst", "context.Context must be the first parameter", "apihygiene"},
		{"mutexcopy", "no sync primitive (or type containing one) passed or returned by value", "apihygiene"},
		{"atomicwrite", "whole-file writes in cmd/ harnesses go through internal/atomicio, not bare os.Create/os.WriteFile", "atomicwrite"},
		{"deprecatedatlas", "no new uses of the deprecated atlas.Dataset row accessors; scan through the columnar cursors", "deprecatedatlas"},
		{"syncclose", "no discarded Close/Sync error on writable files or durability types in the crash-safety packages", "syncclose"},
		{"goroleak", "no goroutine launched without a visible join path (context, channel, or WaitGroup)", "goroleak"},
		{"exitcode", "cmd/ exits through the core.Exit* contract: no bare numeric os.Exit, no log.Fatal", "exitcode"},
		{"hotalloc", "//repolint:hot functions stay allocation-free: no append, make, new, map/slice literals, or closures", "hotalloc"},
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	return docs
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, column, then rule.
func Run(pkgs []*LoadedPackage, cfg Config) []Diagnostic {
	return RunAnalyzers(pkgs, Analyzers(), cfg)
}

// RunAnalyzers applies a specific analyzer set. Per-package analyzers run
// over each package; whole-program analyzers run once, sharing one call
// graph, built only when some analyzer needs it.
func RunAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Cfg: cfg}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs, cfg)
		}
		a.RunProgram(prog)
	}
	if prog != nil {
		out = append(out, prog.diags...)
	}
	sortDiagnostics(out)
	return out
}

// --- shared type-query helpers used by the analyzers ---

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil when the callee is not a named function.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// identObj resolves an identifier to its object, whether this occurrence
// defines or uses it.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// mentionsObj reports whether any identifier under n resolves to obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// cleanRelPath normalises a module-relative path for prefix matching.
func cleanRelPath(rel string) string {
	return path.Clean(strings.ReplaceAll(rel, "\\", "/"))
}
