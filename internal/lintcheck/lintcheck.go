// Package lintcheck is a stdlib-only static-analysis suite that mechanically
// enforces the repository's determinism, error-hygiene, panic-policy, and API
// invariants. The reproduction's headline guarantee — byte-identical
// Run/Measure output for any worker count, under any fault plan — rests on
// hand-maintained conventions (every RNG seeded, no wall clock in the
// simulation plane, no map-iteration order escaping into results). This
// package turns those conventions into build failures.
//
// The suite is built purely against the standard library (go/parser, go/ast,
// go/types); packages and their type information are loaded through
// `go list -export` (see load.go), so go.mod keeps zero dependencies.
//
// Rules (each diagnostic carries the rule name; suppress a single site with a
// `//repolint:allow <rule>` comment on the same line or the line above):
//
//   - wallclock:    time.Now is forbidden outside the live-socket and harness
//     allowlist. The simulation plane models time as minute bins; a wall-clock
//     read there silently destroys replayability.
//   - globalrand:   package-level math/rand functions (rand.Int63, rand.Seed,
//     …) draw from the shared, racily-seeded global source. Every RNG must be
//     an explicitly seeded *rand.Rand.
//   - unseededrand: rand.New's source must be a direct rand.NewSource(seed)
//     call, so the seed is visible at the construction site.
//   - maprange:     ranging over a map and appending to a slice that is then
//     returned without an intervening sort.* call leaks map-iteration order
//     into results.
//   - mapiter:      in packages with pooled, reusable computation scratch
//     (internal/bgpsim), ranging over a map is banned outright: a reused
//     buffer filled in map order poisons every later consumer, which the
//     escape-based maprange rule cannot see.
//   - errwrap:      fmt.Errorf with an error-typed argument must use %w so
//     errors.Is/errors.As see through the wrap.
//   - sentinel:     package-level sentinel error variables must be built with
//     errors.New, not fmt.Errorf.
//   - panic:        no panic() in internal/ outside the shape-invariant
//     assertions allowlisted in internal/stats.
//   - ctxfirst:     context.Context must be the first parameter.
//   - mutexcopy:    no sync.Mutex (or type containing one) passed or returned
//     by value.
//   - atomicwrite:  in command-line harnesses, whole-file writes must go
//     through internal/atomicio (temp + fsync + rename) instead of bare
//     os.Create / os.WriteFile, so a killed run never leaves torn output.
//   - deprecatedatlas: the per-cell row accessors on atlas.Dataset (At,
//     RawAt, EachVP) are deprecated outside internal/atlas; new scans must
//     use the columnar Rows / RawRows cursors.
package lintcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by module-relative file path.
type Diagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: rule: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config scopes the rules. Paths are slash-separated prefixes relative to the
// module root; a file under any listed prefix is exempt from that rule set.
type Config struct {
	// WallClockAllow exempts packages from the wallclock and unseededrand
	// rules: live-socket code genuinely needs deadlines, and cmd/ harnesses
	// may time their own runs.
	WallClockAllow []string
	// PanicAllow exempts packages from the panic rule. The rule itself only
	// looks inside internal/.
	PanicAllow []string
	// MapIterBan lists packages where ranging over a map is forbidden
	// entirely (the mapiter rule): pooled scratch state makes the weaker
	// escape analysis of maprange insufficient there.
	MapIterBan []string
	// AtomicWriteBan lists prefixes where bare os.Create / os.WriteFile is
	// forbidden (the atomicwrite rule): harness output must survive the
	// kill/resume soak's SIGKILLs without tearing.
	AtomicWriteBan []string
	// DeprecatedAtlasAllow exempts prefixes from the deprecatedatlas rule.
	// internal/atlas itself keeps the old accessors alive (and exercises
	// them against the cursors in its equivalence tests).
	DeprecatedAtlasAllow []string
}

// DefaultConfig is the repository policy: wall clock is allowed in the
// live-socket dnsserver package, command-line harnesses, and examples;
// panics are allowed only for internal/stats shape assertions.
func DefaultConfig() Config {
	return Config{
		WallClockAllow: []string{"internal/dnsserver", "cmd/", "examples/"},
		PanicAllow:     []string{"internal/stats"},
		// bgpsim holds the route Computer's reusable scratch buffers; a
		// map-range there could write iteration order into pooled state
		// that outlives the function the maprange rule analyzes.
		MapIterBan: []string{"internal/bgpsim"},
		// The command harnesses are what the kill/resume soak SIGKILLs;
		// their output files must be atomic or a crash tears out/.
		AtomicWriteBan: []string{"cmd/"},
		// The deprecated row accessors live (and are tested) in the atlas
		// package; everywhere else new code must use the cursors.
		DeprecatedAtlasAllow: []string{"internal/atlas"},
	}
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer and collects reports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *LoadedPackage
	Cfg      Config

	diags []Diagnostic
}

// RelFile returns the module-relative slash path of the file containing pos.
func (p *Pass) RelFile(pos token.Pos) string {
	return p.Pkg.relFile(pos)
}

// Reportf records a diagnostic for rule at pos unless an allow comment
// suppresses it.
func (p *Pass) Reportf(rule string, pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	rel := p.Pkg.relFile(pos)
	if p.Pkg.allowed(rel, position.Line, rule) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Rule:    rule,
		File:    rel,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// exempt reports whether rel (a module-relative slash path) falls under any
// of the given path prefixes.
func exempt(rel string, prefixes []string) bool {
	for _, pre := range prefixes {
		if strings.HasPrefix(rel, pre) {
			return true
		}
	}
	return false
}

// Analyzers returns the full repository rule suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		ErrHygieneAnalyzer(),
		PanicPolicyAnalyzer(),
		APIHygieneAnalyzer(),
		AtomicWriteAnalyzer(),
		DeprecatedAtlasAnalyzer(),
	}
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, column, then rule.
func Run(pkgs []*LoadedPackage, cfg Config) []Diagnostic {
	return RunAnalyzers(pkgs, Analyzers(), cfg)
}

// RunAnalyzers applies a specific analyzer set.
func RunAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Cfg: cfg}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// --- shared type-query helpers used by the analyzers ---

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil when the callee is not a named function.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

// identObj resolves an identifier to its object, whether this occurrence
// defines or uses it.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// mentionsObj reports whether any identifier under n resolves to obj.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && identObj(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// cleanRelPath normalises a module-relative path for prefix matching.
func cleanRelPath(rel string) string {
	return path.Clean(strings.ReplaceAll(rel, "\\", "/"))
}
