package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeakAnalyzer flags go statements with no visible join path: neither
// the statement itself (the launched literal plus its arguments) nor the
// body of a same-package function it launches mentions a channel operation,
// a context.Context, or a sync.WaitGroup. Such a goroutine cannot be waited
// for or cancelled, so it outlives the run that spawned it — in the engine
// that means work escaping the worker pool's accounting, and in a harness
// it means a SIGKILL test racing a writer nobody joined.
func GoroLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "no goroutine launched without a visible join path (context, channel operation, or WaitGroup)",
		Run:  runGoroLeak,
	}
}

func runGoroLeak(pass *Pass) {
	info := pass.Pkg.Info

	// Same-package function bodies, for the one-level scan of `go f(...)`.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if hasJoinEvidence(info, g) {
				return true
			}
			if fn := calleeFunc(info, g.Call); fn != nil {
				if fd := decls[fn.Origin()]; fd != nil && hasJoinEvidence(info, fd.Body) {
					return true
				}
			}
			pass.Reportf("goroleak", g.Pos(),
				"goroutine has no visible join path (no context, channel operation, or WaitGroup in the go statement or the launched function); nothing can wait for or cancel it")
			return true
		})
	}
}

// hasJoinEvidence reports whether n contains anything a joined goroutine
// would touch: a channel send/receive/close, a select, or an identifier of
// channel, context.Context, or sync.WaitGroup type.
func hasJoinEvidence(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch c := c.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[c.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if obj := identObj(info, c); obj != nil && isJoinType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isJoinType reports whether t is a channel, context.Context, or
// sync.WaitGroup (possibly behind one pointer).
func isJoinType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = deref(t)
	if _, isChan := t.Underlying().(*types.Chan); isChan {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "context" && name == "Context") ||
		(path == "sync" && name == "WaitGroup")
}
