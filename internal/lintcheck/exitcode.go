package lintcheck

import (
	"go/ast"
)

// ExitCodeAnalyzer enforces the process-exit contract in the harness
// binaries (Config.ExitContract, the cmd/ tree): exit statuses are parsed by
// the campaign supervisor and CI scripts, so they must come from the named
// core.Exit* constants — never a bare numeric literal — and never from
// log.Fatal, which hard-exits 1 while skipping the deferred cleanup the
// atomic-output discipline depends on.
func ExitCodeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "exitcode",
		Doc:  "cmd/ exits through the core.Exit* contract: no bare numeric os.Exit, no log.Fatal",
		Run:  runExitCode,
	}
}

var logFatalFuncs = map[string]bool{
	"Fatal":   true,
	"Fatalf":  true,
	"Fatalln": true,
}

func runExitCode(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		if !exempt(pass.RelFile(file.Pos()), pass.Cfg.ExitContract) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "os", "Exit") && len(call.Args) == 1:
				if _, bare := ast.Unparen(call.Args[0]).(*ast.BasicLit); bare {
					pass.Reportf("exitcode", call.Pos(),
						"bare numeric exit status; the supervisor and CI parse exit codes, so use the named core.Exit* constants")
				}
			case isPkgFunc(fn, "log", fn.Name()) && logFatalFuncs[fn.Name()]:
				pass.Reportf("exitcode", call.Pos(),
					"log.%s exits 1 without running deferred cleanup or classifying the failure; log the error and exit through the core.Exit* contract", fn.Name())
			}
			return true
		})
	}
}
