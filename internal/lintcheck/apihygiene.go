package lintcheck

import (
	"go/ast"
	"go/types"
)

// APIHygieneAnalyzer enforces Go API conventions the rest of the repo relies
// on: context.Context travels as the first parameter, and lock-bearing types
// are never passed or returned by value.
func APIHygieneAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "apihygiene",
		Doc:  "context.Context first; no sync primitives copied by value",
		Run:  runAPIHygiene,
	}
}

func runAPIHygiene(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncType(pass, n.Type)
				if n.Recv != nil {
					checkLockFields(pass, n.Recv)
				}
			case *ast.FuncLit:
				checkFuncType(pass, n.Type)
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						checkFuncType(pass, ft)
					}
				}
			}
			return true
		})
	}
}

func checkFuncType(pass *Pass, ft *ast.FuncType) {
	if ft.Params != nil {
		pos := 0
		for _, field := range ft.Params.List {
			width := len(field.Names)
			if width == 0 {
				width = 1 // unnamed parameter
			}
			if isContextType(pass, field.Type) && pos > 0 {
				pass.Reportf("ctxfirst", field.Pos(),
					"context.Context must be the first parameter")
			}
			pos += width
		}
		checkLockFields(pass, ft.Params)
	}
	if ft.Results != nil {
		checkLockFields(pass, ft.Results)
	}
}

// checkLockFields reports parameters, results, or receivers whose value type
// carries a lock.
func checkLockFields(pass *Pass, fields *ast.FieldList) {
	for _, field := range fields.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if name := lockCarrier(tv.Type, nil); name != "" {
			shown := types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types))
			if shown == name {
				pass.Reportf("mutexcopy", field.Pos(),
					"%s is passed by value; use a pointer", name)
			} else {
				pass.Reportf("mutexcopy", field.Pos(),
					"%s is passed by value and carries %s; use a pointer", shown, name)
			}
		}
	}
}

func isContextType(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// syncLockTypes are the sync primitives that must not be copied once used.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// lockCarrier returns the name of the sync primitive t carries by value
// (directly, via struct fields, or via arrays), or "" if none. Pointers,
// slices, maps, and channels break the chain: copying them does not copy the
// lock.
func lockCarrier(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockCarrier(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockCarrier(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockCarrier(u.Elem(), seen)
	}
	return ""
}
