package lintcheck

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// assertKeys compares diagnostics against expected (rule, file, line) keys
// in output order.
func assertKeys(t *testing.T, diags []Diagnostic, want []key) {
	t.Helper()
	got := diagKeys(diags)
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(got), len(want), diags)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestSyncCloseFixture checks the syncclose rule with a Config that bans
// discarded Close/Sync there (the fixture stands in for the crash-safety
// packages DefaultConfig covers).
func TestSyncCloseFixture(t *testing.T) {
	const dir = "internal/lintcheck/testdata/syncclose"
	cfg := DefaultConfig()
	cfg.SyncCloseBan = append(cfg.SyncCloseBan, dir)
	diags := Run(loadFixture(t, "./"+dir), cfg)
	assertKeys(t, diags, []key{
		{"syncclose", dir + "/bad.go", 20},
		{"syncclose", dir + "/bad.go", 27},
		{"syncclose", dir + "/bad.go", 32},
	})
	// Outside the banned prefixes the fixture is clean: the rule is scoped.
	if diags := Run(loadFixture(t, "./"+dir), DefaultConfig()); len(diags) != 0 {
		t.Errorf("unbanned fixture still produced diagnostics: %v", diags)
	}
}

// TestGoroLeakFixture checks the goroleak rule, which is unscoped: only the
// two goroutines with no join path are flagged, not the channel-, WaitGroup-,
// or context-joined ones, and not the launch whose evidence sits one level
// down in the launched function's body.
func TestGoroLeakFixture(t *testing.T) {
	const dir = "internal/lintcheck/testdata/goroleak"
	diags := Run(loadFixture(t, "./"+dir), DefaultConfig())
	assertKeys(t, diags, []key{
		{"goroleak", dir + "/bad.go", 13},
		{"goroleak", dir + "/bad.go", 20},
	})
}

// TestExitCodeFixture checks the exitcode rule with a Config that applies
// the exit contract there (the fixture stands in for cmd/).
func TestExitCodeFixture(t *testing.T) {
	const dir = "internal/lintcheck/testdata/exitcode"
	cfg := DefaultConfig()
	cfg.ExitContract = append(cfg.ExitContract, dir)
	diags := Run(loadFixture(t, "./"+dir), cfg)
	assertKeys(t, diags, []key{
		{"exitcode", dir + "/bad.go", 15},
		{"exitcode", dir + "/bad.go", 20},
	})
	// Outside the contract prefixes the fixture is clean: the rule is scoped.
	if diags := Run(loadFixture(t, "./"+dir), DefaultConfig()); len(diags) != 0 {
		t.Errorf("unscoped fixture still produced diagnostics: %v", diags)
	}
}

// TestHotAllocFixture checks the hotalloc rule: every allocating construct
// in the //repolint:hot functions — including both byte<->string conversion
// directions and the lvalue map-key write — nothing in the unannotated or
// clean ones, and nothing for the exempt rvalue map-read key (bad.go:45).
func TestHotAllocFixture(t *testing.T) {
	const dir = "internal/lintcheck/testdata/hotalloc"
	diags := Run(loadFixture(t, "./"+dir), DefaultConfig())
	assertKeys(t, diags, []key{
		{"hotalloc", dir + "/bad.go", 10},
		{"hotalloc", dir + "/bad.go", 11},
		{"hotalloc", dir + "/bad.go", 12},
		{"hotalloc", dir + "/bad.go", 13},
		{"hotalloc", dir + "/bad.go", 14},
		{"hotalloc", dir + "/bad.go", 15},
		{"hotalloc", dir + "/bad.go", 43},
		{"hotalloc", dir + "/bad.go", 44},
		{"hotalloc", dir + "/bad.go", 46},
	})
}

// TestTransitiveFixture is the acceptance fixture for the call-graph layer:
// time.Now is reached from Entry only through two intermediate functions and
// a devirtualized interface method, and the diagnostic prints the full
// chain. The per-site rules still fire at the leaves; the transitive reports
// land at each root's first hop into the chain.
func TestTransitiveFixture(t *testing.T) {
	const dir = "internal/lintcheck/testdata/transitive"
	cfg := DefaultConfig()
	cfg.TransitiveRoots = append(cfg.TransitiveRoots, dir)
	diags := Run(loadFixture(t, "./"+dir+"/..."), cfg)
	assertKeys(t, diags, []key{
		{"wallclock", dir + "/bad.go", 24},                // root wallTicker.Tick
		{"wallclock", dir + "/bad.go", 30},                // root Entry, 3 hops
		{"wallclock", dir + "/bad.go", 34},                // root timestamp, devirtualized hop
		{"globalrand", dir + "/bad.go", 39},               // root Jitter
		{"globalrand", dir + "/bad.go", 43},               // per-site leaf
		{"wallclock", dir + "/clockutil/clockutil.go", 9}, // per-site leaf
	})

	var entry Diagnostic
	for _, d := range diags {
		if d.Line == 30 {
			entry = d
		}
	}
	const chain = "Entry -> timestamp -> ticker.Tick => wallTicker.Tick -> clockutil.Stamp"
	if !strings.Contains(entry.Message, chain) {
		t.Errorf("Entry diagnostic does not print the chain %q:\n%s", chain, entry.Message)
	}
	if !strings.Contains(entry.Message, "time.Now") ||
		!strings.Contains(entry.Message, dir+"/clockutil/clockutil.go:9") {
		t.Errorf("Entry diagnostic does not name the forbidden source and its site:\n%s", entry.Message)
	}

	// Without the fixture in TransitiveRoots only the per-site leaves fire:
	// the transitive reports are scoped to the engine entry points.
	diags = Run(loadFixture(t, "./"+dir+"/..."), DefaultConfig())
	assertKeys(t, diags, []key{
		{"globalrand", dir + "/bad.go", 43},
		{"wallclock", dir + "/clockutil/clockutil.go", 9},
	})
}

// TestMarshalBaselineCanonical pins the canonical form: input order does not
// matter, output is sorted, two-space indented, newline-terminated, and
// byte-identical across regenerations.
func TestMarshalBaselineCanonical(t *testing.T) {
	a := Diagnostic{Rule: "wallclock", File: "a.go", Line: 3, Col: 2, Message: "m1"}
	b := Diagnostic{Rule: "panic", File: "a.go", Line: 9, Col: 1, Message: "m2"}
	first, err := MarshalBaseline([]Diagnostic{b, a})
	if err != nil {
		t.Fatal(err)
	}
	second, err := MarshalBaseline([]Diagnostic{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("baseline not canonical across input orders:\n%s\n---\n%s", first, second)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Error("baseline missing trailing newline")
	}
	if idx := bytes.Index(first, []byte(`"rule": "wallclock"`)); idx < 0 ||
		idx > bytes.Index(first, []byte(`"rule": "panic"`)) {
		t.Errorf("baseline not sorted in diagnostic order:\n%s", first)
	}

	empty, err := MarshalBaseline(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]\n" {
		t.Errorf("empty baseline = %q, want %q", empty, "[]\n")
	}
}

// TestLoadBaselineFile covers the round trip and the missing-file case.
func TestLoadBaselineFile(t *testing.T) {
	want := []Diagnostic{
		{Rule: "wallclock", File: "a.go", Line: 3, Col: 2, Message: "m"},
	}
	data, err := MarshalBaseline(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}

	missing, err := LoadBaselineFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || missing != nil {
		t.Errorf("missing baseline = (%v, %v), want empty", missing, err)
	}
}

// TestDiffBaseline pins the multiset semantics: covered findings vanish,
// uncovered findings are fresh, unmatched entries are stale, and duplicate
// findings need duplicate entries.
func TestDiffBaseline(t *testing.T) {
	d1 := Diagnostic{Rule: "exitcode", File: "cmd/a/main.go", Line: 5, Col: 2, Message: "m"}
	d2 := Diagnostic{Rule: "exitcode", File: "cmd/b/main.go", Line: 8, Col: 2, Message: "m"}

	fresh, stale := DiffBaseline([]Diagnostic{d1, d2}, []Diagnostic{d1, d2})
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("exact cover: fresh=%v stale=%v", fresh, stale)
	}

	fresh, stale = DiffBaseline([]Diagnostic{d1, d2}, []Diagnostic{d1})
	if len(fresh) != 1 || fresh[0] != d2 || len(stale) != 0 {
		t.Errorf("uncovered finding: fresh=%v stale=%v", fresh, stale)
	}

	fresh, stale = DiffBaseline([]Diagnostic{d1}, []Diagnostic{d1, d2})
	if len(fresh) != 0 || len(stale) != 1 || stale[0] != d2 {
		t.Errorf("fixed finding: fresh=%v stale=%v", fresh, stale)
	}

	// Two identical findings against one entry: the second is fresh.
	fresh, stale = DiffBaseline([]Diagnostic{d1, d1}, []Diagnostic{d1})
	if len(fresh) != 1 || len(stale) != 0 {
		t.Errorf("multiset: fresh=%v stale=%v", fresh, stale)
	}
}

// TestRuleDocs pins the -rules listing: sorted, unique, every name owned by
// an analyzer that actually runs.
func TestRuleDocs(t *testing.T) {
	docs := RuleDocs()
	if len(docs) != 16 {
		t.Fatalf("RuleDocs() returned %d rules, want 16", len(docs))
	}
	owners := make(map[string]bool)
	for _, a := range Analyzers() {
		owners[a.Name] = true
	}
	seen := make(map[string]bool)
	for i, d := range docs {
		if i > 0 && docs[i-1].Name >= d.Name {
			t.Errorf("RuleDocs not sorted at %q", d.Name)
		}
		if seen[d.Name] {
			t.Errorf("duplicate rule %q", d.Name)
		}
		seen[d.Name] = true
		if !owners[d.Analyzer] {
			t.Errorf("rule %q claims unknown analyzer %q", d.Name, d.Analyzer)
		}
		if d.Doc == "" {
			t.Errorf("rule %q has no doc line", d.Name)
		}
	}
	for _, rule := range []string{"wallclock", "syncclose", "goroleak", "exitcode", "hotalloc"} {
		if !seen[rule] {
			t.Errorf("RuleDocs missing %q", rule)
		}
	}
}

// TestAllowsAudit checks the -allows listing against the allowed fixture,
// including justification capture.
func TestAllowsAudit(t *testing.T) {
	const dir = "internal/lintcheck/testdata/allowed"
	sites := Allows(loadFixture(t, "./"+dir))
	if len(sites) != 3 {
		t.Fatalf("Allows() returned %d sites, want 3:\n%+v", len(sites), sites)
	}
	for i, s := range sites {
		if s.File != dir+"/suppressed.go" {
			t.Errorf("site %d in unexpected file %s", i, s.File)
		}
		if len(s.Rules) == 0 {
			t.Errorf("site %d has no rules", i)
		}
		if !strings.Contains(s.Justification, "fixture") {
			t.Errorf("site %d justification %q not captured", i, s.Justification)
		}
		if i > 0 && sites[i-1].Line >= s.Line {
			t.Errorf("sites not in line order at %d", i)
		}
	}
	if sites[0].Rules[0] != "wallclock" || sites[2].Rules[0] != "panic" {
		t.Errorf("rule capture wrong: %+v", sites)
	}
}

// TestDefaultConfigScopesV2 pins the v2 policy additions: which prefixes are
// transitive roots, crash-safety packages, and exit-contract holders.
func TestDefaultConfigScopesV2(t *testing.T) {
	cfg := DefaultConfig()
	for _, pre := range []string{
		"internal/core", "internal/bgpsim", "internal/netsim",
		"internal/atlas", "internal/campaign",
	} {
		if !exempt(pre+"/x.go", cfg.TransitiveRoots) {
			t.Errorf("TransitiveRoots should cover %s", pre)
		}
	}
	if exempt("internal/dnsserver/server.go", cfg.TransitiveRoots) {
		t.Error("TransitiveRoots must not cover internal/dnsserver (live-socket plane)")
	}
	for _, pre := range []string{"internal/atomicio", "internal/campaign", "internal/checkpoint"} {
		if !exempt(pre+"/x.go", cfg.SyncCloseBan) {
			t.Errorf("SyncCloseBan should cover %s", pre)
		}
	}
	if exempt("internal/stats/stats.go", cfg.SyncCloseBan) {
		t.Error("SyncCloseBan must not cover internal/stats")
	}
	if !exempt("cmd/rootevent/main.go", cfg.ExitContract) {
		t.Error("ExitContract should cover cmd/")
	}
	if exempt("internal/core/exitcode.go", cfg.ExitContract) {
		t.Error("ExitContract must not cover internal/ (the constants live there)")
	}
}
