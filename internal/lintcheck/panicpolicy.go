package lintcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPolicyAnalyzer forbids panic() inside internal/ packages outside the
// configured allowlist. The engine recovers worker panics into
// ErrWorkerPanic, but a panic on a config-reachable path is still a crash for
// every caller that has not opted into the engine; internal packages must
// return errors instead. Shape-invariant assertions in internal/stats are
// exempt by policy, and individual sites can justify themselves with
// //repolint:allow panic.
func PanicPolicyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "panicpolicy",
		Doc:  "no panic() in internal/ outside the allowlist",
		Run:  runPanicPolicy,
	}
}

func runPanicPolicy(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		rel := pass.RelFile(file.Pos())
		if !strings.Contains(rel, "internal/") || exempt(rel, pass.Cfg.PanicAllow) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			pass.Reportf("panic", call.Pos(),
				"panic in internal/ package; return a sentinel error, or justify with //repolint:allow panic")
			return true
		})
	}
}
