package lintcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotDirective marks a function as a per-probe hot path that must stay
// structurally allocation-free (placed in the function's doc comment).
const hotDirective = "//repolint:hot"

// HotAllocAnalyzer protects the allocation-free hot paths behind the bench
// gate: any function annotated `//repolint:hot` may not contain append,
// make, new, a map or slice composite literal, or a function literal. The
// bench gate catches a regression's symptom (allocs/op > 0); this rule
// names the line that caused it, before the benchmark ever runs.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "//repolint:hot functions stay allocation-free: no append, make, new, map/slice literals, or closures",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkHotBody(pass, info, fd)
		}
	}
}

// isHot reports whether fd's doc comment carries the hot directive.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotDirective) {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf("hotalloc", n.Pos(),
				"function literal in a %s function allocates its closure per call; hoist it to a named function", hotDirective)
			return false // the literal's own body is not hot
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf("hotalloc", n.Pos(),
						"map literal allocates in a %s function; use pooled scratch indexed by dense key", hotDirective)
				case *types.Slice:
					pass.Reportf("hotalloc", n.Pos(),
						"slice literal allocates in a %s function; write into a caller-provided buffer", hotDirective)
				}
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "append", "make", "new":
				pass.Reportf("hotalloc", n.Pos(),
					"%s allocates in a %s function; the bench gate holds this path to zero allocs/op", id.Name, hotDirective)
			}
		}
		return true
	})
}
