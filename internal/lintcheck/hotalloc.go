package lintcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotDirective marks a function as a per-probe hot path that must stay
// structurally allocation-free (placed in the function's doc comment).
const hotDirective = "//repolint:hot"

// HotAllocAnalyzer protects the allocation-free hot paths behind the bench
// gate: any function annotated `//repolint:hot` may not contain append,
// make, new, a map or slice composite literal, a function literal, or a
// copying byte<->string conversion. The bench gate catches a regression's
// symptom (allocs/op > 0); this rule names the line that caused it, before
// the benchmark ever runs.
//
// The one exempt conversion is string(b) appearing directly as a map index
// read — `m[string(b)]` as an rvalue — which the compiler recognizes and
// performs without materializing the string (the interning idiom in
// dnswire's decode scratch). Writing through the same key, `m[string(b)] =
// v`, does allocate and is flagged.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "//repolint:hot functions stay allocation-free: no append, make, new, map/slice literals, closures, or byte<->string copies (map-read keys exempt)",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkHotBody(pass, info, fd)
		}
	}
}

// isHot reports whether fd's doc comment carries the hot directive.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotDirective) {
			return true
		}
	}
	return false
}

func checkHotBody(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	exempt := exemptMapReadKeys(info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf("hotalloc", n.Pos(),
				"function literal in a %s function allocates its closure per call; hoist it to a named function", hotDirective)
			return false // the literal's own body is not hot
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf("hotalloc", n.Pos(),
						"map literal allocates in a %s function; use pooled scratch indexed by dense key", hotDirective)
				case *types.Slice:
					pass.Reportf("hotalloc", n.Pos(),
						"slice literal allocates in a %s function; write into a caller-provided buffer", hotDirective)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "append", "make", "new":
						pass.Reportf("hotalloc", n.Pos(),
							"%s allocates in a %s function; the bench gate holds this path to zero allocs/op", id.Name, hotDirective)
					}
					return true
				}
			}
			if exempt[n] {
				return true
			}
			switch byteStringConversion(info, n) {
			case toString:
				pass.Reportf("hotalloc", n.Pos(),
					"string([]byte) conversion copies in a %s function; compare bytes in place, or intern via an rvalue map read m[string(b)]", hotDirective)
			case toBytes:
				pass.Reportf("hotalloc", n.Pos(),
					"[]byte(string) conversion copies in a %s function; write into a caller-provided buffer", hotDirective)
			}
		}
		return true
	})
}

// conversionKind classifies a copying byte<->string conversion.
type conversionKind int

const (
	notConversion conversionKind = iota
	toString                     // string(b) from []byte
	toBytes                      // []byte(s) from string
)

// byteStringConversion reports whether call is a conversion between string
// and []byte (either direction), the two conversions that copy their
// operand on every execution.
func byteStringConversion(info *types.Info, call *ast.CallExpr) conversionKind {
	if len(call.Args) != 1 {
		return notConversion
	}
	funTV, ok := info.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return notConversion
	}
	argTV, ok := info.Types[call.Args[0]]
	if !ok {
		return notConversion
	}
	if isString(funTV.Type) && isByteSlice(argTV.Type) {
		return toString
	}
	if isByteSlice(funTV.Type) && isString(argTV.Type) {
		return toBytes
	}
	return notConversion
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// exemptMapReadKeys collects the string([]byte) conversions appearing
// directly as a map index in rvalue position — m[string(b)] reads, which
// the compiler performs without allocating. Index expressions written
// through (m[string(b)] = v, m[string(b)]++) stay flagged: assignment
// materializes the key.
func exemptMapReadKeys(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	lvalue := make(map[*ast.IndexExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					lvalue[ix] = true
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				lvalue[ix] = true
			}
		}
		return true
	})
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok || lvalue[ix] {
			return true
		}
		if tv, ok := info.Types[ix.X]; !ok || !isMap(tv.Type) {
			return true
		}
		call, ok := ast.Unparen(ix.Index).(*ast.CallExpr)
		if !ok {
			return true
		}
		if byteStringConversion(info, call) == toString {
			exempt[call] = true
		}
		return true
	})
	return exempt
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}
