// Package atomicwrite is a repolint fixture for the atomicwrite rule,
// which bans bare os.Create / os.WriteFile where a SIGKILLed run must not
// leave torn output (cmd/ in the repository policy). The fixture is only
// checked with a Config that lists this directory in AtomicWriteBan;
// expected diagnostics are asserted, with exact line numbers, in
// internal/lintcheck/lintcheck_test.go.
package atomicwrite

import "os"

// TornCreate opens an output file for incremental writes; a crash midway
// leaves a truncated file behind.
func TornCreate(path string) error {
	f, err := os.Create(path) // want atomicwrite (line 14)
	if err != nil {
		return err
	}
	return f.Close()
}

// TornWriteFile writes the whole content, but not atomically.
func TornWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicwrite (line 23)
}

// OpenIsFine only reads; no diagnostic expected.
func OpenIsFine(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// Suppressed documents a justified streaming writer with an allow marker.
func Suppressed(path string) error {
	f, err := os.Create(path) //repolint:allow atomicwrite -- fixture: streaming writer held open for the whole run
	if err != nil {
		return err
	}
	return f.Close()
}
