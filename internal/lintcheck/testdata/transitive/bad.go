// Package transitive is a repolint fixture: the wall clock and the global
// rand source are reached only through call chains — two intermediate
// functions and a devirtualized interface method — never directly from the
// entry points. The expected diagnostics, with exact line numbers, are
// asserted in internal/lintcheck/lintcheck_test.go.
package transitive

import (
	"math/rand"

	"github.com/rootevent/anycastddos/internal/lintcheck/testdata/transitive/clockutil"
)

// ticker abstracts a time source; the analyzer devirtualizes Tick to every
// loaded implementation.
type ticker interface {
	Tick() int64
}

// wallTicker implements ticker on top of the wall clock, one package down.
type wallTicker struct{}

func (wallTicker) Tick() int64 {
	return clockutil.Stamp() // want transitive wallclock for root Tick (line 24)
}

// Entry is the engine entry point: time.Now is three frames away, behind an
// interface call.
func Entry(t ticker) int64 {
	return timestamp(t) // want transitive wallclock for root Entry (line 30)
}

func timestamp(t ticker) int64 {
	return t.Tick() // want transitive wallclock for root timestamp (line 34)
}

// Jitter reaches the global rand source through one helper.
func Jitter() float64 {
	return draw() // want transitive globalrand for root Jitter (line 39)
}

func draw() float64 {
	return rand.Float64() // want globalrand at the site itself (line 43)
}
