// Package clockutil is the leaf of the transitive fixture: the only direct
// time.Now call, two frames below the entry points.
package clockutil

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want wallclock at the site itself (line 9)
}
