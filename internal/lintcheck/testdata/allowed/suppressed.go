// Package allowed is a repolint fixture proving //repolint:allow comments
// suppress diagnostics, both on the offending line and on the line above.
// internal/lintcheck/lintcheck_test.go asserts it produces zero diagnostics.
package allowed

import "time"

// SameLine suppresses on the offending line itself.
func SameLine() int64 {
	return time.Now().UnixNano() //repolint:allow wallclock -- fixture: suppressed in-line
}

// LineAbove suppresses from the line directly above.
func LineAbove() int64 {
	//repolint:allow wallclock -- fixture: suppressed from above
	return time.Now().UnixNano()
}

// Quiet panics, but the allow comment names the rule explicitly.
func Quiet() {
	//repolint:allow panic -- fixture: justified assertion
	panic("quiet")
}
