// Package errhygiene is a repolint fixture for the error-hygiene rules; the
// expected diagnostics (with exact line numbers) are asserted in
// internal/lintcheck/lintcheck_test.go.
package errhygiene

import (
	"errors"
	"fmt"
)

// ErrBadSentinel should be errors.New: fmt.Errorf-built sentinels invite
// formatting drift and cannot be wrapped consistently.
var ErrBadSentinel = fmt.Errorf("errhygiene: bad sentinel") // want sentinel (line 13)

// ErrGoodSentinel is the clean counterpart; no diagnostic expected.
var ErrGoodSentinel = errors.New("errhygiene: good sentinel")

// Swallow formats an error with %v, severing the errors.Is chain.
func Swallow(err error) error {
	return fmt.Errorf("swallowed: %v", err) // want errwrap (line 20)
}

// Wrap is the clean counterpart; no diagnostic expected.
func Wrap(err error) error {
	return fmt.Errorf("wrapped: %w", err)
}

// Formats reports no diagnostic: none of the arguments is an error.
func Formats(n int, s string) error {
	return fmt.Errorf("n=%d s=%q", n, s)
}
