// Package exitcode is a repolint fixture: ad-hoc exit statuses versus the
// core.Exit* contract. Exact line numbers are asserted in
// internal/lintcheck/lintcheck_test.go.
package exitcode

import (
	"log"
	"os"

	"github.com/rootevent/anycastddos/internal/core"
)

// BareExit exits with a magic number nothing documents.
func BareExit() {
	os.Exit(5) // want exitcode (line 15)
}

// Fatal hard-exits 1 and skips deferred cleanup.
func Fatal(err error) {
	log.Fatalf("boom: %v", err) // want exitcode (line 20)
}

// Contract exits through the documented constants; no diagnostic expected.
func Contract() {
	os.Exit(core.ExitFailure)
}
