// Package determinism is a repolint fixture: every function below violates
// one determinism rule. The expected diagnostics are asserted, with exact
// line numbers, in internal/lintcheck/lintcheck_test.go — keep the two in
// sync when editing.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

// WallClock leaks the wall clock into the simulation plane.
func WallClock() int64 {
	return time.Now().UnixNano() // want wallclock (line 15)
}

// GlobalRand draws from the shared global source.
func GlobalRand() int64 {
	return rand.Int63() // want globalrand (line 20)
}

// HiddenSeed constructs an RNG whose seed is not visible at the call site.
func HiddenSeed(src rand.Source) *rand.Rand {
	return rand.New(src) // want unseededrand (line 25)
}

// Keys returns map keys in iteration order: freshly randomized every run.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want maprange (line 31)
		out = append(out, k)
	}
	return out
}

// SortedKeys is the clean counterpart of Keys; no diagnostic expected.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Seeded is the clean counterpart of HiddenSeed; no diagnostic expected.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
