// Package panics is a repolint fixture for the panic-policy rule; the
// expected diagnostics (with exact line numbers) are asserted in
// internal/lintcheck/lintcheck_test.go.
package panics

import "errors"

// ErrNegative is what Checked returns instead of panicking.
var ErrNegative = errors.New("panics: negative input")

// Explode panics on a config-reachable path.
func Explode(n int) int {
	if n < 0 {
		panic("negative input") // want panic (line 14)
	}
	return n * 2
}

// Checked is the clean counterpart; no diagnostic expected.
func Checked(n int) (int, error) {
	if n < 0 {
		return 0, ErrNegative
	}
	return n * 2, nil
}
