// Package syncclose is a repolint fixture: discarded Close/Sync errors on
// writable files and module durability types. Exact line numbers are
// asserted in internal/lintcheck/lintcheck_test.go.
package syncclose

import "os"

// Store stands in for a module-defined durability type.
type Store struct{}

// Close flushes and reports the first buffered write failure.
func (*Store) Close() error { return nil }

// Discard drops a writable file's Close error on the floor.
func Discard(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want syncclose (line 20)
	_, err = f.WriteString("x")
	return err
}

// DiscardSync drops the Sync error as a bare statement.
func DiscardSync(f *os.File) {
	f.Sync() // want syncclose (line 27)
}

// DiscardStore drops a durability type's Close error.
func DiscardStore(s *Store) {
	s.Close() // want syncclose (line 32)
}

// ReadOnly closes a file opened for reading; no diagnostic expected.
func ReadOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// Checked returns the Close error; no diagnostic expected.
func Checked(f *os.File) error {
	return f.Close()
}
