// Package mapiter is a repolint fixture for the mapiter rule, which bans
// ranging over maps entirely in packages that hold pooled computation
// scratch (internal/bgpsim). The fixture is only checked with a Config that
// lists this directory in MapIterBan; expected diagnostics are asserted,
// with exact line numbers, in internal/lintcheck/lintcheck_test.go.
package mapiter

// FillScratch writes into a reused buffer in map-iteration order — the
// pooled-state leak the escape-based maprange rule cannot see, because the
// buffer is neither local nor returned.
func FillScratch(scratch []int, m map[int]int) {
	i := 0
	for _, v := range m { // want mapiter (line 13)
		scratch[i] = v
		i++
	}
}

// Lookup only indexes the map; no diagnostic expected.
func Lookup(m map[int]int, k int) int {
	return m[k]
}

// SliceRange ranges over a slice; no diagnostic expected.
func SliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// Suppressed documents a justified exception with an allow marker.
func Suppressed(m map[int]int) int {
	total := 0
	//repolint:allow mapiter -- commutative sum; order cannot escape
	for _, v := range m {
		total += v
	}
	return total
}
