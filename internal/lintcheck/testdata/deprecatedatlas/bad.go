// Package deprecatedatlas exercises the deprecatedatlas rule: the per-cell
// row accessors on atlas.Dataset are deprecated outside internal/atlas,
// where the columnar cursors replace them.
package deprecatedatlas

import "github.com/rootevent/anycastddos/internal/atlas"

// UseDeprecated touches every deprecated accessor once.
func UseDeprecated(d *atlas.Dataset) int {
	n := 0
	if obs, ok := d.At('K', 0, 0); ok && obs.Status == atlas.OK {
		n++
	}
	if obs, ok := d.RawAt('K', 0, 0); ok && obs.Status == atlas.OK {
		n++
	}
	d.EachVP(func(vp atlas.VPID) { n++ })
	return n
}

// UseCursors walks the supported path and must stay clean.
func UseCursors(d *atlas.Dataset) int {
	n := 0
	rows, err := d.Rows('K')
	if err != nil {
		return 0
	}
	for rows.Next() {
		n += len(rows.Status())
	}
	return n
}
