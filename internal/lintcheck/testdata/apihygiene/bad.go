// Package apihygiene is a repolint fixture for the API-hygiene rules; the
// expected diagnostics (with exact line numbers) are asserted in
// internal/lintcheck/lintcheck_test.go.
package apihygiene

import (
	"context"
	"sync"
)

// CtxSecond takes its context in the wrong position.
func CtxSecond(name string, ctx context.Context) error { // want ctxfirst (line 12)
	_ = name
	return ctx.Err()
}

// CtxFirst is the clean counterpart; no diagnostic expected.
func CtxFirst(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// CopyMutex copies the lock on every call.
func CopyMutex(mu sync.Mutex) { // want mutexcopy (line 24)
	mu.Lock()
	defer mu.Unlock()
}

// guarded embeds a mutex by value.
type guarded struct {
	mu    sync.Mutex
	count int
}

// CopyGuarded copies the embedded lock along with the struct.
func CopyGuarded(g guarded) int { // want mutexcopy (line 36)
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}

// UseGuarded is the clean counterpart; no diagnostic expected.
func UseGuarded(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}
