// Package goroleak is a repolint fixture: goroutines with and without a
// visible join path. Exact line numbers are asserted in
// internal/lintcheck/lintcheck_test.go.
package goroleak

import (
	"context"
	"sync"
)

// Fire launches a closure nothing can join.
func Fire() {
	go func() { // want goroleak (line 13)
		_ = work()
	}()
}

// FireNamed launches a named function with no join path either.
func FireNamed() {
	go work() // want goroleak (line 20)
}

func work() int { return 1 }

// Joined parks the result on a channel; no diagnostic expected.
func Joined() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- work()
	}()
	return out
}

// Waited joins through a WaitGroup; no diagnostic expected.
func Waited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}

// Cancelable watches a context; no diagnostic expected.
func Cancelable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

var done = make(chan struct{})

// NamedJoined launches a named function whose own body blocks on a channel —
// the evidence is one level down; no diagnostic expected.
func NamedJoined() {
	go pump()
}

func pump() {
	done <- struct{}{}
}
