// Package hotalloc is a repolint fixture: //repolint:hot functions allocating
// every way the rule knows, plus clean counterparts. Exact line numbers are
// asserted in internal/lintcheck/lintcheck_v2_test.go.
package hotalloc

// Hot is annotated allocation-free but allocates on every line.
//
//repolint:hot
func Hot(xs []int) int {
	xs = append(xs, 1)           // want hotalloc (line 10)
	buf := make([]int, 4)        // want hotalloc (line 11)
	p := new(int)                // want hotalloc (line 12)
	m := map[int]int{0: 1}       // want hotalloc (line 13)
	s := []int{2}                // want hotalloc (line 14)
	f := func() int { return 3 } // want hotalloc (line 15)
	return xs[0] + buf[0] + *p + m[0] + s[0] + f()
}

// Cold does the same with no annotation; no diagnostic expected.
func Cold(xs []int) int {
	xs = append(xs, 1)
	return xs[0]
}

// HotClean is annotated and genuinely allocation-free; no diagnostic
// expected.
//
//repolint:hot
func HotClean(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HotConvert is annotated and converts between bytes and string both ways.
// The one clean line is the rvalue map read m[string(b)], which the
// compiler performs without materializing the key; the same key written
// through does allocate and stays flagged.
//
//repolint:hot
func HotConvert(m map[string]int, b []byte, s string) int {
	k := string(b)    // want hotalloc (line 43)
	raw := []byte(s)  // want hotalloc (line 44)
	n := m[string(b)] // clean: rvalue map-read key is exempt
	m[string(b)] = n  // want hotalloc (line 46)
	return len(k) + len(raw) + n
}

// ColdConvert converts with no annotation; no diagnostic expected.
func ColdConvert(b []byte) string {
	return string(b)
}
