// Package hotalloc is a repolint fixture: a //repolint:hot function that
// allocates six different ways, and clean counterparts. Exact line numbers
// are asserted in internal/lintcheck/lintcheck_test.go.
package hotalloc

// Hot is annotated allocation-free but allocates on every line.
//
//repolint:hot
func Hot(xs []int) int {
	xs = append(xs, 1)           // want hotalloc (line 10)
	buf := make([]int, 4)        // want hotalloc (line 11)
	p := new(int)                // want hotalloc (line 12)
	m := map[int]int{0: 1}       // want hotalloc (line 13)
	s := []int{2}                // want hotalloc (line 14)
	f := func() int { return 3 } // want hotalloc (line 15)
	return xs[0] + buf[0] + *p + m[0] + s[0] + f()
}

// Cold does the same with no annotation; no diagnostic expected.
func Cold(xs []int) int {
	xs = append(xs, 1)
	return xs[0]
}

// HotClean is annotated and genuinely allocation-free; no diagnostic
// expected.
//
//repolint:hot
func HotClean(a, b int) int {
	if a > b {
		return a
	}
	return b
}
