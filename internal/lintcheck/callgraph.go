package lintcheck

// An approximate, whole-program call graph over the loaded packages, built
// from syntax plus type information only (no SSA): static calls, function-
// value references (a callback handed to sort.Slice or launched with go),
// and method calls devirtualized by type — a call through an interface
// method adds an edge to every loaded concrete implementation. Function
// literals are attributed to the declaration they appear in, so a tainted
// closure taints its defining function. The graph over-approximates (a
// referenced-but-never-called function still contributes edges) and never
// under-approximates within the loaded set, which is the right polarity for
// "nothing reachable from the engine may touch the wall clock".

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallEdge is one caller→callee edge with the position of the reference.
type CallEdge struct {
	// Callee is the target function (its Origin for generic instances).
	Callee *types.Func
	// Pos is where the reference appears in the caller's body.
	Pos token.Pos
	// Via is the interface method the call was devirtualized through, or
	// nil for a direct call or reference.
	Via *types.Func
}

// CallNode is one declared function with a body, plus its outgoing edges in
// source order (first reference wins; duplicates are collapsed).
type CallNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *LoadedPackage
	Edges []CallEdge
}

// CallGraph indexes every declared function in the loaded packages.
type CallGraph struct {
	// Nodes maps each declared function, by FuncKey, to its node. Keying by
	// name rather than object identity is deliberate: a function referenced
	// across packages resolves to an export-data object distinct from the
	// one its own package's source check produced, and the two must land on
	// the same node. Functions without a body (externally implemented,
	// interface methods) have no node and act as leaves.
	Nodes map[string]*CallNode
	// Funcs lists the nodes in deterministic order: package load order,
	// then file order, then declaration order.
	Funcs []*CallNode
}

// FuncKey is the stable cross-package identity of a function: its
// package-path-qualified full name, normalized to the generic origin.
func FuncKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// BuildCallGraph constructs the approximate call graph for pkgs.
func BuildCallGraph(pkgs []*LoadedPackage) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*CallNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[FuncKey(fn)] = node
				g.Funcs = append(g.Funcs, node)
			}
		}
	}

	devirt := newDevirtualizer(pkgs)
	for _, node := range g.Funcs {
		info := node.Pkg.Info
		seen := make(map[string]bool)
		addEdge := func(callee *types.Func, pos token.Pos, via *types.Func) {
			if callee == nil {
				return
			}
			callee = callee.Origin()
			key := FuncKey(callee)
			if seen[key] {
				return
			}
			seen[key] = true
			node.Edges = append(node.Edges, CallEdge{Callee: callee, Pos: pos, Via: via})
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if iface := ifaceMethod(fn); iface != nil {
				// Devirtualize: edge to every loaded concrete method
				// implementing this interface method.
				for _, impl := range devirt.implementations(fn) {
					addEdge(impl, id.Pos(), fn)
				}
				return true
			}
			addEdge(fn, id.Pos(), nil)
			return true
		})
	}
	return g
}

// ifaceMethod returns fn's receiver interface when fn is an interface
// method, nil otherwise.
func ifaceMethod(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// devirtualizer resolves interface methods to the concrete methods of every
// loaded named type implementing the interface.
type devirtualizer struct {
	concrete []*types.Named
	cache    map[*types.Func][]*types.Func
}

func newDevirtualizer(pkgs []*LoadedPackage) *devirtualizer {
	d := &devirtualizer{cache: make(map[*types.Func][]*types.Func)}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
				continue
			}
			d.concrete = append(d.concrete, named)
		}
	}
	return d
}

// implementations returns the concrete methods satisfying interface method
// m among the loaded named types, in the deterministic type-collection
// order.
func (d *devirtualizer) implementations(m *types.Func) []*types.Func {
	if got, ok := d.cache[m]; ok {
		return got
	}
	iface := ifaceMethod(m)
	var out []*types.Func
	if iface != nil {
		for _, named := range d.concrete {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			// The pointer method set contains both value- and
			// pointer-receiver methods.
			sel := types.NewMethodSet(ptr).Lookup(m.Pkg(), m.Name())
			if sel == nil {
				continue
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				out = append(out, fn.Origin())
			}
		}
	}
	d.cache[m] = out
	return out
}
