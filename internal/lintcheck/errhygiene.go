package lintcheck

import (
	"go/ast"
	"go/constant"
	"strings"
)

// ErrHygieneAnalyzer enforces error-wrapping conventions: fmt.Errorf must
// wrap error arguments with %w, and package-level sentinel errors must be
// errors.New values.
func ErrHygieneAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errhygiene",
		Doc:  "require %w when fmt.Errorf wraps an error; sentinels must be errors.New",
		Run:  runErrHygiene,
	}
}

func runErrHygiene(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Sentinel rule: package-level var initialized from fmt.Errorf.
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					call, ok := ast.Unparen(val).(*ast.CallExpr)
					if !ok {
						continue
					}
					if isPkgFunc(calleeFunc(info, call), "fmt", "Errorf") {
						pass.Reportf("sentinel", call.Pos(),
							"package-level sentinel errors must use errors.New; fmt.Errorf hides the identity behind formatting")
					}
				}
			}
		}

		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isPkgFunc(calleeFunc(info, call), "fmt", "Errorf") {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(pass, call.Args[0])
			if !ok {
				return true // dynamic format string: nothing to check against
			}
			wraps := strings.Contains(format, "%w")
			if wraps {
				return true
			}
			for _, arg := range call.Args[1:] {
				tv, ok := info.Types[arg]
				if !ok {
					continue
				}
				if isErrorType(tv.Type) {
					pass.Reportf("errwrap", call.Pos(),
						"fmt.Errorf formats an error argument without %%w; errors.Is/As cannot see through it")
					break
				}
			}
			return true
		})
	}
}

// constantString evaluates expr to a compile-time string if possible.
func constantString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
