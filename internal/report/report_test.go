package report

import (
	"strings"
	"testing"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/stats"
)

func mkSeries(name string, vals ...float64) *stats.Series {
	s := stats.NewSeries(name, 0, 10, len(vals))
	copy(s.Values, vals)
	return s
}

func TestWriteTableAlignment(t *testing.T) {
	var sb strings.Builder
	err := WriteTable(&sb, []string{"a", "bbbb"}, [][]string{{"xxxx", "y"}, {"z", "w"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: "xxxx" sets width 4 for col a.
	if !strings.HasPrefix(lines[3], "z     ") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var sb strings.Builder
	a := mkSeries("a", 1, 2, 3)
	b := mkSeries("b", 4, 5, 6)
	if err := WriteSeriesCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "minute,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,4" || lines[3] != "20,3,6" {
		t.Errorf("rows = %v", lines[1:])
	}
	// Geometry mismatch rejected.
	c := stats.NewSeries("c", 5, 10, 3)
	if err := WriteSeriesCSV(&sb, a, c); err == nil {
		t.Error("mismatched geometry accepted")
	}
	if err := WriteSeriesCSV(&sb); err == nil {
		t.Error("empty series list accepted")
	}
}

func TestSparkline(t *testing.T) {
	s := mkSeries("x", 0, 1, 2, 3, 4, 5, 6, 7)
	sp := Sparkline(s, 8)
	if len([]rune(sp)) != 8 {
		t.Fatalf("width = %d", len([]rune(sp)))
	}
	runes := []rune(sp)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("sparkline = %q", sp)
	}
	// Flat series renders at the low level without dividing by zero.
	flat := Sparkline(mkSeries("f", 5, 5, 5), 3)
	if flat != "▁▁▁" {
		t.Errorf("flat = %q", flat)
	}
	// Downsampling works.
	wide := Sparkline(s, 4)
	if len([]rune(wide)) != 4 {
		t.Errorf("downsampled width = %d", len([]rune(wide)))
	}
	if Sparkline(mkSeries("e"), 5) != "" {
		t.Error("empty series should render empty")
	}
}

func TestWriteLetterSeries(t *testing.T) {
	var sb strings.Builder
	err := WriteLetterSeries(&sb, "Figure 3", map[byte]*stats.Series{
		'K': mkSeries("k", 1, 2, 3),
		'B': mkSeries("b", 3, 2, 1),
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	bIdx := strings.Index(out, "B")
	kIdx := strings.Index(out, "K")
	if bIdx < 0 || kIdx < 0 || bIdx > kIdx {
		t.Errorf("letters not sorted: %q", out)
	}
	if !strings.Contains(out, "med=2") {
		t.Errorf("missing median: %q", out)
	}
}

func TestWriteTable2And3(t *testing.T) {
	var sb strings.Builder
	rows := []analysis.Table2Row{
		{Letter: 'B', Operator: "USC/ISI", SitesReported: 1, Unicast: true, SitesObserved: 1},
		{Letter: 'K', Operator: "RIPE", SitesReported: 30, GlobalReported: 13, LocalReported: 17, SitesObserved: 25},
	}
	if err := WriteTable2(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(unicast)") || !strings.Contains(out, "(13, 17)") {
		t.Errorf("table2 = %q", out)
	}

	sb.Reset()
	res := &analysis.Table3Result{
		Rows: []analysis.Table3Row{
			{Letter: 'A', DeltaQueryMqs: 2.5, DeltaQueryGbs: 1.4, UniqueIPsM: 1800, UniqueRatio: 340, DeltaRespMqs: 1.1, DeltaRespGbs: 4.4, BaselineMqs: 0.04},
			{Letter: 'L', Excluded: true},
		},
	}
	res.Bounds.LowerQueryMqs = 2.5
	res.Bounds.UpperQueryMqs = 25
	if err := WriteTable3(&sb, res); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "L*") || !strings.Contains(out, "upper") {
		t.Errorf("table3 = %q", out)
	}
}

func TestWriteFigure5And6(t *testing.T) {
	var sb strings.Builder
	rows := []analysis.Figure5Row{
		{Site: "K-AMS", MedianVPs: 100, MinNorm: 0.8, MaxNorm: 1.4},
		{Site: "K-DOH", MedianVPs: 5, MinNorm: 0, MaxNorm: 3, BelowThreshold: true},
	}
	if err := WriteFigure5(&sb, 'K', rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<20 VPs") {
		t.Error("unstable flag missing")
	}
	sb.Reset()
	minis := []analysis.Figure6Site{
		{Site: "K-AMS", MedianVPs: 100, Norm: mkSeries("n", 1, 1, 0.2), CriticalBins: []int{2}},
	}
	if err := WriteFigure6(&sb, 'K', minis, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CRITICAL x1") {
		t.Errorf("figure6 = %q", sb.String())
	}
}

func TestWriteFlipFlowsAndRaster(t *testing.T) {
	var sb strings.Builder
	flows := []analysis.FlipFlow{
		{FromSite: "K-LHR", Movers: 10, Returned: 0.7, Dest: map[string]float64{"K-AMS": 0.8, "K-FRA": 0.2}},
	}
	if err := WriteFlipFlows(&sb, flows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	amsIdx := strings.Index(out, "K-AMS")
	fraIdx := strings.Index(out, "K-FRA")
	if amsIdx < 0 || fraIdx < 0 || amsIdx > fraIdx {
		t.Errorf("destinations not sorted by share: %q", out)
	}
	sb.Reset()
	rows := []analysis.RasterRow{{VP: 3, Cells: []byte("LLAA..LL")}}
	if err := WriteRaster(&sb, rows, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vp3") {
		t.Errorf("raster = %q", sb.String())
	}
}

func TestWriteServerSeriesAndCorrelation(t *testing.T) {
	var sb strings.Builder
	series := []analysis.ServerSeries{
		{Site: "K-FRA", Server: 1, Success: mkSeries("s", 1, 2), RTT: mkSeries("r", 30, 40)},
	}
	if err := WriteServerSeries(&sb, series, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "K-FRA-S1") {
		t.Errorf("server series = %q", sb.String())
	}
	sb.Reset()
	res := &analysis.SiteCorrelationResult{
		Fit:     stats.LinearFit{R2: 0.87, Slope: 0.004, N: 12},
		Letters: []byte{'B', 'K'},
		Sites:   []float64{1, 30},
		WorstOK: []float64{0.05, 0.8},
	}
	if err := WriteCorrelation(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "R^2 = 0.87") {
		t.Errorf("correlation = %q", sb.String())
	}
}
