// Package report renders analysis results as aligned text tables, CSV
// series (one row per 10-minute bin, ready for any plotting tool), and
// compact ASCII time-series charts for terminal inspection.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/stats"
)

// WriteTable renders rows with aligned columns.
func WriteTable(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV writes one or more aligned series as CSV: a minute column
// followed by one column per series. All series must share bin geometry.
func WriteSeriesCSV(w io.Writer, series ...*stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	first := series[0]
	for _, s := range series[1:] {
		if s.StartMinute != first.StartMinute || s.BinMinutes != first.BinMinutes || s.Bins() != first.Bins() {
			return fmt.Errorf("report: series %q has mismatched geometry", s.Name)
		}
	}
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, "minute")
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for b := 0; b < first.Bins(); b++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%d", first.MinuteFor(b)))
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.4g", s.Values[b]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a fixed-width unicode strip, downsampling
// by bin-mean. Empty series render as "".
func Sparkline(s *stats.Series, width int) string {
	if s.Bins() == 0 || width <= 0 {
		return ""
	}
	if width > s.Bins() {
		width = s.Bins()
	}
	vals := make([]float64, width)
	per := float64(s.Bins()) / float64(width)
	for i := 0; i < width; i++ {
		lo := int(float64(i) * per)
		hi := int(float64(i+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > s.Bins() {
			hi = s.Bins()
		}
		vals[i] = stats.Mean(s.Values[lo:hi])
	}
	min, max, err := stats.MinMax(vals)
	if err != nil {
		return ""
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkLevels)-1))
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// WriteLetterSeries renders a map of per-letter series as labelled
// sparklines with min/median/max annotations (the terminal counterpart of
// Figures 3, 4, 8, 9).
func WriteLetterSeries(w io.Writer, title string, series map[byte]*stats.Series, width int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	letters := make([]byte, 0, len(series))
	for l := range series {
		letters = append(letters, l)
	}
	sort.Slice(letters, func(i, j int) bool { return letters[i] < letters[j] })
	for _, l := range letters {
		s := series[l]
		min, _, _ := s.Min()
		max, _, _ := s.Max()
		if _, err := fmt.Fprintf(w, "  %c  %s  min=%.4g med=%.4g max=%.4g\n",
			l, Sparkline(s, width), min, s.Median(), max); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows []analysis.Table2Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		arch := fmt.Sprintf("(%d, %d)", r.GlobalReported, r.LocalReported)
		if r.Unicast {
			arch = "(unicast)"
		}
		if r.PrimaryBackup {
			arch = "(pri/back)"
		}
		out = append(out, []string{
			string(r.Letter), r.Operator,
			fmt.Sprintf("%d %s", r.SitesReported, arch),
			fmt.Sprintf("%d", r.SitesObserved),
		})
	}
	return WriteTable(w, []string{"letter", "operator", "sites reported", "sites observed"}, out)
}

// WriteTable3 renders one event's Table 3.
func WriteTable3(w io.Writer, res *analysis.Table3Result) error {
	if _, err := fmt.Fprintf(w, "Event %s (%d min), qname %s\n",
		res.Event.Name, res.Event.Duration(), res.Event.QName); err != nil {
		return err
	}
	rows := make([][]string, 0, len(res.Rows)+3)
	for _, r := range res.Rows {
		mark := ""
		if r.Excluded {
			mark = "*"
		}
		rows = append(rows, []string{
			string(r.Letter) + mark,
			fmt.Sprintf("%.2f", r.DeltaQueryMqs),
			fmt.Sprintf("%.2f", r.DeltaQueryGbs),
			fmt.Sprintf("%.1f (%.0fx)", r.UniqueIPsM, r.UniqueRatio),
			fmt.Sprintf("%.2f", r.DeltaRespMqs),
			fmt.Sprintf("%.2f", r.DeltaRespGbs),
			fmt.Sprintf("%.3f", r.BaselineMqs),
		})
	}
	b := res.Bounds
	rows = append(rows,
		[]string{"lower", f2(b.LowerQueryMqs), f2(b.LowerQueryGbs), "-", f2(b.LowerRespMqs), f2(b.LowerRespGbs), "-"},
		[]string{"(scaled)", f2(b.ScaledQueryMqs), f2(b.ScaledQueryGbs), "-", f2(b.ScaledRespMqs), f2(b.ScaledRespGbs), "-"},
		[]string{"upper", f2(b.UpperQueryMqs), f2(b.UpperQueryGbs), "-", f2(b.UpperRespMqs), f2(b.UpperRespGbs), "-"},
	)
	err := WriteTable(w, []string{"letter", "dQ Mq/s", "dQ Gb/s", "M IPs (ratio)", "dR Mq/s", "dR Gb/s", "base Mq/s"}, rows)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "* not attacked; excluded from bounds")
	return err
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// WriteFigure5 renders the per-site min/max table of Figure 5.
func WriteFigure5(w io.Writer, letter byte, rows []analysis.Figure5Row) error {
	if _, err := fmt.Fprintf(w, "Figure 5: %c-Root site catchment swings (normalized to median)\n", letter); err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		flag := ""
		if r.BelowThreshold {
			flag = "  <20 VPs (unstable)"
		}
		out = append(out, []string{
			r.Site,
			fmt.Sprintf("%.0f", r.MedianVPs),
			fmt.Sprintf("%.2f", r.MinNorm),
			fmt.Sprintf("%.2f", r.MaxNorm),
			flag,
		})
	}
	return WriteTable(w, []string{"site", "median VPs", "min/med", "max/med", ""}, out)
}

// WriteFigure6 renders the per-site mini-plots of Figure 6 as sparklines.
func WriteFigure6(w io.Writer, letter byte, minis []analysis.Figure6Site, width int) error {
	if _, err := fmt.Fprintf(w, "Figure 6: %c-Root per-site catchments (VPs / median)\n", letter); err != nil {
		return err
	}
	for _, m := range minis {
		crit := ""
		if len(m.CriticalBins) > 0 {
			crit = fmt.Sprintf("  CRITICAL x%d", len(m.CriticalBins))
		}
		if _, err := fmt.Fprintf(w, "  %-8s (%4.0f)  %s%s\n", m.Site, m.MedianVPs, Sparkline(m.Norm, width), crit); err != nil {
			return err
		}
	}
	return nil
}

// WriteFlipFlows renders Figure 10's flow breakdown.
func WriteFlipFlows(w io.Writer, flows []analysis.FlipFlow) error {
	for _, f := range flows {
		if _, err := fmt.Fprintf(w, "From %s: %d movers, %.0f%% return after event\n",
			f.FromSite, f.Movers, f.Returned*100); err != nil {
			return err
		}
		dests := make([]string, 0, len(f.Dest))
		for d := range f.Dest {
			dests = append(dests, d)
		}
		sort.Slice(dests, func(i, j int) bool { return f.Dest[dests[i]] > f.Dest[dests[j]] })
		for _, d := range dests {
			if _, err := fmt.Fprintf(w, "  -> %-8s %5.1f%%\n", d, f.Dest[d]*100); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteRaster renders Figure 11's VP raster, downsampling columns to
// maxWidth.
func WriteRaster(w io.Writer, rows []analysis.RasterRow, maxWidth int) error {
	if _, err := fmt.Fprintln(w, "Figure 11 raster: L=home1 F=home2 A=overflow o=other .=fail"); err != nil {
		return err
	}
	for _, r := range rows {
		cells := r.Cells
		if maxWidth > 0 && len(cells) > maxWidth {
			sampled := make([]byte, maxWidth)
			for i := 0; i < maxWidth; i++ {
				sampled[i] = cells[i*len(cells)/maxWidth]
			}
			cells = sampled
		}
		if _, err := fmt.Fprintf(w, "  vp%-6d %s\n", r.VP, cells); err != nil {
			return err
		}
	}
	return nil
}

// WriteServerSeries renders Figures 12/13 as per-server sparklines.
func WriteServerSeries(w io.Writer, series []analysis.ServerSeries, width int) error {
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "  %s-S%d  ok: %s  rtt: %s\n",
			s.Site, s.Server, Sparkline(s.Success, width), Sparkline(s.RTT, width)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCorrelation renders the §3.2.1 correlation summary.
func WriteCorrelation(w io.Writer, res *analysis.SiteCorrelationResult) error {
	if _, err := fmt.Fprintf(w, "Sites vs worst reachability: R^2 = %.2f, slope = %.4f (n=%d)\n",
		res.Fit.R2, res.Fit.Slope, res.Fit.N); err != nil {
		return err
	}
	if res.FitAttacked.N > 0 {
		if _, err := fmt.Fprintf(w, "Attacked letters only:       R^2 = %.2f, slope = %.4f (n=%d)\n",
			res.FitAttacked.R2, res.FitAttacked.Slope, res.FitAttacked.N); err != nil {
			return err
		}
	}
	rows := make([][]string, 0, len(res.Letters))
	for i, l := range res.Letters {
		rows = append(rows, []string{
			string(l),
			fmt.Sprintf("%.0f", res.Sites[i]),
			fmt.Sprintf("%.2f", res.WorstOK[i]),
		})
	}
	return WriteTable(w, []string{"letter", "sites", "worst ok frac"}, rows)
}
