// Package defense implements and evaluates automated anycast defense
// policies — the future work the paper proposes in §2.2 and §5: "more
// careful, explicit, and automated management of policies may provide
// stronger defenses to overload".
//
// A Controller observes per-site load each minute and decides which sites
// keep announcing. The package provides the two baseline policies the
// paper observes in the wild (static absorb, threshold withdraw) and an
// adaptive feedback controller that hill-climbs on served legitimate
// traffic. Evaluate runs a controller against a routed attack scenario and
// scores it on the paper's "happiness" currency: the fraction of
// legitimate queries served.
package defense

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/topo"
)

// FaultLetter is the letter key defense scenarios use when compiling
// fault plans: scenarios have no root letter of their own, so plan
// events must target FaultLetter (or faults.AnyLetter) with the
// scenario's site indices.
const FaultLetter byte = '*'

// SiteObs is what a controller may observe about one site for one minute —
// exactly the operator-visible signals the paper lists in §2.2 (offered
// load is visible; attacker locations and other sites' catchments are not).
type SiteObs struct {
	Announced   bool
	CapacityQPS float64
	// OfferedQPS and ServedQPS are zero while withdrawn (no traffic
	// arrives to measure).
	OfferedQPS float64
	ServedQPS  float64
}

// Controller decides, once per minute, which sites announce.
type Controller interface {
	Name() string
	// Decide returns the desired announcement state per site. The
	// returned slice must have len(sites) entries.
	Decide(minute int, sites []SiteObs) []bool
}

// Scenario is a self-contained anycast deployment under attack.
type Scenario struct {
	Graph    *topo.Graph
	Origins  []bgpsim.Origin // one per site (single uplink each)
	Capacity []float64       // per site
	// LegitPerAS and AttackPerAS are offered rates by source AS; attack
	// rates apply only inside the event window.
	LegitPerAS  map[topo.ASN]float64
	AttackPerAS map[topo.ASN]float64
	Minutes     int
	EventStart  int
	EventEnd    int
	Netsim      netsim.Config
	// Faults optionally injects deterministic failures (site outages,
	// link flaps, capacity degrades, loss bursts) on top of the attack.
	// Events target FaultLetter; site indices are scenario site indices.
	Faults *faults.Plan
}

// Validate checks scenario invariants.
func (sc *Scenario) Validate() error {
	if sc.Graph == nil || len(sc.Origins) == 0 {
		return fmt.Errorf("defense: scenario missing graph or origins")
	}
	if len(sc.Capacity) != len(sc.Origins) {
		return fmt.Errorf("defense: %d capacities for %d origins", len(sc.Capacity), len(sc.Origins))
	}
	for i, c := range sc.Capacity {
		if c <= 0 {
			return fmt.Errorf("defense: site %d capacity %v", i, c)
		}
	}
	if sc.Minutes <= 0 || sc.EventStart < 0 || sc.EventEnd > sc.Minutes || sc.EventStart >= sc.EventEnd {
		return fmt.Errorf("defense: bad time window")
	}
	return nil
}

// Outcome scores one controller run.
type Outcome struct {
	Controller string
	// ServedLegitFrac is served legitimate traffic / offered legitimate
	// traffic over the event window (the continuous analog of §2.2's H).
	ServedLegitFrac float64
	// WorstMinuteFrac is the worst single-minute served fraction.
	WorstMinuteFrac float64
	// RouteChanges counts announcement flips (BGP churn cost),
	// controller-driven and fault-driven alike.
	RouteChanges int
	// UnservedASMinutes counts (AS, minute) pairs with no route at all.
	UnservedASMinutes int
	// FinalAnnounced is the effective per-site announcement state after
	// the last minute, faults included — lets tests assert that sites
	// return once a fault window clears.
	FinalAnnounced []bool
}

// Evaluate runs the controller through the scenario.
//
// The controller steers intent; injected faults mask it. The effective
// announcement of a site is "controller wants it up AND no fault forces
// it down", so a site withdrawn by a fault returns automatically when
// the fault clears (if the controller still wants it).
func Evaluate(sc *Scenario, ctrl Controller) (*Outcome, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	n := len(sc.Origins)
	var flt *faults.Compiled
	if sc.Faults != nil {
		c, err := faults.Compile(sc.Faults, faults.Shape{
			Minutes: sc.Minutes,
			Sites:   map[byte]int{FaultLetter: n},
		})
		if err != nil {
			return nil, fmt.Errorf("defense: fault plan: %w", err)
		}
		flt = c
	}
	forcedDown := func(i, minute int) bool {
		return flt != nil && flt.SiteForcedDown(FaultLetter, i, 0, 1, minute)
	}

	intent := make([]bool, n)
	for i := range intent {
		intent[i] = true
	}
	announced := make([]bool, n)
	out := &Outcome{Controller: ctrl.Name()}
	// refresh recomputes the effective announcements for a minute and
	// counts the flips; flips from fault windows and from controller
	// decisions are both BGP churn.
	refresh := func(minute int, countChanges bool) bool {
		changed := false
		for i := range intent {
			eff := intent[i] && !forcedDown(i, minute)
			if eff != announced[i] {
				announced[i] = eff
				changed = true
				if countChanges {
					out.RouteChanges++
				}
			}
		}
		return changed
	}
	refresh(0, false) // initial state is not churn
	table := bgpsim.Compute(sc.Graph, sc.Origins, announced)

	var servedSum, offeredSum float64
	worst := 1.0

	for minute := 0; minute < sc.Minutes; minute++ {
		// Fault windows opening or closing at this minute change routing
		// before any traffic is served.
		if refresh(minute, true) {
			table = bgpsim.Compute(sc.Graph, sc.Origins, announced)
		}
		inEvent := minute >= sc.EventStart && minute < sc.EventEnd
		// Per-site loads under current routing.
		legit := make([]float64, n)
		attackLoad := make([]float64, n)
		var unrouted float64
		for asn, rate := range sc.LegitPerAS {
			if site := table.SiteOf(asn); site >= 0 {
				legit[site] += rate
			} else {
				unrouted += rate
				out.UnservedASMinutes++
			}
		}
		if inEvent {
			for asn, rate := range sc.AttackPerAS {
				if site := table.SiteOf(asn); site >= 0 {
					attackLoad[site] += rate
				}
			}
		}
		obs := make([]SiteObs, n)
		var servedLegit, offeredLegit float64
		offeredLegit = unrouted // unrouted legit counts as offered, unserved
		for i := 0; i < n; i++ {
			obs[i].Announced = announced[i]
			obs[i].CapacityQPS = sc.Capacity[i]
			if !announced[i] {
				continue
			}
			capQPS := sc.Capacity[i]
			if flt != nil {
				capQPS *= flt.CapacityFactor(FaultLetter, i, minute)
			}
			st, err := netsim.Evaluate(capQPS, netsim.Load{LegitQPS: legit[i], AttackQPS: attackLoad[i]}, sc.Netsim)
			if err != nil {
				return nil, fmt.Errorf("defense: site %d at minute %d: %w", i, minute, err)
			}
			if flt != nil {
				if xl := flt.ExtraLossFrac(FaultLetter, i, minute); xl > 0 {
					st.LossFrac = 1 - (1-st.LossFrac)*(1-xl)
					st.ServedQPS = st.OfferedQPS * (1 - st.LossFrac)
				}
			}
			obs[i].OfferedQPS = st.OfferedQPS
			obs[i].ServedQPS = st.ServedQPS
			frac := 1.0
			if st.OfferedQPS > 0 {
				frac = st.ServedQPS / st.OfferedQPS
			}
			servedLegit += legit[i] * frac
			offeredLegit += legit[i]
		}
		if offeredLegit > 0 {
			frac := servedLegit / offeredLegit
			servedSum += servedLegit
			offeredSum += offeredLegit
			if inEvent && frac < worst {
				worst = frac
			}
		}

		// Controller acts on this minute's observations.
		want := ctrl.Decide(minute, obs)
		if len(want) != n {
			return nil, fmt.Errorf("defense: controller %q returned %d decisions for %d sites", ctrl.Name(), len(want), n)
		}
		anyUp := false
		for i := range want {
			if want[i] {
				anyUp = true
			}
		}
		if !anyUp {
			// Never allow a controller to withdraw the whole service.
			want[0] = true
		}
		copy(intent, want)
		// The controller's new intent (and any fault window boundary at
		// minute+1) takes effect before the next minute's traffic.
		if refresh(minute+1, true) {
			table = bgpsim.Compute(sc.Graph, sc.Origins, announced)
		}
	}
	if offeredSum > 0 {
		out.ServedLegitFrac = servedSum / offeredSum
	}
	out.WorstMinuteFrac = worst
	out.FinalAnnounced = append([]bool(nil), announced...)
	return out, nil
}
