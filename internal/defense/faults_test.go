package defense

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/topo"
)

func TestWithdrawReannouncesAfterLinkFlap(t *testing.T) {
	sc := caseScenario(t, 0)
	sc.Faults = &faults.Plan{
		Name: "flap-site-1",
		Events: []faults.Event{
			{Kind: faults.LinkFlap, Start: 30, Duration: 30, Letter: FaultLetter, Site: 1},
		},
	}
	out, err := Evaluate(sc, &ThresholdWithdraw{Trigger: 2, Hold: 3, Cooldown: 30})
	if err != nil {
		t.Fatal(err)
	}
	// The flap must register as churn (down at 30, back at 60)...
	if out.RouteChanges < 2 {
		t.Errorf("route changes = %d, want >= 2 (flap down + up)", out.RouteChanges)
	}
	// ...and the controller must not adopt the fault as its own withdrawal:
	// once the flap clears the site has to come back.
	for i, up := range out.FinalAnnounced {
		if !up {
			t.Errorf("site %d still withdrawn after fault window cleared", i)
		}
	}
}

func TestEvaluateRejectsBadFaultPlan(t *testing.T) {
	sc := caseScenario(t, 0)
	sc.Faults = &faults.Plan{Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: 10, Duration: 0, Letter: FaultLetter, Site: 0},
	}}
	_, err := Evaluate(sc, StaticAbsorb{})
	if !errors.Is(err, faults.ErrBadPlan) {
		t.Fatalf("err = %v, want ErrBadPlan", err)
	}
}

// outageScenario is a flat five-site deployment with ~400 kq/s of
// legitimate load against 5 x 150 kq/s of capacity and k of the sites
// forced out for the [20, 100) window.
func outageScenario(t *testing.T, k int) *Scenario {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 500, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := make([]bgpsim.Origin, 5)
	capacity := make([]float64, 5)
	for i := range origins {
		origins[i] = bgpsim.Origin{Site: i, Host: stubs[20+i*100]}
		capacity[i] = 150_000
	}
	legit := map[topo.ASN]float64{}
	rng := rand.New(rand.NewSource(3))
	for _, asn := range stubs {
		legit[asn] = 700 + rng.Float64()*200
	}
	plan := &faults.Plan{Name: fmt.Sprintf("outages-%d", k)}
	for i := 0; i < k; i++ {
		plan.Events = append(plan.Events, faults.Event{
			Kind: faults.SiteOutage, Start: 20, Duration: 80,
			Letter: FaultLetter, Site: i, Severity: 1,
		})
	}
	return &Scenario{
		Graph: g, Origins: origins, Capacity: capacity,
		LegitPerAS: legit, AttackPerAS: map[topo.ASN]float64{},
		Minutes: 120, EventStart: 20, EventEnd: 100,
		Netsim: netsim.DefaultConfig(),
		Faults: plan,
	}
}

// TestAdaptiveDegradesGracefullyUnderOutages checks the robustness claim
// the fault subsystem exists to test: as more sites are knocked out, the
// adaptive controller's served fraction must degrade monotonically (the
// waterbed absorbs what it can), not collapse.
func TestAdaptiveDegradesGracefullyUnderOutages(t *testing.T) {
	var fracs [4]float64
	for k := 0; k <= 3; k++ {
		out, err := Evaluate(outageScenario(t, k), &Adaptive{Interval: 5, MinGain: 0.02})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		fracs[k] = out.ServedLegitFrac
		t.Logf("k=%d outages: served %.3f (worst minute %.3f, %d route changes)",
			k, out.ServedLegitFrac, out.WorstMinuteFrac, out.RouteChanges)
	}
	for k := 0; k < 3; k++ {
		if fracs[k+1] > fracs[k]+0.02 {
			t.Errorf("served fraction rose with more outages: k=%d %.3f -> k=%d %.3f",
				k, fracs[k], k+1, fracs[k+1])
		}
	}
	if fracs[3] >= fracs[0] {
		t.Errorf("three outages should cost service: %.3f >= %.3f", fracs[3], fracs[0])
	}
	if fracs[3] < 0.3 {
		t.Errorf("degradation not graceful: served %.3f with 2/5 sites left", fracs[3])
	}
}
