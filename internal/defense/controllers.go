package defense

// The three policies: the two the paper observes in the wild and the
// automated feedback controller it proposes as future work.

// StaticAbsorb keeps every site announced regardless of load — the paper's
// "good default policy" when attack size and location are unknown (§2.2).
type StaticAbsorb struct{}

// Name implements Controller.
func (StaticAbsorb) Name() string { return "static-absorb" }

// Decide implements Controller.
func (StaticAbsorb) Decide(minute int, sites []SiteObs) []bool {
	out := make([]bool, len(sites))
	for i := range out {
		out[i] = true
	}
	return out
}

// ThresholdWithdraw withdraws a site after Hold consecutive minutes above
// Trigger utilization and re-announces after Cooldown — the emergent
// behaviour of the withdraw-policy sites in §3.3.
type ThresholdWithdraw struct {
	Trigger  float64
	Hold     int
	Cooldown int

	over []int
	down []int
}

// Name implements Controller.
func (c *ThresholdWithdraw) Name() string { return "threshold-withdraw" }

// Decide implements Controller.
func (c *ThresholdWithdraw) Decide(minute int, sites []SiteObs) []bool {
	if c.over == nil {
		c.over = make([]int, len(sites))
		c.down = make([]int, len(sites))
		for i := range c.down {
			c.down[i] = -1
		}
	}
	out := make([]bool, len(sites))
	for i, s := range sites {
		if !s.Announced {
			if c.down[i] < 0 {
				// The site is down but not by our hand (an injected fault
				// withdrew it). Keep wanting it up so it returns the moment
				// the fault clears.
				out[i] = true
				continue
			}
			if minute-c.down[i] >= c.Cooldown {
				out[i] = true
				c.down[i] = -1
				c.over[i] = 0
			}
			continue
		}
		out[i] = true
		util := 0.0
		if s.CapacityQPS > 0 {
			util = s.OfferedQPS / s.CapacityQPS
		}
		if util >= c.Trigger {
			c.over[i]++
			if c.over[i] >= c.Hold {
				out[i] = false
				c.down[i] = minute
			}
		} else {
			c.over[i] = 0
		}
	}
	return out
}

// Adaptive is the automated policy manager the paper sketches: it watches
// the service-wide served fraction and hill-climbs one announcement change
// at a time, keeping a change only when feedback shows improvement. It
// needs none of the information operators lack (attack volume or origin) —
// only its own sites' offered/served counters. Healing probes (re-announcing
// a withdrawn site) back off exponentially while the attack persists, so
// the controller does not oscillate mid-event.
type Adaptive struct {
	// Interval is how often (minutes) the controller considers a move.
	Interval int
	// MinGain is the served-fraction improvement required to keep a
	// trial withdrawal.
	MinGain float64

	state        []bool
	trialSites   []int // sites on trial (empty = no trial)
	trialHeal    bool
	trialStarted int
	baselineFrac float64
	lastDecision int
	healWait     int
	lastHeal     int
}

// Name implements Controller.
func (c *Adaptive) Name() string { return "adaptive-feedback" }

func servedFrac(sites []SiteObs) float64 {
	var served, offered float64
	for _, s := range sites {
		served += s.ServedQPS
		offered += s.OfferedQPS
	}
	if offered == 0 {
		return 1
	}
	return served / offered
}

// mostOverloaded returns the announced site with the highest utilization
// above 1, or -1.
func mostOverloaded(sites []SiteObs, exclude []bool) int {
	best, bestUtil := -1, 1.0
	for i, s := range sites {
		if !s.Announced || exclude[i] || s.CapacityQPS <= 0 {
			continue
		}
		util := s.OfferedQPS / s.CapacityQPS
		if util > bestUtil {
			best, bestUtil = i, util
		}
	}
	return best
}

// Decide implements Controller.
func (c *Adaptive) Decide(minute int, sites []SiteObs) []bool {
	if c.Interval < 1 {
		c.Interval = 5
	}
	if c.state == nil {
		c.state = make([]bool, len(sites))
		for i := range c.state {
			c.state[i] = true
		}
		c.healWait = 8 * c.Interval
		c.lastHeal = -(1 << 20)
	}
	frac := servedFrac(sites)

	switch {
	case len(c.trialSites) > 0 && minute-c.trialStarted >= c.Interval:
		// Judge the pending trial.
		if c.trialHeal {
			// A heal succeeds when service stays healthy with the site
			// back up; otherwise re-withdraw and back off.
			if frac >= c.baselineFrac-c.MinGain {
				c.healWait = 8 * c.Interval
			} else {
				for _, site := range c.trialSites {
					c.state[site] = false
				}
				if c.healWait < 1440 {
					c.healWait *= 2
				}
			}
		} else if frac < c.baselineFrac+c.MinGain {
			// The withdrawals did not help yet. If the shed load merely
			// moved onto other sites and overloaded them (the waterbed),
			// grow the trial set and keep going; revert only when there
			// is nothing left to shed.
			announcedCount := 0
			for _, up := range c.state {
				if up {
					announcedCount++
				}
			}
			grown := false
			for i, s := range sites {
				if announcedCount <= 1 {
					break
				}
				if !s.Announced || s.CapacityQPS <= 0 {
					continue
				}
				if s.OfferedQPS/s.CapacityQPS >= 1.5 {
					c.trialSites = append(c.trialSites, i)
					c.state[i] = false
					announcedCount--
					grown = true
				}
			}
			if grown {
				c.trialStarted = minute
				c.lastDecision = minute
				break
			}
			for _, site := range c.trialSites {
				c.state[site] = true
			}
		}
		c.trialSites = c.trialSites[:0]
		c.lastDecision = minute
	case len(c.trialSites) == 0 && minute-c.lastDecision >= c.Interval && frac < 0.999:
		// Service is degraded: trial-withdraw the overloaded sites as a
		// set (their catchments may be better served elsewhere — §2.2
		// cases 2-4; withdrawing only one site merely shifts the flood
		// onto the next small site). Keep at least one site announced.
		announcedCount := 0
		for _, up := range c.state {
			if up {
				announcedCount++
			}
		}
		const trialTrigger = 1.5
		for i, s := range sites {
			if announcedCount <= 1 {
				break
			}
			if !s.Announced || s.CapacityQPS <= 0 {
				continue
			}
			if s.OfferedQPS/s.CapacityQPS >= trialTrigger {
				if len(c.trialSites) == 0 {
					c.baselineFrac = frac
					c.trialHeal = false
					c.trialStarted = minute
				}
				c.trialSites = append(c.trialSites, i)
				c.state[i] = false
				announcedCount--
			}
		}
		c.lastDecision = minute
	case frac >= 0.999 && len(c.trialSites) == 0 && minute-c.lastHeal >= c.healWait:
		// Service is healthy: probe re-announcing one withdrawn site so
		// the deployment heals after the attack ends. Failed heals back
		// off exponentially, so mid-event probing stays cheap.
		for i, up := range c.state {
			if !up {
				c.baselineFrac = frac
				c.trialSites = append(c.trialSites, i)
				c.trialHeal = true
				c.trialStarted = minute
				c.state[i] = true
				break
			}
		}
		c.lastHeal = minute
		c.lastDecision = minute
	}
	out := make([]bool, len(c.state))
	copy(out, c.state)
	return out
}
