package defense

import (
	"math/rand"
	"testing"

	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/topo"
)

// caseScenario builds the §2.2 thought experiment on a real routed graph:
// two small sites and one big site, with the attack pinned into the small
// sites' catchments.
func caseScenario(t *testing.T, attackQPS float64) *Scenario {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 500, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := []bgpsim.Origin{
		{Site: 0, Host: stubs[10]},
		{Site: 1, Host: stubs[200]},
		{Site: 2, Host: stubs[400]},
	}
	capacity := []float64{100_000, 100_000, 1_000_000}
	table := bgpsim.Compute(g, origins, nil)

	legit := map[topo.ASN]float64{}
	rng := rand.New(rand.NewSource(9))
	for _, asn := range stubs {
		legit[asn] = 10 + rng.Float64()*20
	}
	// Attack sources: stubs currently routed to the two small sites.
	attackSrc := map[topo.ASN]float64{}
	var inSmall []topo.ASN
	for _, asn := range stubs {
		if s := table.SiteOf(asn); s == 0 || s == 1 {
			inSmall = append(inSmall, asn)
		}
	}
	if len(inSmall) == 0 {
		t.Fatal("no stubs in small-site catchments")
	}
	per := attackQPS / float64(len(inSmall))
	for _, asn := range inSmall {
		attackSrc[asn] = per
	}
	return &Scenario{
		Graph: g, Origins: origins, Capacity: capacity,
		LegitPerAS: legit, AttackPerAS: attackSrc,
		Minutes: 120, EventStart: 20, EventEnd: 100,
		Netsim: netsim.DefaultConfig(),
	}
}

func TestScenarioValidate(t *testing.T) {
	sc := caseScenario(t, 100_000)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *sc
	bad.Capacity = bad.Capacity[:1]
	if err := bad.Validate(); err == nil {
		t.Error("capacity mismatch should fail")
	}
	bad2 := *sc
	bad2.EventStart = 200
	if err := bad2.Validate(); err == nil {
		t.Error("bad window should fail")
	}
}

func TestStaticAbsorbBaseline(t *testing.T) {
	sc := caseScenario(t, 600_000)
	out, err := Evaluate(sc, StaticAbsorb{})
	if err != nil {
		t.Fatal(err)
	}
	if out.RouteChanges != 0 {
		t.Errorf("absorb made %d route changes", out.RouteChanges)
	}
	// The small sites are overwhelmed: served fraction drops during the
	// event but the big site's catchment is protected.
	if out.ServedLegitFrac > 0.95 || out.ServedLegitFrac < 0.3 {
		t.Errorf("absorb served fraction = %v", out.ServedLegitFrac)
	}
	if out.WorstMinuteFrac >= 0.9 {
		t.Errorf("absorb worst minute = %v; event should bite", out.WorstMinuteFrac)
	}
}

func TestThresholdWithdrawSheds(t *testing.T) {
	sc := caseScenario(t, 600_000)
	ctrl := &ThresholdWithdraw{Trigger: 2, Hold: 3, Cooldown: 30}
	out, err := Evaluate(sc, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if out.RouteChanges == 0 {
		t.Error("threshold controller never withdrew")
	}
	// Shifting small-site catchments onto the big site should beat
	// absorbing in place for this case-3-style attack (A < S3).
	absorb, err := Evaluate(caseScenario(t, 600_000), StaticAbsorb{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ServedLegitFrac <= absorb.ServedLegitFrac {
		t.Errorf("withdraw %v <= absorb %v; 'less can be more' should hold here",
			out.ServedLegitFrac, absorb.ServedLegitFrac)
	}
}

func TestAdaptiveBeatsOrMatchesStatics(t *testing.T) {
	// The automated feedback policy of §5 should never do materially
	// worse than the best static policy, for both a case-3 attack (where
	// withdrawing wins) and an overwhelming case-5 attack (where
	// absorbing wins).
	for _, attackQPS := range []float64{600_000, 8_000_000} {
		absorb, err := Evaluate(caseScenario(t, attackQPS), StaticAbsorb{})
		if err != nil {
			t.Fatal(err)
		}
		withdraw, err := Evaluate(caseScenario(t, attackQPS), &ThresholdWithdraw{Trigger: 2, Hold: 3, Cooldown: 30})
		if err != nil {
			t.Fatal(err)
		}
		adaptive, err := Evaluate(caseScenario(t, attackQPS), &Adaptive{Interval: 5, MinGain: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		bestStatic := absorb.ServedLegitFrac
		if withdraw.ServedLegitFrac > bestStatic {
			bestStatic = withdraw.ServedLegitFrac
		}
		if adaptive.ServedLegitFrac < bestStatic-0.08 {
			t.Errorf("attack %v: adaptive %v well below best static %v (absorb %v withdraw %v)",
				attackQPS, adaptive.ServedLegitFrac, bestStatic, absorb.ServedLegitFrac, withdraw.ServedLegitFrac)
		}
	}
}

func TestAdaptiveRevertsBadTrials(t *testing.T) {
	// Under a case-5 attack (everything overwhelmed), withdrawing cannot
	// help; the adaptive controller must revert its trials rather than
	// spiral into withdrawals.
	sc := caseScenario(t, 8_000_000)
	out, err := Evaluate(sc, &Adaptive{Interval: 5, MinGain: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Trials happen (changes > 0) but the system keeps serving.
	if out.ServedLegitFrac < 0.1 {
		t.Errorf("adaptive collapsed: %v", out.ServedLegitFrac)
	}
}

func TestControllerNeverDarkensService(t *testing.T) {
	// Even a pathological controller that wants everything down is
	// overridden to keep one site announced.
	sc := caseScenario(t, 600_000)
	out, err := Evaluate(sc, blackoutController{})
	if err != nil {
		t.Fatal(err)
	}
	if out.ServedLegitFrac == 0 {
		t.Error("service went fully dark")
	}
}

type blackoutController struct{}

func (blackoutController) Name() string { return "blackout" }
func (blackoutController) Decide(minute int, sites []SiteObs) []bool {
	return make([]bool, len(sites))
}

func TestDecisionLengthChecked(t *testing.T) {
	sc := caseScenario(t, 100_000)
	if _, err := Evaluate(sc, shortController{}); err == nil {
		t.Error("short decision slice should error")
	}
}

type shortController struct{}

func (shortController) Name() string { return "short" }
func (shortController) Decide(minute int, sites []SiteObs) []bool {
	return []bool{true}
}
