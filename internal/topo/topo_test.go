package topo

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/geo"
)

func TestGenerateDefaultValidates(t *testing.T) {
	g, err := Generate(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 12+240+2750 {
		t.Errorf("N = %d", g.N())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1.ASes {
		a, b := &g1.ASes[i], &g2.ASes[i]
		if a.City.Code != b.City.Code || a.Tier != b.Tier ||
			len(a.Providers) != len(b.Providers) || len(a.Peers) != len(b.Peers) {
			t.Fatalf("AS%d differs between identical seeds", i)
		}
	}
	g3, err := Generate(DefaultConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range g1.ASes {
		if g1.ASes[i].City.Code != g3.ASes[i].City.Code {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical city assignments")
	}
}

func TestTierStructure(t *testing.T) {
	g, _ := Generate(Config{Tier1s: 4, Tier2s: 20, Stubs: 100, Seed: 7})
	// Tier-1 full mesh.
	for i := 0; i < 4; i++ {
		a := &g.ASes[i]
		if a.Tier != Tier1 {
			t.Fatalf("AS%d tier = %v", i, a.Tier)
		}
		if len(a.Peers) < 3 {
			t.Errorf("tier-1 AS%d has %d peers, want >= 3 (clique)", i, len(a.Peers))
		}
		if len(a.Providers) != 0 {
			t.Errorf("tier-1 AS%d has providers", i)
		}
	}
	// Every tier-2 has providers, drawn from tier-1s or earlier tier-2s
	// (the second transit layer).
	topLayer := 0
	for i := 4; i < 24; i++ {
		a := &g.ASes[i]
		if a.Tier != Tier2 {
			t.Fatalf("AS%d tier = %v", i, a.Tier)
		}
		if len(a.Providers) < 1 {
			t.Errorf("tier-2 AS%d has no providers", i)
		}
		if g.HasTier1Provider(ASN(i)) {
			topLayer++
		}
		for _, p := range a.Providers {
			if g.AS(p).Tier == Stub {
				t.Errorf("tier-2 AS%d has stub provider AS%d", i, p)
			}
		}
	}
	if topLayer < 5 {
		t.Errorf("only %d of 20 tier-2s connect directly to tier-1s", topLayer)
	}
	// Every stub has at least one provider, and all stub providers are tier-2.
	for i := 24; i < g.N(); i++ {
		a := &g.ASes[i]
		if a.Tier != Stub {
			t.Fatalf("AS%d tier = %v", i, a.Tier)
		}
		if len(a.Providers) == 0 {
			t.Errorf("stub AS%d has no provider", i)
		}
		for _, p := range a.Providers {
			if g.AS(p).Tier != Tier2 {
				t.Errorf("stub AS%d has provider AS%d of tier %v", i, p, g.AS(p).Tier)
			}
		}
	}
}

func TestRegionBias(t *testing.T) {
	g, _ := Generate(DefaultConfig(3))
	counts := map[geo.Region]int{}
	total := 0
	for _, a := range g.ASes {
		if a.Tier == Stub {
			counts[a.City.Region]++
			total++
		}
	}
	euFrac := float64(counts[geo.Europe]) / float64(total)
	if euFrac < 0.30 || euFrac > 0.46 {
		t.Errorf("Europe stub fraction = %.2f, want ~0.38", euFrac)
	}
	if counts[geo.Africa] >= counts[geo.NorthAmerica] {
		t.Error("region weights not applied")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Tier1s: 1, Tier2s: 5, Stubs: 5}); err == nil {
		t.Error("want error for single tier-1")
	}
	if _, err := Generate(Config{Tier1s: 3, Tier2s: 0, Stubs: 5}); err == nil {
		t.Error("want error for zero tier-2")
	}
	if _, err := Generate(Config{Tier1s: 3, Tier2s: 3, Stubs: 0}); err == nil {
		t.Error("want error for zero stubs")
	}
}

func TestStubASNsAndRegions(t *testing.T) {
	g, _ := Generate(Config{Tier1s: 3, Tier2s: 10, Stubs: 50, Seed: 9})
	stubs := g.StubASNs()
	if len(stubs) != 50 {
		t.Errorf("StubASNs = %d, want 50", len(stubs))
	}
	for _, s := range stubs {
		if g.AS(s).Tier != Stub {
			t.Errorf("AS%d not a stub", s)
		}
	}
	var regionTotal int
	for r := geo.Region(0); r < 7; r++ {
		regionTotal += len(g.ASNsIn(r))
	}
	if regionTotal != g.N() {
		t.Errorf("regions partition %d of %d ASes", regionTotal, g.N())
	}
}

func TestDegree(t *testing.T) {
	a := AS{Providers: []ASN{1, 2}, Customers: []ASN{3}, Peers: []ASN{4, 5, 6}}
	if a.Degree() != 6 {
		t.Errorf("Degree = %d", a.Degree())
	}
}

func TestTierString(t *testing.T) {
	if Tier1.String() != "tier1" || Stub.String() != "stub" || Tier(9).String() != "Tier(9)" {
		t.Error("Tier.String mismatch")
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(DefaultConfig(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
