// Package topo generates AS-level Internet topologies for the anycast
// routing simulator.
//
// The generator builds a three-tier hierarchy in the style of measured AS
// graphs: a small clique of tier-1 transit-free networks, a layer of
// regional transit providers, and a large population of stub (edge) ASes.
// Links carry Gao-Rexford business relationships (customer-provider or
// peer-peer), which the bgpsim package uses for valley-free route
// propagation. Every AS is placed in a city (internal/geo) so that
// catchments translate into round-trip times.
package topo

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/rootevent/anycastddos/internal/geo"
)

// ASN identifies an autonomous system. ASNs are dense indices 0..N-1 in
// generated graphs, which keeps routing tables as flat slices.
type ASN int32

// Tier classifies an AS's role in the hierarchy.
type Tier uint8

// Tiers.
const (
	Tier1 Tier = iota // transit-free core, full peer mesh
	Tier2             // regional transit provider
	Stub              // edge network (eyeballs, enterprises, hosters)
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Stub:
		return "stub"
	default:
		return fmt.Sprintf("Tier(%d)", uint8(t))
	}
}

// AS is one autonomous system in the graph.
type AS struct {
	ASN       ASN
	Tier      Tier
	City      geo.City
	Providers []ASN // links where this AS is the customer
	Customers []ASN // links where this AS is the provider
	Peers     []ASN // settlement-free peerings
}

// Degree returns the total number of relationships of the AS.
func (a *AS) Degree() int { return len(a.Providers) + len(a.Customers) + len(a.Peers) }

// Graph is an AS-level topology.
type Graph struct {
	ASes []AS
}

// N returns the number of ASes.
func (g *Graph) N() int { return len(g.ASes) }

// AS returns the AS with the given number.
func (g *Graph) AS(a ASN) *AS { return &g.ASes[a] }

// Config controls topology generation.
type Config struct {
	Tier1s int // size of the transit-free clique
	Tier2s int // number of regional transit providers
	Stubs  int // number of edge ASes
	Seed   int64

	// StubRegionWeights biases where stub ASes (and hence clients and
	// vantage points) are located. Nil selects DefaultRegionWeights.
	StubRegionWeights map[geo.Region]float64

	// IXWeights marks internet-exchange hub cities: a tier-2 AS in one of
	// these cities peers with each other same-region tier-2 with the
	// given probability, on top of the base peering. This reproduces the
	// peering density of the big exchanges (AMS-IX, LINX, DE-CIX) that
	// makes sites hosted there dominate tie-broken anycast catchments.
	// Nil selects DefaultIXWeights.
	IXWeights map[string]float64
}

// DefaultIXWeights models the 2015 European exchange landscape with
// Amsterdam densest: nearly every European network peers at AMS-IX, which
// is why withdrawn K-Root catchments drained overwhelmingly to K-AMS
// (Figure 10 of the paper).
var DefaultIXWeights = map[string]float64{
	"AMS": 0.85,
	"LHR": 0.30,
	"FRA": 0.30,
	"IAD": 0.25,
	// Asian exchanges (JPNAP/JPIX, Equinix SG/HK): regional peering that
	// keeps Asian catchments on Asian sites instead of draining to
	// Europe.
	"NRT": 0.50,
	"SIN": 0.25,
	"HKG": 0.25,
}

// DefaultRegionWeights approximates the regional distribution of networks
// on the Internet around 2015, with Europe and North America dominating.
var DefaultRegionWeights = map[geo.Region]float64{
	geo.Europe:       0.38,
	geo.NorthAmerica: 0.28,
	geo.Asia:         0.18,
	geo.SouthAmerica: 0.06,
	geo.Oceania:      0.04,
	geo.MiddleEast:   0.03,
	geo.Africa:       0.03,
}

// DefaultConfig is sized so full-event simulations stay fast while leaving
// room for per-site catchment diversity: ~3000 ASes.
func DefaultConfig(seed int64) Config {
	return Config{Tier1s: 12, Tier2s: 240, Stubs: 2750, Seed: seed}
}

// Generate builds a topology from the configuration. Generation is fully
// deterministic for a given Config.
func Generate(cfg Config) (*Graph, error) {
	if cfg.Tier1s < 2 {
		return nil, fmt.Errorf("topo: need >= 2 tier-1 ASes, got %d", cfg.Tier1s)
	}
	if cfg.Tier2s < 1 || cfg.Stubs < 1 {
		return nil, fmt.Errorf("topo: need >= 1 tier-2 and stub AS")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := cfg.StubRegionWeights
	if weights == nil {
		weights = DefaultRegionWeights
	}

	n := cfg.Tier1s + cfg.Tier2s + cfg.Stubs
	g := &Graph{ASes: make([]AS, n)}
	for i := range g.ASes {
		g.ASes[i].ASN = ASN(i)
	}

	// Tier-1s: place in the largest interconnection cities, full peer mesh.
	t1Cities := []string{"AMS", "LHR", "FRA", "IAD", "LGA", "ORD", "PAO", "NRT", "SIN", "CDG", "SEA", "HKG", "MIA", "DFW"}
	for i := 0; i < cfg.Tier1s; i++ {
		a := &g.ASes[i]
		a.Tier = Tier1
		a.City = geo.MustLookup(t1Cities[i%len(t1Cities)])
		for j := 0; j < cfg.Tier1s; j++ {
			if j != i {
				a.Peers = append(a.Peers, ASN(j))
			}
		}
	}

	// Pre-compute region -> city lists once.
	regionCities := make(map[geo.Region][]geo.City)
	for r := geo.Region(0); r < 7; r++ {
		regionCities[r] = geo.CitiesIn(r)
	}
	pickRegion := func() geo.Region {
		x := rng.Float64()
		var cum float64
		for r := geo.Region(0); r < 7; r++ {
			cum += weights[r]
			if x < cum {
				return r
			}
		}
		return geo.Europe
	}
	pickCity := func(r geo.Region) geo.City {
		cs := regionCities[r]
		if len(cs) == 0 {
			cs = regionCities[geo.Europe]
		}
		return cs[rng.Intn(len(cs))]
	}

	// Tier-2s: regional transit. Each gets 2-3 tier-1 providers and a few
	// same-region tier-2 peers. Tier-2s in IX hub cities are far more
	// heavily multihomed — an AMS-IX network buys transit from almost
	// every tier-1, which is what lets services homed there win
	// customer-route preference everywhere.
	ixWeights := cfg.IXWeights
	if ixWeights == nil {
		ixWeights = DefaultIXWeights
	}
	// Guarantee IX-hub presence: the first tier-2s are pinned to the hub
	// cities (three per hub) so every topology, however small, has
	// exchange-dense networks where the big anycast sites live.
	hubs := make([]string, 0, len(ixWeights))
	for code := range ixWeights {
		hubs = append(hubs, code)
	}
	sort.Slice(hubs, func(i, j int) bool {
		if ixWeights[hubs[i]] != ixWeights[hubs[j]] {
			return ixWeights[hubs[i]] > ixWeights[hubs[j]]
		}
		return hubs[i] < hubs[j]
	})
	t2Start := cfg.Tier1s
	for i := t2Start; i < t2Start+cfg.Tier2s; i++ {
		a := &g.ASes[i]
		a.Tier = Tier2
		pin := i - t2Start
		if pin < 3*len(hubs) {
			// Hub codes come from cfg.IXWeights, i.e. caller input.
			city, err := geo.LookupErr(hubs[pin%len(hubs)])
			if err != nil {
				return nil, fmt.Errorf("topo: IX hub: %w", err)
			}
			a.City = city
		} else {
			a.City = pickCity(pickRegion())
		}
		// Roughly half the ordinary tier-2s are second-layer transit:
		// they buy from other (earlier) tier-2s rather than tier-1s,
		// giving the graph the AS-path depth of the real Internet. Hub
		// networks always connect straight to the core.
		_, isHub := ixWeights[a.City.Code]
		if !isHub && pin >= 3*len(hubs) && i > t2Start+4 && rng.Float64() < 0.5 {
			nProv := 1 + rng.Intn(2)
			for p := 0; p < nProv; p++ {
				j := t2Start + rng.Intn(i-t2Start)
				if !related(g, ASN(j), ASN(i)) {
					link(g, ASN(j), ASN(i))
				}
			}
			if len(a.Providers) > 0 {
				continue
			}
			// Fall through to tier-1 transit when unlucky with picks.
		}
		nProv := 2 + rng.Intn(2)
		if w := ixWeights[a.City.Code]; w > 0 {
			nProv += int(w * float64(cfg.Tier1s))
		}
		if nProv > cfg.Tier1s {
			nProv = cfg.Tier1s
		}
		for _, p := range rng.Perm(cfg.Tier1s)[:nProv] {
			link(g, ASN(p), ASN(i))
		}
	}
	// Tier-2 peering: connect each tier-2 to up to 3 random earlier
	// tier-2s in the same region (keeps the mesh valley-free-interesting).
	for i := t2Start + 1; i < t2Start+cfg.Tier2s; i++ {
		a := &g.ASes[i]
		tried := 0
		peered := 0
		for tried < 12 && peered < 3 {
			j := t2Start + rng.Intn(i-t2Start)
			tried++
			b := &g.ASes[j]
			if b.City.Region == a.City.Region && !related(g, ASN(i), ASN(j)) {
				a.Peers = append(a.Peers, ASN(j))
				b.Peers = append(b.Peers, ASN(i))
				peered++
			}
		}
	}

	// IX hub peering: tier-2s in exchange cities peer densely with their
	// region.
	for i := t2Start; i < t2Start+cfg.Tier2s; i++ {
		p, isHub := ixWeights[g.ASes[i].City.Code]
		if !isHub || p <= 0 {
			continue
		}
		for j := t2Start; j < t2Start+cfg.Tier2s; j++ {
			if j == i || g.ASes[j].City.Region != g.ASes[i].City.Region {
				continue
			}
			if rng.Float64() < p && !related(g, ASN(i), ASN(j)) {
				g.ASes[i].Peers = append(g.ASes[i].Peers, ASN(j))
				g.ASes[j].Peers = append(g.ASes[j].Peers, ASN(i))
			}
		}
	}

	// Stubs: each picks 1-2 providers, preferring same-region tier-2s.
	stubStart := t2Start + cfg.Tier2s
	// Index tier-2s by region for provider selection.
	t2ByRegion := make(map[geo.Region][]ASN)
	for i := t2Start; i < stubStart; i++ {
		t2ByRegion[g.ASes[i].City.Region] = append(t2ByRegion[g.ASes[i].City.Region], ASN(i))
	}
	for i := stubStart; i < n; i++ {
		a := &g.ASes[i]
		a.Tier = Stub
		region := pickRegion()
		a.City = pickCity(region)
		candidates := t2ByRegion[region]
		if len(candidates) == 0 {
			candidates = t2ByRegion[geo.Europe]
		}
		nProv := 1
		if rng.Float64() < 0.35 { // ~1/3 of stubs are multihomed
			nProv = 2
		}
		if nProv > len(candidates) {
			nProv = len(candidates)
		}
		seen := map[ASN]bool{}
		for len(seen) < nProv {
			p := candidates[rng.Intn(len(candidates))]
			if !seen[p] {
				seen[p] = true
				link(g, p, ASN(i))
			}
		}
	}
	return g, nil
}

// link records a provider->customer relationship.
func link(g *Graph, provider, customer ASN) {
	g.ASes[provider].Customers = append(g.ASes[provider].Customers, customer)
	g.ASes[customer].Providers = append(g.ASes[customer].Providers, provider)
}

// related reports whether a and b already share any relationship.
func related(g *Graph, a, b ASN) bool {
	for _, x := range g.ASes[a].Providers {
		if x == b {
			return true
		}
	}
	for _, x := range g.ASes[a].Customers {
		if x == b {
			return true
		}
	}
	for _, x := range g.ASes[a].Peers {
		if x == b {
			return true
		}
	}
	return false
}

// HasTier1Provider reports whether the AS buys transit directly from a
// tier-1 — i.e., sits in the top transit layer. Anycast sites hosted on
// such networks are one AS hop from the core and win path-length
// comparisons against sites homed deeper in the hierarchy.
func (g *Graph) HasTier1Provider(a ASN) bool {
	for _, p := range g.ASes[a].Providers {
		if g.ASes[p].Tier == Tier1 {
			return true
		}
	}
	return false
}

// StubASNs returns the ASNs of all stub ASes.
func (g *Graph) StubASNs() []ASN {
	var out []ASN
	for i := range g.ASes {
		if g.ASes[i].Tier == Stub {
			out = append(out, ASN(i))
		}
	}
	return out
}

// ASNsIn returns all ASNs whose city is in the given region.
func (g *Graph) ASNsIn(r geo.Region) []ASN {
	var out []ASN
	for i := range g.ASes {
		if g.ASes[i].City.Region == r {
			out = append(out, ASN(i))
		}
	}
	return out
}

// Validate checks structural invariants: symmetric relationships, no
// self-links, no duplicate links, and that every non-tier-1 AS has at least
// one provider (so the graph is connected through the hierarchy).
func (g *Graph) Validate() error {
	for i := range g.ASes {
		a := &g.ASes[i]
		seen := map[ASN]int{}
		for _, p := range a.Providers {
			if p == a.ASN {
				return fmt.Errorf("topo: AS%d is its own provider", i)
			}
			seen[p]++
			if !contains(g.ASes[p].Customers, a.ASN) {
				return fmt.Errorf("topo: AS%d lists provider AS%d without back link", i, p)
			}
		}
		for _, c := range a.Customers {
			if c == a.ASN {
				return fmt.Errorf("topo: AS%d is its own customer", i)
			}
			seen[c]++
			if !contains(g.ASes[c].Providers, a.ASN) {
				return fmt.Errorf("topo: AS%d lists customer AS%d without back link", i, c)
			}
		}
		for _, p := range a.Peers {
			if p == a.ASN {
				return fmt.Errorf("topo: AS%d peers with itself", i)
			}
			seen[p]++
			if !contains(g.ASes[p].Peers, a.ASN) {
				return fmt.Errorf("topo: AS%d lists peer AS%d without back link", i, p)
			}
		}
		for other, cnt := range seen {
			if cnt > 1 {
				return fmt.Errorf("topo: AS%d has %d relationships with AS%d", i, cnt, other)
			}
		}
		if a.Tier != Tier1 && len(a.Providers) == 0 {
			return fmt.Errorf("topo: non-tier-1 AS%d has no provider", i)
		}
	}
	return nil
}

func contains(xs []ASN, v ASN) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
