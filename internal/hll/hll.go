// Package hll implements a HyperLogLog distinct-value counter.
//
// The November 2015 events produced hundreds of millions of distinct
// (spoofed) source addresses per letter (Table 3 of the paper reports
// 1,813 M unique IPs at A-Root). Counting those exactly would require
// gigabytes of state per letter; operators and our rssac package instead use
// a cardinality sketch. This is a from-scratch implementation of the
// standard HyperLogLog estimator (Flajolet et al. 2007) with the small- and
// large-range corrections, using a 64-bit FNV-1a hash from the standard
// library.
package hll

import (
	"errors"
	"hash/fnv"
	"math"
)

// Sketch is a HyperLogLog cardinality estimator. The zero value is not
// usable; create sketches with New.
type Sketch struct {
	p         uint8 // precision: number of index bits, 4..16
	registers []uint8
}

// New creates a sketch with 2^p registers. Precision p must be in [4, 16];
// p=14 gives a typical standard error of about 0.8% using 16 KiB.
func New(p uint8) (*Sketch, error) {
	if p < 4 || p > 16 {
		return nil, errors.New("hll: precision must be in [4,16]")
	}
	return &Sketch{p: p, registers: make([]uint8, 1<<p)}, nil
}

// MustNew is New but panics on invalid precision; for compile-time-constant
// precisions. Precisions from configuration must go through New.
func MustNew(p uint8) *Sketch {
	s, err := New(p)
	if err != nil {
		//repolint:allow panic -- Must* contract: precision is a compile-time constant
		panic(err)
	}
	return s
}

// Precision returns the sketch's precision parameter.
func (s *Sketch) Precision() uint8 { return s.p }

// Add inserts a byte-slice item.
func (s *Sketch) Add(item []byte) {
	h := fnv.New64a()
	h.Write(item)
	s.AddHash(mix64(h.Sum64()))
}

// AddString inserts a string item.
func (s *Sketch) AddString(item string) {
	h := fnv.New64a()
	h.Write([]byte(item))
	s.AddHash(mix64(h.Sum64()))
}

// mix64 is the splitmix64 finalizer. FNV-1a diffuses short inputs poorly
// into its high bits, and HyperLogLog indexes registers by the top p bits;
// the avalanche step makes every input bit affect every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// AddUint32 inserts a 32-bit item (e.g. an IPv4 address).
func (s *Sketch) AddUint32(v uint32) {
	var buf [4]byte
	buf[0] = byte(v >> 24)
	buf[1] = byte(v >> 16)
	buf[2] = byte(v >> 8)
	buf[3] = byte(v)
	s.Add(buf[:])
}

// AddHash inserts a pre-hashed 64-bit value. Use this when the caller
// already has a good hash; it must be uniformly distributed.
func (s *Sketch) AddHash(x uint64) {
	idx := x >> (64 - s.p)
	rest := x<<s.p | 1<<(uint(s.p)-1) // ensure a terminating 1 bit
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.registers[idx] {
		s.registers[idx] = rank
	}
}

// alpha returns the bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the estimated number of distinct items added.
func (s *Sketch) Estimate() float64 {
	m := float64(len(s.registers))
	var sum float64
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(s.registers)) * m * m / sum
	// Small-range correction: linear counting.
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	// Large-range correction for 32-bit hash spaces does not apply to our
	// 64-bit hashes until ~2^57, far beyond any workload here.
	return est
}

// Count returns the estimate rounded to the nearest integer.
func (s *Sketch) Count() int64 { return int64(math.Round(s.Estimate())) }

// Merge unions other into s; afterwards s estimates the cardinality of the
// union of both input streams. Sketches must share a precision.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return errors.New("hll: precision mismatch")
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}

// Reset clears the sketch to empty.
func (s *Sketch) Reset() {
	for i := range s.registers {
		s.registers[i] = 0
	}
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{p: s.p, registers: make([]uint8, len(s.registers))}
	copy(c.registers, s.registers)
	return c
}
