package hll

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPrecisionBounds(t *testing.T) {
	for _, p := range []uint8{0, 1, 3, 17, 64} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) should fail", p)
		}
	}
	for _, p := range []uint8{4, 10, 14, 16} {
		s, err := New(p)
		if err != nil {
			t.Errorf("New(%d): %v", p, err)
		}
		if s.Precision() != p {
			t.Errorf("Precision = %d, want %d", s.Precision(), p)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(2) did not panic")
		}
	}()
	MustNew(2)
}

func TestEmptyEstimate(t *testing.T) {
	s := MustNew(12)
	if got := s.Count(); got != 0 {
		t.Errorf("empty Count = %d, want 0", got)
	}
}

func TestSmallExactish(t *testing.T) {
	// Linear counting regime: small cardinalities should be near exact.
	s := MustNew(12)
	for i := 0; i < 100; i++ {
		s.AddString(fmt.Sprintf("item-%d", i))
	}
	got := s.Estimate()
	if math.Abs(got-100) > 5 {
		t.Errorf("estimate = %v, want ~100", got)
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := MustNew(12)
	for i := 0; i < 1000; i++ {
		s.AddString("same-item")
	}
	if got := s.Count(); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
}

func TestLargeCardinalityAccuracy(t *testing.T) {
	s := MustNew(14) // ~0.8% standard error
	const n = 500000
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		s.AddUint32(rng.Uint32())
	}
	// Random uint32 draws collide slightly; expected distinct ≈ n - n²/2³³.
	expected := float64(n) - float64(n)*float64(n)/math.Pow(2, 33)
	got := s.Estimate()
	relErr := math.Abs(got-expected) / expected
	if relErr > 0.03 {
		t.Errorf("estimate = %.0f, expected ~%.0f (rel err %.3f > 0.03)", got, expected, relErr)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := MustNew(12), MustNew(12), MustNew(12)
	for i := 0; i < 3000; i++ {
		item := fmt.Sprintf("a-%d", i)
		a.AddString(item)
		u.AddString(item)
	}
	for i := 0; i < 3000; i++ {
		item := fmt.Sprintf("b-%d", i)
		b.AddString(item)
		u.AddString(item)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != u.Estimate() {
		t.Errorf("merged estimate %v != union estimate %v", a.Estimate(), u.Estimate())
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	a, b := MustNew(10), MustNew(12)
	if err := a.Merge(b); err == nil {
		t.Error("want precision mismatch error")
	}
}

func TestResetAndClone(t *testing.T) {
	s := MustNew(10)
	for i := 0; i < 100; i++ {
		s.AddString(fmt.Sprintf("x%d", i))
	}
	c := s.Clone()
	s.Reset()
	if s.Count() != 0 {
		t.Errorf("after Reset, Count = %d", s.Count())
	}
	if c.Count() == 0 {
		t.Error("Clone was affected by Reset")
	}
	c.AddString("new")
	// Clone independence in the other direction: s stays empty.
	if s.Count() != 0 {
		t.Error("Clone shares registers with source")
	}
}

// Property: adding more items never decreases the estimate (monotonicity).
func TestMonotonicity(t *testing.T) {
	f := func(items []uint32) bool {
		s := MustNew(10)
		prev := 0.0
		for _, it := range items {
			s.AddUint32(it)
			e := s.Estimate()
			if e+1e-9 < prev {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merge is commutative in its estimate.
func TestMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a1, b1 := MustNew(10), MustNew(10)
		a2, b2 := MustNew(10), MustNew(10)
		for _, x := range xs {
			a1.AddUint32(x)
			a2.AddUint32(x)
		}
		for _, y := range ys {
			b1.AddUint32(y)
			b2.AddUint32(y)
		}
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := b2.Merge(a2); err != nil {
			return false
		}
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddUint32(b *testing.B) {
	s := MustNew(14)
	for i := 0; i < b.N; i++ {
		s.AddUint32(uint32(i * 2654435761))
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := MustNew(14)
	for i := 0; i < 100000; i++ {
		s.AddUint32(uint32(i * 2654435761))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Estimate()
	}
}
