// Package bgpmon models a BGPmon-style route-collector mesh.
//
// BGPmon peers with dozens of routers around the Internet and records the
// BGP updates they emit; the paper uses 152 such peers to corroborate that
// the site flips seen in RIPE Atlas during the events were caused by actual
// route withdrawals (§2.4.3, Figure 9). Here, collectors are attached to
// ASes of the simulated topology; whenever an attached AS's best route for
// a letter's prefix changes, the collector logs an update event.
package bgpmon

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/stats"
	"github.com/rootevent/anycastddos/internal/topo"
)

// Update is one observed route change at a collector peer.
type Update struct {
	Minute int  // simulation minute of the change
	Letter byte // anycast service whose prefix changed
	Peer   topo.ASN
	From   int // previous site (bgpsim.NoSite if none)
	To     int // new site (bgpsim.NoSite if withdrawn)
}

// Collector observes route changes at a fixed set of peer ASes.
type Collector struct {
	peers   map[topo.ASN]bool
	updates []Update
}

// New creates a collector peered with the given ASes.
func New(peers []topo.ASN) *Collector {
	c := &Collector{peers: make(map[topo.ASN]bool, len(peers))}
	for _, p := range peers {
		c.peers[p] = true
	}
	return c
}

// NewSampled creates a collector peered with n ASes sampled deterministically
// from the graph (biased toward transit networks, where real route
// collectors sit). The paper's dataset had 152 peers.
func NewSampled(g *topo.Graph, n int, seed int64) (*Collector, error) {
	if n <= 0 || n > g.N() {
		return nil, fmt.Errorf("bgpmon: cannot sample %d peers from %d ASes", n, g.N())
	}
	rng := rand.New(rand.NewSource(seed))
	// Candidate pool: all tier-2s plus a slice of stubs.
	var pool []topo.ASN
	for i := range g.ASes {
		switch g.ASes[i].Tier {
		case topo.Tier1, topo.Tier2:
			pool = append(pool, topo.ASN(i))
		case topo.Stub:
			if rng.Float64() < 0.05 {
				pool = append(pool, topo.ASN(i))
			}
		}
	}
	if len(pool) < n {
		pool = nil
		for i := range g.ASes {
			pool = append(pool, topo.ASN(i))
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return New(pool[:n]), nil
}

// NumPeers returns the number of peer ASes.
func (c *Collector) NumPeers() int { return len(c.peers) }

// Peers returns the sorted peer ASNs.
func (c *Collector) Peers() []topo.ASN {
	out := make([]topo.ASN, 0, len(c.peers))
	for p := range c.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Observe ingests the routing-table diff for one letter at one minute,
// recording updates for changes visible at peer ASes.
func (c *Collector) Observe(minute int, letter byte, changes []bgpsim.Change) int {
	seen := 0
	for _, ch := range changes {
		if c.peers[ch.ASN] {
			c.updates = append(c.updates, Update{
				Minute: minute, Letter: letter, Peer: ch.ASN, From: ch.From, To: ch.To,
			})
			seen++
		}
	}
	return seen
}

// Updates returns all recorded updates in arrival order.
func (c *Collector) Updates() []Update { return c.updates }

// RestoreUpdates replaces the collector's recorded update stream, used when
// resuming a run from a checkpoint (the diff stream the updates were
// derived from is not retained, so the stream itself is snapshotted).
func (c *Collector) RestoreUpdates(updates []Update) {
	c.updates = append(c.updates[:0:0], updates...)
}

// UpdateSeries bins the collector's updates for one letter into a
// stats.Series of the given shape — the raw material of Figure 9.
func (c *Collector) UpdateSeries(letter byte, startMinute, binMinutes, bins int) *stats.Series {
	s := stats.NewSeries(fmt.Sprintf("bgp-updates-%c", letter), startMinute, binMinutes, bins)
	for _, u := range c.updates {
		if u.Letter != letter {
			continue
		}
		if i, ok := s.BinFor(u.Minute); ok {
			s.Values[i]++
		}
	}
	return s
}

// Letters returns the set of letters with at least one recorded update,
// sorted.
func (c *Collector) Letters() []byte {
	set := map[byte]bool{}
	for _, u := range c.updates {
		set[u.Letter] = true
	}
	out := make([]byte, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
