package bgpmon

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/topo"
)

func testGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 30, Stubs: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewSampledCount(t *testing.T) {
	g := testGraph(t)
	c, err := NewSampled(g, 152, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPeers() != 152 {
		t.Errorf("peers = %d, want 152", c.NumPeers())
	}
	peers := c.Peers()
	if len(peers) != 152 {
		t.Fatalf("Peers() = %d", len(peers))
	}
	for i := 1; i < len(peers); i++ {
		if peers[i-1] >= peers[i] {
			t.Fatal("Peers() not sorted/unique")
		}
	}
}

func TestNewSampledDeterministic(t *testing.T) {
	g := testGraph(t)
	c1, _ := NewSampled(g, 50, 9)
	c2, _ := NewSampled(g, 50, 9)
	p1, p2 := c1.Peers(), c2.Peers()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestNewSampledErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := NewSampled(g, 0, 1); err == nil {
		t.Error("want error for 0 peers")
	}
	if _, err := NewSampled(g, g.N()+1, 1); err == nil {
		t.Error("want error for too many peers")
	}
}

func TestObserveFiltersToPeers(t *testing.T) {
	c := New([]topo.ASN{5, 9})
	changes := []bgpsim.Change{
		{ASN: 5, From: 0, To: 1},
		{ASN: 6, From: 0, To: 1}, // not a peer
		{ASN: 9, From: 1, To: bgpsim.NoSite},
	}
	seen := c.Observe(100, 'K', changes)
	if seen != 2 {
		t.Errorf("seen = %d, want 2", seen)
	}
	ups := c.Updates()
	if len(ups) != 2 || ups[0].Peer != 5 || ups[1].Peer != 9 {
		t.Errorf("updates = %+v", ups)
	}
	if ups[1].To != bgpsim.NoSite {
		t.Error("withdrawal not recorded")
	}
}

func TestUpdateSeriesBinning(t *testing.T) {
	c := New([]topo.ASN{1, 2, 3})
	c.Observe(5, 'K', []bgpsim.Change{{ASN: 1, From: 0, To: 1}})
	c.Observe(12, 'K', []bgpsim.Change{{ASN: 2, From: 0, To: 1}, {ASN: 3, From: 0, To: 1}})
	c.Observe(12, 'E', []bgpsim.Change{{ASN: 1, From: 2, To: 3}})
	s := c.UpdateSeries('K', 0, 10, 3)
	if s.Values[0] != 1 || s.Values[1] != 2 || s.Values[2] != 0 {
		t.Errorf("K series = %v", s.Values)
	}
	e := c.UpdateSeries('E', 0, 10, 3)
	if e.Values[1] != 1 {
		t.Errorf("E series = %v", e.Values)
	}
	letters := c.Letters()
	if len(letters) != 2 || letters[0] != 'E' || letters[1] != 'K' {
		t.Errorf("Letters = %v", letters)
	}
}

func TestEndToEndWithRouting(t *testing.T) {
	// A withdrawal visible in bgpsim.Diff must surface at collectors whose
	// peers sit in the withdrawn catchment.
	g := testGraph(t)
	stubs := g.StubASNs()
	origins := []bgpsim.Origin{{Site: 0, Host: stubs[0]}, {Site: 1, Host: stubs[150]}}
	before := bgpsim.Compute(g, origins, nil)
	after := bgpsim.Compute(g, origins, []bool{false, true})
	changes := bgpsim.Diff(before, after)
	if len(changes) == 0 {
		t.Fatal("withdrawal produced no changes")
	}
	c, err := NewSampled(g, 152, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := c.Observe(410, 'K', changes)
	if seen == 0 {
		t.Error("no collector peer observed a letter-wide withdrawal; sampling is broken")
	}
	s := c.UpdateSeries('K', 0, 10, 288)
	if s.Values[41] != float64(seen) {
		t.Errorf("bin 41 = %v, want %d", s.Values[41], seen)
	}
}
