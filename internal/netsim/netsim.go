// Package netsim models what happens inside an anycast site when the
// offered query load approaches or exceeds its capacity.
//
// The model is deliberately simple and matches the paper's observations:
//
//   - While offered load is below capacity, all queries are served with no
//     added delay.
//   - Above capacity, the site serves exactly its capacity; the rest is
//     dropped at the ingress (loss fraction 1 - capacity/offered).
//   - Queues in front of the saturated link inflate the RTT of *successful*
//     queries — "industrial-scale bufferbloat" (§3.3.2): K-AMS went from
//     ~30 ms to 1-2 s while remaining up.
//
// The package also provides the per-server view behind a site's load
// balancer (§3.5) and the withdraw state machine that turns persistent
// overload into BGP withdrawals for sites with the Withdraw policy (§2.2).
package netsim

import (
	"errors"
	"fmt"

	"github.com/rootevent/anycastddos/internal/anycast"
)

// ErrBadCapacity is returned by Evaluate for a non-positive capacity.
// Capacity values can originate in configuration (and, with fault
// injection, be scaled at runtime), so the model reports them as errors
// instead of panicking.
var ErrBadCapacity = errors.New("netsim: non-positive capacity")

// Config holds the calibration constants of the queue model.
type Config struct {
	// MaxBufferDelayMs caps bufferbloat-induced extra delay. Calibrated
	// to the ~2 s RTTs observed at K-AMS during the second event.
	MaxBufferDelayMs float64
	// DelaySlopeMs is the extra delay added per unit of overload ratio
	// beyond 1 (e.g. offered = 2x capacity adds DelaySlopeMs ms).
	DelaySlopeMs float64
	// OnsetUtilization is the utilization above which queueing delay
	// starts to build even before hard loss (0.9 means the last 10% of
	// capacity comes with growing queues).
	OnsetUtilization float64
}

// DefaultConfig returns the calibration used for the event reproduction.
func DefaultConfig() Config {
	return Config{MaxBufferDelayMs: 1900, DelaySlopeMs: 1100, OnsetUtilization: 0.9}
}

// Load is the traffic offered to one site during one time step.
type Load struct {
	LegitQPS  float64
	AttackQPS float64
}

// Offered returns the total offered rate.
func (l Load) Offered() float64 { return l.LegitQPS + l.AttackQPS }

// State is the resulting service quality at a site for one time step.
type State struct {
	OfferedQPS   float64
	ServedQPS    float64
	LossFrac     float64 // fraction of incoming queries dropped
	ExtraDelayMs float64 // queueing delay added to successful queries
	Utilization  float64 // offered / capacity
}

// Evaluate computes the site state for a given capacity and load.
// Capacity must be positive; otherwise a zero State and an error
// wrapping ErrBadCapacity are returned.
func Evaluate(capacityQPS float64, load Load, cfg Config) (State, error) {
	if capacityQPS <= 0 {
		return State{}, fmt.Errorf("%w: %v", ErrBadCapacity, capacityQPS)
	}
	offered := load.Offered()
	st := State{OfferedQPS: offered, Utilization: offered / capacityQPS}
	if offered <= capacityQPS {
		st.ServedQPS = offered
		if st.Utilization > cfg.OnsetUtilization && cfg.OnsetUtilization < 1 {
			// Queue build-up in the last slice before saturation.
			frac := (st.Utilization - cfg.OnsetUtilization) / (1 - cfg.OnsetUtilization)
			st.ExtraDelayMs = clamp(frac*cfg.DelaySlopeMs*0.25, 0, cfg.MaxBufferDelayMs)
		}
		return st, nil
	}
	st.ServedQPS = capacityQPS
	st.LossFrac = 1 - capacityQPS/offered
	st.ExtraDelayMs = clamp(cfg.DelaySlopeMs*0.25+(st.Utilization-1)*cfg.DelaySlopeMs, 0, cfg.MaxBufferDelayMs)
	return st, nil
}

//repolint:hot
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ServerView is the per-server service quality behind a site's load
// balancer, as seen by measurement probes (§3.5).
type ServerView struct {
	// Responds[i] reports whether server i+1 answers probe queries at
	// all during this step.
	Responds []bool
	// LossFrac[i] is the loss probability for probes directed to server
	// i+1 (meaningful when Responds[i]).
	LossFrac []float64
	// ExtraDelayMs[i] is the queueing delay at server i+1.
	ExtraDelayMs []float64
	// Active is the isolated server (1-based) under ServersIsolate and
	// overload, else 0.
	Active int
}

// Servers derives the per-server view from a site's aggregate state.
//
// eventIndex identifies which stress period is in effect (0 before any
// event); ServersIsolate sites concentrate probe traffic on a different
// server in each event, reproducing K-FRA answering from S2 in the first
// event and S3 in the second (Figure 12).
func Servers(site *anycast.Site, st State, cfg Config, eventIndex int) ServerView {
	n := site.NumServers
	v := ServerView{
		Responds:     make([]bool, n),
		LossFrac:     make([]float64, n),
		ExtraDelayMs: make([]float64, n),
	}
	overloaded := st.LossFrac > 0
	if !overloaded {
		for i := 0; i < n; i++ {
			v.Responds[i] = true
			v.ExtraDelayMs[i] = st.ExtraDelayMs
		}
		return v
	}
	switch site.ServerMode {
	case anycast.ServersIsolate:
		// The balancer pins surviving (non-attack) flows to one server;
		// probes to the others go unanswered. Successful replies keep a
		// near-normal RTT — the isolated server is shielded from the
		// saturated queue (Figure 13 top: K-FRA RTT stays flat).
		active := 1 + eventIndex%n
		v.Active = active
		for i := 0; i < n; i++ {
			if i+1 == active {
				v.Responds[i] = true
				v.LossFrac[i] = st.LossFrac
				v.ExtraDelayMs[i] = clamp(st.ExtraDelayMs*0.1, 0, 120)
			}
		}
	default: // ServersShared
		for i := 0; i < n; i++ {
			v.Responds[i] = true
			v.LossFrac[i] = st.LossFrac
			v.ExtraDelayMs[i] = st.ExtraDelayMs
			if site.HotServer == i+1 {
				// The hot server carries a disproportionate share
				// (K-NRT-S2): more loss and more delay.
				v.LossFrac[i] = clamp(st.LossFrac*1.5, 0, 0.98)
				v.ExtraDelayMs[i] = clamp(st.ExtraDelayMs*1.35, 0, cfg.MaxBufferDelayMs*1.2)
			}
		}
	}
	return v
}

// ProbeServer resolves one probe's server selection without materializing a
// full ServerView: given the server the balancer hashed the probe to, it
// returns the server that actually handles it (the isolated server under
// ServersIsolate and overload, otherwise the hashed one) and that server's
// response behaviour. It is the allocation-free scalar form of Servers for
// per-probe hot paths; for any (site, state, eventIndex), the returned
// values equal the corresponding ServerView entries after the caller-side
// Active redirect.
//
//repolint:hot
func ProbeServer(site *anycast.Site, st State, cfg Config, eventIndex, server int) (srv int, responds bool, lossFrac, extraDelayMs float64) {
	if st.LossFrac <= 0 {
		return server, true, 0, st.ExtraDelayMs
	}
	switch site.ServerMode {
	case anycast.ServersIsolate:
		// All surviving traffic lands on the isolated server (Figure 12);
		// it answers with near-normal RTT, shielded from the saturated
		// queue.
		active := 1 + eventIndex%site.NumServers
		return active, true, st.LossFrac, clamp(st.ExtraDelayMs*0.1, 0, 120)
	default: // ServersShared
		if site.HotServer == server {
			return server, true, clamp(st.LossFrac*1.5, 0, 0.98), clamp(st.ExtraDelayMs*1.35, 0, cfg.MaxBufferDelayMs*1.2)
		}
		return server, true, st.LossFrac, st.ExtraDelayMs
	}
}

// Router is the per-site announcement state machine. Sites with the
// Withdraw policy pull their BGP announcement after sustained overload and
// try again after a cooldown; Absorb sites stay announced no matter what.
// H-Root's primary/backup routing is built from two Routers by the core
// evaluator.
type Router struct {
	policy anycast.Policy
	// TriggerRatio is the utilization that counts as overload.
	TriggerRatio float64
	// HoldMinutes is how long overload must persist before withdrawing
	// (BGP sessions and operators do not react instantly).
	HoldMinutes int
	// CooldownMinutes is how long a withdrawn site stays down before
	// re-announcing. Long cooldowns reproduce the E-Root sites that
	// stayed down after the second event (Figure 6a).
	CooldownMinutes int

	announced   bool
	overMinutes int
	downSince   int
}

// NewRouter creates an announcement state machine for a site policy.
func NewRouter(policy anycast.Policy, triggerRatio float64, holdMinutes, cooldownMinutes int) *Router {
	return &Router{
		policy:          policy,
		TriggerRatio:    triggerRatio,
		HoldMinutes:     holdMinutes,
		CooldownMinutes: cooldownMinutes,
		announced:       true,
	}
}

// Announced reports whether the site's route is currently announced.
func (r *Router) Announced() bool { return r.announced }

// ForceWithdraw withdraws the route immediately (used for H-Root's primary
// and for operator actions). Returns true if the state changed.
func (r *Router) ForceWithdraw(minute int) bool {
	if !r.announced {
		return false
	}
	r.announced = false
	r.downSince = minute
	r.overMinutes = 0
	return true
}

// ForceAnnounce re-announces the route immediately. Returns true if the
// state changed.
func (r *Router) ForceAnnounce() bool {
	if r.announced {
		return false
	}
	r.announced = true
	r.overMinutes = 0
	return true
}

// RouterState is the serializable mutable state of a Router, captured for
// checkpointing. The policy and thresholds are configuration (rebuilt from
// the same Config on resume), so only the announcement dynamics appear
// here.
type RouterState struct {
	Announced   bool
	OverMinutes int
	DownSince   int
}

// State captures the router's mutable state for a checkpoint.
func (r *Router) State() RouterState {
	return RouterState{Announced: r.announced, OverMinutes: r.overMinutes, DownSince: r.downSince}
}

// Restore overwrites the router's mutable state from a checkpoint.
func (r *Router) Restore(s RouterState) {
	r.announced = s.Announced
	r.overMinutes = s.OverMinutes
	r.downSince = s.DownSince
}

// Step advances the state machine one minute given the site's current
// utilization (offered/capacity; a withdrawn site sees utilization 0). It
// returns whether the announcement state changed.
func (r *Router) Step(minute int, utilization float64) bool {
	if r.policy != anycast.Withdraw {
		return false
	}
	if r.announced {
		if utilization >= r.TriggerRatio {
			r.overMinutes++
			if r.overMinutes >= r.HoldMinutes {
				r.announced = false
				r.downSince = minute
				r.overMinutes = 0
				return true
			}
		} else {
			r.overMinutes = 0
		}
		return false
	}
	if minute-r.downSince >= r.CooldownMinutes {
		r.announced = true
		r.overMinutes = 0
		return true
	}
	return false
}
