package netsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/rootevent/anycastddos/internal/anycast"
)

func mustEval(t *testing.T, capacityQPS float64, load Load, cfg Config) State {
	t.Helper()
	st, err := Evaluate(capacityQPS, load, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEvaluateUnderCapacity(t *testing.T) {
	st := mustEval(t, 100_000, Load{LegitQPS: 40_000, AttackQPS: 0}, DefaultConfig())
	if st.LossFrac != 0 || st.ServedQPS != 40_000 || st.ExtraDelayMs != 0 {
		t.Errorf("state = %+v", st)
	}
	if math.Abs(st.Utilization-0.4) > 1e-9 {
		t.Errorf("utilization = %v", st.Utilization)
	}
}

func TestEvaluateNearSaturationBuildsQueue(t *testing.T) {
	cfg := DefaultConfig()
	st := mustEval(t, 100_000, Load{LegitQPS: 98_000}, cfg)
	if st.LossFrac != 0 {
		t.Errorf("loss = %v, want 0 below capacity", st.LossFrac)
	}
	if st.ExtraDelayMs <= 0 {
		t.Error("no queueing delay at 98% utilization")
	}
	lower := mustEval(t, 100_000, Load{LegitQPS: 50_000}, cfg)
	if lower.ExtraDelayMs != 0 {
		t.Error("delay at 50% utilization")
	}
}

func TestEvaluateOverload(t *testing.T) {
	cfg := DefaultConfig()
	// K-AMS-like: 1.2 Mq/s capacity, ~2.8 Mq/s offered.
	st := mustEval(t, 1_200_000, Load{LegitQPS: 15_000, AttackQPS: 2_785_000}, cfg)
	if st.ServedQPS != 1_200_000 {
		t.Errorf("served = %v", st.ServedQPS)
	}
	wantLoss := 1 - 1_200_000/2_800_000.0
	if math.Abs(st.LossFrac-wantLoss) > 1e-9 {
		t.Errorf("loss = %v, want %v", st.LossFrac, wantLoss)
	}
	// RTT inflation should land in the ~1-2 s band of Figure 7.
	if st.ExtraDelayMs < 800 || st.ExtraDelayMs > cfg.MaxBufferDelayMs {
		t.Errorf("extra delay = %v ms, want in [800, %v]", st.ExtraDelayMs, cfg.MaxBufferDelayMs)
	}
}

func TestEvaluateExtremOverloadCapsDelay(t *testing.T) {
	cfg := DefaultConfig()
	st := mustEval(t, 30_000, Load{AttackQPS: 5_000_000}, cfg)
	if st.ExtraDelayMs != cfg.MaxBufferDelayMs {
		t.Errorf("delay = %v, want cap %v", st.ExtraDelayMs, cfg.MaxBufferDelayMs)
	}
	if st.LossFrac < 0.99 {
		t.Errorf("loss = %v, want > 0.99", st.LossFrac)
	}
}

func TestEvaluateErrorsOnBadCapacity(t *testing.T) {
	for _, capacity := range []float64{0, -1} {
		if _, err := Evaluate(capacity, Load{}, DefaultConfig()); !errors.Is(err, ErrBadCapacity) {
			t.Errorf("capacity %v: want ErrBadCapacity, got %v", capacity, err)
		}
	}
}

// Property: conservation — served + dropped = offered, and loss within [0,1).
func TestEvaluateConservation(t *testing.T) {
	cfg := DefaultConfig()
	f := func(capRaw, legitRaw, attackRaw uint32) bool {
		capacity := float64(capRaw%10_000_000) + 1
		load := Load{LegitQPS: float64(legitRaw % 10_000_000), AttackQPS: float64(attackRaw % 100_000_000)}
		st, err := Evaluate(capacity, load, cfg)
		if err != nil {
			return false
		}
		dropped := st.OfferedQPS * st.LossFrac
		if st.LossFrac < 0 || st.LossFrac >= 1 {
			return false
		}
		if st.ExtraDelayMs < 0 || st.ExtraDelayMs > cfg.MaxBufferDelayMs {
			return false
		}
		return math.Abs(st.ServedQPS+dropped-st.OfferedQPS) < 1e-6*math.Max(1, st.OfferedQPS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: loss and delay are monotone non-decreasing in attack rate.
func TestEvaluateMonotone(t *testing.T) {
	cfg := DefaultConfig()
	f := func(a, b uint32) bool {
		x, y := float64(a%50_000_000), float64(b%50_000_000)
		if x > y {
			x, y = y, x
		}
		s1, err1 := Evaluate(100_000, Load{AttackQPS: x}, cfg)
		s2, err2 := Evaluate(100_000, Load{AttackQPS: y}, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		return s1.LossFrac <= s2.LossFrac+1e-12 && s1.ExtraDelayMs <= s2.ExtraDelayMs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sharedSite(servers int, hot int) *anycast.Site {
	return &anycast.Site{Letter: 'K', Code: "NRT", NumServers: servers, ServerMode: anycast.ServersShared, HotServer: hot, CapacityQPS: 1}
}

func isolateSite(servers int) *anycast.Site {
	return &anycast.Site{Letter: 'K', Code: "FRA", NumServers: servers, ServerMode: anycast.ServersIsolate, CapacityQPS: 1}
}

func TestServersHealthy(t *testing.T) {
	st := State{LossFrac: 0, ExtraDelayMs: 0}
	v := Servers(isolateSite(3), st, DefaultConfig(), 0)
	for i, r := range v.Responds {
		if !r || v.LossFrac[i] != 0 {
			t.Errorf("healthy server %d = responds %v loss %v", i+1, r, v.LossFrac[i])
		}
	}
	if v.Active != 0 {
		t.Errorf("Active = %d, want 0 when healthy", v.Active)
	}
}

func TestServersIsolateUnderOverload(t *testing.T) {
	st := State{LossFrac: 0.6, ExtraDelayMs: 1200}
	// First event: server 2 stays up (K-FRA-S2, Figure 12 top).
	v1 := Servers(isolateSite(3), st, DefaultConfig(), 1)
	if v1.Active != 2 {
		t.Errorf("event 1 active = %d, want 2", v1.Active)
	}
	if !v1.Responds[1] || v1.Responds[0] || v1.Responds[2] {
		t.Errorf("event 1 responds = %v", v1.Responds)
	}
	// Successful replies keep near-normal RTT (Figure 13 top).
	if v1.ExtraDelayMs[1] > 150 {
		t.Errorf("isolated server delay = %v, want small", v1.ExtraDelayMs[1])
	}
	// Second event: server 3.
	v2 := Servers(isolateSite(3), st, DefaultConfig(), 2)
	if v2.Active != 3 || !v2.Responds[2] {
		t.Errorf("event 2 active = %d responds %v", v2.Active, v2.Responds)
	}
}

func TestServersSharedWithHotServer(t *testing.T) {
	st := State{LossFrac: 0.4, ExtraDelayMs: 900}
	v := Servers(sharedSite(3, 2), st, DefaultConfig(), 1)
	for i := 0; i < 3; i++ {
		if !v.Responds[i] {
			t.Errorf("shared server %d not responding", i+1)
		}
	}
	if v.LossFrac[1] <= v.LossFrac[0] {
		t.Errorf("hot server loss %v not above others %v", v.LossFrac[1], v.LossFrac[0])
	}
	if v.ExtraDelayMs[1] <= v.ExtraDelayMs[0] {
		t.Errorf("hot server delay %v not above others %v", v.ExtraDelayMs[1], v.ExtraDelayMs[0])
	}
}

func TestRouterAbsorbNeverWithdraws(t *testing.T) {
	r := NewRouter(anycast.Absorb, 3, 5, 60)
	for m := 0; m < 100; m++ {
		if r.Step(m, 50) {
			t.Fatal("absorb router changed state")
		}
	}
	if !r.Announced() {
		t.Error("absorb router withdrew")
	}
}

func TestRouterWithdrawAfterHold(t *testing.T) {
	r := NewRouter(anycast.Withdraw, 3, 5, 60)
	for m := 0; m < 4; m++ {
		if r.Step(m, 10) {
			t.Fatalf("withdrew after %d minutes, hold is 5", m+1)
		}
	}
	if !r.Step(4, 10) {
		t.Fatal("did not withdraw after hold reached")
	}
	if r.Announced() {
		t.Fatal("still announced after withdrawal")
	}
	// Stays down through cooldown.
	for m := 5; m < 64; m++ {
		if r.Step(m, 0) {
			t.Fatalf("re-announced at minute %d, cooldown is 60", m)
		}
	}
	if !r.Step(64, 0) {
		t.Fatal("did not re-announce after cooldown")
	}
	if !r.Announced() {
		t.Fatal("not announced after re-announce")
	}
}

func TestRouterOverloadMustBeConsecutive(t *testing.T) {
	r := NewRouter(anycast.Withdraw, 3, 3, 60)
	r.Step(0, 10)
	r.Step(1, 10)
	r.Step(2, 1) // dip below trigger resets the hold counter
	r.Step(3, 10)
	r.Step(4, 10)
	if !r.Announced() {
		t.Fatal("withdrew despite non-consecutive overload")
	}
	if !r.Step(5, 10) {
		t.Fatal("should withdraw on third consecutive overloaded minute")
	}
}

func TestRouterForceOperations(t *testing.T) {
	r := NewRouter(anycast.Withdraw, 3, 5, 60)
	if !r.ForceWithdraw(10) {
		t.Fatal("ForceWithdraw on announced route should change state")
	}
	if r.ForceWithdraw(11) {
		t.Fatal("double ForceWithdraw should be a no-op")
	}
	if !r.ForceAnnounce() {
		t.Fatal("ForceAnnounce should change state")
	}
	if r.ForceAnnounce() {
		t.Fatal("double ForceAnnounce should be a no-op")
	}
}

// TestProbeServerMatchesServers checks the scalar hot-path form against the
// full ServerView for every mode, overload state, and hashed server choice,
// including the caller-side redirect to the isolated server.
func TestProbeServerMatchesServers(t *testing.T) {
	cfg := DefaultConfig()
	sites := []*anycast.Site{
		sharedSite(4, 0),
		sharedSite(4, 2),
		isolateSite(3),
	}
	states := []State{
		{LossFrac: 0, ExtraDelayMs: 0},
		{LossFrac: 0, ExtraDelayMs: 35},
		{LossFrac: 0.4, ExtraDelayMs: 900},
		{LossFrac: 0.8, ExtraDelayMs: 1900},
	}
	for _, site := range sites {
		for _, st := range states {
			for eventIndex := 0; eventIndex <= 2; eventIndex++ {
				view := Servers(site, st, cfg, eventIndex)
				for hashed := 1; hashed <= site.NumServers; hashed++ {
					want := hashed
					if view.Active > 0 {
						want = view.Active
					}
					srv, responds, loss, delay := ProbeServer(site, st, cfg, eventIndex, hashed)
					if srv != want {
						t.Fatalf("%s mode=%v loss=%v ev=%d hashed=%d: server %d, want %d",
							site.Code, site.ServerMode, st.LossFrac, eventIndex, hashed, srv, want)
					}
					if responds != view.Responds[want-1] ||
						loss != view.LossFrac[want-1] ||
						delay != view.ExtraDelayMs[want-1] {
						t.Fatalf("%s mode=%v loss=%v ev=%d hashed=%d: (%v,%v,%v), want (%v,%v,%v)",
							site.Code, site.ServerMode, st.LossFrac, eventIndex, hashed,
							responds, loss, delay,
							view.Responds[want-1], view.LossFrac[want-1], view.ExtraDelayMs[want-1])
					}
				}
			}
		}
	}
}

// TestProbeServerAllocationFree pins the point of the scalar form.
func TestProbeServerAllocationFree(t *testing.T) {
	cfg := DefaultConfig()
	site := sharedSite(4, 2)
	st := State{LossFrac: 0.5, ExtraDelayMs: 800}
	allocs := testing.AllocsPerRun(100, func() {
		_, _, _, _ = ProbeServer(site, st, cfg, 1, 3)
	})
	if allocs != 0 {
		t.Errorf("ProbeServer allocates %.0f objects per call, want 0", allocs)
	}
}
