package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/rootevent/anycastddos/internal/atomicio"
)

// manifestName is the per-directory index of snapshots. The manifest is an
// optimization and a second checksum layer, not a single point of failure:
// LoadLatest falls back to scanning *.ckpt files (which self-validate via
// their trailer) when the manifest is missing or torn.
const manifestName = "manifest.json"

// keepSnapshots is how many recent snapshots Write retains. More than one,
// so a snapshot torn by a crash-during-rename still leaves a previous good
// generation to fall back to.
const keepSnapshots = 3

// Manifest indexes the snapshots in a checkpoint directory, newest last.
type Manifest struct {
	Version int             `json:"version"`
	Entries []ManifestEntry `json:"entries"`
}

// ManifestEntry describes one snapshot file with an independent checksum,
// so a torn snapshot is detected even if its own trailer happens to parse.
type ManifestEntry struct {
	File   string `json:"file"`
	Minute int    `json:"minute"`
	SHA256 string `json:"sha256"`
	Size   int    `json:"size"`
}

func snapName(minute int) string { return fmt.Sprintf("snap-%06d.ckpt", minute) }

// Write persists a snapshot crash-safely: the snapshot file and then the
// manifest are each written temp+fsync+rename, and only after the manifest
// commits are superseded snapshots pruned. A crash at any point leaves the
// directory loadable.
func Write(dir string, s *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: create dir %s: %w", dir, err)
	}
	data := Encode(s)
	file := snapName(s.Minute)
	if err := atomicio.WriteFileBytes(filepath.Join(dir, file), data); err != nil {
		return fmt.Errorf("checkpoint: write snapshot minute %d: %w", s.Minute, err)
	}
	sum := sha256.Sum256(data)
	m, err := readManifest(dir)
	if err != nil {
		// A torn or missing manifest is recoverable: rebuild it around the
		// snapshot we just wrote.
		m = &Manifest{Version: Version}
	}
	entries := m.Entries[:0:0]
	for _, e := range m.Entries {
		if e.Minute != s.Minute {
			entries = append(entries, e)
		}
	}
	entries = append(entries, ManifestEntry{
		File:   file,
		Minute: s.Minute,
		SHA256: hex.EncodeToString(sum[:]),
		Size:   len(data),
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].Minute < entries[j].Minute })
	var pruned []string
	if len(entries) > keepSnapshots {
		for _, e := range entries[:len(entries)-keepSnapshots] {
			pruned = append(pruned, e.File)
		}
		entries = entries[len(entries)-keepSnapshots:]
	}
	m.Version = Version
	m.Entries = entries
	if err := writeManifest(dir, m); err != nil {
		return err
	}
	for _, f := range pruned {
		// Best-effort: a leftover snapshot file is harmless (it is no
		// longer referenced and directory-scan fallback prefers newer).
		os.Remove(filepath.Join(dir, f))
	}
	return nil
}

func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: parse manifest: %w", err)
	}
	return &m, nil
}

func writeManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode manifest: %w", err)
	}
	data = append(data, '\n')
	if err := atomicio.WriteFileBytes(filepath.Join(dir, manifestName), data); err != nil {
		return fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	return nil
}

// LoadLatest returns the newest snapshot that decodes and checksums clean,
// falling back generation by generation: manifest entries newest-first
// (verifying each file against the manifest checksum), then — if the
// manifest itself is unusable — a directory scan of *.ckpt files whose
// self-validating trailers stand alone. Returns ErrNoSnapshot when nothing
// in the directory is usable.
func LoadLatest(dir string) (*Snapshot, error) {
	m, merr := readManifest(dir)
	if merr == nil {
		for i := len(m.Entries) - 1; i >= 0; i-- {
			e := m.Entries[i]
			s, err := loadVerified(filepath.Join(dir, e.File), e.SHA256)
			if err == nil {
				return s, nil
			}
		}
	}
	// Manifest unusable (or every entry bad): scan the directory. Snapshot
	// files self-validate, so newest-good wins.
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err == nil {
		sort.Sort(sort.Reverse(sort.StringSlice(names)))
		for _, name := range names {
			s, err := loadVerified(name, "")
			if err == nil {
				return s, nil
			}
		}
	}
	return nil, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
}

// loadVerified reads and decodes one snapshot file, additionally checking
// it against wantSHA (hex) when non-empty.
func loadVerified(path, wantSHA string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	if wantSHA != "" {
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != wantSHA {
			return nil, fmt.Errorf("%w: %s does not match manifest checksum", ErrCorrupt, path)
		}
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	return s, nil
}

// LatestMinute reports the newest snapshot minute recorded in the
// directory's manifest without decoding any snapshot. It is the cheap poll
// used by external supervisors (chaossoak's kill scheduler) to watch
// checkpoint progress; it returns ErrNoSnapshot when no manifest entry
// exists yet.
func LatestMinute(dir string) (int, error) {
	m, err := readManifest(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
		}
		return 0, err
	}
	if len(m.Entries) == 0 {
		return 0, fmt.Errorf("%w in %s", ErrNoSnapshot, dir)
	}
	return m.Entries[len(m.Entries)-1].Minute, nil
}
