package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// sampleSnapshot builds a representative snapshot with every field class
// populated, parameterized so tests can produce distinguishable states.
func sampleSnapshot(minute int) *Snapshot {
	s := &Snapshot{
		Minute:       minute,
		ConfigDigest: sha256.Sum256([]byte("config")),
		CityExcess: [][]float64{
			{0, 1.5, 2.25},
			{0.5, 0, float64(minute)},
		},
		Updates: []Update{
			{Minute: 3, Letter: 'C', Peer: 17, From: 2, To: 1},
			{Minute: int32(minute), Letter: 'K', Peer: 9, From: 0, To: 4},
		},
	}
	for _, l := range []byte{'C', 'K'} {
		s.Letters = append(s.Letters, Letter{
			Letter: l,
			Routers: []Router{
				{Announced: true, OverMinutes: 2, DownSince: -1},
				{Announced: false, OverMinutes: 0, DownSince: int32(minute)},
			},
			Active:       []bool{true, false},
			Overlay:      l == 'K',
			EffActive:    []bool{true, true},
			Epochs:       []Epoch{{Start: 0, Active: []bool{true, true}}, {Start: int32(minute / 2), Active: []bool{true, false}}},
			Loss:         [][]float32{{0, 0.25, 0.5}, {1, 0, 0}},
			Delay:        [][]float32{{30, 31, 32}, {90, 91, 92}},
			HasRoute:     [][]bool{{true, true, false}, {false, true, true}},
			LegitServed:  []float64{100, 101, 102.5},
			AttackServed: []float64{0, 5000, 4999.5},
			RetryServed:  []float64{1, 2, 3},
			Responses:    []float64{99, 98, 97},
		})
	}
	return s
}

func snapshotsEqual(a, b *Snapshot) bool {
	return bytes.Equal(Encode(a), Encode(b))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot(40)
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(s, got) {
		t.Fatal("decoded snapshot differs from original")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, b := Encode(sampleSnapshot(40)), Encode(sampleSnapshot(40))
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of identical state differ")
	}
	if bytes.Equal(a, Encode(sampleSnapshot(50))) {
		t.Fatal("distinct states encode identically")
	}
}

func TestDecodeEmptySnapshot(t *testing.T) {
	s := &Snapshot{Minute: 0}
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Minute != 0 || len(got.Letters) != 0 {
		t.Fatalf("round-trip of empty snapshot: %+v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := Encode(sampleSnapshot(40))
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"short", good[:10], ErrCorrupt},
		{"truncated body", good[:len(good)/2], ErrCorrupt},
		{"truncated trailer", good[:len(good)-5], ErrCorrupt},
		{"bad magic", append([]byte("NOTCKPT!"), good[8:]...), ErrCorrupt},
		{"flipped bit", flipBit(good, len(good)/2), ErrCorrupt},
		{"flipped trailer bit", flipBit(good, len(good)-1), ErrCorrupt},
		{"future version", reversion(good, Version+1), ErrVersion},
		{"zero version", reversion(good, 0), ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func flipBit(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0x40
	return out
}

// reversion rewrites the version field and recomputes the trailer, so the
// version check (not the checksum) is what rejects it.
func reversion(data []byte, v uint32) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[len(magic):], v)
	body := out[:len(out)-sha256.Size]
	sum := sha256.Sum256(body)
	copy(out[len(out)-sha256.Size:], sum[:])
	return out
}

func TestWriteLoadLatest(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadLatest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: err = %v, want ErrNoSnapshot", err)
	}
	for _, m := range []int{10, 20, 30} {
		if err := Write(dir, sampleSnapshot(m)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Minute != 30 {
		t.Fatalf("LoadLatest minute = %d, want 30", got.Minute)
	}
	if m, err := LatestMinute(dir); err != nil || m != 30 {
		t.Fatalf("LatestMinute = %d, %v", m, err)
	}
}

func TestWritePrunesOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	for _, m := range []int{10, 20, 30, 40, 50} {
		if err := Write(dir, sampleSnapshot(m)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != keepSnapshots {
		t.Fatalf("%d snapshot files on disk, want %d: %v", len(names), keepSnapshots, names)
	}
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != keepSnapshots || m.Entries[len(m.Entries)-1].Minute != 50 {
		t.Fatalf("manifest entries: %+v", m.Entries)
	}
}

// TestLoadLatestFallsBackToPreviousGood is the torn-write contract: when
// the newest snapshot file is truncated on disk, LoadLatest must return
// the previous generation rather than failing.
func TestLoadLatestFallsBackToPreviousGood(t *testing.T) {
	dir := t.TempDir()
	for _, m := range []int{10, 20} {
		if err := Write(dir, sampleSnapshot(m)); err != nil {
			t.Fatal(err)
		}
	}
	newest := filepath.Join(dir, snapName(20))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Minute != 10 {
		t.Fatalf("fallback minute = %d, want 10", got.Minute)
	}
}

// TestLoadLatestSurvivesTornManifest: with the manifest replaced by
// garbage, the directory scan must still find the newest self-validating
// snapshot.
func TestLoadLatestSurvivesTornManifest(t *testing.T) {
	dir := t.TempDir()
	for _, m := range []int{10, 20} {
		if err := Write(dir, sampleSnapshot(m)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Minute != 20 {
		t.Fatalf("scan fallback minute = %d, want 20", got.Minute)
	}
	// And the next Write rebuilds a usable manifest.
	if err := Write(dir, sampleSnapshot(30)); err != nil {
		t.Fatal(err)
	}
	if m, err := LatestMinute(dir); err != nil || m != 30 {
		t.Fatalf("after manifest rebuild: LatestMinute = %d, %v", m, err)
	}
}

func TestLoadLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, sampleSnapshot(10)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(10)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLatest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all-corrupt dir: err = %v, want ErrNoSnapshot", err)
	}
}

func TestLatestMinuteMissingDir(t *testing.T) {
	if _, err := LatestMinute(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}
