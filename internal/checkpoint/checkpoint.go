// Package checkpoint provides versioned, content-hashed snapshots of the
// evaluation engine's mutable state at minute boundaries, so a long event
// replay killed at minute 140 of 160 resumes from its last snapshot and
// finishes byte-identical to an uninterrupted run.
//
// A Snapshot is plain data: everything the engine mutates minute to minute
// (announcement state machines, routing-epoch history as effective
// announcement vectors, per-site service-quality prefixes, shared-fabric
// city load, the BGP collector's update stream) plus a digest of the
// configuration that determines the run. Everything *derivable* from the
// configuration — topology, deployment, population, routing tables — is
// deliberately absent: the resuming engine rebuilds it deterministically
// from the same seed and replays the epoch vectors through the same route
// computation, which keeps snapshots small and the format stable.
//
// The serialized form is deterministic (same state, same bytes): a fixed
// magic, a format version, a length-prefixed body, and a SHA-256 trailer
// over everything before it. Decode never panics on hostile input — torn,
// truncated, bit-flipped, or version-skewed snapshots return errors
// wrapping ErrCorrupt or ErrVersion, which is what lets the loader fall
// back to the previous good snapshot.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the current snapshot format version. Bump it whenever the
// body layout changes; old snapshots then fail with ErrVersion instead of
// decoding into garbage.
const Version = 1

// magic identifies a snapshot file. 8 bytes, never changes across versions.
const magic = "RDNSCKPT"

var (
	// ErrCorrupt marks a snapshot that is torn, truncated, or fails its
	// checksum; unwrap with errors.Is.
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion marks a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrNoSnapshot is returned by LoadLatest when a directory holds no
	// usable snapshot at all (missing, empty, or everything corrupt).
	ErrNoSnapshot = errors.New("checkpoint: no usable snapshot")
)

// Snapshot is the engine state at one minute boundary: Minute is the next
// minute to execute; every per-minute series holds exactly the [0, Minute)
// prefix.
type Snapshot struct {
	// Minute is the first unexecuted minute of the resumed run.
	Minute int
	// ConfigDigest identifies the run: a hash of the engine configuration,
	// attack schedule, and injected fault plan. Resuming under a different
	// configuration is an error, never a silent divergence.
	ConfigDigest [32]byte
	// CityExcess[city][m] is the shared-fabric over-capacity load, city
	// dimension in the engine's dense city order.
	CityExcess [][]float64
	// Updates is the BGP collector's update stream so far.
	Updates []Update
	// Letters is the per-letter mutable state, in the engine's sorted
	// letter order.
	Letters []Letter
}

// Update mirrors one bgpmon collector observation.
type Update struct {
	Minute int32
	Letter byte
	Peer   int32
	From   int32
	To     int32
}

// Router is the serialized announcement state machine of one uplink.
type Router struct {
	Announced   bool
	OverMinutes int32
	DownSince   int32
}

// Epoch records one routing regime as the effective announcement vector it
// was computed from. Tables are not serialized: route computation is a
// pure function of the vector, so the resuming engine replays the vectors
// through its (memoized, warm-started) computer and lands on bit-identical
// tables and cache state.
type Epoch struct {
	Start  int32
	Active []bool
}

// Letter is one letter's mutable engine state.
type Letter struct {
	Letter  byte
	Routers []Router
	Active  []bool
	// Overlay reports whether the fault overlay was materialized
	// (EffActive valid); fault-free runs keep it false so the resumed run
	// takes the exact pre-fault code paths.
	Overlay   bool
	EffActive []bool
	Epochs    []Epoch
	// Per-site per-minute service prefixes, [site][minute].
	Loss     [][]float32
	Delay    [][]float32
	HasRoute [][]bool
	// Per-minute letter traffic prefixes.
	LegitServed  []float64
	AttackServed []float64
	RetryServed  []float64
	Responses    []float64
}

// Encode serializes the snapshot deterministically: magic, version, body,
// SHA-256 trailer over everything before it.
func Encode(s *Snapshot) []byte {
	var e encoder
	e.bytes([]byte(magic))
	e.u32(Version)
	e.uvarint(uint64(s.Minute))
	e.bytes(s.ConfigDigest[:])
	e.uvarint(uint64(len(s.CityExcess)))
	for _, row := range s.CityExcess {
		e.f64s(row)
	}
	e.uvarint(uint64(len(s.Updates)))
	for _, u := range s.Updates {
		e.i32(u.Minute)
		e.byte(u.Letter)
		e.i32(u.Peer)
		e.i32(u.From)
		e.i32(u.To)
	}
	e.uvarint(uint64(len(s.Letters)))
	for i := range s.Letters {
		l := &s.Letters[i]
		e.byte(l.Letter)
		e.uvarint(uint64(len(l.Routers)))
		for _, r := range l.Routers {
			e.bool(r.Announced)
			e.i32(r.OverMinutes)
			e.i32(r.DownSince)
		}
		e.bools(l.Active)
		e.bool(l.Overlay)
		e.bools(l.EffActive)
		e.uvarint(uint64(len(l.Epochs)))
		for _, ep := range l.Epochs {
			e.i32(ep.Start)
			e.bools(ep.Active)
		}
		e.uvarint(uint64(len(l.Loss)))
		for si := range l.Loss {
			e.f32s(l.Loss[si])
			e.f32s(l.Delay[si])
			e.bools(l.HasRoute[si])
		}
		e.f64s(l.LegitServed)
		e.f64s(l.AttackServed)
		e.f64s(l.RetryServed)
		e.f64s(l.Responses)
	}
	sum := sha256.Sum256(e.buf)
	return append(e.buf, sum[:]...)
}

// Decode parses and validates a serialized snapshot. It returns an error
// wrapping ErrCorrupt for torn/truncated/bit-flipped input and ErrVersion
// for a format-version mismatch; it never panics.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+4+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrVersion, v, Version)
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch (torn write?)", ErrCorrupt)
	}
	d := decoder{data: body, off: len(magic) + 4}
	s := &Snapshot{}
	s.Minute = int(d.uvarint())
	d.read(s.ConfigDigest[:])
	s.CityExcess = make([][]float64, d.count(8))
	for i := range s.CityExcess {
		s.CityExcess[i] = d.f64s()
	}
	s.Updates = make([]Update, d.count(14))
	for i := range s.Updates {
		u := &s.Updates[i]
		u.Minute = d.i32()
		u.Letter = d.byte()
		u.Peer = d.i32()
		u.From = d.i32()
		u.To = d.i32()
	}
	s.Letters = make([]Letter, d.count(16))
	for i := range s.Letters {
		l := &s.Letters[i]
		l.Letter = d.byte()
		l.Routers = make([]Router, d.count(9))
		for j := range l.Routers {
			r := &l.Routers[j]
			r.Announced = d.bool()
			r.OverMinutes = d.i32()
			r.DownSince = d.i32()
		}
		l.Active = d.bools()
		l.Overlay = d.bool()
		l.EffActive = d.bools()
		l.Epochs = make([]Epoch, d.count(5))
		for j := range l.Epochs {
			l.Epochs[j].Start = d.i32()
			l.Epochs[j].Active = d.bools()
		}
		nSites := d.count(3)
		l.Loss = make([][]float32, nSites)
		l.Delay = make([][]float32, nSites)
		l.HasRoute = make([][]bool, nSites)
		for si := 0; si < nSites; si++ {
			l.Loss[si] = d.f32s()
			l.Delay[si] = d.f32s()
			l.HasRoute[si] = d.bools()
		}
		l.LegitServed = d.f64s()
		l.AttackServed = d.f64s()
		l.RetryServed = d.f64s()
		l.Responses = d.f64s()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after body", ErrCorrupt, len(body)-d.off)
	}
	if s.Minute < 0 {
		return nil, fmt.Errorf("%w: negative minute", ErrCorrupt)
	}
	return s, nil
}

// --- deterministic little-endian encoding helpers ---

type encoder struct{ buf []byte }

func (e *encoder) bytes(b []byte)   { e.buf = append(e.buf, b...) }
func (e *encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encoder) u32(v uint32)     { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i32(v int32)      { e.u32(uint32(v)) }
func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) f32(v float32) { e.u32(math.Float32bits(v)) }

func (e *encoder) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *encoder) bools(v []bool) {
	e.uvarint(uint64(len(v)))
	for _, b := range v {
		e.bool(b)
	}
}

func (e *encoder) f64s(v []float64) {
	e.uvarint(uint64(len(v)))
	for _, f := range v {
		e.f64(f)
	}
}

func (e *encoder) f32s(v []float32) {
	e.uvarint(uint64(len(v)))
	for _, f := range v {
		e.f32(f)
	}
}

// decoder reads the body with sticky errors and allocation caps: every
// count is validated against the bytes remaining, so a corrupted length
// cannot drive a multi-gigabyte allocation.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) read(dst []byte) {
	if d.err != nil {
		return
	}
	if d.remaining() < len(dst) {
		d.fail("truncated: need %d bytes", len(dst))
		return
	}
	copy(dst, d.data[d.off:])
	d.off += len(dst)
}

func (d *decoder) byte() byte {
	var b [1]byte
	d.read(b[:])
	return b[0]
}

func (d *decoder) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool")
		return false
	}
}

func (d *decoder) u32() uint32 {
	var b [4]byte
	d.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// count reads a collection length and caps it by the bytes remaining given
// a minimum per-element size.
func (d *decoder) count(minElemBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.remaining()/minElemBytes)+1 {
		d.fail("count %d exceeds remaining data", v)
		return 0
	}
	return int(v)
}

func (d *decoder) bools() []bool {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.bool()
	}
	return out
}

func (d *decoder) f64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		var b [8]byte
		d.read(b[:])
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	}
	return out
}

func (d *decoder) f32s() []float32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(d.u32())
	}
	return out
}
