package checkpoint

import (
	"errors"
	"testing"
)

// FuzzDecode asserts the decoder's hostile-input contract: any byte string
// either decodes cleanly and re-encodes to the identical bytes, or fails
// with an error wrapping ErrCorrupt or ErrVersion. It must never panic and
// never allocate proportionally to a corrupted length prefix.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(magic))
	good := Encode(sampleSnapshot(40))
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add(good[:len(good)/3])
	f.Add(flipBit(good, len(good)/4))
	f.Add(reversion(good, Version+7))
	f.Add(Encode(&Snapshot{Minute: 0}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("non-sentinel decode error: %v", err)
			}
			return
		}
		// Valid input must round-trip to the same bytes (the encoding is
		// canonical), which also re-exercises Encode on fuzz-found states.
		re := Encode(s)
		if string(re) != string(data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}
