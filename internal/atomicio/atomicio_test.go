package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "a,b\n1,2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Errorf("content = %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("directory holds %v, want only out.csv (no temp residue)", names)
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	for _, content := range []string{"first", "second"} {
		if err := WriteFileBytes(path, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := os.ReadFile(path)
	if string(got) != "second" {
		t.Errorf("content = %q, want second", got)
	}
}

// TestWriteFileCallbackError is the torn-write guarantee: a failing
// producer must leave neither the target file nor temp residue behind.
func TestWriteFileCallbackError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("target file exists after failed write")
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Errorf("temp residue after failed write: %v", names)
	}
}

// TestWriteFileErrorKeepsPrevious: a failed rewrite must leave the old
// content intact, not truncate it.
func TestWriteFileErrorKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := WriteFileBytes(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error { return errors.New("no") })
	if err == nil {
		t.Fatal("want error")
	}
	got, _ := os.ReadFile(path)
	if string(got) != "good" {
		t.Errorf("previous content clobbered: %q", got)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("want error for missing directory")
	}
}
