// Package atomicio provides crash-safe file writes: a file written through
// this package is either the complete new content or absent/unchanged —
// never a truncated half-write. An interrupted reproduction run (crash,
// OOM-kill, SIGKILL mid-event) must not leave torn CSV/JSON in out/ or a
// torn snapshot in a checkpoint directory, so every whole-file write in the
// repository goes through WriteFile (the repolint `atomicwrite` rule
// enforces this for the command-line harnesses).
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes path atomically: the content is produced into a
// temporary file in the same directory, fsynced, and renamed over path;
// the containing directory is then fsynced so the rename itself survives a
// crash. On any error the temporary file is removed and path is left
// untouched (either absent or holding its previous content).
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			// On the post-close failure paths (rename, dir sync) the handle
			// is already closed and this returns ErrClosed by design; the
			// temp file is being discarded, so its close error carries no
			// durability information either way.
			tmp.Close() //repolint:allow syncclose -- cleanup of a discarded temp file; double-close expected after rename failure
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	return nil
}

// WriteFileBytes is WriteFile for content already materialized in memory.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
