package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/rrl"
	"github.com/rootevent/anycastddos/internal/rssac"
)

// The parallel sharded evaluation engine.
//
// Within each simulated minute the 13 letters are independent except for
// one coupling: the shared-fabric cityExcess totals (and the failed-legit
// sum that drives retry load). Letters therefore run concurrently on a
// worker pool, each producing an ordered list of cross-letter
// contributions instead of writing shared state; a per-minute barrier then
// replays those contributions in letter order, one float addition at a
// time — the exact operation sequence of the sequential loop — so the
// result is byte-identical for every worker count.

// cityAdd is one site's contribution to a city's excess load for a minute.
type cityAdd struct {
	city int
	qps  float64
}

// letterTick carries everything one letter's minute step must hand across
// the per-minute barrier. Slices are reused minute to minute.
type letterTick struct {
	cityAdds   []cityAdd
	failed     []float64 // per-served-site failed legit QPS, in site order
	recomputed bool      // routing changed; letterState.pending holds the diff
	err        error
}

// ErrBadCapacity marks a site whose configured capacity cannot be
// evaluated; unwrap it from Run errors with errors.Is.
var ErrBadCapacity = errors.New("core: non-positive site capacity")

// ErrWorkerPanic marks a panic recovered inside a letter worker. The
// wrapping error names the letter and minute, so a poisoned model fails
// the run with context instead of crashing the process.
var ErrWorkerPanic = errors.New("core: letter worker panicked")

// guard runs fn on behalf of a letter worker, converting a panic into a
// wrapped error carrying the letter and minute.
func (ev *Evaluator) guard(ls *letterState, minute int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: letter %c at minute %d: %v: %w",
				ls.letter.Letter, minute, r, ErrWorkerPanic)
		}
	}()
	return fn()
}

// applyFaultOverlay refreshes the letter's effective announcement vector
// (router intent masked by fault-forced outages and link flaps) for a
// minute, returning whether it changed since the last refresh. Without a
// fault plan the overlay stays nil and every consumer reads ls.active
// directly, keeping fault-free runs byte-identical to pre-fault builds.
func (ev *Evaluator) applyFaultOverlay(ls *letterState, minute int) bool {
	if ev.flt == nil {
		return false
	}
	first := ls.effActive == nil
	if first {
		ls.effActive = make([]bool, len(ls.active))
	}
	changed := false
	lb := ls.letter.Letter
	for oi := range ls.active {
		up := ls.active[oi]
		if up {
			site := ls.states[oi].site
			if ev.flt.SiteForcedDown(lb, site, ls.uplinkOrd[oi], ls.siteUplinks[site], minute) {
				up = false
			}
		}
		if ls.effActive[oi] != up {
			ls.effActive[oi] = up
			changed = true
		}
	}
	// The first refresh populates the overlay before any epoch exists;
	// only report a change when an epoch must be recomputed.
	return changed && !first
}

// RunContext executes the minute loop under a context. It must be called
// exactly once before Probe/Dataset accessors; cancellation returns an
// error wrapping ctx.Err() and naming the minute reached, and leaves the
// evaluator unusable for further runs.
func (ev *Evaluator) RunContext(ctx context.Context) error {
	if ev.ran {
		return fmt.Errorf("core: evaluator already ran")
	}
	ev.ran = true
	return ev.runFrom(ctx, 0)
}

// runFrom executes the minute loop from a starting minute: 0 for a fresh
// run, or a checkpoint's resume minute with all mutable state already
// restored (ResumeRun). Per-minute series before start must hold their
// final values and the routing-epoch history must already be replayed;
// runFrom itself is the shared tail of both paths, so a resumed run
// executes the exact instruction sequence of the uninterrupted one.
func (ev *Evaluator) runFrom(ctx context.Context, start int) error {
	if ctx == nil {
		ctx = context.Background()
	}

	letters := ev.Deployment.SortedLetters()
	states := make([]*letterState, len(letters))
	for i, lb := range letters {
		states[i] = ev.letters[lb]
	}
	workers := ev.opts.resolveWorkers()
	if workers > len(states) {
		workers = len(states)
	}
	if workers < 1 {
		workers = 1
	}

	if start == 0 {
		// Initial routing epochs; no collector observations (nothing to diff
		// against yet), so order across letters does not matter. The fault
		// overlay must be in place before the first epoch so minute-0 faults
		// shape the initial catchments.
		initErrs := make([]error, len(states))
		ev.forEachLetter(workers, states, func(ls *letterState) {
			initErrs[ls.index] = ev.guard(ls, 0, func() error {
				ev.applyFaultOverlay(ls, 0)
				ev.computeEpoch(ls, 0)
				return nil
			})
		})
		for _, err := range initErrs {
			if err != nil {
				return err
			}
		}
	}

	events := ev.sched.Events
	ticks := make([]letterTick, len(states))

	// Pre-event retry load is zero; during events, legitimate queries
	// that fail at attacked letters are retried at the others (§3.2.2).
	for minute := start; minute < ev.Cfg.Minutes; minute++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: run canceled at minute %d: %w", minute, err)
		}
		evIdx := ev.sched.Active(minute)

		// Pass 1: per-letter site states, sharded over the worker pool.
		// guard turns a panicking letter into an error surfaced at the
		// barrier below.
		ev.forEachLetter(workers, states, func(ls *letterState) {
			tick := &ticks[ls.index]
			tick.err = ev.guard(ls, minute, func() error {
				return ev.stepLetter(ls, minute, evIdx, events, tick)
			})
			if hb := ev.opts.heartbeat; hb != nil {
				// Liveness signal for the supervisor's watchdog, emitted
				// from the worker goroutine so a wedged letter step is
				// visible as a missing beat.
				hb(ls.letter.Letter, minute)
			}
		})

		// Barrier: merge cross-letter state in letter order, replaying the
		// same float additions the sequential loop performs.
		var failedLegitQPS float64
		for i, ls := range states {
			t := &ticks[i]
			if t.err != nil {
				return t.err
			}
			for _, ca := range t.cityAdds {
				ev.cityExcess[ca.city][minute] += ca.qps
			}
			for _, f := range t.failed {
				failedLegitQPS += f
			}
			if t.recomputed {
				// Observe copies the changes, so the pending buffer is
				// reusable across minutes.
				ev.Collector.Observe(minute+1, ls.letter.Letter, ls.pending)
				ls.pending = ls.pending[:0]
			}
		}

		// Pass 2: retry load at un-attacked letters and RSSAC records —
		// cheap per-letter arithmetic, kept on the coordinating goroutine.
		unattacked := 0
		for _, lb := range letters {
			if evIdx >= 0 && !ev.sched.Targeted(lb) {
				unattacked++
			}
		}
		for i, lb := range letters {
			ls := states[i]
			if evIdx >= 0 && !ev.sched.Targeted(lb) && unattacked > 0 {
				ls.retryServed[minute] = failedLegitQPS / float64(unattacked)
			}
			// Responses: legit (and retries) answered 1:1; attack
			// responses survive RRL at the reported ~60% suppression.
			suppress := 0.0
			if ls.attackServed[minute] > 0 {
				total := ls.attackServed[minute] + ls.legitServed[minute]
				suppress = rrl.SuppressionModel(ls.attackServed[minute] / total)
			}
			ls.responses[minute] = ls.legitServed[minute] + ls.retryServed[minute] +
				ls.attackServed[minute]*(1-suppress)

			rec := rssac.Minute{
				Minute:          minute,
				LegitServedQPS:  ls.legitServed[minute],
				RetryServedQPS:  ls.retryServed[minute],
				AttackServedQPS: ls.attackServed[minute],
				ResponseQPS:     ls.responses[minute],
			}
			if evIdx >= 0 {
				rec.AttackQueryBytes = events[evIdx].QueryBytes
				rec.AttackResponseBytes = events[evIdx].ResponseBytes
			}
			if ev.flt != nil && ev.flt.MonitorGapAt(lb, minute) {
				// The letter's RSSAC-002 measurement is down: the minute
				// goes missing from the daily report (the paper's §2.4
				// data holes) instead of being recorded as zeros.
				ev.RSSAC.RecordGap(lb, minute)
			} else {
				ev.RSSAC.Record(lb, rec)
			}
		}

		// Checkpoint before the progress callback: a caller canceling from
		// inside progress at minute m+1 is then guaranteed the snapshot for
		// m+1 is already durable, and a canceled run writes nothing after
		// the cancel (the next action is the loop-top context check).
		if dir := ev.opts.checkpointDir; dir != "" &&
			(minute+1)%ev.opts.checkpointEvery == 0 && minute+1 < ev.Cfg.Minutes {
			if err := ev.writeCheckpoint(dir, minute+1, states); err != nil {
				return err
			}
		}

		if ev.opts.progress != nil {
			ev.opts.progress(Progress{Stage: StageRun, Done: minute + 1, Total: ev.Cfg.Minutes})
		}
	}

	// Epoch sequences are final: materialize each letter's minute -> epoch
	// index so post-run probe lookups are O(1).
	for _, ls := range states {
		ls.buildEpochIndex(ev.Cfg.Minutes)
	}

	ev.buildNLSeries()
	return nil
}

// forEachLetter runs fn over every letter state, fanning out across
// `workers` goroutines (inline when workers == 1). fn must only touch its
// own letter's state plus read-only evaluator fields.
func (ev *Evaluator) forEachLetter(workers int, states []*letterState, fn func(*letterState)) {
	if workers <= 1 || len(states) <= 1 {
		for _, ls := range states {
			fn(ls)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(states); i += workers {
				fn(states[i])
			}
		}(w)
	}
	wg.Wait()
}

// stepLetter advances one letter through one minute: site service quality,
// announcement state machines, and (when routing changed) the next epoch.
// Cross-letter contributions are appended to tick instead of written to
// shared state; everything else it touches is owned by this letter.
func (ev *Evaluator) stepLetter(ls *letterState, minute, evIdx int, events []attack.Event, tick *letterTick) error {
	tick.cityAdds = tick.cityAdds[:0]
	tick.failed = tick.failed[:0]
	tick.recomputed = false

	lb := ls.letter.Letter
	// A fault window opening or closing at this minute changes the
	// effective announcements: recompute routing before serving traffic.
	if ev.applyFaultOverlay(ls, minute) {
		ev.computeEpoch(ls, minute)
		tick.recomputed = true
	}
	ep := ls.epochAt(minute)
	attacked := evIdx >= 0 && ev.sched.Targeted(lb)
	var attackQPS float64
	if attacked {
		attackQPS = events[evIdx].PerLetterQPS
	}
	if ls.util == nil {
		ls.util = make([]float64, len(ls.letter.Sites))
	}
	utilization := ls.util
	for i := range utilization {
		utilization[i] = 0
	}
	for si, site := range ls.letter.Sites {
		if !ev.siteAnnounced(ls, si) {
			ls.hasRoute[si][minute] = false
			ls.loss[si][minute] = 1
			continue
		}
		if site.CapacityQPS <= 0 {
			return fmt.Errorf("core: letter %c site %d (%s) at minute %d: capacity %v: %w",
				lb, si, site.Code, minute, site.CapacityQPS, ErrBadCapacity)
		}
		capQPS := site.CapacityQPS
		if ev.flt != nil {
			// CapacityDegrade: part of the site's serving capacity is
			// gone (the compiled factor never reaches zero).
			capQPS *= ev.flt.CapacityFactor(lb, si, minute)
		}
		load := netsim.Load{
			LegitQPS:  ep.LegitFrac[si] * ls.letter.NormalQPS,
			AttackQPS: ep.AttackFrac[si] * attackQPS,
		}
		st, err := netsim.Evaluate(capQPS, load, ev.Cfg.Netsim)
		if err != nil {
			return fmt.Errorf("core: letter %c site %d (%s) at minute %d: %w",
				lb, si, site.Code, minute, err)
		}
		if ev.flt != nil {
			// PacketLossBurst: extra path loss toward the site, composed
			// with the queue model's own loss as independent processes.
			if xl := ev.flt.ExtraLossFrac(lb, si, minute); xl > 0 {
				st.LossFrac = 1 - (1-st.LossFrac)*(1-xl)
				st.ServedQPS = st.OfferedQPS * (1 - st.LossFrac)
			}
		}
		if site.ShallowBuffers && st.ExtraDelayMs > 60 {
			st.ExtraDelayMs = 60
		}
		utilization[si] = st.Utilization
		ls.hasRoute[si][minute] = true
		ls.loss[si][minute] = float32(st.LossFrac)
		ls.delay[si][minute] = float32(st.ExtraDelayMs)

		served := st.ServedQPS
		frac := 0.0
		if st.OfferedQPS > 0 {
			frac = served / st.OfferedQPS
		}
		ls.legitServed[minute] += load.LegitQPS * frac
		ls.attackServed[minute] += load.AttackQPS * frac
		tick.failed = append(tick.failed, load.LegitQPS*(1-frac))

		// Shared-infrastructure stress for collateral damage.
		if excess := st.OfferedQPS - served; excess > 0 {
			if ci, ok := ev.cityIdx[site.City.Code]; ok {
				tick.cityAdds = append(tick.cityAdds, cityAdd{city: ci, qps: excess})
			}
		}
	}
	// Step announcement state machines.
	changed := false
	act := ls.effective()
	for oi := range ls.states {
		os := &ls.states[oi]
		u := utilization[os.site]
		if os.flap && minute > 0 {
			// Session failures also follow shared-fabric congestion in
			// the site's city (previous minute's totals — fully merged at
			// the last barrier, so letter processing order cannot matter).
			if ci, ok := ev.cityIdx[ls.letter.Sites[os.site].City.Code]; ok {
				if cu := ev.cityExcess[ci][minute-1] / flapExcessQPS; cu > u {
					u = cu
				}
			}
		}
		if !act[oi] {
			u = 0
		}
		if os.router.Step(minute, u) {
			changed = true
		}
		ls.active[oi] = os.router.Announced()
	}
	// H-Root primary/backup: activate the backup while the primary is
	// down (fault-forced primary outages count as down).
	if ls.letter.PrimaryBackup && len(ls.letter.Sites) >= 2 {
		primaryUp := false
		for oi, o := range ls.origins {
			if o.Site == 0 && ls.active[oi] &&
				(ev.flt == nil || !ev.flt.SiteForcedDown(lb, 0, ls.uplinkOrd[oi], ls.siteUplinks[0], minute)) {
				primaryUp = true
			}
		}
		for oi, o := range ls.origins {
			if o.Site != 0 {
				want := !primaryUp
				if ls.active[oi] != want {
					if want {
						ls.states[oi].router.ForceAnnounce()
					} else {
						ls.states[oi].router.ForceWithdraw(minute)
					}
					ls.active[oi] = want
					changed = true
				}
			}
		}
	}
	if changed {
		// Router state moved; refresh the overlay so the new epoch sees
		// intent and faults as of the minute the epoch takes effect.
		ev.applyFaultOverlay(ls, minute+1)
		ev.computeEpoch(ls, minute+1)
		tick.recomputed = true
	}
	return nil
}
