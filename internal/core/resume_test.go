package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/checkpoint"
	"github.com/rootevent/anycastddos/internal/faults"
)

// resumeSchedule compresses the paper's two-event structure into the
// first 120 minutes, so short resume-equivalence runs still exercise
// withdrawals, flaps, retries, and RSSAC attack accounting.
func resumeSchedule() *attack.Schedule {
	return &attack.Schedule{
		Name: "resume-test",
		Events: []attack.Event{
			{Index: 1, Name: "event1", StartMinute: 20, EndMinute: 60,
				QName: "www.336901.com", QueryBytes: 44, ResponseBytes: 485, PerLetterQPS: 5e6},
			{Index: 2, Name: "event2", StartMinute: 80, EndMinute: 110,
				QueryBytes: 30, ResponseBytes: 485, PerLetterQPS: 4e6},
		},
		Spared: map[byte]bool{'L': true},
	}
}

// resumeFaultPlan covers every fault kind inside the 120-minute window.
func resumeFaultPlan() *faults.Plan {
	return &faults.Plan{
		Name: "resume-faults",
		Events: []faults.Event{
			{Kind: faults.SiteOutage, Start: 15, Duration: 30, Letter: 'K', Site: 0},
			{Kind: faults.LinkFlap, Start: 40, Duration: 25, Letter: 'E', Site: faults.AnySite, Seed: 3},
			{Kind: faults.CapacityDegrade, Start: 25, Duration: 50, Letter: 'B', Site: faults.AnySite, Severity: 0.6},
			{Kind: faults.PacketLossBurst, Start: 70, Duration: 30, Letter: 'A', Site: faults.AnySite, Severity: 0.3},
			{Kind: faults.VPChurn, Start: 30, Duration: 60, Severity: 0.2, Seed: 5},
			{Kind: faults.MonitorGap, Start: 50, Duration: 40, Letter: 'K'},
		},
	}
}

func resumeConfig(seed int64) Config {
	cfg := tinyConfig(seed)
	cfg.Minutes = 120
	return cfg
}

// fingerprintEv captures a completed evaluator's full output surface.
func fingerprintEv(t *testing.T, ev *Evaluator) runFingerprint {
	t.Helper()
	d, err := ev.Measure()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fp := runFingerprint{
		datasetHash: sha256.Sum256(buf.Bytes()),
		updates:     ev.Collector.Updates(),
		rssacK:      ev.RSSACReports('K'),
	}
	s, err := ev.SiteRouteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	fp.routesK0 = s.Values
	for _, nls := range ev.NLSeries {
		fp.nl = append(fp.nl, nls.Values)
	}
	return fp
}

// uninterruptedFingerprint runs the resume-test configuration start to
// finish with no checkpointing at all — the golden output every
// kill/resume sequence must reproduce byte for byte.
func uninterruptedFingerprint(t *testing.T, seed int64, workers int, plan *faults.Plan) runFingerprint {
	t.Helper()
	opts := []Option{WithWorkers(workers), WithSchedule(resumeSchedule())}
	if plan != nil {
		opts = append(opts, WithFaults(plan))
	}
	ev, err := NewEvaluator(resumeConfig(seed), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	return fingerprintEv(t, ev)
}

func compareFingerprints(t *testing.T, label string, got, want runFingerprint) {
	t.Helper()
	if got.datasetHash != want.datasetHash {
		t.Errorf("%s: dataset differs from uninterrupted run", label)
	}
	if !reflect.DeepEqual(got.updates, want.updates) {
		t.Errorf("%s: BGP update stream differs", label)
	}
	if !reflect.DeepEqual(got.rssacK, want.rssacK) {
		t.Errorf("%s: RSSAC reports differ", label)
	}
	if !reflect.DeepEqual(got.routesK0, want.routesK0) {
		t.Errorf("%s: route series differs", label)
	}
	if !reflect.DeepEqual(got.nl, want.nl) {
		t.Errorf("%s: .nl series differs", label)
	}
}

// TestResumeEquivalence is the tentpole's acceptance test: a run that is
// killed (canceled) and checkpoint-restored at every 10th epoch must end
// with output byte-identical to the uninterrupted run — at 1 and 4
// workers, with and without an injected fault plan. The first segment
// starts from an empty checkpoint directory (the fresh-run fallback), and
// every later segment restores from the snapshot the previous kill left
// behind.
func TestResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("many engine runs")
	}
	const seed = 7
	for _, workers := range []int{1, 4} {
		for _, faulted := range []bool{false, true} {
			var plan *faults.Plan
			name := "plain"
			if faulted {
				plan = resumeFaultPlan()
				name = "faulted"
			}
			golden := uninterruptedFingerprint(t, seed, workers, plan)
			dir := t.TempDir()
			cfg := resumeConfig(seed)
			baseOpts := func() []Option {
				opts := []Option{
					WithWorkers(workers),
					WithSchedule(resumeSchedule()),
					WithCheckpoint(dir, 10),
				}
				if plan != nil {
					opts = append(opts, WithFaults(plan))
				}
				return opts
			}
			// Kill at minute 10, 20, ..., 110: each segment runs until the
			// progress callback cancels it right after that minute's
			// checkpoint is durable.
			for stop := 10; stop < cfg.Minutes; stop += 10 {
				ctx, cancel := context.WithCancel(context.Background())
				opts := append(baseOpts(), WithContext(ctx), WithProgress(func(p Progress) {
					if p.Stage == StageRun && p.Done == stop {
						cancel()
					}
				}))
				_, err := ResumeRun(dir, cfg, opts...)
				cancel()
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s workers=%d stop=%d: err = %v, want context.Canceled", name, workers, stop, err)
				}
				if m, err := checkpoint.LatestMinute(dir); err != nil || m != stop {
					t.Fatalf("%s workers=%d stop=%d: latest checkpoint = %d, %v", name, workers, stop, m, err)
				}
			}
			// Final segment: resume from minute 110 and finish.
			ev, err := ResumeRun(dir, cfg, baseOpts()...)
			if err != nil {
				t.Fatalf("%s workers=%d: final resume: %v", name, workers, err)
			}
			compareFingerprints(t, name, fingerprintEv(t, ev), golden)
		}
	}
	// The fault plan must actually change the output, or the faulted half
	// of the matrix proves nothing.
	if uninterruptedFingerprint(t, seed, 1, nil).datasetHash ==
		uninterruptedFingerprint(t, seed, 1, resumeFaultPlan()).datasetHash {
		t.Error("resume fault plan left the dataset unchanged")
	}
}

// TestResumeRunFreshFallback is the guards-style table test: ResumeRun on
// a directory with no usable snapshot — missing, empty, or corrupt — must
// degrade to a fresh full run, not fail.
func TestResumeRunFreshFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("several engine runs")
	}
	const seed = 5
	golden := uninterruptedFingerprint(t, seed, 2, nil)
	cases := []struct {
		name string
		dir  func(t *testing.T) string
	}{
		{"missing dir", func(t *testing.T) string {
			return filepath.Join(t.TempDir(), "never-created")
		}},
		{"empty dir", func(t *testing.T) string {
			return t.TempDir()
		}},
		{"garbage manifest only", func(t *testing.T) string {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
			return dir
		}},
		{"corrupt snapshots only", func(t *testing.T) string {
			dir := t.TempDir()
			for _, name := range []string{"snap-000010.ckpt", "snap-000020.ckpt"} {
				if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			return dir
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev, err := ResumeRun(tc.dir(t), resumeConfig(seed),
				WithWorkers(2), WithSchedule(resumeSchedule()))
			if err != nil {
				t.Fatalf("fallback fresh run failed: %v", err)
			}
			compareFingerprints(t, tc.name, fingerprintEv(t, ev), golden)
		})
	}
}

// runCheckpointedUntil runs the resume config, canceling right after the
// checkpoint at minute `stop` commits, and returns the checkpoint dir.
func runCheckpointedUntil(t *testing.T, seed int64, stop int, dir string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := ResumeRun(dir, resumeConfig(seed),
		WithWorkers(2), WithSchedule(resumeSchedule()), WithCheckpoint(dir, 10),
		WithContext(ctx), WithProgress(func(p Progress) {
			if p.Stage == StageRun && p.Done == stop {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResumeTornSnapshotFallsBack: when the newest snapshot is torn on
// disk, resume silently falls back to the previous good generation and
// still finishes byte-identical.
func TestResumeTornSnapshotFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs")
	}
	const seed = 5
	golden := uninterruptedFingerprint(t, seed, 2, nil)
	dir := t.TempDir()
	runCheckpointedUntil(t, seed, 30, dir)
	// Tear the newest snapshot (minute 30); minute 20 remains good.
	newest := filepath.Join(dir, "snap-000030.ckpt")
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	ev, err := ResumeRun(dir, resumeConfig(seed),
		WithWorkers(2), WithSchedule(resumeSchedule()), WithCheckpoint(dir, 10))
	if err != nil {
		t.Fatal(err)
	}
	compareFingerprints(t, "torn-fallback", fingerprintEv(t, ev), golden)
}

// TestResumeRunConfigMismatch: a snapshot written under one configuration
// must refuse to resume under another.
func TestResumeRunConfigMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run")
	}
	dir := t.TempDir()
	runCheckpointedUntil(t, 5, 20, dir)
	_, err := ResumeRun(dir, resumeConfig(6),
		WithWorkers(2), WithSchedule(resumeSchedule()), WithCheckpoint(dir, 10))
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
	// A different fault plan is a different run, too.
	_, err = ResumeRun(dir, resumeConfig(5),
		WithWorkers(2), WithSchedule(resumeSchedule()), WithFaults(resumeFaultPlan()))
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("fault plan mismatch: err = %v, want ErrSnapshotMismatch", err)
	}
}
