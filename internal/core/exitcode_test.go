package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"clean", nil, ExitOK},
		{"generic", errors.New("disk full"), ExitFailure},
		{"worker panic", fmt.Errorf("letter K minute 12: %w", ErrWorkerPanic), ExitPanic},
		{"run panic", fmt.Errorf("attempt 0: %w", ErrRunPanic), ExitPanic},
		{"budget", fmt.Errorf("%w after 4 attempts: %w", ErrRestartBudget, ErrWorkerPanic), ExitRestartsExhausted},
		{"canceled", fmt.Errorf("run: %w", context.Canceled), ExitCanceled},
		{"deadline", fmt.Errorf("run: %w", context.DeadlineExceeded), ExitCanceled},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestExitCodeBudgetBeatsPanic pins the precedence: a supervised run that
// exhausted its restarts on repeated panics reports budget exhaustion, not
// the per-attempt panic cause — the parent needs to know supervision gave
// up, the cause is in the recovery report.
func TestExitCodeBudgetBeatsPanic(t *testing.T) {
	err := fmt.Errorf("%w after 4 attempts: %w", ErrRestartBudget, fmt.Errorf("letter K: %w", ErrWorkerPanic))
	if got := ExitCode(err); got != ExitRestartsExhausted {
		t.Fatalf("ExitCode = %d, want ExitRestartsExhausted", got)
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatal("give-up error should still unwrap to the per-attempt cause")
	}
}
