package core

import (
	"context"
	"runtime"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/faults"
)

// Stage names reported through Progress.
const (
	StageRun     = "run"     // the minute-by-minute event simulation
	StageMeasure = "measure" // the Atlas measurement campaign
)

// Progress is one progress report from a running evaluator stage.
type Progress struct {
	Stage string // StageRun or StageMeasure
	Done  int    // minutes simulated / VPs measured so far
	Total int    // total minutes / VPs in the stage
}

// ProgressFunc receives progress reports. During StageRun it is called from
// the coordinating goroutine at the per-minute barrier, where no worker is
// running — the evaluator's accessors are safe to call from inside it.
// During StageMeasure it may be called from any measurement shard (calls
// are serialized, but not pinned to one goroutine).
type ProgressFunc func(Progress)

// options collects the functional-option state of an Evaluator.
type options struct {
	workers      int // 0 = auto (GOMAXPROCS), otherwise an explicit count
	ctx          context.Context
	progress     ProgressFunc
	schedule     *attack.Schedule
	faults       *faults.Plan
	routingCache bool
	// checkpointDir enables periodic state snapshots; checkpointEvery is
	// the minute stride between them.
	checkpointDir   string
	checkpointEvery int
	// heartbeat receives one call per letter per simulated minute, from
	// the engine's worker goroutines (see WithHeartbeat).
	heartbeat HeartbeatFunc
}

func defaultOptions() options {
	return options{ctx: context.Background(), routingCache: true}
}

// resolveWorkers maps the configured worker count to a concrete one.
func (o *options) resolveWorkers() int {
	if o.workers > 0 {
		return o.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Option configures an Evaluator beyond the Config struct. Options are the
// additive half of the API: the Config struct keeps describing *what* to
// simulate, options describe *how* to execute it.
type Option func(*options)

// WithWorkers sets the number of worker goroutines used by Run (letters
// simulated concurrently within each minute) and Measure (VP shards).
// n <= 0 selects GOMAXPROCS. Output is byte-identical for every worker
// count at a given seed.
func WithWorkers(n int) Option {
	return func(o *options) {
		if n < 0 {
			n = 0
		}
		o.workers = n
	}
}

// WithContext attaches a context to the evaluator: Run and Measure (the
// context-free forms) honor it for cancellation. RunContext and
// MeasureContext override it per call.
func WithContext(ctx context.Context) Option {
	return func(o *options) {
		if ctx != nil {
			o.ctx = ctx
		}
	}
}

// WithProgress registers a callback receiving per-minute (Run) and per-VP
// (Measure) progress reports.
func WithProgress(fn ProgressFunc) Option {
	return func(o *options) { o.progress = fn }
}

// WithSchedule selects the attack scenario, overriding Config.Schedule.
func WithSchedule(s *attack.Schedule) Option {
	return func(o *options) { o.schedule = s }
}

// WithRoutingCache toggles the memoized, incremental routing-epoch path
// (on by default). Routing tables are a pure function of the effective
// announcement vector, so caching and warm-started incremental fixpoints
// produce byte-identical output either way; disabling the cache forces the
// reference from-scratch bgpsim.Compute on every epoch. This is the
// ablation knob the equivalence tests and benchmarks compare against.
func WithRoutingCache(enabled bool) Option {
	return func(o *options) { o.routingCache = enabled }
}

// WithCheckpoint enables periodic crash-safe snapshots of the engine's
// state under dir, one every everyN simulated minutes (everyN < 1 selects
// the default of 10). Snapshots are written at minute boundaries through
// the internal/checkpoint package — temp file, fsync, rename, checksummed
// manifest — so a killed process leaves a loadable directory for ResumeRun.
// Checkpointing never perturbs the simulation: a checkpointed run's output
// is byte-identical to the same run without WithCheckpoint.
func WithCheckpoint(dir string, everyN int) Option {
	return func(o *options) {
		o.checkpointDir = dir
		if everyN < 1 {
			everyN = 10
		}
		o.checkpointEvery = everyN
	}
}

// HeartbeatFunc receives liveness reports from the engine: one call per
// letter per simulated minute, made from the letter's worker goroutine as
// its minute step completes. Implementations must be safe for concurrent
// use and should be cheap (an atomic store); the run supervisor's watchdog
// is the intended consumer.
type HeartbeatFunc func(letter byte, minute int)

// WithHeartbeat registers a per-letter liveness callback, used by the run
// supervisor to detect stalled letter-workers.
func WithHeartbeat(fn HeartbeatFunc) Option {
	return func(o *options) { o.heartbeat = fn }
}

// WithFaults injects a deterministic fault plan into the run: site
// outages and link flaps are applied to the announcement state before
// each minute's routing, capacity degrades and loss bursts inside the
// queue model, VP churn in the measurement plane, and monitor gaps in
// RSSAC recording. Fault effects are pure per-letter functions of the
// plan, so worker-count equivalence is preserved: the same plan and seed
// produce byte-identical output at any worker count. A nil plan disables
// injection.
func WithFaults(p *faults.Plan) Option {
	return func(o *options) { o.faults = p }
}
