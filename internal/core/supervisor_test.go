package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRestartableClassification(t *testing.T) {
	cases := []struct {
		name    string
		err     error
		stalled bool
		want    bool
	}{
		{"worker panic", fmt.Errorf("letter K: %w", ErrWorkerPanic), false, true},
		{"run panic", fmt.Errorf("attempt 0: %w", ErrRunPanic), false, true},
		{"watchdog-induced cancel", fmt.Errorf("canceled: %w", context.Canceled), true, true},
		{"external cancel", fmt.Errorf("canceled: %w", context.Canceled), false, false},
		{"config error", errors.New("bad topology"), false, false},
		{"mismatch", fmt.Errorf("resume: %w", ErrSnapshotMismatch), false, false},
		{"stalled but unrelated error", errors.New("disk full"), true, false},
	}
	for _, tc := range cases {
		if got := restartable(tc.err, tc.stalled); got != tc.want {
			t.Errorf("%s: restartable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBackoffDelay(t *testing.T) {
	base, cap0 := 100*time.Millisecond, 800*time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		d := backoffDelay(base, cap0, attempt, rand.New(rand.NewSource(1)))
		if d > cap0 {
			t.Errorf("attempt %d: backoff %v exceeds cap %v", attempt, d, cap0)
		}
		if d < base/2 {
			t.Errorf("attempt %d: backoff %v below half the base", attempt, d)
		}
	}
	// Same seed, same schedule.
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for attempt := 0; attempt < 5; attempt++ {
		if backoffDelay(base, cap0, attempt, a) != backoffDelay(base, cap0, attempt, b) {
			t.Fatal("seeded backoff schedule is not reproducible")
		}
	}
}

func TestSuperviseHappyPath(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs")
	}
	const seed = 5
	golden := uninterruptedFingerprint(t, seed, 2, nil)
	ev, report, err := Supervise(context.Background(), resumeConfig(seed),
		SupervisorConfig{Dir: t.TempDir(), EveryN: 10, Seed: 1},
		WithWorkers(2), WithSchedule(resumeSchedule()))
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed || report.Attempts != 1 || len(report.Restarts) != 0 {
		t.Fatalf("report = %+v, want clean single attempt", report)
	}
	compareFingerprints(t, "supervised", fingerprintEv(t, ev), golden)
}

// TestSuperviseRecoversStall wedges the engine once (a progress callback
// that stops returning) and verifies the watchdog converts the missing
// heartbeats into a restart from the last checkpoint — with the final
// output still byte-identical to an uninterrupted run.
func TestSuperviseRecoversStall(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs with deliberate stalls")
	}
	const seed = 7
	golden := uninterruptedFingerprint(t, seed, 2, nil)
	var wedged atomic.Bool
	progress := func(p Progress) {
		if p.Stage == StageRun && p.Done == 30 && wedged.CompareAndSwap(false, true) {
			time.Sleep(900 * time.Millisecond) // far past the stall timeout
		}
	}
	ev, report, err := Supervise(context.Background(), resumeConfig(seed),
		SupervisorConfig{
			Dir: t.TempDir(), EveryN: 10, Seed: 2,
			StallTimeout: 150 * time.Millisecond,
			BackoffBase:  20 * time.Millisecond,
			BackoffCap:   50 * time.Millisecond,
			MaxRestarts:  5,
		},
		WithWorkers(2), WithSchedule(resumeSchedule()), WithProgress(progress))
	if err != nil {
		t.Fatalf("err = %v (report %+v)", err, report)
	}
	if !report.Completed || len(report.Restarts) == 0 {
		t.Fatalf("report = %+v, want at least one restart", report)
	}
	stalls := 0
	for _, r := range report.Restarts {
		if r.Cause == "stall" {
			stalls++
			if r.ResumeFromMinute < 20 {
				t.Errorf("stall restart resumed from minute %d, want >= 20 (checkpoints were durable)", r.ResumeFromMinute)
			}
		}
	}
	if stalls == 0 {
		t.Fatalf("no stall-classified restart in %+v", report.Restarts)
	}
	compareFingerprints(t, "stall-recovered", fingerprintEv(t, ev), golden)
}

// TestSuperviseRecoversPanic panics the run once (outside the worker
// guards) and verifies the supervisor recovers it into a restart.
func TestSuperviseRecoversPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs")
	}
	const seed = 5
	golden := uninterruptedFingerprint(t, seed, 2, nil)
	var fired atomic.Bool
	progress := func(p Progress) {
		if p.Stage == StageRun && p.Done == 25 && fired.CompareAndSwap(false, true) {
			panic("injected: progress handler died")
		}
	}
	ev, report, err := Supervise(context.Background(), resumeConfig(seed),
		SupervisorConfig{
			Dir: t.TempDir(), EveryN: 10, Seed: 3,
			BackoffBase: 20 * time.Millisecond, BackoffCap: 50 * time.Millisecond,
		},
		WithWorkers(2), WithSchedule(resumeSchedule()), WithProgress(progress))
	if err != nil {
		t.Fatalf("err = %v (report %+v)", err, report)
	}
	if !report.Completed || len(report.Restarts) != 1 {
		t.Fatalf("report = %+v, want exactly one restart", report)
	}
	r := report.Restarts[0]
	if r.Cause != "panic" || !strings.Contains(r.Detail, "injected") {
		t.Errorf("restart = %+v, want panic cause with injected detail", r)
	}
	// The panic fired after the minute-20 checkpoint committed.
	if r.ResumeFromMinute < 20 {
		t.Errorf("panic restart resumed from minute %d, want >= 20", r.ResumeFromMinute)
	}
	compareFingerprints(t, "panic-recovered", fingerprintEv(t, ev), golden)
}

// TestSuperviseGivesUp: a failure on every attempt must exhaust the
// restart budget and surface the last error, with the report saying so.
func TestSuperviseGivesUp(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs")
	}
	progress := func(p Progress) {
		if p.Stage == StageRun && p.Done == 15 {
			panic("injected: always fails")
		}
	}
	ev, report, err := Supervise(context.Background(), resumeConfig(5),
		SupervisorConfig{
			Dir: t.TempDir(), EveryN: 10, Seed: 4, MaxRestarts: 1,
			BackoffBase: 10 * time.Millisecond, BackoffCap: 20 * time.Millisecond,
		},
		WithWorkers(2), WithSchedule(resumeSchedule()), WithProgress(progress))
	if err == nil || !errors.Is(err, ErrRunPanic) {
		t.Fatalf("err = %v, want wrapped ErrRunPanic", err)
	}
	if !errors.Is(err, ErrRestartBudget) {
		t.Fatalf("err = %v, want wrapped ErrRestartBudget", err)
	}
	if got := ExitCode(err); got != ExitRestartsExhausted {
		t.Errorf("ExitCode = %d, want ExitRestartsExhausted", got)
	}
	if ev != nil {
		t.Error("failed supervision returned an evaluator")
	}
	if report.Completed || report.Attempts != 2 || len(report.Restarts) != 1 || report.Err == "" {
		t.Errorf("report = %+v, want 2 exhausted attempts", report)
	}
}

// TestSuperviseExternalCancel: caller cancellation is not a recoverable
// failure — the supervisor must stop without restarting.
func TestSuperviseExternalCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	progress := func(p Progress) {
		if p.Stage == StageRun && p.Done == 15 {
			cancel()
		}
	}
	_, report, err := Supervise(ctx, resumeConfig(5),
		SupervisorConfig{Dir: t.TempDir(), EveryN: 10, Seed: 5},
		WithWorkers(2), WithSchedule(resumeSchedule()), WithProgress(progress))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report.Completed || len(report.Restarts) != 0 {
		t.Errorf("report = %+v, want no restarts on external cancel", report)
	}
}

func TestSuperviseRequiresDir(t *testing.T) {
	_, report, err := Supervise(context.Background(), resumeConfig(5), SupervisorConfig{})
	if err == nil || report == nil {
		t.Fatalf("err = %v, report = %v; want error and report", err, report)
	}
}
