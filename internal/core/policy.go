// Package core ties the substrate packages into the paper's two central
// artifacts: the §2.2 analytical model of anycast defense policies
// (policy.go) and the full two-day event reproduction (evaluator.go), which
// drives topology, routing, traffic, and measurement together and exposes
// the atlas.World interface the measurement platform probes against.
//
// Beyond the attack schedule itself, an evaluator can run under a seeded
// fault plan (WithFaults, internal/faults): site outages, link flaps,
// capacity degradations, VP churn, packet-loss bursts, and monitor gaps
// are injected deterministically, and the run stays byte-identical across
// worker counts. Worker panics never escape Run — they surface as errors
// wrapping ErrWorkerPanic that name the letter and minute.
package core

import (
	"errors"
	"fmt"
)

// Group is a routing unit in the §2.2 thought experiment: a set of clients
// and an attack volume that always move between sites together (an "ISP").
// Prefs lists the sites the group can be routed to, in preference order;
// withdrawals walk down this list.
type Group struct {
	Name      string
	Clients   int
	AttackQPS float64
	Prefs     []int
}

// Scenario is a deployment plus its traffic groups.
type Scenario struct {
	// Capacity[i] is site i's capacity in queries/s.
	Capacity []float64
	Groups   []Group
}

// Validate checks scenario invariants.
func (s *Scenario) Validate() error {
	if len(s.Capacity) == 0 {
		return errors.New("core: scenario has no sites")
	}
	for i, c := range s.Capacity {
		if c <= 0 {
			return fmt.Errorf("core: site %d capacity %v", i, c)
		}
	}
	for _, g := range s.Groups {
		if len(g.Prefs) == 0 {
			return fmt.Errorf("core: group %q has no site preferences", g.Name)
		}
		for _, p := range g.Prefs {
			if p < 0 || p >= len(s.Capacity) {
				return fmt.Errorf("core: group %q prefers unknown site %d", g.Name, p)
			}
		}
	}
	return nil
}

// Happiness evaluates an assignment (group index -> position in the
// group's preference list) and returns H — the number of served clients.
// A site serves its clients iff the attack volume landing on it stays
// within capacity; overloaded sites serve nobody (the paper's binary
// accounting in §2.2, which ignores legitimate volume as negligible).
func (s *Scenario) Happiness(assign []int) (int, error) {
	if len(assign) != len(s.Groups) {
		return 0, fmt.Errorf("core: assignment covers %d of %d groups", len(assign), len(s.Groups))
	}
	load := make([]float64, len(s.Capacity))
	clients := make([]int, len(s.Capacity))
	for gi, pos := range assign {
		g := s.Groups[gi]
		if pos < 0 || pos >= len(g.Prefs) {
			return 0, fmt.Errorf("core: group %q assignment %d out of range", g.Name, pos)
		}
		site := g.Prefs[pos]
		load[site] += g.AttackQPS
		clients[site] += g.Clients
	}
	h := 0
	for i := range s.Capacity {
		if load[i] <= s.Capacity[i] {
			h += clients[i]
		}
	}
	return h, nil
}

// DefaultAssignment routes every group to its first preference.
func (s *Scenario) DefaultAssignment() []int {
	return make([]int, len(s.Groups))
}

// Best searches all assignments (groups at any position of their
// preference lists — i.e., any combination of withdrawals) and returns one
// that maximizes happiness. The search is exhaustive; thought-experiment
// scenarios have a handful of groups.
func (s *Scenario) Best() (assign []int, h int, err error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	cur := make([]int, len(s.Groups))
	best := make([]int, len(s.Groups))
	bestH := -1
	var rec func(i int)
	rec = func(i int) {
		if i == len(s.Groups) {
			hh, herr := s.Happiness(cur)
			if herr == nil && hh > bestH {
				bestH = hh
				copy(best, cur)
			}
			return
		}
		for p := range s.Groups[i].Prefs {
			cur[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestH, nil
}

// PaperScenario builds the Figure 2 deployment: sites s1 = s2 = s,
// S3 = 10*s; clients c0, c1 in s1's catchment, c2 in s2's, c3 in S3's;
// attackers A0 (pinned to s1) and A1 (arriving through ISP1 with c1, so it
// can be re-routed to s2 or S3).
func PaperScenario(s float64, a0, a1 float64) *Scenario {
	return &Scenario{
		Capacity: []float64{s, s, 10 * s},
		Groups: []Group{
			// A0 and c0 sit directly behind s1: absorbing is their only
			// "move" (their traffic cannot be steered elsewhere except by
			// withdrawing s1 entirely, which sends them to s2 then S3).
			{Name: "ISP0(c0,A0)", Clients: 1, AttackQPS: a0, Prefs: []int{0, 1, 2}},
			{Name: "ISP1(c1,A1)", Clients: 1, AttackQPS: a1, Prefs: []int{0, 1, 2}},
			{Name: "c2", Clients: 1, Prefs: []int{1, 2}},
			{Name: "c3", Clients: 1, Prefs: []int{2}},
		},
	}
}

// Case identifies which of the five §2.2 regimes a (A0, A1) attack pair
// falls into for the paper's deployment, with the paper's predicted optimal
// happiness.
type Case struct {
	Number    int
	BestH     int
	Rationale string
}

// ClassifyPaperCase applies the §2.2 case analysis for capacities
// s1 = s2 = s, S3 = 10*s.
func ClassifyPaperCase(s, a0, a1 float64) Case {
	s3 := 10 * s
	switch {
	case a0+a1 <= s:
		return Case{1, 4, "attack within s1's capacity; nobody hurt"}
	case a0 <= s && a1 <= s:
		return Case{2, 4, "s1 overwhelmed but splitting A0/A1 across s1,s2 serves everyone"}
	case a0 > s && a0+a1 <= s3:
		return Case{3, 4, "small sites overwhelmed; withdrawing to S3 serves everyone"}
	case a0 > s && a0+a1 > s3 && a1 <= s3 && a0 <= s3:
		return Case{4, 3, "re-route ISP1 to S3; c0 sacrificed at s1"}
	default:
		return Case{5, 2, "A0 overwhelms any site; s1 becomes a degraded absorber"}
	}
}
