package core

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/topo"
)

// Upstream adapts the completed simulation to the resolver package's view:
// one query attempt from a client AS to one letter at one minute. Each
// call draws a fresh deterministic coin, so retries within a minute are
// independent trials (unlike Atlas probes, which are single-shot).
type Upstream struct {
	ev   *Evaluator
	asn  topo.ASN
	salt uint64
	seq  uint64
}

// Upstream returns a resolver-facing query interface for a client AS.
// The salt separates independent resolver populations.
func (ev *Evaluator) Upstream(asn topo.ASN, salt int64) (*Upstream, error) {
	if !ev.ran {
		return nil, fmt.Errorf("core: Run() must complete before Upstream()")
	}
	if int(asn) < 0 || int(asn) >= ev.Graph.N() {
		return nil, fmt.Errorf("core: unknown AS %d", asn)
	}
	return &Upstream{ev: ev, asn: asn, salt: uint64(salt)}, nil
}

// Query implements resolver.Upstream against the simulated event.
func (u *Upstream) Query(letter byte, minute int) (bool, float64) {
	ev := u.ev
	if minute < 0 {
		minute = 0
	}
	if minute >= ev.Cfg.Minutes {
		minute = ev.Cfg.Minutes - 1
	}
	ls, ok := ev.letters[letter]
	if !ok {
		return false, 0
	}
	ep := ls.epochAt(minute)
	if ep == nil {
		return false, 0
	}
	site := ep.Table.SiteOf(u.asn)
	if site < 0 {
		return false, 0
	}
	s := ls.letter.Sites[site]
	if !ls.hasRoute[site][minute] {
		return false, 0
	}
	loss := float64(ls.loss[site][minute])
	delay := float64(ls.delay[site][minute])
	if !ev.sched.Targeted(letter) {
		if ci, ok := ev.cityIdx[s.City.Code]; ok {
			cl := collateralLoss(ev.cityExcess[ci][minute], collateralFullQPS)
			if cl > 0.45 {
				cl = 0.45
			}
			loss = 1 - (1-loss)*(1-cl)
		}
	}
	u.seq++
	coin := float64(mix64(u.salt^uint64(u.asn)<<28^uint64(letter)<<20^uint64(uint32(minute))^u.seq<<44)>>11) / float64(1<<53)
	if coin < loss {
		return false, 0
	}
	base := ev.cityRTT(ev.Graph.AS(u.asn).City.Code, s.City.Code)
	rtt := base + delay
	if rtt >= netsimTimeoutMs {
		return false, 0
	}
	return true, rtt
}

// netsimTimeoutMs is the resolver-side per-attempt timeout, aligned with
// resolver.AttemptTimeoutMs but kept independent so the packages do not
// import each other.
const netsimTimeoutMs = 1000
