package core

// Process exit codes shared by the command-line harnesses. A parent
// supervisor (the campaign runner, CI scripts) classifies a child run by
// its exit status instead of parsing logs, so the codes are part of the
// public contract of `rootevent -supervise` and the campaign scenario
// child: clean success, generic failure, panic, restart-budget
// exhaustion, and context cancellation are all distinct.

import (
	"context"
	"errors"
)

// Exit codes returned by supervised runs. ExitPanic deliberately matches
// the Go runtime's exit status for an unrecovered panic, so a crash that
// escapes every recover still classifies correctly.
const (
	// ExitOK is a clean, complete run.
	ExitOK = 0
	// ExitFailure is any failure not covered by a more specific code
	// (configuration errors, I/O failures).
	ExitFailure = 1
	// ExitPanic marks a run that panicked — recovered into ErrWorkerPanic
	// or ErrRunPanic, or unrecovered (the runtime itself exits 2).
	ExitPanic = 2
	// ExitRestartsExhausted marks a supervised run that kept failing until
	// the restart budget ran out (ErrRestartBudget).
	ExitRestartsExhausted = 3
	// ExitCanceled marks a run terminated by context cancellation or a
	// deadline, not by its own failure.
	ExitCanceled = 4
	// ExitUsage marks a run rejected before it started: bad flags, an
	// unreadable input, a malformed baseline. The value follows the BSD
	// sysexits EX_USAGE convention and stays clear of the run-outcome
	// codes above.
	ExitUsage = 64
)

// ErrRestartBudget marks a supervised run abandoned because every restart
// attempt failed; Supervise wraps it into its terminal error alongside
// the last attempt's failure.
var ErrRestartBudget = errors.New("core: restart budget exhausted")

// ExitCode maps a run's terminal error to the documented process exit
// code. Budget exhaustion wins over the wrapped per-attempt cause (a run
// that exhausted its restarts on repeated panics is ExitRestartsExhausted,
// not ExitPanic): the parent cares that supervision gave up, the per-cause
// detail stays in the error text and the recovery report.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrRestartBudget):
		return ExitRestartsExhausted
	case errors.Is(err, ErrWorkerPanic), errors.Is(err, ErrRunPanic):
		return ExitPanic
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ExitCanceled
	default:
		return ExitFailure
	}
}
