package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/topo"
)

// tinyConfig is the smallest configuration with both event windows and
// enough sites for routing churn; used for the engine-equivalence matrix.
func tinyConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Topology = &topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: seed}
	cfg.VPs = 150
	cfg.BotnetOrigins = 25
	return cfg
}

// runFingerprint runs one evaluator to completion and captures everything
// the engine emits: the serialized dataset hash, the BGP collector's update
// stream, RSSAC reports, route series, and the .nl collateral series.
type runFingerprint struct {
	datasetHash [32]byte
	updates     interface{}
	rssacK      interface{}
	routesK0    []float64
	nl          [][]float64
}

func fingerprint(t *testing.T, seed int64, workers int, extra ...Option) runFingerprint {
	t.Helper()
	opts := append([]Option{WithWorkers(workers)}, extra...)
	ev, err := NewEvaluator(tinyConfig(seed), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := ev.Measure()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fp := runFingerprint{
		datasetHash: sha256.Sum256(buf.Bytes()),
		updates:     ev.Collector.Updates(),
		rssacK:      ev.RSSACReports('K'),
	}
	s, err := ev.SiteRouteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	fp.routesK0 = s.Values
	for _, nls := range ev.NLSeries {
		fp.nl = append(fp.nl, nls.Values)
	}
	return fp
}

// TestParallelEngineEquivalence is the golden-equivalence matrix of the
// parallel engine: for each seed, every worker count must reproduce the
// sequential (workers=1) run bit-for-bit — datasets, BGP update streams,
// RSSAC reports, route series, and collateral series.
func TestParallelEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full engine runs")
	}
	for _, seed := range []int64{1, 42} {
		base := fingerprint(t, seed, 1)
		for _, workers := range []int{2, 4, 8} {
			got := fingerprint(t, seed, workers)
			if got.datasetHash != base.datasetHash {
				t.Errorf("seed %d workers %d: dataset differs from sequential", seed, workers)
			}
			if !reflect.DeepEqual(got.updates, base.updates) {
				t.Errorf("seed %d workers %d: BGP update stream differs", seed, workers)
			}
			if !reflect.DeepEqual(got.rssacK, base.rssacK) {
				t.Errorf("seed %d workers %d: RSSAC reports differ", seed, workers)
			}
			if !reflect.DeepEqual(got.routesK0, base.routesK0) {
				t.Errorf("seed %d workers %d: route series differs", seed, workers)
			}
			if !reflect.DeepEqual(got.nl, base.nl) {
				t.Errorf("seed %d workers %d: .nl series differs", seed, workers)
			}
		}
	}
	// Different seeds must still diverge.
	if fingerprint(t, 1, 4).datasetHash == fingerprint(t, 42, 4).datasetHash {
		t.Error("different seeds produced identical datasets")
	}
}

// TestParallelEngineEquivalenceWithFaults extends the golden-equivalence
// guarantee to faulted runs: a heavy random fault plan must not introduce
// any worker-count dependence, and must actually change the output.
func TestParallelEngineEquivalenceWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full engine runs")
	}
	plan := faults.RandomPlan(11, faults.HeavyProfile())
	withFaults := WithFaults(plan)
	base := fingerprint(t, 1, 1, withFaults)
	for _, workers := range []int{2, 4, 8} {
		got := fingerprint(t, 1, workers, withFaults)
		if got.datasetHash != base.datasetHash {
			t.Errorf("workers %d: faulted dataset differs from sequential", workers)
		}
		if !reflect.DeepEqual(got.updates, base.updates) {
			t.Errorf("workers %d: faulted BGP update stream differs", workers)
		}
		if !reflect.DeepEqual(got.rssacK, base.rssacK) {
			t.Errorf("workers %d: faulted RSSAC reports differ", workers)
		}
		if !reflect.DeepEqual(got.routesK0, base.routesK0) {
			t.Errorf("workers %d: faulted route series differs", workers)
		}
		if !reflect.DeepEqual(got.nl, base.nl) {
			t.Errorf("workers %d: faulted .nl series differs", workers)
		}
	}
	// The memoized incremental routing path must be invisible under fault
	// injection too: disabling the cache (the reference from-scratch
	// Compute on every epoch) reproduces the faulted run bit-for-bit at
	// every worker count.
	for _, workers := range []int{1, 4} {
		got := fingerprint(t, 1, workers, withFaults, WithRoutingCache(false))
		if got.datasetHash != base.datasetHash {
			t.Errorf("workers %d: faulted cache-off dataset differs", workers)
		}
		if !reflect.DeepEqual(got.updates, base.updates) {
			t.Errorf("workers %d: faulted cache-off BGP update stream differs", workers)
		}
		if !reflect.DeepEqual(got.rssacK, base.rssacK) {
			t.Errorf("workers %d: faulted cache-off RSSAC reports differ", workers)
		}
	}
	// The plan must have observable effect — otherwise this test proves
	// nothing about fault determinism.
	if base.datasetHash == fingerprint(t, 1, 4).datasetHash {
		t.Error("heavy fault plan left the dataset unchanged")
	}
}

// TestRoutingCacheEquivalence is the byte-identity proof for the routing
// fast path: the memoized, warm-started incremental computation (the
// default) must reproduce the reference full-sweep run — dataset, BGP
// update stream, RSSAC reports, route and collateral series — bit-for-bit,
// at every worker count.
func TestRoutingCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full engine runs")
	}
	for _, seed := range []int64{1, 42} {
		ref := fingerprint(t, seed, 1, WithRoutingCache(false))
		for _, workers := range []int{1, 4} {
			got := fingerprint(t, seed, workers)
			if got.datasetHash != ref.datasetHash {
				t.Errorf("seed %d workers %d: cached dataset differs from reference", seed, workers)
			}
			if !reflect.DeepEqual(got.updates, ref.updates) {
				t.Errorf("seed %d workers %d: cached BGP update stream differs", seed, workers)
			}
			if !reflect.DeepEqual(got.rssacK, ref.rssacK) {
				t.Errorf("seed %d workers %d: cached RSSAC reports differ", seed, workers)
			}
			if !reflect.DeepEqual(got.routesK0, ref.routesK0) {
				t.Errorf("seed %d workers %d: cached route series differs", seed, workers)
			}
			if !reflect.DeepEqual(got.nl, ref.nl) {
				t.Errorf("seed %d workers %d: cached .nl series differs", seed, workers)
			}
		}
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	ev, err := NewEvaluator(tinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ev.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var lastMinute int
	ev, err := NewEvaluator(tinyConfig(7),
		WithWorkers(4),
		WithContext(ctx),
		WithProgress(func(p Progress) {
			if p.Stage == StageRun {
				lastMinute = p.Done
				if p.Done == 25 {
					cancel()
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	err = ev.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The engine checks the context at the next minute boundary, so the
	// run must stop right after the canceling callback, not at the end.
	if lastMinute > 30 {
		t.Errorf("run continued to minute %d after cancellation at 25", lastMinute)
	}
	if _, err := ev.Measure(); err == nil {
		t.Error("Measure after canceled Run should fail")
	}
}

func TestMeasureContextCancellation(t *testing.T) {
	ev, err := NewEvaluator(tinyConfig(9), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ev.MeasureContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A fresh context still measures fine afterwards.
	if _, err := ev.MeasureContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestProgressReports(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	finals := map[string]Progress{}
	ev, err := NewEvaluator(tinyConfig(5), WithWorkers(3), WithProgress(func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		counts[p.Stage]++
		finals[p.Stage] = p
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Measure(); err != nil {
		t.Fatal(err)
	}
	if got := counts[StageRun]; got != ev.Cfg.Minutes {
		t.Errorf("run progress calls = %d, want %d", got, ev.Cfg.Minutes)
	}
	if f := finals[StageRun]; f.Done != f.Total || f.Total != ev.Cfg.Minutes {
		t.Errorf("final run progress = %+v", f)
	}
	if got := counts[StageMeasure]; got != ev.Cfg.VPs {
		t.Errorf("measure progress calls = %d, want %d", got, ev.Cfg.VPs)
	}
	if f := finals[StageMeasure]; f.Done != f.Total || f.Total != ev.Cfg.VPs {
		t.Errorf("final measure progress = %+v", f)
	}
}

func TestWithScheduleOption(t *testing.T) {
	june := attack.June2016Schedule()
	ev, err := NewEvaluator(tinyConfig(3), WithSchedule(june))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Schedule().Name != "june2016" {
		t.Errorf("schedule = %q, want june2016", ev.Schedule().Name)
	}
	// The option wins over Config.Schedule.
	cfg := tinyConfig(3)
	cfg.Schedule = attack.Nov2015Schedule()
	ev2, err := NewEvaluator(cfg, WithSchedule(june))
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Schedule().Name != "june2016" {
		t.Errorf("option did not override Config.Schedule: %q", ev2.Schedule().Name)
	}
}

// TestAccessorDefensiveCopies enforces the documented sharing contract of
// the read accessors: returned slices are copies (or freshly built), so
// caller mutations cannot corrupt evaluator state.
func TestAccessorDefensiveCopies(t *testing.T) {
	ev, _ := getShared(t)

	sites := ev.LetterSites('K')
	if len(sites) == 0 {
		t.Fatal("no K sites")
	}
	sites[0] = nil
	again := ev.LetterSites('K')
	if again[0] == nil {
		t.Error("LetterSites returned a live slice; caller mutation visible")
	}

	if ev.RSSACReports('Z') != nil {
		t.Error("unknown letter should have nil reports")
	}
	reps := ev.RSSACReports('K')
	if len(reps) == 0 {
		t.Fatal("no K reports")
	}
	reps[0] = nil
	if ev.RSSACReports('K')[0] == nil {
		t.Error("RSSACReports returned a live slice; caller mutation visible")
	}

	s1, err := ev.SiteRouteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	s1.Values[0] = -1
	s2, err := ev.SiteRouteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Values[0] == -1 {
		t.Error("SiteRouteSeries shares Values across calls")
	}
}

// TestConcurrentReaders drives every read accessor from many goroutines
// while a measurement campaign runs — the -race guarantee the engine's
// documentation makes for completed runs.
func TestConcurrentReaders(t *testing.T) {
	ev, _ := getShared(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := ev.MeasureContext(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, lb := range ev.Deployment.SortedLetters() {
				_ = ev.LetterSites(lb)
				_ = ev.RSSACReports(lb)
				if _, err := ev.SiteRouteSeries(lb, 0); err != nil {
					t.Error(err)
				}
				_, _, _, _, _ = ev.LetterServedSeries(lb)
				vp := &ev.Population.VPs[i*7]
				_ = ev.ProbeOutcome(vp, lb, 300+i)
				_ = ev.SiteAt(lb, vp.ASN, 500)
				_, _ = ev.TraceAt(lb, vp.ASN, 500)
			}
		}(i)
	}
	wg.Wait()
}
