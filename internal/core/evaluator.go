package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/rootevent/anycastddos/internal/anycast"
	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/bgpmon"
	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/geo"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/rssac"
	"github.com/rootevent/anycastddos/internal/stats"
	"github.com/rootevent/anycastddos/internal/topo"
)

// Config parameterizes a full event reproduction.
type Config struct {
	Seed int64

	// Topology; zero value selects topo.DefaultConfig(Seed).
	Topology *topo.Config

	// VPs is the Atlas population size (9000 reproduces the paper's
	// scale; smaller values keep tests fast with the same dynamics).
	VPs int

	// Minutes simulated; defaults to the two observation days.
	Minutes int

	// BotnetOrigins is how many stub ASes source attack traffic.
	BotnetOrigins int

	// Collectors is the BGPmon peer count (the paper used 152).
	Collectors int

	// RawLetters get per-probe retention (needed for Figures 11-13).
	RawLetters []byte

	// Netsim holds the queue model calibration.
	Netsim netsim.Config

	// Withdraw dynamics.
	TriggerRatio    float64 // utilization counting as overload (default 2.5)
	HoldMinutes     int     // sustained overload before withdrawing (default 8)
	CooldownMinutes int     // base re-announce delay (default 70)
	// FlapHold/FlapCooldown drive emergent session failures at Absorb
	// sites with flappy uplinks.
	FlapHold     int // default 6
	FlapCooldown int // default 25

	// ForcePolicy, when set, overrides every site's stress policy — the
	// ablation knob for comparing an all-absorb against an all-withdraw
	// root deployment (forcing Absorb also disables session flaps).
	ForcePolicy *anycast.Policy

	// Schedule selects the attack scenario; nil runs the paper's Nov 2015
	// events (attack.Nov2015Schedule).
	Schedule *attack.Schedule
}

// DefaultConfig returns a full-scale configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		VPs:             9000,
		Minutes:         attack.SimMinutes,
		BotnetOrigins:   60,
		Collectors:      152,
		RawLetters:      []byte("K"),
		Netsim:          netsim.DefaultConfig(),
		TriggerRatio:    2.5,
		HoldMinutes:     8,
		CooldownMinutes: 70,
		FlapHold:        6,
		FlapCooldown:    25,
	}
}

func (c *Config) fillDefaults() {
	if c.VPs == 0 {
		c.VPs = 9000
	}
	if c.Minutes == 0 {
		c.Minutes = attack.SimMinutes
	}
	if c.BotnetOrigins == 0 {
		c.BotnetOrigins = 60
	}
	if c.Collectors == 0 {
		c.Collectors = 152
	}
	if c.RawLetters == nil {
		c.RawLetters = []byte("K")
	}
	if c.Netsim == (netsim.Config{}) {
		c.Netsim = netsim.DefaultConfig()
	}
	if c.TriggerRatio == 0 {
		c.TriggerRatio = 2.5
	}
	if c.HoldMinutes == 0 {
		c.HoldMinutes = 8
	}
	if c.CooldownMinutes == 0 {
		c.CooldownMinutes = 70
	}
	if c.FlapHold == 0 {
		c.FlapHold = 6
	}
	if c.FlapCooldown == 0 {
		c.FlapCooldown = 25
	}
}

// epoch is one routing regime of a letter: the table that held from Start
// until the next epoch, plus the per-site traffic shares it implies.
type epoch struct {
	Start      int
	Table      *bgpsim.Table
	LegitFrac  []float64 // per site: share of the letter's legitimate load
	AttackFrac []float64 // per site: share of the letter's attack load
	// act is the effective announcement vector the table was computed
	// from, captured only when checkpointing is enabled: snapshots store
	// epochs as (Start, act) and resume replays the vectors through the
	// (pure) route computation instead of serializing tables.
	act []bool
}

// originState is one BGP announcement (site uplink) and its state machine.
type originState struct {
	site   int
	router *netsim.Router
	// flap marks an uplink whose BGP session fails under shared-fabric
	// congestion (city excess), not only local overload.
	flap bool
}

// flapExcessQPS converts city-level excess load into the utilization signal
// flappy uplinks react to: at this excess, the shared fabric is congested
// enough that BGP sessions start timing out.
const flapExcessQPS = 250_000

// letterState carries one letter's routing and per-minute service state.
// During Run, each letterState is owned by exactly one engine worker per
// minute; nothing here is shared across letters.
type letterState struct {
	letter  *anycast.Letter
	origins []bgpsim.Origin
	states  []originState
	active  []bool
	epochs  []epoch

	// index is the letter's position in SortedLetters order; the engine's
	// barrier merges cross-letter contributions in this order.
	index int
	// targeted caches sched.Targeted(letter) for the probe hot path.
	targeted bool
	// comp is this letter's incremental route computer. Each letterState is
	// owned by exactly one engine worker per minute, so the scratch inside
	// is never shared across goroutines.
	comp *bgpsim.Computer
	// tableCache memoizes computed route tables by effective announcement
	// vector (packed to a bitset key). Compute is a pure function of
	// (graph, origins, active), so a flap cycle returning to a
	// previously-seen vector reuses the exact table — and the cached
	// LegitFrac/AttackFrac that derive from it — without recomputing.
	tableCache map[string]*routeEntry
	keyBuf     []byte
	// epochIdx maps minute -> index into epochs, built once after Run so
	// post-run probe lookups are O(1) instead of a per-probe binary search.
	epochIdx []int32
	// siteCity[si] indexes the site's city in the evaluator's city tables
	// (-1 when unknown), replacing a per-probe map lookup.
	siteCity []int32
	// txt aliases the evaluator's CHAOS identity strings for this letter.
	txt [][]string
	// effActive is active masked by the fault overlay (nil when the run
	// has no fault plan, so fault-free runs take the exact pre-fault
	// code paths). Routing and service computations read effective().
	effActive []bool
	// uplinkOrd[oi] is the origin's site-local uplink ordinal and
	// siteUplinks[site] the site's uplink count — the coordinates
	// faults.Compiled.SiteForcedDown addresses link flaps by.
	uplinkOrd   []int
	siteUplinks []int
	// util is per-minute scratch (one slot per site), reused across
	// minutes to keep the hot loop allocation-free.
	util []float64
	// pending is the routing diff produced by the latest computeEpoch,
	// waiting to be handed to the BGP collector at the minute barrier.
	pending []bgpsim.Change

	// Per-site per-minute service quality.
	loss     [][]float32 // [site][minute]
	delay    [][]float32
	hasRoute [][]bool // any uplink announced

	// Aggregated per-minute letter traffic (for RSSAC).
	legitServed  []float64
	attackServed []float64
	retryServed  []float64
	responses    []float64
}

// routeEntry is one memoized routing result: the table plus the per-site
// traffic shares derived from it. Entries are immutable once stored.
type routeEntry struct {
	table      *bgpsim.Table
	legitFrac  []float64
	attackFrac []float64
}

// packActiveKey appends the announcement vector as a bitset to dst and
// returns it — the table-cache key.
func packActiveKey(dst []byte, active []bool) []byte {
	var b byte
	for i, a := range active {
		if a {
			b |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			dst = append(dst, b)
			b = 0
		}
	}
	if len(active)&7 != 0 {
		dst = append(dst, b)
	}
	return dst
}

// buildEpochIndex materializes the minute -> epoch mapping after Run, so
// every later epochAt is a single slice load.
func (ls *letterState) buildEpochIndex(minutes int) {
	idx := make([]int32, minutes)
	j := 0
	for m := 0; m < minutes; m++ {
		for j+1 < len(ls.epochs) && ls.epochs[j+1].Start <= m {
			j++
		}
		idx[m] = int32(j)
	}
	ls.epochIdx = idx
}

// Evaluator runs the full reproduction and implements atlas.World.
type Evaluator struct {
	Cfg        Config
	Graph      *topo.Graph
	Deployment *anycast.Deployment
	Population *atlas.Population
	Collector  *bgpmon.Collector
	Botnet     *attack.Botnet
	Clients    *attack.ClientPopulation
	RSSAC      *rssac.Accumulator

	letters map[byte]*letterState
	// letterTab is the dense by-byte view of letters, replacing a map
	// lookup on the per-probe hot path.
	letterTab [256]*letterState
	sched     *attack.Schedule
	opts      options
	// flt is the compiled fault plan (nil when faults are disabled).
	// All its lookups are read-only and per-letter, which is what keeps
	// worker-count equivalence intact under injection.
	flt *faults.Compiled

	// clientWeights is Clients.Weights flattened into ascending-ASN order:
	// catchment shares are float sums, and a fixed iteration order is what
	// makes them (and everything downstream) bit-reproducible.
	clientWeights []clientWeight
	// stubs caches Graph.StubASNs(), read concurrently by epoch workers.
	stubs []topo.ASN

	// cityExcess[cityIdx][minute] is the total over-capacity query rate
	// landing in a city, across all letters — the shared-infrastructure
	// stress behind collateral damage (§3.6).
	cityExcess [][]float64
	cityIdx    map[string]int

	// NL models the .nl TLD's two anycast deployments colocated with
	// root sites (Figure 15); values are served query rates normalized
	// to the pre-event level.
	NLSites  []string // city codes (anonymized in the paper)
	NLSeries []*stats.Series

	// rttMatrix caches city-to-city baseline RTTs.
	rttMatrix [][]float64
	// vpCity[id] is each vantage point's city index (-1 unknown), and
	// asnCity[asn] each AS's, so per-probe RTT lookups index rttMatrix
	// directly instead of hashing city codes.
	vpCity  []int32
	asnCity []int32
	// evActive[m] caches sched.Active(m) for every simulated minute.
	evActive []int32
	// txt caches CHAOS identity strings per letter/site/server.
	txt map[byte][][]string

	// mu guards finalized; RSSAC finalization mutates report fields, so it
	// runs once per letter and the result is cached for concurrent readers.
	mu        sync.Mutex
	finalized map[byte][]*rssac.Report

	ran bool
}

// clientWeight is one stub AS's share of legitimate query load.
type clientWeight struct {
	asn topo.ASN
	w   float64
}

// NewEvaluator builds the full system: topology, deployment placement,
// population, botnet, collectors. Options configure execution — worker
// count, cancellation context, progress reporting, attack schedule —
// without touching the Config struct:
//
//	ev, err := core.NewEvaluator(cfg, core.WithWorkers(8), core.WithContext(ctx))
func NewEvaluator(cfg Config, opts ...Option) (*Evaluator, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	cfg.fillDefaults()
	tcfg := topo.DefaultConfig(cfg.Seed)
	if cfg.Topology != nil {
		tcfg = *cfg.Topology
	}
	g, err := topo.Generate(tcfg)
	if err != nil {
		return nil, err
	}
	dep, err := anycast.RootDeployment(cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.ForcePolicy != nil {
		for _, l := range dep.Letters {
			for _, s := range l.Sites {
				s.Policy = *cfg.ForcePolicy
				if *cfg.ForcePolicy == anycast.Absorb {
					s.FlappyUplinks = 0
				}
			}
		}
	}
	if err := dep.Place(g, cfg.Seed+1); err != nil {
		return nil, err
	}
	pop, err := atlas.NewPopulation(g, atlas.PopulationConfig{
		N: cfg.VPs, Seed: cfg.Seed + 2, OldFirmwareFrac: 0.03, HijackedFrac: 0.008,
	})
	if err != nil {
		return nil, err
	}
	col, err := bgpmon.NewSampled(g, cfg.Collectors, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	sched := o.schedule
	if sched == nil {
		sched = cfg.Schedule
	}
	if sched == nil {
		sched = attack.Nov2015Schedule()
	}
	ev := &Evaluator{
		Cfg:        cfg,
		opts:       o,
		sched:      sched,
		Graph:      g,
		Deployment: dep,
		Population: pop,
		Collector:  col,
		Botnet:     attack.NewBotnet(g, cfg.BotnetOrigins, cfg.Seed+4),
		Clients:    attack.NewClientPopulation(g, cfg.Seed+5),
		RSSAC:      rssac.NewAccumulator((cfg.Minutes+1439)/1440, attack.DefaultSourceMix),
		letters:    make(map[byte]*letterState),
		finalized:  make(map[byte][]*rssac.Report),
		NLSites:    []string{"AMS", "LHR"},
	}
	if err := ev.buildCaches(); err != nil {
		return nil, err
	}
	ev.buildLetterStates()
	if o.faults != nil {
		shape := faults.Shape{Minutes: cfg.Minutes, Sites: make(map[byte]int, len(dep.Letters))}
		for _, l := range dep.Letters {
			shape.Sites[l.Letter] = len(l.Sites)
		}
		flt, err := faults.Compile(o.faults, shape)
		if err != nil {
			return nil, fmt.Errorf("core: fault plan: %w", err)
		}
		if !flt.Empty() {
			ev.flt = flt
		}
	}
	return ev, nil
}

// FaultPlan returns the injected fault plan, or nil when the evaluator
// runs fault-free.
func (ev *Evaluator) FaultPlan() *faults.Plan {
	if ev.flt == nil {
		return nil
	}
	return ev.flt.Plan()
}

func (ev *Evaluator) buildCaches() error {
	cities := geo.Cities()
	ev.cityIdx = make(map[string]int, len(cities))
	for i, c := range cities {
		ev.cityIdx[c.Code] = i
	}
	ev.rttMatrix = make([][]float64, len(cities))
	for i := range cities {
		ev.rttMatrix[i] = make([]float64, len(cities))
		for j := range cities {
			ev.rttMatrix[i][j] = geo.DefaultRTTModel.RTTMs(cities[i], cities[j])
		}
	}
	ev.txt = make(map[byte][][]string)
	for _, l := range ev.Deployment.Letters {
		perSite := make([][]string, len(l.Sites))
		for si, s := range l.Sites {
			perSite[si] = make([]string, s.NumServers+1)
			for srv := 1; srv <= s.NumServers; srv++ {
				// Site codes arrive from deployment config, so a malformed
				// one must surface as an error, not a panic.
				txt, err := chaos.Format(l.Letter, s.Code, srv)
				if err != nil {
					return fmt.Errorf("core: chaos identity for site %c-%s: %w", l.Letter, s.Code, err)
				}
				perSite[si][srv] = txt
			}
		}
		ev.txt[l.Letter] = perSite
	}
	ev.cityExcess = make([][]float64, len(cities))
	for i := range ev.cityExcess {
		ev.cityExcess[i] = make([]float64, ev.Cfg.Minutes)
	}
	ev.clientWeights = make([]clientWeight, 0, len(ev.Clients.Weights))
	for asn, w := range ev.Clients.Weights {
		ev.clientWeights = append(ev.clientWeights, clientWeight{asn: asn, w: w})
	}
	sort.Slice(ev.clientWeights, func(i, j int) bool {
		return ev.clientWeights[i].asn < ev.clientWeights[j].asn
	})
	ev.stubs = ev.Graph.StubASNs()
	ev.asnCity = make([]int32, ev.Graph.N())
	for i := range ev.asnCity {
		ev.asnCity[i] = cityIndexOf(ev.cityIdx, ev.Graph.ASes[i].City.Code)
	}
	ev.vpCity = make([]int32, len(ev.Population.VPs))
	for i := range ev.vpCity {
		ev.vpCity[i] = cityIndexOf(ev.cityIdx, ev.Population.VPs[i].City.Code)
	}
	ev.evActive = make([]int32, ev.Cfg.Minutes)
	for m := range ev.evActive {
		ev.evActive[m] = int32(ev.sched.Active(m))
	}
	return nil
}

// cityIndexOf resolves a city code to its dense index, -1 when unknown.
func cityIndexOf(idx map[string]int, code string) int32 {
	if i, ok := idx[code]; ok {
		return int32(i)
	}
	return -1
}

func (ev *Evaluator) buildLetterStates() {
	for _, l := range ev.Deployment.Letters {
		ls := &letterState{letter: l}
		for si, s := range l.Sites {
			for u := 0; u < s.EffectiveUplinks(); u++ {
				ls.origins = append(ls.origins, bgpsim.Origin{
					Site: si, Host: s.Hosts[u], Local: s.Local,
				})
				var router *netsim.Router
				switch {
				case s.Policy == anycast.Withdraw:
					// Stagger cooldowns so withdrawn sites re-appear at
					// different times; every third withdraw-site stays
					// down much longer (the E-Root "shut down" group).
					cooldown := ev.Cfg.CooldownMinutes + (si*13)%40
					if si%3 == 2 {
						cooldown = 10 * ev.Cfg.CooldownMinutes
					}
					router = netsim.NewRouter(anycast.Withdraw, ev.Cfg.TriggerRatio, ev.Cfg.HoldMinutes+(si%4), cooldown)
				case u < s.FlappyUplinks:
					// Emergent session failure at an absorb site: a low
					// trigger, driven by both local overload and
					// shared-fabric congestion (see Run). A site's flappy
					// sessions share the congested fabric, so they fail
					// together — K-LHR lost essentially its whole
					// catchment at once (§3.4.2). SlowRestore sessions
					// stay down long after the stress ends, which is
					// what leaves the paper's group-4 VPs ("flip and
					// stay") at their new site after the event.
					cooldown := ev.Cfg.FlapCooldown
					if s.SlowRestore {
						cooldown *= 16
					}
					router = netsim.NewRouter(anycast.Withdraw, 1.15, ev.Cfg.FlapHold, cooldown)
				default:
					router = netsim.NewRouter(anycast.Absorb, ev.Cfg.TriggerRatio, ev.Cfg.HoldMinutes, ev.Cfg.CooldownMinutes)
				}
				ls.states = append(ls.states, originState{
					site:   si,
					router: router,
					flap:   s.Policy == anycast.Absorb && u < s.FlappyUplinks,
				})
			}
		}
		// H-Root primary/backup: the backup starts un-announced.
		ls.active = make([]bool, len(ls.origins))
		for i := range ls.active {
			ls.active[i] = true
		}
		if l.PrimaryBackup && len(l.Sites) >= 2 {
			for oi, o := range ls.origins {
				if o.Site != 0 {
					ls.active[oi] = false
					ls.states[oi].router.ForceWithdraw(0)
				}
			}
		}
		nSites := len(l.Sites)
		ls.uplinkOrd = make([]int, len(ls.origins))
		ls.siteUplinks = make([]int, nSites)
		for oi, o := range ls.origins {
			ls.uplinkOrd[oi] = ls.siteUplinks[o.Site]
			ls.siteUplinks[o.Site]++
		}
		ls.loss = make([][]float32, nSites)
		ls.delay = make([][]float32, nSites)
		ls.hasRoute = make([][]bool, nSites)
		for si := 0; si < nSites; si++ {
			ls.loss[si] = make([]float32, ev.Cfg.Minutes)
			ls.delay[si] = make([]float32, ev.Cfg.Minutes)
			ls.hasRoute[si] = make([]bool, ev.Cfg.Minutes)
		}
		ls.legitServed = make([]float64, ev.Cfg.Minutes)
		ls.attackServed = make([]float64, ev.Cfg.Minutes)
		ls.retryServed = make([]float64, ev.Cfg.Minutes)
		ls.responses = make([]float64, ev.Cfg.Minutes)
		ls.util = make([]float64, nSites)
		ls.targeted = ev.sched.Targeted(l.Letter)
		ls.comp = bgpsim.NewComputer(ev.Graph)
		ls.tableCache = make(map[string]*routeEntry)
		ls.txt = ev.txt[l.Letter]
		ls.siteCity = make([]int32, nSites)
		for si, s := range l.Sites {
			ls.siteCity[si] = cityIndexOf(ev.cityIdx, s.City.Code)
		}
		ev.letters[l.Letter] = ls
		ev.letterTab[l.Letter] = ls
	}
	for i, lb := range ev.Deployment.SortedLetters() {
		ev.letters[lb].index = i
	}
}

// computeEpoch recomputes routing and traffic shares for a letter and
// leaves the routing diff in ls.pending for the engine's barrier to hand
// to the BGP collector (the only shared sink). Safe to call from an engine
// worker: it reads only immutable evaluator state and writes only ls.
//
// Routing is memoized: the table (and the traffic shares derived from it)
// is a pure function of the effective announcement vector, so a flap cycle
// that returns to a previously-seen vector reuses the stored result. Cache
// misses go through the letter's incremental Computer, which warm-starts
// from the last-computed fixpoint; both paths produce tables byte-identical
// to a from-scratch bgpsim.Compute, so the epoch sequence — and the BGP
// diff stream derived from it — is unchanged by the caching.
func (ev *Evaluator) computeEpoch(ls *letterState, minute int) {
	act := ls.effective()
	ent := ev.routeEntryFor(ls, act)
	ep := epoch{Start: minute, Table: ent.table, LegitFrac: ent.legitFrac, AttackFrac: ent.attackFrac}
	if ev.opts.checkpointDir != "" {
		// act aliases ls.active/effActive, which mutate in place; epochs
		// destined for snapshots need their own copy of the vector.
		ep.act = append([]bool(nil), act...)
	}
	if len(ls.epochs) > 0 {
		prev := ls.epochs[len(ls.epochs)-1]
		// Append rather than overwrite: a fault transition and a router
		// change can both recompute within the same minute, and the
		// collector must see both diffs.
		ls.pending = bgpsim.AppendDiff(ls.pending, prev.Table, ent.table)
	}
	ls.epochs = append(ls.epochs, ep)
}

// routeEntryFor resolves the routing result for an effective announcement
// vector — memoized table cache with incremental warm-started computation,
// or the reference full sweep under the WithRoutingCache(false) ablation.
// Shared by computeEpoch and by checkpoint restore's epoch replay, so a
// resumed run rebuilds the identical cache contents and computer state.
func (ev *Evaluator) routeEntryFor(ls *letterState, act []bool) *routeEntry {
	if ev.opts.routingCache {
		ls.keyBuf = packActiveKey(ls.keyBuf[:0], act)
		if hit, ok := ls.tableCache[string(ls.keyBuf)]; ok {
			return hit
		}
		ent := ev.newRouteEntry(ls, ls.comp.Compute(ls.origins, act))
		ls.tableCache[string(ls.keyBuf)] = ent
		return ent
	}
	// Ablation path (WithRoutingCache(false)): the reference full-sweep
	// computation, exactly as the pre-incremental engine ran it.
	return ev.newRouteEntry(ls, bgpsim.Compute(ev.Graph, ls.origins, act))
}

// newRouteEntry derives the per-site traffic shares from a routing table.
// The result is immutable: epochs and the table cache alias it freely.
func (ev *Evaluator) newRouteEntry(ls *letterState, table *bgpsim.Table) *routeEntry {
	nSites := len(ls.letter.Sites)
	legit := make([]float64, nSites)
	attackShare := make([]float64, nSites)
	// clientWeights is in ascending-ASN order (not map order) so the float
	// summation sequence is identical across runs and worker counts.
	for _, cw := range ev.clientWeights {
		if site := table.SiteOf(cw.asn); site >= 0 {
			legit[site] += cw.w
		}
	}
	for i, asn := range ev.Botnet.Origins {
		if site := table.SiteOf(asn); site >= 0 {
			attackShare[site] += ev.Botnet.Weights[i] * (1 - attack.BackgroundShare)
		}
	}
	// Attack ingress: BackgroundShare of the flood arrives uniformly from
	// every stub AS (spoofed sources are everywhere); the rest enters
	// through the concentrated botnet.
	if len(ev.stubs) > 0 {
		per := attack.BackgroundShare / float64(len(ev.stubs))
		for _, asn := range ev.stubs {
			if site := table.SiteOf(asn); site >= 0 {
				attackShare[site] += per
			}
		}
	}
	return &routeEntry{table: table, legitFrac: legit, attackFrac: attackShare}
}

// effective returns the announcement vector routing should see: active
// masked by the fault overlay when a plan is injected, active itself
// otherwise.
func (ls *letterState) effective() []bool {
	if ls.effActive != nil {
		return ls.effActive
	}
	return ls.active
}

// epochAt returns the routing epoch in force at a minute, or nil when the
// letter has no epochs yet or the minute is negative (misuse paths that
// previously indexed out of bounds).
func (ls *letterState) epochAt(minute int) *epoch {
	if minute < 0 || len(ls.epochs) == 0 {
		return nil
	}
	if ls.epochIdx != nil {
		// Post-run fast path: the minute -> epoch index built by Run makes
		// every probe lookup a single load instead of a binary search.
		if minute >= len(ls.epochIdx) {
			minute = len(ls.epochIdx) - 1
		}
		return &ls.epochs[ls.epochIdx[minute]]
	}
	// During Run the epoch in force is almost always the newest one.
	if last := &ls.epochs[len(ls.epochs)-1]; last.Start <= minute {
		return last
	}
	// Epochs are appended in time order; binary search the last with
	// Start <= minute.
	i := sort.Search(len(ls.epochs), func(i int) bool { return ls.epochs[i].Start > minute })
	if i == 0 {
		return &ls.epochs[0]
	}
	return &ls.epochs[i-1]
}

// Run executes the minute loop. It must be called exactly once before
// Probe/Dataset accessors. It honors the context given via WithContext;
// use RunContext to pass one per call.
func (ev *Evaluator) Run() error {
	return ev.RunContext(ev.opts.ctx)
}

// buildNLSeries materializes the .nl collateral series (Figure 15). The
// paper anonymizes which root sites the two .nl anycast nodes share
// infrastructure with; we anchor them to the two most event-stressed
// absorbing root sites — exactly the "located near Root DNS servers"
// condition — and starve them in proportion to the shared rack's overload.
func (ev *Evaluator) buildNLSeries() {
	type anchor struct {
		letter byte
		site   int
		stress float64
	}
	var anchors []anchor
	for lb, ls := range ev.letters {
		if !ev.sched.Targeted(lb) {
			continue
		}
		for si := range ls.letter.Sites {
			var sum float64
			n := 0
			for m := 0; m < ev.Cfg.Minutes; m++ {
				if ev.sched.Active(m) < 0 {
					continue
				}
				if ls.hasRoute[si][m] {
					sum += float64(ls.loss[si][m])
				}
				n++
			}
			if n > 0 {
				anchors = append(anchors, anchor{lb, si, sum / float64(n)})
			}
		}
	}
	sort.Slice(anchors, func(i, j int) bool {
		if anchors[i].stress != anchors[j].stress {
			return anchors[i].stress > anchors[j].stress
		}
		if anchors[i].letter != anchors[j].letter {
			return anchors[i].letter < anchors[j].letter
		}
		return anchors[i].site < anchors[j].site
	})
	nNL := 2
	if len(anchors) < nNL {
		nNL = len(anchors)
	}
	ev.NLSites = ev.NLSites[:0]
	ev.NLSeries = make([]*stats.Series, nNL)
	for i := 0; i < nNL; i++ {
		a := anchors[i]
		ls := ev.letters[a.letter]
		site := ls.letter.Sites[a.site]
		ev.NLSites = append(ev.NLSites, site.City.Code)
		ci := ev.cityIdx[site.City.Code]
		s := stats.NewSeries(fmt.Sprintf("nl-anycast-%d", i+1), 0, 10, ev.Cfg.Minutes/10)
		for b := 0; b < s.Bins(); b++ {
			var served float64
			for m := b * 10; m < (b+1)*10 && m < ev.Cfg.Minutes; m++ {
				rootLoss := 0.0
				if ls.hasRoute[a.site][m] {
					rootLoss = float64(ls.loss[a.site][m])
				}
				// Sharing a saturated rack link: the small .nl node is
				// starved much harder than the root's own loss rate.
				shared := 1 - (1-rootLoss)*(1-rootLoss)*(1-rootLoss)*(1-rootLoss)
				if cl := ev.nlLoss(ci, m); cl > shared {
					shared = cl
				}
				if shared > 0.98 {
					shared = 0.98
				}
				served += 1 - shared
			}
			s.Values[b] = served / 10
		}
		ev.NLSeries[i] = s
	}
}

// siteAnnounced reports whether any of a site's uplinks is announced
// (fault overlay included).
func (ev *Evaluator) siteAnnounced(ls *letterState, site int) bool {
	act := ls.effective()
	for oi, o := range ls.origins {
		if o.Site == site && act[oi] {
			return true
		}
	}
	return false
}

// Collateral-damage calibration: the excess rate (q/s) in a city at which
// co-located, not-directly-attacked services start losing queries, and the
// rate at which loss saturates.
const (
	collateralOnsetQPS = 600_000
	collateralFullQPS  = 6_000_000
	// .nl's anycast nodes share racks with root sites, so they saturate
	// much earlier (Figure 15 shows them dropping to ~zero).
	nlFullQPS = 1_500_000
)

// collateralLoss is the query-loss probability that city-level stress
// imposes on co-located services.
func collateralLoss(excess float64, fullQPS float64) float64 {
	if excess <= collateralOnsetQPS {
		return 0
	}
	l := (excess - collateralOnsetQPS) / (fullQPS - collateralOnsetQPS)
	if l > 0.97 {
		l = 0.97
	}
	return l
}

// nlLoss is the loss experienced by a .nl anycast node in city ci.
func (ev *Evaluator) nlLoss(ci, minute int) float64 {
	l := collateralLoss(ev.cityExcess[ci][minute], nlFullQPS)
	if l > 0.97 {
		l = 0.97
	}
	return l
}

// mix64 is the splitmix64 finalizer, used to derive per-probe coins.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// coin returns a deterministic uniform [0,1) draw for a probe key.
//
//repolint:hot
func (ev *Evaluator) coin(vp atlas.VPID, letter byte, minute int, salt uint64) float64 {
	key := uint64(ev.Cfg.Seed)*0x9E3779B97F4A7C15 ^
		uint64(vp)<<40 ^ uint64(letter)<<32 ^ uint64(uint32(minute)) ^ salt<<56
	return float64(mix64(key)>>11) / float64(1<<53)
}

// ProbeOutcome implements atlas.World against the simulated event. This is
// the measurement hot path — called VPs x letters x minutes times — so
// every lookup is a dense-array index (letter table, epoch index, site city,
// VP city) and the per-server view is computed scalar-wise; a probe
// allocates nothing.
//
//repolint:hot
func (ev *Evaluator) ProbeOutcome(vp *atlas.VP, letter byte, minute int) atlas.Outcome {
	if minute < 0 {
		// A negative minute used to index service arrays out of bounds;
		// treat it as the misuse it is rather than panicking mid-campaign.
		return atlas.Outcome{Status: atlas.Timeout}
	}
	if minute >= ev.Cfg.Minutes {
		minute = ev.Cfg.Minutes - 1
	}
	// A churned vantage point is disconnected from the measurement
	// platform entirely: no probe is recorded for any letter, leaving a
	// NoData gap in the dataset (atlas recording skips NoData).
	if ev.flt != nil && ev.flt.VPDown(int32(vp.ID), minute) {
		return atlas.Outcome{Status: atlas.NoData}
	}
	if vp.Hijacked {
		// A third-party resolver intercepts the query: instant bogus
		// identity at an implausibly short RTT (§2.4.1).
		return atlas.Outcome{Status: atlas.OK, Site: 0, RTTms: 2 + 3*ev.coin(vp.ID, letter, minute, 1), ChaosTXT: "dnsmasq-2.76"}
	}
	ls := ev.letterTab[letter]
	if ls == nil {
		return atlas.Outcome{Status: atlas.Timeout}
	}
	ep := ls.epochAt(minute)
	if ep == nil {
		// Run has not produced an epoch for this letter (zero-epoch
		// misuse path that previously panicked on epochs[0]).
		return atlas.Outcome{Status: atlas.Timeout}
	}
	site := ep.Table.SiteOf(vp.ASN)
	if site < 0 {
		return atlas.Outcome{Status: atlas.Timeout}
	}
	s := ls.letter.Sites[site]
	if !ls.hasRoute[site][minute] {
		return atlas.Outcome{Status: atlas.Timeout}
	}

	loss := float64(ls.loss[site][minute])
	delay := float64(ls.delay[site][minute])

	// Collateral damage applies to letters that are not directly under
	// attack but share a stressed city (§3.6, Figure 14). Root sites
	// have their own uplinks, so shared-facility stress costs them a
	// bounded fraction of queries — unlike the rack-sharing .nl nodes.
	if !ls.targeted {
		if ci := ls.siteCity[site]; ci >= 0 {
			cl := collateralLoss(ev.cityExcess[ci][minute], collateralFullQPS)
			if cl > 0.45 {
				cl = 0.45
			}
			loss = 1 - (1-loss)*(1-cl)
		}
	}

	// Server selection behind the load balancer.
	st := netsim.State{LossFrac: loss, ExtraDelayMs: delay}
	evIdx := int(ev.evActive[minute])
	server := 1 + int(mix64(uint64(vp.ID)<<20^uint64(uint32(minute/4))^uint64(letter))%uint64(s.NumServers))
	server, responds, srvLoss, srvDelay := netsim.ProbeServer(s, st, ev.Cfg.Netsim, evIdx+1, server)
	if !responds {
		return atlas.Outcome{Status: atlas.Timeout}
	}
	if ev.coin(vp.ID, letter, minute, 2) < srvLoss {
		return atlas.Outcome{Status: atlas.Timeout}
	}

	// RTT: geography plus queueing, with mild multiplicative jitter.
	base := ev.cityRTTIdx(ev.vpCity[vp.ID], ls.siteCity[site])
	rtt := (base + srvDelay) * (0.92 + 0.16*ev.coin(vp.ID, letter, minute, 3))
	return atlas.Outcome{
		Status:   atlas.OK,
		Site:     site,
		Server:   server,
		RTTms:    rtt,
		ChaosTXT: ls.txt[site][server],
	}
}

func (ev *Evaluator) cityRTT(a, b string) float64 {
	ia, ok1 := ev.cityIdx[a]
	ib, ok2 := ev.cityIdx[b]
	if !ok1 || !ok2 {
		return 150
	}
	return ev.rttMatrix[ia][ib]
}

// cityRTTIdx is cityRTT over pre-resolved city indices (-1 = unknown), the
// probe-hot-path form.
//
//repolint:hot
func (ev *Evaluator) cityRTTIdx(a, b int32) float64 {
	if a < 0 || b < 0 {
		return 150
	}
	return ev.rttMatrix[a][b]
}

// Measure runs the Atlas campaign against the completed simulation and
// returns the cleaned dataset. It honors the context given via
// WithContext; use MeasureContext to pass one per call.
func (ev *Evaluator) Measure() (*atlas.Dataset, error) {
	return ev.MeasureContext(ev.opts.ctx)
}

// MeasureContext runs the Atlas campaign under a context. The VP
// population is sharded across the configured worker count (WithWorkers);
// each shard writes into its own pre-sized slice segment of the dataset,
// so the result is byte-identical for every worker count.
func (ev *Evaluator) MeasureContext(ctx context.Context) (*atlas.Dataset, error) {
	if !ev.ran {
		return nil, fmt.Errorf("core: Run() must complete before Measure()")
	}
	cfg := atlas.DefaultScheduleConfig()
	cfg.Minutes = ev.Cfg.Minutes
	cfg.RawLetters = ev.Cfg.RawLetters
	cfg.Workers = ev.opts.workers
	if fn := ev.opts.progress; fn != nil {
		cfg.Progress = func(done, total int) {
			fn(Progress{Stage: StageMeasure, Done: done, Total: total})
		}
	}
	d, err := atlas.RunContext(ctx, ev.Population, ev, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: measure: %w", err)
	}
	return d, nil
}

// LetterSites returns the site list for a letter (helper for analysis).
// The returned slice is a defensive copy — callers may reorder or append
// to it freely — but the *anycast.Site values it points at are shared with
// the evaluator and must be treated as read-only.
func (ev *Evaluator) LetterSites(letter byte) []*anycast.Site {
	l, ok := ev.Deployment.Letter(letter)
	if !ok {
		return nil
	}
	return append([]*anycast.Site(nil), l.Sites...)
}

// SiteRouteSeries returns a 10-minute-binned series of whether a site held
// any announced route (1) or was withdrawn (0) — ground truth behind the
// reachability figures. Each call builds a fresh Series, so callers may
// mutate the result; valid only after Run completes.
func (ev *Evaluator) SiteRouteSeries(letter byte, site int) (*stats.Series, error) {
	ls, ok := ev.letters[letter]
	if !ok || site < 0 || site >= len(ls.hasRoute) {
		return nil, fmt.Errorf("core: unknown site %c/%d", letter, site)
	}
	bins := ev.Cfg.Minutes / 10
	s := stats.NewSeries(fmt.Sprintf("route-%c-%d", letter, site), 0, 10, bins)
	for b := 0; b < bins; b++ {
		up := 0
		for m := b * 10; m < (b+1)*10; m++ {
			if ls.hasRoute[site][m] {
				up++
			}
		}
		s.Values[b] = float64(up) / 10
	}
	return s, nil
}

// LetterServedSeries returns per-minute served legit+retry query rates for
// one letter (used for the L-Root letter-flip analysis, §3.2.2).
func (ev *Evaluator) LetterServedSeries(letter byte) (legit, attackQ, retry, responses []float64, err error) {
	ls, ok := ev.letters[letter]
	if !ok {
		return nil, nil, nil, nil, fmt.Errorf("core: unknown letter %c", letter)
	}
	return ls.legitServed, ls.attackServed, ls.retryServed, ls.responses, nil
}

// RSSACReports finalizes and returns a letter's daily reports. Valid only
// after Run completes (nil before). Finalization runs once per letter and
// is cached, so concurrent callers are safe; the returned slice is a
// defensive copy, but the *rssac.Report values are shared and read-only.
func (ev *Evaluator) RSSACReports(letter byte) []*rssac.Report {
	if !ev.ran {
		return nil
	}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	rs, ok := ev.finalized[letter]
	if !ok {
		rs = ev.RSSAC.Finalize(letter)
		ev.finalized[letter] = rs
	}
	return append([]*rssac.Report(nil), rs...)
}

// SiteAt returns the site serving an AS for one letter at a minute (or
// bgpsim.NoSite). Valid only after Run.
func (ev *Evaluator) SiteAt(letter byte, asn topo.ASN, minute int) int {
	ls, ok := ev.letters[letter]
	if !ok || !ev.ran {
		return bgpsim.NoSite
	}
	ep := ls.epochAt(minute)
	if ep == nil {
		return bgpsim.NoSite
	}
	return ep.Table.SiteOf(asn)
}

// TraceAt reconstructs the AS-level forwarding path from an AS toward one
// letter's prefix at a minute — the simulator's traceroute, used to
// cross-validate CHAOS catchment mapping (§2.1, following Fan et al.).
func (ev *Evaluator) TraceAt(letter byte, asn topo.ASN, minute int) ([]topo.ASN, int) {
	ls, ok := ev.letters[letter]
	if !ok || !ev.ran {
		return nil, bgpsim.NoSite
	}
	ep := ls.epochAt(minute)
	if ep == nil {
		return nil, bgpsim.NoSite
	}
	return ep.Table.Trace(asn, 64)
}

// CityRTTms exposes the baseline city-to-city RTT model used for probe
// outcomes (150 ms for unknown codes).
func (ev *Evaluator) CityRTTms(a, b string) float64 { return ev.cityRTT(a, b) }

// Schedule returns the attack scenario this evaluator runs.
func (ev *Evaluator) Schedule() *attack.Schedule { return ev.sched }
