package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/rootevent/anycastddos/internal/faults"
)

// Fault windows below sit in the quiet stretch between the paper's two
// attack events, so the observed effects are attributable to the injected
// fault alone.

func TestSiteOutageWithdrawsRoutes(t *testing.T) {
	plan := &faults.Plan{Name: "K0 out", Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: 100, Duration: 200, Letter: 'K', Site: 0, Severity: 1},
	}}
	ev, err := NewEvaluator(tinyConfig(1), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	s, err := ev.SiteRouteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	// Routes are binned at 10 minutes: the site must be fully down for
	// bins [10, 30) and up on both sides of the window.
	for b := 10; b < 30; b++ {
		if s.Values[b] != 0 {
			t.Errorf("bin %d: route fraction %v during outage, want 0", b, s.Values[b])
		}
	}
	if s.Values[5] != 1 || s.Values[35] != 1 {
		t.Errorf("route fraction before/after outage = %v, %v; want 1, 1",
			s.Values[5], s.Values[35])
	}
}

func TestMonitorGapRecordsMissingMinutes(t *testing.T) {
	plan := &faults.Plan{Name: "K gap", Events: []faults.Event{
		{Kind: faults.MonitorGap, Start: 0, Duration: 137, Letter: 'K', Site: faults.AnySite},
	}}
	ev, err := NewEvaluator(tinyConfig(1), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	reports := ev.RSSACReports('K')
	if len(reports) < 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	if reports[0].MissingMinutes != 137 || reports[1].MissingMinutes != 0 {
		t.Fatalf("missing minutes = %d, %d; want 137, 0",
			reports[0].MissingMinutes, reports[1].MissingMinutes)
	}
	// The coverage correction must inflate the gapped day's estimate.
	if reports[0].EstimatedQueries() <= reports[0].Queries {
		t.Error("estimated queries should exceed raw queries on a gapped day")
	}
}

func TestVPChurnLeavesDatasetGaps(t *testing.T) {
	plan := &faults.Plan{Name: "all VPs out", Events: []faults.Event{
		{Kind: faults.VPChurn, Start: 1000, Duration: 200,
			Letter: faults.AnyLetter, Site: faults.AnySite, Severity: 1},
	}}
	ev, err := NewEvaluator(tinyConfig(1), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := ev.Measure()
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.SuccessSeries('K')
	if err != nil {
		t.Fatal(err)
	}
	// At severity 1 every probe in the window returns NoData, which atlas
	// never records: the bins stay empty instead of reading as timeouts.
	for b := 100; b < 120; b++ {
		if s.Values[b] != 0 {
			t.Errorf("bin %d: %v VPs succeeded during total churn, want 0", b, s.Values[b])
		}
	}
	if s.Values[90] == 0 || s.Values[125] == 0 {
		t.Errorf("VPs before/after churn window = %v, %v; want > 0",
			s.Values[90], s.Values[125])
	}
}

// TestWorkerPanicBecomesError poisons one letter's state so its worker
// panics mid-run, and checks the engine converts that into a wrapped
// error naming the letter and minute instead of crashing the process.
func TestWorkerPanicBecomesError(t *testing.T) {
	ev, err := NewEvaluator(tinyConfig(3), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ls := ev.letters['K']
	ls.loss[0] = ls.loss[0][:7] // out-of-range write at minute 7
	err = ev.Run()
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	for _, want := range []string{"letter K", "minute 7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

func TestWithFaultsRejectsBadPlan(t *testing.T) {
	bad := &faults.Plan{Events: []faults.Event{
		{Kind: faults.SiteOutage, Start: -5, Duration: 10, Letter: 'K'},
	}}
	_, err := NewEvaluator(tinyConfig(1), WithFaults(bad))
	if !errors.Is(err, faults.ErrBadPlan) {
		t.Fatalf("err = %v, want ErrBadPlan", err)
	}
}
