package core

// The run supervisor: bounded restarts-from-checkpoint around ResumeRun.
//
// Long event replays fail in three ways worth surviving: a letter worker
// panics on poisoned state (recovered into ErrWorkerPanic), the whole run
// goroutine panics outside a worker (recovered here into ErrRunPanic), or
// a worker wedges without failing — detected as missing per-letter
// heartbeats by a watchdog. All three become restarts from the last good
// checkpoint, with seeded capped backoff between attempts, up to a bounded
// budget; everything else (cancellation from the caller, configuration
// errors, disk failures) fails fast. The supervisor's own timing
// (watchdog, backoff) never feeds the simulation, so a supervised run's
// output remains byte-identical to an unsupervised one.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// ErrRunPanic marks a panic that escaped the engine's per-worker recovery
// and was caught at the supervisor's run boundary.
var ErrRunPanic = errors.New("core: run panicked")

// SupervisorConfig tunes the run supervisor.
type SupervisorConfig struct {
	// Dir is the checkpoint directory (required); EveryN the snapshot
	// stride in minutes (<1 selects the WithCheckpoint default of 10).
	Dir    string
	EveryN int
	// StallTimeout is how long the watchdog lets the engine go without any
	// letter heartbeat before declaring the attempt stalled (default 30s).
	StallTimeout time.Duration
	// MaxRestarts bounds recovery attempts after the first run (default 3).
	MaxRestarts int
	// BackoffBase/BackoffCap shape the capped exponential delay before
	// each restart (defaults 500ms / 10s); Seed drives its jitter, so a
	// given supervisor run waits a reproducible schedule.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	Seed        int64
	// Logf, when set, receives one line per lifecycle step.
	Logf func(format string, args ...any)
}

func (c *SupervisorConfig) fillDefaults() {
	if c.StallTimeout <= 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.MaxRestarts < 0 {
		c.MaxRestarts = 0
	} else if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 10 * time.Second
	}
}

// Restart records one recovery action in the report.
type Restart struct {
	// Attempt is the 0-based attempt that failed and triggered this restart.
	Attempt int `json:"attempt"`
	// Cause is "stall", "panic" (run-level), or "worker-panic".
	Cause string `json:"cause"`
	// Detail is the failing error's message, or the stall description.
	Detail string `json:"detail"`
	// ResumeFromMinute is the checkpoint minute the next attempt starts
	// from (0 = fresh run: no checkpoint was durable yet).
	ResumeFromMinute int `json:"resume_from_minute"`
	// Backoff is the delay slept before the next attempt.
	Backoff time.Duration `json:"backoff_ns"`
	// Abandoned marks a stalled attempt whose goroutine never acknowledged
	// cancellation within the grace period and was left behind.
	Abandoned bool `json:"abandoned,omitempty"`
}

// RecoveryReport is the supervisor's structured end-of-run summary.
type RecoveryReport struct {
	// Attempts is the total number of run attempts (1 = no recovery needed).
	Attempts int `json:"attempts"`
	// Restarts describes each recovery, in order.
	Restarts []Restart `json:"restarts"`
	// Completed reports whether the run finally finished.
	Completed bool `json:"completed"`
	// Err is the terminal error when Completed is false.
	Err string `json:"err,omitempty"`
}

// restartable reports whether an attempt's failure is one the supervisor
// recovers from by restarting from the last checkpoint. stalled marks a
// cancellation the watchdog itself induced.
func restartable(err error, stalled bool) bool {
	switch {
	case errors.Is(err, ErrWorkerPanic), errors.Is(err, ErrRunPanic):
		return true
	case stalled && errors.Is(err, context.Canceled):
		return true
	}
	return false
}

// runResult carries one attempt's outcome out of its goroutine.
type runResult struct {
	ev  *Evaluator
	err error
}

// Supervise executes a checkpointed run under a watchdog, restarting from
// the last good snapshot after stalls and recovered panics. It returns the
// completed evaluator, the recovery report (always non-nil, also on
// failure), and the terminal error. opts are passed to every attempt's
// ResumeRun; the supervisor appends its own checkpoint, context, and
// heartbeat options, so callers should not pass WithCheckpoint,
// WithContext, or WithHeartbeat themselves.
func Supervise(ctx context.Context, cfg Config, scfg SupervisorConfig, opts ...Option) (*Evaluator, *RecoveryReport, error) {
	scfg.fillDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	logf := scfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if scfg.Dir == "" {
		report := &RecoveryReport{Err: "supervisor requires a checkpoint directory"}
		return nil, report, fmt.Errorf("core: supervisor requires a checkpoint directory")
	}
	rng := rand.New(rand.NewSource(scfg.Seed))
	report := &RecoveryReport{}
	for attempt := 0; ; attempt++ {
		report.Attempts = attempt + 1
		if err := ctx.Err(); err != nil {
			report.Err = err.Error()
			return nil, report, fmt.Errorf("core: supervisor canceled before attempt %d: %w", attempt, err)
		}
		ev, res, stalled := superviseAttempt(ctx, cfg, &scfg, attempt, logf, opts)
		if res.err == nil {
			// The attempt ran under a per-attempt cancelable context that is
			// torn down with the attempt; rebind the finished evaluator to
			// the caller's context so Measure and later accessors work.
			ev.opts.ctx = ctx
			report.Completed = true
			logf("supervisor: run completed after %d attempt(s)", report.Attempts)
			return ev, report, nil
		}
		if !restartable(res.err, stalled.detected) || ctx.Err() != nil {
			report.Err = res.err.Error()
			return nil, report, res.err
		}
		if attempt >= scfg.MaxRestarts {
			report.Err = res.err.Error()
			return nil, report, fmt.Errorf("%w after %d attempts: %w", ErrRestartBudget, report.Attempts, res.err)
		}
		backoff := backoffDelay(scfg.BackoffBase, scfg.BackoffCap, attempt, rng)
		report.Restarts = append(report.Restarts, Restart{
			Attempt:          attempt,
			Cause:            causeOf(res.err, stalled.detected),
			Detail:           res.err.Error(),
			ResumeFromMinute: stalled.lastMinute,
			Backoff:          backoff,
			Abandoned:        stalled.abandoned,
		})
		logf("supervisor: attempt %d failed (%s), restarting from checkpoint in %v: %v",
			attempt, causeOf(res.err, stalled.detected), backoff, res.err)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			report.Err = ctx.Err().Error()
			return nil, report, fmt.Errorf("core: supervisor canceled during backoff: %w", ctx.Err())
		}
	}
}

// stallState is what the watchdog learned about one attempt.
type stallState struct {
	detected bool
	// lastMinute is the newest minute any letter heartbeat reported, i.e.
	// a lower bound on where the next attempt's checkpoint restore lands.
	lastMinute int
	abandoned  bool
}

// superviseAttempt runs one ResumeRun attempt under the watchdog.
func superviseAttempt(ctx context.Context, cfg Config, scfg *SupervisorConfig, attempt int, logf func(string, ...any), opts []Option) (*Evaluator, runResult, stallState) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// lastBeat holds the wall-clock nanos of the newest heartbeat; zero
	// until the first beat arms the watchdog, so setup (topology
	// generation, checkpoint restore) is never counted as a stall.
	var lastBeat atomic.Int64
	var lastMinute atomic.Int64
	hb := func(letter byte, minute int) {
		lastBeat.Store(time.Now().UnixNano()) //repolint:allow wallclock -- supervisor liveness clock, outside the simulation plane
		for {
			prev := lastMinute.Load()
			if int64(minute) <= prev || lastMinute.CompareAndSwap(prev, int64(minute)) {
				break
			}
		}
	}

	attemptOpts := append(append([]Option(nil), opts...),
		WithCheckpoint(scfg.Dir, scfg.EveryN),
		WithContext(runCtx),
		WithHeartbeat(hb),
	)

	done := make(chan runResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- runResult{err: fmt.Errorf("core: attempt %d: %v: %w", attempt, r, ErrRunPanic)}
			}
		}()
		ev, err := ResumeRun(scfg.Dir, cfg, attemptOpts...)
		done <- runResult{ev: ev, err: err}
	}()

	var st stallState
	ticker := time.NewTicker(watchdogTick(scfg.StallTimeout))
	defer ticker.Stop()
	for {
		select {
		case res := <-done:
			st.lastMinute = int(lastMinute.Load())
			return res.ev, res, st
		case <-ticker.C:
			beat := lastBeat.Load()
			if beat == 0 || st.detected {
				continue
			}
			age := time.Since(time.Unix(0, beat)) //repolint:allow wallclock -- supervisor liveness clock, outside the simulation plane
			if age < scfg.StallTimeout {
				continue
			}
			// Stall: cancel the attempt and wait a bounded grace period
			// for the run goroutine to acknowledge. A canceled engine
			// writes nothing after the cancellation (the checkpoint write
			// precedes the progress callback and the loop-top context
			// check), so abandoning a wedged goroutine cannot corrupt the
			// checkpoint directory the next attempt reads.
			st.detected = true
			st.lastMinute = int(lastMinute.Load())
			logf("supervisor: attempt %d stalled (no heartbeat for %v at minute ~%d), canceling",
				attempt, age.Round(time.Millisecond), st.lastMinute)
			cancel()
			select {
			case res := <-done:
				return res.ev, res, st
			case <-time.After(scfg.StallTimeout):
				st.abandoned = true
				return nil, runResult{err: fmt.Errorf("core: attempt %d stalled at minute ~%d and ignored cancellation: %w",
					attempt, st.lastMinute, context.Canceled)}, st
			}
		}
	}
}

// watchdogTick is the poll interval for a stall timeout.
func watchdogTick(stall time.Duration) time.Duration {
	tick := stall / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	return tick
}

// backoffDelay is the capped exponential restart delay with seeded jitter
// in [0.5, 1.0] of the nominal value.
func backoffDelay(base, cap0 time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap0; i++ {
		d *= 2
	}
	if d > cap0 {
		d = cap0
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// causeOf classifies a restartable error for the report.
func causeOf(err error, stalled bool) string {
	switch {
	case stalled:
		return "stall"
	case errors.Is(err, ErrWorkerPanic):
		return "worker-panic"
	case errors.Is(err, ErrRunPanic):
		return "panic"
	default:
		return "error"
	}
}
