package core
