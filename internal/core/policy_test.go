package core

import (
	"testing"
	"testing/quick"
)

func TestScenarioValidate(t *testing.T) {
	bad := []*Scenario{
		{},
		{Capacity: []float64{0}, Groups: nil},
		{Capacity: []float64{1}, Groups: []Group{{Name: "g"}}},
		{Capacity: []float64{1}, Groups: []Group{{Name: "g", Prefs: []int{5}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("scenario %d should fail validation", i)
		}
	}
	if err := PaperScenario(100, 50, 50).Validate(); err != nil {
		t.Errorf("paper scenario invalid: %v", err)
	}
}

func TestHappinessAccounting(t *testing.T) {
	s := &Scenario{
		Capacity: []float64{100, 100},
		Groups: []Group{
			{Name: "a", Clients: 2, AttackQPS: 50, Prefs: []int{0, 1}},
			{Name: "b", Clients: 1, AttackQPS: 80, Prefs: []int{1, 0}},
		},
	}
	// Default: site0 load 50 (<=100, serves 2), site1 load 80 (serves 1).
	h, err := s.Happiness(s.DefaultAssignment())
	if err != nil || h != 3 {
		t.Errorf("H = %d err %v, want 3", h, err)
	}
	// Move b onto site0: load 130 > 100, site0 serves nobody; site1 empty.
	h, err = s.Happiness([]int{0, 1})
	if err != nil || h != 0 {
		t.Errorf("H = %d err %v, want 0", h, err)
	}
	if _, err := s.Happiness([]int{0}); err == nil {
		t.Error("short assignment should error")
	}
	if _, err := s.Happiness([]int{0, 9}); err == nil {
		t.Error("out-of-range assignment should error")
	}
}

// TestPaperFiveCases reproduces the §2.2 thought experiment: the predicted
// optimal happiness for each of the five regimes, with s1 = s2 = s and
// S3 = 10s, as attack strength A0 = A1 grows (Figure 2's deployment).
func TestPaperFiveCases(t *testing.T) {
	const s = 100.0
	tests := []struct {
		a        float64 // A0 = A1
		wantCase int
		wantH    int
	}{
		{30, 1, 4},   // A0+A1=60 < s: nobody hurt
		{80, 2, 4},   // A0+A1=160 > s but each fits a small site
		{300, 3, 4},  // A0 > s, A0+A1=600 < 10s: S3 covers everyone
		{700, 4, 3},  // A0+A1=1400 > S3, A1 <= S3: sacrifice c0
		{1500, 5, 2}, // A0 > S3: degraded absorber protects the rest
	}
	for _, tt := range tests {
		c := ClassifyPaperCase(s, tt.a, tt.a)
		if c.Number != tt.wantCase {
			t.Errorf("A=%v classified as case %d, want %d", tt.a, c.Number, tt.wantCase)
		}
		if c.BestH != tt.wantH {
			t.Errorf("A=%v case %d predicted H %d, want %d", tt.a, c.Number, c.BestH, tt.wantH)
		}
		// The brute-force optimum must agree with the analytical model.
		sc := PaperScenario(s, tt.a, tt.a)
		_, h, err := sc.Best()
		if err != nil {
			t.Fatal(err)
		}
		if h != tt.wantH {
			t.Errorf("A=%v brute-force H = %d, analytical %d", tt.a, h, tt.wantH)
		}
	}
}

// TestWithdrawCanBeatAbsorb demonstrates the paper's "less can be more":
// for case-2 attacks, withdrawing at s1 serves strictly more clients than
// absorbing in place.
func TestWithdrawCanBeatAbsorb(t *testing.T) {
	const s = 100.0
	sc := PaperScenario(s, 80, 80)
	// Absorb (default routing): s1 carries A0+A1=160 > 100: c0, c1 lost.
	hAbsorb, err := sc.Happiness(sc.DefaultAssignment())
	if err != nil {
		t.Fatal(err)
	}
	if hAbsorb != 2 {
		t.Fatalf("absorb H = %d, want 2", hAbsorb)
	}
	_, hBest, err := sc.Best()
	if err != nil {
		t.Fatal(err)
	}
	if hBest != 4 {
		t.Fatalf("best H = %d, want 4", hBest)
	}
	if hBest <= hAbsorb {
		t.Error("withdrawing should beat absorbing for case-2 attacks")
	}
}

// Property: Best never returns less happiness than any specific assignment
// we can construct (spot-check optimality), and happiness is bounded by
// total clients.
func TestBestIsOptimalProperty(t *testing.T) {
	f := func(a0Raw, a1Raw uint16) bool {
		a0 := float64(a0Raw % 2000)
		a1 := float64(a1Raw % 2000)
		sc := PaperScenario(100, a0, a1)
		_, best, err := sc.Best()
		if err != nil {
			return false
		}
		totalClients := 0
		for _, g := range sc.Groups {
			totalClients += g.Clients
		}
		if best < 0 || best > totalClients {
			return false
		}
		// Enumerate a few fixed assignments; none may beat Best.
		for _, assign := range [][]int{
			{0, 0, 0, 0}, {0, 1, 0, 0}, {1, 1, 0, 0}, {2, 2, 1, 0}, {2, 1, 1, 0},
		} {
			h, err := sc.Happiness(assign)
			if err != nil {
				continue
			}
			if h > best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: happiness is monotone non-increasing in attack volume for the
// optimal strategy (more attack can never help).
func TestBestMonotoneInAttack(t *testing.T) {
	prev := 5
	for _, a := range []float64{0, 50, 80, 150, 300, 700, 1100, 1500, 5000} {
		sc := PaperScenario(100, a, a)
		_, h, err := sc.Best()
		if err != nil {
			t.Fatal(err)
		}
		if h > prev {
			t.Errorf("A=%v best H=%d exceeds previous %d", a, h, prev)
		}
		prev = h
	}
}
