package core

// Checkpoint capture/restore for the evaluation engine.
//
// A snapshot taken at the end of minute m-1 (Minute = m, the next minute
// to run) holds exactly the state the minute loop mutates: announcement
// state machines, the fault-overlay vector, the routing-epoch history (as
// effective announcement vectors — tables are recomputed, see below),
// per-site service-quality prefixes, per-letter traffic prefixes, the
// shared-fabric city load, and the BGP collector's update stream.
// Everything else — topology, deployment, population, botnet, the RSSAC
// accumulator — is rebuilt deterministically from the Config or replayed
// from the restored per-minute series, so resuming from a snapshot
// produces output byte-identical to the uninterrupted run.

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"github.com/rootevent/anycastddos/internal/bgpmon"
	"github.com/rootevent/anycastddos/internal/checkpoint"
	"github.com/rootevent/anycastddos/internal/netsim"
	"github.com/rootevent/anycastddos/internal/rssac"
	"github.com/rootevent/anycastddos/internal/topo"
)

// ErrSnapshotMismatch marks a snapshot that does not belong to the run
// being resumed: a different configuration, schedule, fault plan, or an
// engine whose shape disagrees with the serialized state. Resuming under
// the wrong configuration must fail loudly, never diverge silently.
var ErrSnapshotMismatch = errors.New("core: snapshot does not match this configuration")

// configDigest hashes everything that determines the run's output —
// config fields, topology parameters, attack schedule, fault plan — into
// the identity a snapshot carries. Execution knobs that provably do not
// change output (worker count, routing-cache ablation, checkpoint cadence)
// are deliberately excluded, so a run checkpointed at 4 workers may resume
// at 1.
func (ev *Evaluator) configDigest() [32]byte {
	h := sha256.New()
	c := &ev.Cfg
	fmt.Fprintf(h, "seed=%d vps=%d minutes=%d botnet=%d collectors=%d raw=%q netsim=%+v",
		c.Seed, c.VPs, c.Minutes, c.BotnetOrigins, c.Collectors, c.RawLetters, c.Netsim)
	fmt.Fprintf(h, " trigger=%v hold=%d cooldown=%d flaphold=%d flapcooldown=%d",
		c.TriggerRatio, c.HoldMinutes, c.CooldownMinutes, c.FlapHold, c.FlapCooldown)
	if c.ForcePolicy != nil {
		fmt.Fprintf(h, " forcepolicy=%v", *c.ForcePolicy)
	}
	if t := c.Topology; t != nil {
		fmt.Fprintf(h, " topo{t1=%d t2=%d stubs=%d seed=%d", t.Tier1s, t.Tier2s, t.Stubs, t.Seed)
		writeSortedMap(h, "regions", t.StubRegionWeights)
		writeSortedMap(h, "ix", t.IXWeights)
		fmt.Fprintf(h, "}")
	}
	fmt.Fprintf(h, " sched=%q", ev.sched.Name)
	for _, e := range ev.sched.Events {
		fmt.Fprintf(h, " ev=%+v", e)
	}
	for lb := byte('A'); lb <= 'M'; lb++ {
		if ev.sched.Spared[lb] {
			fmt.Fprintf(h, " spared=%c", lb)
		}
	}
	if ev.flt != nil {
		p := ev.flt.Plan()
		fmt.Fprintf(h, " faults=%q", p.Name)
		for _, e := range p.Events {
			fmt.Fprintf(h, " fe=%+v", e)
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// writeSortedMap renders a map deterministically (sorted by formatted key)
// into the digest stream.
func writeSortedMap[K comparable, V any](h interface{ Write([]byte) (int, error) }, tag string, m map[K]V) {
	keys := make([]string, 0, len(m))
	byKey := make(map[string]V, len(m))
	for k, v := range m {
		ks := fmt.Sprint(k)
		keys = append(keys, ks)
		byKey[ks] = v
	}
	sort.Strings(keys)
	for _, ks := range keys {
		fmt.Fprintf(h, " %s[%s]=%v", tag, ks, byKey[ks])
	}
}

// writeCheckpoint captures the engine state with the first `minute`
// minutes complete and persists it crash-safely under dir.
func (ev *Evaluator) writeCheckpoint(dir string, minute int, states []*letterState) error {
	snap := ev.captureSnapshot(minute, states)
	if err := checkpoint.Write(dir, snap); err != nil {
		return fmt.Errorf("core: checkpoint at minute %d: %w", minute, err)
	}
	return nil
}

func (ev *Evaluator) captureSnapshot(minute int, states []*letterState) *checkpoint.Snapshot {
	snap := &checkpoint.Snapshot{
		Minute:       minute,
		ConfigDigest: ev.configDigest(),
		CityExcess:   make([][]float64, len(ev.cityExcess)),
		Letters:      make([]checkpoint.Letter, len(states)),
	}
	for ci, row := range ev.cityExcess {
		snap.CityExcess[ci] = append([]float64(nil), row[:minute]...)
	}
	updates := ev.Collector.Updates()
	snap.Updates = make([]checkpoint.Update, len(updates))
	for i, u := range updates {
		snap.Updates[i] = checkpoint.Update{
			Minute: int32(u.Minute), Letter: u.Letter,
			Peer: int32(u.Peer), From: int32(u.From), To: int32(u.To),
		}
	}
	for i, ls := range states {
		cl := &snap.Letters[i]
		cl.Letter = ls.letter.Letter
		cl.Routers = make([]checkpoint.Router, len(ls.states))
		for oi := range ls.states {
			rs := ls.states[oi].router.State()
			cl.Routers[oi] = checkpoint.Router{
				Announced: rs.Announced, OverMinutes: int32(rs.OverMinutes), DownSince: int32(rs.DownSince),
			}
		}
		cl.Active = append([]bool(nil), ls.active...)
		cl.Overlay = ls.effActive != nil
		cl.EffActive = append([]bool(nil), ls.effActive...)
		cl.Epochs = make([]checkpoint.Epoch, len(ls.epochs))
		for j := range ls.epochs {
			cl.Epochs[j] = checkpoint.Epoch{
				Start:  int32(ls.epochs[j].Start),
				Active: append([]bool(nil), ls.epochs[j].act...),
			}
		}
		nSites := len(ls.letter.Sites)
		cl.Loss = make([][]float32, nSites)
		cl.Delay = make([][]float32, nSites)
		cl.HasRoute = make([][]bool, nSites)
		for si := 0; si < nSites; si++ {
			cl.Loss[si] = append([]float32(nil), ls.loss[si][:minute]...)
			cl.Delay[si] = append([]float32(nil), ls.delay[si][:minute]...)
			cl.HasRoute[si] = append([]bool(nil), ls.hasRoute[si][:minute]...)
		}
		cl.LegitServed = append([]float64(nil), ls.legitServed[:minute]...)
		cl.AttackServed = append([]float64(nil), ls.attackServed[:minute]...)
		cl.RetryServed = append([]float64(nil), ls.retryServed[:minute]...)
		cl.Responses = append([]float64(nil), ls.responses[:minute]...)
	}
	return snap
}

// restoreSnapshot loads a snapshot into a freshly built evaluator,
// validating that it belongs to this configuration and shape. After it
// returns, runFrom(snap.Minute) continues the run exactly where the
// snapshot left off.
func (ev *Evaluator) restoreSnapshot(snap *checkpoint.Snapshot) error {
	if snap.ConfigDigest != ev.configDigest() {
		return fmt.Errorf("%w: config digest differs", ErrSnapshotMismatch)
	}
	if snap.Minute > ev.Cfg.Minutes {
		return fmt.Errorf("%w: snapshot minute %d beyond configured %d minutes",
			ErrSnapshotMismatch, snap.Minute, ev.Cfg.Minutes)
	}
	letters := ev.Deployment.SortedLetters()
	if len(snap.Letters) != len(letters) {
		return fmt.Errorf("%w: snapshot has %d letters, deployment %d",
			ErrSnapshotMismatch, len(snap.Letters), len(letters))
	}
	if len(snap.CityExcess) != len(ev.cityExcess) {
		return fmt.Errorf("%w: snapshot has %d cities, evaluator %d",
			ErrSnapshotMismatch, len(snap.CityExcess), len(ev.cityExcess))
	}
	minute := snap.Minute
	// Validate every letter's shape before mutating anything, so a
	// mismatch leaves the evaluator untouched and usable for a fresh run.
	for i, lb := range letters {
		cl := &snap.Letters[i]
		ls := ev.letters[lb]
		if cl.Letter != lb {
			return fmt.Errorf("%w: snapshot letter %c at position %d, want %c",
				ErrSnapshotMismatch, cl.Letter, i, lb)
		}
		if len(cl.Routers) != len(ls.states) || len(cl.Active) != len(ls.active) {
			return fmt.Errorf("%w: letter %c has %d uplinks, snapshot %d",
				ErrSnapshotMismatch, lb, len(ls.states), len(cl.Routers))
		}
		if cl.Overlay != (ev.flt != nil) || (cl.Overlay && len(cl.EffActive) != len(ls.active)) {
			return fmt.Errorf("%w: letter %c fault overlay disagrees with plan", ErrSnapshotMismatch, lb)
		}
		if len(cl.Loss) != len(ls.letter.Sites) {
			return fmt.Errorf("%w: letter %c has %d sites, snapshot %d",
				ErrSnapshotMismatch, lb, len(ls.letter.Sites), len(cl.Loss))
		}
		if len(cl.Epochs) == 0 {
			return fmt.Errorf("%w: letter %c snapshot has no epochs", ErrSnapshotMismatch, lb)
		}
		for j := range cl.Epochs {
			if len(cl.Epochs[j].Active) != len(ls.active) {
				return fmt.Errorf("%w: letter %c epoch %d vector length %d, want %d",
					ErrSnapshotMismatch, lb, j, len(cl.Epochs[j].Active), len(ls.active))
			}
		}
		if !prefixLens(minute, cl.LegitServed, cl.AttackServed, cl.RetryServed, cl.Responses) {
			return fmt.Errorf("%w: letter %c traffic series shorter than minute %d",
				ErrSnapshotMismatch, lb, minute)
		}
		for si := range cl.Loss {
			if len(cl.Loss[si]) != minute || len(cl.Delay[si]) != minute || len(cl.HasRoute[si]) != minute {
				return fmt.Errorf("%w: letter %c site %d service series shorter than minute %d",
					ErrSnapshotMismatch, lb, si, minute)
			}
		}
	}
	for ci := range snap.CityExcess {
		if len(snap.CityExcess[ci]) != minute {
			return fmt.Errorf("%w: city %d excess series shorter than minute %d",
				ErrSnapshotMismatch, ci, minute)
		}
	}

	for ci, row := range snap.CityExcess {
		copy(ev.cityExcess[ci], row)
	}
	rest := make([]bgpmon.Update, len(snap.Updates))
	for i, u := range snap.Updates {
		rest[i] = bgpmon.Update{
			Minute: int(u.Minute), Letter: u.Letter,
			Peer: topo.ASN(u.Peer), From: int(u.From), To: int(u.To),
		}
	}
	ev.Collector.RestoreUpdates(rest)
	for i, lb := range letters {
		cl := &snap.Letters[i]
		ls := ev.letters[lb]
		for oi := range ls.states {
			r := cl.Routers[oi]
			ls.states[oi].router.Restore(netsim.RouterState{
				Announced: r.Announced, OverMinutes: int(r.OverMinutes), DownSince: int(r.DownSince),
			})
		}
		copy(ls.active, cl.Active)
		if cl.Overlay {
			ls.effActive = append([]bool(nil), cl.EffActive...)
		}
		// Replay the epoch history through the live route computation:
		// tables are a pure function of the announcement vector, so the
		// replayed tables — and the memo cache and incremental computer
		// state behind them — are bit-identical to the killed run's.
		ls.epochs = ls.epochs[:0]
		for j := range cl.Epochs {
			act := cl.Epochs[j].Active
			ent := ev.routeEntryFor(ls, act)
			ep := epoch{
				Start: int(cl.Epochs[j].Start), Table: ent.table,
				LegitFrac: ent.legitFrac, AttackFrac: ent.attackFrac,
			}
			if ev.opts.checkpointDir != "" {
				ep.act = act
			}
			ls.epochs = append(ls.epochs, ep)
		}
		ls.pending = ls.pending[:0]
		for si := range cl.Loss {
			copy(ls.loss[si], cl.Loss[si])
			copy(ls.delay[si], cl.Delay[si])
			copy(ls.hasRoute[si], cl.HasRoute[si])
		}
		copy(ls.legitServed, cl.LegitServed)
		copy(ls.attackServed, cl.AttackServed)
		copy(ls.retryServed, cl.RetryServed)
		copy(ls.responses, cl.Responses)
	}
	ev.replayRSSAC(minute, letters)
	return nil
}

// prefixLens reports whether every series has exactly `minute` entries.
func prefixLens(minute int, series ...[]float64) bool {
	for _, s := range series {
		if len(s) != minute {
			return false
		}
	}
	return true
}

// replayRSSAC refills the RSSAC accumulator from the restored per-minute
// series, in the exact order the engine's pass 2 records them
// (minute-outer, sorted-letter-inner), so the float accumulation sequence
// — and the finalized daily reports — match the uninterrupted run.
func (ev *Evaluator) replayRSSAC(upto int, letters []byte) {
	events := ev.sched.Events
	for minute := 0; minute < upto; minute++ {
		evIdx := int(ev.evActive[minute])
		for _, lb := range letters {
			ls := ev.letters[lb]
			rec := rssac.Minute{
				Minute:          minute,
				LegitServedQPS:  ls.legitServed[minute],
				RetryServedQPS:  ls.retryServed[minute],
				AttackServedQPS: ls.attackServed[minute],
				ResponseQPS:     ls.responses[minute],
			}
			if evIdx >= 0 {
				rec.AttackQueryBytes = events[evIdx].QueryBytes
				rec.AttackResponseBytes = events[evIdx].ResponseBytes
			}
			if ev.flt != nil && ev.flt.MonitorGapAt(lb, minute) {
				ev.RSSAC.RecordGap(lb, minute)
			} else {
				ev.RSSAC.Record(lb, rec)
			}
		}
	}
}

// ResumeRun builds an evaluator for cfg and continues the run recorded
// under dir: it loads the newest good snapshot (falling back across torn
// generations), restores the engine state, and executes the remaining
// minutes. When the directory holds no usable snapshot at all, it runs
// from the beginning — an empty or missing checkpoint directory degrades
// to a fresh run, not an error. A snapshot from a different configuration
// fails with ErrSnapshotMismatch.
//
// Pass the same options as the original run; include WithCheckpoint to
// keep checkpointing during the resumed portion. The resumed run's output
// is byte-identical to an uninterrupted run of the same configuration, at
// any worker count, with or without a fault plan.
func ResumeRun(dir string, cfg Config, opts ...Option) (*Evaluator, error) {
	ev, err := NewEvaluator(cfg, opts...)
	if err != nil {
		return nil, err
	}
	snap, err := checkpoint.LoadLatest(dir)
	if errors.Is(err, checkpoint.ErrNoSnapshot) {
		return ev, ev.Run()
	}
	if err != nil {
		return ev, fmt.Errorf("core: resume from %s: %w", dir, err)
	}
	if err := ev.restoreSnapshot(snap); err != nil {
		return ev, fmt.Errorf("core: resume from %s: %w", dir, err)
	}
	ev.ran = true
	if err := ev.runFrom(ev.opts.ctx, snap.Minute); err != nil {
		return ev, err
	}
	return ev, nil
}
