package core

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/bgpsim"
)

// TestEpochAtGuards covers the misuse paths that used to index out of
// bounds: a letter with zero epochs and negative minutes, with and without
// the post-run minute index.
func TestEpochAtGuards(t *testing.T) {
	ls := &letterState{}
	if ep := ls.epochAt(0); ep != nil {
		t.Errorf("epochAt on zero epochs = %+v, want nil", ep)
	}
	if ep := ls.epochAt(-3); ep != nil {
		t.Errorf("epochAt(-3) on zero epochs = %+v, want nil", ep)
	}

	ls.epochs = []epoch{{Start: 0}, {Start: 10}, {Start: 10}, {Start: 40}}
	if ep := ls.epochAt(-1); ep != nil {
		t.Errorf("epochAt(-1) = %+v, want nil", ep)
	}
	// Duplicate Start values (fault transition + router change in the same
	// minute): the *last* epoch with Start <= minute is in force, and the
	// indexed fast path must agree with the binary search.
	want := map[int]int{0: 0, 5: 0, 10: 2, 39: 2, 40: 3, 100: 3}
	for m, wi := range want {
		if ep := ls.epochAt(m); ep != &ls.epochs[wi] {
			t.Errorf("pre-index epochAt(%d) = epoch %+v, want index %d", m, ep, wi)
		}
	}
	ls.buildEpochIndex(60)
	for m, wi := range want {
		if ep := ls.epochAt(m); ep != &ls.epochs[wi] {
			t.Errorf("indexed epochAt(%d) = epoch %+v, want index %d", m, ep, wi)
		}
	}
	if ep := ls.epochAt(-1); ep != nil {
		t.Errorf("indexed epochAt(-1) = %+v, want nil", ep)
	}
}

// TestProbeOutcomeGuards checks that malformed probe requests — negative
// minutes, unknown letters, a letter that has not produced any routing
// epoch yet — degrade to Timeout instead of panicking.
func TestProbeOutcomeGuards(t *testing.T) {
	ev, err := NewEvaluator(tinyConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	vp := &ev.Population.VPs[0]
	vp.Hijacked = false
	if got := ev.ProbeOutcome(vp, 'K', -5); got.Status != atlas.Timeout {
		t.Errorf("negative minute: status %v, want Timeout", got.Status)
	}
	if got := ev.ProbeOutcome(vp, 'Z', 10); got.Status != atlas.Timeout {
		t.Errorf("unknown letter: status %v, want Timeout", got.Status)
	}
	// Before Run, no letter has epochs: the zero-epoch path must be a
	// Timeout, not an index panic.
	if got := ev.ProbeOutcome(vp, 'K', 10); got.Status != atlas.Timeout {
		t.Errorf("zero epochs: status %v, want Timeout", got.Status)
	}
	if got := ev.SiteAt('K', vp.ASN, 10); got != bgpsim.NoSite {
		t.Errorf("SiteAt before Run = %d, want NoSite", got)
	}
	if path, site := ev.TraceAt('K', vp.ASN, 10); path != nil || site != bgpsim.NoSite {
		t.Errorf("TraceAt before Run = (%v, %d), want (nil, NoSite)", path, site)
	}
}

// TestPostRunNegativeMinuteGuards exercises the guards on a completed run,
// where epochs and the minute index exist.
func TestPostRunNegativeMinuteGuards(t *testing.T) {
	ev, _ := getShared(t)
	vp := &ev.Population.VPs[0]
	if got := ev.ProbeOutcome(vp, 'K', -1); got.Status != atlas.Timeout {
		t.Errorf("negative minute after Run: status %v, want Timeout", got.Status)
	}
	if got := ev.SiteAt('K', vp.ASN, -1); got != bgpsim.NoSite {
		t.Errorf("SiteAt(-1) = %d, want NoSite", got)
	}
	if path, site := ev.TraceAt('K', vp.ASN, -1); path != nil || site != bgpsim.NoSite {
		t.Errorf("TraceAt(-1) = (%v, %d), want (nil, NoSite)", path, site)
	}
}
