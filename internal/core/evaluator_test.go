package core

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/topo"
)

// smallConfig keeps evaluator tests fast: a few hundred ASes and VPs over
// the full two days.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Topology = &topo.Config{Tier1s: 6, Tier2s: 60, Stubs: 700, Seed: seed}
	cfg.VPs = 400
	cfg.BotnetOrigins = 30
	return cfg
}

// sharedEval caches one small evaluator run across tests in this package.
var sharedEval *Evaluator
var sharedData *atlas.Dataset

func getShared(t *testing.T) (*Evaluator, *atlas.Dataset) {
	t.Helper()
	if sharedEval != nil {
		return sharedEval, sharedData
	}
	ev, err := NewEvaluator(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := ev.Measure()
	if err != nil {
		t.Fatal(err)
	}
	sharedEval, sharedData = ev, d
	return ev, d
}

func TestEvaluatorConstruction(t *testing.T) {
	ev, _ := getShared(t)
	if ev.Deployment.TotalSites() < 300 {
		t.Errorf("deployment has %d sites", ev.Deployment.TotalSites())
	}
	if ev.Collector.NumPeers() != 152 {
		t.Errorf("collectors = %d", ev.Collector.NumPeers())
	}
	if got := ev.Population.N(); got != 400 {
		t.Errorf("population = %d", got)
	}
	if err := ev.Deployment.Validate(true); err != nil {
		t.Error(err)
	}
}

func TestRunOnlyOnce(t *testing.T) {
	ev, _ := getShared(t)
	if err := ev.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestMeasureRequiresRun(t *testing.T) {
	ev, err := NewEvaluator(smallConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Measure(); err == nil {
		t.Error("Measure before Run should fail")
	}
}

func TestAttackedLettersLoseReachability(t *testing.T) {
	_, d := getShared(t)
	ev1 := attack.Events()[0]
	evBin := (ev1.StartMinute + ev1.Duration()/2) / 10

	for _, letter := range []byte{'B', 'H', 'K'} {
		s, err := d.SuccessSeries(letter)
		if err != nil {
			t.Fatal(err)
		}
		pre := s.Values[20] // minute 200, pre-event
		during := s.Values[evBin]
		if pre == 0 {
			t.Fatalf("%c: no successes pre-event", letter)
		}
		if during >= pre*0.9 {
			t.Errorf("%c: success %v -> %v during attack; expected visible loss", letter, pre, during)
		}
	}
	// Unattacked letters stay (nearly) intact: D, L, M (Figure 3).
	for _, letter := range []byte{'L', 'M'} {
		s, err := d.SuccessSeries(letter)
		if err != nil {
			t.Fatal(err)
		}
		pre := s.Values[20]
		during := s.Values[evBin]
		if during < pre*0.85 {
			t.Errorf("%c: unattacked letter dropped %v -> %v", letter, pre, during)
		}
	}
}

func TestUnicastBSuffersMost(t *testing.T) {
	_, d := getShared(t)
	ev1 := attack.Events()[0]
	evBin := (ev1.StartMinute + ev1.Duration()/2) / 10
	relDrop := func(letter byte) float64 {
		s, err := d.SuccessSeries(letter)
		if err != nil {
			t.Fatal(err)
		}
		pre := s.Median()
		if pre == 0 {
			return 0
		}
		return s.Values[evBin] / pre
	}
	b := relDrop('B')
	k := relDrop('K')
	if b >= k {
		t.Errorf("B (unicast) retained %.2f, K retained %.2f; B should suffer more", b, k)
	}
}

func TestSiteFlipsToKAMS(t *testing.T) {
	// K-LHR's catchment must shift toward K-AMS during the first event
	// (Figure 10): site 0 is K-AMS, site 1 K-LHR in our deployment.
	ev, d := getShared(t)
	k, _ := ev.Deployment.Letter('K')
	if k.Sites[0].Code != "AMS" || k.Sites[1].Code != "LHR" {
		t.Fatalf("unexpected K site order: %s %s", k.Sites[0].Code, k.Sites[1].Code)
	}
	ams, err := d.SiteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	ev1 := attack.Events()[0]
	evBin := (ev1.StartMinute + ev1.Duration()/2) / 10
	preAMS := ams.Values[20]
	durAMS := ams.Values[evBin]
	// AMS should not collapse; it absorbs (some loss allowed).
	if durAMS == 0 && preAMS > 0 {
		t.Error("K-AMS lost its whole catchment; absorb policy broken")
	}
}

func TestRSSACReportsProduced(t *testing.T) {
	ev, _ := getShared(t)
	reports := ev.RSSACReports('K')
	if len(reports) != 2 {
		t.Fatalf("K reports = %d", len(reports))
	}
	day0 := reports[0]
	if day0.Queries <= 0 || day0.Responses <= 0 {
		t.Errorf("day0 = %+v", day0)
	}
	// Attack day has more queries than a quiet letter-day baseline and
	// fewer responses than queries (RRL).
	if day0.Responses >= day0.Queries {
		t.Errorf("responses %g >= queries %g on attack day", day0.Responses, day0.Queries)
	}
	if day0.UniqueSources < 10_000_000 {
		t.Errorf("unique sources = %g, want explosion", day0.UniqueSources)
	}
	// Unattacked L sees retry (failover) load during events: queries
	// above its own normal level but no attack-size bin spike.
	l := ev.RSSACReports('L')
	lNormal := 60_000.0 * 86400
	if l[0].Queries <= lNormal {
		t.Errorf("L day0 queries = %g, want > %g (letter flips)", l[0].Queries, lNormal)
	}
	if l[0].UniqueSources <= 2_900_000 {
		t.Error("L unique sources should increase from failover resolvers")
	}
}

func TestBGPUpdatesBurstDuringEvents(t *testing.T) {
	ev, _ := getShared(t)
	// Across all letters, the event windows should contain far more
	// route changes than quiet periods (Figure 9).
	inEvent, outEvent := 0.0, 0.0
	inBins, outBins := 0, 0
	for _, lb := range ev.Deployment.SortedLetters() {
		s := ev.Collector.UpdateSeries(lb, 0, 10, ev.Cfg.Minutes/10)
		for b, v := range s.Values {
			minute := b * 10
			if attack.Active(minute) >= 0 || attack.Active(minute-30) >= 0 {
				inEvent += v
				inBins++
			} else {
				outEvent += v
				outBins++
			}
		}
	}
	if inBins == 0 || outBins == 0 {
		t.Fatal("bad binning")
	}
	inRate := inEvent / float64(inBins)
	outRate := outEvent / float64(outBins)
	if inRate <= outRate {
		t.Errorf("BGP update rate in events %.2f <= outside %.2f", inRate, outRate)
	}
}

func TestCollateralDamageNL(t *testing.T) {
	ev, _ := getShared(t)
	if len(ev.NLSeries) != 2 {
		t.Fatalf("nl series = %d", len(ev.NLSeries))
	}
	ev1 := attack.Events()[0]
	evBin := (ev1.StartMinute + ev1.Duration()/2) / 10
	for i, s := range ev.NLSeries {
		pre := s.Values[20]
		during := s.Values[evBin]
		if pre < 0.99 {
			t.Errorf("nl site %d pre-event service = %v, want ~1", i, pre)
		}
		if during > 0.5 {
			t.Errorf("nl site %d served %v during event, want collapse (Figure 15)", i, during)
		}
	}
}

func TestSiteRouteSeries(t *testing.T) {
	ev, _ := getShared(t)
	s, err := ev.SiteRouteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Values[0] != 1 {
		t.Errorf("K-AMS route at start = %v", s.Values[0])
	}
	if _, err := ev.SiteRouteSeries('Z', 0); err == nil {
		t.Error("unknown letter should error")
	}
	if _, err := ev.SiteRouteSeries('K', 999); err == nil {
		t.Error("unknown site should error")
	}
}

func TestLetterServedSeries(t *testing.T) {
	ev, _ := getShared(t)
	legit, attackQ, retry, resp, err := ev.LetterServedSeries('L')
	if err != nil {
		t.Fatal(err)
	}
	if len(legit) != ev.Cfg.Minutes || len(resp) != ev.Cfg.Minutes {
		t.Fatal("series length mismatch")
	}
	// L is not attacked: no attack traffic ever.
	for m, v := range attackQ {
		if v != 0 {
			t.Fatalf("L attack served at minute %d = %v", m, v)
		}
	}
	// Retry load appears only during events.
	evMid := attack.Event1Start + 60
	if retry[evMid] <= 0 {
		t.Error("no retry load at L mid-event")
	}
	if retry[100] != 0 {
		t.Error("retry load outside events")
	}
	if _, _, _, _, err := ev.LetterServedSeries('Z'); err == nil {
		t.Error("unknown letter should error")
	}
}

func TestProbeOutcomeDeterministic(t *testing.T) {
	ev, _ := getShared(t)
	vp := &ev.Population.VPs[5]
	o1 := ev.ProbeOutcome(vp, 'K', 500)
	o2 := ev.ProbeOutcome(vp, 'K', 500)
	if o1 != o2 {
		t.Errorf("probe not deterministic: %+v vs %+v", o1, o2)
	}
}

func TestHijackedVPsDetected(t *testing.T) {
	ev, d := getShared(t)
	hijacked := 0
	for _, vp := range ev.Population.VPs {
		if vp.Hijacked {
			hijacked++
			if !d.Excluded[vp.ID] {
				t.Errorf("hijacked VP %d not excluded", vp.ID)
			} else if d.ExcludedReason[vp.ID] != "hijack" {
				t.Errorf("VP %d reason = %q", vp.ID, d.ExcludedReason[vp.ID])
			}
		}
	}
	if hijacked == 0 {
		t.Skip("no hijacked VPs in this sample")
	}
}

func TestJune2016Schedule(t *testing.T) {
	// The follow-up event (§2.3 "Generalizing"): one longer window, every
	// letter targeted. The same machinery must reproduce the same
	// operational dynamics.
	cfg := smallConfig(77)
	cfg.Schedule = attack.June2016Schedule()
	ev, err := NewEvaluator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := ev.Measure()
	if err != nil {
		t.Fatal(err)
	}
	e := ev.Schedule().Events[0]
	evBin := (e.StartMinute + e.Duration()/2) / 10
	// Previously-spared letters now dip too (M has only 6 sites).
	m, err := d.SuccessSeries('M')
	if err != nil {
		t.Fatal(err)
	}
	if m.Values[evBin] >= m.Median()*0.95 {
		t.Errorf("M not affected in june2016: %v vs median %v", m.Values[evBin], m.Median())
	}
	// Nothing happens during the Nov-2015 windows (different schedule).
	b, err := d.SuccessSeries('B')
	if err != nil {
		t.Fatal(err)
	}
	novBin := (410 + 80) / 10
	if b.Values[novBin] < b.Median()*0.95 {
		t.Errorf("B dipped during the wrong (nov2015) window: %v vs %v", b.Values[novBin], b.Median())
	}
	if b.Values[evBin] >= b.Median()*0.8 {
		t.Errorf("B not affected during june2016 window: %v vs %v", b.Values[evBin], b.Median())
	}
}
