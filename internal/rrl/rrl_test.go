package rrl

import (
	"math"
	"sync"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ResponsesPerSecond: 0},
		{ResponsesPerSecond: -1},
		{ResponsesPerSecond: 5, Burst: -1},
		{ResponsesPerSecond: 5, PrefixBits: 40},
		{ResponsesPerSecond: 5, MaxEntries: -2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if l == nil {
		t.Fatal("nil limiter")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{})
}

func TestBurstThenLimit(t *testing.T) {
	l := MustNew(Config{ResponsesPerSecond: 5, Burst: 10, SlipRatio: 0})
	src := uint32(0xC0A80001)
	for i := 0; i < 10; i++ {
		if got := l.Check(src, 0); got != Send {
			t.Fatalf("response %d = %v, want Send (burst)", i, got)
		}
	}
	if got := l.Check(src, 0); got != Drop {
		t.Errorf("post-burst = %v, want Drop", got)
	}
	sent, dropped, slipped := l.Stats()
	if sent != 10 || dropped != 1 || slipped != 0 {
		t.Errorf("stats = %d/%d/%d", sent, dropped, slipped)
	}
}

func TestRefillOverTime(t *testing.T) {
	l := MustNew(Config{ResponsesPerSecond: 2, Burst: 2, SlipRatio: 0})
	src := uint32(1) << 24
	l.Check(src, 0)
	l.Check(src, 0)
	if got := l.Check(src, 0); got != Drop {
		t.Fatalf("bucket should be empty, got %v", got)
	}
	// After 1 second, 2 tokens refill.
	if got := l.Check(src, 1000); got != Send {
		t.Errorf("after refill = %v, want Send", got)
	}
	if got := l.Check(src, 1000); got != Send {
		t.Errorf("second refill token = %v, want Send", got)
	}
	if got := l.Check(src, 1000); got != Drop {
		t.Errorf("exhausted again = %v, want Drop", got)
	}
}

func TestSlipEveryN(t *testing.T) {
	l := MustNew(Config{ResponsesPerSecond: 1, Burst: 1, SlipRatio: 2})
	src := uint32(7) << 24
	if l.Check(src, 0) != Send {
		t.Fatal("first should send")
	}
	// Suppressed responses alternate Slip (every 2nd) and Drop.
	got := []Action{l.Check(src, 0), l.Check(src, 0), l.Check(src, 0), l.Check(src, 0)}
	want := []Action{Drop, Slip, Drop, Slip}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("suppressed %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPrefixAggregation(t *testing.T) {
	l := MustNew(Config{ResponsesPerSecond: 1, Burst: 1, SlipRatio: 0, PrefixBits: 24})
	// Two hosts in the same /24 share one bucket.
	a, b := uint32(0x0A000001), uint32(0x0A0000FE)
	if l.Check(a, 0) != Send {
		t.Fatal("first in prefix should send")
	}
	if got := l.Check(b, 0); got != Drop {
		t.Errorf("same /24 neighbor = %v, want Drop (shared bucket)", got)
	}
	// A different /24 has its own bucket.
	if got := l.Check(uint32(0x0A000101), 0); got != Send {
		t.Errorf("different /24 = %v, want Send", got)
	}
	if l.Entries() != 2 {
		t.Errorf("entries = %d, want 2", l.Entries())
	}
}

func TestEvictionBoundsState(t *testing.T) {
	l := MustNew(Config{ResponsesPerSecond: 1, Burst: 1, SlipRatio: 0, MaxEntries: 100, PrefixBits: 32})
	// A spoofed flood of unique sources must not grow state unboundedly.
	for i := uint32(0); i < 10_000; i++ {
		l.Check(i, int64(i))
	}
	if l.Entries() > 101 {
		t.Errorf("entries = %d, want <= 101", l.Entries())
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := MustNew(DefaultConfig())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Check(uint32(w)<<24|uint32(i%50), int64(i))
			}
		}(w)
	}
	wg.Wait()
	sent, dropped, slipped := l.Stats()
	if sent+dropped+slipped != 16000 {
		t.Errorf("verdicts = %d, want 16000", sent+dropped+slipped)
	}
}

func TestSuppressionModelCalibration(t *testing.T) {
	// Full flood suppresses ~60% of responses (Verisign, §2.3).
	got := SuppressionModel(1)
	if math.Abs(got-0.6) > 0.02 {
		t.Errorf("SuppressionModel(1) = %v, want ~0.60", got)
	}
	if SuppressionModel(0) != 0 {
		t.Error("no flood should mean no suppression")
	}
	if SuppressionModel(-1) != 0 {
		t.Error("negative flood fraction should clamp to 0")
	}
	if SuppressionModel(2) != SuppressionModel(1) {
		t.Error("flood fraction should clamp to 1")
	}
	if SuppressionModel(0.5) >= SuppressionModel(1) {
		t.Error("suppression should grow with flood fraction")
	}
}

func TestActionString(t *testing.T) {
	if Send.String() != "send" || Drop.String() != "drop" || Slip.String() != "slip" || Action(9).String() != "unknown" {
		t.Error("Action strings")
	}
}

func BenchmarkCheckHotPrefix(b *testing.B) {
	l := MustNew(DefaultConfig())
	for i := 0; i < b.N; i++ {
		l.Check(0x0A000001, int64(i))
	}
}

func BenchmarkCheckSpoofedFlood(b *testing.B) {
	l := MustNew(DefaultConfig())
	for i := 0; i < b.N; i++ {
		l.Check(uint32(i)*2654435761, int64(i/1000))
	}
}
