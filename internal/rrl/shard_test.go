package rrl

import (
	"sync"
	"testing"
)

// TestShardedVerdictEquivalence replays one deterministic traffic sequence
// through limiters with different shard counts and requires identical
// verdicts packet by packet: sharding relocates buckets, it must never
// change per-prefix decisions while the table is below capacity.
func TestShardedVerdictEquivalence(t *testing.T) {
	mk := func(shards int) *Limiter {
		return MustNew(Config{
			ResponsesPerSecond: 3, Burst: 5, SlipRatio: 2, PrefixBits: 24, Shards: shards,
		})
	}
	base := mk(1)
	for _, shards := range []int{2, 4, 7, 16} {
		l := mk(shards)
		// Mixed workload: 40 heavy prefixes plus a spread of one-shot
		// sources, over an advancing clock — a miniature of the event mix.
		for step := 0; step < 5000; step++ {
			var src uint32
			if step%3 == 0 {
				src = uint32(step) * 2654435761 // spoofed-unique
			} else {
				src = uint32(step%40)<<24 | uint32(step) // heavy hitters
			}
			now := int64(step / 10)
			want := base.Check(src, now)
			if got := l.Check(src, now); got != want {
				t.Fatalf("step %d (src %08x): %d shards says %v, 1 shard says %v",
					step, src, shards, got, want)
			}
		}
		// Aggregate stats must match too.
		s1, d1, sl1 := base.Stats()
		s2, d2, sl2 := l.Stats()
		if s1 != s2 || d1 != d2 || sl1 != sl2 {
			t.Fatalf("%d shards stats %d/%d/%d, 1 shard %d/%d/%d", shards, s2, d2, sl2, s1, d1, sl1)
		}
		base = mk(1) // fresh baseline for the next shard count
	}
}

// TestShardStableMapping checks a prefix never migrates between shards.
func TestShardStableMapping(t *testing.T) {
	l := MustNew(Config{ResponsesPerSecond: 1, Shards: 8})
	for src := uint32(0); src < 4096; src += 7 {
		key := src & l.mask
		first := l.shardFor(key)
		for i := 0; i < 3; i++ {
			if l.shardFor(key) != first {
				t.Fatalf("key %08x migrated shards", key)
			}
		}
	}
}

// TestShardSpread verifies the splitmix spread actually uses all shards for
// masked /24 keys (a plain modulo of the masked key would not).
func TestShardSpread(t *testing.T) {
	l := MustNew(Config{ResponsesPerSecond: 1, PrefixBits: 24, Shards: 8})
	hit := make(map[*shard]int)
	for i := uint32(0); i < 256; i++ {
		key := (i << 8) & l.mask // 256 distinct /24s
		hit[l.shardFor(key)]++
	}
	if len(hit) != 8 {
		t.Fatalf("256 prefixes landed on %d of 8 shards: %v", len(hit), hit)
	}
}

func TestShardsValidation(t *testing.T) {
	if _, err := New(Config{ResponsesPerSecond: 1, Shards: -1}); err == nil {
		t.Error("negative Shards should fail validation")
	}
	l, err := New(Config{ResponsesPerSecond: 1, Shards: 130, MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	// More shards than MaxEntries still leaves every shard one bucket.
	for i := range l.shards {
		if l.shards[i].maxEntries < 1 {
			t.Fatal("per-shard cap fell below 1")
		}
	}
}

// TestShardedConcurrentAccess hammers a sharded limiter from many
// goroutines under -race and checks verdict conservation.
func TestShardedConcurrentAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	l := MustNew(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Check(uint32(w)<<24|uint32(i%50), int64(i))
				if i%100 == 0 {
					l.Stats()
					l.Entries()
				}
			}
		}(w)
	}
	wg.Wait()
	sent, dropped, slipped := l.Stats()
	if sent+dropped+slipped != 16000 {
		t.Errorf("verdicts = %d, want 16000", sent+dropped+slipped)
	}
}

func BenchmarkCheckShardedParallel(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Shards = 8
	l := MustNew(cfg)
	b.RunParallel(func(pb *testing.PB) {
		i := uint32(0)
		for pb.Next() {
			i++
			l.Check(i*2654435761, int64(i/1000))
		}
	})
}
