// Package rrl implements DNS Response Rate Limiting in the style deployed
// on authoritative servers (Vixie's DNS RRL).
//
// RRL limits identical responses to the same client network, defeating both
// reflection-amplification and — as during the Nov 2015 events — repeated
// fixed-name floods: Verisign reported RRL identified duplicate queries and
// dropped about 60% of responses at A- and J-Root (§2.3). Sources are
// aggregated by prefix, each prefix holds a token bucket, and a configurable
// fraction of suppressed answers "slip" through as truncated replies so
// that legitimate clients behind an abused prefix can retry over TCP.
//
// The limiter is deterministic: callers supply the clock, so simulation and
// live servers share the same code path.
package rrl

import (
	"errors"
	"sync"
)

// Action is the limiter's verdict for one response.
type Action uint8

// Verdicts.
const (
	// Send means the response goes out normally.
	Send Action = iota
	// Drop means the response is suppressed entirely.
	Drop
	// Slip means a minimal truncated (TC=1) response is sent so genuine
	// clients can fail over to TCP.
	Slip
)

// String returns the action name.
func (a Action) String() string {
	switch a {
	case Send:
		return "send"
	case Drop:
		return "drop"
	case Slip:
		return "slip"
	default:
		return "unknown"
	}
}

// Config controls the limiter.
type Config struct {
	// ResponsesPerSecond is the sustained per-prefix response budget.
	ResponsesPerSecond float64
	// Burst is the bucket depth in responses; defaults to 4x the
	// per-second rate when zero.
	Burst float64
	// SlipRatio sends every Nth suppressed response as truncated. 0
	// disables slip; 2 matches common operator practice.
	SlipRatio int
	// PrefixBits aggregates IPv4 sources by this prefix length
	// (default 24, the RRL convention).
	PrefixBits int
	// MaxEntries caps the state table; idle entries are evicted first.
	// Defaults to 65536.
	MaxEntries int
	// IdleTimeoutMs evicts buckets untouched for this long (default 10s).
	IdleTimeoutMs int64
	// Shards splits the bucket table into independently locked shards so
	// concurrent packet workers do not serialize on one mutex. A prefix
	// always maps to the same shard, so per-prefix verdicts are identical
	// for any shard count while the table is below capacity (MaxEntries is
	// divided across shards, so *eviction* under a full table can differ).
	// Defaults to 1: the single-lock behavior of earlier revisions.
	Shards int
}

// DefaultConfig matches common authoritative-server settings.
func DefaultConfig() Config {
	return Config{ResponsesPerSecond: 5, SlipRatio: 2, PrefixBits: 24}
}

func (c *Config) fillDefaults() error {
	if c.ResponsesPerSecond <= 0 {
		return errors.New("rrl: ResponsesPerSecond must be positive")
	}
	if c.Burst == 0 {
		c.Burst = 4 * c.ResponsesPerSecond
	}
	if c.Burst <= 0 {
		return errors.New("rrl: Burst must be positive")
	}
	if c.PrefixBits == 0 {
		c.PrefixBits = 24
	}
	if c.PrefixBits < 1 || c.PrefixBits > 32 {
		return errors.New("rrl: PrefixBits must be in [1,32]")
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 65536
	}
	if c.MaxEntries < 1 {
		return errors.New("rrl: MaxEntries must be positive")
	}
	if c.IdleTimeoutMs == 0 {
		c.IdleTimeoutMs = 10_000
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 {
		return errors.New("rrl: Shards must be positive")
	}
	return nil
}

type bucket struct {
	tokens     float64
	lastMs     int64
	suppressed int // counts suppressed responses for slip accounting
}

// shard is one independently locked slice of the bucket table. Padding
// would buy little here: the mutex hold covers a map op, not a counter.
type shard struct {
	mu      sync.Mutex
	buckets map[uint32]*bucket
	// lastSweepMs rate-limits full idle sweeps so spoofed floods of
	// unique sources cannot force an O(table) scan on every insert.
	lastSweepMs int64
	maxEntries  int

	// Stats, guarded by mu.
	sent, dropped, slipped uint64
}

// Limiter rate-limits responses per source prefix. It is safe for
// concurrent use; with Config.Shards > 1 concurrent callers touching
// different prefixes rarely share a lock.
type Limiter struct {
	cfg    Config
	mask   uint32
	shards []shard
}

// New creates a limiter. The zero Config is invalid; start from
// DefaultConfig.
func New(cfg Config) (*Limiter, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	l := &Limiter{
		cfg:    cfg,
		mask:   ^uint32(0) << (32 - cfg.PrefixBits),
		shards: make([]shard, cfg.Shards),
	}
	perShard := cfg.MaxEntries / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	for i := range l.shards {
		l.shards[i].buckets = make(map[uint32]*bucket)
		l.shards[i].maxEntries = perShard
	}
	return l, nil
}

// shardFor picks the shard holding key's bucket. The prefix mask zeroes the
// low bits, so a modulo of the raw key would land everything in a handful
// of shards; a splitmix-style multiply spreads the surviving high bits
// first. The mapping depends only on the key, never on concurrency, so
// verdict sequences per prefix are shard-count-independent.
func (l *Limiter) shardFor(key uint32) *shard {
	if len(l.shards) == 1 {
		return &l.shards[0]
	}
	h := uint64(key) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return &l.shards[h%uint64(len(l.shards))]
}

// MustNew is New for known-good, compile-time-constant configs (tests and
// defaults). Configs from external input must go through New.
func MustNew(cfg Config) *Limiter {
	l, err := New(cfg)
	if err != nil {
		//repolint:allow panic -- Must* contract: config is a compile-time constant
		panic(err)
	}
	return l
}

// Check decides the fate of one response to src at the given time.
func (l *Limiter) Check(src uint32, nowMs int64) Action {
	key := src & l.mask
	sh := l.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()

	b, ok := sh.buckets[key]
	if !ok {
		if len(sh.buckets) >= sh.maxEntries {
			sh.evictLocked(nowMs, l.cfg.IdleTimeoutMs)
		}
		b = &bucket{tokens: l.cfg.Burst, lastMs: nowMs}
		sh.buckets[key] = b
	}
	// Refill.
	if nowMs > b.lastMs {
		b.tokens += float64(nowMs-b.lastMs) / 1000 * l.cfg.ResponsesPerSecond
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
		b.lastMs = nowMs
	}
	if b.tokens >= 1 {
		b.tokens--
		sh.sent++
		return Send
	}
	b.suppressed++
	if l.cfg.SlipRatio > 0 && b.suppressed%l.cfg.SlipRatio == 0 {
		sh.slipped++
		return Slip
	}
	sh.dropped++
	return Drop
}

// evictLocked makes room in the shard's state table. A full sweep of idle
// buckets runs at most once per idle-timeout interval; between sweeps (the
// steady state under a spoofed flood of unique sources, where nothing is
// ever idle) a single arbitrary entry is dropped instead, keeping Check
// O(1) amortized.
func (sh *shard) evictLocked(nowMs, idleTimeoutMs int64) {
	if nowMs-sh.lastSweepMs >= idleTimeoutMs {
		sh.lastSweepMs = nowMs
		evicted := false
		for k, b := range sh.buckets {
			if nowMs-b.lastMs > idleTimeoutMs {
				delete(sh.buckets, k)
				evicted = true
			}
		}
		if evicted {
			return
		}
	}
	for k := range sh.buckets {
		delete(sh.buckets, k)
		break
	}
}

// Stats reports cumulative verdict counts, summed over shards.
func (l *Limiter) Stats() (sent, dropped, slipped uint64) {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		sent += sh.sent
		dropped += sh.dropped
		slipped += sh.slipped
		sh.mu.Unlock()
	}
	return sent, dropped, slipped
}

// Entries returns the current number of tracked prefixes.
func (l *Limiter) Entries() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.buckets)
		sh.mu.Unlock()
	}
	return n
}

// SuppressionModel provides the statistical counterpart used by the
// full-scale event simulation, where individual packets are not generated.
// Given the fraction of traffic that is a fixed-name flood from repeated
// sources, it returns the fraction of *responses* suppressed, calibrated to
// the ~60% suppression Verisign reported.
func SuppressionModel(floodFraction float64) float64 {
	if floodFraction <= 0 {
		return 0
	}
	if floodFraction > 1 {
		floodFraction = 1
	}
	// Heavy repeated sources are almost fully suppressed once buckets
	// drain; random-spoofed sources mostly evade RRL (each prefix sends
	// only a handful of queries). With the event's 0.68 heavy-source
	// share, a fully flooded letter suppresses ~60% of responses.
	const heavyShare = 0.68
	const heavySuppression = 0.88
	return floodFraction * heavyShare * heavySuppression
}
