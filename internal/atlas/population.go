// Package atlas models a RIPE-Atlas-like measurement platform: a global —
// but strongly Europe-biased — population of vantage points (VPs) that
// query every root letter with CHAOS probes on a fixed cadence, plus the
// data cleaning and ten-minute binning the paper applies before analysis
// (§2.4.1).
package atlas

import (
	"fmt"
	"math/rand"

	"github.com/rootevent/anycastddos/internal/geo"
	"github.com/rootevent/anycastddos/internal/topo"
)

// VPID identifies a vantage point.
type VPID int32

// MinFirmware is the oldest firmware version whose measurements are kept
// (§2.4.1: version 4570, released early 2013).
const MinFirmware = 4570

// AtlasTimeoutMs is the probe timeout: replies slower than this count as
// missing (§2.4.1: 5 seconds).
const AtlasTimeoutMs = 5000

// HijackRTTThresholdMs: a CHAOS reply that does not match the letter's
// pattern AND arrives faster than this marks the VP as hijacked (§2.4.1:
// 7 ms, following Fan et al.).
const HijackRTTThresholdMs = 7

// VP is one vantage point.
type VP struct {
	ID       VPID
	ASN      topo.ASN
	City     geo.City
	Firmware int
	// Hijacked VPs have their root queries intercepted by a third-party
	// resolver; the platform does not know this a priori — the cleaning
	// stage must detect it from reply patterns and RTTs.
	Hijacked bool
	// Phase staggers this VP's probing within the interval, mimicking
	// Atlas probes starting at arbitrary times.
	Phase int
}

// Population is the set of vantage points.
type Population struct {
	VPs []VP
}

// PopulationConfig controls VP generation.
type PopulationConfig struct {
	N    int
	Seed int64
	// RegionWeights biases VP placement; nil selects AtlasRegionWeights.
	RegionWeights map[geo.Region]float64
	// OldFirmwareFrac is the fraction of VPs running pre-4570 firmware.
	OldFirmwareFrac float64
	// HijackedFrac is the fraction of VPs behind interception (the paper
	// found 74 of 9363, <1%).
	HijackedFrac float64
}

// AtlasRegionWeights reflects RIPE Atlas's documented Europe bias.
var AtlasRegionWeights = map[geo.Region]float64{
	geo.Europe:       0.62,
	geo.NorthAmerica: 0.17,
	geo.Asia:         0.09,
	geo.SouthAmerica: 0.04,
	geo.Oceania:      0.03,
	geo.MiddleEast:   0.03,
	geo.Africa:       0.02,
}

// DefaultPopulationConfig sizes the platform like RIPE Atlas in late 2015
// (~9000 active VPs) with the paper's impurity rates.
func DefaultPopulationConfig(seed int64) PopulationConfig {
	return PopulationConfig{N: 9000, Seed: seed, OldFirmwareFrac: 0.03, HijackedFrac: 0.008}
}

// NewPopulation places VPs on stub ASes of the graph with the configured
// regional bias. Generation is deterministic per config.
func NewPopulation(g *topo.Graph, cfg PopulationConfig) (*Population, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("atlas: population size %d", cfg.N)
	}
	weights := cfg.RegionWeights
	if weights == nil {
		weights = AtlasRegionWeights
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Bucket stub ASes by region.
	byRegion := map[geo.Region][]topo.ASN{}
	for _, asn := range g.StubASNs() {
		r := g.AS(asn).City.Region
		byRegion[r] = append(byRegion[r], asn)
	}
	if len(byRegion) == 0 {
		return nil, fmt.Errorf("atlas: topology has no stub ASes")
	}
	pickRegion := func() geo.Region {
		x := rng.Float64()
		var cum float64
		for r := geo.Region(0); r < 7; r++ {
			cum += weights[r]
			if x < cum && len(byRegion[r]) > 0 {
				return r
			}
		}
		// Fall back to any populated region.
		for r := geo.Region(0); r < 7; r++ {
			if len(byRegion[r]) > 0 {
				return r
			}
		}
		return geo.Europe
	}

	p := &Population{VPs: make([]VP, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		region := pickRegion()
		asns := byRegion[region]
		asn := asns[rng.Intn(len(asns))]
		vp := VP{
			ID:       VPID(i),
			ASN:      asn,
			City:     g.AS(asn).City,
			Firmware: 4740,
			Phase:    rng.Intn(4),
		}
		if rng.Float64() < cfg.OldFirmwareFrac {
			vp.Firmware = 4460 + rng.Intn(100) // pre-4570
		}
		if rng.Float64() < cfg.HijackedFrac {
			vp.Hijacked = true
		}
		p.VPs[i] = vp
	}
	return p, nil
}

// N returns the population size.
func (p *Population) N() int { return len(p.VPs) }

// InRegion returns the IDs of VPs in a region.
func (p *Population) InRegion(r geo.Region) []VPID {
	var out []VPID
	for i := range p.VPs {
		if p.VPs[i].City.Region == r {
			out = append(out, p.VPs[i].ID)
		}
	}
	return out
}
