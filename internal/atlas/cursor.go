package atlas

import "fmt"

// Rows is an allocation-free cursor over the binned columns of one letter.
// Next advances to the next non-excluded VP and exposes that VP's cells as
// direct column views of length Bins — no per-cell struct is built:
//
//	rows, err := d.Rows('K')
//	for rows.Next() {
//		status, site, rtt := rows.Status(), rows.Site(), rows.RTT()
//		for b := range status { ... }
//	}
//
// The views alias the dataset's storage and must not be modified. A Rows
// value is only valid for the dataset that produced it; concurrent cursors
// over one dataset are safe.
type Rows struct {
	d      *Dataset
	li     int
	vp     int
	status []Status
	site   []int16
	rtt    []uint16
}

// Rows returns a cursor over the binned columns of one letter, positioned
// before the first non-excluded VP.
func (d *Dataset) Rows(letter byte) (Rows, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return Rows{}, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	return Rows{d: d, li: li, vp: -1}, nil
}

// Next advances to the next non-excluded VP, returning false when the
// population is exhausted.
func (r *Rows) Next() bool {
	for r.vp++; r.vp < r.d.NumVPs; r.vp++ {
		if r.d.Excluded[r.vp] {
			continue
		}
		lo := r.vp * r.d.Bins
		hi := lo + r.d.Bins
		r.status = r.d.binStatus[r.li][lo:hi]
		r.site = r.d.binSite[r.li][lo:hi]
		r.rtt = r.d.binRTT[r.li][lo:hi]
		return true
	}
	return false
}

// VP returns the current VP's ID.
func (r *Rows) VP() VPID { return VPID(r.vp) }

// Status returns the current VP's per-bin status column view (length Bins).
func (r *Rows) Status() []Status { return r.status }

// Site returns the current VP's per-bin site column view (length Bins).
// Entries are NoSite where no site was identified.
func (r *Rows) Site() []int16 { return r.site }

// RTT returns the current VP's per-bin mean-RTT column view (length Bins).
// Entries are only meaningful where the status is OK; RTTOverflowMs marks a
// saturated measurement.
func (r *Rows) RTT() []uint16 { return r.rtt }

// RawRows is the Rows counterpart for a letter's raw per-probe columns. The
// (site, server) identity of a cell is resolved through the interned
// SiteServer table when the dataset is sealed, or from the wide columns of
// an unsealed in-progress dataset — callers see one API either way.
type RawRows struct {
	d      *Dataset
	rc     *rawColumns
	vp     int
	lo     int
	status []Status
	rtt    []uint16
}

// RawRows returns a cursor over the raw columns of one raw-retained letter,
// positioned before the first non-excluded VP.
func (d *Dataset) RawRows(letter byte) (RawRows, error) {
	rc, ok := d.raw[letter]
	if !ok {
		return RawRows{}, fmt.Errorf("atlas: no raw retention for letter %c", letter)
	}
	return RawRows{d: d, rc: rc, vp: -1}, nil
}

// Next advances to the next non-excluded VP, returning false when the
// population is exhausted.
func (r *RawRows) Next() bool {
	for r.vp++; r.vp < r.d.NumVPs; r.vp++ {
		if r.d.Excluded[r.vp] {
			continue
		}
		r.lo = r.vp * r.d.RawBins
		hi := r.lo + r.d.RawBins
		r.status = r.rc.status[r.lo:hi]
		r.rtt = r.rc.rtt[r.lo:hi]
		return true
	}
	return false
}

// VP returns the current VP's ID.
func (r *RawRows) VP() VPID { return VPID(r.vp) }

// Status returns the current VP's per-raw-bin status column view (length
// RawBins).
func (r *RawRows) Status() []Status { return r.status }

// RTT returns the current VP's per-raw-bin RTT column view (length RawBins).
func (r *RawRows) RTT() []uint16 { return r.rtt }

// Site returns the responding site of the current VP's raw bin rb, or
// NoSite.
func (r *RawRows) Site(rb int) int16 {
	site, _ := r.rc.at(r.d.ssTable, r.lo+rb)
	return site
}

// Server returns the 1-based responding server of the current VP's raw bin
// rb, or 0 when unknown.
func (r *RawRows) Server(rb int) int8 {
	_, server := r.rc.at(r.d.ssTable, r.lo+rb)
	return server
}
