package atlas

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
)

// shardWorld answers probes as a pure function of (vp, letter, minute) so
// every sharding of the campaign must produce the same dataset.
func shardWorld() *fakeWorld {
	return &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		h := uint64(vp.ID)*2654435761 ^ uint64(letter)<<17 ^ uint64(minute)
		if h%7 == 0 {
			return Outcome{Status: Timeout}
		}
		return Outcome{
			Status: OK,
			Site:   int(h % 5),
			Server: 1,
			RTTms:  float64(20 + h%300),
		}
	}}
}

func TestRunContextWorkerEquivalence(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 60)
	cfg := DefaultScheduleConfig()
	cfg.Minutes = 240
	w := shardWorld()

	var golden []byte
	for _, workers := range []int{1, 2, 4, 8, 0} {
		cfg.Workers = workers
		d, err := RunContext(context.Background(), p, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = buf.Bytes()
			continue
		}
		if !bytes.Equal(golden, buf.Bytes()) {
			t.Errorf("workers=%d produced a different dataset than workers=1", workers)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 40)
	cfg := DefaultScheduleConfig()
	cfg.Minutes = 240
	cfg.Workers = 2

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, p, shardWorld(), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextProgress(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 30)
	cfg := DefaultScheduleConfig()
	cfg.Minutes = 120
	cfg.Workers = 3
	var (
		mu   sync.Mutex
		seen []int
	)
	cfg.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != p.N() {
			t.Errorf("progress total = %d, want %d", total, p.N())
		}
		seen = append(seen, done)
	}
	if _, err := RunContext(context.Background(), p, shardWorld(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(seen) != p.N() {
		t.Fatalf("progress calls = %d, want %d", len(seen), p.N())
	}
	max := 0
	for _, d := range seen {
		if d > max {
			max = d
		}
	}
	if max != p.N() {
		t.Errorf("max progress = %d, want %d", max, p.N())
	}
}
