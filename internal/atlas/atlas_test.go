package atlas

import (
	"fmt"
	"sync"
	"testing"

	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/geo"
	"github.com/rootevent/anycastddos/internal/topo"
)

func testGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 30, Stubs: 600, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewPopulation(t *testing.T) {
	g := testGraph(t)
	p, err := NewPopulation(g, PopulationConfig{N: 2000, Seed: 1, OldFirmwareFrac: 0.03, HijackedFrac: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2000 {
		t.Fatalf("N = %d", p.N())
	}
	eu := len(p.InRegion(geo.Europe))
	frac := float64(eu) / 2000
	if frac < 0.5 || frac > 0.75 {
		t.Errorf("Europe fraction = %.2f, want ~0.62 (Atlas bias)", frac)
	}
	old, hij := 0, 0
	for _, vp := range p.VPs {
		if g.AS(vp.ASN).Tier != topo.Stub {
			t.Fatalf("VP %d on non-stub AS", vp.ID)
		}
		if vp.Firmware < MinFirmware {
			old++
		}
		if vp.Hijacked {
			hij++
		}
		if vp.Phase < 0 || vp.Phase > 3 {
			t.Fatalf("VP %d phase = %d", vp.ID, vp.Phase)
		}
	}
	if old < 20 || old > 150 {
		t.Errorf("old firmware VPs = %d, want ~60", old)
	}
	if hij < 5 || hij > 60 {
		t.Errorf("hijacked VPs = %d, want ~20", hij)
	}
}

func TestNewPopulationErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := NewPopulation(g, PopulationConfig{N: 0}); err == nil {
		t.Error("want error for N=0")
	}
}

// fakeWorld implements World with scripted behaviour per VP.
type fakeWorld struct {
	fn func(vp *VP, letter byte, minute int) Outcome
}

func (f *fakeWorld) ProbeOutcome(vp *VP, letter byte, minute int) Outcome {
	return f.fn(vp, letter, minute)
}

func smallPopulation(t *testing.T, g *topo.Graph, n int) *Population {
	t.Helper()
	p, err := NewPopulation(g, PopulationConfig{N: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunBinsAndPrecedence(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 20)
	for i := range p.VPs {
		p.VPs[i].Phase = 0
		p.VPs[i].Firmware = 4700
		p.VPs[i].Hijacked = false
	}
	// Scripted world: probes at minute 0 succeed on site 1, minute 4
	// time out, minute 8 return an error. The 10-minute bin must report
	// OK at site 1 (site > error > missing precedence).
	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		switch minute % 12 {
		case 0:
			return Outcome{Status: OK, Site: 1, Server: 2, RTTms: 30,
				ChaosTXT: chaos.MustFormat(letter, "AMS", 2)}
		case 4:
			return Outcome{Status: Timeout}
		default:
			return Outcome{Status: RCodeErr}
		}
	}}
	cfg := ScheduleConfig{
		Letters: []byte("K"), RawLetters: []byte("K"),
		Minutes: 40, BinMinutes: 10, IntervalMin: 4, AIntervalMin: 30,
	}
	d := Run(p, w, cfg)
	obs, ok := d.At('K', 0, 0)
	if !ok || obs.Status != OK || obs.Site != 1 || obs.RTTms != 30 {
		t.Errorf("bin 0 = %+v, %v; want OK site 1", obs, ok)
	}
	// Bin 1 covers minutes 10-19: probes at 12 (err), 16 (ok).
	obs1, _ := d.At('K', 0, 1)
	if obs1.Status != OK {
		t.Errorf("bin 1 = %+v, want OK (12->err, 16->timeout? check schedule)", obs1)
	}
	// Raw probes retained.
	raw, ok := d.RawAt('K', 0, 0)
	if !ok || raw.Status != OK || raw.Server != 2 {
		t.Errorf("raw 0 = %+v, %v", raw, ok)
	}
	raw1, _ := d.RawAt('K', 0, 1)
	if raw1.Status != Timeout {
		t.Errorf("raw 1 = %+v, want timeout", raw1)
	}
}

func TestRunCleansFirmwareAndHijacks(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 30)
	for i := range p.VPs {
		p.VPs[i].Firmware = 4700
		p.VPs[i].Hijacked = false
	}
	p.VPs[3].Firmware = 4500  // old firmware -> excluded
	p.VPs[7].Hijacked = true  // bogus replies at short RTT -> excluded
	p.VPs[11].Hijacked = true // bogus replies but slow -> kept, no site

	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		if vp.Hijacked {
			rtt := 2.0
			if vp.ID == 11 {
				rtt = 45 // interception far away: not flagged by the heuristic
			}
			return Outcome{Status: OK, Site: 0, RTTms: rtt, ChaosTXT: "dnsmasq-2.76"}
		}
		return Outcome{Status: OK, Site: 0, Server: 1, RTTms: 25,
			ChaosTXT: chaos.MustFormat(letter, "AMS", 1)}
	}}
	cfg := ScheduleConfig{Letters: []byte("K"), Minutes: 20, BinMinutes: 10, IntervalMin: 4}
	d := Run(p, w, cfg)

	if !d.Excluded[3] || d.ExcludedReason[3] != "firmware" {
		t.Errorf("VP3 = excluded %v reason %q", d.Excluded[3], d.ExcludedReason[3])
	}
	if !d.Excluded[7] || d.ExcludedReason[7] != "hijack" {
		t.Errorf("VP7 = excluded %v reason %q", d.Excluded[7], d.ExcludedReason[7])
	}
	if d.Excluded[11] {
		t.Error("VP11 should be kept (slow interception evades the heuristic, as in the paper)")
	}
	// But VP11's observations carry no site mapping.
	obs, ok := d.At('K', 11, 0)
	if !ok || obs.Site != NoSite {
		t.Errorf("VP11 bin = %+v, want no site", obs)
	}
	if got := d.NumExcluded(); got != 2 {
		t.Errorf("NumExcluded = %d, want 2", got)
	}
	// Excluded VPs are invisible through At.
	if _, ok := d.At('K', 3, 0); ok {
		t.Error("excluded VP visible through At")
	}
}

func TestRunAProbedSlower(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 5)
	for i := range p.VPs {
		p.VPs[i].Firmware = 4700
		p.VPs[i].Hijacked = false
		p.VPs[i].Phase = 0
	}
	var mu sync.Mutex
	probes := map[byte]int{}
	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		mu.Lock()
		probes[letter]++
		mu.Unlock()
		return Outcome{Status: OK, Site: 0, RTTms: 20, ChaosTXT: chaos.MustFormat(letter, "AMS", 1)}
	}}
	cfg := ScheduleConfig{
		Letters: []byte("AK"), Minutes: 120, BinMinutes: 10,
		IntervalMin: 4, AIntervalMin: 30,
	}
	Run(p, w, cfg)
	if probes['K'] != 5*30 {
		t.Errorf("K probes = %d, want 150", probes['K'])
	}
	if probes['A'] != 5*4 {
		t.Errorf("A probes = %d, want 20", probes['A'])
	}
}

func TestTimeoutEnforcedAtProbeLayer(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 2)
	for i := range p.VPs {
		p.VPs[i].Firmware = 4700
		p.VPs[i].Hijacked = false
		p.VPs[i].Phase = 0
	}
	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		// The site "answers" but slower than the Atlas timeout.
		return Outcome{Status: OK, Site: 0, RTTms: 6000, ChaosTXT: chaos.MustFormat(letter, "AMS", 1)}
	}}
	cfg := ScheduleConfig{Letters: []byte("K"), Minutes: 10, BinMinutes: 10, IntervalMin: 4}
	d := Run(p, w, cfg)
	obs, _ := d.At('K', 0, 0)
	if obs.Status != Timeout {
		t.Errorf("slow reply status = %v, want Timeout", obs.Status)
	}
}

func TestSeriesAccessors(t *testing.T) {
	g := testGraph(t)
	p := smallPopulation(t, g, 10)
	for i := range p.VPs {
		p.VPs[i].Firmware = 4700
		p.VPs[i].Hijacked = false
		p.VPs[i].Phase = 0
	}
	// VPs 0-5 hit site 0 at 20 ms, 6-9 hit site 1 at 100 ms; during
	// minutes >= 20 site 1 times out.
	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		if vp.ID < 6 {
			return Outcome{Status: OK, Site: 0, Server: 1, RTTms: 20, ChaosTXT: chaos.MustFormat(letter, "AMS", 1)}
		}
		if minute >= 20 {
			return Outcome{Status: Timeout}
		}
		return Outcome{Status: OK, Site: 1, Server: 1, RTTms: 100, ChaosTXT: chaos.MustFormat(letter, "LHR", 1)}
	}}
	cfg := ScheduleConfig{Letters: []byte("K"), Minutes: 40, BinMinutes: 10, IntervalMin: 4}
	d := Run(p, w, cfg)

	succ, err := d.SuccessSeries('K')
	if err != nil {
		t.Fatal(err)
	}
	if succ.Values[0] != 10 || succ.Values[3] != 6 {
		t.Errorf("success series = %v", succ.Values)
	}
	rtt, err := d.MedianRTTSeries('K')
	if err != nil {
		t.Fatal(err)
	}
	if rtt.Values[0] != 20 {
		t.Errorf("median rtt bin0 = %v, want 20 (median of 6x20,4x100)", rtt.Values[0])
	}
	if rtt.Values[3] != 20 {
		t.Errorf("median rtt bin3 = %v, want 20", rtt.Values[3])
	}
	site0, err := d.SiteSeries('K', 0)
	if err != nil {
		t.Fatal(err)
	}
	site1, _ := d.SiteSeries('K', 1)
	if site0.Values[0] != 6 || site1.Values[0] != 4 || site1.Values[3] != 0 {
		t.Errorf("site series = %v / %v", site0.Values, site1.Values)
	}
	srtt, err := d.SiteRTTSeries('K', 1)
	if err != nil {
		t.Fatal(err)
	}
	if srtt.Values[0] != 100 {
		t.Errorf("site1 rtt = %v", srtt.Values[0])
	}
	if _, err := d.SuccessSeries('Z'); err == nil {
		t.Error("unknown letter should error")
	}
	if _, err := d.MedianRTTSeries('Z'); err == nil {
		t.Error("unknown letter should error")
	}
	if _, err := d.SiteSeries('Z', 0); err == nil {
		t.Error("unknown letter should error")
	}
	if _, err := d.SiteRTTSeries('Z', 0); err == nil {
		t.Error("unknown letter should error")
	}
}

func TestDatasetBounds(t *testing.T) {
	d := NewDataset([]byte("K"), []byte("K"), 3, 0, 10, 6, 4)
	if _, ok := d.At('K', 0, -1); ok {
		t.Error("negative bin accepted")
	}
	if _, ok := d.At('K', 0, 6); ok {
		t.Error("overflow bin accepted")
	}
	if _, ok := d.RawAt('K', 0, 15); ok {
		t.Error("overflow raw bin accepted")
	}
	if _, ok := d.RawAt('E', 0, 0); ok {
		t.Error("raw access for unretained letter accepted")
	}
	if d.HasLetter('E') || !d.HasLetter('K') {
		t.Error("HasLetter wrong")
	}
	if d.HasRaw('E') || !d.HasRaw('K') {
		t.Error("HasRaw wrong")
	}
	count := 0
	d.EachVP(func(vp VPID) { count++ })
	if count != 3 {
		t.Errorf("EachVP visited %d", count)
	}
	d.Exclude(1, "test")
	count = 0
	d.EachVP(func(vp VPID) { count++ })
	if count != 2 {
		t.Errorf("EachVP after exclude visited %d", count)
	}
}

func TestStatusString(t *testing.T) {
	names := map[Status]string{NoData: "nodata", OK: "ok", RCodeErr: "error", Timeout: "timeout"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string")
	}
}

func TestClampRTT(t *testing.T) {
	d := NewDataset([]byte("K"), nil, 1, 0, 10, 1, 4)
	for _, tt := range []struct {
		in   float64
		want uint16
	}{{-5, 0}, {0, 0}, {100.7, 100}, {70000, RTTOverflowMs}} {
		if got := d.clampRTT(tt.in); got != tt.want {
			t.Errorf("clampRTT(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
	if got := d.RTTOverflowCount(); got != 1 {
		t.Errorf("RTTOverflowCount = %d, want 1 (only the 70000 ms probe saturates)", got)
	}
}

// TestRTTOverflowRecorded is the regression test for the silent-saturation
// fix: an out-of-range RTT must be stored as the RTTOverflowMs sentinel AND
// surface in RTTOverflowCount, instead of masquerading as a plausible
// measurement.
func TestRTTOverflowRecorded(t *testing.T) {
	d := NewDataset([]byte("K"), []byte("K"), 1, 0, 10, 1, 4)
	d.record(0, 'K', 0, 2, 1, OK, 123456)
	if got := d.RTTOverflowCount(); got != 2 {
		t.Errorf("RTTOverflowCount = %d, want 2 (raw cell + binned cell)", got)
	}
	obs, ok := d.At('K', 0, 0)
	if !ok || obs.RTTms != RTTOverflowMs {
		t.Errorf("binned RTT = %d (ok=%v), want sentinel %d", obs.RTTms, ok, uint16(RTTOverflowMs))
	}
	raw, ok := d.RawAt('K', 0, 0)
	if !ok || raw.RTTms != RTTOverflowMs {
		t.Errorf("raw RTT = %d (ok=%v), want sentinel %d", raw.RTTms, ok, uint16(RTTOverflowMs))
	}
	// A normal in-range probe must not bump the counter.
	d.record(0, 'K', 1, 2, 1, OK, 30)
	if got := d.RTTOverflowCount(); got != 2 {
		t.Errorf("RTTOverflowCount after in-range probe = %d, want 2", got)
	}
}

func BenchmarkRunSmallCampaign(b *testing.B) {
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 30, Stubs: 600, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPopulation(g, PopulationConfig{N: 200, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	txt := chaos.MustFormat('K', "AMS", 1)
	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		return Outcome{Status: OK, Site: 0, Server: 1, RTTms: 25, ChaosTXT: txt}
	}}
	cfg := ScheduleConfig{Letters: []byte("K"), Minutes: 240, BinMinutes: 10, IntervalMin: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Run(p, w, cfg)
		if d.NumVPs != 200 {
			b.Fatal("bad run")
		}
	}
}

var _ = fmt.Sprintf // referenced to keep the import while tests evolve
