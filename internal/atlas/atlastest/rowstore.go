// Package atlastest holds the seed's row-shaped measurement store as a
// reference implementation for equivalence testing. RowDataset is a verbatim
// copy of the original array-of-structs Dataset — record precedence, series
// math, and the ATLDS001 codec included — and RunCampaign is the seed's
// sequential campaign loop over it. Tests at two scales pin the production
// columnar store to this reference: internal/atlas proves cell-level
// equivalence on a scripted world, and the root-level replay test proves
// byte-identical output on the full 9k-VP pipeline, with and without fault
// plans, at 1 and 4 workers.
//
// Nothing in this package is used by production code; it exists so the row
// reference can be shared by test files in different packages without
// copying it.
package atlastest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/stats"
)

// rowMagic is the ATLDS001 file signature, duplicated from the atlas
// package's unexported writer so the reference codec stands alone.
var rowMagic = [8]byte{'A', 'T', 'L', 'D', 'S', '0', '0', '1'}

type rowBinObs struct {
	Site   int16
	Status atlas.Status
	RTTms  uint16
}

type rowRawObs struct {
	Site   int16
	Server int8
	Status atlas.Status
	RTTms  uint16
}

// RowDataset is the seed's array-of-structs measurement store.
type RowDataset struct {
	startMinute, binMinutes, bins int
	rawBinMinutes, rawBins        int

	letters   []byte
	letterIdx map[byte]int

	numVPs         int
	excluded       []bool
	excludedReason []string

	binned [][]rowBinObs
	raw    map[byte][]rowRawObs
}

// NewRowDataset mirrors atlas.NewDataset over the row store.
func NewRowDataset(letters, rawLetters []byte, numVPs, startMinute, binMinutes, bins, rawBinMinutes int) *RowDataset {
	d := &RowDataset{
		startMinute:    startMinute,
		binMinutes:     binMinutes,
		bins:           bins,
		rawBinMinutes:  rawBinMinutes,
		rawBins:        bins * binMinutes / rawBinMinutes,
		letters:        append([]byte(nil), letters...),
		letterIdx:      make(map[byte]int, len(letters)),
		numVPs:         numVPs,
		excluded:       make([]bool, numVPs),
		excludedReason: make([]string, numVPs),
		raw:            make(map[byte][]rowRawObs),
	}
	d.binned = make([][]rowBinObs, len(letters))
	for i, l := range letters {
		d.letterIdx[l] = i
		cells := make([]rowBinObs, numVPs*bins)
		for j := range cells {
			cells[j].Site = atlas.NoSite
		}
		d.binned[i] = cells
	}
	for _, l := range rawLetters {
		if _, ok := d.letterIdx[l]; !ok {
			continue
		}
		cells := make([]rowRawObs, numVPs*d.rawBins)
		for j := range cells {
			cells[j].Site = atlas.NoSite
		}
		d.raw[l] = cells
	}
	return d
}

func (d *RowDataset) bin(minute int) int {
	if minute < d.startMinute {
		return -1
	}
	i := (minute - d.startMinute) / d.binMinutes
	if i >= d.bins {
		return -1
	}
	return i
}

func (d *RowDataset) rawBin(minute int) int {
	if minute < d.startMinute {
		return -1
	}
	i := (minute - d.startMinute) / d.rawBinMinutes
	if i >= d.rawBins {
		return -1
	}
	return i
}

// rowClampRTT is the seed's saturating clamp (pre overflow-counter).
func rowClampRTT(ms float64) uint16 {
	if ms < 0 {
		return 0
	}
	if ms > 65535 {
		return 65535
	}
	return uint16(ms)
}

// Record applies the seed's binned-cell precedence: OK beats RCodeErr beats
// Timeout; repeated OKs average the clamped RTTs.
func (d *RowDataset) Record(vp atlas.VPID, letter byte, minute int, site, server int, status atlas.Status, rttMs float64) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return
	}
	if raw, ok := d.raw[letter]; ok {
		if rb := d.rawBin(minute); rb >= 0 {
			cell := &raw[int(vp)*d.rawBins+rb]
			cell.Status = status
			cell.Site = int16(site)
			cell.Server = int8(server)
			cell.RTTms = rowClampRTT(rttMs)
		}
	}
	b := d.bin(minute)
	if b < 0 {
		return
	}
	cell := &d.binned[li][int(vp)*d.bins+b]
	switch status {
	case atlas.OK:
		if cell.Status == atlas.OK {
			cell.RTTms = uint16((uint32(cell.RTTms) + uint32(rowClampRTT(rttMs))) / 2)
		} else {
			cell.Status = atlas.OK
			cell.RTTms = rowClampRTT(rttMs)
		}
		cell.Site = int16(site)
	case atlas.RCodeErr:
		if cell.Status != atlas.OK {
			cell.Status = atlas.RCodeErr
			cell.Site = atlas.NoSite
		}
	case atlas.Timeout:
		if cell.Status == atlas.NoData {
			cell.Status = atlas.Timeout
			cell.Site = atlas.NoSite
		}
	}
}

// Exclude drops a VP from every series with the given reason.
func (d *RowDataset) Exclude(vp atlas.VPID, reason string) {
	if int(vp) < len(d.excluded) {
		d.excluded[vp] = true
		d.excludedReason[vp] = reason
	}
}

// Excluded reports whether the VP was cleaned out of the dataset.
func (d *RowDataset) Excluded(vp atlas.VPID) bool {
	return int(vp) < len(d.excluded) && d.excluded[vp]
}

// SuccessSeries counts OK cells per bin across non-excluded VPs.
func (d *RowDataset) SuccessSeries(letter byte) *stats.Series {
	li := d.letterIdx[letter]
	s := stats.NewSeries(fmt.Sprintf("vps-ok-%c", letter), d.startMinute, d.binMinutes, d.bins)
	for vp := 0; vp < d.numVPs; vp++ {
		if d.excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.bins : (vp+1)*d.bins]
		for b, cell := range row {
			if cell.Status == atlas.OK {
				s.Values[b]++
			}
		}
	}
	return s
}

// MedianRTTSeries is the per-bin median RTT across OK cells.
func (d *RowDataset) MedianRTTSeries(letter byte) *stats.Series {
	li := d.letterIdx[letter]
	perBin := make([][]float64, d.bins)
	for vp := 0; vp < d.numVPs; vp++ {
		if d.excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.bins : (vp+1)*d.bins]
		for b, cell := range row {
			if cell.Status == atlas.OK {
				perBin[b] = append(perBin[b], float64(cell.RTTms))
			}
		}
	}
	s := stats.NewSeries(fmt.Sprintf("rtt-median-%c", letter), d.startMinute, d.binMinutes, d.bins)
	for b, xs := range perBin {
		s.Values[b] = stats.Median(xs)
	}
	return s
}

// SiteSeries counts OK cells answered by one site per bin.
func (d *RowDataset) SiteSeries(letter byte, site int) *stats.Series {
	li := d.letterIdx[letter]
	s := stats.NewSeries(fmt.Sprintf("vps-%c-site%d", letter, site), d.startMinute, d.binMinutes, d.bins)
	for vp := 0; vp < d.numVPs; vp++ {
		if d.excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.bins : (vp+1)*d.bins]
		for b, cell := range row {
			if cell.Status == atlas.OK && int(cell.Site) == site {
				s.Values[b]++
			}
		}
	}
	return s
}

// SiteRTTSeries is the per-bin median RTT across one site's OK cells.
func (d *RowDataset) SiteRTTSeries(letter byte, site int) *stats.Series {
	li := d.letterIdx[letter]
	perBin := make([][]float64, d.bins)
	for vp := 0; vp < d.numVPs; vp++ {
		if d.excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.bins : (vp+1)*d.bins]
		for b, cell := range row {
			if cell.Status == atlas.OK && int(cell.Site) == site {
				perBin[b] = append(perBin[b], float64(cell.RTTms))
			}
		}
	}
	s := stats.NewSeries(fmt.Sprintf("rtt-%c-site%d", letter, site), d.startMinute, d.binMinutes, d.bins)
	for b, xs := range perBin {
		s.Values[b] = stats.Median(xs)
	}
	return s
}

// Save is the seed's ATLDS001 writer over the row store.
func (d *RowDataset) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(rowMagic[:]); err != nil {
		return err
	}
	writeU32 := func(v int) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		_, err := bw.Write(buf[:])
		return err
	}
	for _, v := range []int{d.startMinute, d.binMinutes, d.bins, d.rawBinMinutes, d.rawBins, d.numVPs, len(d.letters), len(d.raw)} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(d.letters); err != nil {
		return err
	}
	rawLetters := make([]byte, 0, len(d.raw))
	for _, l := range d.letters {
		if _, ok := d.raw[l]; ok {
			rawLetters = append(rawLetters, l)
		}
	}
	if _, err := bw.Write(rawLetters); err != nil {
		return err
	}
	for vp := 0; vp < d.numVPs; vp++ {
		flag := byte(0)
		if d.excluded[vp] {
			flag = 1
		}
		if err := bw.WriteByte(flag); err != nil {
			return err
		}
		reason := d.excludedReason[vp]
		if err := bw.WriteByte(byte(len(reason))); err != nil {
			return err
		}
		if _, err := bw.WriteString(reason); err != nil {
			return err
		}
	}
	var cell [5]byte
	for li := range d.letters {
		for _, obs := range d.binned[li] {
			binary.LittleEndian.PutUint16(cell[0:], uint16(obs.Site))
			cell[2] = byte(obs.Status)
			binary.LittleEndian.PutUint16(cell[3:], obs.RTTms)
			if _, err := bw.Write(cell[:]); err != nil {
				return err
			}
		}
	}
	var rawCell [6]byte
	for _, l := range rawLetters {
		for _, obs := range d.raw[l] {
			binary.LittleEndian.PutUint16(rawCell[0:], uint16(obs.Site))
			rawCell[2] = byte(obs.Server)
			rawCell[3] = byte(obs.Status)
			binary.LittleEndian.PutUint16(rawCell[4:], obs.RTTms)
			if _, err := bw.Write(rawCell[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RunCampaign is the seed's sequential campaign loop (runVP inlined) against
// the row store: firmware and hijack cleaning, timeout conversion, and the
// per-letter probe cadence all match atlas.Run.
func RunCampaign(p *atlas.Population, w atlas.World, cfg atlas.ScheduleConfig) *RowDataset {
	bins := cfg.Minutes / cfg.BinMinutes
	d := NewRowDataset(cfg.Letters, cfg.RawLetters, p.N(), cfg.StartMinute, cfg.BinMinutes, bins, cfg.IntervalMin)
	for i := range p.VPs {
		vp := &p.VPs[i]
		if vp.Firmware < atlas.MinFirmware {
			d.Exclude(vp.ID, "firmware")
			continue
		}
		hijackEvidence := false
		for _, letter := range cfg.Letters {
			interval := cfg.IntervalMin
			if letter == 'A' && cfg.AIntervalMin > 0 {
				interval = cfg.AIntervalMin
			}
			for minute := cfg.StartMinute + vp.Phase%interval; minute < cfg.StartMinute+cfg.Minutes; minute += interval {
				out := w.ProbeOutcome(vp, letter, minute)
				status := out.Status
				if status == atlas.OK && out.RTTms >= atlas.AtlasTimeoutMs {
					status = atlas.Timeout
				}
				if status == atlas.OK && out.ChaosTXT != "" && !chaos.Matches(letter, out.ChaosTXT) {
					if out.RTTms < atlas.HijackRTTThresholdMs {
						hijackEvidence = true
					}
					out.Site = atlas.NoSite
				}
				d.Record(vp.ID, letter, minute, out.Site, out.Server, status, out.RTTms)
			}
		}
		if hijackEvidence {
			d.Exclude(vp.ID, "hijack")
		}
	}
	return d
}
