package atlastest

import (
	"math"
	"testing"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/stats"
)

// funcWorld adapts a closure to atlas.World.
type funcWorld struct {
	fn func(vp *atlas.VP, letter byte, minute int) atlas.Outcome
}

func (f *funcWorld) ProbeOutcome(vp *atlas.VP, letter byte, minute int) atlas.Outcome {
	return f.fn(vp, letter, minute)
}

// ScriptedWorld scripts a deterministic mixture of outcomes: clean successes
// across several sites/servers, RCODE errors, timeouts, over-threshold
// successes (cleaned into timeouts), RTTs past the uint16 ceiling, malformed
// identities at plausible RTTs (kept, site dropped), and genuinely hijacked
// VPs (mismatched identity at < 7 ms).
func ScriptedWorld() atlas.World {
	mismatch := func(letter byte) byte {
		if letter == 'K' {
			return 'E'
		}
		return 'K'
	}
	return &funcWorld{fn: func(vp *atlas.VP, letter byte, minute int) atlas.Outcome {
		h := int(vp.ID)*2654435 + int(letter)*9176 + minute*131
		if int(vp.ID)%23 == 7 && h%6 == 0 {
			// Hijacked VP: wrong identity at an implausibly fast RTT.
			return atlas.Outcome{Status: atlas.OK, Site: 0, Server: 1, RTTms: 3,
				ChaosTXT: chaos.MustFormat(mismatch(letter), "AMS", 1)}
		}
		switch h % 11 {
		case 0:
			return atlas.Outcome{Status: atlas.Timeout}
		case 1:
			return atlas.Outcome{Status: atlas.RCodeErr}
		case 2: // too slow: probe layer converts to Timeout
			return atlas.Outcome{Status: atlas.OK, Site: 1, Server: 1, RTTms: 6000.5,
				ChaosTXT: chaos.MustFormat(letter, "AMS", 1)}
		case 3: // past the uint16 ceiling: sentinel in raw cells
			return atlas.Outcome{Status: atlas.OK, Site: 1, Server: 2, RTTms: 70001.5,
				ChaosTXT: chaos.MustFormat(letter, "AMS", 2)}
		case 4: // malformed identity at plausible RTT: kept, no site
			return atlas.Outcome{Status: atlas.OK, Site: 2, Server: 2, RTTms: 40.5,
				ChaosTXT: chaos.MustFormat(mismatch(letter), "AMS", 2)}
		default:
			site := h % 5
			server := 1 + h%3
			return atlas.Outcome{Status: atlas.OK, Site: site, Server: server,
				RTTms:    10 + float64(h%400)/3,
				ChaosTXT: chaos.MustFormat(letter, "AMS", server)}
		}
	}}
}

// SameSeries fails the test unless the two series agree in shape and every
// bin value is bit-identical (Float64bits, so NaN placement counts too).
func SameSeries(t testing.TB, label string, got, want *stats.Series) {
	t.Helper()
	if got.Name != want.Name || got.StartMinute != want.StartMinute ||
		got.BinMinutes != want.BinMinutes || len(got.Values) != len(want.Values) {
		t.Fatalf("%s: shape mismatch: got %s/%d/%d/%d want %s/%d/%d/%d", label,
			got.Name, got.StartMinute, got.BinMinutes, len(got.Values),
			want.Name, want.StartMinute, want.BinMinutes, len(want.Values))
	}
	for b := range got.Values {
		if math.Float64bits(got.Values[b]) != math.Float64bits(want.Values[b]) {
			t.Fatalf("%s: bin %d: got %v (bits %x), want %v (bits %x)", label, b,
				got.Values[b], math.Float64bits(got.Values[b]),
				want.Values[b], math.Float64bits(want.Values[b]))
		}
	}
}
