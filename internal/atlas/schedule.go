package atlas

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rootevent/anycastddos/internal/chaos"
)

// Outcome is the world's answer to one probe: what the VP's query
// experienced out on the (simulated or real) network.
type Outcome struct {
	Status Status
	// Site and Server identify the responding anycast site/server for
	// successful probes (site is an index into the letter's site list).
	Site   int
	Server int
	RTTms  float64
	// ChaosTXT is the raw identity string carried by the reply; the
	// cleaning stage parses it to detect hijacked VPs. Empty for
	// timeouts.
	ChaosTXT string
}

// World resolves probes. The core evaluator implements this against the
// full event simulation; tests implement it directly; the live prober
// implements it over UDP sockets.
type World interface {
	ProbeOutcome(vp *VP, letter byte, minute int) Outcome
}

// ScheduleConfig shapes a measurement campaign.
type ScheduleConfig struct {
	Letters     []byte
	RawLetters  []byte // letters whose raw per-probe data is retained
	StartMinute int
	Minutes     int // campaign length
	BinMinutes  int // analysis bin width (the paper uses 10)
	// IntervalMin is the probing cadence (4 minutes on Atlas).
	IntervalMin int
	// AIntervalMin is A-Root's slower cadence at event time (30 minutes;
	// §2.4.1 — too coarse for event analysis, which is why the paper
	// drops A from most figures).
	AIntervalMin int

	// Workers is the number of VP shards run concurrently; <= 0 selects
	// GOMAXPROCS. The dataset is identical for every worker count.
	Workers int
	// Progress, when set, receives (VPs completed, total VPs) as the
	// campaign advances. Calls are serialized but may come from any shard
	// goroutine.
	Progress func(done, total int)
}

// DefaultScheduleConfig covers the two event days for all 13 letters with
// raw retention for K-Root (the letter the paper's server-level and raster
// analyses use).
func DefaultScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		Letters:      []byte("ABCDEFGHIJKLM"),
		RawLetters:   []byte("K"),
		StartMinute:  0,
		Minutes:      48 * 60,
		BinMinutes:   10,
		IntervalMin:  4,
		AIntervalMin: 30,
	}
}

// Run executes the probing campaign and returns the cleaned dataset:
// pre-4570-firmware VPs are dropped outright, and VPs whose replies match
// no known letter pattern at implausibly short RTTs are flagged as hijacked
// and dropped (§2.4.1). It is RunContext without cancellation.
func Run(p *Population, w World, cfg ScheduleConfig) *Dataset {
	d, _ := RunContext(context.Background(), p, w, cfg)
	return d
}

// RunContext executes the probing campaign under a context.
//
// VPs probe independently, so the campaign fans the population out over
// cfg.Workers shards (GOMAXPROCS when unset), each walking a contiguous
// VP range; every VP's cells live in a disjoint, pre-sized dataset
// segment, making the sharding race-free and the output byte-identical to
// a sequential run. World implementations must be safe for concurrent
// reads. On cancellation the partial dataset is discarded and the wrapped
// context error is returned.
func RunContext(ctx context.Context, p *Population, w World, cfg ScheduleConfig) (*Dataset, error) {
	bins := cfg.Minutes / cfg.BinMinutes
	d := NewDataset(cfg.Letters, cfg.RawLetters, p.N(), cfg.StartMinute, cfg.BinMinutes, bins, cfg.IntervalMin)
	if ctx == nil {
		ctx = context.Background()
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.N() {
		workers = p.N()
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg         sync.WaitGroup
		done       atomic.Int64
		progressMu sync.Mutex
	)
	per := (len(p.VPs) + workers - 1) / workers
	for shard := 0; shard < workers; shard++ {
		lo := shard * per
		hi := lo + per
		if hi > len(p.VPs) {
			hi = len(p.VPs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				runVP(&p.VPs[i], w, cfg, d)
				if cfg.Progress != nil {
					n := int(done.Add(1))
					progressMu.Lock()
					cfg.Progress(n, p.N())
					progressMu.Unlock()
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("atlas: campaign canceled: %w", err)
	}
	// Intern the raw (site, server) identities now that recording is done;
	// the canonical ordering makes the table worker-count independent.
	d.Seal()
	return d, nil
}

// runVP executes one vantage point's whole campaign.
func runVP(vp *VP, w World, cfg ScheduleConfig, d *Dataset) {
	if vp.Firmware < MinFirmware {
		d.Exclude(vp.ID, "firmware")
		return
	}
	hijackEvidence := false
	for _, letter := range cfg.Letters {
		interval := cfg.IntervalMin
		if letter == 'A' && cfg.AIntervalMin > 0 {
			interval = cfg.AIntervalMin
		}
		for minute := cfg.StartMinute + vp.Phase%interval; minute < cfg.StartMinute+cfg.Minutes; minute += interval {
			out := w.ProbeOutcome(vp, letter, minute)
			status := out.Status
			if status == OK && out.RTTms >= AtlasTimeoutMs {
				status = Timeout
			}
			if status == OK && out.ChaosTXT != "" && !chaos.Matches(letter, out.ChaosTXT) {
				if out.RTTms < HijackRTTThresholdMs {
					hijackEvidence = true
				}
				// A malformed identity that is not obviously a
				// hijack is kept but carries no site mapping.
				out.Site = NoSite
			}
			d.record(vp.ID, letter, minute, out.Site, out.Server, status, out.RTTms)
		}
	}
	if hijackEvidence {
		d.Exclude(vp.ID, "hijack")
	}
}
