package atlas

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Dataset serialization. The paper's processed measurement dataset is
// published for other researchers (§2.4); this codec gives our synthetic
// counterpart the same property: a compact, versioned binary format that
// round-trips the cleaned corpus, so expensive simulations can be archived
// and re-analyzed without re-running them.
//
// The on-disk format is row-shaped (one 5- or 6-byte record per cell) and
// predates the columnar in-memory store; Save gathers each record from the
// column slices and Load scatters them back, so the byte stream is identical
// to what the original row store produced.

// datasetMagic identifies the format and version.
var datasetMagic = [8]byte{'A', 'T', 'L', 'D', 'S', '0', '0', '1'}

// ErrBadDatasetFile marks a corrupt or foreign file.
var ErrBadDatasetFile = errors.New("atlas: not a dataset file")

// Save writes the dataset in the binary format.
func (d *Dataset) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(datasetMagic[:]); err != nil {
		return err
	}
	writeU32 := func(v int) error {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		_, err := bw.Write(buf[:])
		return err
	}
	for _, v := range []int{d.StartMinute, d.BinMinutes, d.Bins, d.RawBinMinutes, d.RawBins, d.NumVPs, len(d.Letters), len(d.raw)} {
		if err := writeU32(v); err != nil {
			return err
		}
	}
	if _, err := bw.Write(d.Letters); err != nil {
		return err
	}
	rawLetters := make([]byte, 0, len(d.raw))
	for _, l := range d.Letters {
		if _, ok := d.raw[l]; ok {
			rawLetters = append(rawLetters, l)
		}
	}
	if _, err := bw.Write(rawLetters); err != nil {
		return err
	}
	// Exclusions: flag byte + length-prefixed reason.
	for vp := 0; vp < d.NumVPs; vp++ {
		flag := byte(0)
		if d.Excluded[vp] {
			flag = 1
		}
		if err := bw.WriteByte(flag); err != nil {
			return err
		}
		reason := d.ExcludedReason[vp]
		if err := bw.WriteByte(byte(len(reason))); err != nil {
			return err
		}
		if _, err := bw.WriteString(reason); err != nil {
			return err
		}
	}
	// Binned cells: site int16, status uint8, rtt uint16.
	var cell [5]byte
	for li := range d.Letters {
		st, si, rt := d.binStatus[li], d.binSite[li], d.binRTT[li]
		for j := range st {
			binary.LittleEndian.PutUint16(cell[0:], uint16(si[j]))
			cell[2] = byte(st[j])
			binary.LittleEndian.PutUint16(cell[3:], rt[j])
			if _, err := bw.Write(cell[:]); err != nil {
				return err
			}
		}
	}
	// Raw cells: site int16, server int8, status uint8, rtt uint16.
	var rawCell [6]byte
	for _, l := range rawLetters {
		rc := d.raw[l]
		for j := range rc.status {
			site, server := rc.at(d.ssTable, j)
			binary.LittleEndian.PutUint16(rawCell[0:], uint16(site))
			rawCell[2] = byte(server)
			rawCell[3] = byte(rc.status[j])
			binary.LittleEndian.PutUint16(rawCell[4:], rc.rtt[j])
			if _, err := bw.Write(rawCell[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadDataset reads a dataset written by Save. The returned dataset is
// sealed: raw (site, server) identities are interned.
func LoadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDatasetFile, err)
	}
	if magic != datasetMagic {
		return nil, ErrBadDatasetFile
	}
	readU32 := func() (int, error) {
		var buf [4]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return int(binary.LittleEndian.Uint32(buf[:])), nil
	}
	var hdr [8]int
	for i := range hdr {
		v, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("atlas: dataset header: %w", err)
		}
		hdr[i] = v
	}
	startMinute, binMinutes, bins, rawBinMinutes, rawBins, numVPs, nLetters, nRaw := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5], hdr[6], hdr[7]
	const maxPlausible = 1 << 26
	if binMinutes <= 0 || bins <= 0 || rawBinMinutes <= 0 || numVPs <= 0 ||
		nLetters <= 0 || nLetters > 26 || nRaw < 0 || nRaw > nLetters ||
		numVPs*bins > maxPlausible || numVPs*rawBins > maxPlausible {
		return nil, ErrBadDatasetFile
	}
	letters := make([]byte, nLetters)
	if _, err := io.ReadFull(br, letters); err != nil {
		return nil, err
	}
	rawLetters := make([]byte, nRaw)
	if _, err := io.ReadFull(br, rawLetters); err != nil {
		return nil, err
	}
	d := NewDataset(letters, rawLetters, numVPs, startMinute, binMinutes, bins, rawBinMinutes)
	if d.RawBins != rawBins {
		return nil, fmt.Errorf("atlas: dataset raw-bin mismatch: %d vs %d", d.RawBins, rawBins)
	}
	for vp := 0; vp < numVPs; vp++ {
		flag, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rlen, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		reason := make([]byte, rlen)
		if _, err := io.ReadFull(br, reason); err != nil {
			return nil, err
		}
		if flag == 1 {
			d.Excluded[vp] = true
			d.ExcludedReason[vp] = string(reason)
		}
	}
	var cell [5]byte
	for li := range letters {
		st, si, rt := d.binStatus[li], d.binSite[li], d.binRTT[li]
		for j := range st {
			if _, err := io.ReadFull(br, cell[:]); err != nil {
				return nil, fmt.Errorf("atlas: dataset binned cells: %w", err)
			}
			si[j] = int16(binary.LittleEndian.Uint16(cell[0:]))
			st[j] = Status(cell[2])
			rt[j] = binary.LittleEndian.Uint16(cell[3:])
		}
	}
	var rawCell [6]byte
	for _, l := range rawLetters {
		rc := d.raw[l]
		for j := range rc.status {
			if _, err := io.ReadFull(br, rawCell[:]); err != nil {
				return nil, fmt.Errorf("atlas: dataset raw cells: %w", err)
			}
			rc.site[j] = int16(binary.LittleEndian.Uint16(rawCell[0:]))
			rc.server[j] = int8(rawCell[2])
			rc.status[j] = Status(rawCell[3])
			rc.rtt[j] = binary.LittleEndian.Uint16(rawCell[4:])
		}
	}
	d.Seal()
	return d, nil
}
