package atlas_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/atlas/atlastest"
	"github.com/rootevent/anycastddos/internal/topo"
)

// This file pins the columnar store to the seed's row-shaped implementation,
// now hosted in internal/atlas/atlastest: RunCampaign there is a verbatim
// copy of the original array-of-structs campaign (record precedence, series
// math, and Save codec included), and the tests assert the two produce
// byte-identical output from identical probe streams. Any divergence in
// binning precedence, median arithmetic, or the ATLDS001 byte stream fails
// here before it can corrupt a figure.

func extTestGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 30, Stubs: 600, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func extPopulation(t *testing.T, g *topo.Graph, n int) *atlas.Population {
	t.Helper()
	p, err := atlas.NewPopulation(g, atlas.PopulationConfig{N: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestColumnarMatchesRowStore runs the same scripted campaign through the
// columnar store (at 1 and 4 workers) and through the copied seed row store,
// and requires byte-identical Save output and bit-identical series.
func TestColumnarMatchesRowStore(t *testing.T) {
	g := extTestGraph(t)
	p := extPopulation(t, g, 60)
	for i := range p.VPs {
		if i%13 == 4 {
			p.VPs[i].Firmware = 4000 // cleaned out by the firmware rule
		}
	}
	w := atlastest.ScriptedWorld()
	cfg := atlas.ScheduleConfig{
		Letters: []byte("AEK"), RawLetters: []byte("K"),
		Minutes: 120, BinMinutes: 10, IntervalMin: 4, AIntervalMin: 30,
	}

	ref := atlastest.RunCampaign(p, w, cfg)
	var refBytes bytes.Buffer
	if err := ref.Save(&refBytes); err != nil {
		t.Fatal(err)
	}
	if !ref.Excluded(4) {
		t.Fatal("fixture defect: expected VP 4 to be firmware-excluded")
	}

	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		d := atlas.Run(p, w, cfg)
		var got bytes.Buffer
		if err := d.Save(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), refBytes.Bytes()) {
			t.Fatalf("workers=%d: Save bytes differ from row store (%d vs %d bytes)",
				workers, got.Len(), refBytes.Len())
		}
		for _, l := range cfg.Letters {
			ss, err := d.SuccessSeries(l)
			if err != nil {
				t.Fatal(err)
			}
			atlastest.SameSeries(t, fmt.Sprintf("w%d success %c", workers, l), ss, ref.SuccessSeries(l))
			ms, err := d.MedianRTTSeries(l)
			if err != nil {
				t.Fatal(err)
			}
			atlastest.SameSeries(t, fmt.Sprintf("w%d median %c", workers, l), ms, ref.MedianRTTSeries(l))
			for site := 0; site < 5; site++ {
				vs, err := d.SiteSeries(l, site)
				if err != nil {
					t.Fatal(err)
				}
				atlastest.SameSeries(t, fmt.Sprintf("w%d site %c/%d", workers, l, site), vs, ref.SiteSeries(l, site))
				rs, err := d.SiteRTTSeries(l, site)
				if err != nil {
					t.Fatal(err)
				}
				atlastest.SameSeries(t, fmt.Sprintf("w%d siteRTT %c/%d", workers, l, site), rs, ref.SiteRTTSeries(l, site))
			}
		}
	}
}

// TestRowsCursorMatchesAt checks that the cursor views agree cell-for-cell
// with the (deprecated) At/RawAt accessors and enumerate exactly the
// non-excluded VPs.
func TestRowsCursorMatchesAt(t *testing.T) {
	g := extTestGraph(t)
	p := extPopulation(t, g, 40)
	for i := range p.VPs {
		if i%11 == 3 {
			p.VPs[i].Firmware = 4000
		}
	}
	cfg := atlas.ScheduleConfig{
		Letters: []byte("EK"), RawLetters: []byte("K"),
		Minutes: 80, BinMinutes: 10, IntervalMin: 4,
	}
	d := atlas.Run(p, atlastest.ScriptedWorld(), cfg)

	for _, l := range cfg.Letters {
		rows, err := d.Rows(l)
		if err != nil {
			t.Fatal(err)
		}
		var seen []atlas.VPID
		for rows.Next() {
			vp := rows.VP()
			seen = append(seen, vp)
			for b := 0; b < d.Bins; b++ {
				obs, ok := d.At(l, vp, b)
				if !ok {
					t.Fatalf("At(%c, %d, %d) not ok for cursor-visible VP", l, vp, b)
				}
				if rows.Status()[b] != obs.Status || rows.Site()[b] != obs.Site || rows.RTT()[b] != obs.RTTms {
					t.Fatalf("cursor cell (%c, %d, %d) = %v/%d/%d, At = %+v",
						l, vp, b, rows.Status()[b], rows.Site()[b], rows.RTT()[b], obs)
				}
			}
		}
		var want []atlas.VPID
		d.EachVP(func(vp atlas.VPID) { want = append(want, vp) })
		if len(seen) != len(want) {
			t.Fatalf("cursor saw %d VPs, EachVP saw %d", len(seen), len(want))
		}
		for i := range seen {
			if seen[i] != want[i] {
				t.Fatalf("cursor VP order diverges at %d: %d vs %d", i, seen[i], want[i])
			}
		}
	}

	raw, err := d.RawRows('K')
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SiteServers()) == 0 {
		t.Fatal("campaign dataset should be sealed with a non-empty intern table")
	}
	for raw.Next() {
		vp := raw.VP()
		for rb := 0; rb < d.RawBins; rb++ {
			obs, ok := d.RawAt('K', vp, rb)
			if !ok {
				t.Fatalf("RawAt('K', %d, %d) not ok", vp, rb)
			}
			if raw.Status()[rb] != obs.Status || raw.Site(rb) != obs.Site ||
				raw.Server(rb) != obs.Server || raw.RTT()[rb] != obs.RTTms {
				t.Fatalf("raw cursor cell (%d, %d) = %v/%d/%d/%d, RawAt = %+v",
					vp, rb, raw.Status()[rb], raw.Site(rb), raw.Server(rb), raw.RTT()[rb], obs)
			}
		}
	}
	if _, err := d.Rows('Z'); err == nil {
		t.Error("Rows('Z') should fail for an untracked letter")
	}
	if _, err := d.RawRows('E'); err == nil {
		t.Error("RawRows('E') should fail without raw retention")
	}
}
