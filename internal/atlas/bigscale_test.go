package atlas

import (
	"runtime"
	"testing"

	"github.com/rootevent/anycastddos/internal/chaos"
)

// TestMillionVPCampaign is the 1M-VP smoke test for the columnar store: a
// full Run over one letter with raw retention must complete with bounded
// heap growth. At five bytes per binned cell plus six per in-flight raw
// cell, the dataset below is ~220 MB of columns; the test allows 1 GiB of
// headroom so it fails loudly if a per-row representation (or a per-probe
// allocation) sneaks back in, while staying robust to GC timing.
func TestMillionVPCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 1M-VP dataset")
	}
	const numVPs = 1_000_000
	p := &Population{VPs: make([]VP, numVPs)}
	for i := range p.VPs {
		p.VPs[i] = VP{ID: VPID(i), Firmware: 4700, Phase: i % 4}
	}
	txt := chaos.MustFormat('K', "AMS", 1)
	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		if (int(vp.ID)+minute)%7 == 0 {
			return Outcome{Status: Timeout}
		}
		return Outcome{Status: OK, Site: int(vp.ID) % 4, Server: 1,
			RTTms: 20 + float64(minute%50), ChaosTXT: txt}
	}}
	cfg := ScheduleConfig{
		Letters: []byte("K"), RawLetters: []byte("K"),
		Minutes: 60, BinMinutes: 10, IntervalMin: 4,
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	d := Run(p, w, cfg)
	runtime.GC()
	runtime.ReadMemStats(&after)

	if d.NumVPs != numVPs || d.Bins != 6 {
		t.Fatalf("dataset shape = %d VPs x %d bins", d.NumVPs, d.Bins)
	}
	ss, err := d.SuccessSeries('K')
	if err != nil {
		t.Fatal(err)
	}
	for b, v := range ss.Values {
		// Roughly 1/7 of probes time out, but every VP probes each bin
		// more than once and OK wins the bin, so well over 90% succeed.
		if v < numVPs*9/10 {
			t.Fatalf("bin %d: only %v/%d VPs OK", b, v, numVPs)
		}
	}
	ms, err := d.MedianRTTSeries('K')
	if err != nil {
		t.Fatal(err)
	}
	if ms.Values[0] <= 0 || ms.Values[0] >= 100 {
		t.Fatalf("median RTT bin 0 = %v, want a plausible 20-70 ms", ms.Values[0])
	}
	if n := len(d.SiteServers()); n != 5 {
		// Four sites x one server, plus the NoSite timeout identity.
		t.Errorf("interned pairs = %d, want 5", n)
	}

	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const limit = 1 << 30
	t.Logf("1M-VP campaign: heap growth %.1f MiB (limit %d MiB)",
		float64(growth)/(1<<20), limit>>20)
	if growth > limit {
		t.Fatalf("heap grew %.1f MiB, limit %d MiB: columnar memory bound broken",
			float64(growth)/(1<<20), limit>>20)
	}
}
