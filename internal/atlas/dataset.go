package atlas

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/stats"
)

// Status classifies one probe (or one bin) outcome.
type Status uint8

// Outcome classes, in the paper's binning precedence order: a bin with any
// successful reply reports the site; else any error rcode; else timeout;
// bins without probes are NoData (§2.4.1).
const (
	NoData   Status = iota
	OK              // positive response (RCODE 0) identifying a site
	RCodeErr        // a response arrived but with a non-zero RCODE
	Timeout         // no reply within the Atlas timeout
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case NoData:
		return "nodata"
	case OK:
		return "ok"
	case RCodeErr:
		return "error"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// NoSite marks a bin or probe that did not identify a site.
const NoSite = -1

// BinObs is the resolved observation of one VP for one letter in one
// ten-minute bin.
type BinObs struct {
	Site   int16 // index into the letter's site list, or NoSite
	Status Status
	RTTms  uint16 // mean RTT of successful probes in the bin; 0 if none
}

// RawObs is a single probe result, kept only for letters configured for
// raw retention (needed by the per-server and per-VP-raster analyses).
type RawObs struct {
	Site   int16
	Server int8 // 1-based server index, 0 unknown
	Status Status
	RTTms  uint16
}

// Dataset is the cleaned, binned measurement corpus for one simulation run.
type Dataset struct {
	StartMinute int
	BinMinutes  int
	Bins        int

	// RawBinMinutes is the probe cadence (raw bins are one probe wide).
	RawBinMinutes int
	RawBins       int

	Letters   []byte
	letterIdx map[byte]int

	NumVPs int
	// Excluded marks VPs dropped by cleaning (old firmware or detected
	// hijack); their observations are retained but ignored by accessors.
	Excluded []bool
	// ExcludedReason maps a VP to why it was dropped ("" if kept).
	ExcludedReason []string

	// binned[letterIdx][vp*Bins+bin]
	binned [][]BinObs
	// raw[letter][vp*RawBins+rawBin], only for raw-retained letters.
	raw map[byte][]RawObs
}

// NewDataset allocates a dataset for the given letters and shape.
func NewDataset(letters []byte, rawLetters []byte, numVPs, startMinute, binMinutes, bins, rawBinMinutes int) *Dataset {
	d := &Dataset{
		StartMinute:    startMinute,
		BinMinutes:     binMinutes,
		Bins:           bins,
		RawBinMinutes:  rawBinMinutes,
		RawBins:        bins * binMinutes / rawBinMinutes,
		Letters:        append([]byte(nil), letters...),
		letterIdx:      make(map[byte]int, len(letters)),
		NumVPs:         numVPs,
		Excluded:       make([]bool, numVPs),
		ExcludedReason: make([]string, numVPs),
		raw:            make(map[byte][]RawObs),
	}
	d.binned = make([][]BinObs, len(letters))
	for i, l := range letters {
		d.letterIdx[l] = i
		cells := make([]BinObs, numVPs*bins)
		for j := range cells {
			cells[j].Site = NoSite
		}
		d.binned[i] = cells
	}
	for _, l := range rawLetters {
		if _, ok := d.letterIdx[l]; !ok {
			continue
		}
		cells := make([]RawObs, numVPs*d.RawBins)
		for j := range cells {
			cells[j].Site = NoSite
		}
		d.raw[l] = cells
	}
	return d
}

// HasLetter reports whether the dataset tracks a letter.
func (d *Dataset) HasLetter(letter byte) bool {
	_, ok := d.letterIdx[letter]
	return ok
}

// HasRaw reports whether raw probes were retained for a letter.
func (d *Dataset) HasRaw(letter byte) bool {
	_, ok := d.raw[letter]
	return ok
}

// bin returns the bin index for an absolute minute, or -1.
func (d *Dataset) bin(minute int) int {
	if minute < d.StartMinute {
		return -1
	}
	i := (minute - d.StartMinute) / d.BinMinutes
	if i >= d.Bins {
		return -1
	}
	return i
}

// rawBin returns the raw-bin index for an absolute minute, or -1.
func (d *Dataset) rawBin(minute int) int {
	if minute < d.StartMinute {
		return -1
	}
	i := (minute - d.StartMinute) / d.RawBinMinutes
	if i >= d.RawBins {
		return -1
	}
	return i
}

// record folds one probe into the binned matrix (and the raw matrix when
// retained), applying the site>error>timeout precedence within each bin.
func (d *Dataset) record(vp VPID, letter byte, minute int, site int, server int, status Status, rttMs float64) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return
	}
	if raw, ok := d.raw[letter]; ok {
		if rb := d.rawBin(minute); rb >= 0 {
			cell := &raw[int(vp)*d.RawBins+rb]
			// One probe per raw bin; last write wins.
			cell.Status = status
			cell.Site = int16(site)
			cell.Server = int8(server)
			cell.RTTms = clampRTT(rttMs)
		}
	}
	b := d.bin(minute)
	if b < 0 {
		return
	}
	cell := &d.binned[li][int(vp)*d.Bins+b]
	switch status {
	case OK:
		if cell.Status == OK {
			// Average successive successful RTTs in the bin.
			cell.RTTms = uint16((uint32(cell.RTTms) + uint32(clampRTT(rttMs))) / 2)
		} else {
			cell.Status = OK
			cell.RTTms = clampRTT(rttMs)
		}
		cell.Site = int16(site)
	case RCodeErr:
		if cell.Status != OK {
			cell.Status = RCodeErr
			cell.Site = NoSite
		}
	case Timeout:
		if cell.Status == NoData {
			cell.Status = Timeout
			cell.Site = NoSite
		}
	}
}

func clampRTT(ms float64) uint16 {
	if ms < 0 {
		return 0
	}
	if ms > 65535 {
		return 65535
	}
	return uint16(ms)
}

// Exclude drops a VP from analysis with a reason.
func (d *Dataset) Exclude(vp VPID, reason string) {
	if int(vp) < len(d.Excluded) {
		d.Excluded[vp] = true
		d.ExcludedReason[vp] = reason
	}
}

// NumExcluded returns how many VPs were dropped by cleaning.
func (d *Dataset) NumExcluded() int {
	n := 0
	for _, e := range d.Excluded {
		if e {
			n++
		}
	}
	return n
}

// At returns the binned observation for (letter, vp, bin). The second
// return is false for excluded VPs or unknown letters.
func (d *Dataset) At(letter byte, vp VPID, bin int) (BinObs, bool) {
	li, ok := d.letterIdx[letter]
	if !ok || d.Excluded[vp] || bin < 0 || bin >= d.Bins {
		return BinObs{Site: NoSite}, false
	}
	return d.binned[li][int(vp)*d.Bins+bin], true
}

// RawAt returns the raw observation for (letter, vp, rawBin).
func (d *Dataset) RawAt(letter byte, vp VPID, rawBin int) (RawObs, bool) {
	cells, ok := d.raw[letter]
	if !ok || d.Excluded[vp] || rawBin < 0 || rawBin >= d.RawBins {
		return RawObs{Site: NoSite}, false
	}
	return cells[int(vp)*d.RawBins+rawBin], true
}

// EachVP calls fn for every non-excluded VP ID.
func (d *Dataset) EachVP(fn func(vp VPID)) {
	for i := 0; i < d.NumVPs; i++ {
		if !d.Excluded[i] {
			fn(VPID(i))
		}
	}
}

// SuccessSeries returns, for one letter, the number of VPs with a
// successful query per bin — the quantity plotted in Figure 3.
func (d *Dataset) SuccessSeries(letter byte) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	s := stats.NewSeries(fmt.Sprintf("vps-ok-%c", letter), d.StartMinute, d.BinMinutes, d.Bins)
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.Bins : (vp+1)*d.Bins]
		for b, cell := range row {
			if cell.Status == OK {
				s.Values[b]++
			}
		}
	}
	return s, nil
}

// MedianRTTSeries returns the per-bin median RTT of successful queries for
// one letter (Figure 4).
func (d *Dataset) MedianRTTSeries(letter byte) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	perBin := make([][]float64, d.Bins)
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.Bins : (vp+1)*d.Bins]
		for b, cell := range row {
			if cell.Status == OK {
				perBin[b] = append(perBin[b], float64(cell.RTTms))
			}
		}
	}
	s := stats.NewSeries(fmt.Sprintf("rtt-median-%c", letter), d.StartMinute, d.BinMinutes, d.Bins)
	for b, xs := range perBin {
		s.Values[b] = stats.Median(xs)
	}
	return s, nil
}

// SiteSeries returns the number of VPs resolved to the given site of a
// letter per bin (Figures 5, 6, 14).
func (d *Dataset) SiteSeries(letter byte, site int) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	s := stats.NewSeries(fmt.Sprintf("vps-%c-site%d", letter, site), d.StartMinute, d.BinMinutes, d.Bins)
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.Bins : (vp+1)*d.Bins]
		for b, cell := range row {
			if cell.Status == OK && int(cell.Site) == site {
				s.Values[b]++
			}
		}
	}
	return s, nil
}

// SiteRTTSeries returns the per-bin median RTT of successful queries that
// landed on one site (Figure 7).
func (d *Dataset) SiteRTTSeries(letter byte, site int) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	perBin := make([][]float64, d.Bins)
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		row := d.binned[li][vp*d.Bins : (vp+1)*d.Bins]
		for b, cell := range row {
			if cell.Status == OK && int(cell.Site) == site {
				perBin[b] = append(perBin[b], float64(cell.RTTms))
			}
		}
	}
	s := stats.NewSeries(fmt.Sprintf("rtt-%c-site%d", letter, site), d.StartMinute, d.BinMinutes, d.Bins)
	for b, xs := range perBin {
		s.Values[b] = stats.Median(xs)
	}
	return s, nil
}
