package atlas

import (
	"fmt"
	"slices"
	"sync/atomic"

	"github.com/rootevent/anycastddos/internal/stats"
)

// Status classifies one probe (or one bin) outcome.
type Status uint8

// Outcome classes, in the paper's binning precedence order: a bin with any
// successful reply reports the site; else any error rcode; else timeout;
// bins without probes are NoData (§2.4.1).
const (
	NoData   Status = iota
	OK              // positive response (RCODE 0) identifying a site
	RCodeErr        // a response arrived but with a non-zero RCODE
	Timeout         // no reply within the Atlas timeout
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case NoData:
		return "nodata"
	case OK:
		return "ok"
	case RCodeErr:
		return "error"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// NoSite marks a bin or probe that did not identify a site.
const NoSite = -1

// RTTOverflowMs is the sentinel stored when a probe RTT meets or exceeds the
// uint16 millisecond ceiling. A stored value of RTTOverflowMs therefore means
// "at least 65.5 s", not an exact measurement; Dataset.RTTOverflowCount
// reports how many probes hit the ceiling so an implausible saturation no
// longer masquerades as a real RTT. In practice the probe layer converts any
// success slower than AtlasTimeoutMs into a Timeout first, so overflows only
// appear when a World hands back pathological raw RTTs.
const RTTOverflowMs = 65535

// BinObs is the resolved observation of one VP for one letter in one
// ten-minute bin.
type BinObs struct {
	Site   int16 // index into the letter's site list, or NoSite
	Status Status
	RTTms  uint16 // mean RTT of successful probes in the bin; 0 if none
}

// RawObs is a single probe result, kept only for letters configured for
// raw retention (needed by the per-server and per-VP-raster analyses).
type RawObs struct {
	Site   int16
	Server int8 // 1-based server index, 0 unknown
	Status Status
	RTTms  uint16
}

// SiteServer is one interned (site, server) identity pair from the raw
// columns. Seal assigns dense IDs by ascending (Site, Server) order, so the
// table is a pure function of the recorded cells — independent of worker
// count or encounter order.
type SiteServer struct {
	Site   int16
	Server int8
}

// rawColumns holds the per-probe retention for one letter as parallel
// columns indexed vp*RawBins+rawBin. During a campaign the identity lives in
// the wide site/server columns; Seal interns them into ids (2 bytes/cell via
// the shared SiteServer table) and drops the wide columns.
type rawColumns struct {
	status []Status
	rtt    []uint16
	site   []int16 // until Seal
	server []int8  // until Seal
	ids    []uint16
}

// at returns the (site, server) identity of cell j, from either
// representation.
func (rc *rawColumns) at(table []SiteServer, j int) (int16, int8) {
	if rc.ids != nil {
		p := table[rc.ids[j]]
		return p.Site, p.Server
	}
	return rc.site[j], rc.server[j]
}

// Dataset is the cleaned, binned measurement corpus for one simulation run,
// stored struct-of-arrays: one dense column per field, indexed
// [letter][vp*Bins+bin]. The columnar shape keeps a 1M-VP campaign to five
// bytes per binned cell and lets every series/figure computation walk
// contiguous slices without materializing per-row structs.
type Dataset struct {
	StartMinute int
	BinMinutes  int
	Bins        int

	// RawBinMinutes is the probe cadence (raw bins are one probe wide).
	RawBinMinutes int
	RawBins       int

	Letters   []byte
	letterIdx map[byte]int

	NumVPs int
	// Excluded marks VPs dropped by cleaning (old firmware or detected
	// hijack); their observations are retained but ignored by accessors.
	Excluded []bool
	// ExcludedReason maps a VP to why it was dropped ("" if kept).
	ExcludedReason []string

	// Binned columns, one slice per letter, each indexed vp*Bins+bin.
	binStatus [][]Status
	binSite   [][]int16
	binRTT    [][]uint16

	// raw[letter] holds per-probe columns, only for raw-retained letters.
	raw map[byte]*rawColumns
	// ssTable maps interned raw IDs back to (site, server); built by Seal.
	ssTable []SiteServer
	sealed  bool

	// rttOverflow counts probes whose RTT saturated at RTTOverflowMs.
	// Updated atomically: VP shards record concurrently.
	rttOverflow atomic.Uint64
}

// NewDataset allocates a dataset for the given letters and shape.
func NewDataset(letters []byte, rawLetters []byte, numVPs, startMinute, binMinutes, bins, rawBinMinutes int) *Dataset {
	d := &Dataset{
		StartMinute:    startMinute,
		BinMinutes:     binMinutes,
		Bins:           bins,
		RawBinMinutes:  rawBinMinutes,
		RawBins:        bins * binMinutes / rawBinMinutes,
		Letters:        append([]byte(nil), letters...),
		letterIdx:      make(map[byte]int, len(letters)),
		NumVPs:         numVPs,
		Excluded:       make([]bool, numVPs),
		ExcludedReason: make([]string, numVPs),
		raw:            make(map[byte]*rawColumns),
	}
	d.binStatus = make([][]Status, len(letters))
	d.binSite = make([][]int16, len(letters))
	d.binRTT = make([][]uint16, len(letters))
	for i, l := range letters {
		d.letterIdx[l] = i
		d.binStatus[i] = make([]Status, numVPs*bins)
		d.binRTT[i] = make([]uint16, numVPs*bins)
		sites := make([]int16, numVPs*bins)
		for j := range sites {
			sites[j] = NoSite
		}
		d.binSite[i] = sites
	}
	for _, l := range rawLetters {
		if _, ok := d.letterIdx[l]; !ok {
			continue
		}
		n := numVPs * d.RawBins
		rc := &rawColumns{
			status: make([]Status, n),
			rtt:    make([]uint16, n),
			site:   make([]int16, n),
			server: make([]int8, n),
		}
		for j := range rc.site {
			rc.site[j] = NoSite
		}
		d.raw[l] = rc
	}
	return d
}

// HasLetter reports whether the dataset tracks a letter.
func (d *Dataset) HasLetter(letter byte) bool {
	_, ok := d.letterIdx[letter]
	return ok
}

// HasRaw reports whether raw probes were retained for a letter.
func (d *Dataset) HasRaw(letter byte) bool {
	_, ok := d.raw[letter]
	return ok
}

// bin returns the bin index for an absolute minute, or -1.
func (d *Dataset) bin(minute int) int {
	if minute < d.StartMinute {
		return -1
	}
	i := (minute - d.StartMinute) / d.BinMinutes
	if i >= d.Bins {
		return -1
	}
	return i
}

// rawBin returns the raw-bin index for an absolute minute, or -1.
func (d *Dataset) rawBin(minute int) int {
	if minute < d.StartMinute {
		return -1
	}
	i := (minute - d.StartMinute) / d.RawBinMinutes
	if i >= d.RawBins {
		return -1
	}
	return i
}

// record folds one probe into the binned columns (and the raw columns when
// retained), applying the site>error>timeout precedence within each bin.
// Probes stream straight into the columns as they happen; no per-row struct
// is ever materialized. Must not be called after Seal.
func (d *Dataset) record(vp VPID, letter byte, minute int, site int, server int, status Status, rttMs float64) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return
	}
	if rc, ok := d.raw[letter]; ok {
		if rb := d.rawBin(minute); rb >= 0 {
			i := int(vp)*d.RawBins + rb
			// One probe per raw bin; last write wins.
			rc.status[i] = status
			rc.site[i] = int16(site)
			rc.server[i] = int8(server)
			rc.rtt[i] = d.clampRTT(rttMs)
		}
	}
	b := d.bin(minute)
	if b < 0 {
		return
	}
	i := int(vp)*d.Bins + b
	st := d.binStatus[li]
	switch status {
	case OK:
		if st[i] == OK {
			// Average successive successful RTTs in the bin.
			d.binRTT[li][i] = uint16((uint32(d.binRTT[li][i]) + uint32(d.clampRTT(rttMs))) / 2)
		} else {
			st[i] = OK
			d.binRTT[li][i] = d.clampRTT(rttMs)
		}
		d.binSite[li][i] = int16(site)
	case RCodeErr:
		if st[i] != OK {
			st[i] = RCodeErr
			d.binSite[li][i] = NoSite
		}
	case Timeout:
		if st[i] == NoData {
			st[i] = Timeout
			d.binSite[li][i] = NoSite
		}
	}
}

// clampRTT squeezes a millisecond RTT into the stored uint16 range. Values
// at or beyond the ceiling are recorded as the RTTOverflowMs sentinel and
// counted, so saturation is observable instead of silently producing a
// plausible-looking 65535.
func (d *Dataset) clampRTT(ms float64) uint16 {
	if ms < 0 {
		return 0
	}
	if ms >= RTTOverflowMs {
		d.rttOverflow.Add(1)
		return RTTOverflowMs
	}
	return uint16(ms)
}

// RTTOverflowCount reports how many recorded probes saturated the uint16
// RTT range (and therefore carry the RTTOverflowMs sentinel).
func (d *Dataset) RTTOverflowCount() uint64 { return d.rttOverflow.Load() }

// Seal canonicalises the raw-letter (site, server) pairs into a dense
// interned ID table, halving the identity storage and making the raw columns
// self-describing via SiteServers. IDs are assigned in ascending
// (site, server) order over the distinct pairs actually recorded, so the
// table is byte-identical for every worker count. Seal is idempotent;
// RunContext and LoadDataset call it automatically. record must not be used
// after sealing.
func (d *Dataset) Seal() {
	if d.sealed {
		return
	}
	d.sealed = true
	idx := make(map[SiteServer]int)
	var pairs []SiteServer
	for _, l := range d.Letters {
		rc := d.raw[l]
		if rc == nil || rc.ids != nil {
			continue
		}
		for j := range rc.site {
			p := SiteServer{Site: rc.site[j], Server: rc.server[j]}
			if _, ok := idx[p]; !ok {
				idx[p] = 0
				pairs = append(pairs, p)
			}
		}
	}
	if len(pairs) > 1<<16 {
		// More distinct identities than uint16 IDs can address; keep the
		// wide columns. Never hit in practice (sites × servers is small).
		return
	}
	slices.SortFunc(pairs, func(a, b SiteServer) int {
		if a.Site != b.Site {
			return int(a.Site) - int(b.Site)
		}
		return int(a.Server) - int(b.Server)
	})
	for i, p := range pairs {
		idx[p] = i
	}
	d.ssTable = pairs
	for _, l := range d.Letters {
		rc := d.raw[l]
		if rc == nil || rc.ids != nil {
			continue
		}
		ids := make([]uint16, len(rc.site))
		for j := range rc.site {
			ids[j] = uint16(idx[SiteServer{Site: rc.site[j], Server: rc.server[j]}])
		}
		rc.ids = ids
		rc.site, rc.server = nil, nil
	}
}

// SiteServers returns the interned (site, server) table built by Seal, in ID
// order. The result is a view; callers must not modify it.
func (d *Dataset) SiteServers() []SiteServer { return d.ssTable }

// Exclude drops a VP from analysis with a reason.
func (d *Dataset) Exclude(vp VPID, reason string) {
	if int(vp) < len(d.Excluded) {
		d.Excluded[vp] = true
		d.ExcludedReason[vp] = reason
	}
}

// NumExcluded returns how many VPs were dropped by cleaning.
func (d *Dataset) NumExcluded() int {
	n := 0
	for _, e := range d.Excluded {
		if e {
			n++
		}
	}
	return n
}

// At returns the binned observation for (letter, vp, bin). The second
// return is false for excluded VPs or unknown letters.
//
// Deprecated: At assembles a BinObs struct per call; scanning code should
// use the allocation-free Rows cursor instead. Kept one release for
// migration; repolint's deprecatedatlas rule flags new non-test uses
// outside internal/atlas.
func (d *Dataset) At(letter byte, vp VPID, bin int) (BinObs, bool) {
	li, ok := d.letterIdx[letter]
	if !ok || d.Excluded[vp] || bin < 0 || bin >= d.Bins {
		return BinObs{Site: NoSite}, false
	}
	i := int(vp)*d.Bins + bin
	return BinObs{Site: d.binSite[li][i], Status: d.binStatus[li][i], RTTms: d.binRTT[li][i]}, true
}

// RawAt returns the raw observation for (letter, vp, rawBin).
//
// Deprecated: RawAt assembles a RawObs struct per call; scanning code
// should use the allocation-free RawRows cursor instead. Kept one release
// for migration; repolint's deprecatedatlas rule flags new non-test uses
// outside internal/atlas.
func (d *Dataset) RawAt(letter byte, vp VPID, rawBin int) (RawObs, bool) {
	rc, ok := d.raw[letter]
	if !ok || d.Excluded[vp] || rawBin < 0 || rawBin >= d.RawBins {
		return RawObs{Site: NoSite}, false
	}
	i := int(vp)*d.RawBins + rawBin
	site, server := rc.at(d.ssTable, i)
	return RawObs{Site: site, Server: server, Status: rc.status[i], RTTms: rc.rtt[i]}, true
}

// EachVP calls fn for every non-excluded VP ID.
//
// Deprecated: use the Rows/RawRows cursors, which pair the VP walk with
// direct column views. Kept one release for migration; repolint's
// deprecatedatlas rule flags new non-test uses outside internal/atlas.
func (d *Dataset) EachVP(fn func(vp VPID)) {
	for i := 0; i < d.NumVPs; i++ {
		if !d.Excluded[i] {
			fn(VPID(i))
		}
	}
}

// SuccessSeries returns, for one letter, the number of VPs with a
// successful query per bin — the quantity plotted in Figure 3.
func (d *Dataset) SuccessSeries(letter byte) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	s := stats.NewSeries(fmt.Sprintf("vps-ok-%c", letter), d.StartMinute, d.BinMinutes, d.Bins)
	st := d.binStatus[li]
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		row := st[vp*d.Bins : (vp+1)*d.Bins]
		for b, c := range row {
			if c == OK {
				s.Values[b]++
			}
		}
	}
	return s, nil
}

// MedianRTTSeries returns the per-bin median RTT of successful queries for
// one letter (Figure 4). It runs in two passes over the status column —
// count per bin, then scatter RTTs into one flat buffer grouped by bin — so
// the only allocations are the buffer and the series, regardless of VP
// count.
func (d *Dataset) MedianRTTSeries(letter byte) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	s := stats.NewSeries(fmt.Sprintf("rtt-median-%c", letter), d.StartMinute, d.BinMinutes, d.Bins)
	d.medianSeries(s, d.binStatus[li], d.binRTT[li], d.binSite[li], false, 0)
	return s, nil
}

// SiteSeries returns the number of VPs resolved to the given site of a
// letter per bin (Figures 5, 6, 14).
func (d *Dataset) SiteSeries(letter byte, site int) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	s := stats.NewSeries(fmt.Sprintf("vps-%c-site%d", letter, site), d.StartMinute, d.BinMinutes, d.Bins)
	st, si := d.binStatus[li], d.binSite[li]
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		lo := vp * d.Bins
		row := st[lo : lo+d.Bins]
		for b, c := range row {
			if c == OK && int(si[lo+b]) == site {
				s.Values[b]++
			}
		}
	}
	return s, nil
}

// SiteRTTSeries returns the per-bin median RTT of successful queries that
// landed on one site (Figure 7).
func (d *Dataset) SiteRTTSeries(letter byte, site int) (*stats.Series, error) {
	li, ok := d.letterIdx[letter]
	if !ok {
		return nil, fmt.Errorf("atlas: letter %c not in dataset", letter)
	}
	s := stats.NewSeries(fmt.Sprintf("rtt-%c-site%d", letter, site), d.StartMinute, d.BinMinutes, d.Bins)
	d.medianSeries(s, d.binStatus[li], d.binRTT[li], d.binSite[li], true, site)
	return s, nil
}

// medianSeries fills s with the per-bin median RTT over successful cells
// (optionally restricted to one site) using counting passes and a single
// flat scatter buffer.
func (d *Dataset) medianSeries(s *stats.Series, st []Status, rtt []uint16, si []int16, bySite bool, site int) {
	// Pass 1: successful samples per bin -> prefix-summed segment offsets.
	offs := make([]int, d.Bins+1)
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		lo := vp * d.Bins
		row := st[lo : lo+d.Bins]
		for b, c := range row {
			if c == OK && (!bySite || int(si[lo+b]) == site) {
				offs[b+1]++
			}
		}
	}
	for b := 0; b < d.Bins; b++ {
		offs[b+1] += offs[b]
	}
	// Pass 2: scatter RTTs into per-bin segments, preserving VP order
	// within each bin (the same multiset the row store accumulated).
	flat := make([]uint16, offs[d.Bins])
	next := make([]int, d.Bins)
	copy(next, offs[:d.Bins])
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		lo := vp * d.Bins
		row := st[lo : lo+d.Bins]
		for b, c := range row {
			if c == OK && (!bySite || int(si[lo+b]) == site) {
				flat[next[b]] = rtt[lo+b]
				next[b]++
			}
		}
	}
	for b := 0; b < d.Bins; b++ {
		seg := flat[offs[b]:offs[b+1]]
		slices.Sort(seg)
		s.Values[b] = medianSortedU16(seg)
	}
}

// medianSortedU16 is the median of an ascending-sorted uint16 slice,
// bit-identical to stats.Median over the same values widened to float64:
// every uint16 converts exactly, and for even n the two middle integers
// halve exactly, so the q=0.5 linear interpolation loses nothing.
func medianSortedU16(seg []uint16) float64 {
	n := len(seg)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return float64(seg[n/2])
	}
	return float64(seg[n/2-1])*0.5 + float64(seg[n/2])*0.5
}
