package atlas

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/rootevent/anycastddos/internal/chaos"
)

// buildTestDataset produces a small populated dataset via the real
// measurement path.
func buildTestDataset(t *testing.T) *Dataset {
	t.Helper()
	g := testGraph(t)
	p := smallPopulation(t, g, 25)
	for i := range p.VPs {
		p.VPs[i].Firmware = 4700
		p.VPs[i].Hijacked = false
	}
	p.VPs[2].Firmware = 4400
	w := &fakeWorld{fn: func(vp *VP, letter byte, minute int) Outcome {
		switch {
		case int(vp.ID)%5 == 0 && minute%8 == 0:
			return Outcome{Status: Timeout}
		case int(vp.ID)%7 == 0:
			return Outcome{Status: RCodeErr}
		default:
			site := int(vp.ID) % 3
			srv := 1 + int(vp.ID)%2
			codes := []string{"AMS", "LHR", "FRA"}
			return Outcome{Status: OK, Site: site, Server: srv,
				RTTms:    20 + float64(vp.ID),
				ChaosTXT: chaos.MustFormat(letter, codes[site], srv)}
		}
	}}
	cfg := ScheduleConfig{
		Letters: []byte("EK"), RawLetters: []byte("K"),
		Minutes: 120, BinMinutes: 10, IntervalMin: 4, AIntervalMin: 30,
	}
	return Run(p, w, cfg)
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	d := buildTestDataset(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Shape.
	if got.NumVPs != d.NumVPs || got.Bins != d.Bins || got.RawBins != d.RawBins ||
		got.BinMinutes != d.BinMinutes || got.StartMinute != d.StartMinute {
		t.Fatalf("shape mismatch: %+v vs %+v", got, d)
	}
	if string(got.Letters) != string(d.Letters) {
		t.Fatalf("letters %q vs %q", got.Letters, d.Letters)
	}
	// Exclusions.
	if !got.Excluded[2] || got.ExcludedReason[2] != "firmware" {
		t.Error("exclusion lost")
	}
	// Every binned cell identical.
	for _, letter := range d.Letters {
		for vp := 0; vp < d.NumVPs; vp++ {
			if d.Excluded[vp] {
				continue
			}
			for b := 0; b < d.Bins; b++ {
				a, _ := d.At(letter, VPID(vp), b)
				bb, _ := got.At(letter, VPID(vp), b)
				if a != bb {
					t.Fatalf("cell %c/%d/%d: %+v vs %+v", letter, vp, b, a, bb)
				}
			}
		}
	}
	// Raw cells for K.
	for vp := 0; vp < d.NumVPs; vp++ {
		if d.Excluded[vp] {
			continue
		}
		for rb := 0; rb < d.RawBins; rb++ {
			a, okA := d.RawAt('K', VPID(vp), rb)
			b, okB := got.RawAt('K', VPID(vp), rb)
			if okA != okB || a != b {
				t.Fatalf("raw cell %d/%d: %+v vs %+v", vp, rb, a, b)
			}
		}
	}
	// Derived series agree.
	s1, err := d.SuccessSeries('K')
	if err != nil {
		t.Fatal(err)
	}
	s2, err := got.SuccessSeries('K')
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Values {
		if s1.Values[i] != s2.Values[i] {
			t.Fatalf("success series differs at %d", i)
		}
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC........................"),
		append(append([]byte{}, datasetMagic[:]...), make([]byte, 8)...), // zero header
	}
	for i, raw := range cases {
		if _, err := LoadDataset(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid stream.
	d := buildTestDataset(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := LoadDataset(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Implausible header is rejected rather than allocating wildly.
	evil := append([]byte{}, datasetMagic[:]...)
	for i := 0; i < 8; i++ {
		evil = append(evil, 0xFF, 0xFF, 0xFF, 0x7F)
	}
	if _, err := LoadDataset(bytes.NewReader(evil)); !errors.Is(err, ErrBadDatasetFile) {
		t.Errorf("huge header err = %v", err)
	}
}

func TestSavePropagatesWriteErrors(t *testing.T) {
	d := buildTestDataset(t)
	if err := d.Save(failingWriter{}); err == nil {
		t.Error("write error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
