package atlas

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rootevent/anycastddos/internal/stats"
)

// The row-reference equivalence suite lives in equivalence_ext_test.go
// (package atlas_test) so it can share the seed's row store through
// internal/atlas/atlastest with the root-level 9k replay test. The tests
// below stay in-package because they reach unexported internals (record,
// medianSortedU16).

// TestRawCursorUnsealed exercises the wide-column path of RawRows on a
// hand-built, never-sealed dataset.
func TestRawCursorUnsealed(t *testing.T) {
	d := NewDataset([]byte("K"), []byte("K"), 2, 0, 10, 2, 4)
	d.record(0, 'K', 0, 3, 2, OK, 25)
	d.record(1, 'K', 4, 1, 1, OK, 50)
	raw, err := d.RawRows('K')
	if err != nil {
		t.Fatal(err)
	}
	if !raw.Next() {
		t.Fatal("no first VP")
	}
	if raw.Site(0) != 3 || raw.Server(0) != 2 {
		t.Errorf("unsealed raw cell = site %d server %d, want 3/2", raw.Site(0), raw.Server(0))
	}
	d.Seal()
	raw2, err := d.RawRows('K')
	if err != nil {
		t.Fatal(err)
	}
	if !raw2.Next() {
		t.Fatal("no first VP after seal")
	}
	if raw2.Site(0) != 3 || raw2.Server(0) != 2 {
		t.Errorf("sealed raw cell = site %d server %d, want 3/2", raw2.Site(0), raw2.Server(0))
	}
	// NoSite plus the two recorded pairs.
	if n := len(d.SiteServers()); n != 3 {
		t.Errorf("interned pairs = %d, want 3", n)
	}
}

// TestMedianSortedU16MatchesStatsMedian fuzzes the specialized integer
// median against the general stats.Median it must reproduce bit-for-bit.
func TestMedianSortedU16MatchesStatsMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(40)
		xs := make([]uint16, n)
		fs := make([]float64, n)
		for i := range xs {
			xs[i] = uint16(rng.Intn(65536))
			fs[i] = float64(xs[i])
		}
		want := stats.Median(fs)
		// medianSortedU16 needs sorted input.
		sortU16(xs)
		got := medianSortedU16(xs)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d (n=%d): medianSortedU16 = %v, stats.Median = %v", trial, n, got, want)
		}
	}
}

func sortU16(xs []uint16) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
