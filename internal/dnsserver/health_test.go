package dnsserver

import (
	"net"
	"testing"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
)

func TestStatsHelpers(t *testing.T) {
	prev := Stats{Received: 100, Answered: 80, DroppedLoss: 5, DroppedRRL: 10, Ignored: 2}
	cur := Stats{Received: 300, Answered: 240, DroppedLoss: 15, DroppedRRL: 30, Ignored: 6}
	d := cur.Sub(prev)
	want := Stats{Received: 200, Answered: 160, DroppedLoss: 10, DroppedRRL: 20, Ignored: 4}
	if d != want {
		t.Fatalf("Sub: got %+v want %+v", d, want)
	}
	if got := d.LossRate(); got != 0.05 {
		t.Errorf("LossRate: got %v want 0.05", got)
	}
	if got := d.RRLRate(); got != 0.1 {
		t.Errorf("RRLRate: got %v want 0.1", got)
	}
	if got := d.Backlog(); got != 6 {
		t.Errorf("Backlog: got %v want 6", got)
	}

	// A counter reset (restarted server) saturates to zero, never wraps.
	if got := prev.Sub(cur); got != (Stats{}) {
		t.Errorf("Sub after reset: got %+v want zero", got)
	}
	// More resolved than received (transient snapshot skew) saturates too.
	skew := Stats{Received: 10, Answered: 11}
	if got := skew.Backlog(); got != 0 {
		t.Errorf("Backlog skew: got %v want 0", got)
	}
	// Rates on an idle window are zero, not NaN.
	var idle Stats
	if idle.LossRate() != 0 || idle.RRLRate() != 0 {
		t.Errorf("idle rates: got %v/%v", idle.LossRate(), idle.RRLRate())
	}
}

func TestSnapshotCountsIgnored(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1})
	conn, err := net.DialUDP("udp", nil, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A malformed datagram counts as received-but-ignored, keeping
	// Backlog at zero once the worker has processed it.
	if _, err := conn.Write([]byte{0x01, 0x02, 0x03}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	var snap Stats
	for time.Now().Before(deadline) {
		snap = s.Snapshot()
		if snap.Ignored >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if snap.Ignored < 1 || snap.Received < 1 {
		t.Fatalf("malformed packet not accounted: %+v", snap)
	}
	if snap.Backlog() != 0 {
		t.Fatalf("ignored packet left phantom backlog: %+v", snap)
	}

	// Snapshot and the legacy Stats() tuple agree.
	received, answered, droppedLoss, droppedRRL := s.Stats()
	if snap2 := s.Snapshot(); snap2.Received != received || snap2.Answered != answered ||
		snap2.DroppedLoss != droppedLoss || snap2.DroppedRRL != droppedRRL {
		t.Fatalf("Snapshot %+v disagrees with Stats (%d,%d,%d,%d)",
			snap2, received, answered, droppedLoss, droppedRRL)
	}
	if s.Uptime() <= 0 {
		t.Fatal("Uptime not positive")
	}
}

func TestDrainTCPKeepsUDPServing(t *testing.T) {
	s := startTCPServer(t, Config{Letter: 'K', Site: "LHR", Server: 1})

	// Park an idle TCP connection, then drain: it must close promptly.
	idle, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	s.SetDraining(true)
	if !s.Draining() {
		t.Fatal("Draining() false after SetDraining(true)")
	}
	if err := idle.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle TCP conn survived drain")
	}

	// New TCP connections are refused (accepted then immediately closed),
	// without killing the accept loop.
	fresh, err := net.Dial("tcp", s.Addr().String())
	if err == nil {
		fresh.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := fresh.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("new TCP conn served while draining")
		}
		fresh.Close()
	}

	// UDP keeps answering: a drained site still serves its residual
	// catchment, it just stops holding TCP retries.
	p := NewProber(1)
	p.Timeout = 2 * time.Second
	res, err := p.Probe(s.Addr(), 'K')
	if err != nil {
		t.Fatalf("UDP probe during drain: %v", err)
	}
	if !res.Matched || res.Identity.Site != "LHR" {
		t.Fatalf("probe during drain: %+v", res)
	}

	// Undrain: TCP service resumes on the same listener.
	s.SetDraining(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		again, err := net.Dial("tcp", s.Addr().String())
		if err == nil {
			resp, qerr := dnswire.ExchangeTCP(again, dnswire.NewQuery(9, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS))
			again.Close()
			if qerr == nil && len(resp.Answers) == 1 {
				return
			}
			err = qerr
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP service did not resume after undrain: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
