package dnsserver

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestMapCatchmentParallelMatchesSequential sweeps the same target list
// with the sequential and the fanned-out mapper and requires identical
// site tallies — the fan-out changes scheduling, never verdicts.
func TestMapCatchmentParallelMatchesSequential(t *testing.T) {
	sites := []string{"AMS", "LHR", "NRT"}
	var addrs []*net.UDPAddr
	for i, site := range sites {
		s := startServer(t, Config{Letter: 'K', Site: site, Server: i + 1})
		// Uneven weights: AMS x1, LHR x2, NRT x3.
		for j := 0; j <= i; j++ {
			addrs = append(addrs, s.Addr())
		}
	}

	seq, err := NewProber(7).MapCatchment(addrs, 'K')
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		par, err := NewProber(7).MapCatchmentParallel(context.Background(), addrs, 'K', workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: tallies %v, sequential %v", workers, par, seq)
		}
		for site, n := range seq {
			if par[site] != n {
				t.Fatalf("workers=%d: site %s tallied %d, sequential %d", workers, site, par[site], n)
			}
		}
	}
}

// TestMapCatchmentParallelCanceled checks cancellation surfaces the
// progress-naming error, like the sequential sweep.
func TestMapCatchmentParallelCanceled(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1})
	addrs := []*net.UDPAddr{s.Addr(), s.Addr(), s.Addr()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewProber(1).MapCatchmentParallel(ctx, addrs, 'K', 2); err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
}

// TestMapCatchmentParallelDeadTarget checks one unresponsive target slows
// only its own lane: live servers still tally, and the sweep finishes well
// inside the dead target's single-attempt timeout budget times targets.
func TestMapCatchmentParallelDeadTarget(t *testing.T) {
	live := startServer(t, Config{Letter: 'K', Site: "LHR", Server: 1})
	// A bound-but-unserved socket: queries to it time out.
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()

	p := NewProber(3)
	p.Timeout = 300 * time.Millisecond
	addrs := []*net.UDPAddr{
		live.Addr(), dead.LocalAddr().(*net.UDPAddr), live.Addr(), live.Addr(),
	}
	start := time.Now()
	sites, err := p.MapCatchmentParallel(context.Background(), addrs, 'K', 2)
	if err != nil {
		t.Fatal(err)
	}
	if sites["K-LHR"] != 3 {
		t.Fatalf("live tallies = %v, want K-LHR:3", sites)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("sweep took %v; dead target stalled other lanes", elapsed)
	}
}
