package dnsserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/udpbatch"
)

// floodQuery is the fixed-name flood workload from the Nov 2015 event: an
// A query for a nonexistent .com name, answered NXDOMAIN with an SOA.
func floodQuery(b *testing.B) []byte {
	b.Helper()
	pkt, err := dnswire.NewQuery(99, "www.336901.com", dnswire.TypeA, dnswire.ClassINET).Pack()
	if err != nil {
		b.Fatal(err)
	}
	return pkt
}

// BenchmarkFloodPath compares the per-packet cost of the legacy reference
// path (Decode + NewResponse + Encode) against the batched fast path
// (DecodeInto + tail splice) on the flood workload. This is the per-core
// number: 1 Mq/s per core corresponds to 1000 ns/op. make bench-gate holds
// fast at >=5x over legacy and 0 allocs/op.
func BenchmarkFloodPath(b *testing.B) {
	s, err := Start(Config{Letter: 'K', Site: "AMS", Server: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	pkt := floodQuery(b)
	src := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 5353}
	srcAP := netip.MustParseAddrPort("10.0.0.1:5353")

	b.Run("legacy", func(b *testing.B) {
		out := make([]byte, 0, 512)
		resp, ok := s.handle(pkt, src) // warm up outside the timed region
		if !ok {
			b.Fatal("legacy path refused the flood query")
		}
		if out, err = resp.Encode(out[:0]); err != nil || len(out) == 0 {
			b.Fatalf("legacy encode: %v", err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, _ := s.handle(pkt, src)
			out, _ = resp.Encode(out[:0])
		}
		b.StopTimer()
		reportQPS(b)
	})
	b.Run("fast", func(b *testing.B) {
		var q dnswire.Message
		out := udpbatch.Message{Buf: make([]byte, 0, 512)}
		if !s.respond(pkt, srcAP, &q, &out) { // warm decode scratch
			b.Fatal("fast path refused the flood query")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.respond(pkt, srcAP, &q, &out)
		}
		b.StopTimer()
		reportQPS(b)
	})
}

// BenchmarkServerEcho measures end-to-end throughput over a real loopback
// socket: a pipelined client keeps a window of queries in flight against a
// server with 1, 2, and 4 reader workers. The qps metric is what lands in
// BENCH_9.json and the EXPERIMENTS.md table.
func BenchmarkServerEcho(b *testing.B) {
	pkt, err := dnswire.NewQuery(7, "www.336901.com", dnswire.TypeA, dnswire.ClassINET).Pack()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			s, err := Start(Config{Letter: 'K', Site: "AMS", Server: 1, Workers: workers, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			conn, err := net.DialUDP("udp", nil, s.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()

			reply := make([]byte, 512)
			echo := func(window int) {
				for k := 0; k < window; k++ {
					if _, err := conn.Write(pkt); err != nil {
						b.Fatal(err)
					}
				}
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				for k := 0; k < window; k++ {
					if _, err := conn.Read(reply); err != nil {
						b.Fatalf("reply %d/%d: %v", k, window, err)
					}
				}
			}
			echo(16) // warm worker scratch before timing (CI runs BENCHTIME=1x)

			const window = 16
			b.ResetTimer()
			for done := 0; done < b.N; {
				w := window
				if left := b.N - done; left < w {
					w = left
				}
				echo(w)
				done += w
			}
			b.StopTimer()
			reportQPS(b)
		})
	}
}

// reportQPS emits queries-per-second as a custom metric; benchjson lands it
// in BENCH_9.json under metrics.qps.
func reportQPS(b *testing.B) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "qps")
	}
}
