package dnsserver

import (
	"math/rand"
	"net/netip"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/udpbatch"
)

// Injector drives the server's per-packet UDP path in process, bypassing
// the kernel. Capacity benchmarking uses it (floodbench -inproc, the
// FloodPath benchmark) to measure the userspace packet path on its own:
// over loopback sockets the kernel's per-datagram cost dominates long
// before this path saturates. Each Injector owns its decode scratch, reply
// buffer, and loss-coin RNG — use one per goroutine.
type Injector struct {
	s   *Server
	rng *rand.Rand
	q   dnswire.Message
	out udpbatch.Message
}

// injectorStream offsets injector RNG streams far away from the reader
// workers' (worker i draws from workerSeed(seed, i), i < Workers).
const injectorStream = 1 << 20

// NewInjector returns an in-process packet lane. Its loss-coin stream is
// derived from the config seed like a reader worker's, so injected traffic
// obeys the same seeded loss model.
func (s *Server) NewInjector() *Injector {
	idx := int(s.injectors.Add(1))
	return &Injector{s: s, rng: rand.New(rand.NewSource(workerSeed(s.cfg.Seed, injectorStream+idx)))}
}

// Inject runs one packet through the full per-packet path — stats, loss
// coin, RRL verdict, decode, encode — exactly as a reader worker would,
// returning the wire reply and whether one would have been sent. The reply
// aliases the Injector's buffer and is valid until the next Inject.
func (in *Injector) Inject(pkt []byte, src netip.AddrPort) ([]byte, bool) {
	s := in.s
	s.received.Add(1)
	if in.rng.Float64() < s.cfg.LossProb {
		s.droppedLoss.Add(1)
		return nil, false
	}
	if !s.respond(pkt, src, &in.q, &in.out) {
		return nil, false
	}
	if s.cfg.Delay > 0 {
		time.Sleep(s.cfg.Delay)
	}
	s.answered.Add(1)
	return in.out.Buf[:in.out.N], true
}
