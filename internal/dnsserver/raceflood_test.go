package dnsserver

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
)

// TestStatsCloseDuringFlood hammers Stats from several goroutines while a
// flood is in progress, then Closes the server mid-flood. Run under -race
// (make race) this proves the atomic counters and the worker drain: Close
// must join every worker while floods and Stats readers keep arriving.
func TestStatsCloseDuringFlood(t *testing.T) {
	s, err := Start(Config{Letter: 'K', Site: "LHR", Server: 1, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := dnswire.NewQuery(33, "www.336901.com", dnswire.TypeA, dnswire.ClassINET).Pack()
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for f := 0; f < 3; f++ {
		conn, err := net.DialUDP("udp", nil, s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(conn *net.UDPConn) {
			defer wg.Done()
			defer conn.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := conn.Write(pkt); err != nil {
					return
				}
			}
		}(conn)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				received, answered, droppedLoss, droppedRRL := s.Stats()
				if received < last {
					t.Error("received went backwards")
					return
				}
				last = received
				_ = answered + droppedLoss + droppedRRL
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	if err := s.Close(); err != nil { // mid-flood: drain must join all 4 workers
		t.Fatalf("close during flood: %v", err)
	}
	close(stop)
	wg.Wait()

	received, answered, _, _ := s.Stats()
	if received == 0 || answered == 0 {
		t.Fatalf("flood was not served before close: recv %d ans %d", received, answered)
	}
	if s.Close() != nil {
		t.Error("second close should be a no-op")
	}
}

// TestWorkerSeedDerivation pins the splitmix worker-seed stream: stable for
// a fixed (seed, worker) pair, distinct across workers and across seeds.
func TestWorkerSeedDerivation(t *testing.T) {
	seen := make(map[int64]string)
	for _, seed := range []int64{0, 1, 5, -7, 1 << 40} {
		for i := 0; i < 8; i++ {
			a, b := workerSeed(seed, i), workerSeed(seed, i)
			if a != b {
				t.Fatalf("workerSeed(%d,%d) unstable: %d vs %d", seed, i, a, b)
			}
			if prev, dup := seen[a]; dup {
				t.Fatalf("workerSeed collision: (%d,%d) and %s -> %d", seed, i, prev, a)
			}
			seen[a] = fmt.Sprintf("(%d,%d)", seed, i)
		}
	}
}

// TestLossCoinWorkerCountIndependence is the deterministic half of the
// loss-model claim: per-worker RNG streams derived from one config seed
// each converge to the configured drop probability, so the aggregate drop
// rate does not depend on how packets are sheared across workers. The
// streams here are exactly the ones the server workers draw from.
func TestLossCoinWorkerCountIndependence(t *testing.T) {
	const (
		seed  = int64(42)
		p     = 0.3
		draws = 50_000
	)
	for _, workers := range []int{1, 2, 4, 8} {
		drops, total := 0, 0
		for w := 0; w < workers; w++ {
			rng := rand.New(rand.NewSource(workerSeed(seed, w)))
			for i := 0; i < draws/workers; i++ {
				total++
				if rng.Float64() < p {
					drops++
				}
			}
		}
		got := float64(drops) / float64(total)
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("%d workers: aggregate drop rate %.4f, want %.2f±0.02", workers, got, p)
		}
	}
}

// TestLossRateOverSocketMultiWorker is the live half: a real 4-worker
// server with 30% loss drops ~30% of what it receives.
func TestLossRateOverSocketMultiWorker(t *testing.T) {
	s, err := Start(Config{Letter: 'K', Site: "NRT", Server: 1, Workers: 4, LossProb: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.DialUDP("udp", nil, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt, err := dnswire.NewQuery(44, "www.336901.com", dnswire.TypeA, dnswire.ClassINET).Pack()
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for i := 0; i < n; i++ {
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			time.Sleep(time.Millisecond) // let workers drain the socket queue
		}
	}
	// Wait for the receive counter to stabilize (kernel-queue drain).
	var received, droppedLoss uint64
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		r, _, d, _ := s.Stats()
		if r == received && r > n/2 {
			break
		}
		received, droppedLoss = r, d
		time.Sleep(20 * time.Millisecond)
	}
	received, _, droppedLoss, _ = s.Stats()
	if received == 0 {
		t.Fatal("server received nothing")
	}
	got := float64(droppedLoss) / float64(received)
	if math.Abs(got-0.3) > 0.05 {
		t.Fatalf("drop rate %.3f over %d received, want 0.30±0.05", got, received)
	}
}
