package dnsserver

import (
	"net"
	"testing"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/rrl"
)

func startTCPServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := startServer(t, cfg)
	if err := s.StartTCP(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProbeTCP(t *testing.T) {
	s := startTCPServer(t, Config{Letter: 'K', Site: "AMS", Server: 3})
	p := NewProber(1)
	p.Timeout = 2 * time.Second
	res, err := p.ProbeTCP(s.Addr(), 'K')
	if err != nil {
		t.Fatal(err)
	}
	if !res.ViaTCP || !res.Matched || res.Identity.Server != 3 {
		t.Errorf("result = %+v", res)
	}
}

func TestTCPMultipleQueriesOneConnection(t *testing.T) {
	s := startTCPServer(t, Config{Letter: 'E', Site: "FRA", Server: 1})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		resp, err := dnswire.ExchangeTCP(conn, dnswire.NewQuery(uint16(i+1), "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if resp.Header.ID != uint16(i+1) {
			t.Fatalf("query %d: id = %d", i, resp.Header.ID)
		}
	}
	received, answered, _, _ := s.Stats()
	if received < 3 || answered < 3 {
		t.Errorf("stats = %d/%d", received, answered)
	}
}

func TestTCPBypassesRRL(t *testing.T) {
	// A tight UDP RRL budget must not affect TCP clients: the handshake
	// already proved the source address.
	cfg := rrl.Config{ResponsesPerSecond: 1, Burst: 1, SlipRatio: 0, PrefixBits: 32}
	s := startTCPServer(t, Config{Letter: 'J', Site: "IAD", Server: 1, RRL: &cfg})
	p := NewProber(2)
	p.Timeout = time.Second
	ok := 0
	for i := 0; i < 5; i++ {
		if res, err := p.ProbeTCP(s.Addr(), 'J'); err == nil && res.Matched {
			ok++
		}
	}
	if ok != 5 {
		t.Errorf("TCP successes = %d of 5; RRL must not apply to TCP", ok)
	}
}

func TestUDPTruncationFallsBackToTCP(t *testing.T) {
	// Exhaust the UDP budget so slips (TC=1) come back, then verify the
	// prober transparently completes over TCP.
	cfg := rrl.Config{ResponsesPerSecond: 1, Burst: 1, SlipRatio: 1, PrefixBits: 32}
	s := startTCPServer(t, Config{Letter: 'K', Site: "LHR", Server: 2, RRL: &cfg})
	p := NewProber(3)
	p.Timeout = time.Second
	p.FallbackTCP = true

	// First UDP probe consumes the single token.
	if _, err := p.Probe(s.Addr(), 'K'); err != nil {
		t.Fatalf("first probe: %v", err)
	}
	// Subsequent probes are slipped on UDP and must succeed via TCP.
	res, err := p.Probe(s.Addr(), 'K')
	if err != nil {
		t.Fatalf("fallback probe: %v", err)
	}
	if !res.ViaTCP {
		t.Errorf("result = %+v, want TCP fallback", res)
	}
	if !res.Matched || res.Identity.Site != "LHR" {
		t.Errorf("fallback identity = %+v", res.Identity)
	}
}

func TestTruncatedSurfacedWithoutFallback(t *testing.T) {
	cfg := rrl.Config{ResponsesPerSecond: 1, Burst: 1, SlipRatio: 1, PrefixBits: 32}
	s := startServer(t, Config{Letter: 'K', Site: "LHR", Server: 2, RRL: &cfg})
	p := NewProber(4)
	p.Timeout = time.Second
	if _, err := p.Probe(s.Addr(), 'K'); err != nil {
		t.Fatal(err)
	}
	res, err := p.Probe(s.Addr(), 'K')
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Matched {
		t.Errorf("result = %+v, want bare truncated reply", res)
	}
}

func TestTCPGarbageConnection(t *testing.T) {
	s := startTCPServer(t, Config{Letter: 'K', Site: "AMS", Server: 1})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// A length prefix promising more than we send: the server must time
	// the connection out without wedging.
	conn.Write([]byte{0xFF, 0xFF, 1, 2, 3})
	conn.Close()
	// The server still answers other clients.
	p := NewProber(5)
	p.Timeout = 2 * time.Second
	if _, err := p.ProbeTCP(s.Addr(), 'K'); err != nil {
		t.Fatalf("server wedged after garbage: %v", err)
	}
}

func TestCloseStopsTCP(t *testing.T) {
	s, err := Start(Config{Letter: 'K', Site: "AMS", Server: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartTCP(); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.DialTimeout("tcp", addr, 300*time.Millisecond); err == nil {
		t.Error("TCP listener still accepting after Close")
	}
}
