package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/dnswire"
)

// Prober issues measurement queries the way an Atlas VP does: one UDP CHAOS
// TXT query per probe, a per-attempt deadline, capped exponential backoff
// between retries, and identity parsing of the reply.
type Prober struct {
	// Timeout per probe attempt (Atlas uses 5 s). A context deadline
	// shorter than this wins.
	Timeout time.Duration
	// Retries is the number of additional attempts after a timeout.
	Retries int
	// FallbackTCP retries over TCP when a UDP reply arrives truncated
	// (the RRL slip path: TC=1 tells real clients to re-ask over a
	// transport that cannot be spoofed).
	FallbackTCP bool
	// Backoff is the delay before the first retry; it doubles per retry
	// up to MaxBackoff. The jitter multiplier (0.5-1.0x) is drawn from
	// the prober's seed, so a seeded prober retries on a reproducible
	// schedule. Zero disables backoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 2 s when zero).
	MaxBackoff time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewProber creates a prober with the Atlas timeout, no retries, and a
// 200 ms base backoff (felt only when Retries is raised).
func NewProber(seed int64) *Prober {
	return &Prober{
		Timeout:    5 * time.Second,
		Backoff:    200 * time.Millisecond,
		MaxBackoff: 2 * time.Second,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// ProbeResult is the outcome of one probe.
type ProbeResult struct {
	Identity chaos.Identity
	RawTXT   string
	RTT      time.Duration
	RCode    dnswire.RCode
	// Matched reports whether the reply parsed as the probed letter's
	// pattern; false suggests interception/hijack.
	Matched bool
	// Truncated reports a TC=1 reply (RRL slip); with FallbackTCP set the
	// prober transparently re-asks over TCP instead of surfacing this.
	Truncated bool
	// ViaTCP reports that the final answer came over the TCP fallback.
	ViaTCP bool
}

// Probe errors.
var (
	ErrTimeout  = errors.New("dnsserver: probe timeout")
	ErrBadReply = errors.New("dnsserver: malformed reply")
)

// aLongTimeAgo is a sentinel deadline in the past, used to wake a blocked
// socket read when the context is canceled.
var aLongTimeAgo = time.Unix(1, 0)

// Probe sends a CHAOS hostname.bind TXT query for the given letter to addr.
func (p *Prober) Probe(addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	return p.ProbeContext(context.Background(), addr, letter)
}

// ProbeContext is Probe under a context: cancellation interrupts a blocked
// read or a backoff sleep immediately, returning an error that wraps
// ctx.Err(). Each attempt still gets its own Timeout deadline, so a hung
// server cannot stall a probe past min(Timeout, context deadline).
func (p *Prober) ProbeContext(ctx context.Context, addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	var lastErr error
	for attempt := 0; attempt <= p.Retries; attempt++ {
		if attempt > 0 {
			if err := p.sleep(ctx, p.backoffDelay(attempt-1)); err != nil {
				return ProbeResult{}, err
			}
		}
		res, err := p.probeOnce(ctx, addr, letter)
		if err == nil {
			if res.Truncated && p.FallbackTCP {
				if tcpRes, tcpErr := p.ProbeTCPContext(ctx, addr, letter); tcpErr == nil {
					return tcpRes, nil
				}
			}
			return res, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			break
		}
	}
	return ProbeResult{}, lastErr
}

// backoffDelay returns the jittered delay before retry number `retry`
// (0-based): Backoff << retry capped at MaxBackoff, scaled by a seeded
// 0.5-1.0x jitter so synchronized probers do not retry in lockstep.
func (p *Prober) backoffDelay(retry int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	p.mu.Lock()
	jitter := 0.5 + 0.5*p.rng.Float64()
	p.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// sleep waits for d, or returns early (wrapping ctx.Err) on cancellation.
func (p *Prober) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("dnsserver: probe canceled: %w", err)
		}
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("dnsserver: probe canceled: %w", ctx.Err())
	case <-timer.C:
		return nil
	}
}

// attemptDeadline computes one attempt's absolute deadline: start+Timeout,
// clipped by the context deadline when that is sooner.
func (p *Prober) attemptDeadline(ctx context.Context, start time.Time) time.Time {
	deadline := start.Add(p.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return deadline
}

// finishErr maps a socket error at the end of an attempt: a deadline hit
// becomes ErrTimeout, unless the context was the cause. The socket
// deadline can fire a tick before the context's own timer, so an expired
// context deadline is checked by clock, not only via ctx.Err().
func finishErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("dnsserver: probe canceled: %w", cerr)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return fmt.Errorf("dnsserver: probe canceled: %w", context.DeadlineExceeded)
		}
		return ErrTimeout
	}
	return err
}

// ProbeTCP performs the identity query over DNS-over-TCP.
func (p *Prober) ProbeTCP(addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	return p.ProbeTCPContext(context.Background(), addr, letter)
}

// ProbeTCPContext is ProbeTCP under a context.
func (p *Prober) ProbeTCPContext(ctx context.Context, addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	d := net.Dialer{Timeout: p.Timeout}
	conn, err := d.DialContext(ctx, "tcp", addr.String())
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return ProbeResult{}, fmt.Errorf("dnsserver: probe canceled: %w", cerr)
		}
		return ProbeResult{}, fmt.Errorf("dnsserver: tcp dial: %w", err)
	}
	defer conn.Close()
	start := time.Now()
	if err := conn.SetDeadline(p.attemptDeadline(ctx, start)); err != nil {
		return ProbeResult{}, err
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(aLongTimeAgo) })
	defer stop()
	p.mu.Lock()
	id := uint16(p.rng.Intn(1 << 16))
	p.mu.Unlock()
	resp, err := dnswire.ExchangeTCP(conn, dnswire.NewQuery(id, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS))
	if err != nil {
		return ProbeResult{}, finishErr(ctx, err)
	}
	res := ProbeResult{RTT: time.Since(start), RCode: resp.Header.RCode, ViaTCP: true}
	for _, rr := range resp.Answers {
		if rr.Type != dnswire.TypeTXT {
			continue
		}
		strs, terr := rr.TXT()
		if terr != nil || len(strs) == 0 {
			return res, ErrBadReply
		}
		res.RawTXT = strs[0]
		if ident, perr := chaos.Parse(letter, strs[0]); perr == nil {
			res.Identity = ident
			res.Matched = true
		}
		break
	}
	return res, nil
}

func (p *Prober) probeOnce(ctx context.Context, addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	if err := ctx.Err(); err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: probe canceled: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: dial: %w", err)
	}
	defer conn.Close()
	// Cancellation must wake a read blocked inside the attempt window.
	stop := context.AfterFunc(ctx, func() { conn.SetReadDeadline(aLongTimeAgo) })
	defer stop()

	p.mu.Lock()
	id := uint16(p.rng.Intn(1 << 16))
	p.mu.Unlock()

	q := dnswire.NewQuery(id, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	pkt, err := q.Pack()
	if err != nil {
		return ProbeResult{}, err
	}
	start := time.Now()
	if _, err := conn.Write(pkt); err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: send: %w", err)
	}
	if err := conn.SetReadDeadline(p.attemptDeadline(ctx, start)); err != nil {
		return ProbeResult{}, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return ProbeResult{}, finishErr(ctx, err)
		}
		rtt := time.Since(start)
		resp, err := dnswire.Decode(buf[:n])
		if err != nil || !resp.Header.Response {
			continue // not our reply; keep reading until deadline
		}
		if resp.Header.ID != id {
			continue
		}
		res := ProbeResult{RTT: rtt, RCode: resp.Header.RCode, Truncated: resp.Header.Truncated}
		for _, rr := range resp.Answers {
			if rr.Type != dnswire.TypeTXT {
				continue
			}
			strs, err := rr.TXT()
			if err != nil || len(strs) == 0 {
				return res, ErrBadReply
			}
			res.RawTXT = strs[0]
			if ident, perr := chaos.Parse(letter, strs[0]); perr == nil {
				res.Identity = ident
				res.Matched = true
			}
			return res, nil
		}
		return res, nil
	}
}

// MapCatchment probes every address in addrs once and tallies the sites
// observed — the CHAOS catchment-mapping methodology of §2.1, usable
// against live in-process servers.
func (p *Prober) MapCatchment(addrs []*net.UDPAddr, letter byte) (map[string]int, error) {
	return p.MapCatchmentContext(context.Background(), addrs, letter)
}

// MapCatchmentContext is MapCatchment under a context. On cancellation it
// stops probing immediately and returns the partial tallies together with
// an error naming how far the sweep got.
func (p *Prober) MapCatchmentContext(ctx context.Context, addrs []*net.UDPAddr, letter byte) (map[string]int, error) {
	sites := make(map[string]int)
	var firstErr error
	for done, a := range addrs {
		if cerr := ctx.Err(); cerr != nil {
			return sites, fmt.Errorf("dnsserver: catchment mapping stopped after %d/%d probes: %w",
				done, len(addrs), cerr)
		}
		res, err := p.ProbeContext(ctx, a, letter)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return sites, fmt.Errorf("dnsserver: catchment mapping stopped after %d/%d probes: %w",
					done, len(addrs), err)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if res.Matched {
			sites[res.Identity.SiteName()]++
		}
	}
	if len(sites) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return sites, nil
}
