package dnsserver

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/dnswire"
)

// Prober issues measurement queries the way an Atlas VP does: one UDP CHAOS
// TXT query per probe, a fixed timeout, and identity parsing of the reply.
type Prober struct {
	// Timeout per probe attempt (Atlas uses 5 s).
	Timeout time.Duration
	// Retries is the number of additional attempts after a timeout.
	Retries int
	// FallbackTCP retries over TCP when a UDP reply arrives truncated
	// (the RRL slip path: TC=1 tells real clients to re-ask over a
	// transport that cannot be spoofed).
	FallbackTCP bool

	mu  sync.Mutex
	rng *rand.Rand
}

// NewProber creates a prober with the Atlas timeout and no retries.
func NewProber(seed int64) *Prober {
	return &Prober{Timeout: 5 * time.Second, rng: rand.New(rand.NewSource(seed))}
}

// ProbeResult is the outcome of one probe.
type ProbeResult struct {
	Identity chaos.Identity
	RawTXT   string
	RTT      time.Duration
	RCode    dnswire.RCode
	// Matched reports whether the reply parsed as the probed letter's
	// pattern; false suggests interception/hijack.
	Matched bool
	// Truncated reports a TC=1 reply (RRL slip); with FallbackTCP set the
	// prober transparently re-asks over TCP instead of surfacing this.
	Truncated bool
	// ViaTCP reports that the final answer came over the TCP fallback.
	ViaTCP bool
}

// Probe errors.
var (
	ErrTimeout  = errors.New("dnsserver: probe timeout")
	ErrBadReply = errors.New("dnsserver: malformed reply")
)

// Probe sends a CHAOS hostname.bind TXT query for the given letter to addr.
func (p *Prober) Probe(addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	var lastErr error
	for attempt := 0; attempt <= p.Retries; attempt++ {
		res, err := p.probeOnce(addr, letter)
		if err == nil {
			if res.Truncated && p.FallbackTCP {
				if tcpRes, tcpErr := p.ProbeTCP(addr, letter); tcpErr == nil {
					return tcpRes, nil
				}
			}
			return res, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			break
		}
	}
	return ProbeResult{}, lastErr
}

// ProbeTCP performs the identity query over DNS-over-TCP.
func (p *Prober) ProbeTCP(addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	d := net.Dialer{Timeout: p.Timeout}
	conn, err := d.Dial("tcp", addr.String())
	if err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: tcp dial: %w", err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(p.Timeout)); err != nil {
		return ProbeResult{}, err
	}
	p.mu.Lock()
	id := uint16(p.rng.Intn(1 << 16))
	p.mu.Unlock()
	start := time.Now()
	resp, err := dnswire.ExchangeTCP(conn, dnswire.NewQuery(id, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS))
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return ProbeResult{}, ErrTimeout
		}
		return ProbeResult{}, err
	}
	res := ProbeResult{RTT: time.Since(start), RCode: resp.Header.RCode, ViaTCP: true}
	for _, rr := range resp.Answers {
		if rr.Type != dnswire.TypeTXT {
			continue
		}
		strs, terr := rr.TXT()
		if terr != nil || len(strs) == 0 {
			return res, ErrBadReply
		}
		res.RawTXT = strs[0]
		if ident, perr := chaos.Parse(letter, strs[0]); perr == nil {
			res.Identity = ident
			res.Matched = true
		}
		break
	}
	return res, nil
}

func (p *Prober) probeOnce(addr *net.UDPAddr, letter byte) (ProbeResult, error) {
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: dial: %w", err)
	}
	defer conn.Close()

	p.mu.Lock()
	id := uint16(p.rng.Intn(1 << 16))
	p.mu.Unlock()

	q := dnswire.NewQuery(id, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	pkt, err := q.Pack()
	if err != nil {
		return ProbeResult{}, err
	}
	start := time.Now()
	if _, err := conn.Write(pkt); err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: send: %w", err)
	}
	if err := conn.SetReadDeadline(start.Add(p.Timeout)); err != nil {
		return ProbeResult{}, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return ProbeResult{}, ErrTimeout
			}
			return ProbeResult{}, err
		}
		rtt := time.Since(start)
		resp, err := dnswire.Decode(buf[:n])
		if err != nil || !resp.Header.Response {
			continue // not our reply; keep reading until deadline
		}
		if resp.Header.ID != id {
			continue
		}
		res := ProbeResult{RTT: rtt, RCode: resp.Header.RCode, Truncated: resp.Header.Truncated}
		for _, rr := range resp.Answers {
			if rr.Type != dnswire.TypeTXT {
				continue
			}
			strs, err := rr.TXT()
			if err != nil || len(strs) == 0 {
				return res, ErrBadReply
			}
			res.RawTXT = strs[0]
			if ident, perr := chaos.Parse(letter, strs[0]); perr == nil {
				res.Identity = ident
				res.Matched = true
			}
			return res, nil
		}
		return res, nil
	}
}

// MapCatchment probes every address in addrs once and tallies the sites
// observed — the CHAOS catchment-mapping methodology of §2.1, usable
// against live in-process servers.
func (p *Prober) MapCatchment(addrs []*net.UDPAddr, letter byte) (map[string]int, error) {
	sites := make(map[string]int)
	var firstErr error
	for _, a := range addrs {
		res, err := p.Probe(a, letter)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if res.Matched {
			sites[res.Identity.SiteName()]++
		}
	}
	if len(sites) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return sites, nil
}
