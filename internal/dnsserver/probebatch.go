package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/dnswire"
)

// fanoutWorker is one lane of a parallel catchment sweep. It owns a single
// unconnected UDP socket reused across every target it probes, one packed
// request whose ID bytes are re-stamped per probe, one reply buffer, and
// one decode scratch Message — so a wide sweep costs W sockets total and
// the per-probe hot path allocates nothing until a reply actually parses.
type fanoutWorker struct {
	p    *Prober
	conn *net.UDPConn
	rng  *rand.Rand // worker-local: ID draws and backoff jitter off the shared mutex
	pkt  []byte     // packed hostname.bind query; ID stamped in place
	buf  [4096]byte
	q    dnswire.Message
}

func newFanoutWorker(p *Prober, seed int64) (*fanoutWorker, error) {
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: fanout socket: %w", err)
	}
	pkt, err := dnswire.NewQuery(0, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS).Pack()
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &fanoutWorker{p: p, conn: conn, rng: rand.New(rand.NewSource(seed)), pkt: pkt}, nil
}

// probe runs the full retry loop for one target over the worker's reused
// socket, mirroring Prober.ProbeContext minus the TCP fallback (a catchment
// sweep only tallies sites, and a slipped TC reply carries no identity).
func (w *fanoutWorker) probe(ctx context.Context, addr netip.AddrPort, letter byte) (ProbeResult, error) {
	var lastErr error
	for attempt := 0; attempt <= w.p.Retries; attempt++ {
		if attempt > 0 {
			if err := w.p.sleep(ctx, w.backoffDelay(attempt-1)); err != nil {
				return ProbeResult{}, err
			}
		}
		res, err := w.probeOnce(ctx, addr, letter)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			break
		}
	}
	return ProbeResult{}, lastErr
}

// backoffDelay is Prober.backoffDelay with the jitter drawn from the
// worker-local stream, so parallel lanes never contend on the prober mutex.
func (w *fanoutWorker) backoffDelay(retry int) time.Duration {
	base := w.p.Backoff
	if base <= 0 {
		return 0
	}
	max := w.p.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + 0.5*w.rng.Float64()))
}

func (w *fanoutWorker) probeOnce(ctx context.Context, addr netip.AddrPort, letter byte) (ProbeResult, error) {
	if err := ctx.Err(); err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: probe canceled: %w", err)
	}
	id := uint16(w.rng.Intn(1 << 16))
	w.pkt[0], w.pkt[1] = byte(id>>8), byte(id)
	start := time.Now()
	if _, err := w.conn.WriteToUDPAddrPort(w.pkt, addr); err != nil {
		return ProbeResult{}, fmt.Errorf("dnsserver: send: %w", err)
	}
	if err := w.conn.SetReadDeadline(w.p.attemptDeadline(ctx, start)); err != nil {
		return ProbeResult{}, err
	}
	for {
		n, from, err := w.conn.ReadFromUDPAddrPort(w.buf[:])
		if err != nil {
			return ProbeResult{}, finishErr(ctx, err)
		}
		rtt := time.Since(start)
		// The socket is unconnected and shared across targets: discard
		// datagrams from anyone but the target currently being probed.
		// Unmap before comparing — a dual-stack socket reports IPv4 peers
		// as 4-in-6 mapped addresses.
		if from.Addr().Unmap() != addr.Addr().Unmap() || from.Port() != addr.Port() {
			continue
		}
		if derr := dnswire.DecodeInto(w.buf[:n], &w.q); derr != nil || !w.q.Header.Response || w.q.Header.ID != id {
			continue // not our reply; keep reading until deadline
		}
		res := ProbeResult{RTT: rtt, RCode: w.q.Header.RCode, Truncated: w.q.Header.Truncated}
		for _, rr := range w.q.Answers {
			if rr.Type != dnswire.TypeTXT {
				continue
			}
			strs, terr := rr.TXT()
			if terr != nil || len(strs) == 0 {
				return res, ErrBadReply
			}
			res.RawTXT = strs[0]
			if ident, perr := chaos.Parse(letter, strs[0]); perr == nil {
				res.Identity = ident
				res.Matched = true
			}
			break
		}
		return res, nil
	}
}

// MapCatchmentParallel is MapCatchment fanned over a pool of workers: the
// batched fan-out mode for wide sweeps (hundreds of VPs against many
// sites). Targets are handed out work-stealing style so one slow or dead
// server delays only the lane probing it. Verdict semantics match the
// sequential sweep: the returned tallies count Matched identities per site,
// cancellation returns partial tallies with a progress-naming error, and a
// sweep that matched nothing surfaces the first probe error.
//
// Worker RNG streams (query IDs, backoff jitter) are drawn from the
// prober's seeded stream at startup, so a seeded prober remains
// reproducible per (workers, targets) shape.
func (p *Prober) MapCatchmentParallel(ctx context.Context, addrs []*net.UDPAddr, letter byte, workers int) (map[string]int, error) {
	if len(addrs) == 0 {
		return map[string]int{}, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(addrs) {
		workers = len(addrs)
	}
	targets := make([]netip.AddrPort, len(addrs))
	for i, a := range addrs {
		targets[i] = a.AddrPort()
	}
	// Per-worker seeds come off the prober's stream once, up front.
	seeds := make([]int64, workers)
	p.mu.Lock()
	for i := range seeds {
		seeds[i] = p.rng.Int63()
	}
	p.mu.Unlock()

	ws := make([]*fanoutWorker, workers)
	for i := range ws {
		w, err := newFanoutWorker(p, seeds[i])
		if err != nil {
			for _, prev := range ws[:i] {
				prev.conn.Close()
			}
			return nil, err
		}
		ws[i] = w
		// Cancellation must wake a read blocked inside an attempt window.
		defer context.AfterFunc(ctx, func() { w.conn.SetReadDeadline(aLongTimeAgo) })()
		defer w.conn.Close()
	}

	var (
		next     atomic.Int64 // work-stealing cursor over targets
		mu       sync.Mutex
		sites    = make(map[string]int)
		done     int
		firstErr error
	)
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *fanoutWorker) {
			defer wg.Done()
			local := make(map[string]int)
			var localDone int
			var localErr error
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) || ctx.Err() != nil {
					break
				}
				res, err := w.probe(ctx, targets[i], letter)
				localDone++
				if err != nil {
					if localErr == nil {
						localErr = err
					}
					continue
				}
				if res.Matched {
					local[res.Identity.SiteName()]++
				}
			}
			mu.Lock()
			for site, n := range local {
				sites[site] += n
			}
			done += localDone
			if firstErr == nil {
				firstErr = localErr
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if cerr := ctx.Err(); cerr != nil {
		return sites, fmt.Errorf("dnsserver: catchment mapping stopped after %d/%d probes: %w",
			done, len(addrs), cerr)
	}
	if len(sites) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return sites, nil
}
