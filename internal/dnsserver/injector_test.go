package dnsserver

import (
	"bytes"
	"net"
	"net/netip"
	"testing"

	"github.com/rootevent/anycastddos/internal/dnswire"
)

// TestInjectorMatchesLegacy checks the in-process lane returns the same
// wire replies as the legacy reference path and books the same stats a
// reader worker would.
func TestInjectorMatchesLegacy(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1})
	in := s.NewInjector()
	src := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 9), Port: 5353}
	srcAP := netip.MustParseAddrPort("10.0.0.9:5353")

	queries := []*dnswire.Message{
		dnswire.NewQuery(5, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS),
		dnswire.NewQuery(6, "www.336901.com", dnswire.TypeA, dnswire.ClassINET),
	}
	for _, m := range queries {
		name := m.Questions[0].Name
		pkt := mustPack(t, m)
		legacyResp, ok := s.handle(pkt, src)
		if !ok {
			t.Fatalf("%s: legacy path refused", name)
		}
		want, err := legacyResp.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		got, sent := in.Inject(pkt, srcAP)
		if !sent {
			t.Fatalf("%s: injector refused", name)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: reply bytes differ\nlegacy %x\ninject %x", name, want, got)
		}
	}

	received, answered, _, _ := s.Stats()
	// Only the injections book stats: handle is the parse/answer core, the
	// serve loop (or an Injector) owns the counters.
	if received != 2 || answered != 2 {
		t.Fatalf("stats received=%d answered=%d, want 2 and 2", received, answered)
	}
}

// TestInjectorLossCoin checks injected traffic obeys the seeded loss model.
func TestInjectorLossCoin(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1, LossProb: 0.4, Seed: 9})
	in := s.NewInjector()
	srcAP := netip.MustParseAddrPort("10.0.0.9:5353")
	pkt := mustPack(t, dnswire.NewQuery(7, "www.336901.com", dnswire.TypeA, dnswire.ClassINET))
	dropped := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if _, sent := in.Inject(pkt, srcAP); !sent {
			dropped++
		}
	}
	if rate := float64(dropped) / n; rate < 0.35 || rate > 0.45 {
		t.Fatalf("injected drop rate %.3f, want 0.40±0.05", rate)
	}
}
