// Package dnsserver implements a small authoritative UDP DNS server and a
// measurement prober over real sockets, using only the standard library.
//
// Each Server instance plays the role of one server at one anycast site: it
// answers the CHAOS identity queries (hostname.bind / id.server, RFC 4892)
// with its letter's naming pattern, serves root-zone NS referrals for IN
// queries, and applies Response Rate Limiting. Loss and delay injection
// turn a healthy server into a "degraded absorber" for live experiments
// that mirror the simulation (examples/livechaos).
package dnsserver

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/rrl"
)

// Config describes one server instance.
type Config struct {
	Letter byte
	Site   string // IATA code
	Server int    // 1-based server index within the site

	// Addr is the UDP listen address; empty means 127.0.0.1:0 (ephemeral).
	Addr string

	// RRL optionally enables response rate limiting.
	RRL *rrl.Config

	// Impairment models an overloaded site: each request is dropped with
	// probability LossProb and successful replies are delayed by Delay.
	LossProb float64
	Delay    time.Duration

	// Seed drives the loss coin; impairment is deterministic per seed
	// and request order.
	Seed int64
}

// Server is a running UDP DNS responder.
type Server struct {
	cfg      Config
	identity string
	conn     *net.UDPConn
	tcpLn    *net.TCPListener
	limiter  *rrl.Limiter
	start    time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	closed   bool
	tcpConns map[net.Conn]struct{}

	wg sync.WaitGroup

	// Stats, guarded by mu.
	received, answered, droppedLoss, droppedRRL uint64
}

// Start creates the socket and begins serving.
func Start(cfg Config) (*Server, error) {
	identity, err := chaos.Format(cfg.Letter, cfg.Site, cfg.Server)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		identity: identity,
		conn:     conn,
		start:    time.Now(),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.RRL != nil {
		s.limiter, err = rrl.New(*cfg.RRL)
		if err != nil {
			conn.Close()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the bound UDP address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Identity returns the CHAOS identity string this server reports.
func (s *Server) Identity() string { return s.identity }

// Close drains the server: it stops accepting new work, wakes every
// blocked read, waits for in-flight requests to finish (their replies are
// still delivered), then releases the sockets.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tcpLn := s.tcpLn
	// Nudge the read side of every live TCP connection; handlers that
	// already read a query finish writing before they notice. Done under
	// mu so a handler cannot re-arm its idle deadline over the nudge
	// (handlers set deadlines under mu after re-checking closed).
	for c := range s.tcpConns {
		c.SetReadDeadline(aLongTimeAgo)
	}
	s.mu.Unlock()

	// Wake the UDP read loop without closing the socket, so a request
	// already being handled can still write its reply.
	s.conn.SetReadDeadline(aLongTimeAgo)
	if tcpLn != nil {
		tcpLn.Close()
	}
	s.wg.Wait()
	return s.conn.Close()
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Stats returns cumulative request accounting.
func (s *Server) Stats() (received, answered, droppedLoss, droppedRRL uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received, s.answered, s.droppedLoss, s.droppedRRL
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	out := make([]byte, 0, 1024)
	for {
		n, src, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if s.isClosed() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // stray deadline; keep serving
			}
			return
		}
		s.mu.Lock()
		s.received++
		lossCoin := s.rng.Float64()
		s.mu.Unlock()

		if lossCoin < s.cfg.LossProb {
			s.mu.Lock()
			s.droppedLoss++
			s.mu.Unlock()
			continue
		}
		resp, ok := s.handle(buf[:n], src)
		if !ok {
			continue
		}
		if s.cfg.Delay > 0 {
			// Delay inline: one blocked request delays the queue behind
			// it, which is exactly how a saturated ingress behaves.
			time.Sleep(s.cfg.Delay)
		}
		out = out[:0]
		out, err = resp.Encode(out)
		if err != nil {
			continue
		}
		if _, err := s.conn.WriteToUDP(out, src); err == nil {
			s.mu.Lock()
			s.answered++
			s.mu.Unlock()
		}
	}
}

// handle parses one request and produces a response, applying RRL.
func (s *Server) handle(pkt []byte, src *net.UDPAddr) (*dnswire.Message, bool) {
	q, err := dnswire.Decode(pkt)
	if err != nil || q.Header.Response || len(q.Questions) != 1 {
		return nil, false
	}
	if s.limiter != nil {
		ip4 := src.IP.To4()
		var key uint32
		if ip4 != nil {
			key = uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
		}
		switch s.limiter.Check(key, time.Since(s.start).Milliseconds()) {
		case rrl.Drop:
			s.mu.Lock()
			s.droppedRRL++
			s.mu.Unlock()
			return nil, false
		case rrl.Slip:
			resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
			resp.Header.Truncated = true
			return resp, true
		}
	}
	return s.answer(q)
}

func (s *Server) answer(q *dnswire.Message) (*dnswire.Message, bool) {
	question := q.Questions[0]
	switch {
	case question.Class == dnswire.ClassCHAOS && question.Type == dnswire.TypeTXT &&
		(question.Name == "hostname.bind" || question.Name == "id.server"):
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.Header.Authoritative = true
		txt, err := dnswire.MakeTXT(question.Name, dnswire.ClassCHAOS, 0, s.identity)
		if err != nil {
			return nil, false
		}
		resp.Answers = append(resp.Answers, txt)
		return resp, true

	case question.Class == dnswire.ClassINET && question.Name == "" && question.Type == dnswire.TypeNS:
		// Root NS query: the priming response.
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.Header.Authoritative = true
		for _, l := range chaos.Letters() {
			ns, err := dnswire.MakeNS("", 3600000, fmt.Sprintf("%c.root-servers.net", l+('a'-'A')))
			if err != nil {
				return nil, false
			}
			resp.Answers = append(resp.Answers, ns)
		}
		return resp, true

	case question.Class == dnswire.ClassINET:
		// Everything else gets root-style treatment: a referral-shaped
		// NXDOMAIN with the root SOA in authority (we host no TLDs).
		resp := dnswire.NewResponse(q, dnswire.RCodeNXDomain)
		soa, err := dnswire.MakeSOA("", 86400, dnswire.SOAData{
			MName: "a.root-servers.net", RName: "nstld.verisign-grs.com",
			Serial: 2015113001, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
		})
		if err != nil {
			return nil, false
		}
		resp.Authority = append(resp.Authority, soa)
		return resp, true
	}
	resp := dnswire.NewResponse(q, dnswire.RCodeRefused)
	return resp, true
}

// ErrClosed is returned for operations on a closed server.
var ErrClosed = errors.New("dnsserver: closed")
