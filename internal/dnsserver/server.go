// Package dnsserver implements a small authoritative UDP DNS server and a
// measurement prober over real sockets, using only the standard library.
//
// Each Server instance plays the role of one server at one anycast site: it
// answers the CHAOS identity queries (hostname.bind / id.server, RFC 4892)
// with its letter's naming pattern, serves root-zone NS referrals for IN
// queries, and applies Response Rate Limiting. Loss and delay injection
// turn a healthy server into a "degraded absorber" for live experiments
// that mirror the simulation (examples/livechaos).
//
// The UDP packet path is built for flood rates: Config.Workers sharded
// reader goroutines pull batches off the shared socket (internal/udpbatch),
// decode into per-worker scratch (dnswire.DecodeInto), answer by splicing
// precomputed response tails (dnswire.AppendResponse), and send batched
// replies — zero heap allocations per packet once warm, with all counters
// atomic and RRL sharded so no lock sits on the per-packet path. The
// responses are byte-identical to the legacy Decode/NewResponse/Encode
// path, which remains in service for TCP (equivalence_test.go holds the
// two paths together).
package dnsserver

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rootevent/anycastddos/internal/chaos"
	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/rrl"
	"github.com/rootevent/anycastddos/internal/udpbatch"
)

// Config describes one server instance.
type Config struct {
	Letter byte
	Site   string // IATA code
	Server int    // 1-based server index within the site

	// Addr is the UDP listen address; empty means 127.0.0.1:0 (ephemeral).
	Addr string

	// RRL optionally enables response rate limiting. Its Shards field
	// defaults to the worker count so packet workers rarely contend.
	RRL *rrl.Config

	// Workers is the number of UDP packet workers sharing the socket
	// (0 = 1). Each has its own buffers, decode scratch, and loss RNG.
	Workers int

	// Batch is the number of datagrams moved per recvmmsg/sendmmsg batch
	// (0 = 32; 1 effectively disables batching).
	Batch int

	// Impairment models an overloaded site: each request is dropped with
	// probability LossProb and successful replies are delayed by Delay.
	LossProb float64
	Delay    time.Duration

	// Seed drives the loss coins. Each worker draws from its own RNG
	// seeded by splitmix64(Seed, worker): for a fixed seed every worker's
	// coin sequence is reproducible, and the aggregate drop rate is
	// worker-count-independent (each stream is uniform; only the
	// packet-to-worker assignment varies). Single-worker runs therefore
	// reproduce exactly; multi-worker runs reproduce in distribution.
	Seed int64
}

// defaultBatch is the per-syscall datagram budget when Config.Batch is 0.
const defaultBatch = 32

// Server is a running UDP DNS responder.
type Server struct {
	cfg      Config
	identity string
	conn     *net.UDPConn
	limiter  *rrl.Limiter
	start    time.Time

	// closed flips once in Close. The UDP workers read it lock-free; the
	// TCP paths re-check it under mu (see Close for the deadline
	// handshake that makes the drain race-free).
	closed atomic.Bool

	mu       sync.Mutex // guards tcpLn, tcpConns, and the TCP closed/deadline protocol
	tcpLn    *net.TCPListener
	tcpConns map[net.Conn]struct{}

	wg sync.WaitGroup

	received, answered, droppedLoss, droppedRRL atomic.Uint64

	// ignored counts requests that produced no response for protocol
	// reasons (malformed, response-bit set, multi-question, encode
	// failure) so Stats snapshots can account for every received packet.
	ignored atomic.Uint64

	// draining flips while the TCP side is gracefully shedding
	// connections (SetDraining); unlike closed it is reversible.
	draining atomic.Bool

	// injectors counts NewInjector calls, giving each in-process lane a
	// distinct RNG stream (see injectorStream).
	injectors atomic.Int64

	// Precomputed response tails (sections after the question), carved
	// from the legacy encoder's output at startup; see buildTails.
	identityTail, primingTail, nxdomainTail []byte
}

// Start creates the socket and begins serving.
func Start(cfg Config) (*Server, error) {
	identity, err := chaos.Format(cfg.Letter, cfg.Site, cfg.Server)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: %w", err)
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		identity: identity,
		conn:     conn,
		start:    time.Now(),
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = defaultBatch
	}
	if cfg.RRL != nil {
		rrlCfg := *cfg.RRL
		if rrlCfg.Shards == 0 {
			rrlCfg.Shards = workers
		}
		s.limiter, err = rrl.New(rrlCfg)
		if err != nil {
			conn.Close()
			return nil, err
		}
	}
	if err := s.buildTails(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dnsserver: precompute responses: %w", err)
	}
	for i := 0; i < workers; i++ {
		w, err := newWorker(s, batch, workerSeed(cfg.Seed, i))
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("dnsserver: worker %d: %w", i, err)
		}
		s.wg.Add(1)
		go w.run() // joined by Close via s.wg
	}
	return s, nil
}

// workerSeed derives worker i's RNG seed from the config seed via the
// splitmix64 finalizer (the same per-stream derivation internal/faults and
// internal/core use), so workers draw decorrelated but reproducible coin
// sequences.
func workerSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// buildTails precomputes the serving responses by encoding them once
// through the legacy path and slicing off everything after the question.
// Each tail is position-independent by construction: record owner names are
// either the root (one literal zero byte) or compressed pointers to the
// question name, which AppendResponse always places at offset HeaderLen.
func (s *Server) buildTails() error {
	carve := func(q *dnswire.Message, fill func(*dnswire.Message) error) ([]byte, error) {
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		if err := fill(resp); err != nil {
			return nil, err
		}
		pkt, err := resp.Pack()
		if err != nil {
			return nil, err
		}
		nameLen, err := dnswire.EncodedNameLen(q.Questions[0].Name)
		if err != nil {
			return nil, err
		}
		return pkt[dnswire.HeaderLen+nameLen+4:], nil
	}
	var err error
	s.identityTail, err = carve(
		dnswire.NewQuery(0, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS),
		func(resp *dnswire.Message) error {
			txt, err := dnswire.MakeTXT("hostname.bind", dnswire.ClassCHAOS, 0, s.identity)
			if err != nil {
				return err
			}
			resp.Answers = append(resp.Answers, txt)
			return nil
		})
	if err != nil {
		return err
	}
	s.primingTail, err = carve(
		dnswire.NewQuery(0, "", dnswire.TypeNS, dnswire.ClassINET),
		func(resp *dnswire.Message) error {
			for _, l := range chaos.Letters() {
				ns, err := dnswire.MakeNS("", 3600000, fmt.Sprintf("%c.root-servers.net", l+('a'-'A')))
				if err != nil {
					return err
				}
				resp.Answers = append(resp.Answers, ns)
			}
			return nil
		})
	if err != nil {
		return err
	}
	s.nxdomainTail, err = carve(
		dnswire.NewQuery(0, "www.336901.com", dnswire.TypeA, dnswire.ClassINET),
		func(resp *dnswire.Message) error {
			soa, err := dnswire.MakeSOA("", 86400, dnswire.SOAData{
				MName: "a.root-servers.net", RName: "nstld.verisign-grs.com",
				Serial: 2015113001, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
			})
			if err != nil {
				return err
			}
			resp.Authority = append(resp.Authority, soa)
			return nil
		})
	return err
}

// Addr returns the bound UDP address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Identity returns the CHAOS identity string this server reports.
func (s *Server) Identity() string { return s.identity }

// Close drains the server: it stops accepting new work, wakes every
// blocked read, waits for all packet workers and TCP handlers to join
// (in-flight replies are still delivered), then releases the sockets.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return nil
	}
	s.closed.Store(true)
	tcpLn := s.tcpLn
	// Nudge the read side of every live TCP connection; handlers that
	// already read a query finish writing before they notice. Done under
	// mu so a handler cannot re-arm its idle deadline over the nudge
	// (handlers set deadlines under mu after re-checking closed).
	for c := range s.tcpConns {
		c.SetReadDeadline(aLongTimeAgo)
	}
	s.mu.Unlock()

	// Wake every UDP worker without closing the socket, so requests
	// already being handled can still write their replies. The deadline
	// stays in the past: each worker's next read returns a timeout, it
	// observes closed, and exits.
	s.conn.SetReadDeadline(aLongTimeAgo)
	if tcpLn != nil {
		tcpLn.Close()
	}
	s.wg.Wait()
	return s.conn.Close()
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool { return s.closed.Load() }

// Stats returns cumulative request accounting. It is lock-free and safe to
// call at any rate while the server is under load.
func (s *Server) Stats() (received, answered, droppedLoss, droppedRRL uint64) {
	return s.received.Load(), s.answered.Load(), s.droppedLoss.Load(), s.droppedRRL.Load()
}

// worker is one sharded packet loop: its own batch conn state, rx/tx
// buffers, decode scratch, and loss RNG. Nothing here is shared, so the
// per-packet path takes no locks (the batch read itself serializes on the
// socket's poller lock exactly as concurrent ReadFromUDP calls would — see
// DESIGN.md on why one shared socket beats stdlib-unreachable SO_REUSEPORT).
type worker struct {
	srv *Server
	bc  *udpbatch.Conn
	rng *rand.Rand
	rx  []udpbatch.Message
	tx  []udpbatch.Message
	q   dnswire.Message
}

func newWorker(s *Server, batch int, seed int64) (*worker, error) {
	bc, err := udpbatch.New(s.conn, batch)
	if err != nil {
		return nil, err
	}
	w := &worker{
		srv: s,
		bc:  bc,
		rng: rand.New(rand.NewSource(seed)),
		rx:  make([]udpbatch.Message, batch),
		tx:  make([]udpbatch.Message, batch),
	}
	for i := range w.rx {
		w.rx[i].Buf = make([]byte, 4096)
	}
	for i := range w.tx {
		w.tx[i].Buf = make([]byte, 0, 1024)
	}
	return w, nil
}

func (w *worker) run() {
	s := w.srv
	defer s.wg.Done()
	for {
		n, err := w.bc.ReadBatch(w.rx)
		if err != nil {
			if s.isClosed() {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // stray deadline; keep serving
			}
			return
		}
		outN := 0
		for i := 0; i < n; i++ {
			s.received.Add(1)
			if w.rng.Float64() < s.cfg.LossProb {
				s.droppedLoss.Add(1)
				continue
			}
			if !s.respond(w.rx[i].Buf[:w.rx[i].N], w.rx[i].Addr, &w.q, &w.tx[outN]) {
				continue
			}
			if s.cfg.Delay > 0 {
				// Delay inline: one blocked request delays the batch
				// behind it, which is exactly how a saturated ingress
				// behaves.
				time.Sleep(s.cfg.Delay)
			}
			w.tx[outN].Addr = w.rx[i].Addr
			outN++
		}
		if outN > 0 {
			sent, _ := w.bc.WriteBatch(w.tx[:outN])
			s.answered.Add(uint64(sent))
		}
	}
}

// respond parses one request and encodes the response into out, applying
// RRL. It is the UDP fast path: scratch-reusing decode, verdict, and a
// tail-splicing encode, with zero heap allocations once warm.
//
//repolint:hot
func (s *Server) respond(pkt []byte, src netip.AddrPort, q *dnswire.Message, out *udpbatch.Message) bool {
	if err := dnswire.DecodeInto(pkt, q); err != nil || q.Header.Response || len(q.Questions) != 1 {
		s.ignored.Add(1)
		return false
	}
	if s.limiter != nil {
		switch s.limiter.Check(rrlKey(src), time.Since(s.start).Milliseconds()) {
		case rrl.Drop:
			s.droppedRRL.Add(1)
			return false
		case rrl.Slip:
			return s.encodeInto(out, q, dnswire.RCodeNoError, false, true, nil, 0, 0)
		}
	}
	question := &q.Questions[0]
	switch {
	case question.Class == dnswire.ClassCHAOS && question.Type == dnswire.TypeTXT &&
		(question.Name == "hostname.bind" || question.Name == "id.server"):
		return s.encodeInto(out, q, dnswire.RCodeNoError, true, false, s.identityTail, 1, 0)
	case question.Class == dnswire.ClassINET && question.Name == "" && question.Type == dnswire.TypeNS:
		return s.encodeInto(out, q, dnswire.RCodeNoError, true, false, s.primingTail, 13, 0)
	case question.Class == dnswire.ClassINET:
		return s.encodeInto(out, q, dnswire.RCodeNXDomain, false, false, s.nxdomainTail, 0, 1)
	}
	return s.encodeInto(out, q, dnswire.RCodeRefused, false, false, nil, 0, 0)
}

// encodeInto writes one response into out's buffer.
//
//repolint:hot
func (s *Server) encodeInto(out *udpbatch.Message, q *dnswire.Message, rcode dnswire.RCode, aa, tc bool, tail []byte, an, ns int) bool {
	buf, err := dnswire.AppendResponse(out.Buf[:0], q, rcode, aa, tc, tail, an, ns, 0)
	if err != nil {
		s.ignored.Add(1)
		return false
	}
	out.Buf, out.N = buf, len(buf)
	return true
}

// rrlKey derives the 32-bit RRL key from a source address, matching the
// legacy path's IPv4 treatment (non-IPv4 sources share key 0).
//
//repolint:hot
func rrlKey(src netip.AddrPort) uint32 {
	a := src.Addr()
	if a.Is4() || a.Is4In6() {
		b := a.As4()
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return 0
}

// handle parses one request and produces a response — the legacy
// one-Message-per-packet path, kept as the reference implementation the
// fast path is tested against (equivalence_test.go) and benchmarked
// against (BenchmarkFloodPath).
func (s *Server) handle(pkt []byte, src *net.UDPAddr) (*dnswire.Message, bool) {
	q, err := dnswire.Decode(pkt)
	if err != nil || q.Header.Response || len(q.Questions) != 1 {
		s.ignored.Add(1)
		return nil, false
	}
	if s.limiter != nil {
		ip4 := src.IP.To4()
		var key uint32
		if ip4 != nil {
			key = uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
		}
		switch s.limiter.Check(key, time.Since(s.start).Milliseconds()) {
		case rrl.Drop:
			s.droppedRRL.Add(1)
			return nil, false
		case rrl.Slip:
			resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
			resp.Header.Truncated = true
			return resp, true
		}
	}
	return s.answer(q)
}

// answer builds the response for an accepted query. Shared by the TCP path
// and the legacy reference path; the UDP fast path splices the same bytes
// from precomputed tails.
func (s *Server) answer(q *dnswire.Message) (*dnswire.Message, bool) {
	question := q.Questions[0]
	switch {
	case question.Class == dnswire.ClassCHAOS && question.Type == dnswire.TypeTXT &&
		(question.Name == "hostname.bind" || question.Name == "id.server"):
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.Header.Authoritative = true
		txt, err := dnswire.MakeTXT(question.Name, dnswire.ClassCHAOS, 0, s.identity)
		if err != nil {
			return nil, false
		}
		resp.Answers = append(resp.Answers, txt)
		return resp, true

	case question.Class == dnswire.ClassINET && question.Name == "" && question.Type == dnswire.TypeNS:
		// Root NS query: the priming response.
		resp := dnswire.NewResponse(q, dnswire.RCodeNoError)
		resp.Header.Authoritative = true
		for _, l := range chaos.Letters() {
			ns, err := dnswire.MakeNS("", 3600000, fmt.Sprintf("%c.root-servers.net", l+('a'-'A')))
			if err != nil {
				return nil, false
			}
			resp.Answers = append(resp.Answers, ns)
		}
		return resp, true

	case question.Class == dnswire.ClassINET:
		// Everything else gets root-style treatment: a referral-shaped
		// NXDOMAIN with the root SOA in authority (we host no TLDs).
		resp := dnswire.NewResponse(q, dnswire.RCodeNXDomain)
		soa, err := dnswire.MakeSOA("", 86400, dnswire.SOAData{
			MName: "a.root-servers.net", RName: "nstld.verisign-grs.com",
			Serial: 2015113001, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
		})
		if err != nil {
			return nil, false
		}
		resp.Authority = append(resp.Authority, soa)
		return resp, true
	}
	resp := dnswire.NewResponse(q, dnswire.RCodeRefused)
	return resp, true
}

// ErrClosed is returned for operations on a closed server.
var ErrClosed = errors.New("dnsserver: closed")
