package dnsserver

import (
	"net"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
)

// TCP support: each Server can also accept DNS over TCP on the same
// address. TCP queries bypass RRL — a completed handshake proves the source
// is not spoofed, which is exactly why RRL's truncated "slip" responses
// push legitimate clients to retry over TCP (§2.3).

// StartTCP begins accepting TCP connections on the same IP/port as the UDP
// socket. It must be called at most once, before Close.
func (s *Server) StartTCP() error {
	addr := s.Addr()
	ln, err := net.ListenTCP("tcp", &net.TCPAddr{IP: addr.IP, Port: addr.Port})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.tcpLn = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serveTCP(ln)
	return nil
}

func (s *Server) serveTCP(ln *net.TCPListener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		// While draining, refuse new connections but keep accepting — an
		// undrained (re-announced) site must serve TCP again without a
		// listener restart.
		if s.draining.Load() {
			conn.Close()
			continue
		}
		// Track the connection so Close can wake its blocked reads while
		// letting an in-flight reply finish (graceful drain).
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.tcpConns == nil {
			s.tcpConns = make(map[net.Conn]struct{})
		}
		s.tcpConns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleTCPConn(conn)
	}
}

// tcpIdleTimeout bounds how long an idle TCP client may hold a connection.
const tcpIdleTimeout = 5 * time.Second

func (s *Server) handleTCPConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.tcpConns, conn)
		s.mu.Unlock()
	}()
	var buf []byte
	out := make([]byte, 0, 1024)
	for {
		// Re-arm the idle deadline under mu so it cannot overwrite the
		// past-deadline nudge a concurrent Close or SetDraining just
		// applied.
		s.mu.Lock()
		if s.closed.Load() || s.draining.Load() {
			s.mu.Unlock()
			return
		}
		err := conn.SetReadDeadline(time.Now().Add(tcpIdleTimeout))
		s.mu.Unlock()
		if err != nil {
			return
		}
		raw, err := dnswire.ReadTCP(conn, buf)
		if err != nil {
			return
		}
		buf = raw[:0]
		s.received.Add(1)

		q, err := dnswire.Decode(raw)
		if err != nil || q.Header.Response || len(q.Questions) != 1 {
			s.ignored.Add(1)
			return
		}
		resp, ok := s.answer(q)
		if !ok {
			s.ignored.Add(1)
			return
		}
		out = out[:0]
		out, err = resp.Encode(out)
		if err != nil {
			s.ignored.Add(1)
			return
		}
		if err := dnswire.WriteTCP(conn, out); err != nil {
			return
		}
		s.answered.Add(1)
	}
}
