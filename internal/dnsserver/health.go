package dnsserver

// Health observability: the counter snapshot the site manager's monitor
// samples every assessment tick, and the graceful TCP drain hook it pulls
// when a site's route is withdrawn. Both sit outside the packet fast path:
// Snapshot is lock-free atomic loads, and draining touches only the TCP
// side (a withdrawn anycast site keeps answering the UDP queries that
// still reach it from its residual catchment, exactly like the paper's
// withdrawn-but-reachable sites in §6).

import "time"

// Stats is a cumulative counter snapshot of one server's request
// accounting. Counters are monotonic; subtract two snapshots (Sub) to get
// a per-window delta and rate it.
type Stats struct {
	// Received counts every datagram (or TCP query) pulled off a socket.
	Received uint64
	// Answered counts responses handed to the kernel.
	Answered uint64
	// DroppedLoss counts requests dropped by the configured impairment
	// coin — the "degraded absorber" loss model.
	DroppedLoss uint64
	// DroppedRRL counts responses suppressed by response rate limiting.
	DroppedRRL uint64
	// Ignored counts datagrams that produced no response for protocol
	// reasons: malformed packets, replies mistaken for queries, multi-
	// question messages, or (vanishingly rare) encode failures.
	Ignored uint64
}

// Sub returns the per-window delta s minus prev, saturating at zero so a
// restarted server's counter reset cannot yield wrapped deltas.
func (s Stats) Sub(prev Stats) Stats {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Stats{
		Received:    sat(s.Received, prev.Received),
		Answered:    sat(s.Answered, prev.Answered),
		DroppedLoss: sat(s.DroppedLoss, prev.DroppedLoss),
		DroppedRRL:  sat(s.DroppedRRL, prev.DroppedRRL),
		Ignored:     sat(s.Ignored, prev.Ignored),
	}
}

// LossRate is the fraction of received requests dropped by the impairment
// coin (0 when nothing was received).
func (s Stats) LossRate() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.DroppedLoss) / float64(s.Received)
}

// RRLRate is the fraction of received requests suppressed by RRL (0 when
// nothing was received).
func (s Stats) RRLRate() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.DroppedRRL) / float64(s.Received)
}

// Backlog is the number of received requests not yet resolved to an
// answer, a drop, or an ignore — the in-flight queue depth. Under delay
// impairment this is the visible queue a saturated site builds.
func (s Stats) Backlog() uint64 {
	resolved := s.Answered + s.DroppedLoss + s.DroppedRRL + s.Ignored
	if s.Received < resolved {
		return 0
	}
	return s.Received - resolved
}

// Snapshot returns the server's cumulative request accounting as one
// struct. It is lock-free and safe to call at any rate while the server is
// under load; the counters are read independently, so a snapshot taken
// mid-burst can be transiently inconsistent by a few packets — harmless
// for rate estimation, which is all the health monitor does with it.
func (s *Server) Snapshot() Stats {
	return Stats{
		Received:    s.received.Load(),
		Answered:    s.answered.Load(),
		DroppedLoss: s.droppedLoss.Load(),
		DroppedRRL:  s.droppedRRL.Load(),
		Ignored:     s.ignored.Load(),
	}
}

// SetDraining switches the TCP drain state. Draining a server gracefully
// sheds its TCP side — in-flight replies finish, then each connection
// closes at its next read, and new connections are refused — while UDP
// service continues untouched. The site manager drains on route withdraw
// (the paper's operators withdrew a site's announcement, not its power)
// and undrains on re-announce. Idempotent in both directions.
func (s *Server) SetDraining(drain bool) {
	if !drain {
		s.draining.Store(false)
		return
	}
	s.mu.Lock()
	s.draining.Store(true)
	// Nudge the read side of every live TCP connection, exactly like
	// Close: handlers that already read a query finish writing before
	// they notice. Done under mu so a handler cannot re-arm its idle
	// deadline over the nudge.
	for c := range s.tcpConns {
		c.SetReadDeadline(aLongTimeAgo)
	}
	s.mu.Unlock()
}

// Draining reports whether the TCP side is currently draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Uptime is how long the server has been running.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }
