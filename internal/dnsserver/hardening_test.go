package dnsserver

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// hungAddr binds a UDP socket that never replies — the "hung server" a
// hardened prober must not block on.
func hungAddr(t *testing.T) *net.UDPAddr {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn.LocalAddr().(*net.UDPAddr)
}

func TestHungServerCannotBlockPastDeadline(t *testing.T) {
	addr := hungAddr(t)
	p := NewProber(1)
	p.Timeout = 150 * time.Millisecond
	start := time.Now()
	_, err := p.Probe(addr, 'K')
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("probe took %v against a hung server; per-attempt deadline not enforced", elapsed)
	}
}

func TestProbeContextCancelWakesBlockedRead(t *testing.T) {
	addr := hungAddr(t)
	p := NewProber(2)
	p.Timeout = 30 * time.Second // the context, not the timeout, must end this
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err := p.ProbeContext(ctx, addr, 'K')
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to interrupt a blocked read", elapsed)
	}
}

func TestProbeContextDeadlineClipsTimeout(t *testing.T) {
	addr := hungAddr(t)
	p := NewProber(3)
	p.Timeout = 30 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.ProbeContext(ctx, addr, 'K')
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("attempt ran %v past a 100ms context deadline", elapsed)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		p := NewProber(seed)
		var ds []time.Duration
		for retry := 0; retry < 8; retry++ {
			ds = append(ds, p.backoffDelay(retry))
		}
		return ds
	}
	a, b := delays(7), delays(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d: same seed gave %v then %v", i, a[i], b[i])
		}
	}
	c := delays(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical backoff schedules")
	}
	// Bounds: jitter keeps every delay in [Backoff/2, MaxBackoff].
	p := NewProber(9)
	for retry := 0; retry < 12; retry++ {
		d := p.backoffDelay(retry)
		if d < p.Backoff/2 || d > p.MaxBackoff {
			t.Errorf("retry %d: delay %v outside [%v, %v]", retry, d, p.Backoff/2, p.MaxBackoff)
		}
	}
	if (&Prober{}).backoffDelay(3) != 0 {
		t.Error("zero Backoff should disable the delay")
	}
}

func TestBackoffCancellationInterruptsSleep(t *testing.T) {
	addr := hungAddr(t)
	p := NewProber(4)
	p.Timeout = 50 * time.Millisecond
	p.Retries = 10
	p.Backoff = 30 * time.Second // cancellation must interrupt this sleep
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(150*time.Millisecond, cancel)
	start := time.Now()
	_, err := p.ProbeContext(ctx, addr, 'K')
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("backoff sleep held the probe for %v after cancellation", elapsed)
	}
}

func TestMapCatchmentContextReturnsPartialTallies(t *testing.T) {
	live := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1})
	hung := hungAddr(t)
	p := NewProber(5)
	p.Timeout = 30 * time.Second
	addrs := []*net.UDPAddr{live.Addr(), hung, hung, hung}
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	sites, err := p.MapCatchmentContext(ctx, addrs, 'K')
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if sites["K-AMS"] != 1 {
		t.Errorf("partial tallies = %v, want the completed K-AMS probe", sites)
	}
	for _, want := range []string{"stopped after", "/4 probes"} {
		if err == nil || !contains(err.Error(), want) {
			t.Errorf("error %q does not report progress (%q)", err, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCloseDrainsInFlightUDP proves graceful drain: a reply being delayed
// inside the server when Close begins must still reach the client.
func TestCloseDrainsInFlightUDP(t *testing.T) {
	s, err := Start(Config{Letter: 'K', Site: "AMS", Server: 1, Delay: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProber(6)
	p.Timeout = 5 * time.Second
	type probeOut struct {
		res ProbeResult
		err error
	}
	ch := make(chan probeOut, 1)
	go func() {
		res, err := p.Probe(s.Addr(), 'K')
		ch <- probeOut{res, err}
	}()
	time.Sleep(80 * time.Millisecond) // the server is now inside its Delay
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	out := <-ch
	if out.err != nil {
		t.Fatalf("in-flight probe lost during drain: %v", out.err)
	}
	if !out.res.Matched {
		t.Error("drained reply did not match")
	}
}

func TestCloseDrainsInFlightTCP(t *testing.T) {
	s, err := Start(Config{Letter: 'K', Site: "LHR", Server: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartTCP(); err != nil {
		t.Fatal(err)
	}
	p := NewProber(7)
	p.Timeout = 5 * time.Second
	// Complete one exchange, then Close while the handler is blocked
	// reading the next query on the kept-alive connection. Close must
	// return promptly (well inside the 5s idle timeout) without hanging
	// on the parked handler.
	if _, err := p.ProbeTCP(s.Addr(), 'K'); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(50 * time.Millisecond) // let the handler park in its read
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on an idle TCP connection")
	}
}
