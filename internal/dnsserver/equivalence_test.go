package dnsserver

import (
	"bytes"
	"net"
	"net/netip"
	"testing"

	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/rrl"
	"github.com/rootevent/anycastddos/internal/udpbatch"
)

// TestFastPathMatchesLegacy drives the same packets through the UDP fast
// path (DecodeInto + tail splice) and the legacy reference path (Decode +
// NewResponse + Encode) on one server and requires byte-identical replies —
// including identical accept/reject decisions for traffic neither should
// answer.
func TestFastPathMatchesLegacy(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 2})
	src := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 5353}
	srcAP := netip.MustParseAddrPort("10.0.0.1:5353")

	queries := []struct {
		name string
		pkt  []byte
	}{
		{"hostname.bind", mustPack(t, dnswire.NewQuery(11, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS))},
		{"id.server", mustPack(t, dnswire.NewQuery(12, "id.server", dnswire.TypeTXT, dnswire.ClassCHAOS))},
		{"priming", mustPack(t, dnswire.NewQuery(13, ".", dnswire.TypeNS, dnswire.ClassINET))},
		{"nxdomain", mustPack(t, dnswire.NewQuery(14, "www.336901.com", dnswire.TypeA, dnswire.ClassINET))},
		{"nxdomain-deep", mustPack(t, dnswire.NewQuery(15, "a.b.c.example", dnswire.TypeAAAA, dnswire.ClassINET))},
		{"chaos-refused", mustPack(t, dnswire.NewQuery(16, "version.weird", dnswire.TypeTXT, dnswire.ClassCHAOS))},
		{"any-class-refused", mustPack(t, dnswire.NewQuery(17, "x.example", dnswire.TypeA, dnswire.ClassANY))},
		{"mixed-case", mustPack(t, dnswire.NewQuery(18, "HOSTNAME.BIND", dnswire.TypeTXT, dnswire.ClassCHAOS))},
		{"garbage", []byte{1, 2, 3}},
		{"response-pkt", mustPack(t, dnswire.NewResponse(dnswire.NewQuery(19, "x", dnswire.TypeA, dnswire.ClassINET), dnswire.RCodeNoError))},
	}
	var q dnswire.Message
	var out udpbatch.Message
	for _, tc := range queries {
		legacyResp, legacyOK := s.handle(tc.pkt, src)
		fastOK := s.respond(tc.pkt, srcAP, &q, &out)
		if legacyOK != fastOK {
			t.Fatalf("%s: legacy ok=%v fast ok=%v", tc.name, legacyOK, fastOK)
		}
		if !legacyOK {
			continue
		}
		want, err := legacyResp.Encode(nil)
		if err != nil {
			t.Fatalf("%s: legacy encode: %v", tc.name, err)
		}
		if !bytes.Equal(want, out.Buf[:out.N]) {
			t.Fatalf("%s: reply bytes differ\nlegacy %x\nfast   %x", tc.name, want, out.Buf[:out.N])
		}
	}
}

// TestFastPathMatchesLegacyUnderRRL pins the RRL-influenced replies: two
// servers with identical deterministic limiters see the same sequence, and
// every verdict's wire image (answer, slip, silence) must agree.
func TestFastPathMatchesLegacyUnderRRL(t *testing.T) {
	// Negligible refill rate: after the 2-response burst the verdict
	// sequence is Drop, Slip, Drop, Slip... regardless of wall clock, so
	// both servers see identical verdicts despite distinct start times.
	rrlCfg := rrl.Config{ResponsesPerSecond: 0.001, Burst: 2, SlipRatio: 2, PrefixBits: 32}
	legacySrv := startServer(t, Config{Letter: 'J', Site: "IAD", Server: 1, RRL: &rrlCfg})
	fastSrv := startServer(t, Config{Letter: 'J', Site: "IAD", Server: 1, RRL: &rrlCfg})

	src := &net.UDPAddr{IP: net.IPv4(10, 9, 8, 7), Port: 4242}
	srcAP := netip.MustParseAddrPort("10.9.8.7:4242")
	pkt := mustPack(t, dnswire.NewQuery(21, "www.336901.com", dnswire.TypeA, dnswire.ClassINET))

	var q dnswire.Message
	var out udpbatch.Message
	sawSlip, sawDrop := false, false
	for i := 0; i < 16; i++ {
		legacyResp, legacyOK := legacySrv.handle(pkt, src)
		fastOK := fastSrv.respond(pkt, srcAP, &q, &out)
		if legacyOK != fastOK {
			t.Fatalf("packet %d: legacy ok=%v fast ok=%v", i, legacyOK, fastOK)
		}
		if !legacyOK {
			sawDrop = true
			continue
		}
		if legacyResp.Header.Truncated {
			sawSlip = true
		}
		want, err := legacyResp.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, out.Buf[:out.N]) {
			t.Fatalf("packet %d: reply bytes differ\nlegacy %x\nfast   %x", i, want, out.Buf[:out.N])
		}
	}
	if !sawSlip || !sawDrop {
		t.Fatalf("RRL sequence did not exercise slip (%v) and drop (%v)", sawSlip, sawDrop)
	}
}

// TestRespondZeroAllocs holds the whole per-packet server path (decode,
// RRL, encode) to zero heap allocations once worker scratch is warm.
func TestRespondZeroAllocs(t *testing.T) {
	rrlCfg := rrl.DefaultConfig()
	s := startServer(t, Config{Letter: 'K', Site: "LHR", Server: 1, RRL: &rrlCfg})
	srcAP := netip.MustParseAddrPort("10.1.2.3:9999")
	pkt := mustPack(t, dnswire.NewQuery(22, "www.336901.com", dnswire.TypeA, dnswire.ClassINET))
	var q dnswire.Message
	out := udpbatch.Message{Buf: make([]byte, 0, 1024)}
	s.respond(pkt, srcAP, &q, &out) // warm decode scratch and tx buffer
	if n := testing.AllocsPerRun(500, func() {
		s.respond(pkt, srcAP, &q, &out)
	}); n != 0 {
		t.Fatalf("respond allocates %.1f allocs/op, want 0", n)
	}
}

func mustPack(t *testing.T, m *dnswire.Message) []byte {
	t.Helper()
	pkt, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}
