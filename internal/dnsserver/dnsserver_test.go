package dnsserver

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/rrl"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestChaosIdentityOverUDP(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 2})
	p := NewProber(1)
	p.Timeout = 2 * time.Second
	res, err := p.Probe(s.Addr(), 'K')
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matched {
		t.Fatalf("reply %q did not match K pattern", res.RawTXT)
	}
	if res.Identity.Site != "AMS" || res.Identity.Server != 2 {
		t.Errorf("identity = %+v", res.Identity)
	}
	if res.RTT <= 0 || res.RTT > time.Second {
		t.Errorf("rtt = %v", res.RTT)
	}
	if res.RCode != dnswire.RCodeNoError {
		t.Errorf("rcode = %v", res.RCode)
	}
}

func TestIdServerAliasAndRefused(t *testing.T) {
	s := startServer(t, Config{Letter: 'E', Site: "FRA", Server: 1})
	// Raw exchange so we can use id.server and exotic classes.
	conn, err := net.DialUDP("udp", nil, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	exchange := func(q *dnswire.Message) *dnswire.Message {
		t.Helper()
		pkt, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 4096)
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		m, err := dnswire.Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	resp := exchange(dnswire.NewQuery(7, "id.server", dnswire.TypeTXT, dnswire.ClassCHAOS))
	if len(resp.Answers) != 1 {
		t.Fatalf("id.server answers = %d", len(resp.Answers))
	}
	strs, err := resp.Answers[0].TXT()
	if err != nil || strs[0] != s.Identity() {
		t.Errorf("id.server TXT = %v err %v", strs, err)
	}

	// CHAOS query for an unknown name is refused.
	resp = exchange(dnswire.NewQuery(8, "version.weird", dnswire.TypeTXT, dnswire.ClassCHAOS))
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("weird CHAOS rcode = %v", resp.Header.RCode)
	}
}

func TestRootPrimingResponse(t *testing.T) {
	s := startServer(t, Config{Letter: 'B', Site: "LAX", Server: 1})
	conn, err := net.DialUDP("udp", nil, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(9, ".", dnswire.TypeNS, dnswire.ClassINET)
	pkt, _ := q.Pack()
	conn.Write(pkt)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Decode(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 13 {
		t.Fatalf("priming answers = %d, want 13", len(resp.Answers))
	}
	target, err := resp.Answers[10].NS()
	if err != nil || target != "k.root-servers.net" {
		t.Errorf("answer 10 = %q err %v", target, err)
	}
}

func TestNXDomainWithSOA(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "LHR", Server: 1})
	conn, _ := net.DialUDP("udp", nil, s.Addr())
	defer conn.Close()
	q := dnswire.NewQuery(10, "www.336901.com", dnswire.TypeA, dnswire.ClassINET)
	pkt, _ := q.Pack()
	conn.Write(pkt)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := dnswire.Decode(buf[:n])
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %+v", resp.Authority)
	}
}

func TestLossInjectionAndTimeout(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "NRT", Server: 1, LossProb: 1.0})
	p := NewProber(2)
	p.Timeout = 300 * time.Millisecond
	_, err := p.Probe(s.Addr(), 'K')
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	_, _, droppedLoss, _ := s.Stats()
	if droppedLoss == 0 {
		t.Error("no loss recorded")
	}
}

func TestRetryAfterTimeout(t *testing.T) {
	// 70% loss with retries should usually succeed; use enough retries
	// to make flakiness negligible (P(fail) = 0.7^8 ≈ 6e-2... use 16).
	s := startServer(t, Config{Letter: 'K', Site: "NRT", Server: 1, LossProb: 0.7, Seed: 5})
	p := NewProber(3)
	p.Timeout = 150 * time.Millisecond
	p.Retries = 16
	p.Backoff = time.Millisecond // keep the 16-retry worst case fast
	p.MaxBackoff = 5 * time.Millisecond
	res, err := p.Probe(s.Addr(), 'K')
	if err != nil {
		t.Fatalf("probe with retries failed: %v", err)
	}
	if !res.Matched {
		t.Error("reply did not match")
	}
}

func TestDelayInjectionShowsInRTT(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1, Delay: 120 * time.Millisecond})
	p := NewProber(4)
	p.Timeout = 2 * time.Second
	res, err := p.Probe(s.Addr(), 'K')
	if err != nil {
		t.Fatal(err)
	}
	if res.RTT < 100*time.Millisecond {
		t.Errorf("rtt = %v, want >= 120ms injected delay", res.RTT)
	}
}

func TestRRLSuppressesFlood(t *testing.T) {
	cfg := rrl.Config{ResponsesPerSecond: 2, Burst: 2, SlipRatio: 0, PrefixBits: 32}
	s := startServer(t, Config{Letter: 'J', Site: "IAD", Server: 1, RRL: &cfg})
	p := NewProber(5)
	p.Timeout = 200 * time.Millisecond
	ok, timeouts := 0, 0
	for i := 0; i < 10; i++ {
		if _, err := p.Probe(s.Addr(), 'J'); err == nil {
			ok++
		} else if errors.Is(err, ErrTimeout) {
			timeouts++
		}
	}
	if ok == 0 {
		t.Error("burst should allow some replies")
	}
	if timeouts == 0 {
		t.Error("RRL should suppress the flood tail")
	}
	_, _, _, droppedRRL := s.Stats()
	if droppedRRL == 0 {
		t.Error("no RRL drops recorded")
	}
}

func TestMapCatchment(t *testing.T) {
	s1 := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1})
	s2 := startServer(t, Config{Letter: 'K', Site: "LHR", Server: 1})
	s3 := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 2})
	p := NewProber(6)
	p.Timeout = 2 * time.Second
	sites, err := p.MapCatchment([]*net.UDPAddr{s1.Addr(), s2.Addr(), s3.Addr()}, 'K')
	if err != nil {
		t.Fatal(err)
	}
	if sites["K-AMS"] != 2 || sites["K-LHR"] != 1 {
		t.Errorf("catchment = %v", sites)
	}
}

func TestServerRejectsGarbageSilently(t *testing.T) {
	s := startServer(t, Config{Letter: 'K', Site: "AMS", Server: 1})
	conn, _ := net.DialUDP("udp", nil, s.Addr())
	defer conn.Close()
	conn.Write([]byte{1, 2, 3})
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Error("garbage got a reply")
	}
	received, answered, _, _ := s.Stats()
	if received == 0 || answered != 0 {
		t.Errorf("stats = recv %d ans %d", received, answered)
	}
}

func TestStartErrors(t *testing.T) {
	if _, err := Start(Config{Letter: 'Z', Site: "AMS", Server: 1}); err == nil {
		t.Error("unknown letter should fail")
	}
	if _, err := Start(Config{Letter: 'K', Site: "AMS", Server: 1, Addr: "999.0.0.1:x"}); err == nil {
		t.Error("bad addr should fail")
	}
	bad := rrl.Config{ResponsesPerSecond: -1}
	if _, err := Start(Config{Letter: 'K', Site: "AMS", Server: 1, RRL: &bad}); err == nil {
		t.Error("bad RRL config should fail")
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	s, err := Start(Config{Letter: 'K', Site: "AMS", Server: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
}
