// Package attack specifies the Nov 30 / Dec 1 2015 events and generates
// their traffic at the AS granularity the simulator works in.
//
// Event parameters follow §2.3 and §3.1 of the paper: two windows
// (06:50-09:30 UTC on Nov 30 and 05:10-06:10 UTC on Dec 1), fixed query
// names (www.336901.com, then www.916yy.com), ~5 Mq/s offered per attacked
// letter, IPv4/UDP only, D-, L- and M-Root not attacked. Sources were
// spoofed: A and J together saw 895 M distinct addresses, yet the top 200
// sources carried 68% of the queries — a mix this package models as a small
// heavy-hitter set plus uniformly random spoofed /32s.
package attack

import (
	"math"
	"math/rand"

	"github.com/rootevent/anycastddos/internal/topo"
)

// Minutes from the simulation epoch 2015-11-30T00:00 UTC.
const (
	// SimMinutes covers the two observation days the paper analyzes.
	SimMinutes = 48 * 60

	// Event 1: Nov 30, 06:50-09:30 UTC (160 minutes).
	Event1Start = 6*60 + 50
	Event1End   = 9*60 + 30

	// Event 2: Dec 1, 05:10-06:10 UTC (60 minutes).
	Event2Start = 24*60 + 5*60 + 10
	Event2End   = 24*60 + 6*60 + 10
)

// Event describes one attack window.
type Event struct {
	Index       int // 1-based event number
	Name        string
	StartMinute int // inclusive
	EndMinute   int // exclusive
	QName       string
	// Wire sizes of one query/response DNS message (§3.1: queries fell in
	// the 32-47 B and 16-31 B RSSAC bins; responses in 480-495 B).
	QueryBytes    int
	ResponseBytes int
	// PerLetterQPS is the offered attack rate per attacked letter
	// (~5 Mq/s, §2.3).
	PerLetterQPS float64
}

// Duration returns the event length in minutes.
func (e Event) Duration() int { return e.EndMinute - e.StartMinute }

// Contains reports whether the given simulation minute is inside the event.
func (e Event) Contains(minute int) bool {
	return minute >= e.StartMinute && minute < e.EndMinute
}

// Schedule is a complete attack scenario: the event windows and the set of
// letters they spare. The paper's "Generalizing" paragraph notes that
// subsequent root events differ in details but pose the same operational
// choices (§2.3); schedules make those details a parameter.
type Schedule struct {
	Name   string
	Events []Event
	// Spared letters receive no event traffic.
	Spared map[byte]bool
}

// Active returns the index of the event covering the given minute, or -1.
func (s *Schedule) Active(minute int) int {
	for i, e := range s.Events {
		if e.Contains(minute) {
			return i
		}
	}
	return -1
}

// Targeted reports whether a letter receives event traffic under this
// schedule.
func (s *Schedule) Targeted(letter byte) bool { return !s.Spared[letter] }

// Nov2015Schedule is the paper's scenario: the two windows of Nov 30 and
// Dec 1 2015, with D-, L- and M-Root not attacked (§2.3).
func Nov2015Schedule() *Schedule {
	return &Schedule{
		Name: "nov2015",
		Events: []Event{
			{
				Index: 1, Name: "2015-11-30", StartMinute: Event1Start, EndMinute: Event1End,
				QName: "www.336901.com", QueryBytes: 32, ResponseBytes: 485,
				PerLetterQPS: 5_000_000,
			},
			{
				Index: 2, Name: "2015-12-01", StartMinute: Event2Start, EndMinute: Event2End,
				QName: "www.916yy.com", QueryBytes: 31, ResponseBytes: 484,
				PerLetterQPS: 5_000_000,
			},
		},
		Spared: map[byte]bool{'D': true, 'L': true, 'M': true},
	}
}

// June2016Schedule approximates the follow-up event of 2016-06-25 the
// paper cites as future study material [50]: a single longer window, every
// letter targeted, at a lower per-letter rate. The operators' public note
// gives no per-letter volumes, so the rate here is a documented
// approximation chosen to stress mid-size sites without saturating the
// large ones — the regime where the withdraw-vs-absorb choice is sharpest.
func June2016Schedule() *Schedule {
	return &Schedule{
		Name: "june2016",
		Events: []Event{
			{
				Index: 1, Name: "2016-06-25", StartMinute: 10 * 60, EndMinute: 12*60 + 30,
				QName: "www.example-flood.com", QueryBytes: 38, ResponseBytes: 490,
				PerLetterQPS: 2_000_000,
			},
		},
		Spared: map[byte]bool{},
	}
}

// defaultSchedule backs the package-level helpers; the paper's scenario.
var defaultSchedule = Nov2015Schedule()

// Events returns the default (Nov 2015) event specifications.
func Events() []Event { return defaultSchedule.Events }

// Active returns the event covering the given minute under the default
// schedule, or -1 if outside all windows.
func Active(minute int) int { return defaultSchedule.Active(minute) }

// Targeted reports whether a letter received event traffic under the
// default schedule.
func Targeted(letter byte) bool { return defaultSchedule.Targeted(letter) }

// SourceMix models the observed source-address structure: HeavyShare of
// queries come from NumHeavy fixed sources (Zipf-weighted); the rest carry
// uniformly random spoofed 32-bit sources.
type SourceMix struct {
	NumHeavy   int
	HeavyShare float64
}

// DefaultSourceMix matches the Verisign report: the top 200 sources carried
// 68% of queries.
var DefaultSourceMix = SourceMix{NumHeavy: 200, HeavyShare: 0.68}

// SpoofableSpace is the number of addresses random spoofing effectively
// draws from: roughly the routed IPv4 space (~45% of 2^32) — bogon and
// martian sources are filtered on the way in. Calibrated so that A-Root's
// event-day unique-IP count saturates near the paper's 1,813 M (a ~340x
// ratio over baseline, Table 3).
const SpoofableSpace = 1.9e9

// ExpectedUniqueIPs estimates the number of distinct source addresses after
// `queries` attack queries: the heavy hitters plus the birthday-corrected
// count of uniform random draws from the spoofable space. At event scale
// this reproduces the unique-IP explosions of Table 3.
func (m SourceMix) ExpectedUniqueIPs(queries float64) float64 {
	if queries <= 0 {
		return 0
	}
	randomDraws := queries * (1 - m.HeavyShare)
	distinctRandom := SpoofableSpace * (1 - math.Exp(-randomDraws/SpoofableSpace))
	heavy := math.Min(float64(m.NumHeavy), queries*m.HeavyShare)
	return heavy + distinctRandom
}

// SampleSource draws one source address from the mix.
func (m SourceMix) SampleSource(rng *rand.Rand) uint32 {
	if rng.Float64() < m.HeavyShare && m.NumHeavy > 0 {
		// Zipf-ish: low indices much more likely. The heavy sources
		// live in a reserved /24-sized slice so they never collide with
		// the random space in expectation-relevant amounts.
		rank := int(math.Floor(math.Pow(rng.Float64(), 2) * float64(m.NumHeavy)))
		if rank >= m.NumHeavy {
			rank = m.NumHeavy - 1
		}
		return 0x0A000000 + uint32(rank)
	}
	return rng.Uint32()
}

// BackgroundShare is the fraction of the flood that enters the network
// uniformly from every stub AS: with 895 M distinct spoofed sources the
// ingress points are scattered globally, so every catchment carries some
// share of the attack regardless of where the concentrated botnet sits.
const BackgroundShare = 0.25

// Botnet places the attack origins in the topology. Spoofing hides the true
// sources from victims, but the *network locations* where attack packets
// enter determine which catchments carry the load (§2.2: "how attackers
// align with catchment"). Origins are concentrated: a Zipf-like weighting
// over a modest number of ASes reproduces the paper's uneven per-site
// stress.
type Botnet struct {
	Origins []topo.ASN
	Weights []float64 // sums to 1
}

// NewBotnet samples nOrigins stub ASes as attack ingress points with
// Zipf(1.0)-like weights. Deterministic per seed.
func NewBotnet(g *topo.Graph, nOrigins int, seed int64) *Botnet {
	rng := rand.New(rand.NewSource(seed))
	stubs := g.StubASNs()
	if nOrigins > len(stubs) {
		nOrigins = len(stubs)
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := &Botnet{Origins: stubs[:nOrigins], Weights: make([]float64, nOrigins)}
	var sum float64
	for i := range b.Weights {
		w := 1 / float64(i+1) // Zipf rank weights
		b.Weights[i] = w
		sum += w
	}
	for i := range b.Weights {
		b.Weights[i] /= sum
	}
	return b
}

// RatePerAS splits a total offered rate across origin ASes.
func (b *Botnet) RatePerAS(totalQPS float64) map[topo.ASN]float64 {
	out := make(map[topo.ASN]float64, len(b.Origins))
	for i, asn := range b.Origins {
		out[asn] += totalQPS * b.Weights[i]
	}
	return out
}

// ClientPopulation distributes legitimate query load (recursive resolvers)
// over stub ASes with a heavy-tailed weighting: a few large eyeball
// networks, many small ones.
type ClientPopulation struct {
	Weights map[topo.ASN]float64 // sums to 1 over stub ASes
}

// NewClientPopulation assigns deterministic per-AS client weights.
func NewClientPopulation(g *topo.Graph, seed int64) *ClientPopulation {
	rng := rand.New(rand.NewSource(seed))
	stubs := g.StubASNs()
	w := make(map[topo.ASN]float64, len(stubs))
	var sum float64
	for _, asn := range stubs {
		// Log-normal-ish heavy tail.
		v := math.Exp(rng.NormFloat64() * 1.2)
		w[asn] = v
		sum += v
	}
	for asn := range w {
		w[asn] /= sum
	}
	return &ClientPopulation{Weights: w}
}

// RatePerAS returns each stub AS's share of a letter's normal load.
func (c *ClientPopulation) RatePerAS(letterNormalQPS float64) map[topo.ASN]float64 {
	out := make(map[topo.ASN]float64, len(c.Weights))
	for asn, w := range c.Weights {
		out[asn] = w * letterNormalQPS
	}
	return out
}
