package attack

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rootevent/anycastddos/internal/topo"
)

func TestEventWindows(t *testing.T) {
	evs := Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	e1, e2 := evs[0], evs[1]
	if e1.Duration() != 160 {
		t.Errorf("event 1 duration = %d min, want 160", e1.Duration())
	}
	if e2.Duration() != 60 {
		t.Errorf("event 2 duration = %d min, want 60", e2.Duration())
	}
	if e1.StartMinute != 410 || e1.EndMinute != 570 {
		t.Errorf("event 1 = [%d,%d), want [410,570)", e1.StartMinute, e1.EndMinute)
	}
	if e2.StartMinute != 1750 || e2.EndMinute != 1810 {
		t.Errorf("event 2 = [%d,%d), want [1750,1810)", e2.StartMinute, e2.EndMinute)
	}
	if e1.QName != "www.336901.com" || e2.QName != "www.916yy.com" {
		t.Errorf("qnames = %q, %q", e1.QName, e2.QName)
	}
	// RSSAC bin placement (§3.1): 32-47 B then 16-31 B.
	if e1.QueryBytes < 32 || e1.QueryBytes > 47 {
		t.Errorf("event 1 query bytes = %d", e1.QueryBytes)
	}
	if e2.QueryBytes < 16 || e2.QueryBytes > 31 {
		t.Errorf("event 2 query bytes = %d", e2.QueryBytes)
	}
	for _, e := range evs {
		if e.ResponseBytes < 480 || e.ResponseBytes > 495 {
			t.Errorf("event %d response bytes = %d, want 480-495", e.Index, e.ResponseBytes)
		}
		if e.PerLetterQPS != 5_000_000 {
			t.Errorf("event %d rate = %v", e.Index, e.PerLetterQPS)
		}
	}
}

func TestActive(t *testing.T) {
	tests := []struct {
		minute int
		want   int
	}{
		{0, -1}, {409, -1}, {410, 0}, {569, 0}, {570, -1},
		{1749, -1}, {1750, 1}, {1809, 1}, {1810, -1}, {2879, -1},
	}
	for _, tt := range tests {
		if got := Active(tt.minute); got != tt.want {
			t.Errorf("Active(%d) = %d, want %d", tt.minute, got, tt.want)
		}
	}
}

func TestTargeted(t *testing.T) {
	notAttacked := map[byte]bool{'D': true, 'L': true, 'M': true}
	for _, l := range []byte("ABCDEFGHIJKLM") {
		want := !notAttacked[l]
		if Targeted(l) != want {
			t.Errorf("Targeted(%c) = %v, want %v", l, Targeted(l), want)
		}
	}
}

func TestExpectedUniqueIPs(t *testing.T) {
	m := DefaultSourceMix
	if got := m.ExpectedUniqueIPs(0); got != 0 {
		t.Errorf("zero queries -> %v", got)
	}
	// Small query counts: every random draw is distinct, plus heavies.
	small := m.ExpectedUniqueIPs(1000)
	if small < 500 || small > 1000 {
		t.Errorf("unique(1000) = %v", small)
	}
	// A-Root scale: 5 Mq/s * 160 min = 48 G queries -> should approach
	// but not exceed the IPv4 space, and land in the
	// hundreds-of-millions-to-billions range of Table 3.
	big := m.ExpectedUniqueIPs(5_000_000 * 160 * 60)
	if big < 1e9 || big > math.Pow(2, 32) {
		t.Errorf("unique(48G) = %.3g, want ~1-4.3 G", big)
	}
	// Monotone.
	if m.ExpectedUniqueIPs(1e9) >= m.ExpectedUniqueIPs(1e10) {
		t.Error("unique IPs not monotone in query count")
	}
}

func TestSampleSourceMix(t *testing.T) {
	m := DefaultSourceMix
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	heavy := 0
	seen := map[uint32]bool{}
	for i := 0; i < n; i++ {
		src := m.SampleSource(rng)
		if src >= 0x0A000000 && src < 0x0A000000+uint32(m.NumHeavy) {
			heavy++
		}
		seen[src] = true
	}
	frac := float64(heavy) / n
	if math.Abs(frac-m.HeavyShare) > 0.02 {
		t.Errorf("heavy fraction = %.3f, want ~%.2f", frac, m.HeavyShare)
	}
	// Distinct sources ≈ heavies + random draws.
	if len(seen) < int(0.3*n) {
		t.Errorf("distinct sources = %d, want >= %d", len(seen), int(0.3*n))
	}
}

func testGraph(t *testing.T) *topo.Graph {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 30, Stubs: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBotnetWeights(t *testing.T) {
	g := testGraph(t)
	b := NewBotnet(g, 40, 9)
	if len(b.Origins) != 40 || len(b.Weights) != 40 {
		t.Fatalf("botnet size = %d/%d", len(b.Origins), len(b.Weights))
	}
	var sum float64
	for i, w := range b.Weights {
		if w <= 0 {
			t.Errorf("weight %d = %v", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
	// Zipf: first origin carries the largest share.
	if b.Weights[0] <= b.Weights[39] {
		t.Error("weights not decreasing")
	}
	rates := b.RatePerAS(5_000_000)
	var total float64
	for _, r := range rates {
		total += r
	}
	if math.Abs(total-5_000_000) > 1 {
		t.Errorf("rate total = %v", total)
	}
	// All origins are stubs.
	for _, asn := range b.Origins {
		if g.AS(asn).Tier != topo.Stub {
			t.Errorf("origin AS%d is %v", asn, g.AS(asn).Tier)
		}
	}
}

func TestBotnetDeterministicAndClamped(t *testing.T) {
	g := testGraph(t)
	b1 := NewBotnet(g, 10, 5)
	b2 := NewBotnet(g, 10, 5)
	for i := range b1.Origins {
		if b1.Origins[i] != b2.Origins[i] {
			t.Fatal("botnet not deterministic")
		}
	}
	huge := NewBotnet(g, 10_000, 5)
	if len(huge.Origins) != len(g.StubASNs()) {
		t.Errorf("oversized botnet = %d origins", len(huge.Origins))
	}
}

func TestClientPopulation(t *testing.T) {
	g := testGraph(t)
	c := NewClientPopulation(g, 3)
	var sum float64
	for asn, w := range c.Weights {
		if w < 0 {
			t.Errorf("negative weight at AS%d", asn)
		}
		if g.AS(asn).Tier != topo.Stub {
			t.Errorf("client weight on non-stub AS%d", asn)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
	rates := c.RatePerAS(40_000)
	var total float64
	for _, r := range rates {
		total += r
	}
	if math.Abs(total-40_000) > 1e-6*40_000 {
		t.Errorf("rates total = %v", total)
	}
}

func TestSchedules(t *testing.T) {
	nov := Nov2015Schedule()
	if nov.Name != "nov2015" || len(nov.Events) != 2 {
		t.Fatalf("nov schedule = %+v", nov)
	}
	if nov.Active(450) != 0 || nov.Active(1760) != 1 || nov.Active(1000) != -1 {
		t.Error("nov Active wrong")
	}
	if nov.Targeted('D') || !nov.Targeted('K') {
		t.Error("nov Targeted wrong")
	}

	june := June2016Schedule()
	if len(june.Events) != 1 {
		t.Fatalf("june schedule = %+v", june)
	}
	e := june.Events[0]
	if e.Duration() != 150 {
		t.Errorf("june duration = %d min", e.Duration())
	}
	// Every letter is targeted in the follow-up event.
	for _, l := range []byte("ABCDEFGHIJKLM") {
		if !june.Targeted(l) {
			t.Errorf("june spares %c", l)
		}
	}
	if june.Active(e.StartMinute) != 0 || june.Active(e.EndMinute) != -1 {
		t.Error("june Active wrong")
	}
	// Package-level helpers still track the paper's schedule.
	if Active(450) != 0 || Targeted('D') {
		t.Error("default helpers drifted")
	}
}
