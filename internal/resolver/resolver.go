// Package resolver models recursive DNS resolvers — the actual clients of
// the root service. The paper observes that despite per-letter loss rates
// of up to 95%, "there were no known reports of end-user visible errors,
// because top-level names are extensively cached, and the DNS system is
// designed to retry and operate in the face of partial failure" (§2.3),
// and that resolvers "flip" between letters under stress, visible as load
// increases at unattacked letters (§3.2.2). Evaluating this interplay is
// the future work the paper calls out in §5; this package implements it.
//
// A Resolver keeps a per-letter smoothed RTT estimate (the BIND-style
// server-selection behaviour the paper cites), prefers the fastest letter,
// retries across letters on timeout, and caches answers by qname.
package resolver

import (
	"errors"
	"fmt"
	"math/rand"
)

// Upstream is the resolver's view of the root service: one attempt to one
// letter at a simulation time, returning whether a response arrived and its
// RTT. Implemented by core.Evaluator against the simulated event.
type Upstream interface {
	Query(letter byte, minute int) (ok bool, rttMs float64)
}

// Strategy selects which letter to try first.
type Strategy uint8

// Selection strategies.
const (
	// PreferFastest picks the letter with the lowest smoothed RTT and
	// explores alternatives occasionally — BIND-like behaviour, and the
	// mechanism behind the paper's "letter flips".
	PreferFastest Strategy = iota
	// RoundRobin cycles through letters (unbound-like spreading).
	RoundRobin
	// Uniform picks uniformly at random each query.
	Uniform
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case PreferFastest:
		return "prefer-fastest"
	case RoundRobin:
		return "round-robin"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Config parameterizes a resolver.
type Config struct {
	Letters  []byte
	Strategy Strategy
	// MaxAttempts bounds the retry ladder across letters per query
	// (resolvers typically try several servers before giving up).
	MaxAttempts int
	// TimeoutPenaltyMs is added to a letter's smoothed RTT on timeout,
	// steering subsequent queries away from it.
	TimeoutPenaltyMs float64
	// SRTTDecay is the EWMA weight of a new sample (0..1].
	SRTTDecay float64
	// CacheTTLMinutes is how long answers stay cached. Top-level answers
	// are cached for days in reality; shorter values expose more root
	// queries and make event effects visible.
	CacheTTLMinutes int
	// ExploreProb occasionally tries a non-best letter under
	// PreferFastest, keeping SRTT estimates fresh.
	ExploreProb float64
	Seed        int64
}

// DefaultConfig mirrors common resolver behaviour.
func DefaultConfig(seed int64) Config {
	return Config{
		Letters:          []byte("ABCDEFGHIJKLM"),
		Strategy:         PreferFastest,
		MaxAttempts:      4,
		TimeoutPenaltyMs: 800,
		SRTTDecay:        0.3,
		CacheTTLMinutes:  120,
		ExploreProb:      0.05,
		Seed:             seed,
	}
}

// Result describes the fate of one user query.
type Result struct {
	// Cached is true when the answer came from the cache (no root query).
	Cached bool
	// Served is true when some letter answered within MaxAttempts.
	Served bool
	// Letter is the letter that answered (when Served and not Cached).
	Letter byte
	// Attempts counts upstream tries, 0 for cache hits.
	Attempts int
	// LatencyMs is the user-visible resolution latency: the RTTs of all
	// attempts plus timeout waits for the failed ones.
	LatencyMs float64
	// Flipped is true when the answering letter differs from the
	// resolver's first choice — a "letter flip" (§3.2.2).
	Flipped bool
}

// AttemptTimeoutMs is the per-attempt timeout a resolver waits before
// moving to the next server.
const AttemptTimeoutMs = 1000

// Resolver is one recursive resolver instance. Not safe for concurrent
// use; simulations shard resolvers per goroutine.
type Resolver struct {
	cfg   Config
	srtt  map[byte]float64
	cache map[string]int // qname -> expiry minute
	rng   *rand.Rand
	rrIdx int

	// Stats.
	queries, cacheHits, served, failed uint64
	flips                              uint64
	perLetter                          map[byte]uint64
}

// New creates a resolver.
func New(cfg Config) (*Resolver, error) {
	if len(cfg.Letters) == 0 {
		return nil, errors.New("resolver: no letters configured")
	}
	if cfg.MaxAttempts < 1 {
		return nil, errors.New("resolver: MaxAttempts must be >= 1")
	}
	if cfg.SRTTDecay <= 0 || cfg.SRTTDecay > 1 {
		return nil, errors.New("resolver: SRTTDecay must be in (0,1]")
	}
	r := &Resolver{
		cfg:       cfg,
		srtt:      make(map[byte]float64, len(cfg.Letters)),
		cache:     make(map[string]int),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		perLetter: make(map[byte]uint64, len(cfg.Letters)),
	}
	for _, l := range cfg.Letters {
		// Optimistic initial estimates force early exploration.
		r.srtt[l] = 50
	}
	return r, nil
}

// order returns the letters to try, best first, for this query.
func (r *Resolver) order() []byte {
	letters := append([]byte(nil), r.cfg.Letters...)
	switch r.cfg.Strategy {
	case RoundRobin:
		n := len(letters)
		start := r.rrIdx % n
		r.rrIdx++
		rotated := make([]byte, 0, n)
		rotated = append(rotated, letters[start:]...)
		rotated = append(rotated, letters[:start]...)
		return rotated
	case Uniform:
		r.rng.Shuffle(len(letters), func(i, j int) { letters[i], letters[j] = letters[j], letters[i] })
		return letters
	default: // PreferFastest
		// Insertion sort by SRTT (13 letters; cheap and allocation-free).
		for i := 1; i < len(letters); i++ {
			for j := i; j > 0 && r.srtt[letters[j]] < r.srtt[letters[j-1]]; j-- {
				letters[j], letters[j-1] = letters[j-1], letters[j]
			}
		}
		if r.cfg.ExploreProb > 0 && r.rng.Float64() < r.cfg.ExploreProb && len(letters) > 1 {
			k := 1 + r.rng.Intn(len(letters)-1)
			letters[0], letters[k] = letters[k], letters[0]
		}
		return letters
	}
}

// Resolve handles one user query for qname at the given simulation minute.
func (r *Resolver) Resolve(qname string, minute int, up Upstream) Result {
	r.queries++
	if exp, ok := r.cache[qname]; ok && exp > minute {
		r.cacheHits++
		return Result{Cached: true, Served: true}
	}
	res := Result{}
	order := r.order()
	first := order[0]
	for attempt := 0; attempt < r.cfg.MaxAttempts && attempt < len(order); attempt++ {
		letter := order[attempt]
		res.Attempts++
		ok, rtt := up.Query(letter, minute)
		if ok {
			res.LatencyMs += rtt
			res.Served = true
			res.Letter = letter
			res.Flipped = letter != first
			r.observe(letter, rtt, false)
			r.perLetter[letter]++
			if res.Flipped {
				r.flips++
			}
			r.served++
			r.cache[qname] = minute + r.cfg.CacheTTLMinutes
			return res
		}
		res.LatencyMs += AttemptTimeoutMs
		r.observe(letter, 0, true)
	}
	r.failed++
	return res
}

// observe updates the SRTT estimate for a letter.
func (r *Resolver) observe(letter byte, rttMs float64, timeout bool) {
	cur := r.srtt[letter]
	if timeout {
		r.srtt[letter] = cur + r.cfg.TimeoutPenaltyMs
		return
	}
	r.srtt[letter] = cur*(1-r.cfg.SRTTDecay) + rttMs*r.cfg.SRTTDecay
}

// SRTT returns the current smoothed RTT estimate for a letter.
func (r *Resolver) SRTT(letter byte) float64 { return r.srtt[letter] }

// Stats reports cumulative counters.
func (r *Resolver) Stats() (queries, cacheHits, served, failed, flips uint64) {
	return r.queries, r.cacheHits, r.served, r.failed, r.flips
}

// LetterShare returns the fraction of upstream-served queries answered by
// each letter.
func (r *Resolver) LetterShare() map[byte]float64 {
	var total uint64
	for _, n := range r.perLetter {
		total += n
	}
	out := make(map[byte]float64, len(r.perLetter))
	if total == 0 {
		return out
	}
	for l, n := range r.perLetter {
		out[l] = float64(n) / float64(total)
	}
	return out
}

// FlushCache drops all cached entries (for tests and phase boundaries).
func (r *Resolver) FlushCache() { r.cache = make(map[string]int) }
