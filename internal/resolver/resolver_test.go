package resolver

import (
	"testing"
)

// scriptedUpstream answers according to per-letter behaviour tables.
type scriptedUpstream struct {
	ok   map[byte]bool
	rtt  map[byte]float64
	hits map[byte]int
}

func (s *scriptedUpstream) Query(letter byte, minute int) (bool, float64) {
	if s.hits == nil {
		s.hits = map[byte]int{}
	}
	s.hits[letter]++
	return s.ok[letter], s.rtt[letter]
}

func newTestResolver(t *testing.T, mutate func(*Config)) *Resolver {
	t.Helper()
	cfg := DefaultConfig(1)
	cfg.Letters = []byte("ABC")
	cfg.ExploreProb = 0 // deterministic ordering in tests
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Letters = nil },
		func(c *Config) { c.MaxAttempts = 0 },
		func(c *Config) { c.SRTTDecay = 0 },
		func(c *Config) { c.SRTTDecay = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestResolveAndCache(t *testing.T) {
	r := newTestResolver(t, nil)
	up := &scriptedUpstream{ok: map[byte]bool{'A': true, 'B': true, 'C': true},
		rtt: map[byte]float64{'A': 20, 'B': 30, 'C': 40}}
	res := r.Resolve("example.com", 0, up)
	if !res.Served || res.Cached || res.Attempts != 1 {
		t.Fatalf("first = %+v", res)
	}
	// Second query inside TTL is served from cache without upstream.
	before := up.hits[res.Letter]
	res2 := r.Resolve("example.com", 10, up)
	if !res2.Cached || !res2.Served {
		t.Fatalf("second = %+v", res2)
	}
	if up.hits[res.Letter] != before {
		t.Error("cache hit still queried upstream")
	}
	// After TTL expiry the root is queried again.
	res3 := r.Resolve("example.com", 10+DefaultConfig(1).CacheTTLMinutes+120, up)
	if res3.Cached {
		t.Error("expired entry served from cache")
	}
	// served counts upstream-answered queries; cache hits are separate.
	q, hits, served, failed, _ := r.Stats()
	if q != 3 || hits != 1 || served != 2 || failed != 0 {
		t.Errorf("stats = %d/%d/%d/%d", q, hits, served, failed)
	}
}

func TestRetryAcrossLettersOnTimeout(t *testing.T) {
	r := newTestResolver(t, nil)
	// A (fastest initially, all equal -> order ABC) is dead; B answers.
	up := &scriptedUpstream{ok: map[byte]bool{'B': true}, rtt: map[byte]float64{'B': 35}}
	res := r.Resolve("x.com", 0, up)
	if !res.Served || res.Letter != 'B' || res.Attempts != 2 {
		t.Fatalf("result = %+v", res)
	}
	if !res.Flipped {
		t.Error("answering a non-first letter must count as a flip")
	}
	// Latency includes the timeout wait plus B's RTT.
	if res.LatencyMs != AttemptTimeoutMs+35 {
		t.Errorf("latency = %v", res.LatencyMs)
	}
	// A's SRTT must have been penalized so B is now preferred.
	if r.SRTT('A') <= r.SRTT('B') {
		t.Errorf("SRTT A=%v B=%v; timeout penalty not applied", r.SRTT('A'), r.SRTT('B'))
	}
	// Next query goes straight to B.
	res2 := r.Resolve("y.com", 0, up)
	if res2.Letter != 'B' || res2.Attempts != 1 || res2.Flipped {
		t.Errorf("after penalty = %+v", res2)
	}
}

func TestTotalFailure(t *testing.T) {
	r := newTestResolver(t, func(c *Config) { c.MaxAttempts = 3 })
	up := &scriptedUpstream{ok: map[byte]bool{}}
	res := r.Resolve("dead.com", 0, up)
	if res.Served || res.Attempts != 3 {
		t.Fatalf("result = %+v", res)
	}
	if res.LatencyMs != 3*AttemptTimeoutMs {
		t.Errorf("latency = %v", res.LatencyMs)
	}
	_, _, _, failed, _ := r.Stats()
	if failed != 1 {
		t.Errorf("failed = %d", failed)
	}
	// Failures are not cached: recovery is visible immediately.
	up.ok['A'] = true
	up.rtt = map[byte]float64{'A': 20}
	if res := r.Resolve("dead.com", 1, up); !res.Served {
		t.Error("recovered letter not used")
	}
}

func TestSRTTConvergesToFastest(t *testing.T) {
	r := newTestResolver(t, nil)
	up := &scriptedUpstream{ok: map[byte]bool{'A': true, 'B': true, 'C': true},
		rtt: map[byte]float64{'A': 150, 'B': 12, 'C': 90}}
	for i := 0; i < 50; i++ {
		r.FlushCache()
		r.Resolve("q.com", i, up)
	}
	share := r.LetterShare()
	if share['B'] < 0.5 {
		t.Errorf("B share = %v; prefer-fastest did not converge (%v)", share['B'], share)
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	r := newTestResolver(t, func(c *Config) { c.Strategy = RoundRobin; c.CacheTTLMinutes = 0 })
	up := &scriptedUpstream{ok: map[byte]bool{'A': true, 'B': true, 'C': true},
		rtt: map[byte]float64{'A': 10, 'B': 10, 'C': 10}}
	for i := 0; i < 30; i++ {
		r.FlushCache()
		r.Resolve("q.com", i, up)
	}
	share := r.LetterShare()
	for _, l := range []byte("ABC") {
		if share[l] < 0.25 || share[l] > 0.45 {
			t.Errorf("round-robin share[%c] = %v", l, share[l])
		}
	}
}

func TestUniformStrategyServes(t *testing.T) {
	r := newTestResolver(t, func(c *Config) { c.Strategy = Uniform; c.CacheTTLMinutes = 0 })
	up := &scriptedUpstream{ok: map[byte]bool{'A': true, 'B': true, 'C': true},
		rtt: map[byte]float64{'A': 10, 'B': 10, 'C': 10}}
	for i := 0; i < 20; i++ {
		r.FlushCache()
		if res := r.Resolve("q.com", i, up); !res.Served {
			t.Fatal("uniform strategy failed to serve")
		}
	}
	if len(r.LetterShare()) < 2 {
		t.Error("uniform strategy used fewer than 2 letters in 20 queries")
	}
}

func TestExplorationRefreshesEstimates(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Letters = []byte("AB")
	cfg.ExploreProb = 0.5
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	up := &scriptedUpstream{ok: map[byte]bool{'A': true, 'B': true},
		rtt: map[byte]float64{'A': 10, 'B': 20}}
	for i := 0; i < 60; i++ {
		r.FlushCache()
		r.Resolve("q.com", i, up)
	}
	if up.hits['B'] == 0 {
		t.Error("exploration never tried the slower letter")
	}
}

func TestStrategyString(t *testing.T) {
	if PreferFastest.String() != "prefer-fastest" || RoundRobin.String() != "round-robin" ||
		Uniform.String() != "uniform" || Strategy(9).String() != "Strategy(9)" {
		t.Error("strategy strings")
	}
}
