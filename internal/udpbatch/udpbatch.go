// Package udpbatch moves UDP datagrams in batches, amortizing the per-packet
// syscall and socket-lock cost that dominates a DNS flood workload.
//
// On linux/amd64 and linux/arm64 a Conn drives recvmmsg(2)/sendmmsg(2)
// through the runtime poller (syscall.RawConn), so one read-lock acquisition
// and one kernel crossing can move an entire batch; everywhere else it
// degrades to the stdlib's netip-based single-packet calls with the same
// API. Either way the steady-state path performs zero heap allocations: all
// message headers, iovecs, and sockaddr storage live in the Conn.
//
// Several Conns may wrap the same *net.UDPConn (one per server worker).
// Each Conn's batch state is single-goroutine; concurrency comes from many
// Conns, whose reads interleave under the socket's poller lock exactly like
// concurrent ReadFromUDP calls would. Deadlines set on the underlying
// *net.UDPConn are honored: a deadline wake surfaces as a net.Error with
// Timeout() == true, which is how the server drains its workers.
package udpbatch

import (
	"net"
	"net/netip"
)

// Message is one datagram in a batch. Buf is caller-owned backing storage;
// N is the datagram length within Buf (set by ReadBatch, read by
// WriteBatch); Addr is the peer (source after a read, destination for a
// write).
type Message struct {
	Buf  []byte
	N    int
	Addr netip.AddrPort
}

// Conn batches datagram I/O on a *net.UDPConn. Not safe for concurrent use;
// create one Conn per worker goroutine.
type Conn struct {
	conn *net.UDPConn
	os   osConn
}

// New wraps conn for batched I/O with at most batch messages per syscall.
func New(conn *net.UDPConn, batch int) (*Conn, error) {
	if batch < 1 {
		batch = 1
	}
	c := &Conn{conn: conn}
	if err := c.os.init(conn, batch); err != nil {
		return nil, err
	}
	return c, nil
}

// Batched reports whether the platform moves whole batches per syscall
// (false means the single-packet fallback is active).
func (c *Conn) Batched() bool { return batched }

// ReadBatch fills ms with received datagrams and returns how many arrived.
// It blocks until at least one datagram is available or the read deadline
// passes; it never waits to fill the whole batch.
func (c *Conn) ReadBatch(ms []Message) (int, error) { return c.os.readBatch(c.conn, ms) }

// WriteBatch sends ms[i].Buf[:ms[i].N] to ms[i].Addr for every message and
// returns how many were handed to the kernel before any error.
func (c *Conn) WriteBatch(ms []Message) (int, error) { return c.os.writeBatch(c.conn, ms) }
