//go:build !linux || !(amd64 || arm64)

package udpbatch

import "net"

const batched = false

// osConn is the portable fallback: the netip read/write calls are already
// allocation-free, they just move one datagram per syscall. ReadBatch
// returns after the first datagram (a blocking peek-ahead for more would
// trade latency for batching the platform cannot deliver anyway).
type osConn struct{}

func (c *osConn) init(*net.UDPConn, int) error { return nil }

func (c *osConn) readBatch(conn *net.UDPConn, ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := conn.ReadFromUDPAddrPort(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = addr
	return 1, nil
}

func (c *osConn) writeBatch(conn *net.UDPConn, ms []Message) (int, error) {
	for i := range ms {
		if _, err := conn.WriteToUDPAddrPort(ms[i].Buf[:ms[i].N], ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
