//go:build !linux || !(amd64 || arm64)

package udpbatch

const batched = false

// osConn on platforms without recvmmsg/sendmmsg support is the portable
// single-datagram implementation (see portable.go, which compiles — and is
// tested — everywhere).
type osConn = fallbackConn
