package udpbatch

import "net"

// fallbackConn is the portable implementation: the netip read/write calls
// are already allocation-free, they just move one datagram per syscall.
// readBatch returns after the first datagram (a blocking peek-ahead for
// more would trade latency for batching the platform cannot deliver
// anyway).
//
// It compiles on every platform — on batched platforms it is not wired
// into Conn, but the tests exercise it against the batched path to prove
// the two implementations are observationally equivalent, so the platforms
// that do fall back are covered by every CI run.
type fallbackConn struct{}

func (c *fallbackConn) init(*net.UDPConn, int) error { return nil }

func (c *fallbackConn) readBatch(conn *net.UDPConn, ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := conn.ReadFromUDPAddrPort(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = addr
	return 1, nil
}

func (c *fallbackConn) writeBatch(conn *net.UDPConn, ms []Message) (int, error) {
	for i := range ms {
		if _, err := conn.WriteToUDPAddrPort(ms[i].Buf[:ms[i].N], ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
