package udpbatch

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

func newPair(t *testing.T) (server, client *net.UDPConn) {
	t.Helper()
	var err error
	server, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	client, err = net.DialUDP("udp", nil, server.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return server, client
}

func newMessages(n, bufSize int) []Message {
	ms := make([]Message, n)
	for i := range ms {
		ms[i].Buf = make([]byte, bufSize)
	}
	return ms
}

// TestRoundTrip pushes a batch through both directions: client sends K
// datagrams, the server batch-reads them all, echoes each one back to its
// source via WriteBatch, and the client checks the payloads.
func TestRoundTrip(t *testing.T) {
	serverConn, clientConn := newPair(t)
	server, err := New(serverConn, 8)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	for i := 0; i < k; i++ {
		if _, err := clientConn.Write([]byte(fmt.Sprintf("ping-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ms := newMessages(8, 512)
	got := 0
	seen := make(map[string]bool)
	serverConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for got < k {
		n, err := server.ReadBatch(ms[:k-got])
		if err != nil {
			t.Fatalf("ReadBatch after %d: %v", got, err)
		}
		if n == 0 {
			t.Fatal("ReadBatch returned 0 without error")
		}
		for i := 0; i < n; i++ {
			seen[string(ms[i].Buf[:ms[i].N])] = true
			if !ms[i].Addr.IsValid() {
				t.Fatalf("message %d has invalid source address", got+i)
			}
		}
		if sent, err := server.WriteBatch(ms[:n]); err != nil || sent != n {
			t.Fatalf("WriteBatch: sent %d of %d, err %v", sent, n, err)
		}
		got += n
	}
	for i := 0; i < k; i++ {
		if !seen[fmt.Sprintf("ping-%d", i)] {
			t.Fatalf("datagram ping-%d never arrived; got %v", i, seen)
		}
	}
	buf := make([]byte, 512)
	clientConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	echoed := make(map[string]bool)
	for i := 0; i < k; i++ {
		n, err := clientConn.Read(buf)
		if err != nil {
			t.Fatalf("echo read %d: %v", i, err)
		}
		echoed[string(buf[:n])] = true
	}
	for s := range seen {
		if !echoed[s] {
			t.Fatalf("echo of %q never returned; got %v", s, echoed)
		}
	}
}

// TestReadBatchDeadline checks that a deadline on the wrapped conn wakes a
// blocked batch read with a timeout net.Error — the server's drain path.
func TestReadBatchDeadline(t *testing.T) {
	serverConn, _ := newPair(t)
	server, err := New(serverConn, 4)
	if err != nil {
		t.Fatal(err)
	}
	serverConn.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err = server.ReadBatch(newMessages(4, 512))
	if err == nil {
		t.Fatal("ReadBatch returned without error on an idle socket")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %T %v", err, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline wake took implausibly long")
	}
}

// TestSteadyStateAllocs holds both directions to zero heap allocations once
// the Conn is constructed.
func TestSteadyStateAllocs(t *testing.T) {
	serverConn, clientConn := newPair(t)
	server, err := New(serverConn, 4)
	if err != nil {
		t.Fatal(err)
	}
	client, err := New(clientConn, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := clientConn.RemoteAddr().(*net.UDPAddr).AddrPort()
	out := newMessages(1, 64)
	out[0].N = copy(out[0].Buf, "ping")
	out[0].Addr = dst
	in := newMessages(4, 512)
	serverConn.SetReadDeadline(time.Now().Add(10 * time.Second))

	if n := testing.AllocsPerRun(100, func() {
		if _, err := client.WriteBatch(out); err != nil {
			t.Fatal(err)
		}
		if _, err := server.ReadBatch(in); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("batch round trip allocates %.1f allocs/op, want 0", n)
	}
	if got := in[0].Addr.Port(); got != clientConn.LocalAddr().(*net.UDPAddr).AddrPort().Port() {
		t.Fatalf("source port %d does not match client %v", got, clientConn.LocalAddr())
	}
}

// TestWriteBatchToListener sends one batch from an unconnected socket to
// explicit destinations — the prober/floodbench usage.
func TestWriteBatchToListener(t *testing.T) {
	serverConn, _ := newPair(t)
	src, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	sender, err := New(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := serverConn.LocalAddr().(*net.UDPAddr).AddrPort()
	ms := newMessages(3, 64)
	for i := range ms {
		ms[i].N = copy(ms[i].Buf, fmt.Sprintf("q-%d", i))
		ms[i].Addr = dst
	}
	if n, err := sender.WriteBatch(ms); err != nil || n != len(ms) {
		t.Fatalf("WriteBatch: %d, %v", n, err)
	}
	buf := make([]byte, 64)
	serverConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < len(ms); i++ {
		n, addr, err := serverConn.ReadFromUDPAddrPort(buf)
		if err != nil {
			t.Fatal(err)
		}
		if addr.Port() != src.LocalAddr().(*net.UDPAddr).AddrPort().Port() {
			t.Fatalf("datagram %d from %v, want source port %v", i, addr, src.LocalAddr())
		}
		if string(buf[:n])[:2] != "q-" {
			t.Fatalf("unexpected payload %q", buf[:n])
		}
	}
}
