//go:build linux && arm64

package udpbatch

// The frozen syscall package predates sendmmsg, so the numbers live here
// (arch-specific files, matching the kernel's tables).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
