//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

const batched = true

// mmsghdr mirrors struct mmsghdr from recvmmsg(2): a plain msghdr plus the
// kernel-filled datagram length. Both supported arches are 64-bit, so the
// trailing pad brings the struct to the kernel's 64-byte layout.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// osConn is the per-Conn mmsg state. The syscall callbacks are built once
// in init and communicate through the struct fields, so the hot path never
// allocates a closure; cur/off/n/errno are only touched while the poller
// holds the fd's read or write lock on behalf of this goroutine.
type osConn struct {
	rc    syscall.RawConn
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny

	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
	cur     int // messages in the current batch
	off     int // messages already sent (write path)
	n       int // result of the last syscall
	errno   syscall.Errno
}

func (c *osConn) init(conn *net.UDPConn, batch int) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	c.rc = rc
	c.hdrs = make([]mmsghdr, batch)
	c.iovs = make([]syscall.Iovec, batch)
	c.names = make([]syscall.RawSockaddrAny, batch)
	c.readFn = func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&c.hdrs[0])), uintptr(c.cur), 0, 0, 0)
		if e == syscall.EAGAIN {
			return false // not readable yet; poller waits for the fd
		}
		c.n, c.errno = int(n), e
		return true
	}
	c.writeFn = func(fd uintptr) bool {
		n, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&c.hdrs[c.off])), uintptr(c.cur-c.off), 0, 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		c.n, c.errno = int(n), e
		return true
	}
	return nil
}

func (c *osConn) readBatch(_ *net.UDPConn, ms []Message) (int, error) {
	if len(ms) > len(c.hdrs) {
		ms = ms[:len(c.hdrs)]
	}
	for i := range ms {
		c.iovs[i].Base = &ms[i].Buf[0]
		c.iovs[i].SetLen(len(ms[i].Buf))
		h := &c.hdrs[i]
		h.hdr.Name = (*byte)(unsafe.Pointer(&c.names[i]))
		h.hdr.Namelen = uint32(unsafe.Sizeof(c.names[i]))
		h.hdr.Iov = &c.iovs[i]
		h.hdr.Iovlen = 1
		h.len = 0
	}
	c.cur = len(ms)
	if err := c.rc.Read(c.readFn); err != nil {
		return 0, err
	}
	if c.errno != 0 {
		return 0, c.errno
	}
	for i := 0; i < c.n; i++ {
		ms[i].N = int(c.hdrs[i].len)
		ms[i].Addr = sockaddrToAddrPort(&c.names[i])
	}
	return c.n, nil
}

func (c *osConn) writeBatch(_ *net.UDPConn, ms []Message) (int, error) {
	if len(ms) > len(c.hdrs) {
		ms = ms[:len(c.hdrs)]
	}
	for i := range ms {
		c.iovs[i].Base = &ms[i].Buf[0]
		c.iovs[i].SetLen(ms[i].N)
		h := &c.hdrs[i]
		h.hdr.Name = (*byte)(unsafe.Pointer(&c.names[i]))
		h.hdr.Namelen = putSockaddr(&c.names[i], ms[i].Addr)
		h.hdr.Iov = &c.iovs[i]
		h.hdr.Iovlen = 1
	}
	c.cur, c.off = len(ms), 0
	// sendmmsg may accept fewer messages than asked; resume at the cut.
	for c.off < c.cur {
		if err := c.rc.Write(c.writeFn); err != nil {
			return c.off, err
		}
		if c.errno != 0 {
			return c.off, c.errno
		}
		c.off += c.n
	}
	return c.off, nil
}

// htons converts a port to network byte order; both supported arches are
// little-endian, so this is an unconditional swap.
func htons(p uint16) uint16 { return p>>8 | p<<8 }

// sockaddrToAddrPort converts a kernel-filled sockaddr without allocating.
func sockaddrToAddrPort(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), htons(sa.Port))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), htons(sa.Port))
	default:
		return netip.AddrPort{}
	}
}

// putSockaddr fills rsa for ap and returns the sockaddr length. 4-in-6
// mapped addresses are unmapped so an IPv4-only socket accepts them.
func putSockaddr(rsa *syscall.RawSockaddrAny, ap netip.AddrPort) uint32 {
	a := ap.Addr()
	if a.Is4() || a.Is4In6() {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		sa.Family = syscall.AF_INET
		sa.Port = htons(ap.Port())
		sa.Addr = a.As4()
		return syscall.SizeofSockaddrInet4
	}
	sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
	sa.Family = syscall.AF_INET6
	sa.Port = htons(ap.Port())
	sa.Addr = a.As16()
	sa.Flowinfo = 0
	sa.Scope_id = 0
	return syscall.SizeofSockaddrInet6
}
