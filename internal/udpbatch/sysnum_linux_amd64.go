//go:build linux && amd64

package udpbatch

// The frozen syscall package predates sendmmsg, so the numbers live here
// (arch-specific files, matching the kernel's tables).
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
