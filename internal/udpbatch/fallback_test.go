package udpbatch

// The portable fallback (fallbackConn) is what every non-linux/amd64/arm64
// platform runs, but CI is linux — so these tests drive fallbackConn
// directly, on every platform, and check it is observationally equivalent
// to whatever implementation Conn wired in.

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"
)

func TestFallbackEmptyBatch(t *testing.T) {
	serverConn, _ := newPair(t)
	var fb fallbackConn
	if err := fb.init(serverConn, 8); err != nil {
		t.Fatal(err)
	}
	if n, err := fb.readBatch(serverConn, nil); n != 0 || err != nil {
		t.Fatalf("readBatch(nil) = %d, %v", n, err)
	}
	if n, err := fb.writeBatch(serverConn, nil); n != 0 || err != nil {
		t.Fatalf("writeBatch(nil) = %d, %v", n, err)
	}
}

// TestFallbackOneDatagramPerCall pins the contract the server loop relies
// on: with several datagrams queued and room for all of them, the fallback
// still returns exactly one per call, each with its source address.
func TestFallbackOneDatagramPerCall(t *testing.T) {
	serverConn, clientConn := newPair(t)
	var fb fallbackConn
	const k = 4
	for i := 0; i < k; i++ {
		if _, err := clientConn.Write([]byte(fmt.Sprintf("ping-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	serverConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	ms := newMessages(8, 512)
	var got []string
	for len(got) < k {
		n, err := fb.readBatch(serverConn, ms)
		if err != nil {
			t.Fatalf("readBatch after %d: %v", len(got), err)
		}
		if n != 1 {
			t.Fatalf("readBatch returned %d datagrams, want exactly 1", n)
		}
		if !ms[0].Addr.IsValid() {
			t.Fatal("datagram has no source address")
		}
		got = append(got, string(ms[0].Buf[:ms[0].N]))
	}
	sort.Strings(got)
	for i, s := range got {
		if want := fmt.Sprintf("ping-%d", i); s != want {
			t.Fatalf("payloads %v, want ping-0..ping-%d", got, k-1)
		}
	}
}

// TestFallbackDeadline checks the drain-path contract on the fallback: a
// read deadline on the wrapped conn surfaces as a timeout net.Error.
func TestFallbackDeadline(t *testing.T) {
	serverConn, _ := newPair(t)
	var fb fallbackConn
	serverConn.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	n, err := fb.readBatch(serverConn, newMessages(4, 512))
	if n != 0 || err == nil {
		t.Fatalf("readBatch on idle socket = %d, %v", n, err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %T %v", err, err)
	}
	// A deadline already in the past must also fail writes mid-batch with
	// the partial count.
	serverConn.SetWriteDeadline(time.Unix(1, 0))
	ms := newMessages(2, 64)
	for i := range ms {
		ms[i].N = copy(ms[i].Buf, "x")
		ms[i].Addr = serverConn.LocalAddr().(*net.UDPAddr).AddrPort()
	}
	if sent, err := fb.writeBatch(serverConn, ms); err == nil || sent != 0 {
		t.Fatalf("writeBatch past deadline = %d, %v", sent, err)
	}
}

// TestFallbackEquivalence runs the same echo workload through the Conn
// (batched where the platform supports it) and through fallbackConn and
// requires identical observable results: same payload set, same sources,
// zero steady-state allocations. On linux CI this is the cross-check that
// keeps the portable path honest.
func TestFallbackEquivalence(t *testing.T) {
	type batchIO struct {
		read  func([]Message) (int, error)
		write func([]Message) (int, error)
	}
	run := func(t *testing.T, mk func(*net.UDPConn) batchIO) map[string]bool {
		t.Helper()
		serverConn, clientConn := newPair(t)
		io := mk(serverConn)
		const k = 6
		for i := 0; i < k; i++ {
			if _, err := clientConn.Write([]byte(fmt.Sprintf("echo-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		serverConn.SetReadDeadline(time.Now().Add(5 * time.Second))
		ms := newMessages(8, 512)
		got := 0
		for got < k {
			n, err := io.read(ms[:k-got])
			if err != nil {
				t.Fatalf("read after %d: %v", got, err)
			}
			if n < 1 {
				t.Fatal("read returned 0 without error")
			}
			if sent, err := io.write(ms[:n]); err != nil || sent != n {
				t.Fatalf("write: %d of %d, %v", sent, n, err)
			}
			got += n
		}
		buf := make([]byte, 512)
		clientConn.SetReadDeadline(time.Now().Add(5 * time.Second))
		echoed := make(map[string]bool)
		for i := 0; i < k; i++ {
			n, err := clientConn.Read(buf)
			if err != nil {
				t.Fatalf("echo read %d: %v", i, err)
			}
			echoed[string(buf[:n])] = true
		}
		return echoed
	}

	viaFallback := run(t, func(c *net.UDPConn) batchIO {
		var fb fallbackConn
		return batchIO{
			read:  func(ms []Message) (int, error) { return fb.readBatch(c, ms) },
			write: func(ms []Message) (int, error) { return fb.writeBatch(c, ms) },
		}
	})
	viaPlatform := run(t, func(c *net.UDPConn) batchIO {
		platform, err := New(c, 8)
		if err != nil {
			t.Fatal(err)
		}
		return batchIO{read: platform.ReadBatch, write: platform.WriteBatch}
	})

	if len(viaFallback) != len(viaPlatform) {
		t.Fatalf("fallback echoed %v, platform echoed %v", viaFallback, viaPlatform)
	}
	for s := range viaFallback {
		if !viaPlatform[s] {
			t.Fatalf("payload %q echoed by fallback but not the platform path", s)
		}
	}
}

// TestFallbackSteadyStateAllocs holds the portable path to the same
// zero-allocation bar the batched path meets.
func TestFallbackSteadyStateAllocs(t *testing.T) {
	serverConn, _ := newPair(t)
	// The portable writeBatch uses WriteToUDPAddrPort, which the stdlib
	// rejects on connected sockets — send from an unconnected one, as the
	// prober does.
	sender, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	var fb fallbackConn
	dst := serverConn.LocalAddr().(*net.UDPAddr).AddrPort()
	out := newMessages(1, 64)
	out[0].N = copy(out[0].Buf, "ping")
	out[0].Addr = dst
	in := newMessages(4, 512)
	serverConn.SetReadDeadline(time.Now().Add(10 * time.Second))

	if n := testing.AllocsPerRun(100, func() {
		if _, err := fb.writeBatch(sender, out); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.readBatch(serverConn, in); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("fallback round trip allocates %.1f allocs/op, want 0", n)
	}
}
