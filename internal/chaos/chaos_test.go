package chaos

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatParseRoundTripAllLetters(t *testing.T) {
	sites := []string{"AMS", "LHR", "FRA", "NRT", "IAD", "SYD"}
	for _, letter := range Letters() {
		for _, site := range sites {
			for _, server := range []int{1, 2, 3, 12} {
				txt, err := Format(letter, site, server)
				if err != nil {
					t.Fatalf("Format(%c,%s,%d): %v", letter, site, server, err)
				}
				id, err := Parse(letter, txt)
				if err != nil {
					t.Fatalf("Parse(%c,%q): %v", letter, txt, err)
				}
				want := Identity{Letter: letter, Site: site, Server: server}
				if id != want {
					t.Errorf("round trip %c/%s/%d -> %+v", letter, site, server, id)
				}
			}
		}
	}
}

func TestPatternsAreDistinctAcrossLetters(t *testing.T) {
	// A reply from letter X must not parse as any other letter; otherwise
	// catchment mapping would mis-attribute sites.
	for _, from := range Letters() {
		txt := MustFormat(from, "AMS", 1)
		for _, as := range Letters() {
			if as == from {
				continue
			}
			if Matches(as, txt) {
				t.Errorf("reply %q from %c also parses as %c", txt, from, as)
			}
		}
	}
}

func TestParseAny(t *testing.T) {
	txt := MustFormat('K', "AMS", 2)
	id, ok := ParseAny(txt)
	if !ok || id.Letter != 'K' || id.Site != "AMS" || id.Server != 2 {
		t.Errorf("ParseAny(%q) = %+v, %v", txt, id, ok)
	}
	if _, ok := ParseAny("totally.bogus.reply"); ok {
		t.Error("ParseAny should reject unknown replies")
	}
}

func TestParseRejectsHijackedReplies(t *testing.T) {
	// Strings a third-party (hijacking) resolver might return.
	bogus := []string{
		"", "localhost", "dnsmasq-2.76", "google-public-dns-a.google.com",
		"ns1.k.ripe.net",          // missing site label
		"ns0.ams.k.ripe.net",      // server index 0 invalid
		"nsX.ams.k.ripe.net",      // non-numeric
		"ns1.amst.k.ripe.net",     // 4-letter site
		"ns1.am1.k.ripe.net",      // digit inside site code
		"rootns-ams.verisign.com", // A pattern without server number
	}
	for _, txt := range bogus {
		if Matches('K', txt) {
			t.Errorf("Matches(K, %q) = true, want false", txt)
		}
	}
}

func TestParseCaseAndSpaceInsensitive(t *testing.T) {
	id, err := Parse('K', "  NS3.AMS.K.RIPE.NET \n")
	if err != nil || id.Site != "AMS" || id.Server != 3 {
		t.Errorf("Parse uppercase = %+v, %v", id, err)
	}
}

func TestFormatErrors(t *testing.T) {
	if _, err := Format('Z', "AMS", 1); !errors.Is(err, ErrUnknownLetter) {
		t.Errorf("unknown letter err = %v", err)
	}
	if _, err := Format('K', "AMS", 0); err == nil {
		t.Error("server 0 should fail")
	}
	if _, err := Format('K', "AMST", 1); err == nil {
		t.Error("4-letter site should fail")
	}
	if _, err := Format('K', "A1S", 1); err == nil {
		t.Error("site with digit should fail")
	}
}

func TestParseUnknownLetter(t *testing.T) {
	if _, err := Parse('Q', "x"); !errors.Is(err, ErrUnknownLetter) {
		t.Errorf("err = %v", err)
	}
}

func TestIdentityStrings(t *testing.T) {
	id := Identity{Letter: 'K', Site: "AMS", Server: 2}
	if id.String() != "K-AMS-S2" {
		t.Errorf("String = %q", id.String())
	}
	if id.SiteName() != "K-AMS" {
		t.Errorf("SiteName = %q", id.SiteName())
	}
}

func TestLettersComplete(t *testing.T) {
	ls := Letters()
	if len(ls) != 13 || ls[0] != 'A' || ls[12] != 'M' {
		t.Errorf("Letters() = %v", ls)
	}
	for _, l := range ls {
		if _, ok := patterns[l]; !ok {
			t.Errorf("letter %c has no pattern", l)
		}
	}
}

// Property: Format->Parse is the identity for any valid (letter, site,
// server) triple.
func TestRoundTripProperty(t *testing.T) {
	letters := Letters()
	f := func(li uint8, a, b, c uint8, server uint16) bool {
		letter := letters[int(li)%len(letters)]
		site := string([]byte{'A' + a%26, 'A' + b%26, 'A' + c%26})
		srv := int(server%200) + 1
		txt, err := Format(letter, site, srv)
		if err != nil {
			return false
		}
		id, err := Parse(letter, txt)
		return err == nil && id.Letter == letter && id.Site == site && id.Server == srv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Parse never panics on arbitrary input and never fabricates a
// site code that was not three letters.
func TestParseRobustness(t *testing.T) {
	f := func(txt string) bool {
		for _, l := range Letters() {
			id, err := Parse(l, txt)
			if err == nil {
				if len(id.Site) != 3 || id.Server < 1 {
					return false
				}
				if strings.ToUpper(id.Site) != id.Site {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseK(b *testing.B) {
	txt := MustFormat('K', "AMS", 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse('K', txt); err != nil {
			b.Fatal(err)
		}
	}
}
