// Package chaos formats and parses the CHAOS-class TXT identities that root
// letters return for hostname.bind / id.server queries (RFC 4892).
//
// Each real root letter answers with its own site/server naming convention;
// the reply format is not standardized, but each letter follows a pattern
// that can be parsed to determine the site and server a vantage point
// reaches (§2.1 of the paper, following Fan et al.). This package defines
// one documented pattern per letter — modeled on the publicly observable
// conventions — and a strict parser that recovers (letter, site, server)
// from a reply string. Replies that match no known pattern feed the
// hijack-detection heuristic in the atlas package.
package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Identity identifies the server that answered a CHAOS query.
type Identity struct {
	Letter byte   // 'A'..'M'
	Site   string // IATA airport code, upper case, e.g. "AMS"
	Server int    // 1-based server index within the site
}

// String renders the identity in the paper's X-APT-Sn notation.
func (id Identity) String() string {
	return fmt.Sprintf("%c-%s-S%d", id.Letter, id.Site, id.Server)
}

// SiteName renders the X-APT site name used throughout the paper's figures.
func (id Identity) SiteName() string {
	return fmt.Sprintf("%c-%s", id.Letter, id.Site)
}

// Errors returned by the parser.
var (
	ErrUnknownLetter   = errors.New("chaos: unknown root letter")
	ErrPatternMismatch = errors.New("chaos: reply does not match letter pattern")
)

// pattern describes one letter's identity convention as a printf-style
// template over (site, server) plus a matching parser. Site codes appear in
// lower case on the wire.
type pattern struct {
	format func(site string, server int) string
	parse  func(txt string) (site string, server int, err error)
}

// trailing splits "prefixN" into ("prefix", N) where N is the longest
// numeric suffix.
func trailing(s string) (string, int, bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return "", 0, false
	}
	n, err := strconv.Atoi(s[i:])
	if err != nil {
		return "", 0, false
	}
	return s[:i], n, true
}

// sitePart validates a lower-case IATA code and returns it in upper case.
func sitePart(s string) (string, bool) {
	if len(s) != 3 {
		return "", false
	}
	for i := 0; i < 3; i++ {
		if s[i] < 'a' || s[i] > 'z' {
			return "", false
		}
	}
	return strings.ToUpper(s), true
}

// prefixNumSite parses "<prefix><n>.<site>.<suffix>".
func prefixNumSite(prefix, suffix string) func(string) (string, int, error) {
	return func(txt string) (string, int, error) {
		body, ok := strings.CutSuffix(txt, suffix)
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		rest, ok := strings.CutPrefix(body, prefix)
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		numStr, siteStr, ok := strings.Cut(rest, ".")
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		n, err := strconv.Atoi(numStr)
		if err != nil || n < 1 {
			return "", 0, ErrPatternMismatch
		}
		site, ok := sitePart(siteStr)
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		return site, n, nil
	}
}

// siteNumSuffix parses "<site><n>.<suffix>".
func siteNumSuffix(suffix string) func(string) (string, int, error) {
	return func(txt string) (string, int, error) {
		body, ok := strings.CutSuffix(txt, suffix)
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		prefix, n, ok := trailing(body)
		if !ok || n < 1 {
			return "", 0, ErrPatternMismatch
		}
		site, ok := sitePart(prefix)
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		return site, n, nil
	}
}

// dashSiteNum parses "<prefix>-<site><n>" or "<prefix>-<site>-<n>".
func dashSiteNum(prefix string, dashed bool, suffix string) func(string) (string, int, error) {
	return func(txt string) (string, int, error) {
		body, ok := strings.CutSuffix(txt, suffix)
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		rest, ok := strings.CutPrefix(body, prefix+"-")
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		if dashed {
			siteStr, numStr, ok := strings.Cut(rest, "-")
			if !ok {
				return "", 0, ErrPatternMismatch
			}
			n, err := strconv.Atoi(numStr)
			if err != nil || n < 1 {
				return "", 0, ErrPatternMismatch
			}
			site, ok := sitePart(siteStr)
			if !ok {
				return "", 0, ErrPatternMismatch
			}
			return site, n, nil
		}
		siteStr, n, ok := trailing(rest)
		if !ok || n < 1 {
			return "", 0, ErrPatternMismatch
		}
		site, ok := sitePart(siteStr)
		if !ok {
			return "", 0, ErrPatternMismatch
		}
		return site, n, nil
	}
}

// patterns maps each letter to its convention. Conventions are stable per
// letter and intentionally distinct in shape, mirroring the diversity of
// the real deployments.
var patterns = map[byte]pattern{
	'A': {
		format: func(site string, server int) string {
			return fmt.Sprintf("rootns-%s%d.verisign.com", strings.ToLower(site), server)
		},
		parse: dashSiteNum("rootns", false, ".verisign.com"),
	},
	'B': {
		format: func(site string, server int) string {
			return fmt.Sprintf("b%d.%s.isi.edu", server, strings.ToLower(site))
		},
		parse: prefixNumSite("b", ".isi.edu"),
	},
	'C': {
		format: func(site string, server int) string {
			return fmt.Sprintf("%s%db.c.root-servers.org", strings.ToLower(site), server)
		},
		parse: siteNumSuffix("b.c.root-servers.org"),
	},
	'D': {
		format: func(site string, server int) string {
			return fmt.Sprintf("d%d.%s.droot.maryland.edu", server, strings.ToLower(site))
		},
		parse: prefixNumSite("d", ".droot.maryland.edu"),
	},
	'E': {
		format: func(site string, server int) string {
			return fmt.Sprintf("e%d.%s.eroot.nasa.gov", server, strings.ToLower(site))
		},
		parse: prefixNumSite("e", ".eroot.nasa.gov"),
	},
	'F': {
		format: func(site string, server int) string {
			return fmt.Sprintf("%s%d.f.root-servers.org", strings.ToLower(site), server)
		},
		parse: siteNumSuffix(".f.root-servers.org"),
	},
	'G': {
		format: func(site string, server int) string {
			return fmt.Sprintf("groot-%s-%d.disa.mil", strings.ToLower(site), server)
		},
		parse: dashSiteNum("groot", true, ".disa.mil"),
	},
	'H': {
		format: func(site string, server int) string {
			return fmt.Sprintf("h%d.%s.aos.arl.army.mil", server, strings.ToLower(site))
		},
		parse: prefixNumSite("h", ".aos.arl.army.mil"),
	},
	'I': {
		format: func(site string, server int) string {
			return fmt.Sprintf("s%d.%s.i.root-servers.org", server, strings.ToLower(site))
		},
		parse: prefixNumSite("s", ".i.root-servers.org"),
	},
	'J': {
		format: func(site string, server int) string {
			return fmt.Sprintf("rootnsj-%s%d.verisign.com", strings.ToLower(site), server)
		},
		parse: dashSiteNum("rootnsj", false, ".verisign.com"),
	},
	'K': {
		format: func(site string, server int) string {
			return fmt.Sprintf("ns%d.%s.k.ripe.net", server, strings.ToLower(site))
		},
		parse: prefixNumSite("ns", ".k.ripe.net"),
	},
	'L': {
		format: func(site string, server int) string {
			return fmt.Sprintf("%s%d.l.root-servers.org", strings.ToLower(site), server)
		},
		parse: siteNumSuffix(".l.root-servers.org"),
	},
	'M': {
		format: func(site string, server int) string {
			return fmt.Sprintf("m%d.%s.wide.ad.jp", server, strings.ToLower(site))
		},
		parse: prefixNumSite("m", ".wide.ad.jp"),
	},
}

// Letters returns the 13 root letters in order.
func Letters() []byte {
	return []byte{'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M'}
}

// Format renders the CHAOS TXT identity a given letter's server returns.
func Format(letter byte, site string, server int) (string, error) {
	p, ok := patterns[letter]
	if !ok {
		return "", ErrUnknownLetter
	}
	if server < 1 {
		return "", fmt.Errorf("chaos: server index %d: must be >= 1", server)
	}
	if _, ok := sitePart(strings.ToLower(site)); !ok {
		return "", fmt.Errorf("chaos: site %q: must be a 3-letter code", site)
	}
	return p.format(site, server), nil
}

// MustFormat is Format for compile-time-constant inputs (tests and built-in
// tables); it panics on error. Identities derived from configuration must go
// through Format so malformed site codes surface as errors.
func MustFormat(letter byte, site string, server int) string {
	s, err := Format(letter, site, server)
	if err != nil {
		//repolint:allow panic -- Must* contract: inputs are compile-time constants
		panic(err)
	}
	return s
}

// Parse interprets txt as an identity reply from the given letter.
func Parse(letter byte, txt string) (Identity, error) {
	p, ok := patterns[letter]
	if !ok {
		return Identity{}, ErrUnknownLetter
	}
	site, server, err := p.parse(strings.ToLower(strings.TrimSpace(txt)))
	if err != nil {
		return Identity{}, fmt.Errorf("letter %c, reply %q: %w", letter, txt, err)
	}
	return Identity{Letter: letter, Site: site, Server: server}, nil
}

// ParseAny tries all letters and returns the first match. Useful when the
// querier does not know which service answered (e.g. hijack forensics).
func ParseAny(txt string) (Identity, bool) {
	for _, l := range Letters() {
		if id, err := Parse(l, txt); err == nil {
			return id, true
		}
	}
	return Identity{}, false
}

// Matches reports whether txt is a well-formed identity for the letter.
// The atlas cleaning stage flags VPs whose replies fail this check and whose
// RTTs are implausibly short as hijacked (§2.4.1).
func Matches(letter byte, txt string) bool {
	_, err := Parse(letter, txt)
	return err == nil
}
