package chaos

import "testing"

// FuzzParseAny guards the identity parsers against arbitrary reply strings
// (hijacked VPs return attacker-controlled text, §2.4.1).
func FuzzParseAny(f *testing.F) {
	f.Add("ns1.ams.k.ripe.net")
	f.Add("rootns-lax1.verisign.com")
	f.Add("dnsmasq-2.76")
	f.Add("")
	f.Fuzz(func(t *testing.T, txt string) {
		id, ok := ParseAny(txt)
		if !ok {
			return
		}
		if len(id.Site) != 3 || id.Server < 1 {
			t.Fatalf("malformed identity accepted: %+v from %q", id, txt)
		}
		// A parsed identity must re-format and re-parse to itself.
		out, err := Format(id.Letter, id.Site, id.Server)
		if err != nil {
			t.Fatalf("parsed identity does not format: %v", err)
		}
		id2, err := Parse(id.Letter, out)
		if err != nil || id2 != id {
			t.Fatalf("identity not stable: %+v -> %q -> %+v (%v)", id, out, id2, err)
		}
	})
}
