package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		if got := Mean(tt.in); !almostEqual(got, tt.want) {
			t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !almostEqual(got, 2) {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almostEqual(got, 2.5) {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 25) {
		t.Errorf("q0.5 = %v, want 25", got)
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2) {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v,%v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("empty MinMax err = %v, want ErrEmpty", err)
	}
}

func TestLinearPerfectFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2) || !almostEqual(fit.Intercept, 1) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearNoise(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99 for near-linear data", fit.R2)
	}
	if fit.Slope < 1.8 || fit.Slope > 2.2 {
		t.Errorf("slope = %v, want ~2", fit.Slope)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for n<2")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := Linear([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("want error for degenerate x")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 16, 64) // RSSAC-style 16-byte bins
	h.Add(35, 100)               // 32-47 bin => index 2
	h.Add(490, 50)               // index 30
	h.Add(-5, 1)                 // clamped to bin 0
	h.Add(1e9, 1)                // clamped to last bin
	if h.Counts[2] != 100 {
		t.Errorf("bin 2 = %d, want 100", h.Counts[2])
	}
	if h.Counts[30] != 50 {
		t.Errorf("bin 30 = %d, want 50", h.Counts[30])
	}
	if h.Counts[0] != 1 || h.Counts[63] != 1 {
		t.Error("clamping failed")
	}
	if h.Total() != 152 {
		t.Errorf("Total = %d, want 152", h.Total())
	}
	if h.ArgMax() != 2 {
		t.Errorf("ArgMax = %d, want 2", h.ArgMax())
	}
	lo, hi := h.BinRange(2)
	if lo != 32 || hi != 48 {
		t.Errorf("BinRange(2) = %v,%v", lo, hi)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 16, 4)
	b := NewHistogram(0, 16, 4)
	a.Add(1, 5)
	b.Add(1, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 12 {
		t.Errorf("merged bin 0 = %d", a.Counts[0])
	}
	c := NewHistogram(0, 8, 4)
	if err := a.Merge(c); err == nil {
		t.Error("want shape mismatch error")
	}
}

// Property: Quantile is monotone in q and bounded by min/max.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		min, max, _ := MinMax(xs)
		return v1 <= v2+1e-9 && v1 >= min-1e-9 && v2 <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile agrees with QuantileSorted.
func TestQuantileSortedAgrees(t *testing.T) {
	f := func(xs []float64, q float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		q = math.Abs(math.Mod(q, 1))
		sorted := make([]float64, len(clean))
		copy(sorted, clean)
		sort.Float64s(sorted)
		a := Quantile(clean, q)
		b := QuantileSorted(sorted, q)
		return (len(clean) == 0 && a == 0 && b == 0) || almostEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: histogram Total equals the sum of added weights regardless of
// value placement (conservation).
func TestHistogramConservation(t *testing.T) {
	f := func(vals []float64, weights []uint8) bool {
		h := NewHistogram(0, 10, 32)
		n := len(vals)
		if len(weights) < n {
			n = len(weights)
		}
		var want int64
		for i := 0; i < n; i++ {
			v := vals[i]
			if math.IsNaN(v) {
				continue
			}
			h.Add(v, int64(weights[i]))
			want += int64(weights[i])
		}
		return h.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
