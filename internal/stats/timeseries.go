package stats

import (
	"errors"
	"fmt"
)

// Series is a regularly sampled time series: Values[i] is the value of the
// bin starting at StartMinute + i*BinMinutes (minutes since the simulation
// epoch, 2015-11-30T00:00Z).
//
// All of the paper's figures are time series in 10-minute bins over the two
// event days; Series is the common currency between the analysis and report
// packages.
type Series struct {
	Name        string
	StartMinute int
	BinMinutes  int
	Values      []float64
}

// NewSeries allocates a zeroed series of n bins.
func NewSeries(name string, startMinute, binMinutes, n int) *Series {
	if binMinutes <= 0 || n < 0 {
		panic("stats: invalid series shape")
	}
	return &Series{Name: name, StartMinute: startMinute, BinMinutes: binMinutes, Values: make([]float64, n)}
}

// Bins returns the number of bins.
func (s *Series) Bins() int { return len(s.Values) }

// BinFor returns the bin index containing the given absolute minute, and
// whether it falls inside the series.
func (s *Series) BinFor(minute int) (int, bool) {
	i := (minute - s.StartMinute) / s.BinMinutes
	if minute < s.StartMinute || i >= len(s.Values) {
		return 0, false
	}
	return i, true
}

// MinuteFor returns the starting absolute minute of bin i.
func (s *Series) MinuteFor(i int) int { return s.StartMinute + i*s.BinMinutes }

// Min returns the minimum value and its bin index; ErrEmpty if no bins.
func (s *Series) Min() (float64, int, error) {
	if len(s.Values) == 0 {
		return 0, 0, ErrEmpty
	}
	best := 0
	for i, v := range s.Values {
		if v < s.Values[best] {
			best = i
		}
	}
	return s.Values[best], best, nil
}

// Max returns the maximum value and its bin index; ErrEmpty if no bins.
func (s *Series) Max() (float64, int, error) {
	if len(s.Values) == 0 {
		return 0, 0, ErrEmpty
	}
	best := 0
	for i, v := range s.Values {
		if v > s.Values[best] {
			best = i
		}
	}
	return s.Values[best], best, nil
}

// Median returns the median bin value.
func (s *Series) Median() float64 { return Median(s.Values) }

// Normalize returns a new series with every value divided by d. It returns
// an error when d == 0; the caller decides how to treat empty catchments
// (the paper excludes sites with medians below its 20-VP threshold).
func (s *Series) Normalize(d float64) (*Series, error) {
	if d == 0 {
		return nil, errors.New("stats: normalize by zero")
	}
	out := NewSeries(s.Name, s.StartMinute, s.BinMinutes, len(s.Values))
	for i, v := range s.Values {
		out.Values[i] = v / d
	}
	return out, nil
}

// Slice returns the sub-series covering bins [from, to). It shares the
// underlying array.
func (s *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(s.Values) || from > to {
		return nil, fmt.Errorf("stats: slice [%d,%d) out of range 0..%d", from, to, len(s.Values))
	}
	return &Series{
		Name:        s.Name,
		StartMinute: s.MinuteFor(from),
		BinMinutes:  s.BinMinutes,
		Values:      s.Values[from:to],
	}, nil
}

// Binner accumulates point observations into fixed-width time bins and can
// report per-bin aggregates. It is the workhorse behind the 10-minute
// binning of Atlas observations (§2.4.1).
type Binner struct {
	startMinute int
	binMinutes  int
	sums        []float64
	counts      []int64
}

// NewBinner creates a binner with n bins of binMinutes width starting at
// startMinute.
func NewBinner(startMinute, binMinutes, n int) *Binner {
	if binMinutes <= 0 || n <= 0 {
		panic("stats: invalid binner shape")
	}
	return &Binner{
		startMinute: startMinute,
		binMinutes:  binMinutes,
		sums:        make([]float64, n),
		counts:      make([]int64, n),
	}
}

// Add records observation v at the given absolute minute. Observations
// outside the range are dropped and reported as false.
func (b *Binner) Add(minute int, v float64) bool {
	i := (minute - b.startMinute) / b.binMinutes
	if minute < b.startMinute || i >= len(b.sums) {
		return false
	}
	b.sums[i] += v
	b.counts[i]++
	return true
}

// Count returns the observation count of bin i.
func (b *Binner) Count(i int) int64 { return b.counts[i] }

// MeanSeries returns the per-bin mean as a Series; empty bins yield NaN-free
// zeros when zeroEmpty is true, else the previous bin's value is carried
// forward (useful for plotting sparse RTT series).
func (b *Binner) MeanSeries(name string, zeroEmpty bool) *Series {
	s := NewSeries(name, b.startMinute, b.binMinutes, len(b.sums))
	var last float64
	for i := range b.sums {
		if b.counts[i] > 0 {
			last = b.sums[i] / float64(b.counts[i])
			s.Values[i] = last
		} else if zeroEmpty {
			s.Values[i] = 0
		} else {
			s.Values[i] = last
		}
	}
	return s
}

// CountSeries returns the per-bin observation counts as a Series.
func (b *Binner) CountSeries(name string) *Series {
	s := NewSeries(name, b.startMinute, b.binMinutes, len(b.sums))
	for i, c := range b.counts {
		s.Values[i] = float64(c)
	}
	return s
}
