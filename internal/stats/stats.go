// Package stats provides the small statistical toolkit the analysis pipeline
// relies on: order statistics, histograms, linear regression, and time-series
// binning. Everything operates on float64 slices and is allocation-conscious
// so the per-figure analyses stay cheap even on full-scale datasets.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs without modifying it.
// It returns 0 for empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. The input is not modified.
// It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice; it
// avoids the copy and sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the minimum and maximum of xs. It returns ErrEmpty for
// empty input.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// LinearFit holds the result of an ordinary-least-squares fit y = a + b*x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int     // number of points
}

// Linear fits y = a + b*x by ordinary least squares and reports R².
// The paper uses this to report the R²=0.87 correlation between a letter's
// site count and its worst-case responsiveness (§3.2.1).
func Linear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched lengths")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	b := sxy / sxx
	fit := LinearFit{Intercept: my - b*mx, Slope: b, N: n}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // y constant and perfectly "explained"
	}
	return fit, nil
}

// Histogram counts values into fixed-width bins starting at Origin.
// Values below Origin are clamped into the first bin; values beyond the last
// bin are clamped into the last. RSSAC-002 reports query/response sizes in
// 16-byte bins (§3.1); this type reproduces that representation.
type Histogram struct {
	Origin float64
	Width  float64
	Counts []int64
}

// NewHistogram creates a histogram of n bins of the given width starting at
// origin. It panics if width <= 0 or n <= 0 (configuration error).
func NewHistogram(origin, width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Origin: origin, Width: width, Counts: make([]int64, n)}
}

// Add increments the bin containing x by w.
func (h *Histogram) Add(x float64, w int64) {
	i := int(math.Floor((x - h.Origin) / h.Width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i] += w
}

// Total returns the sum of all bin counts.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// ArgMax returns the index of the fullest bin (the "unusually popular bin"
// heuristic the paper uses to identify attack query sizes in RSSAC data).
func (h *Histogram) ArgMax() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}

// BinRange returns the [lo, hi) value range of bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	lo = h.Origin + float64(i)*h.Width
	return lo, lo + h.Width
}

// Merge adds other's counts into h. The histograms must have identical
// shape.
func (h *Histogram) Merge(other *Histogram) error {
	if h.Origin != other.Origin || h.Width != other.Width || len(h.Counts) != len(other.Counts) {
		return errors.New("stats: histogram shape mismatch")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	return nil
}
