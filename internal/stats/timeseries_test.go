package stats

import (
	"testing"
	"testing/quick"
)

func TestSeriesBinFor(t *testing.T) {
	s := NewSeries("x", 100, 10, 5) // covers minutes [100,150)
	tests := []struct {
		minute int
		bin    int
		ok     bool
	}{
		{100, 0, true},
		{109, 0, true},
		{110, 1, true},
		{149, 4, true},
		{150, 0, false},
		{99, 0, false},
		{0, 0, false},
	}
	for _, tt := range tests {
		bin, ok := s.BinFor(tt.minute)
		if ok != tt.ok || (ok && bin != tt.bin) {
			t.Errorf("BinFor(%d) = %d,%v want %d,%v", tt.minute, bin, ok, tt.bin, tt.ok)
		}
	}
	if s.MinuteFor(3) != 130 {
		t.Errorf("MinuteFor(3) = %d", s.MinuteFor(3))
	}
}

func TestSeriesMinMaxMedian(t *testing.T) {
	s := NewSeries("x", 0, 10, 4)
	copy(s.Values, []float64{5, 1, 9, 3})
	min, mi, err := s.Min()
	if err != nil || min != 1 || mi != 1 {
		t.Errorf("Min = %v@%d err %v", min, mi, err)
	}
	max, xi, err := s.Max()
	if err != nil || max != 9 || xi != 2 {
		t.Errorf("Max = %v@%d err %v", max, xi, err)
	}
	if m := s.Median(); m != 4 {
		t.Errorf("Median = %v, want 4", m)
	}
	empty := NewSeries("e", 0, 10, 0)
	if _, _, err := empty.Min(); err != ErrEmpty {
		t.Error("empty Min should return ErrEmpty")
	}
	if _, _, err := empty.Max(); err != ErrEmpty {
		t.Error("empty Max should return ErrEmpty")
	}
}

func TestSeriesNormalize(t *testing.T) {
	s := NewSeries("x", 0, 10, 2)
	copy(s.Values, []float64{4, 8})
	n, err := s.Normalize(4)
	if err != nil {
		t.Fatal(err)
	}
	if n.Values[0] != 1 || n.Values[1] != 2 {
		t.Errorf("normalized = %v", n.Values)
	}
	if s.Values[0] != 4 {
		t.Error("Normalize mutated the source")
	}
	if _, err := s.Normalize(0); err == nil {
		t.Error("want error for divide by zero")
	}
}

func TestSeriesSlice(t *testing.T) {
	s := NewSeries("x", 100, 10, 6)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	sub, err := s.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.StartMinute != 120 || sub.Bins() != 3 || sub.Values[0] != 2 {
		t.Errorf("slice = %+v", sub)
	}
	if _, err := s.Slice(4, 2); err == nil {
		t.Error("want error for inverted range")
	}
	if _, err := s.Slice(0, 7); err == nil {
		t.Error("want error for out-of-range")
	}
}

func TestBinnerMeanAndCount(t *testing.T) {
	b := NewBinner(0, 10, 3)
	b.Add(0, 10)
	b.Add(5, 20)
	b.Add(15, 7)
	if !b.Add(29, 1) {
		t.Error("Add(29) should be in range")
	}
	if b.Add(30, 1) {
		t.Error("Add(30) should be out of range")
	}
	if b.Add(-1, 1) {
		t.Error("Add(-1) should be out of range")
	}
	mean := b.MeanSeries("m", true)
	if mean.Values[0] != 15 || mean.Values[1] != 7 {
		t.Errorf("means = %v", mean.Values)
	}
	counts := b.CountSeries("c")
	if counts.Values[0] != 2 || counts.Values[1] != 1 || counts.Values[2] != 1 {
		t.Errorf("counts = %v", counts.Values)
	}
	if b.Count(0) != 2 {
		t.Errorf("Count(0) = %d", b.Count(0))
	}
}

func TestBinnerCarryForward(t *testing.T) {
	b := NewBinner(0, 10, 3)
	b.Add(0, 42)
	// bin 1 empty, bin 2 empty
	carried := b.MeanSeries("m", false)
	if carried.Values[1] != 42 || carried.Values[2] != 42 {
		t.Errorf("carry-forward = %v", carried.Values)
	}
	zeroed := b.MeanSeries("m", true)
	if zeroed.Values[1] != 0 {
		t.Errorf("zeroEmpty = %v", zeroed.Values)
	}
}

// Property: every in-range minute maps to exactly one bin and the bin range
// contains the minute.
func TestBinForRoundTrip(t *testing.T) {
	s := NewSeries("x", 50, 7, 100)
	f := func(m uint16) bool {
		minute := int(m)
		bin, ok := s.BinFor(minute)
		if !ok {
			return minute < 50 || minute >= 50+7*100
		}
		start := s.MinuteFor(bin)
		return minute >= start && minute < start+7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Binner conserves observations — the sum of per-bin counts equals
// the number of accepted Adds.
func TestBinnerConservation(t *testing.T) {
	f := func(minutes []uint16) bool {
		b := NewBinner(0, 10, 144)
		accepted := 0
		for _, m := range minutes {
			if b.Add(int(m), 1) {
				accepted++
			}
		}
		var total int64
		for i := 0; i < 144; i++ {
			total += b.Count(i)
		}
		return total == int64(accepted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
