// Package geo models Internet geography for the anycast simulator.
//
// Sites, vantage points, and autonomous systems are all placed in cities
// identified by IATA airport codes (the same convention the paper uses to
// name anycast sites, e.g. K-AMS for K-Root's Amsterdam site). The package
// provides great-circle distances and a simple propagation-delay model that
// converts distance into a baseline round-trip time.
package geo

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrUnknownCity is returned by LookupErr for codes absent from the
// built-in city table.
var ErrUnknownCity = errors.New("geo: unknown city code")

// Region groups cities into coarse continental regions. The RIPE Atlas VP
// population is strongly Europe-biased (§2.4.1 of the paper); regions let the
// measurement layer reproduce that bias.
type Region int

// Continental regions used for population weighting.
const (
	Europe Region = iota
	NorthAmerica
	SouthAmerica
	Asia
	Oceania
	Africa
	MiddleEast
	numRegions
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case Europe:
		return "Europe"
	case NorthAmerica:
		return "North America"
	case SouthAmerica:
		return "South America"
	case Asia:
		return "Asia"
	case Oceania:
		return "Oceania"
	case Africa:
		return "Africa"
	case MiddleEast:
		return "Middle East"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// City is a physical location identified by its IATA airport code.
type City struct {
	Code   string // three-letter IATA code, upper case
	Name   string
	Region Region
	Lat    float64 // degrees, north positive
	Lon    float64 // degrees, east positive
}

// cities is the built-in city table. It covers every airport code that
// appears in the paper's figures (the E-, K-, and D-Root site lists) plus
// enough additional cities to host the remaining letters' sites.
var cities = []City{
	// Europe
	{"AMS", "Amsterdam", Europe, 52.31, 4.76},
	{"LHR", "London", Europe, 51.47, -0.45},
	{"FRA", "Frankfurt", Europe, 50.03, 8.57},
	{"CDG", "Paris", Europe, 49.01, 2.55},
	{"VIE", "Vienna", Europe, 48.11, 16.57},
	{"ZRH", "Zurich", Europe, 47.46, 8.55},
	{"GVA", "Geneva", Europe, 46.24, 6.11},
	{"MIL", "Milan", Europe, 45.63, 8.72},
	{"TRN", "Turin", Europe, 45.20, 7.65},
	{"WAW", "Warsaw", Europe, 52.17, 20.97},
	{"POZ", "Poznan", Europe, 52.42, 16.83},
	{"PRG", "Prague", Europe, 50.10, 14.26},
	{"BUD", "Budapest", Europe, 47.44, 19.26},
	{"BEG", "Belgrade", Europe, 44.82, 20.31},
	{"ATH", "Athens", Europe, 37.94, 23.94},
	{"HEL", "Helsinki", Europe, 60.32, 24.96},
	{"RIX", "Riga", Europe, 56.92, 23.97},
	{"LED", "St. Petersburg", Europe, 59.80, 30.26},
	{"OVB", "Novosibirsk", Europe, 55.01, 82.65},
	{"KBP", "Kyiv", Europe, 50.34, 30.89},
	{"BER", "Berlin", Europe, 52.36, 13.50},
	{"MAN", "Manchester", Europe, 53.35, -2.28},
	{"LBA", "Leeds", Europe, 53.87, -1.66},
	{"REY", "Reykjavik", Europe, 64.13, -21.94},
	{"BCN", "Barcelona", Europe, 41.30, 2.08},
	{"MAD", "Madrid", Europe, 40.47, -3.56},
	{"LIS", "Lisbon", Europe, 38.77, -9.13},
	{"DUB", "Dublin", Europe, 53.42, -6.27},
	{"BRU", "Brussels", Europe, 50.90, 4.48},
	{"CPH", "Copenhagen", Europe, 55.62, 12.66},
	{"OSL", "Oslo", Europe, 60.19, 11.10},
	{"ARN", "Stockholm", Europe, 59.65, 17.92},
	{"ARC", "Arctic (Kiruna)", Europe, 67.82, 20.34},
	{"PLX", "Semey", Europe, 50.35, 80.23},
	{"KAE", "Kake (Karesuando)", Europe, 68.44, 22.48},
	{"AVN", "Avignon", Europe, 43.91, 4.90},
	{"NLV", "Mykolaiv", Europe, 46.94, 31.92},
	// North America
	{"IAD", "Washington DC", NorthAmerica, 38.94, -77.46},
	{"LGA", "New York", NorthAmerica, 40.78, -73.87},
	{"ORD", "Chicago", NorthAmerica, 41.98, -87.90},
	{"ATL", "Atlanta", NorthAmerica, 33.64, -84.43},
	{"MIA", "Miami", NorthAmerica, 25.79, -80.29},
	{"SEA", "Seattle", NorthAmerica, 47.45, -122.31},
	{"PAO", "Palo Alto", NorthAmerica, 37.46, -122.12},
	{"SNA", "Santa Ana", NorthAmerica, 33.68, -117.87},
	{"BUR", "Burbank", NorthAmerica, 34.20, -118.36},
	{"SAN", "San Diego", NorthAmerica, 32.73, -117.19},
	{"BWI", "Baltimore", NorthAmerica, 39.18, -76.67},
	{"MKC", "Kansas City", NorthAmerica, 39.12, -94.59},
	{"RNO", "Reno", NorthAmerica, 39.50, -119.77},
	{"YYZ", "Toronto", NorthAmerica, 43.68, -79.63},
	{"YVR", "Vancouver", NorthAmerica, 49.19, -123.18},
	{"DFW", "Dallas", NorthAmerica, 32.90, -97.04},
	{"DEN", "Denver", NorthAmerica, 39.86, -104.67},
	{"LAX", "Los Angeles", NorthAmerica, 33.94, -118.41},
	{"MEX", "Mexico City", NorthAmerica, 19.44, -99.07},
	// South America
	{"GRU", "Sao Paulo", SouthAmerica, -23.44, -46.47},
	{"EZE", "Buenos Aires", SouthAmerica, -34.82, -58.54},
	{"SCL", "Santiago", SouthAmerica, -33.39, -70.79},
	{"BOG", "Bogota", SouthAmerica, 4.70, -74.15},
	// Asia
	{"NRT", "Tokyo", Asia, 35.76, 140.39},
	{"HKG", "Hong Kong", Asia, 22.31, 113.91},
	{"SIN", "Singapore", Asia, 1.36, 103.99},
	{"QPG", "Singapore Paya Lebar", Asia, 1.36, 103.91},
	{"ICN", "Seoul", Asia, 37.46, 126.44},
	{"PEK", "Beijing", Asia, 40.08, 116.58},
	{"BOM", "Mumbai", Asia, 19.09, 72.87},
	{"DEL", "Delhi", Asia, 28.57, 77.10},
	{"TPE", "Taipei", Asia, 25.08, 121.23},
	{"KUL", "Kuala Lumpur", Asia, 2.75, 101.71},
	{"BKK", "Bangkok", Asia, 13.69, 100.75},
	// Oceania
	{"SYD", "Sydney", Oceania, -33.95, 151.18},
	{"PER", "Perth", Oceania, -31.94, 115.97},
	{"AKL", "Auckland", Oceania, -37.01, 174.79},
	{"BNE", "Brisbane", Oceania, -27.38, 153.12},
	// Africa
	{"JNB", "Johannesburg", Africa, -26.14, 28.25},
	{"NBO", "Nairobi", Africa, -1.32, 36.93},
	{"KGL", "Kigali", Africa, -1.97, 30.14},
	{"LAD", "Luanda", Africa, -8.86, 13.23},
	{"CAI", "Cairo", Africa, 30.12, 31.41},
	// Middle East
	{"DXB", "Dubai", MiddleEast, 25.25, 55.36},
	{"THR", "Tehran", MiddleEast, 35.69, 51.31},
	{"DOH", "Doha", MiddleEast, 25.27, 51.61},
	{"TLV", "Tel Aviv", MiddleEast, 32.01, 34.89},
	{"ABO", "Aboisso", Africa, 5.46, -3.23},
}

var cityIndex = func() map[string]int {
	m := make(map[string]int, len(cities))
	for i, c := range cities {
		if _, dup := m[c.Code]; dup {
			//repolint:allow panic -- init-time check of the compile-time city table
			panic("geo: duplicate city code " + c.Code)
		}
		m[c.Code] = i
	}
	return m
}()

// Lookup returns the city for an IATA code.
func Lookup(code string) (City, bool) {
	i, ok := cityIndex[code]
	if !ok {
		return City{}, false
	}
	return cities[i], true
}

// LookupErr returns the city for an IATA code, or an error wrapping
// ErrUnknownCity. Use it for codes that originate in configuration or
// other external input; MustLookup is reserved for compile-time lists.
func LookupErr(code string) (City, error) {
	c, ok := Lookup(code)
	if !ok {
		return City{}, fmt.Errorf("%w: %q", ErrUnknownCity, code)
	}
	return c, nil
}

// MustLookup is Lookup for codes known at compile time; it panics on a
// missing code so such programming errors surface immediately. Codes
// that come from configuration must go through LookupErr instead.
func MustLookup(code string) City {
	c, ok := Lookup(code)
	if !ok {
		//repolint:allow panic -- Must* contract: codes are compile-time constants
		panic("geo: unknown city code " + code)
	}
	return c
}

// Cities returns all built-in cities, sorted by code. The returned slice is
// a copy and may be modified by the caller.
func Cities() []City {
	out := make([]City, len(cities))
	copy(out, cities)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// CitiesIn returns the built-in cities in a region, sorted by code.
func CitiesIn(r Region) []City {
	var out []City
	for _, c := range cities {
		if c.Region == r {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two cities using the
// haversine formula.
func DistanceKm(a, b City) float64 {
	const degToRad = math.Pi / 180
	lat1, lon1 := a.Lat*degToRad, a.Lon*degToRad
	lat2, lon2 := b.Lat*degToRad, b.Lon*degToRad
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// RTTModel converts geographic distance into baseline round-trip time.
//
// Light in fiber travels at roughly 2/3 c ≈ 200 km/ms one way; real paths
// are longer than great circles and add per-hop overheads, captured by
// PathStretch and FixedMs.
type RTTModel struct {
	// PathStretch multiplies the great-circle distance to account for
	// fiber routes not following great circles. Typical values: 1.5–2.5.
	PathStretch float64
	// FixedMs is added to every RTT for last-mile, serialization, and
	// processing overheads.
	FixedMs float64
}

// DefaultRTTModel is calibrated so intra-European RTTs land in the 10–40 ms
// range and trans-continental RTTs in the 100–300 ms range, matching the
// per-letter baselines in Figure 4 of the paper.
var DefaultRTTModel = RTTModel{PathStretch: 2.0, FixedMs: 4}

// RTTMs returns the modeled baseline round-trip time between two cities in
// milliseconds (without any queueing delay; congestion is modeled separately
// by the netsim package).
func (m RTTModel) RTTMs(a, b City) float64 {
	const kmPerMsOneWay = 200.0
	oneWay := DistanceKm(a, b) * m.PathStretch / kmPerMsOneWay
	return 2*oneWay + m.FixedMs
}
