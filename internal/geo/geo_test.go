package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLookupKnownCodes(t *testing.T) {
	// Every site code used in the paper's figures must resolve.
	codes := []string{
		"AMS", "LHR", "FRA", "CDG", "VIE", "ZRH", "GVA", "MIL", "TRN",
		"WAW", "POZ", "PRG", "BUD", "BEG", "ATH", "HEL", "RIX", "LED",
		"OVB", "KBP", "BER", "MAN", "LBA", "REY", "ARC", "PLX", "KAE",
		"AVN", "NLV", "IAD", "LGA", "ORD", "ATL", "MIA", "SEA", "PAO",
		"SNA", "BUR", "SAN", "MKC", "RNO", "NRT", "SIN", "QPG", "DEL",
		"SYD", "PER", "AKL", "BNE", "KGL", "LAD", "DXB", "THR", "DOH",
		"ABO",
	}
	for _, code := range codes {
		if _, ok := Lookup(code); !ok {
			t.Errorf("Lookup(%q) failed; city table incomplete", code)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("ZZZ"); ok {
		t.Error("Lookup(ZZZ) should fail")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on unknown code did not panic")
		}
	}()
	MustLookup("NOPE")
}

func TestDistanceSymmetric(t *testing.T) {
	ams := MustLookup("AMS")
	nrt := MustLookup("NRT")
	d1 := DistanceKm(ams, nrt)
	d2 := DistanceKm(nrt, ams)
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("distance not symmetric: %v vs %v", d1, d2)
	}
}

func TestDistanceZero(t *testing.T) {
	ams := MustLookup("AMS")
	if d := DistanceKm(ams, ams); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestDistanceKnownPairs(t *testing.T) {
	// Sanity-check against real-world great-circle distances (±10%).
	tests := []struct {
		a, b string
		km   float64
	}{
		{"AMS", "LHR", 370},
		{"AMS", "FRA", 365},
		{"LHR", "LGA", 5550},
		{"AMS", "NRT", 9300},
		{"LHR", "SYD", 17000},
	}
	for _, tt := range tests {
		d := DistanceKm(MustLookup(tt.a), MustLookup(tt.b))
		if d < tt.km*0.9 || d > tt.km*1.1 {
			t.Errorf("DistanceKm(%s,%s) = %.0f, want ~%.0f", tt.a, tt.b, d, tt.km)
		}
	}
}

func TestRTTRanges(t *testing.T) {
	m := DefaultRTTModel
	intra := m.RTTMs(MustLookup("AMS"), MustLookup("FRA"))
	if intra < 4 || intra > 40 {
		t.Errorf("intra-Europe RTT = %.1f ms, want 4-40", intra)
	}
	trans := m.RTTMs(MustLookup("AMS"), MustLookup("NRT"))
	if trans < 100 || trans > 350 {
		t.Errorf("AMS-NRT RTT = %.1f ms, want 100-350", trans)
	}
	self := m.RTTMs(MustLookup("AMS"), MustLookup("AMS"))
	if self != m.FixedMs {
		t.Errorf("self RTT = %v, want FixedMs %v", self, m.FixedMs)
	}
}

func TestCitiesSortedAndComplete(t *testing.T) {
	all := Cities()
	if len(all) < 50 {
		t.Fatalf("city table has %d entries, want >= 50", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Code >= all[i].Code {
			t.Fatalf("Cities() not sorted at %d: %s >= %s", i, all[i-1].Code, all[i].Code)
		}
	}
	// Mutating the returned slice must not affect the package table.
	all[0].Code = "???"
	if _, ok := Lookup(Cities()[0].Code); !ok {
		t.Error("Cities() leaked internal state")
	}
}

func TestCitiesInRegion(t *testing.T) {
	eu := CitiesIn(Europe)
	if len(eu) < 20 {
		t.Errorf("Europe has %d cities, want >= 20 (Atlas bias needs density)", len(eu))
	}
	for _, c := range eu {
		if c.Region != Europe {
			t.Errorf("CitiesIn(Europe) returned %s in %s", c.Code, c.Region)
		}
	}
}

func TestRegionString(t *testing.T) {
	for r := Region(0); r < numRegions; r++ {
		if s := r.String(); s == "" || s[0] == 'R' && s != "Region(0)" {
			// all named regions have proper names
			t.Errorf("Region(%d).String() = %q", int(r), s)
		}
	}
	if Region(99).String() != "Region(99)" {
		t.Error("unknown region String mismatch")
	}
}

// Property: triangle inequality holds for the distance metric across random
// triples of cities from the table.
func TestDistanceTriangleInequality(t *testing.T) {
	all := Cities()
	f := func(i, j, k uint16) bool {
		a := all[int(i)%len(all)]
		b := all[int(j)%len(all)]
		c := all[int(k)%len(all)]
		// Allow a tiny epsilon for floating point.
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: RTT is monotone in distance for a fixed model.
func TestRTTMonotoneInDistance(t *testing.T) {
	all := Cities()
	m := DefaultRTTModel
	f := func(i, j, k uint16) bool {
		a := all[int(i)%len(all)]
		b := all[int(j)%len(all)]
		c := all[int(k)%len(all)]
		if DistanceKm(a, b) <= DistanceKm(a, c) {
			return m.RTTMs(a, b) <= m.RTTMs(a, c)+1e-9
		}
		return m.RTTMs(a, b) >= m.RTTMs(a, c)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
