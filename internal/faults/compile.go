package faults

import (
	"fmt"
)

// Shape describes the deployment a plan is compiled against: the run's
// minute horizon and each letter's site count. Compilation resolves
// wildcard letters and normalizes site indices so lookups during the run
// are cheap and allocation-free.
type Shape struct {
	Minutes int
	Sites   map[byte]int // letter -> number of sites
}

// letterFaults holds a letter's events bucketed by kind, with Site
// already normalized into [0, nSites) (or AnySite).
type letterFaults struct {
	outages   []Event
	flaps     []Event
	degrades  []Event
	bursts    []Event
	gaps      []Event
	probeLoss []Event
}

// Compiled is a plan resolved against a shape. All lookup methods are
// read-only and safe for concurrent use from letter workers — events are
// pure data, so a faulted run stays byte-identical at any worker count.
type Compiled struct {
	plan     *Plan
	byLetter map[byte]*letterFaults
	churns   []Event // VPChurn is global to the measurement population
}

// Compile validates a plan and resolves it against a shape. Events whose
// Letter is AnyLetter expand to every letter of the shape; events naming
// a letter absent from the shape are dropped (plans are written against
// the full root deployment but also compile against the defense
// harness's single pseudo-letter). Events entirely past the horizon are
// kept but never active.
func Compile(p *Plan, sh Shape) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sh.Minutes < 1 {
		return nil, fmt.Errorf("%w: shape minutes %d", ErrBadPlan, sh.Minutes)
	}
	c := &Compiled{plan: p, byLetter: make(map[byte]*letterFaults)}
	if p == nil {
		return c, nil
	}
	for _, e := range p.Events {
		if e.Kind == VPChurn {
			c.churns = append(c.churns, e)
			continue
		}
		var targets []byte
		if e.Letter == AnyLetter {
			for l := range sh.Sites {
				targets = append(targets, l)
			}
		} else if _, ok := sh.Sites[e.Letter]; ok {
			targets = []byte{e.Letter}
		}
		for _, l := range targets {
			lf := c.byLetter[l]
			if lf == nil {
				lf = &letterFaults{}
				c.byLetter[l] = lf
			}
			ev := e
			if ev.Site != AnySite {
				if n := sh.Sites[l]; n > 0 {
					ev.Site %= n
				}
			}
			switch ev.Kind {
			case SiteOutage:
				lf.outages = append(lf.outages, ev)
			case LinkFlap:
				lf.flaps = append(lf.flaps, ev)
			case CapacityDegrade:
				lf.degrades = append(lf.degrades, ev)
			case PacketLossBurst:
				lf.bursts = append(lf.bursts, ev)
			case MonitorGap:
				lf.gaps = append(lf.gaps, ev)
			case HealthProbeLoss:
				lf.probeLoss = append(lf.probeLoss, ev)
			}
		}
	}
	return c, nil
}

// Plan returns the source plan.
func (c *Compiled) Plan() *Plan { return c.plan }

// Empty reports whether the compiled plan has no events at all.
func (c *Compiled) Empty() bool { return len(c.byLetter) == 0 && len(c.churns) == 0 }

func matches(e Event, site int) bool { return e.Site == AnySite || e.Site == site }

// SiteForcedDown reports whether a fault forces the given uplink of a
// letter's site down at a minute: a SiteOutage downs every uplink of the
// site, a LinkFlap downs the single uplink its event seed selects.
// uplink is the site-local uplink ordinal in [0, nUplinks).
func (c *Compiled) SiteForcedDown(letter byte, site, uplink, nUplinks, minute int) bool {
	lf := c.byLetter[letter]
	if lf == nil {
		return false
	}
	for _, e := range lf.outages {
		if e.ActiveAt(minute) && matches(e, site) {
			return true
		}
	}
	for _, e := range lf.flaps {
		if !e.ActiveAt(minute) || !matches(e, site) {
			continue
		}
		if nUplinks <= 1 || int(e.Seed%uint64(nUplinks)) == uplink {
			return true
		}
	}
	return false
}

// CapacityFactor returns the fraction of a site's capacity that remains
// at a minute: overlapping CapacityDegrade events compose
// multiplicatively, clamped so the site never reaches exactly zero
// (SiteOutage is the kind that takes a site fully out).
func (c *Compiled) CapacityFactor(letter byte, site, minute int) float64 {
	lf := c.byLetter[letter]
	if lf == nil {
		return 1
	}
	f := 1.0
	for _, e := range lf.degrades {
		if e.ActiveAt(minute) && matches(e, site) {
			f *= 1 - e.Severity
		}
	}
	if f < 0.02 {
		f = 0.02
	}
	return f
}

// ExtraLossFrac returns the additional path-loss fraction toward a
// letter's site at a minute; overlapping PacketLossBurst events compose
// as independent loss processes.
func (c *Compiled) ExtraLossFrac(letter byte, site, minute int) float64 {
	lf := c.byLetter[letter]
	if lf == nil {
		return 0
	}
	keep := 1.0
	for _, e := range lf.bursts {
		if e.ActiveAt(minute) && matches(e, site) {
			keep *= 1 - e.Severity
		}
	}
	return 1 - keep
}

// MonitorGapAt reports whether the letter's RSSAC-002 measurement is
// down at a minute.
func (c *Compiled) MonitorGapAt(letter byte, minute int) bool {
	lf := c.byLetter[letter]
	if lf == nil {
		return false
	}
	for _, e := range lf.gaps {
		if e.ActiveAt(minute) {
			return true
		}
	}
	return false
}

// ProbeDropped reports whether health-probe attempt number `attempt`
// toward a letter's site is swallowed by a HealthProbeLoss fault at a
// minute. The coin is a stable per-(event, attempt) hash, so a given
// attempt either always or never sees the drop — replays of the same
// probe schedule observe the same losses at any worker count.
func (c *Compiled) ProbeDropped(letter byte, site, minute int, attempt uint64) bool {
	lf := c.byLetter[letter]
	if lf == nil {
		return false
	}
	for _, e := range lf.probeLoss {
		if !e.ActiveAt(minute) || !matches(e, site) {
			continue
		}
		if hashCoin(e.Seed, attempt) < e.Severity {
			return true
		}
	}
	return false
}

// VPDown reports whether a vantage point is disconnected at a minute.
// Membership in a churn event is a stable per-(event, VP) hash coin, so
// a churned VP stays down for the whole event window and reconnects when
// it clears.
func (c *Compiled) VPDown(vp int32, minute int) bool {
	for _, e := range c.churns {
		if !e.ActiveAt(minute) {
			continue
		}
		if hashCoin(e.Seed, uint64(uint32(vp))) < e.Severity {
			return true
		}
	}
	return false
}

// hashCoin maps (seed, x) to a uniform float64 in [0, 1) via splitmix64.
func hashCoin(seed, x uint64) float64 {
	z := seed + x*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
