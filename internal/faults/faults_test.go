package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRandomPlanDeterministic(t *testing.T) {
	for _, pr := range []Profile{LightProfile(), HeavyProfile(), MonitorProfile()} {
		a := RandomPlan(42, pr)
		b := RandomPlan(42, pr)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("profile %s: same seed produced different plans", pr.Name)
		}
		c := RandomPlan(43, pr)
		if reflect.DeepEqual(a.Events, c.Events) {
			t.Fatalf("profile %s: different seeds produced identical plans", pr.Name)
		}
		if len(a.Events) != pr.Events {
			t.Fatalf("profile %s: got %d events, want %d", pr.Name, len(a.Events), pr.Events)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("profile %s: generated plan invalid: %v", pr.Name, err)
		}
	}
}

func TestRandomPlanRespectsProfileBounds(t *testing.T) {
	pr := HeavyProfile()
	for seed := int64(0); seed < 20; seed++ {
		p := RandomPlan(seed, pr)
		for i, e := range p.Events {
			if e.Start < 0 || e.Start >= pr.Minutes {
				t.Errorf("seed %d event %d: start %d outside horizon", seed, i, e.Start)
			}
			if e.Duration < pr.MinDuration || e.Duration > pr.MaxDuration {
				t.Errorf("seed %d event %d: duration %d outside [%d,%d]", seed, i, e.Duration, pr.MinDuration, pr.MaxDuration)
			}
			if e.Severity < 0 || e.Severity > 1 {
				t.Errorf("seed %d event %d: severity %v", seed, i, e.Severity)
			}
		}
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Event{
		{Kind: numKinds, Start: 0, Duration: 1},
		{Kind: SiteOutage, Start: -1, Duration: 1},
		{Kind: SiteOutage, Start: 0, Duration: 0},
		{Kind: CapacityDegrade, Start: 0, Duration: 1, Severity: 1},
		{Kind: PacketLossBurst, Start: 0, Duration: 1, Severity: 1.5},
		{Kind: SiteOutage, Start: 0, Duration: 1, Site: -2},
	}
	for i, e := range bad {
		p := &Plan{Events: []Event{e}}
		if err := p.Validate(); !errors.Is(err, ErrBadPlan) {
			t.Errorf("case %d: want ErrBadPlan, got %v", i, err)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
}

func TestPlanString(t *testing.T) {
	p := &Plan{Name: "demo", Events: []Event{
		{Kind: SiteOutage, Start: 10, Duration: 5, Letter: 'K'},
		{Kind: SiteOutage, Start: 30, Duration: 5, Letter: 'B'},
		{Kind: MonitorGap, Start: 0, Duration: 5, Letter: 'K'},
	}}
	s := p.String()
	for _, want := range []string{"demo", "3 events", "2 site-outage", "1 monitor-gap"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func testShape() Shape {
	return Shape{Minutes: 100, Sites: map[byte]int{'K': 3, 'B': 2}}
}

func TestCompileSiteOutage(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: SiteOutage, Start: 10, Duration: 20, Letter: 'K', Site: 1, Severity: 1},
	}}
	c, err := Compile(p, testShape())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		letter       byte
		site, minute int
		want         bool
	}{
		{'K', 1, 9, false},
		{'K', 1, 10, true},
		{'K', 1, 29, true},
		{'K', 1, 30, false},
		{'K', 0, 15, false},
		{'B', 1, 15, false},
	}
	for _, tc := range cases {
		// An outage must down every uplink of the site.
		for up := 0; up < 3; up++ {
			if got := c.SiteForcedDown(tc.letter, tc.site, up, 3, tc.minute); got != tc.want {
				t.Errorf("SiteForcedDown(%c, site %d, uplink %d, minute %d) = %v, want %v",
					tc.letter, tc.site, up, tc.minute, got, tc.want)
			}
		}
	}
}

func TestCompileLinkFlapHitsOneUplink(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: LinkFlap, Start: 0, Duration: 50, Letter: 'K', Site: 0, Severity: 1, Seed: 7},
	}}
	c, err := Compile(p, testShape())
	if err != nil {
		t.Fatal(err)
	}
	const nUplinks = 4
	down := 0
	for up := 0; up < nUplinks; up++ {
		if c.SiteForcedDown('K', 0, up, nUplinks, 25) {
			down++
		}
	}
	if down != 1 {
		t.Errorf("link flap downed %d of %d uplinks, want exactly 1", down, nUplinks)
	}
	// A single-uplink site loses its only transit.
	if !c.SiteForcedDown('K', 0, 0, 1, 25) {
		t.Error("link flap should down a single-uplink site")
	}
	if c.SiteForcedDown('K', 0, 0, 1, 50) {
		t.Error("link flap should clear at End()")
	}
}

func TestCompileWildcardsAndNormalization(t *testing.T) {
	p := &Plan{Events: []Event{
		// Wildcard letter + wildcard site: everything is out.
		{Kind: SiteOutage, Start: 0, Duration: 10, Letter: AnyLetter, Site: AnySite, Severity: 1},
		// Site 7 normalizes modulo K's 3 sites to site 1.
		{Kind: SiteOutage, Start: 50, Duration: 10, Letter: 'K', Site: 7, Severity: 1},
	}}
	c, err := Compile(p, testShape())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []byte{'K', 'B'} {
		if !c.SiteForcedDown(l, 0, 0, 1, 5) {
			t.Errorf("wildcard outage missed letter %c", l)
		}
	}
	if !c.SiteForcedDown('K', 1, 0, 1, 55) {
		t.Error("site 7 should normalize to site 1 of a 3-site letter")
	}
	if c.SiteForcedDown('K', 2, 0, 1, 55) {
		t.Error("normalized outage hit the wrong site")
	}
}

func TestCompileCapacityAndLoss(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: CapacityDegrade, Start: 0, Duration: 10, Letter: 'K', Site: 0, Severity: 0.5},
		{Kind: CapacityDegrade, Start: 5, Duration: 10, Letter: 'K', Site: 0, Severity: 0.5},
		{Kind: PacketLossBurst, Start: 0, Duration: 10, Letter: 'K', Site: 0, Severity: 0.4},
	}}
	c, err := Compile(p, testShape())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CapacityFactor('K', 0, 2); got != 0.5 {
		t.Errorf("single degrade: factor %v, want 0.5", got)
	}
	if got := c.CapacityFactor('K', 0, 7); got != 0.25 {
		t.Errorf("overlapping degrades: factor %v, want 0.25", got)
	}
	if got := c.CapacityFactor('K', 0, 20); got != 1 {
		t.Errorf("after window: factor %v, want 1", got)
	}
	if got := c.CapacityFactor('B', 0, 2); got != 1 {
		t.Errorf("untargeted letter: factor %v, want 1", got)
	}
	if got := c.ExtraLossFrac('K', 0, 2); got != 0.4 {
		t.Errorf("burst loss %v, want 0.4", got)
	}
	if got := c.ExtraLossFrac('K', 0, 20); got != 0 {
		t.Errorf("after window: loss %v, want 0", got)
	}
}

func TestCompileCapacityFactorClamped(t *testing.T) {
	var evs []Event
	for i := 0; i < 8; i++ {
		evs = append(evs, Event{Kind: CapacityDegrade, Start: 0, Duration: 10, Letter: 'K', Site: 0, Severity: 0.9})
	}
	c, err := Compile(&Plan{Events: evs}, testShape())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CapacityFactor('K', 0, 5); got <= 0 {
		t.Errorf("stacked degrades must keep capacity positive, got %v", got)
	}
}

func TestVPChurnStableMembership(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: VPChurn, Start: 10, Duration: 30, Letter: AnyLetter, Site: AnySite, Severity: 0.5, Seed: 99},
	}}
	c, err := Compile(p, testShape())
	if err != nil {
		t.Fatal(err)
	}
	down := 0
	const vps = 2000
	for vp := int32(0); vp < vps; vp++ {
		first := c.VPDown(vp, 10)
		if first {
			down++
		}
		// Membership must hold for the whole window...
		for _, m := range []int{15, 25, 39} {
			if c.VPDown(vp, m) != first {
				t.Fatalf("vp %d flip-flopped mid-window", vp)
			}
		}
		// ...and clear outside it.
		if c.VPDown(vp, 9) || c.VPDown(vp, 40) {
			t.Fatalf("vp %d down outside window", vp)
		}
	}
	if frac := float64(down) / vps; frac < 0.4 || frac > 0.6 {
		t.Errorf("churned fraction %v far from severity 0.5", frac)
	}
}

func TestMonitorGapAt(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: MonitorGap, Start: 20, Duration: 15, Letter: 'K', Site: AnySite},
	}}
	c, err := Compile(p, testShape())
	if err != nil {
		t.Fatal(err)
	}
	if c.MonitorGapAt('K', 19) || !c.MonitorGapAt('K', 20) || !c.MonitorGapAt('K', 34) || c.MonitorGapAt('K', 35) {
		t.Error("gap window boundaries wrong")
	}
	if c.MonitorGapAt('B', 25) {
		t.Error("gap leaked to untargeted letter")
	}
}

func TestCompileRejectsBadInput(t *testing.T) {
	if _, err := Compile(&Plan{Events: []Event{{Kind: numKinds, Duration: 1}}}, testShape()); !errors.Is(err, ErrBadPlan) {
		t.Errorf("bad event: want ErrBadPlan, got %v", err)
	}
	if _, err := Compile(&Plan{}, Shape{Minutes: 0}); !errors.Is(err, ErrBadPlan) {
		t.Errorf("bad shape: want ErrBadPlan, got %v", err)
	}
	c, err := Compile(nil, testShape())
	if err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if !c.Empty() {
		t.Error("nil plan should compile empty")
	}
}

func TestCompileDropsUnknownLetters(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: SiteOutage, Start: 0, Duration: 10, Letter: 'Z', Site: 0, Severity: 1},
	}}
	c, err := Compile(p, testShape())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Empty() {
		t.Error("event for a letter outside the shape should be dropped")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"light", "heavy", "monitor"} {
		pr, err := ProfileByName(name)
		if err != nil || pr.Name != name {
			t.Errorf("ProfileByName(%q) = %v, %v", name, pr.Name, err)
		}
	}
	if _, err := ProfileByName("nope"); !errors.Is(err, ErrBadPlan) {
		t.Errorf("unknown profile: want ErrBadPlan, got %v", err)
	}
}

func TestHealthProbeLossCompiled(t *testing.T) {
	p := &Plan{Name: "probe-loss", Events: []Event{
		{Kind: HealthProbeLoss, Start: 10, Duration: 20, Letter: 'K', Site: 1, Severity: 0.5, Seed: 42},
	}}
	c, err := Compile(p, Shape{Minutes: 60, Sites: map[byte]int{'K': 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Outside the window or at the wrong site, nothing drops.
	for a := uint64(0); a < 50; a++ {
		if c.ProbeDropped('K', 1, 5, a) {
			t.Fatalf("attempt %d dropped outside the window", a)
		}
		if c.ProbeDropped('K', 0, 15, a) {
			t.Fatalf("attempt %d dropped at untargeted site", a)
		}
	}
	// Inside the window roughly half the attempts drop, deterministically.
	dropped := 0
	for a := uint64(0); a < 1000; a++ {
		d := c.ProbeDropped('K', 1, 15, a)
		if d != c.ProbeDropped('K', 1, 15, a) {
			t.Fatalf("attempt %d coin not stable", a)
		}
		if d {
			dropped++
		}
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("severity 0.5 dropped %d/1000 attempts", dropped)
	}
}

func TestHealthMonProfileValidates(t *testing.T) {
	pr, err := ProfileByName("healthmon")
	if err != nil {
		t.Fatal(err)
	}
	p := RandomPlan(7, pr)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := HealthProbeLoss.String(); got != "health-probe-loss" {
		t.Fatalf("String() = %q", got)
	}
}
