// Package faults is the seeded, fully deterministic fault-injection
// subsystem ("tremor"). A Plan is a schedule of typed fault events —
// site outages, link flaps, capacity loss, vantage-point churn, packet
// loss bursts, and monitoring gaps — that the core evaluator and the
// defense harness replay on top of an attack scenario.
//
// Everything is deterministic: a Plan is plain data, RandomPlan derives a
// plan purely from (seed, profile), and per-VP churn decisions come from
// a hash of (event seed, VP id). Injecting the same plan at any worker
// count therefore produces byte-identical output, which is what lets the
// engine's worker-equivalence guarantees extend to faulted runs.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kind is the type of one fault event.
type Kind uint8

// The fault taxonomy. Each kind maps to one seam of the system: routing
// (SiteOutage, LinkFlap), the queue model (CapacityDegrade,
// PacketLossBurst), the measurement plane (VPChurn), and the reporting
// plane (MonitorGap — the RSSAC-002 data holes of the paper's §3.1).
const (
	// SiteOutage forces every uplink of the target site down for the
	// window: the site vanishes from BGP and its catchment waterbeds
	// onto the surviving sites.
	SiteOutage Kind = iota
	// LinkFlap withdraws one transit edge (a single uplink, chosen
	// deterministically from the event seed) and re-announces it when
	// the window clears.
	LinkFlap
	// CapacityDegrade removes part of a site's serving capacity —
	// servers lost behind the load balancer. Severity is the fraction
	// of capacity lost (0.5 = half the servers down).
	CapacityDegrade
	// VPChurn disconnects a Severity-sized fraction of the Atlas
	// vantage points for the window; their probes record nothing,
	// leaving NoData gaps in the cleaned dataset.
	VPChurn
	// PacketLossBurst adds Severity extra path loss toward the target
	// site, composed with whatever loss the queue model produces.
	PacketLossBurst
	// MonitorGap suppresses the letter's RSSAC-002 measurement for the
	// window: the affected minutes go missing from the daily report.
	MonitorGap
	// HealthProbeLoss drops a Severity-sized fraction of the *control
	// plane's* active health probes toward the target site — the data
	// plane is untouched. This is the fault that tempts a health-driven
	// site manager into withdrawing a healthy site on probe evidence
	// alone, which is why its monitor demands corroborating server-side
	// signals before acting.
	HealthProbeLoss

	numKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case SiteOutage:
		return "site-outage"
	case LinkFlap:
		return "link-flap"
	case CapacityDegrade:
		return "capacity-degrade"
	case VPChurn:
		return "vp-churn"
	case PacketLossBurst:
		return "packet-loss-burst"
	case MonitorGap:
		return "monitor-gap"
	case HealthProbeLoss:
		return "health-probe-loss"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Wildcard targets.
const (
	// AnyLetter targets every letter known to the compiled shape.
	AnyLetter byte = 0
	// AnySite targets every site of the letter.
	AnySite int = -1
)

// ErrBadPlan marks an invalid plan or event; unwrap with errors.Is.
var ErrBadPlan = errors.New("faults: invalid plan")

// Event is one scheduled fault: a kind, a [Start, Start+Duration) minute
// window, a target, and (where meaningful) a severity and a seed for the
// event's internal coin flips.
type Event struct {
	Kind  Kind
	Start int // minute the fault begins
	// Duration is the fault's length in minutes; the fault clears (site
	// re-announces, capacity returns, VPs reconnect) at End().
	Duration int
	// Letter targets one root letter, or AnyLetter for all. Ignored by
	// VPChurn (the measurement population is global).
	Letter byte
	// Site targets one site of the letter (normalized modulo the
	// letter's site count at compile time), or AnySite for all. Ignored
	// by VPChurn and MonitorGap.
	Site int
	// Severity in [0, 1]: fraction of capacity lost, of VPs
	// disconnected, or of extra path loss. SiteOutage, LinkFlap, and
	// MonitorGap are all-or-nothing and ignore it.
	Severity float64
	// Seed drives the event's deterministic coin flips (which uplink a
	// LinkFlap hits, which VPs a VPChurn disconnects).
	Seed uint64
}

// End returns the first minute after the fault window.
func (e Event) End() int { return e.Start + e.Duration }

// ActiveAt reports whether the fault is in effect at a minute.
func (e Event) ActiveAt(minute int) bool { return minute >= e.Start && minute < e.End() }

func (e Event) validate(i int) error {
	if e.Kind >= numKinds {
		return fmt.Errorf("%w: event %d: unknown kind %d", ErrBadPlan, i, e.Kind)
	}
	if e.Start < 0 {
		return fmt.Errorf("%w: event %d (%s): start %d", ErrBadPlan, i, e.Kind, e.Start)
	}
	if e.Duration < 1 {
		return fmt.Errorf("%w: event %d (%s): duration %d", ErrBadPlan, i, e.Kind, e.Duration)
	}
	if e.Severity < 0 || e.Severity > 1 {
		return fmt.Errorf("%w: event %d (%s): severity %v", ErrBadPlan, i, e.Kind, e.Severity)
	}
	if e.Site < AnySite {
		return fmt.Errorf("%w: event %d (%s): site %d", ErrBadPlan, i, e.Kind, e.Site)
	}
	// A CapacityDegrade at severity 1 would zero the site's capacity;
	// the compiled factor clamps, but reject it here so authored plans
	// say what they mean (use SiteOutage to take a site fully out).
	if e.Kind == CapacityDegrade && e.Severity >= 1 {
		return fmt.Errorf("%w: event %d: capacity-degrade severity %v (use site-outage)", ErrBadPlan, i, e.Severity)
	}
	return nil
}

// Plan is a named schedule of fault events. The zero value (or nil) is a
// valid empty plan.
type Plan struct {
	Name   string
	Events []Event
}

// Validate checks every event of the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if err := e.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// String summarizes the plan as "name: N events (k site-outage, ...)".
func (p *Plan) String() string {
	if p == nil || len(p.Events) == 0 {
		return "empty fault plan"
	}
	counts := make([]int, numKinds)
	for _, e := range p.Events {
		if e.Kind < numKinds {
			counts[e.Kind]++
		}
	}
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
		}
	}
	name := p.Name
	if name == "" {
		name = "plan"
	}
	return fmt.Sprintf("%s: %d events (%s)", name, len(p.Events), strings.Join(parts, ", "))
}

// Profile parameterizes RandomPlan: how many events to draw, from which
// kinds, and within what bounds.
type Profile struct {
	Name    string
	Minutes int // schedule horizon events are drawn within
	Events  int // number of events
	Kinds   []Kind
	// MinDuration and MaxDuration bound event lengths (minutes).
	MinDuration int
	MaxDuration int
	// MaxSeverity caps drawn severities (capacity loss, VP churn
	// fraction, burst loss).
	MaxSeverity float64
	// Letters is the pool targeted letters are drawn from.
	Letters []byte
	// MaxSite bounds drawn site indices; the compiled plan normalizes
	// them modulo each letter's real site count.
	MaxSite int
}

// rootLetters is the default letter pool of the built-in profiles.
const rootLetters = "ABCDEFGHIJKLM"

// LightProfile draws a handful of moderate faults over the two event
// days — the default soak profile.
func LightProfile() Profile {
	return Profile{
		Name: "light", Minutes: 2880, Events: 6,
		Kinds:       []Kind{SiteOutage, LinkFlap, CapacityDegrade, VPChurn, PacketLossBurst, MonitorGap},
		MinDuration: 20, MaxDuration: 120, MaxSeverity: 0.5,
		Letters: []byte(rootLetters), MaxSite: 8,
	}
}

// HeavyProfile draws many overlapping, severe faults — the stress soak.
func HeavyProfile() Profile {
	return Profile{
		Name: "heavy", Minutes: 2880, Events: 14,
		Kinds:       []Kind{SiteOutage, LinkFlap, CapacityDegrade, VPChurn, PacketLossBurst, MonitorGap},
		MinDuration: 30, MaxDuration: 300, MaxSeverity: 0.9,
		Letters: []byte(rootLetters), MaxSite: 16,
	}
}

// MonitorProfile faults only the measurement and reporting planes
// (VPChurn, MonitorGap) — the paper's §2.4 data holes without any
// service impact, for testing analysis tolerance.
func MonitorProfile() Profile {
	return Profile{
		Name: "monitor", Minutes: 2880, Events: 8,
		Kinds:       []Kind{VPChurn, MonitorGap},
		MinDuration: 20, MaxDuration: 240, MaxSeverity: 0.6,
		Letters: []byte(rootLetters),
	}
}

// HealthMonProfile faults the control plane a self-healing site manager
// depends on: dropped health probes (the false-alarm generator) mixed with
// real site outages and path-loss bursts, so a soak exercises both "probe
// says down, site is fine" and "probe says down, site is down".
func HealthMonProfile() Profile {
	return Profile{
		Name: "healthmon", Minutes: 2880, Events: 10,
		Kinds:       []Kind{HealthProbeLoss, SiteOutage, PacketLossBurst},
		MinDuration: 10, MaxDuration: 90, MaxSeverity: 0.8,
		Letters: []byte(rootLetters), MaxSite: 8,
	}
}

// ProfileByName resolves the built-in profile names (light, heavy,
// monitor, healthmon) for command-line flags.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "light":
		return LightProfile(), nil
	case "heavy":
		return HeavyProfile(), nil
	case "monitor":
		return MonitorProfile(), nil
	case "healthmon":
		return HealthMonProfile(), nil
	default:
		return Profile{}, fmt.Errorf("%w: unknown profile %q (light, heavy, monitor, healthmon)", ErrBadPlan, name)
	}
}

// RandomPlan derives a fault plan purely from (seed, profile): the same
// inputs always yield the same plan, so soak failures replay exactly.
func RandomPlan(seed int64, pr Profile) *Plan {
	rng := rand.New(rand.NewSource(seed))
	if pr.Minutes < 1 {
		pr.Minutes = 2880
	}
	if pr.MinDuration < 1 {
		pr.MinDuration = 1
	}
	if pr.MaxDuration < pr.MinDuration {
		pr.MaxDuration = pr.MinDuration
	}
	if pr.MaxSeverity <= 0 || pr.MaxSeverity > 1 {
		pr.MaxSeverity = 0.5
	}
	kinds := pr.Kinds
	if len(kinds) == 0 {
		kinds = LightProfile().Kinds
	}
	letters := pr.Letters
	if len(letters) == 0 {
		letters = []byte(rootLetters)
	}
	sev := func(min float64) float64 {
		hi := pr.MaxSeverity
		if hi < min {
			return min
		}
		return min + rng.Float64()*(hi-min)
	}
	p := &Plan{Name: fmt.Sprintf("random-%s-%d", pr.Name, seed)}
	for i := 0; i < pr.Events; i++ {
		dur := pr.MinDuration + rng.Intn(pr.MaxDuration-pr.MinDuration+1)
		span := pr.Minutes - dur
		if span < 1 {
			span = 1
		}
		e := Event{
			Kind:     kinds[rng.Intn(len(kinds))],
			Start:    rng.Intn(span),
			Duration: dur,
			Seed:     rng.Uint64(),
		}
		switch e.Kind {
		case VPChurn:
			e.Letter, e.Site = AnyLetter, AnySite
			e.Severity = sev(0.05)
		case MonitorGap:
			e.Letter, e.Site = letters[rng.Intn(len(letters))], AnySite
		case SiteOutage, LinkFlap:
			e.Letter = letters[rng.Intn(len(letters))]
			e.Site = rng.Intn(pr.MaxSite + 1)
			e.Severity = 1
		case CapacityDegrade:
			e.Letter = letters[rng.Intn(len(letters))]
			e.Site = rng.Intn(pr.MaxSite + 1)
			// Validation rejects severity 1 for degrades.
			if e.Severity = sev(0.1); e.Severity > 0.95 {
				e.Severity = 0.95
			}
		case PacketLossBurst, HealthProbeLoss:
			e.Letter = letters[rng.Intn(len(letters))]
			e.Site = rng.Intn(pr.MaxSite + 1)
			e.Severity = sev(0.1)
		}
		p.Events = append(p.Events, e)
	}
	// Stable presentation order; draws above already fixed the content.
	sort.SliceStable(p.Events, func(a, b int) bool {
		if p.Events[a].Start != p.Events[b].Start {
			return p.Events[a].Start < p.Events[b].Start
		}
		return p.Events[a].Kind < p.Events[b].Kind
	})
	return p
}
