package analysis

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/stats"
)

// CatchmentValidationResult cross-validates CHAOS-based catchment mapping
// against forwarding-path traces, the methodology check the paper inherits
// from Fan et al. (§2.1: "CHAOS mapping of anycast is generally complete
// and reliable, validating it against traceroute").
type CatchmentValidationResult struct {
	Compared   int // VPs with both a CHAOS site and a trace
	Agree      int
	Disagree   int
	NoResponse int // VPs without a usable CHAOS observation in the bin
	NoRoute    int // VPs whose trace reaches no site
	// HijackedCaught counts VPs the cleaning stage excluded whose CHAOS
	// replies would have disagreed with routing — the failure mode the
	// validation exists to catch.
	HijackedCaught int
}

// AgreementFrac returns the CHAOS/trace agreement rate.
func (r *CatchmentValidationResult) AgreementFrac() float64 {
	if r.Compared == 0 {
		return 0
	}
	return float64(r.Agree) / float64(r.Compared)
}

// ValidateCatchments compares each clean VP's CHAOS-derived site (from the
// dataset, at a quiet bin) against the forwarding trace through the routing
// tables at the same time.
func (a *Analyzer) ValidateCatchments(letter byte, bin int) (*CatchmentValidationResult, error) {
	ev, d := a.ev, a.d
	if !d.HasLetter(letter) {
		return nil, fmt.Errorf("analysis: letter %c not in dataset", letter)
	}
	if bin < 0 || bin >= d.Bins {
		return nil, fmt.Errorf("analysis: bin %d out of range", bin)
	}
	minute := d.StartMinute + bin*d.BinMinutes
	res := &CatchmentValidationResult{}
	// The cursor walks clean VPs in ascending VPID order, the same order
	// the population stores them, so one pass over both suffices.
	rows, err := d.Rows(letter)
	if err != nil {
		return nil, err
	}
	have := rows.Next()
	for i := range ev.Population.VPs {
		vp := &ev.Population.VPs[i]
		if d.Excluded[vp.ID] {
			if vp.Hijacked {
				res.HijackedCaught++
			}
			continue
		}
		for have && rows.VP() < vp.ID {
			have = rows.Next()
		}
		if !have || rows.VP() != vp.ID {
			res.NoResponse++
			continue
		}
		st, site := rows.Status()[bin], rows.Site()[bin]
		if st != atlas.OK || site < 0 {
			res.NoResponse++
			continue
		}
		_, traced := ev.TraceAt(letter, vp.ASN, minute)
		if traced == bgpsim.NoSite {
			res.NoRoute++
			continue
		}
		res.Compared++
		if traced == int(site) {
			res.Agree++
		} else {
			res.Disagree++
		}
	}
	return res, nil
}

// OptimalityResult quantifies anycast routing inefficiency: how often BGP
// sends a client to its latency-closest site, and how much latency the
// detours cost — the placement-and-affinity concern of the measurement
// studies the paper builds on (§4).
type OptimalityResult struct {
	Letter         byte
	VPs            int
	OptimalFrac    float64 // fraction routed to their lowest-RTT site
	MeanInflation  float64 // mean (chosen - best) RTT in ms
	P90Inflation   float64
	WorstInflation float64
}

// CatchmentOptimality measures, at a quiet minute, each clean VP's chosen
// site RTT against the best announced site.
func (a *Analyzer) CatchmentOptimality(letter byte, minute int) (*OptimalityResult, error) {
	ev, d := a.ev, a.d
	l, ok := ev.Deployment.Letter(letter)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	res := &OptimalityResult{Letter: letter}
	var inflations []float64
	for i := range ev.Population.VPs {
		vp := &ev.Population.VPs[i]
		if d.Excluded[vp.ID] {
			continue
		}
		site := ev.SiteAt(letter, vp.ASN, minute)
		if site < 0 {
			continue
		}
		chosen := ev.CityRTTms(vp.City.Code, l.Sites[site].City.Code)
		best := chosen
		for _, s := range l.Sites {
			if rtt := ev.CityRTTms(vp.City.Code, s.City.Code); rtt < best {
				best = rtt
			}
		}
		infl := chosen - best
		inflations = append(inflations, infl)
		res.VPs++
		if infl < 1 {
			res.OptimalFrac++
		}
		if infl > res.WorstInflation {
			res.WorstInflation = infl
		}
		res.MeanInflation += infl
	}
	if res.VPs > 0 {
		res.OptimalFrac /= float64(res.VPs)
		res.MeanInflation /= float64(res.VPs)
	}
	res.P90Inflation = quantileOf(inflations, 0.9)
	return res, nil
}

func quantileOf(xs []float64, q float64) float64 {
	return stats.Quantile(xs, q)
}
