package analysis

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/topo"
)

var (
	sharedEval *core.Evaluator
	sharedData *atlas.Dataset
)

func getShared(t *testing.T) (*core.Evaluator, *atlas.Dataset) {
	t.Helper()
	if sharedEval != nil {
		return sharedEval, sharedData
	}
	cfg := core.DefaultConfig(21)
	cfg.Topology = &topo.Config{Tier1s: 6, Tier2s: 60, Stubs: 800, Seed: 21}
	cfg.VPs = 500
	cfg.BotnetOrigins = 30
	ev, err := core.NewEvaluator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	d, err := ev.Measure()
	if err != nil {
		t.Fatal(err)
	}
	sharedEval, sharedData = ev, d
	return ev, d
}

func TestTable2(t *testing.T) {
	ev, d := getShared(t)
	rows := Table2(ev, d)
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLetter := map[byte]Table2Row{}
	for _, r := range rows {
		byLetter[r.Letter] = r
		if r.SitesObserved > r.SitesReported {
			t.Errorf("%c observed %d > reported %d", r.Letter, r.SitesObserved, r.SitesReported)
		}
		if r.GlobalReported+r.LocalReported != r.SitesReported {
			t.Errorf("%c global+local != total", r.Letter)
		}
	}
	if !byLetter['B'].Unicast || byLetter['B'].SitesReported != 1 {
		t.Error("B row wrong")
	}
	if !byLetter['H'].PrimaryBackup {
		t.Error("H row wrong")
	}
	// Big letters must be observed at multiple sites.
	if byLetter['K'].SitesObserved < 3 {
		t.Errorf("K observed %d sites", byLetter['K'].SitesObserved)
	}
	// Observed <= reported, and local-heavy letters observed fewer
	// (local sites have tiny catchments) — E's 11 local sites rarely all
	// visible.
	if byLetter['E'].SitesObserved == byLetter['E'].SitesReported {
		t.Logf("E observed all %d sites (possible at this scale)", byLetter['E'].SitesObserved)
	}
}

func TestTable3(t *testing.T) {
	ev, _ := getShared(t)
	for evIdx := 0; evIdx < 2; evIdx++ {
		res, err := Table3(ev, evIdx)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 5 {
			t.Fatalf("event %d rows = %d, want 5 (A,H,J,K,L)", evIdx, len(res.Rows))
		}
		var aRow, lRow *Table3Row
		for i := range res.Rows {
			switch res.Rows[i].Letter {
			case 'A':
				aRow = &res.Rows[i]
			case 'L':
				lRow = &res.Rows[i]
			}
		}
		if aRow == nil || lRow == nil {
			t.Fatal("missing A or L row")
		}
		// Attacked letters show query deltas; unique-IP ratios explode.
		if aRow.DeltaQueryMqs <= 0 {
			t.Errorf("A delta = %v", aRow.DeltaQueryMqs)
		}
		if aRow.UniqueRatio < 10 {
			t.Errorf("A unique ratio = %v, want large", aRow.UniqueRatio)
		}
		if !lRow.Excluded {
			t.Error("L must be excluded from bounds (not attacked)")
		}
		// Bounds ordering: lower <= scaled <= upper.
		b := res.Bounds
		if b.LowerQueryMqs > b.ScaledQueryMqs || b.ScaledQueryMqs > b.UpperQueryMqs*1.001 {
			t.Errorf("bounds out of order: %v <= %v <= %v", b.LowerQueryMqs, b.ScaledQueryMqs, b.UpperQueryMqs)
		}
		// Upper bound is 10x A's per-letter rate; with served-based
		// under-measurement it lands in the tens of Mq/s like the paper.
		if b.UpperQueryMqs < 1 {
			t.Errorf("upper bound = %v Mq/s, implausibly small", b.UpperQueryMqs)
		}
		// Responses below queries (RRL).
		if aRow.DeltaRespMqs > aRow.DeltaQueryMqs {
			t.Errorf("A responses %v > queries %v", aRow.DeltaRespMqs, aRow.DeltaQueryMqs)
		}
	}
	if _, err := Table3(ev, 5); err == nil {
		t.Error("bad event index should error")
	}
}

func TestFigure3(t *testing.T) {
	ev, d := getShared(t)
	series, err := Figure3(ev, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 13 {
		t.Fatalf("letters = %d", len(series))
	}
	// Attacked letters dip during event 1; D/L/M stay flat-ish.
	evBin := (attack.Event1Start + 80) / 10
	for _, lb := range []byte{'B', 'H'} {
		s := series[lb]
		if s.Values[evBin] >= s.Median()*0.7 {
			t.Errorf("%c did not dip: %v vs median %v", lb, s.Values[evBin], s.Median())
		}
	}
	for _, lb := range []byte{'D', 'L', 'M'} {
		s := series[lb]
		if s.Median() == 0 {
			t.Fatalf("%c has empty series", lb)
		}
		if s.Values[evBin] < s.Median()*0.75 {
			t.Errorf("unattacked %c dipped hard: %v vs %v", lb, s.Values[evBin], s.Median())
		}
	}
}

func TestFigure4(t *testing.T) {
	ev, d := getShared(t)
	series, err := Figure4(ev, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := series['A']; ok {
		t.Error("A should be omitted from RTT analysis")
	}
	// K's median RTT rises during events (absorbing sites bufferbloat).
	k := series['K']
	evBin := (attack.Event1Start + 80) / 10
	pre := k.Values[20]
	if k.Values[evBin] <= pre {
		t.Errorf("K RTT did not rise: %v -> %v", pre, k.Values[evBin])
	}
}

func TestFigure5And6(t *testing.T) {
	ev, d := getShared(t)
	for _, lb := range []byte{'E', 'K'} {
		rows, err := Figure5(ev, d, lb)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(ev.LetterSites(lb)) {
			t.Fatalf("%c rows = %d", lb, len(rows))
		}
		// Ordered by median descending.
		for i := 1; i < len(rows); i++ {
			if rows[i-1].MedianVPs < rows[i].MedianVPs {
				t.Fatalf("%c rows not ordered", lb)
			}
		}
		// Stable sites: min <= 1 <= max around the median.
		for _, r := range rows {
			if r.MedianVPs > 0 && (r.MinNorm > 1.0001 || r.MaxNorm < 0.9999) {
				t.Errorf("%s min/max norm %v/%v around median", r.Site, r.MinNorm, r.MaxNorm)
			}
		}
		minis, err := Figure6(ev, d, lb)
		if err != nil {
			t.Fatal(err)
		}
		if len(minis) != len(rows) {
			t.Fatalf("figure6 entries = %d", len(minis))
		}
	}
	// Some big K site must show critical bins or swings during events
	// (LHR's flaps) — check any site has critical moments.
	minis, _ := Figure6(ev, d, 'K')
	anyCritical := false
	for _, m := range minis {
		if m.MedianVPs >= StableVPThreshold && len(m.CriticalBins) > 0 {
			anyCritical = true
		}
	}
	if !anyCritical {
		t.Error("no stable K site shows critical reachability moments")
	}
	if _, err := Figure5(ev, d, 'Z'); err == nil {
		t.Error("unknown letter should error")
	}
	if _, err := Figure6(ev, d, 'Z'); err == nil {
		t.Error("unknown letter should error")
	}
}

func TestFigure7(t *testing.T) {
	ev, d := getShared(t)
	series, err := Figure7(ev, d, 'K', []string{"AMS", "NRT", "LHR", "FRA"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	ams := series["K-AMS"]
	evBin := (attack.Event1Start + 80) / 10
	if ams.Values[evBin] <= ams.Values[20] {
		t.Errorf("K-AMS RTT flat during event: %v -> %v", ams.Values[20], ams.Values[evBin])
	}
	if _, err := Figure7(ev, d, 'K', []string{"XXX"}); err == nil {
		t.Error("unknown site should error")
	}
}

func TestFigure8(t *testing.T) {
	ev, d := getShared(t)
	flips, err := Figure8(ev, d)
	if err != nil {
		t.Fatal(err)
	}
	k := flips['K']
	var inEvent, outEvent float64
	for b, v := range k.Values {
		if attack.Active(b*10) >= 0 {
			inEvent += v
		} else {
			outEvent += v
		}
	}
	if inEvent == 0 {
		t.Error("no K flips during events")
	}
	// Flip density much higher in events than in quiet times.
	inRate := inEvent / 22 // 22 event bins
	outRate := outEvent / float64(k.Bins()-22)
	if inRate <= outRate {
		t.Errorf("flip rate in events %.2f <= outside %.2f", inRate, outRate)
	}
}

func TestFigure9(t *testing.T) {
	ev, _ := getShared(t)
	series := Figure9(ev)
	if len(series) != 13 {
		t.Fatalf("letters = %d", len(series))
	}
	// E (withdraw-heavy) must show route changes during events.
	var total float64
	for _, v := range series['E'].Values {
		total += v
	}
	if total == 0 {
		t.Error("E shows no BGP updates at collectors")
	}
}

func TestFigure10(t *testing.T) {
	ev, d := getShared(t)
	flows, err := Figure10(ev, d, 'K', []string{"LHR", "FRA"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("flows = %d", len(flows))
	}
	for _, f := range flows {
		if f.Movers == 0 {
			t.Logf("%s: no movers at this scale", f.FromSite)
			continue
		}
		var sum float64
		for _, frac := range f.Dest {
			sum += frac
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: dest fractions sum %v", f.FromSite, sum)
		}
	}
	if _, err := Figure10(ev, d, 'K', []string{"XXX"}, 0); err == nil {
		t.Error("unknown site should error")
	}
	if _, err := Figure10(ev, d, 'K', []string{"LHR"}, 7); err == nil {
		t.Error("bad event should error")
	}
}

func TestFigure11(t *testing.T) {
	ev, d := getShared(t)
	rows, err := Figure11(ev, d, 'K', "LHR", "FRA", "AMS", 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no raster rows; K-LHR/K-FRA catchments empty pre-event")
	}
	for _, r := range rows {
		if len(r.Cells) != d.RawBins {
			t.Fatalf("row width = %d", len(r.Cells))
		}
		for _, c := range r.Cells {
			switch c {
			case 'L', 'F', 'A', 'o', '.':
			default:
				t.Fatalf("bad raster cell %q", c)
			}
		}
	}
	if _, err := Figure11(ev, d, 'E', "AMS", "FRA", "LHR", 10); err == nil {
		t.Error("letter without raw data should error")
	}
}

func TestClassifyRaster(t *testing.T) {
	ev, d := getShared(t)
	rows, err := Figure11(ev, d, 'K', "LHR", "FRA", "AMS", 300)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := ClassifyRaster(rows, d, ev.Schedule(), 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range groups {
		total += n
	}
	if total != len(rows) {
		t.Fatalf("groups cover %d of %d rows (%v)", total, len(rows), groups)
	}
	// Some VPs must move during the event (§3.4.2 groups 2-4); whether
	// they return or stay depends on which uplink flapped at this seed.
	if groups[GroupFlipReturn]+groups[GroupFlipStay] == 0 {
		t.Errorf("no moving VPs: %v", groups)
	}
	if _, err := ClassifyRaster(rows, d, ev.Schedule(), 9); err == nil {
		t.Error("bad event index accepted")
	}
	// Group names render.
	for g := RasterGroup(0); g < 4; g++ {
		if g.String() == "" {
			t.Error("empty group name")
		}
	}
	if RasterGroup(9).String() != "RasterGroup(9)" {
		t.Error("unknown group name")
	}
}

func TestFigureServers(t *testing.T) {
	ev, d := getShared(t)
	for _, code := range []string{"FRA", "NRT"} {
		series, err := FigureServers(ev, d, 'K', code)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 3 {
			t.Fatalf("K-%s servers = %d", code, len(series))
		}
		var total float64
		for _, ss := range series {
			for _, v := range ss.Success.Values {
				total += v
			}
		}
		if total == 0 {
			t.Errorf("K-%s: no per-server successes", code)
		}
	}
	if _, err := FigureServers(ev, d, 'E', "AMS"); err == nil {
		t.Error("no-raw letter should error")
	}
	if _, err := FigureServers(ev, d, 'K', "XXX"); err == nil {
		t.Error("unknown site should error")
	}
}

func TestFigure14And15(t *testing.T) {
	ev, d := getShared(t)
	// D-Root: not attacked; any reported dips are collateral.
	sites, err := Figure14(ev, d, 'D', 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if s.MedianVPs < StableVPThreshold {
			t.Errorf("%s below stability threshold reported", s.Site)
		}
		if s.DipFrac < 0.10 {
			t.Errorf("%s dip %v below cutoff", s.Site, s.DipFrac)
		}
	}
	nl := Figure15(ev)
	if len(nl) == 0 {
		t.Fatal("no .nl series")
	}
	for _, s := range nl {
		if s.Median() < 0.9 {
			t.Errorf(".nl %s baseline service %v, want ~1", s.Name, s.Median())
		}
		min, _, _ := s.Min()
		if min > 0.5 {
			t.Errorf(".nl %s never collapsed (min %v)", s.Name, min)
		}
	}
}

func TestSiteCorrelation(t *testing.T) {
	ev, d := getShared(t)
	res, err := SiteCorrelation(ev, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Letters) < 10 {
		t.Fatalf("letters in correlation = %d", len(res.Letters))
	}
	// More sites help worst-case reachability: positive slope, meaningful
	// correlation (the paper reports R² = 0.87; shape, not the exact
	// value, must hold).
	if res.Fit.Slope <= 0 {
		t.Errorf("slope = %v, want positive", res.Fit.Slope)
	}
	if res.Fit.R2 < 0.2 {
		t.Errorf("R² = %v, want meaningful correlation", res.Fit.R2)
	}
}

func TestLetterFlips(t *testing.T) {
	ev, _ := getShared(t)
	res, err := LetterFlips(ev, 'L')
	if err != nil {
		t.Fatal(err)
	}
	if res.IncreaseRatio <= 1 {
		t.Errorf("L increase ratio = %v, want > 1 (letter flips)", res.IncreaseRatio)
	}
	if res.Event2Ratio <= 1 {
		t.Errorf("L event-2 ratio = %v, want > 1 (paper: 1.66x)", res.Event2Ratio)
	}
	if _, err := LetterFlips(ev, 'Z'); err == nil {
		t.Error("unknown letter should error")
	}
}
