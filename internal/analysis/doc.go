// Package analysis derives every table and figure of the paper's
// evaluation (§3) from a completed simulation (core.Evaluator) and its
// measurement dataset (atlas.Dataset).
//
// The entry point is the Analyzer: construct it once with New(ev, d) and
// call one method per figure or table. Each method returns a plain-data
// result that internal/report renders:
//
//	a := analysis.New(ev, d)
//	t2 := a.Table2()
//	f4, err := a.Figure4()
//	rows, err := a.DNSMON()
//
// Figure and table computations walk the dataset through its columnar
// cursors (atlas.Dataset.Rows / RawRows), so they scan contiguous column
// slices with no per-row allocation; methods that need only the simulation
// (Figure9, Figure15, Table3, LetterFlips, UserImpact) read the evaluator
// directly.
//
// # Migration from the free functions
//
// Before the Analyzer, every computation was a free function threading the
// same (ev, d) pair: Figure3(ev, d), Table2(ev, d), SiteCorrelation(ev, d),
// and so on. Those functions survive in deprecated.go as thin wrappers over
// the Analyzer methods — same names, same arguments, same results — and
// will be removed one release after the redesign. To migrate, build the
// Analyzer once and drop the leading (ev, d) arguments from each call:
//
//	analysis.Figure10(ev, d, 'K', codes, 1)  ->  a.Figure10('K', codes, 1)
//	analysis.Table3(ev, 0)                   ->  a.Table3(0)
//	analysis.UserImpact(ev, cfg)             ->  a.UserImpact(cfg)
//
// PolicyAblation and MatchesKnownEvents remain free functions: the former
// runs whole simulations from a config (there is no single ev/d pair), and
// the latter scores already-computed windows against a schedule.
package analysis
