package analysis

import (
	"fmt"
	"sort"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/rssac"
	"github.com/rootevent/anycastddos/internal/stats"
)

// Table2Row is one letter of Table 2.
type Table2Row struct {
	Letter         byte
	Operator       string
	SitesReported  int
	GlobalReported int
	LocalReported  int
	Unicast        bool
	PrimaryBackup  bool
	SitesObserved  int // distinct sites seen by >= 1 clean VP
}

// Table2 reproduces Table 2: reported architecture vs. sites observed
// through CHAOS measurements.
func (a *Analyzer) Table2() []Table2Row {
	d := a.d
	var rows []Table2Row
	for _, l := range a.ev.Deployment.Letters {
		row := Table2Row{
			Letter: l.Letter, Operator: l.Operator,
			SitesReported: len(l.Sites),
			Unicast:       l.Unicast, PrimaryBackup: l.PrimaryBackup,
		}
		for _, s := range l.Sites {
			if s.Local {
				row.LocalReported++
			} else {
				row.GlobalReported++
			}
		}
		seen := map[int16]bool{}
		if cur, err := d.Rows(l.Letter); err == nil {
			for cur.Next() {
				status, site := cur.Status(), cur.Site()
				for b, st := range status {
					if st == atlas.OK && site[b] >= 0 {
						seen[site[b]] = true
					}
				}
			}
		}
		row.SitesObserved = len(seen)
		rows = append(rows, row)
	}
	return rows
}

// Table3Row holds one letter's event-traffic estimate for one event day.
type Table3Row struct {
	Letter        byte
	DeltaQueryMqs float64 // extra queries, Mq/s over the event window
	DeltaQueryGbs float64
	UniqueIPsM    float64 // millions
	UniqueRatio   float64 // vs baseline unique IPs
	DeltaRespMqs  float64
	DeltaRespGbs  float64
	BaselineMqs   float64
	Excluded      bool // excluded from bounds (not attacked, e.g. L)
}

// Table3Bounds carries the lower/scaled/upper event-size estimates.
type Table3Bounds struct {
	LowerQueryMqs, LowerQueryGbs   float64
	LowerRespMqs, LowerRespGbs     float64
	ScaledQueryMqs, ScaledQueryGbs float64
	ScaledRespMqs, ScaledRespGbs   float64
	UpperQueryMqs, UpperQueryGbs   float64
	UpperRespMqs, UpperRespGbs     float64
}

// Table3Result is the full Table 3 for one event.
type Table3Result struct {
	Event  attack.Event
	Rows   []Table3Row
	Bounds Table3Bounds
}

// Table3 reproduces the §3.1 estimation method: per-reporting-letter deltas
// against a 7-day baseline, a lower bound (sum of reporting letters), a
// scaled bound (corrected for attacked letters that did not report), and an
// upper bound assuming every attacked letter received A-Root's load.
func (a *Analyzer) Table3(eventIdx int) (*Table3Result, error) {
	ev := a.ev
	events := ev.Schedule().Events
	if eventIdx < 0 || eventIdx >= len(events) {
		return nil, fmt.Errorf("analysis: event %d out of range", eventIdx)
	}
	event := events[eventIdx]
	day := event.StartMinute / 1440
	eventSecs := float64(event.Duration() * 60)

	res := &Table3Result{Event: event}
	attackedReporting := 0
	totalAttacked := 0
	for _, l := range ev.Deployment.Letters {
		if ev.Schedule().Targeted(l.Letter) {
			totalAttacked++
		}
	}
	var aRow *Table3Row
	for _, l := range ev.Deployment.Letters {
		if !l.ReportsRSSAC {
			continue
		}
		reports := ev.RSSACReports(l.Letter)
		if reports == nil || day >= len(reports) {
			continue
		}
		r := reports[day]
		base := rssac.MeanBaseline(l.Letter, l.NormalQPS, 7)
		// Coverage-corrected volumes: a report with MonitorGap holes
		// would otherwise read as a low-traffic day and drag the bounds
		// down (identical to the raw counts on gap-free days).
		deltaQ := (r.EstimatedQueries() - base.Queries) / eventSecs
		deltaR := (r.EstimatedResponses() - base.Responses) / eventSecs
		if deltaQ < 0 {
			deltaQ = 0
		}
		if deltaR < 0 {
			deltaR = 0
		}
		row := Table3Row{
			Letter:        l.Letter,
			DeltaQueryMqs: deltaQ / 1e6,
			DeltaQueryGbs: rssac.GbpsFromQueries(deltaQ*eventSecs, event.QueryBytes, eventSecs),
			UniqueIPsM:    r.UniqueSources / 1e6,
			UniqueRatio:   r.UniqueSources / base.UniqueSources,
			DeltaRespMqs:  deltaR / 1e6,
			DeltaRespGbs:  rssac.GbpsFromQueries(deltaR*eventSecs, event.ResponseBytes, eventSecs),
			BaselineMqs:   base.Queries / 86400 / 1e6,
			Excluded:      !ev.Schedule().Targeted(l.Letter),
		}
		res.Rows = append(res.Rows, row)
		if !row.Excluded {
			attackedReporting++
			res.Bounds.LowerQueryMqs += row.DeltaQueryMqs
			res.Bounds.LowerQueryGbs += row.DeltaQueryGbs
			res.Bounds.LowerRespMqs += row.DeltaRespMqs
			res.Bounds.LowerRespGbs += row.DeltaRespGbs
		}
		if l.Letter == 'A' {
			aRow = &res.Rows[len(res.Rows)-1]
		}
	}
	if attackedReporting > 0 {
		scale := float64(totalAttacked) / float64(attackedReporting)
		res.Bounds.ScaledQueryMqs = res.Bounds.LowerQueryMqs * scale
		res.Bounds.ScaledQueryGbs = res.Bounds.LowerQueryGbs * scale
		res.Bounds.ScaledRespMqs = res.Bounds.LowerRespMqs * scale
		res.Bounds.ScaledRespGbs = res.Bounds.LowerRespGbs * scale
	}
	if aRow != nil {
		// Upper bound: every attacked letter received A-Root's measured
		// load (§3.1's equal-traffic assumption).
		n := float64(totalAttacked)
		res.Bounds.UpperQueryMqs = aRow.DeltaQueryMqs * n
		res.Bounds.UpperQueryGbs = aRow.DeltaQueryGbs * n
		res.Bounds.UpperRespMqs = aRow.DeltaRespMqs * n
		res.Bounds.UpperRespGbs = aRow.DeltaRespGbs * n
	}
	return res, nil
}

// SiteCorrelationResult is the §3.2.1 sites-vs-reachability correlation.
type SiteCorrelationResult struct {
	Fit stats.LinearFit
	// FitAttacked repeats the fit over attacked letters only: letters
	// that never saw event traffic (D, L, M) carry no information about
	// stress response and only add noise.
	FitAttacked stats.LinearFit
	Letters     []byte
	Sites       []float64
	WorstOK     []float64 // worst per-bin success fraction (min / median)
}

// SiteCorrelation computes the correlation the paper reports as R² = 0.87:
// letters with more sites retain more responding VPs at their worst moment.
// A-Root is excluded (probed too rarely), as in the paper.
func (a *Analyzer) SiteCorrelation() (*SiteCorrelationResult, error) {
	ev, d := a.ev, a.d
	res := &SiteCorrelationResult{}
	for _, l := range ev.Deployment.Letters {
		if l.Letter == 'A' {
			continue
		}
		s, err := d.SuccessSeries(l.Letter)
		if err != nil {
			return nil, err
		}
		med := s.Median()
		if med == 0 {
			continue
		}
		min, _, err := s.Min()
		if err != nil {
			return nil, err
		}
		res.Letters = append(res.Letters, l.Letter)
		res.Sites = append(res.Sites, float64(len(l.Sites)))
		res.WorstOK = append(res.WorstOK, min/med)
	}
	fit, err := stats.Linear(res.Sites, res.WorstOK)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	var ax, ay []float64
	for i, l := range res.Letters {
		if ev.Schedule().Targeted(l) {
			ax = append(ax, res.Sites[i])
			ay = append(ay, res.WorstOK[i])
		}
	}
	if fitA, err := stats.Linear(ax, ay); err == nil {
		res.FitAttacked = fitA
	}
	return res, nil
}

// LetterFlipsResult captures §3.2.2: load increases at an unattacked letter
// as resolvers fail over to it.
type LetterFlipsResult struct {
	Letter        byte
	NormalQPS     float64
	PeakEventQPS  float64
	IncreaseRatio float64 // peak event load / normal
	Event2Ratio   float64 // event-2 mean load / normal (paper: 1.66x at L)
}

// LetterFlips measures failover load at an unattacked letter (default L).
func (a *Analyzer) LetterFlips(letter byte) (*LetterFlipsResult, error) {
	ev := a.ev
	l, ok := ev.Deployment.Letter(letter)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	legit, _, retry, _, err := ev.LetterServedSeries(letter)
	if err != nil {
		return nil, err
	}
	res := &LetterFlipsResult{Letter: letter, NormalQPS: l.NormalQPS}
	var ev2Sum float64
	ev2N := 0
	for m := range legit {
		total := legit[m] + retry[m]
		if total > res.PeakEventQPS {
			res.PeakEventQPS = total
		}
		if m >= attack.Event2Start && m < attack.Event2End {
			ev2Sum += total
			ev2N++
		}
	}
	if l.NormalQPS > 0 {
		res.IncreaseRatio = res.PeakEventQPS / l.NormalQPS
		if ev2N > 0 {
			res.Event2Ratio = ev2Sum / float64(ev2N) / l.NormalQPS
		}
	}
	return res, nil
}

// sortedSiteIndexesByMedian returns a letter's site indexes ordered by
// median VP count (descending), mirroring the ordering of Figures 5 and 6.
func sortedSiteIndexesByMedian(d *atlas.Dataset, letter byte, nSites int) ([]int, []float64, error) {
	medians := make([]float64, nSites)
	for si := 0; si < nSites; si++ {
		s, err := d.SiteSeries(letter, si)
		if err != nil {
			return nil, nil, err
		}
		medians[si] = s.Median()
	}
	idx := make([]int, nSites)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return medians[idx[a]] > medians[idx[b]] })
	return idx, medians, nil
}
