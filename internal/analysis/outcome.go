package analysis

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/stats"
)

// Outcome condenses one completed scenario run into the campaign-level
// metrics the scenario-grid runner aggregates: per-letter availability and
// RTT inflation, the control-plane churn the defense caused, and the
// end-user view through caching resolvers. Every field is a deterministic
// function of the run (same seed, same outcome, bit for bit), which is what
// lets a resumed campaign reuse outcomes recorded before a crash and still
// emit a byte-identical report.
type Outcome struct {
	// Letters maps each deployed letter (as a one-byte string, for JSON) to
	// its summary. encoding/json sorts map keys, so the serialized form is
	// canonical.
	Letters map[string]LetterOutcome `json:"letters"`

	// MinEventAvailability is the worst per-letter availability during the
	// attack windows — the paper's headline per-letter damage number.
	MinEventAvailability float64 `json:"min_event_availability"`
	// MeanEventAvailability averages event availability over the letters.
	MeanEventAvailability float64 `json:"mean_event_availability"`
	// MaxRTTInflation is the worst per-letter event/baseline median-RTT
	// ratio (1 = no inflation observed).
	MaxRTTInflation float64 `json:"max_rtt_inflation"`
	// RouteChanges totals BGP route changes seen at the collector peers —
	// the control-plane cost of withdraw-style defenses.
	RouteChanges int `json:"route_changes"`

	// User is the resolver-population view (§2.3), nil when the outcome was
	// extracted without the user-impact experiment.
	User *UserOutcome `json:"user,omitempty"`
}

// LetterOutcome is one letter's scenario summary.
type LetterOutcome struct {
	// OverallAvailability is the fraction of (VP, bin) cells with a
	// successful probe across the whole run.
	OverallAvailability float64 `json:"overall_availability"`
	// EventAvailability restricts that to the attack windows; 1 when the
	// scenario has no event bins.
	EventAvailability float64 `json:"event_availability"`
	// BaselineMedianRTTMs / EventMedianRTTMs are median per-bin median RTTs
	// outside and inside the attack windows.
	BaselineMedianRTTMs float64 `json:"baseline_median_rtt_ms"`
	EventMedianRTTMs    float64 `json:"event_median_rtt_ms"`
	// RTTInflation is EventMedianRTTMs / BaselineMedianRTTMs, 1 when either
	// side is unobserved.
	RTTInflation float64 `json:"rtt_inflation"`
}

// UserOutcome summarizes the end-user resolver experiment.
type UserOutcome struct {
	// WorstBinFailFrac is the worst per-bin fraction of user queries that
	// exhausted every retry.
	WorstBinFailFrac float64 `json:"worst_bin_fail_frac"`
	// MeanLatencyMs averages the per-bin mean resolution latency.
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	// WorstBinLatencyMs is the worst per-bin mean latency.
	WorstBinLatencyMs float64 `json:"worst_bin_latency_ms"`
	// CacheHitFrac is the fraction of user queries answered from cache.
	CacheHitFrac float64 `json:"cache_hit_frac"`
}

// OutcomeConfig tunes outcome extraction. The zero value skips the
// user-impact experiment; DefaultOutcomeConfig enables a small, fast
// resolver population.
type OutcomeConfig struct {
	// User, when non-nil, runs the resolver-population experiment with this
	// configuration and fills Outcome.User.
	User *UserImpactConfig
}

// DefaultOutcomeConfig extracts the full outcome with a resolver
// population small enough for grid sweeps (a few thousand user queries).
func DefaultOutcomeConfig(seed int64) OutcomeConfig {
	u := DefaultUserImpactConfig(seed)
	u.Resolvers = 60
	u.QueriesPerBin = 8
	u.Domains = 150
	return OutcomeConfig{User: &u}
}

// Outcome extracts the campaign metrics from the completed run.
func (a *Analyzer) Outcome(cfg OutcomeConfig) (*Outcome, error) {
	ev, d := a.ev, a.d
	active := float64(d.NumVPs - d.NumExcluded())
	if active == 0 {
		return nil, fmt.Errorf("analysis: outcome needs at least one active VP")
	}
	out := &Outcome{
		Letters:              map[string]LetterOutcome{},
		MinEventAvailability: 1,
		MaxRTTInflation:      1,
	}
	letters := ev.Deployment.SortedLetters()
	var eventSum float64
	for _, lb := range letters {
		succ, err := d.SuccessSeries(lb)
		if err != nil {
			return nil, err
		}
		rtt, err := d.MedianRTTSeries(lb)
		if err != nil {
			return nil, err
		}
		var lo LetterOutcome
		var allSum, evSum float64
		var evBins int
		var baseRTTs, evRTTs []float64
		for b, v := range succ.Values {
			frac := v / active
			allSum += frac
			if ev.Schedule().Active(succ.MinuteFor(b)) >= 0 {
				evSum += frac
				evBins++
				evRTTs = append(evRTTs, rtt.Values[b])
			} else {
				baseRTTs = append(baseRTTs, rtt.Values[b])
			}
		}
		if len(succ.Values) > 0 {
			lo.OverallAvailability = allSum / float64(len(succ.Values))
		}
		lo.EventAvailability = 1
		if evBins > 0 {
			lo.EventAvailability = evSum / float64(evBins)
		}
		lo.BaselineMedianRTTMs = stats.Median(baseRTTs)
		lo.EventMedianRTTMs = stats.Median(evRTTs)
		lo.RTTInflation = 1
		if evBins > 0 && lo.BaselineMedianRTTMs > 0 {
			lo.RTTInflation = lo.EventMedianRTTMs / lo.BaselineMedianRTTMs
		}
		out.Letters[string(lb)] = lo
		eventSum += lo.EventAvailability
		if lo.EventAvailability < out.MinEventAvailability {
			out.MinEventAvailability = lo.EventAvailability
		}
		if lo.RTTInflation > out.MaxRTTInflation {
			out.MaxRTTInflation = lo.RTTInflation
		}
	}
	if len(letters) > 0 {
		out.MeanEventAvailability = eventSum / float64(len(letters))
	} else {
		out.MeanEventAvailability = 1
	}

	// Total control-plane churn; iterate the deployment's sorted letter
	// order (not the map) so the float accumulation order is fixed.
	fig9 := a.Figure9()
	for _, lb := range letters {
		if s, ok := fig9[lb]; ok {
			for _, v := range s.Values {
				out.RouteChanges += int(v)
			}
		}
	}

	if cfg.User != nil {
		res, err := a.UserImpact(*cfg.User)
		if err != nil {
			return nil, err
		}
		u := &UserOutcome{CacheHitFrac: res.CacheHitFrac}
		u.WorstBinFailFrac, _, _ = maxOrZero(res.FailFrac)
		u.WorstBinLatencyMs, _, _ = maxOrZero(res.MeanLatencyMs)
		u.MeanLatencyMs = stats.Mean(res.MeanLatencyMs.Values)
		out.User = u
	}
	return out, nil
}

// maxOrZero is Series.Max with an empty series mapped to zero instead of
// an error, so a degenerate (zero-bin) scenario still yields an outcome.
func maxOrZero(s *stats.Series) (float64, int, error) {
	v, i, err := s.Max()
	if err != nil {
		return 0, 0, nil
	}
	return v, i, nil
}
