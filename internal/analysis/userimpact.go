package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/resolver"
	"github.com/rootevent/anycastddos/internal/stats"
)

// UserImpactConfig shapes the end-user experiment.
type UserImpactConfig struct {
	Resolvers       int // recursive resolvers simulated
	QueriesPerBin   int // user queries per resolver per 10-minute bin
	Domains         int // distinct qnames in the workload (Zipf popularity)
	CacheTTLMinutes int
	Strategy        resolver.Strategy
	Seed            int64
}

// DefaultUserImpactConfig exposes enough root queries to see event effects
// while keeping the cache influence the paper credits.
func DefaultUserImpactConfig(seed int64) UserImpactConfig {
	return UserImpactConfig{
		Resolvers:       200,
		QueriesPerBin:   12,
		Domains:         400,
		CacheTTLMinutes: 120,
		Strategy:        resolver.PreferFastest,
		Seed:            seed,
	}
}

// UserImpactResult quantifies §2.3's claim that end users saw no visible
// errors despite per-letter losses up to 95%: the DNS system's caching and
// cross-letter retry absorb the event.
type UserImpactResult struct {
	// FailFrac is the per-bin fraction of user queries that exhausted all
	// retries.
	FailFrac *stats.Series
	// MeanLatencyMs is the per-bin mean user-visible resolution latency
	// (cache hits count as 0).
	MeanLatencyMs *stats.Series
	// FlipFrac is the per-bin fraction of upstream-served queries
	// answered by a letter other than the resolver's first choice —
	// the client-side view of §3.2.2's letter flips.
	FlipFrac *stats.Series
	// RootQueryFrac is the per-bin fraction of user queries that needed a
	// root query at all (cache misses).
	RootQueryFrac *stats.Series

	TotalQueries int
	CacheHitFrac float64
	// LetterShare aggregates which letters served the population.
	LetterShare map[byte]float64
}

// UserImpact runs a resolver population against the completed simulation.
func (a *Analyzer) UserImpact(cfg UserImpactConfig) (*UserImpactResult, error) {
	ev := a.ev
	if cfg.Resolvers < 1 || cfg.QueriesPerBin < 1 || cfg.Domains < 1 {
		return nil, fmt.Errorf("analysis: invalid user-impact config %+v", cfg)
	}
	bins := ev.Cfg.Minutes / 10
	res := &UserImpactResult{
		FailFrac:      stats.NewSeries("user-fail-frac", 0, 10, bins),
		MeanLatencyMs: stats.NewSeries("user-latency-ms", 0, 10, bins),
		FlipFrac:      stats.NewSeries("user-flip-frac", 0, 10, bins),
		RootQueryFrac: stats.NewSeries("root-query-frac", 0, 10, bins),
		LetterShare:   map[byte]float64{},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stubs := ev.Graph.StubASNs()
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.Domains-1))

	type resolverState struct {
		r  *resolver.Resolver
		up *core.Upstream
	}
	states := make([]resolverState, cfg.Resolvers)
	for i := range states {
		rcfg := resolver.DefaultConfig(cfg.Seed + int64(i))
		rcfg.Strategy = cfg.Strategy
		rcfg.CacheTTLMinutes = cfg.CacheTTLMinutes
		r, err := resolver.New(rcfg)
		if err != nil {
			return nil, err
		}
		asn := stubs[rng.Intn(len(stubs))]
		up, err := ev.Upstream(asn, cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		states[i] = resolverState{r: r, up: up}
	}

	perBinQueries := make([]int, bins)
	perBinFails := make([]int, bins)
	perBinRoot := make([]int, bins)
	perBinFlips := make([]int, bins)
	perBinLatency := make([]float64, bins)
	var cacheHits, total int
	letterCount := map[byte]int{}

	for b := 0; b < bins; b++ {
		for i := range states {
			st := &states[i]
			for q := 0; q < cfg.QueriesPerBin; q++ {
				minute := b*10 + rng.Intn(10)
				qname := fmt.Sprintf("site%d.example", zipf.Uint64())
				out := st.r.Resolve(qname, minute, st.up)
				total++
				perBinQueries[b]++
				perBinLatency[b] += out.LatencyMs
				switch {
				case out.Cached:
					cacheHits++
				case out.Served:
					perBinRoot[b]++
					letterCount[out.Letter]++
					if out.Flipped {
						perBinFlips[b]++
					}
				default:
					perBinRoot[b]++
					perBinFails[b]++
				}
			}
		}
	}

	for b := 0; b < bins; b++ {
		if perBinQueries[b] > 0 {
			res.FailFrac.Values[b] = float64(perBinFails[b]) / float64(perBinQueries[b])
			res.MeanLatencyMs.Values[b] = perBinLatency[b] / float64(perBinQueries[b])
			res.RootQueryFrac.Values[b] = float64(perBinRoot[b]) / float64(perBinQueries[b])
		}
		if perBinRoot[b] > 0 {
			res.FlipFrac.Values[b] = float64(perBinFlips[b]) / float64(perBinRoot[b])
		}
	}
	res.TotalQueries = total
	if total > 0 {
		res.CacheHitFrac = float64(cacheHits) / float64(total)
	}
	var servedTotal int
	for _, n := range letterCount {
		servedTotal += n
	}
	for l, n := range letterCount {
		res.LetterShare[l] = float64(n) / math.Max(1, float64(servedTotal))
	}
	return res, nil
}
