package analysis

// The free functions below predate the Analyzer and survive one release as
// thin wrappers so existing callers keep compiling. Each one builds a
// throwaway Analyzer per call; migrate by constructing analysis.New(ev, d)
// once and calling the method of the same name (see the package doc).

import (
	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/stats"
)

// Figure3 computes per-letter success series.
//
// Deprecated: use New(ev, d).Figure3.
func Figure3(ev *core.Evaluator, d *atlas.Dataset) (map[byte]*stats.Series, error) {
	return New(ev, d).Figure3()
}

// Figure4 computes per-letter median-RTT series.
//
// Deprecated: use New(ev, d).Figure4.
func Figure4(ev *core.Evaluator, d *atlas.Dataset) (map[byte]*stats.Series, error) {
	return New(ev, d).Figure4()
}

// Figure5 computes per-site catchment swings for one letter.
//
// Deprecated: use New(ev, d).Figure5.
func Figure5(ev *core.Evaluator, d *atlas.Dataset, letter byte) ([]Figure5Row, error) {
	return New(ev, d).Figure5(letter)
}

// Figure6 computes per-site catchment dynamics for one letter.
//
// Deprecated: use New(ev, d).Figure6.
func Figure6(ev *core.Evaluator, d *atlas.Dataset, letter byte) ([]Figure6Site, error) {
	return New(ev, d).Figure6(letter)
}

// Figure7 computes median-RTT series for selected sites.
//
// Deprecated: use New(ev, d).Figure7.
func Figure7(ev *core.Evaluator, d *atlas.Dataset, letter byte, codes []string) (map[string]*stats.Series, error) {
	return New(ev, d).Figure7(letter, codes)
}

// Figure8 counts site flips per letter per bin.
//
// Deprecated: use New(ev, d).Figure8.
func Figure8(ev *core.Evaluator, d *atlas.Dataset) (map[byte]*stats.Series, error) {
	return New(ev, d).Figure8()
}

// Figure9 returns per-letter BGP route-change series.
//
// Deprecated: use New(ev, d).Figure9.
func Figure9(ev *core.Evaluator) map[byte]*stats.Series {
	return New(ev, nil).Figure9()
}

// Figure10 computes flip flows out of the given sites during an event.
//
// Deprecated: use New(ev, d).Figure10.
func Figure10(ev *core.Evaluator, d *atlas.Dataset, letter byte, codes []string, eventIdx int) ([]FlipFlow, error) {
	return New(ev, d).Figure10(letter, codes, eventIdx)
}

// Figure11 renders the per-probe site raster for sampled VPs.
//
// Deprecated: use New(ev, d).Figure11.
func Figure11(ev *core.Evaluator, d *atlas.Dataset, letter byte, home1, home2, overflow string, maxVPs int) ([]RasterRow, error) {
	return New(ev, d).Figure11(letter, home1, home2, overflow, maxVPs)
}

// FigureServers derives per-server reachability/RTT for a site.
//
// Deprecated: use New(ev, d).FigureServers.
func FigureServers(ev *core.Evaluator, d *atlas.Dataset, letter byte, code string) ([]ServerSeries, error) {
	return New(ev, d).FigureServers(letter, code)
}

// Figure14 finds collateral-damage sites at an unattacked letter.
//
// Deprecated: use New(ev, d).Figure14.
func Figure14(ev *core.Evaluator, d *atlas.Dataset, letter byte, minDip float64) ([]Figure14Site, error) {
	return New(ev, d).Figure14(letter, minDip)
}

// Figure15 returns the .nl collateral series.
//
// Deprecated: use New(ev, d).Figure15.
func Figure15(ev *core.Evaluator) []*stats.Series {
	return New(ev, nil).Figure15()
}

// Table2 reproduces reported architecture vs. observed sites.
//
// Deprecated: use New(ev, d).Table2.
func Table2(ev *core.Evaluator, d *atlas.Dataset) []Table2Row {
	return New(ev, d).Table2()
}

// Table3 reproduces the §3.1 event-size estimates.
//
// Deprecated: use New(ev, d).Table3.
func Table3(ev *core.Evaluator, eventIdx int) (*Table3Result, error) {
	return New(ev, nil).Table3(eventIdx)
}

// SiteCorrelation computes the sites-vs-reachability correlation.
//
// Deprecated: use New(ev, d).SiteCorrelation.
func SiteCorrelation(ev *core.Evaluator, d *atlas.Dataset) (*SiteCorrelationResult, error) {
	return New(ev, d).SiteCorrelation()
}

// LetterFlips measures failover load at an unattacked letter.
//
// Deprecated: use New(ev, d).LetterFlips.
func LetterFlips(ev *core.Evaluator, letter byte) (*LetterFlipsResult, error) {
	return New(ev, nil).LetterFlips(letter)
}

// DNSMON computes the dashboard availability table.
//
// Deprecated: use New(ev, d).DNSMON.
func DNSMON(ev *core.Evaluator, d *atlas.Dataset) ([]DNSMONRow, error) {
	return New(ev, d).DNSMON()
}

// DetectEvents finds attack windows from the measurement data alone.
//
// Deprecated: use New(ev, d).DetectEvents.
func DetectEvents(ev *core.Evaluator, d *atlas.Dataset, drop float64, minLetters int) ([]EventWindow, error) {
	return New(ev, d).DetectEvents(drop, minLetters)
}

// ValidateCatchments cross-validates CHAOS catchments against traces.
//
// Deprecated: use New(ev, d).ValidateCatchments.
func ValidateCatchments(ev *core.Evaluator, d *atlas.Dataset, letter byte, bin int) (*CatchmentValidationResult, error) {
	return New(ev, d).ValidateCatchments(letter, bin)
}

// CatchmentOptimality measures anycast routing inefficiency.
//
// Deprecated: use New(ev, d).CatchmentOptimality.
func CatchmentOptimality(ev *core.Evaluator, d *atlas.Dataset, letter byte, minute int) (*OptimalityResult, error) {
	return New(ev, d).CatchmentOptimality(letter, minute)
}

// UserImpact runs a resolver population against the completed simulation.
//
// Deprecated: use New(ev, d).UserImpact.
func UserImpact(ev *core.Evaluator, cfg UserImpactConfig) (*UserImpactResult, error) {
	return New(ev, nil).UserImpact(cfg)
}
