package analysis

import (
	"fmt"
	"sort"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/stats"
)

// DNSMONRow summarizes one letter's availability the way RIPE's DNSMON
// dashboard does (§2.4.1 cites DNSMON as the public face of this data):
// per-letter probe success percentages overall and during the events.
type DNSMONRow struct {
	Letter        byte
	OverallOKPct  float64 // fraction of (VP, bin) cells with a success
	EventOKPct    float64 // same, restricted to the event windows
	WorstBinPct   float64 // worst single bin
	MedianRTTms   float64
	EventRTTp90ms float64 // 90th percentile of event-bin median RTTs
}

// DNSMON computes the dashboard table from the dataset.
func (a *Analyzer) DNSMON() ([]DNSMONRow, error) {
	ev, d := a.ev, a.d
	var rows []DNSMONRow
	for _, lb := range ev.Deployment.SortedLetters() {
		if lb == 'A' {
			continue // probed too rarely during the events
		}
		succ, err := d.SuccessSeries(lb)
		if err != nil {
			return nil, err
		}
		rtt, err := d.MedianRTTSeries(lb)
		if err != nil {
			return nil, err
		}
		active := float64(d.NumVPs - d.NumExcluded())
		if active == 0 {
			return nil, fmt.Errorf("analysis: no active VPs")
		}
		row := DNSMONRow{Letter: lb, MedianRTTms: rtt.Median(), WorstBinPct: 100}
		var total, eventTotal float64
		var bins, eventBins int
		var eventRTTs []float64
		for b, v := range succ.Values {
			pct := v / active * 100
			total += pct
			bins++
			if pct < row.WorstBinPct {
				row.WorstBinPct = pct
			}
			if ev.Schedule().Active(succ.MinuteFor(b)) >= 0 {
				eventTotal += pct
				eventBins++
				eventRTTs = append(eventRTTs, rtt.Values[b])
			}
		}
		if bins > 0 {
			row.OverallOKPct = total / float64(bins)
		}
		if eventBins > 0 {
			row.EventOKPct = eventTotal / float64(eventBins)
			row.EventRTTp90ms = stats.Quantile(eventRTTs, 0.9)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EventWindow is one detected stress interval.
type EventWindow struct {
	StartMinute int
	EndMinute   int
	// Letters affected (success dropped below the detection threshold).
	Letters []byte
}

// DetectEvents finds attack windows from the measurement data alone —
// without being told when the events happened — by flagging bins where a
// letter's success count drops more than `drop` (fraction) below its own
// median, and merging bins where at least minLetters letters are flagged.
// The paper takes the windows from operator reports; this detector shows
// they are recoverable from the public measurements.
func (a *Analyzer) DetectEvents(drop float64, minLetters int) ([]EventWindow, error) {
	ev, d := a.ev, a.d
	if drop <= 0 || drop >= 1 || minLetters < 1 {
		return nil, fmt.Errorf("analysis: bad detector parameters drop=%v minLetters=%d", drop, minLetters)
	}
	type binHit struct {
		letters []byte
	}
	hits := make([]binHit, d.Bins)
	for _, lb := range ev.Deployment.SortedLetters() {
		if lb == 'A' {
			continue
		}
		succ, err := d.SuccessSeries(lb)
		if err != nil {
			return nil, err
		}
		med := succ.Median()
		if med == 0 {
			continue
		}
		for b, v := range succ.Values {
			if (med-v)/med >= drop {
				hits[b].letters = append(hits[b].letters, lb)
			}
		}
	}
	var windows []EventWindow
	inWindow := false
	var cur EventWindow
	affected := map[byte]bool{}
	flush := func(endBin int) {
		if !inWindow {
			return
		}
		cur.EndMinute = d.StartMinute + endBin*d.BinMinutes
		letters := make([]byte, 0, len(affected))
		for l := range affected {
			letters = append(letters, l)
		}
		sort.Slice(letters, func(i, j int) bool { return letters[i] < letters[j] })
		cur.Letters = letters
		windows = append(windows, cur)
		inWindow = false
		affected = map[byte]bool{}
	}
	for b := 0; b < d.Bins; b++ {
		if len(hits[b].letters) >= minLetters {
			if !inWindow {
				inWindow = true
				cur = EventWindow{StartMinute: d.StartMinute + b*d.BinMinutes}
			}
			for _, l := range hits[b].letters {
				affected[l] = true
			}
		} else if inWindow {
			flush(b)
		}
	}
	flush(d.Bins)
	return windows, nil
}

// MatchesKnownEvents scores detected windows against a ground-truth
// schedule: a window matches when it overlaps a real event; returns
// (matched, spurious, missed). A nil schedule uses the paper's Nov 2015
// events.
func MatchesKnownEvents(windows []EventWindow, sched *attack.Schedule) (matched, spurious, missed int) {
	if sched == nil {
		sched = attack.Nov2015Schedule()
	}
	events := sched.Events
	used := make([]bool, len(events))
	for _, w := range windows {
		hit := false
		for i, e := range events {
			if w.StartMinute < e.EndMinute+20 && w.EndMinute > e.StartMinute-20 {
				if !used[i] {
					matched++
					used[i] = true
				}
				hit = true
				break
			}
		}
		if !hit {
			spurious++
		}
	}
	for _, u := range used {
		if !u {
			missed++
		}
	}
	return matched, spurious, missed
}
