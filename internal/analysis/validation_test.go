package analysis

import (
	"testing"
)

func TestValidateCatchments(t *testing.T) {
	ev, d := getShared(t)
	// A quiet bin well before event 1.
	res, err := ValidateCatchments(ev, d, 'K', 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared < 100 {
		t.Fatalf("compared only %d VPs: %+v", res.Compared, res)
	}
	// CHAOS mapping must agree with forwarding traces for (nearly) every
	// clean VP — the Fan et al. result the methodology rests on.
	if frac := res.AgreementFrac(); frac < 0.98 {
		t.Errorf("agreement = %.3f (%+v)", frac, res)
	}
	// Cleaning caught the hijacked VPs before they could pollute the
	// comparison.
	hijacked := 0
	for _, vp := range ev.Population.VPs {
		if vp.Hijacked {
			hijacked++
		}
	}
	if hijacked > 0 && res.HijackedCaught == 0 {
		t.Error("no hijacked VPs caught by cleaning")
	}
	if _, err := ValidateCatchments(ev, d, 'Z', 20); err == nil {
		t.Error("unknown letter accepted")
	}
	if _, err := ValidateCatchments(ev, d, 'K', -1); err == nil {
		t.Error("bad bin accepted")
	}
}

func TestValidationEmptyResult(t *testing.T) {
	r := &CatchmentValidationResult{}
	if r.AgreementFrac() != 0 {
		t.Error("empty agreement should be 0")
	}
}

func TestCatchmentOptimality(t *testing.T) {
	ev, d := getShared(t)
	res, err := CatchmentOptimality(ev, d, 'K', 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.VPs < 100 {
		t.Fatalf("VPs = %d", res.VPs)
	}
	if res.OptimalFrac <= 0 || res.OptimalFrac > 1 {
		t.Errorf("optimal fraction = %v", res.OptimalFrac)
	}
	// BGP is not latency-aware: a meaningful share of VPs take detours,
	// but the mean inflation stays bounded (sites are spread worldwide).
	if res.OptimalFrac > 0.99 {
		t.Errorf("optimal fraction %v implausibly perfect for policy routing", res.OptimalFrac)
	}
	if res.MeanInflation < 0 || res.MeanInflation > 400 {
		t.Errorf("mean inflation = %v ms", res.MeanInflation)
	}
	if res.P90Inflation < res.MeanInflation {
		t.Errorf("p90 %v below mean %v", res.P90Inflation, res.MeanInflation)
	}
	if res.WorstInflation < res.P90Inflation {
		t.Errorf("worst %v below p90 %v", res.WorstInflation, res.P90Inflation)
	}
	if _, err := CatchmentOptimality(ev, d, 'Z', 200); err == nil {
		t.Error("unknown letter accepted")
	}
}
