package analysis

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/attack"
)

func TestDNSMONTable(t *testing.T) {
	ev, d := getShared(t)
	rows, err := DNSMON(ev, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 13 letters minus A
		t.Fatalf("rows = %d", len(rows))
	}
	byLetter := map[byte]DNSMONRow{}
	for _, r := range rows {
		byLetter[r.Letter] = r
		if r.OverallOKPct <= 0 || r.OverallOKPct > 100 {
			t.Errorf("%c overall = %v", r.Letter, r.OverallOKPct)
		}
		if r.EventOKPct > r.OverallOKPct+1e-9 {
			t.Errorf("%c event availability %v above overall %v", r.Letter, r.EventOKPct, r.OverallOKPct)
		}
		if r.WorstBinPct > r.EventOKPct+1e-9 {
			t.Errorf("%c worst bin %v above event mean %v", r.Letter, r.WorstBinPct, r.EventOKPct)
		}
	}
	// The unicast letter suffers more during events than the unattacked
	// site-rich letter.
	if byLetter['B'].EventOKPct >= byLetter['L'].EventOKPct {
		t.Errorf("B event %v >= L event %v", byLetter['B'].EventOKPct, byLetter['L'].EventOKPct)
	}
	// H's event RTT p90 reflects the coast flip to its backup site (the
	// most reliable RTT signature in the deployment); K's absorbers may
	// or may not dominate K's letter-wide median at small scales.
	if byLetter['H'].EventRTTp90ms <= byLetter['H'].MedianRTTms*1.5 {
		t.Errorf("H event p90 RTT %v not well above median %v", byLetter['H'].EventRTTp90ms, byLetter['H'].MedianRTTms)
	}
}

func TestDetectEventsRecoversWindows(t *testing.T) {
	ev, d := getShared(t)
	windows, err := DetectEvents(ev, d, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) == 0 {
		t.Fatal("no events detected")
	}
	matched, spurious, missed := MatchesKnownEvents(windows, ev.Schedule())
	if matched != 2 {
		t.Errorf("matched %d of 2 events (windows: %+v)", matched, windows)
	}
	if missed != 0 {
		t.Errorf("missed %d events", missed)
	}
	if spurious > 1 {
		t.Errorf("%d spurious windows", spurious)
	}
	// Detected windows overlap the true ones within a couple of bins.
	ev1 := attack.Events()[0]
	found := false
	for _, w := range windows {
		if w.StartMinute <= ev1.StartMinute+20 && w.EndMinute >= ev1.EndMinute-20 {
			found = true
			if len(w.Letters) < 3 {
				t.Errorf("window letters = %s", string(w.Letters))
			}
		}
	}
	if !found {
		t.Errorf("no window covers event 1: %+v", windows)
	}
}

func TestDetectEventsParamValidation(t *testing.T) {
	ev, d := getShared(t)
	for _, tt := range []struct {
		drop float64
		min  int
	}{{0, 3}, {1, 3}, {0.5, 0}} {
		if _, err := DetectEvents(ev, d, tt.drop, tt.min); err == nil {
			t.Errorf("drop=%v min=%d accepted", tt.drop, tt.min)
		}
	}
}
